// Feature-level tests of the DMTCP layer: pid virtualization and the
// fork-conflict re-fork, pipes/ptys/shm through checkpoint+restart,
// dmtcpaware, interval checkpoints, restart-script round trip, forked
// checkpointing correctness, multi-generation restarts.
#include <gtest/gtest.h>

#include "core/launch.h"
#include "core/restart_script.h"
#include "sim/cluster.h"
#include "tests/testprogs.h"

namespace dsim::test {
namespace {

using core::DmtcpControl;
using core::DmtcpOptions;

struct World {
  sim::Cluster cluster;
  DmtcpControl ctl;
  explicit World(int nodes, DmtcpOptions opts = {}, u64 seed = 0x5eed)
      : cluster([&] {
          auto cfg = sim::Cluster::lab_cluster(nodes);
          cfg.seed = seed;
          return cfg;
        }()),
        ctl(cluster.kernel(), opts) {
    register_test_programs(cluster.kernel());
  }
  sim::Kernel& k() { return cluster.kernel(); }
  bool wait_result(const std::string& name) {
    return ctl.run_until([&] { return !read_result(k(), name).empty(); },
                         k().loop().now() + 300 * timeconst::kSecond);
  }
};

TEST(PipePromotion, PipeSurvivesCheckpointKillRestart) {
  World w(1);
  w.ctl.launch(0, kPipeChain, {"262144", "pipe1"});
  w.ctl.run_for(20 * timeconst::kMillisecond);
  w.ctl.checkpoint_now();
  w.ctl.kill_computation();
  w.ctl.restart();
  ASSERT_TRUE(w.wait_result("pipe1.child"));
  // 256 KiB of deterministic bytes: CRC proves nothing was lost/duplicated.
  EXPECT_NE(read_result(w.k(), "pipe1.child").find("bytes=262144"),
            std::string::npos);
}

TEST(SharedMemory, CountersConsistentAfterRestart) {
  World w(1);
  w.ctl.launch(0, kShmPair, {"/shared/shm/c1", "40", "shm1"});
  w.ctl.run_for(15 * timeconst::kMillisecond);
  w.ctl.checkpoint_now();
  w.ctl.kill_computation();
  w.ctl.restart();
  ASSERT_TRUE(w.wait_result("shm1"));
  // Parent + child each increment 40 times through a token protocol.
  EXPECT_EQ(read_result(w.k(), "shm1"), "counter=80");
}

TEST(Pty, TermiosAndStreamSurviveRestart) {
  World w(1);
  w.ctl.launch(0, kPtyShell, {"30", "pty1"});
  w.ctl.run_for(15 * timeconst::kMillisecond);
  w.ctl.checkpoint_now();
  w.ctl.kill_computation();
  w.ctl.restart();
  ASSERT_TRUE(w.wait_result("pty1"));
  const auto result = read_result(w.k(), "pty1");
  // Raw mode (echo off, icanon off) set before the checkpoint must survive.
  EXPECT_NE(result.find("echo=0 icanon=0"), std::string::npos);
}

TEST(PidVirtualization, SpawnTreeSurvivesRestartAndReportsVpid) {
  World w(1);
  w.ctl.launch(0, kSpawnTree, {"4", "400", "tree1"});
  w.ctl.run_for(25 * timeconst::kMillisecond);
  w.ctl.checkpoint_now();
  w.ctl.kill_computation();
  w.ctl.restart();
  ASSERT_TRUE(w.wait_result("tree1"));
  // Exit-code sum: (id*7+3)%64 for ids 0..3 = 3+10+17+24 = 54.
  EXPECT_NE(read_result(w.k(), "tree1").find("sum=54"), std::string::npos);
  // getpid() must still return the original (virtual) pid after restart.
  ASSERT_TRUE(w.wait_result("tree1.vpid"));
  EXPECT_EQ(read_result(w.k(), "tree1.vpid"), "vpid=101");
}

TEST(PidVirtualization, ConflictTriggersRefork) {
  // Force a collision: restart so a restored process owns vpid X, then
  // spawn children until the kernel's pid counter passes X.
  World w(1);
  w.ctl.launch(0, kComputeLoop, {"4000", "500", "cl1"});
  w.ctl.run_for(20 * timeconst::kMillisecond);
  w.ctl.checkpoint_now();
  w.ctl.kill_computation();
  w.ctl.restart();
  // The restored process holds vpid 101 while real pids have moved on; a
  // fresh process under the same coordinator spawning children cannot
  // collide visibly — but the hijack guards it. Exercise the spawn path:
  w.ctl.launch(0, kSpawnTree, {"3", "10", "tree2"});
  ASSERT_TRUE(w.wait_result("tree2"));
  ASSERT_TRUE(w.wait_result("cl1"));
}

TEST(Dmtcpaware, IntervalCheckpointsFire) {
  DmtcpOptions opts;
  opts.interval = 30 * timeconst::kMillisecond;
  World w(1, opts);
  w.ctl.launch(0, kComputeLoop, {"4000", "200", "iv1"});
  w.ctl.run_until([&] { return w.ctl.stats().rounds.size() >= 3; },
                  w.k().loop().now() + 60 * timeconst::kSecond);
  EXPECT_GE(w.ctl.stats().rounds.size(), 3u);
  ASSERT_TRUE(w.wait_result("iv1"));
}

TEST(RestartScript, FormatParseRoundTrip) {
  core::RestartPlan plan;
  plan.coord_node = 2;
  plan.coord_port = 7780;
  plan.total_procs = 7;
  plan.hosts.push_back({0, {"/ckpt/a.dmtcp", "/ckpt/b.dmtcp"}});
  plan.hosts.push_back({3, {"/ckpt/c.dmtcp"}});
  const auto text = core::format_restart_script(plan);
  EXPECT_NE(text.find("#!/bin/sh"), std::string::npos);
  const auto back = core::parse_restart_script(text);
  EXPECT_EQ(back.coord_node, 2);
  EXPECT_EQ(back.coord_port, 7780);
  EXPECT_EQ(back.total_procs, 7);
  ASSERT_EQ(back.hosts.size(), 2u);
  EXPECT_EQ(back.hosts[0].host, 0);
  EXPECT_EQ(back.hosts[0].images,
            (std::vector<std::string>{"/ckpt/a.dmtcp", "/ckpt/b.dmtcp"}));
  EXPECT_EQ(back.hosts[1].host, 3);
}

TEST(ForkedCheckpointing, ResumesFastAndRestartsCorrectly) {
  DmtcpOptions plain_opts;
  DmtcpOptions forked_opts;
  forked_opts.forked_checkpointing = true;

  double plain_stop = 0, forked_stop = 0;
  std::string expected;
  {
    World w(2, plain_opts);
    w.ctl.launch(0, kPingServer, {"9000", "200", "2048", "fsrv"});
    w.ctl.launch(1, kPingClient, {"0", "9000", "200", "2048", "5", "fcli"});
    w.ctl.run_for(25 * timeconst::kMillisecond);
    plain_stop = w.ctl.checkpoint_now().total_seconds();
    ASSERT_TRUE(w.wait_result("fsrv"));
    expected = read_result(w.k(), "fsrv");
  }
  {
    World w(2, forked_opts);
    w.ctl.launch(0, kPingServer, {"9000", "200", "2048", "fsrv"});
    w.ctl.launch(1, kPingClient, {"0", "9000", "200", "2048", "5", "fcli"});
    w.ctl.run_for(25 * timeconst::kMillisecond);
    forked_stop = w.ctl.checkpoint_now().total_seconds();
    // Let the background writer finish before killing (image durability).
    w.ctl.run_for(30 * timeconst::kSecond);
    w.ctl.kill_computation();
    w.ctl.restart();
    ASSERT_TRUE(w.wait_result("fsrv"));
    EXPECT_EQ(read_result(w.k(), "fsrv"), expected);
  }
  // §5.3: forked checkpointing slashes the user-visible stop time.
  EXPECT_LT(forked_stop, plain_stop);
}

TEST(MultiGeneration, CheckpointRestartRepeatedly) {
  World w(2);
  w.ctl.launch(0, kPingServer, {"9000", "500", "1024", "gsrv"});
  w.ctl.launch(1, kPingClient, {"0", "9000", "500", "1024", "11", "gcli"});
  for (int gen = 0; gen < 3; ++gen) {
    w.ctl.run_for(20 * timeconst::kMillisecond);
    w.ctl.checkpoint_now();
    w.ctl.kill_computation();
    w.ctl.restart();
  }
  ASSERT_TRUE(w.wait_result("gsrv"));
  EXPECT_EQ(read_result(w.k(), "gsrv").substr(0, 12),
            read_result(w.k(), "gcli").substr(0, 12));
  EXPECT_NE(read_result(w.k(), "gsrv").find("rounds=500"), std::string::npos);
}

TEST(SyncModes, SyncAfterCostsMoreThanNone) {
  double none_s = 0, sync_s = 0;
  for (const bool sync : {false, true}) {
    DmtcpOptions opts;
    opts.sync = sync ? core::SyncMode::kSyncAfter : core::SyncMode::kNone;
    World w(1, opts);
    w.ctl.launch(0, "compute_loop", {"4000", "500", "sy"});
    w.ctl.run_for(20 * timeconst::kMillisecond);
    const double t = w.ctl.checkpoint_now().total_seconds();
    (sync ? sync_s : none_s) = t;
  }
  EXPECT_GT(sync_s, none_s);
}

TEST(Syslog, WrappersRecordMessages) {
  World w(1);
  const Pid pid = w.ctl.launch(0, kComputeLoop, {"50", "100", "sl"});
  ASSERT_TRUE(w.wait_result("sl"));
  // The syslog wrappers exist per §4.2; exercise them kernel-side.
  sim::Process* p = w.k().find_process(pid);
  ASSERT_NE(p, nullptr);
}

}  // namespace
}  // namespace dsim::test
