// Multi-tenant chunk-store serving: the tenant-scoped envelope, weighted
// fair queueing (DRR) with a strict-priority restart band, admission
// control at the tenant edge, cross-tenant dedup with independent
// per-tenant GC, and two whole computations sharing one service through
// the multi-computation harness (DmtcpControl attach ctor).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "ckptstore/manifest.h"
#include "ckptstore/repository.h"
#include "ckptstore/service.h"
#include "ckptstore/tenant.h"
#include "core/launch.h"
#include "sim/cluster.h"
#include "tests/testprogs.h"
#include "tests/testutil.h"
#include "util/rng.h"

namespace dsim::test {
namespace {

using ckptstore::ChunkKey;
using ckptstore::ChunkStoreService;
using ckptstore::FairQueue;
using ckptstore::QosClass;
using ckptstore::StoreOp;
using ckptstore::StoreRequest;
using core::DmtcpControl;
using core::DmtcpOptions;
using sim::ExtentKind;

ChunkKey key_of(u64 n) {
  ChunkKey k;
  k.hi = n * 0x9E3779B97F4A7C15ull + 7;
  k.lo = n;
  return k;
}

// --- owner-string convention -------------------------------------------------

TEST(TenantOwner, PrefixRoundTripsAndUnprefixedOwnersReadDefault) {
  EXPECT_EQ(ckptstore::tenant_prefix(3), "t3/");
  EXPECT_EQ(ckptstore::tenant_owner(3, "41"), "t3/41");
  EXPECT_EQ(ckptstore::tenant_of_owner("t3/41"), 3);
  EXPECT_EQ(ckptstore::tenant_of_owner("t12/7"), 12);
  // Pre-multi-tenant owners (bare vpids) read as the default tenant.
  EXPECT_EQ(ckptstore::tenant_of_owner("41"), ckptstore::kDefaultTenant);
  EXPECT_EQ(ckptstore::tenant_of_owner(""), ckptstore::kDefaultTenant);
}

// --- FairQueue (deficit round-robin) ----------------------------------------

FairQueue::Item item(u64 cost, std::vector<int>* log, int id) {
  return FairQueue::Item{cost, [log, id] { log->push_back(id); }};
}

TEST(FairQueueTest, RestartBandDrainsWithStrictPriority) {
  FairQueue fq;
  std::vector<int> served;
  // A checkpoint storm is queued first; restart probes arrive after.
  for (int i = 0; i < 50; ++i) {
    fq.push(QosClass::kCheckpoint, 1, 1.0, item(4096, &served, i));
  }
  for (int i = 100; i < 105; ++i) {
    fq.push(QosClass::kRestart, 2, 1.0, item(4096, &served, i));
  }
  ASSERT_EQ(fq.size(), 55u);
  // The restart band drains completely before any checkpoint item runs,
  // despite arriving last.
  for (int i = 0; i < 5; ++i) fq.pop().run();
  EXPECT_EQ(served, (std::vector<int>{100, 101, 102, 103, 104}));
  while (!fq.empty()) fq.pop().run();
  EXPECT_EQ(served.size(), 55u);
}

TEST(FairQueueTest, WeightsShareServiceProportionally) {
  FairQueue fq;
  std::vector<int> served;
  // Tenant 1 at weight 2.0, tenant 2 at weight 1.0, equal-cost items.
  for (int i = 0; i < 200; ++i) {
    fq.push(QosClass::kCheckpoint, 1, 2.0, item(4096, &served, 1));
    fq.push(QosClass::kCheckpoint, 2, 1.0, item(4096, &served, 2));
  }
  // Pop whole rotations (a 512 KiB + 256 KiB grant pair covers 192 items
  // at 4 KiB each) so DRR's burst quantization doesn't skew the window.
  for (int i = 0; i < 192; ++i) fq.pop().run();
  const auto count = [&](int id) {
    return std::count(served.begin(), served.end(), id);
  };
  const double t1 = static_cast<double>(count(1));
  const double t2 = static_cast<double>(count(2));
  ASSERT_GT(t2, 0.0);
  // DRR converges on the 2:1 weight ratio (quantization leaves slack).
  EXPECT_GT(t1, 1.6 * t2);
  EXPECT_LT(t1, 2.4 * t2);
}

TEST(FairQueueTest, PerTenantOrderStaysFifo) {
  FairQueue fq;
  std::vector<int> served;
  for (int i = 0; i < 30; ++i) {
    fq.push(QosClass::kCheckpoint, i % 3, 1.0, item(1 + (i % 5) * 777,
                                                    &served, i));
  }
  while (!fq.empty()) fq.pop().run();
  ASSERT_EQ(served.size(), 30u);
  // Whatever the cross-tenant interleaving, each tenant's own items ran in
  // push order.
  std::map<int, int> last;
  for (int id : served) {
    const int tenant = id % 3;
    auto it = last.find(tenant);
    if (it != last.end()) EXPECT_LT(it->second, id);
    last[tenant] = id;
  }
}

// --- repository: cross-tenant refcounts -------------------------------------

ckptstore::Chunk pattern_chunk(u64 len) {
  ckptstore::Chunk c;
  c.kind = ExtentKind::kZero;
  c.len = len;
  c.charged_bytes = len;
  return c;
}

TEST(TenantRepository, OneTenantsGcNeverDropsAChunkAnotherReferences) {
  ckptstore::Repository repo;
  const ChunkKey shared_key = key_of(1);  // the cross-tenant mapped library
  const ChunkKey t1_priv = key_of(2);
  const ChunkKey t2_priv = key_of(3);
  repo.put(shared_key, pattern_chunk(1000));
  repo.put(t1_priv, pattern_chunk(2000));
  repo.put(t2_priv, pattern_chunk(4000));
  repo.commit_generation("t1/7", 0, {shared_key, t1_priv}, 3000);
  repo.commit_generation("t2/9", 0, {shared_key, t2_priv}, 5000);
  EXPECT_EQ(repo.shared_chunk_count(), 1u);

  // Tenant 1 moves on: a new generation without its old chunks, then its
  // own keep-last-1 GC pass, scoped to the t1/ namespace.
  const ChunkKey t1_new = key_of(4);
  repo.put(t1_new, pattern_chunk(500));
  repo.commit_generation("t1/7", 1, {t1_new}, 500);
  std::vector<ckptstore::Repository::ReclaimedChunk> dead;
  repo.collect_garbage(/*keep=*/1, &dead, "t1/");

  // t1's private chunk died; the shared chunk survives on t2's reference,
  // and t2's namespace was never touched.
  EXPECT_EQ(repo.find(t1_priv), nullptr);
  ASSERT_NE(repo.find(shared_key), nullptr);
  ASSERT_NE(repo.find(t2_priv), nullptr);
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0].key, t1_priv);
  EXPECT_EQ(repo.live_generations("t2/9"), (std::vector<int>{0}));
  // No longer multi-owner: t1's gen-0 reference on the shared chunk died.
  EXPECT_EQ(repo.shared_chunk_count(), 0u);

  // Quarantine path: the scrubber condemns the shared chunk. Refcount
  // records survive the mask — another tenant's GC still cannot reclaim it
  // out from under t2, and the forward re-store slots straight back in.
  EXPECT_GT(repo.quarantine(shared_key), 0u);
  EXPECT_EQ(repo.find(shared_key), nullptr);
  repo.collect_garbage(/*keep=*/1, nullptr, "t1/");  // t1 again: no-op now
  EXPECT_EQ(repo.quarantined_count(), 1u);
  EXPECT_TRUE(repo.put(shared_key, pattern_chunk(1000)));  // re-store
  ASSERT_NE(repo.find(shared_key), nullptr);
  EXPECT_EQ(repo.live_generations("t2/9"), (std::vector<int>{0}));
}

TEST(TenantRepository, SharedBytesReportKeysOnTheTenantGroupPair) {
  ckptstore::Repository repo;
  repo.put(key_of(1), pattern_chunk(1000));
  repo.put(key_of(2), pattern_chunk(50));
  repo.commit_generation("t1/7", 0, {key_of(1)}, 1000);
  repo.commit_generation("t1/8", 0, {key_of(2)}, 50);  // same tenant only
  repo.commit_generation("t2/9", 0, {key_of(1)}, 1000);
  const auto by_group = repo.shared_bytes_by_group();
  ASSERT_EQ(by_group.size(), 1u);
  const auto it = by_group.find({"t1", "t2"});
  ASSERT_NE(it, by_group.end());
  EXPECT_EQ(it->second, 1000u);  // the intra-tenant share does not count
}

// --- service: envelope, dedup, admission, QoS -------------------------------

StoreRequest store_req(ckptstore::TenantId tenant, NodeId from,
                       const ChunkKey& key, u64 bytes,
                       std::function<void()> done = {}) {
  StoreRequest req;
  req.op = StoreOp::kStore;
  req.tenant = tenant;
  req.from = from;
  req.keys = {key};
  req.bytes = bytes;
  req.done = std::move(done);
  return req;
}

TEST(TenantService, IdenticalChunksFromTwoTenantsStoreOnce) {
  sim::EventLoop loop;
  sim::Network net(loop, 4);
  ChunkStoreService svc(loop, net, 1);
  const ChunkKey lib = key_of(42);
  const auto first = svc.submit(store_req(1, 0, lib, 64 * 1024));
  ASSERT_FALSE(first.targets.empty());  // tenant 1 physically stores it
  loop.run();
  const auto second = svc.submit(store_req(2, 1, lib, 64 * 1024));
  EXPECT_TRUE(second.targets.empty());  // tenant 2: placement dedup hit
  EXPECT_TRUE(second.admitted);
  loop.run();
  // Both tenants' submissions are accounted to their own stats rows.
  EXPECT_EQ(svc.tenants().stats(1).stores, 1u);
  EXPECT_EQ(svc.tenants().stats(2).stores, 1u);
}

TEST(TenantService, AdmissionControlHoldsOverBudgetStoresAtTheEdge) {
  sim::EventLoop loop;
  sim::Network net(loop, 4);
  ChunkStoreService svc(loop, net, 1);
  svc.tenants().configure(
      1, ckptstore::TenantConfig{1.0, /*budget=*/100 * 1000, 0, 0});
  int done = 0;
  const auto r1 =
      svc.submit(store_req(1, 0, key_of(1), 80 * 1000, [&] { ++done; }));
  const auto r2 =
      svc.submit(store_req(1, 0, key_of(2), 80 * 1000, [&] { ++done; }));
  const auto r3 =
      svc.submit(store_req(1, 0, key_of(3), 80 * 1000, [&] { ++done; }));
  // The first store fits the empty budget; the next two exceed the
  // in-flight cap and queue at the tenant edge instead of the shard.
  EXPECT_TRUE(r1.admitted);
  EXPECT_FALSE(r2.admitted);
  EXPECT_FALSE(r3.admitted);
  EXPECT_EQ(svc.stats().admission_held_requests, 2u);
  // Placement is synchronous even for held stores: the caller still learns
  // the homes to charge.
  EXPECT_FALSE(r2.targets.empty());
  loop.run();
  // Held stores dispatched as earlier ones completed; everyone's `done`
  // fired and the edge wait was recorded.
  EXPECT_EQ(done, 3);
  EXPECT_GT(svc.stats().admission_wait.sum(), 0.0);
  EXPECT_EQ(svc.tenants().stats(1).admission_held, 2u);
  EXPECT_GT(svc.tenants().stats(1).admission_wait.sum(), 0.0);
  // A single store larger than the whole budget must still be admitted
  // once the edge is empty (otherwise the tenant deadlocks).
  const auto big =
      svc.submit(store_req(1, 0, key_of(4), 500 * 1000, [&] { ++done; }));
  EXPECT_TRUE(big.admitted);
  loop.run();
  EXPECT_EQ(done, 4);
}

/// One arm of the QoS experiment: flood the shard with a checkpoint-band
/// lookup storm from tenant 1, then issue tenant 2's restart-band fetch,
/// and report (fetch completion, storm completion) in seconds.
std::pair<double, double> restart_vs_storm(bool fair_queueing) {
  sim::EventLoop loop;
  sim::Network net(loop, 4);
  // Batched lookups (16 keys/RPC) make each queue item carry real index
  // occupancy, so the storm builds an actual backlog at the shard instead
  // of trickling in at the RPC dispatch rate.
  ChunkStoreService svc(loop, net, /*replicas=*/1, /*shards=*/1,
                        /*lookup_batch=*/16);
  svc.set_fair_queueing(fair_queueing);
  // Tenant 2 stores the chunk it will later fetch; let it settle.
  svc.submit(store_req(2, 2, key_of(9999), 4 * 1024));
  loop.run();

  StoreRequest storm;
  storm.op = StoreOp::kLookup;
  storm.tenant = 1;
  storm.from = 0;
  for (u64 i = 0; i < 2000; ++i) storm.keys.push_back(key_of(i));
  SimTime storm_done = 0;
  const SimTime t0 = loop.now();
  storm.done = [&] { storm_done = loop.now(); };
  svc.submit(std::move(storm));

  // Submit the restart fetch once the storm has fully arrived and queued
  // (the contrast under test is queue *policy*, not RPC arrival timing).
  SimTime fetch_sent = 0;
  SimTime fetch_done = 0;
  loop.post_at(t0 + 5 * timeconst::kMillisecond, [&] {
    StoreRequest fetch;
    fetch.op = StoreOp::kFetch;
    fetch.tenant = 2;
    fetch.qos = QosClass::kRestart;
    fetch.from = 2;
    fetch.keys = {key_of(9999)};
    fetch.bytes = 4 * 1024;
    fetch_sent = loop.now();
    fetch.done = [&] { fetch_done = loop.now(); };
    svc.submit(std::move(fetch));
  });
  loop.run();
  EXPECT_GT(fetch_done, fetch_sent);
  EXPECT_GT(storm_done, t0);
  return {to_seconds(fetch_done - fetch_sent), to_seconds(storm_done - t0)};
}

TEST(TenantService, RestartBandOvertakesACheckpointStormUnderFairQueueing) {
  const auto [fetch_fq, storm_fq] = restart_vs_storm(/*fair_queueing=*/true);
  const auto [fetch_fifo, storm_fifo] =
      restart_vs_storm(/*fair_queueing=*/false);
  // Strict band priority: the restart fetch overtakes the queued storm and
  // completes in a small fraction of the storm's drain time.
  EXPECT_LT(fetch_fq, storm_fq / 4);
  // The FIFO ablation serves arrival order: the fetch waits out the storm.
  EXPECT_GT(fetch_fifo, storm_fifo / 2);
  EXPECT_GT(fetch_fifo, 5 * fetch_fq);
}

// --- two computations sharing one service (the E2E harness) -----------------

DmtcpOptions tenant_opts(int tenant, u16 coord_port) {
  DmtcpOptions o;
  o.incremental = true;
  o.codec = compress::CodecKind::kNone;
  o.chunking = ckptstore::ChunkingMode::kCdc;
  o.cdc_min_bytes = 2 * 1024;
  o.cdc_avg_bytes = 8 * 1024;
  o.cdc_max_bytes = 32 * 1024;
  o.dedup_scope = core::DedupScope::kCluster;
  o.tenant_id = tenant;
  o.coord_port = coord_port;
  o.ckpt_dir = "/ckpt/t" + std::to_string(tenant);
  return o;
}

/// Two computations on one kernel: `host` owns the chunk-store service,
/// `guest` attaches to it as a second tenant.
struct TenantWorld {
  sim::Cluster cluster;
  DmtcpControl host;
  DmtcpControl guest;
  TenantWorld(int nodes, DmtcpOptions host_opts, DmtcpOptions guest_opts,
              u64 seed = 0x5eed)
      : cluster([&] {
          auto cfg = sim::Cluster::lab_cluster(nodes);
          cfg.seed = seed;
          return cfg;
        }()),
        host(cluster.kernel(), host_opts),
        guest(host, guest_opts) {
    register_test_programs(cluster.kernel());
  }
  sim::Kernel& k() { return cluster.kernel(); }
  bool run_until_results(std::initializer_list<const char*> names,
                         SimTime deadline = 300 * timeconst::kSecond) {
    return host.run_until(
        [&] {
          for (const char* n : names) {
            if (read_result(k(), n).empty()) return false;
          }
          return true;
        },
        k().loop().now() + deadline);
  }
};

Pid launch_with_ballast(DmtcpControl& ctl, NodeId node, const char* name,
                        u64 bytes, u64 seed) {
  const Pid pid =
      ctl.launch(node, kComputeLoop, {"1000000", "200", name});
  ctl.run_for(20 * timeconst::kMillisecond);
  sim::Process* p = ctl.kernel().find_process(pid);
  EXPECT_NE(p, nullptr);
  auto& seg = p->mem().add("ballast", sim::MemKind::kHeap, bytes);
  seg.data.fill(0, bytes, ExtentKind::kRand, seed);
  return pid;
}

TEST(TenantsE2E, TwoComputationsShareOneServiceAndDedupAcrossTenants) {
  TenantWorld w(4, tenant_opts(1, 7779), tenant_opts(2, 7791));
  // Both computations attach to ONE service instance.
  ASSERT_EQ(w.host.shared().store_service.get(),
            w.guest.shared().store_service.get());
  EXPECT_TRUE(w.host.shared().owns_store);
  EXPECT_FALSE(w.guest.shared().owns_store);

  // Each tenant maps the same "shared library" ballast (identical seed →
  // identical content → identical chunk keys) plus nothing else.
  constexpr u64 kLib = 768 * 1024;
  launch_with_ballast(w.host, 0, "a", kLib, 0x11B);
  launch_with_ballast(w.guest, 1, "b", kLib, 0x11B);
  const auto& r1 = w.host.checkpoint_now();
  const u64 live_after_host = w.host.shared().store_service->repo().stats()
                                  .live_stored_bytes;
  const auto& r2 = w.guest.checkpoint_now();
  ASSERT_GT(r1.store_new_bytes, 0u);
  // The guest's image was answered almost entirely by the host's resident
  // chunks: the store grew by far less than a second full image.
  const auto& repo = w.host.shared().store_service->repo();
  EXPECT_LT(repo.stats().live_stored_bytes - live_after_host,
            r1.store_new_bytes / 4);
  EXPECT_GT(r2.store_dup_bytes, 0u);
  // The dedup is attributed to the tenant pair.
  const auto by_group = repo.shared_bytes_by_group();
  const auto it = by_group.find({"t1", "t2"});
  ASSERT_NE(it, by_group.end());
  EXPECT_GT(it->second, 0u);
  // Both tenants' request streams hit the shared service under their own
  // ids (the daemons' probes ride kSystemTenant, never these rows).
  EXPECT_GT(w.host.shared().store_service->tenants().stats(1).lookups, 0u);
  EXPECT_GT(w.host.shared().store_service->tenants().stats(2).lookups, 0u);
  // Each computation's coordinator stamped only its own rounds.
  EXPECT_EQ(w.host.stats().rounds.size(), 1u);
  EXPECT_EQ(w.guest.stats().rounds.size(), 1u);
}

TEST(TenantsE2E, AggressiveTenantGcAndScrubPreserveTheNeighborsChunks) {
  auto host_opts = tenant_opts(1, 7779);
  host_opts.keep_generations = 1;       // tenant 1 GCs hard...
  host_opts.scrub_chunks = 1u << 20;    // ...and scrubs the whole store
  auto guest_opts = tenant_opts(2, 7791);
  guest_opts.keep_generations = 2;
  TenantWorld w(4, host_opts, guest_opts);

  constexpr u64 kLib = 512 * 1024;
  const Pid host_pid = launch_with_ballast(w.host, 0, "a", kLib, 0x11B);
  launch_with_ballast(w.guest, 1, "b", kLib, 0x11B);
  w.guest.checkpoint_now();
  const auto guest_plan = w.guest.read_restart_plan();
  // The host's first generation pins the SAME library chunks the guest
  // references — the cross-tenant shared-refcount case a buggy GC would
  // break when the host's retention drops this generation below.
  w.host.checkpoint_now();
  ASSERT_GT(w.host.shared()
                .store_service->repo()
                .shared_chunk_count(),
            0u);

  // Tenant 1 churns through three generations of fresh private content;
  // keep-last-1 reclaims its old chunks (and the round-close scrub walks
  // whatever is resident) after every round.
  for (int round = 0; round < 3; ++round) {
    sim::Process* p = w.k().find_process(host_pid);
    ASSERT_NE(p, nullptr);
    auto* churn = p->mem().find("ballast");
    ASSERT_NE(churn, nullptr);
    churn->data.fill(0, kLib, ExtentKind::kRand, 0xC0DE + round);
    const auto& r = w.host.checkpoint_now();
    if (round > 0) EXPECT_GT(r.store_reclaimed_bytes, 0u);
  }

  // Every chunk the guest's manifests reference must still be resident and
  // placed — tenant 1's GC passes and scrub walks never touched them.
  auto& svc = *w.host.shared().store_service;
  EXPECT_EQ(svc.repo_ptr()->quarantined_count(), 0u);
  for (const auto& host : guest_plan.hosts) {
    for (const auto& img : host.images) {
      auto inode = w.k().fs_for(host.host, img).lookup(img);
      ASSERT_NE(inode, nullptr);
      auto bytes = inode->data.materialize(0, inode->data.size());
      ASSERT_TRUE(ckptstore::Manifest::is_manifest(bytes));
      for (const auto& key :
           ckptstore::Manifest::decode(bytes).all_keys()) {
        EXPECT_NE(svc.repo().find(key), nullptr);
        EXPECT_TRUE(svc.placement().available(key));
      }
    }
  }

  // The proof of the pudding: kill ONLY the guest computation and restart
  // it out of the shared store.
  w.guest.kill_computation();
  const auto& rr = w.guest.restart();
  EXPECT_FALSE(rr.needs_restore);
  EXPECT_EQ(rr.lost_chunks, 0u);
  ASSERT_TRUE(w.run_until_results({"a", "b"}));
}

/// Chunk references (key, len, crc) of every manifest in `ctl`'s latest
/// restart plan, in plan order — the byte-identity fingerprint.
std::vector<std::tuple<ChunkKey, u64, u32>> manifest_refs(sim::Kernel& k,
                                                          DmtcpControl& ctl) {
  std::vector<std::tuple<ChunkKey, u64, u32>> refs;
  const auto plan = ctl.read_restart_plan();
  for (const auto& host : plan.hosts) {
    for (const auto& img : host.images) {
      auto inode = k.fs_for(host.host, img).lookup(img);
      if (inode == nullptr) continue;
      auto bytes = inode->data.materialize(0, inode->data.size());
      if (!ckptstore::Manifest::is_manifest(bytes)) continue;
      const auto m = ckptstore::Manifest::decode(bytes);
      for (const auto& seg : m.segments) {
        // The tiny live "state" segment is the program's own loop counters
        // — it legitimately differs with how far the app ran before the
        // barrier. The identity claim is about the stored *data*.
        if (seg.name != "ballast") continue;
        for (const auto& c : seg.chunks) {
          refs.emplace_back(c.key, c.len, c.crc);
        }
      }
    }
  }
  return refs;
}

TEST(TenantsE2E, ManifestsAreByteIdenticalBesideANoisyNeighbor) {
  constexpr u64 kVictim = 512 * 1024;
  constexpr u64 kNoise = 2 * 1024 * 1024;
  for (const u64 seed : {0x51ull, 0x52ull}) {
    // Solo arm: tenant 1 checkpoints alone on an idle service.
    std::vector<std::tuple<ChunkKey, u64, u32>> solo;
    {
      sim::Cluster cluster([&] {
        auto cfg = sim::Cluster::lab_cluster(4);
        cfg.seed = 0x5eed;
        return cfg;
      }());
      DmtcpControl ctl(cluster.kernel(), tenant_opts(1, 7779));
      register_test_programs(cluster.kernel());
      launch_with_ballast(ctl, 0, "solo", kVictim, seed);
      ctl.checkpoint_now();
      solo = manifest_refs(cluster.kernel(), ctl);
    }
    ASSERT_FALSE(solo.empty());

    // Contended arm: the same tenant-1 workload beside tenant 2's 4x
    // checkpoint storm, with network jitter switched on — timing moves,
    // bytes must not.
    TenantWorld w(4, tenant_opts(1, 7779), tenant_opts(2, 7791));
    Rng jitter(0x9177E4 + seed);
    w.k().net().set_jitter(&jitter, 0.05);
    launch_with_ballast(w.host, 0, "solo", kVictim, seed);
    launch_with_ballast(w.guest, 1, "noise", kNoise, 0xFEED + seed);
    w.guest.request_checkpoint();  // the neighbor's storm is in flight...
    w.host.checkpoint_now();       // ...while the victim checkpoints
    const auto contended = manifest_refs(w.k(), w.host);
    EXPECT_EQ(solo, contended) << "seed " << seed;
  }
}

}  // namespace
}  // namespace dsim::test
