// The async COW checkpoint pipeline (src/ckptasync/): app-visible pause
// vs sync encode, backpressure policies (block and skip), COW page
// accounting while the drain overlaps computation, manifest byte-identity
// between sync and async rounds, and the new option surface.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ckptasync/pipeline.h"
#include "ckptstore/service.h"
#include "compress/compressor.h"
#include "core/launch.h"
#include "sim/cluster.h"
#include "sim/model_params.h"
#include "tests/testprogs.h"
#include "tests/testutil.h"
#include "util/rng.h"

namespace dsim::test {
namespace {

using core::DmtcpControl;
using core::DmtcpOptions;

struct World {
  sim::Cluster cluster;
  DmtcpControl ctl;
  World(int nodes, DmtcpOptions opts, u64 seed = 0x5eed)
      : cluster([&] {
          auto cfg = sim::Cluster::lab_cluster(nodes);
          cfg.seed = seed;
          return cfg;
        }()),
        ctl(cluster.kernel(), opts) {
    register_test_programs(cluster.kernel());
  }
  sim::Kernel& k() { return cluster.kernel(); }
  bool run_until_results(std::initializer_list<const char*> names,
                         SimTime deadline = 300 * timeconst::kSecond) {
    return ctl.run_until(
        [&] {
          for (const char* n : names) {
            if (read_result(k(), n).empty()) return false;
          }
          return true;
        },
        k().loop().now() + deadline);
  }
  bool drain_pipeline(SimTime deadline = 120 * timeconst::kSecond) {
    auto pipe = ctl.shared().async_pipeline;
    if (pipe == nullptr) return true;
    return ctl.run_until([&] { return pipe->idle(); },
                         k().loop().now() + deadline);
  }
};

DmtcpOptions async_opts(bool async, compress::CodecKind codec =
                                        compress::CodecKind::kGzipish) {
  DmtcpOptions o;
  o.incremental = true;
  o.ckpt_async = async;
  o.codec = codec;
  o.chunking = ckptstore::ChunkingMode::kCdc;
  o.cdc_min_bytes = 2 * 1024;
  o.cdc_avg_bytes = 8 * 1024;
  o.cdc_max_bytes = 32 * 1024;
  o.dedup_scope = core::DedupScope::kCluster;
  o.chunk_replicas = 1;
  o.store_shards = 1;
  o.store_node = 2;
  return o;
}

void add_ballast(World& w, Pid pid, u64 bytes, u64 seed) {
  sim::Process* p = w.k().find_process(pid);
  ASSERT_NE(p, nullptr);
  auto& seg = p->mem().add("ballast", sim::MemKind::kHeap, bytes);
  seg.data.fill(0, bytes, sim::ExtentKind::kRand, seed);
}

/// Compressible *real* bytes (run-length structure, seeded per rank so the
/// ranks don't dedup against each other): unlike pattern extents, these are
/// host-compressed by the encoder, so codec choice shows up in the ratio.
void add_compressible_ballast(World& w, Pid pid, u64 bytes, u64 seed) {
  sim::Process* p = w.k().find_process(pid);
  ASSERT_NE(p, nullptr);
  auto& seg = p->mem().add("ballast", sim::MemKind::kHeap, bytes);
  std::vector<std::byte> data(bytes);
  Rng rng(seed);
  size_t i = 0;
  while (i < bytes) {
    const auto v = static_cast<std::byte>(rng.next_below(4));
    const size_t run = 1 + rng.next_below(300);
    for (size_t j = 0; j < run && i < bytes; ++j) data[i++] = v;
  }
  seg.data.write(0, data);
}

std::vector<std::vector<std::byte>> plan_manifests(World& w) {
  std::vector<std::vector<std::byte>> out;
  const core::RestartPlan plan = w.ctl.read_restart_plan();
  for (const auto& host : plan.hosts) {
    for (const auto& img : host.images) {
      auto inode = w.k().fs_for(host.host, img).lookup(img);
      EXPECT_NE(inode, nullptr);
      if (inode) out.push_back(inode->data.materialize(0, inode->data.size()));
    }
  }
  return out;
}

/// One seeded round over a 4MB-per-rank world; returns the app-visible
/// pause and leaves the world usable for manifest/restart inspection.
double one_round_pause(World& w) {
  const Pid pa = w.ctl.launch(0, kComputeLoop, {"1000000", "200", "a"});
  const Pid pb = w.ctl.launch(1, kComputeLoop, {"1000000", "200", "b"});
  w.ctl.run_for(20 * timeconst::kMillisecond);
  add_ballast(w, pa, 4 * 1024 * 1024, 0xAA);
  add_ballast(w, pb, 4 * 1024 * 1024, 0xBB);
  return w.ctl.checkpoint_now().total_seconds();
}

TEST(CkptAsync, PauseBeatsSyncEncodeAndManifestsAreByteIdentical) {
  World sync_w(4, async_opts(false));
  const double sync_pause = one_round_pause(sync_w);
  const auto sync_manifests = plan_manifests(sync_w);

  World async_w(4, async_opts(true));
  const double async_pause = one_round_pause(async_w);
  ASSERT_TRUE(async_w.drain_pipeline());
  const auto async_manifests = plan_manifests(async_w);

  // The app only pays fork/COW; encode+store CPU moved behind its back.
  EXPECT_LT(async_pause, 0.5 * sync_pause)
      << "sync " << sync_pause << "s vs async " << async_pause << "s";

  // Moving the *charging* off the critical path must not move a byte:
  // the background round writes the identical manifests.
  ASSERT_EQ(async_manifests.size(), sync_manifests.size());
  for (size_t i = 0; i < sync_manifests.size(); ++i) {
    EXPECT_EQ(async_manifests[i], sync_manifests[i]) << "manifest " << i;
  }

  const auto& r = async_w.ctl.stats().rounds.back();
  EXPECT_GT(r.async_queued_bytes, 0u);
  EXPECT_GT(r.store_raw_new_bytes, 0u);
  EXPECT_GT(r.compress_ratio, 0.0);
  EXPECT_LE(r.compress_ratio, 1.01);  // pattern-rand ballast: ~1:1 + header
  EXPECT_GT(r.dirty_page_fraction, 0.9);  // generation 0: everything new

  // And the checkpoint actually restarts.
  async_w.ctl.kill_computation();
  const auto& rr = async_w.ctl.restart();
  EXPECT_FALSE(rr.needs_restore);
  EXPECT_EQ(rr.procs, 2);
  ASSERT_TRUE(async_w.run_until_results({"a", "b"}));
}

TEST(CkptAsync, CompressedAndUncompressedRestartsAgree) {
  for (const auto codec :
       {compress::CodecKind::kNone, compress::CodecKind::kLz77,
        compress::CodecKind::kGzipish}) {
    World w(4, async_opts(true, codec));
    const Pid pa = w.ctl.launch(0, kComputeLoop, {"1000000", "200", "a"});
    const Pid pb = w.ctl.launch(1, kComputeLoop, {"1000000", "200", "b"});
    w.ctl.run_for(20 * timeconst::kMillisecond);
    add_compressible_ballast(w, pa, 2 * 1024 * 1024, 0xAA);
    add_compressible_ballast(w, pb, 2 * 1024 * 1024, 0xBB);
    w.ctl.checkpoint_now();
    ASSERT_TRUE(w.drain_pipeline());
    const auto& r = w.ctl.stats().rounds.back();
    if (codec != compress::CodecKind::kNone) {
      EXPECT_LT(r.compress_ratio, 1.0) << compress::codec_name(codec);
    }
    w.ctl.kill_computation();
    const auto& rr = w.ctl.restart();
    EXPECT_FALSE(rr.needs_restore) << compress::codec_name(codec);
    EXPECT_EQ(rr.procs, 2);
    ASSERT_TRUE(w.run_until_results({"a", "b"}));
  }
}

TEST(CkptAsync, BlockPolicyStallsTheNextRoundUntilTheDrainFinishes) {
  auto opts = async_opts(true);
  opts.compress_bw = 2 * 1000 * 1000;  // a slow background compressor
  World w(4, opts);
  one_round_pause(w);
  // Round 2 starts while round 1's jobs are still draining: the block
  // policy holds write_image until the pipeline frees the rank's slot.
  ASSERT_FALSE(w.ctl.shared().async_pipeline->idle());
  w.ctl.checkpoint_now();
  const auto& r2 = w.ctl.stats().rounds.back();
  EXPECT_GT(r2.async_blocked_seconds, 0.0);
  EXPECT_EQ(r2.async_skipped_procs, 0u);
  EXPECT_GT(w.ctl.shared().async_pipeline->stats().blocked_seconds, 0.0);
}

TEST(CkptAsync, SkipPolicyDropsTheRoundAndRestartsOffThePreviousImage) {
  auto opts = async_opts(true);
  opts.compress_bw = 2 * 1000 * 1000;
  opts.async_backpressure = core::AsyncBackpressure::kSkip;
  World w(4, opts);
  one_round_pause(w);
  ASSERT_FALSE(w.ctl.shared().async_pipeline->idle());
  w.ctl.checkpoint_now();
  const auto& r2 = w.ctl.stats().rounds.back();
  EXPECT_GT(r2.async_skipped_procs, 0u);
  EXPECT_EQ(r2.async_blocked_seconds, 0.0);
  EXPECT_GT(w.ctl.shared().async_pipeline->stats().skipped_rounds, 0u);
  // The previous generation's manifests (same path every round) still
  // restart the computation.
  ASSERT_TRUE(w.drain_pipeline());
  w.ctl.kill_computation();
  const auto& rr = w.ctl.restart();
  EXPECT_FALSE(rr.needs_restore);
  EXPECT_EQ(rr.procs, 2);
  ASSERT_TRUE(w.run_until_results({"a", "b"}));
}

TEST(CkptAsync, CowPagesAreCountedWhenTheAppWritesDuringTheDrain) {
  auto opts = async_opts(true);
  opts.compress_bw = 1 * 1000 * 1000;  // stretch the drain window
  World w(4, opts);
  const Pid pa = w.ctl.launch(0, kComputeLoop, {"1000000", "200", "a"});
  w.ctl.run_for(20 * timeconst::kMillisecond);
  add_ballast(w, pa, 4 * 1024 * 1024, 0xAA);
  w.ctl.checkpoint_now();
  ASSERT_FALSE(w.ctl.shared().async_pipeline->idle());

  // The app dirties pages mid-drain: each first touch costs one page copy.
  sim::Process* p = w.k().find_process(pa);
  ASSERT_NE(p, nullptr);
  sim::MemSegment* seg = p->mem().find("ballast");
  ASSERT_NE(seg, nullptr);
  const u64 touch = 16 * sim::params::kCowPageBytes;
  seg->data.fill(0, touch, sim::ExtentKind::kRand, 0xD1);
  w.ctl.run_for(10 * timeconst::kMillisecond);

  const auto& ps = w.ctl.shared().async_pipeline->stats();
  EXPECT_GE(ps.cow_pages_copied, 16u);
  EXPECT_GT(ps.cow_copy_seconds, 0.0);
  // Re-touching the same pages is free: the COW copy happened already.
  const u64 copied = ps.cow_pages_copied;
  seg->data.fill(0, touch, sim::ExtentKind::kRand, 0xD2);
  EXPECT_EQ(w.ctl.shared().async_pipeline->stats().cow_pages_copied, copied);

  ASSERT_TRUE(w.drain_pipeline());
  EXPECT_EQ(ps.jobs_completed, ps.jobs_started);
}

TEST(CkptAsync, OptionSurfaceParsesAndValidates) {
  DmtcpOptions o;
  std::vector<std::string> argv{"--incremental",  "--dedup-scope",
                                "cluster",        "--ckpt-async",
                                "--compress",     "lz77+huffman",
                                "--async-backpressure", "skip",
                                "--compress-bw",  "30000000"};
  EXPECT_EQ(o.apply_flags(argv), "");
  EXPECT_TRUE(argv.empty());
  EXPECT_TRUE(o.ckpt_async);
  EXPECT_EQ(o.codec, compress::CodecKind::kGzipish);
  EXPECT_EQ(o.async_backpressure, core::AsyncBackpressure::kSkip);
  EXPECT_EQ(o.compress_bw, 30000000.0);

  DmtcpOptions plain;
  std::vector<std::string> no_incr{"--ckpt-async"};
  EXPECT_NE(plain.apply_flags(no_incr), "");  // requires --incremental

  DmtcpOptions forked;
  forked.incremental = true;
  forked.ckpt_async = true;
  forked.forked_checkpointing = true;
  EXPECT_NE(forked.validate(), "");  // the two pipelines conflict

  DmtcpOptions bad_codec;
  std::vector<std::string> zstd{"--compress", "zstd"};
  EXPECT_NE(bad_codec.apply_flags(zstd), "");

  DmtcpOptions bad_policy;
  std::vector<std::string> pol{"--async-backpressure", "shrug"};
  EXPECT_NE(bad_policy.apply_flags(pol), "");
}

}  // namespace
}  // namespace dsim::test
