// Round-health engine: critical-path attribution over the span timeline,
// the per-round time-series ring, the registry delta that feeds it, and
// the SLO/alert state machine — unit-level first, then end-to-end through
// a jittered world where a mid-round endpoint kill must fire exactly the
// heal-backlog alert and clear it once re-replication drains.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "ckptstore/service.h"
#include "core/launch.h"
#include "obs/critpath.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "sim/cluster.h"
#include "tests/testprogs.h"
#include "tests/testutil.h"
#include "util/rng.h"

namespace dsim::test {
namespace {

using core::DmtcpControl;
using core::DmtcpOptions;
using obs::AlertEvent;
using obs::CritPathReport;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::PhaseMark;
using obs::RoundSeries;
using obs::SloEngine;
using obs::SloRule;
using obs::Tracer;

// --- Critical-path sweep -----------------------------------------------------

const obs::CritPathEntry* find_stage(const CritPathReport& rep,
                                     const std::string& stage) {
  for (const auto& e : rep.entries) {
    if (e.stage == stage) return &e;
  }
  return nullptr;
}

TEST(CritPathTest, NestedSpanTailWinsItsSegment) {
  Tracer tr;
  const u64 root = tr.begin("root", 5, "work", 100);
  const u64 child = tr.begin("child", 5, "work", 300);
  tr.end(child, 900);
  tr.end(root, 900);
  const CritPathReport rep = obs::critical_path(
      tr, 0, 1000, {{"phase.a", 0, 1000}});
  // Backward from 1000: gap to 900 -> phase.a; child (latest-started
  // active at 900) takes [300, 900); root takes [100, 300); gap [0, 100)
  // -> phase.a again. Exact partition of the kilosecond... nanoseconds.
  EXPECT_EQ(rep.attributed_ns(), rep.total_ns());
  ASSERT_NE(find_stage(rep, "child"), nullptr);
  EXPECT_EQ(find_stage(rep, "child")->ns, 600);
  ASSERT_NE(find_stage(rep, "root"), nullptr);
  EXPECT_EQ(find_stage(rep, "root")->ns, 200);
  ASSERT_NE(find_stage(rep, "phase.a"), nullptr);
  EXPECT_EQ(find_stage(rep, "phase.a")->ns, 200);
  // Ranked by attributed time: the child leads.
  EXPECT_EQ(rep.entries.front().stage, "child");
  EXPECT_DOUBLE_EQ(rep.fraction(0), 0.6);
}

TEST(CritPathTest, ConcurrentLanesLatestStartWins) {
  Tracer tr;
  const u64 a = tr.begin("stage.a", 5, "lane.x", 100);
  const u64 b = tr.begin("stage.b", 5, "lane.y", 200);
  tr.end(a, 600);
  tr.end(b, 600);
  const CritPathReport rep =
      obs::critical_path(tr, 100, 600, {{"phase", 100, 600}});
  // Both lanes are active at the tail; the later-started dependency is
  // the one the tail actually waited on.
  EXPECT_EQ(rep.attributed_ns(), 500);
  ASSERT_NE(find_stage(rep, "stage.b"), nullptr);
  EXPECT_EQ(find_stage(rep, "stage.b")->ns, 400);
  ASSERT_NE(find_stage(rep, "stage.a"), nullptr);
  EXPECT_EQ(find_stage(rep, "stage.a")->ns, 100);
  EXPECT_EQ(find_stage(rep, "phase"), nullptr);
}

TEST(CritPathTest, UncoveredGapsSplitAcrossPhasesAndIdle) {
  Tracer tr;  // no spans at all
  const CritPathReport rep = obs::critical_path(
      tr, 0, 1000,
      {{"barrier.suspend", 100, 400}, {"barrier.write", 400, 800}});
  // [0,100) precedes every phase -> idle; the phases split the middle at
  // their exact boundary; [800,1000) trails every phase -> idle.
  EXPECT_EQ(rep.attributed_ns(), 1000);
  EXPECT_EQ(find_stage(rep, "barrier.suspend")->ns, 300);
  EXPECT_EQ(find_stage(rep, "barrier.write")->ns, 400);
  EXPECT_EQ(find_stage(rep, "idle")->ns, 300);
}

TEST(CritPathTest, ZeroLengthSpansNeverExplainElapsedTime) {
  Tracer tr;
  const u64 marker = tr.begin("alert.fired", 5, "alert.x", 500);
  tr.end(marker, 500);
  const CritPathReport rep =
      obs::critical_path(tr, 0, 1000, {{"phase", 0, 1000}});
  EXPECT_EQ(find_stage(rep, "alert.fired"), nullptr);
  EXPECT_EQ(find_stage(rep, "phase")->ns, 1000);
}

TEST(CritPathTest, WindowClampsSpansCrossingItsEdges) {
  Tracer tr;
  const u64 s = tr.begin("spill", 5, "work", 100);
  tr.end(s, 2000);
  const CritPathReport rep =
      obs::critical_path(tr, 500, 1500, {{"phase", 500, 1500}});
  // The span covers the whole window; only the window's share is charged.
  EXPECT_EQ(rep.attributed_ns(), 1000);
  EXPECT_EQ(find_stage(rep, "spill")->ns, 1000);
}

// --- RoundSeries -------------------------------------------------------------

RoundSeries::Sample sample(i64 round, SimTime at, double pause,
                           double degraded) {
  RoundSeries::Sample s;
  s.round = round;
  s.at = at;
  s.values["pause_seconds"] = pause;
  s.values["degraded_chunks"] = degraded;
  return s;
}

TEST(RoundSeriesTest, RingDropsOldestAndCounts) {
  RoundSeries series(3);
  for (i64 r = 0; r < 5; ++r) {
    series.push(sample(r, r * 1000, 0.1 * static_cast<double>(r + 1), 0));
  }
  EXPECT_EQ(series.size(), 3u);
  EXPECT_EQ(series.dropped(), 2u);
  EXPECT_EQ(series.samples().front().round, 2);
  EXPECT_EQ(series.back().round, 4);
  EXPECT_DOUBLE_EQ(series.value("pause_seconds"), 0.5);
  EXPECT_DOUBLE_EQ(series.value("pause_seconds", 2), 0.3);
  EXPECT_DOUBLE_EQ(series.value("pause_seconds", 3), 0.0);  // fell off
  EXPECT_DOUBLE_EQ(series.value("no_such_metric"), 0.0);
}

TEST(RoundSeriesTest, WindowQuantileIsExactSort) {
  RoundSeries series;
  for (i64 r = 0; r < 4; ++r) {
    series.push(sample(r, r, 0.1 * static_cast<double>(4 - r), 0));
  }
  // Window values (last 4): {0.4, 0.3, 0.2, 0.1}. rank ceil(0.5*4)=2 of
  // the sorted window -> 0.2; p100 -> 0.4.
  EXPECT_DOUBLE_EQ(series.window_quantile("pause_seconds", 0.5, 4), 0.2);
  EXPECT_DOUBLE_EQ(series.window_quantile("pause_seconds", 1.0, 4), 0.4);
  // A window of 2 sees only the freshest samples {0.2, 0.1}.
  EXPECT_DOUBLE_EQ(series.window_quantile("pause_seconds", 1.0, 2), 0.2);
}

TEST(RoundSeriesTest, BurnAndConsecutiveNonzero) {
  RoundSeries series;
  series.push(sample(0, 0, 0.6, 0));
  series.push(sample(1, 1, 0.1, 3));
  series.push(sample(2, 2, 0.7, 2));
  EXPECT_DOUBLE_EQ(series.window_burn("pause_seconds", 0.5, 3), 2.0 / 3.0);
  EXPECT_EQ(series.consecutive_nonzero("degraded_chunks"), 2u);
  series.push(sample(3, 3, 0.1, 0));
  EXPECT_EQ(series.consecutive_nonzero("degraded_chunks"), 0u);
}

TEST(RoundSeriesTest, JsonIsStableAcrossRebuilds) {
  const auto build = [] {
    RoundSeries s;
    s.push(sample(0, 12345, 0.25, 1));
    s.push(sample(1, 67890, 0.125, 0));
    return s.json();
  };
  const std::string a = build();
  EXPECT_EQ(a, build());
  EXPECT_NE(a.find("\"rounds\":"), std::string::npos);
  EXPECT_NE(a.find("\"pause_seconds\":0.25"), std::string::npos);
}

// --- MetricsRegistry::delta_since ---------------------------------------------

TEST(MetricsRegistryTest, DeltaSubtractsCountersAndKeepsGauges) {
  MetricsRegistry prev, now;
  prev.counter("store.lookups", 100);
  now.counter("store.lookups", 140);
  now.counter("store.replays", 3);  // absent from prev -> baseline 0
  prev.gauge("store.degraded_chunks", 7);
  now.gauge("store.degraded_chunks", 2);
  Histogram hp, hn;
  hp.record(0.010);
  hn = hp;
  hn.record(0.030);
  prev.histogram("wait", hp);
  now.histogram("wait", hn);

  const MetricsRegistry delta = now.delta_since(prev);
  EXPECT_EQ(delta.counters().at("store.lookups"), 40u);
  EXPECT_EQ(delta.counters().at("store.replays"), 3u);
  // A gauge is a level, not a rate: the per-round value IS the level.
  EXPECT_DOUBLE_EQ(delta.gauges().at("store.degraded_chunks"), 2.0);
  EXPECT_EQ(delta.histograms().at("wait").count(), 1u);
  EXPECT_DOUBLE_EQ(delta.histograms().at("wait").sum(), 0.030);
}

// --- SloEngine ---------------------------------------------------------------

TEST(SloEngineTest, ParsesEveryRuleKindAndRejectsGarbage) {
  std::vector<SloRule> rules;
  EXPECT_EQ(SloEngine::parse(
                "pause: pause_seconds <= 0.5; "
                "tail: p99(pause_seconds, 8) <= 0.6; "
                "heal: drain(degraded_chunks, 2); "
                "burn: burn(pause_seconds > 0.4, 8) <= 0.25",
                &rules),
            "");
  ASSERT_EQ(rules.size(), 4u);
  EXPECT_EQ(rules[0].kind, SloRule::Kind::kThreshold);
  EXPECT_EQ(rules[1].kind, SloRule::Kind::kQuantile);
  EXPECT_DOUBLE_EQ(rules[1].q, 0.99);
  EXPECT_EQ(rules[1].window, 8u);
  EXPECT_EQ(rules[2].kind, SloRule::Kind::kDrain);
  EXPECT_EQ(rules[2].drain_rounds, 2u);
  EXPECT_EQ(rules[3].kind, SloRule::Kind::kBurn);
  EXPECT_EQ(rules[3].inner_op, ">");
  EXPECT_DOUBLE_EQ(rules[3].inner_bound, 0.4);

  std::vector<SloRule> junk;
  EXPECT_NE(SloEngine::parse("no_colon_here", &junk), "");
  EXPECT_NE(SloEngine::parse("r: metric ~~ 5", &junk), "");
  EXPECT_NE(SloEngine::parse("r: p99(pause_seconds) <= 1", &junk), "");
  EXPECT_NE(SloEngine::parse("r: drain(x, many)", &junk), "");
  EXPECT_NE(SloEngine::parse("r: burn(x > 1, 4)", &junk), "");
}

TEST(SloEngineTest, BadSloFlagFailsOptionValidation) {
  DmtcpOptions o;
  std::vector<std::string> argv = {"--slo", "bad rule without colon"};
  // A malformed spec is rejected at flag-parse time, before launch.
  const std::string err = o.apply_flags(argv);
  EXPECT_NE(err.find("lacks a 'name:' prefix"), std::string::npos) << err;
  // validate() guards the programmatic path (options set directly).
  o.slo = "also bad";
  EXPECT_FALSE(o.validate().empty());
  o.slo = "ok: pause_seconds <= 1";
  EXPECT_TRUE(o.validate().empty());
}

TEST(SloEngineTest, ThresholdFiresAndClears) {
  SloEngine eng;
  ASSERT_EQ(eng.add_rules("pause: pause_seconds <= 0.5"), "");
  RoundSeries series;
  series.push(sample(0, 1000, 0.2, 0));
  EXPECT_TRUE(eng.evaluate(series).empty());
  series.push(sample(1, 2000, 0.7, 0));
  auto events = eng.evaluate(series);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].fired);
  EXPECT_EQ(events[0].rule, "pause");
  EXPECT_EQ(events[0].round, 1);
  EXPECT_EQ(events[0].at, 2000);
  EXPECT_DOUBLE_EQ(events[0].value, 0.7);
  EXPECT_EQ(eng.active(), std::vector<std::string>{"pause"});
  // Still violating: no duplicate event while the alert stays up.
  series.push(sample(2, 3000, 0.9, 0));
  EXPECT_TRUE(eng.evaluate(series).empty());
  series.push(sample(3, 4000, 0.1, 0));
  events = eng.evaluate(series);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_FALSE(events[0].fired);
  EXPECT_TRUE(eng.active().empty());
  EXPECT_EQ(eng.alerts_fired(), 1u);
}

TEST(SloEngineTest, DrainAllowsTheGraceWindowThenFires) {
  SloEngine eng;
  ASSERT_EQ(eng.add_rules("heal: drain(degraded_chunks, 2)"), "");
  RoundSeries series;
  series.push(sample(0, 1, 0, 5));
  EXPECT_TRUE(eng.evaluate(series).empty());  // 1 nonzero round: within N
  series.push(sample(1, 2, 0, 3));
  EXPECT_TRUE(eng.evaluate(series).empty());  // 2: still within
  series.push(sample(2, 3, 0, 1));
  auto events = eng.evaluate(series);  // 3 consecutive > 2: backlog stuck
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].fired);
  series.push(sample(3, 4, 0, 0));
  events = eng.evaluate(series);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_FALSE(events[0].fired);
}

TEST(SloEngineTest, BurnRateOverSlidingWindow) {
  SloEngine eng;
  ASSERT_EQ(eng.add_rules("burn: burn(pause_seconds > 0.4, 4) <= 0.5"), "");
  RoundSeries series;
  // The window holds one sample and it violates: burn 1.0 > 0.5, fires.
  series.push(sample(0, 1, 0.6, 0));
  auto events = eng.evaluate(series);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].fired);
  EXPECT_DOUBLE_EQ(events[0].value, 1.0);
  // Healthy rounds dilute the burn below the bound: {0.6,0.1,0.1} is 1/3.
  series.push(sample(1, 2, 0.1, 0));
  series.push(sample(2, 3, 0.1, 0));
  events = eng.evaluate(series);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_FALSE(events[0].fired);
  EXPECT_TRUE(eng.active().empty());
  EXPECT_EQ(eng.alerts_fired(), 1u);
}

TEST(SloEngineTest, JsonEchoesRulesEventsAndActiveSet) {
  SloEngine eng;
  ASSERT_EQ(eng.add_rules("pause: pause_seconds <= 0.5"), "");
  RoundSeries series;
  series.push(sample(0, 5000, 0.9, 0));
  eng.evaluate(series);
  const std::string j = eng.json();
  EXPECT_NE(j.find("\"rules\":"), std::string::npos);
  EXPECT_NE(j.find("\"pause_seconds <= 0.5\""), std::string::npos);
  EXPECT_NE(j.find("\"active\":[\"pause\"]"), std::string::npos);
  EXPECT_NE(j.find("\"alerts_fired\":1"), std::string::npos);
  EXPECT_NE(j.find("\"type\":\"fired\""), std::string::npos);
}

// --- End-to-end through a jittered world --------------------------------------

struct World {
  sim::Cluster cluster;
  DmtcpControl ctl;
  Rng jitter_rng;
  World(int nodes, DmtcpOptions opts, u64 seed)
      : cluster([&] {
          auto cfg = sim::Cluster::lab_cluster(nodes);
          cfg.seed = seed;
          return cfg;
        }()),
        ctl(cluster.kernel(), opts),
        jitter_rng(seed ^ 0x0B5E111) {
    register_test_programs(cluster.kernel());
    cluster.kernel().net().set_jitter(&jitter_rng, 0.25);
  }
  sim::Kernel& k() { return cluster.kernel(); }
};

DmtcpOptions health_opts(const std::string& health_out) {
  DmtcpOptions o;
  o.incremental = true;
  o.codec = compress::CodecKind::kNone;
  o.chunking = ckptstore::ChunkingMode::kCdc;
  o.cdc_min_bytes = 2 * 1024;
  o.cdc_avg_bytes = 8 * 1024;
  o.cdc_max_bytes = 32 * 1024;
  o.dedup_scope = core::DedupScope::kCluster;
  o.chunk_replicas = 2;
  o.store_shards = 2;
  o.store_node = 2;
  o.health_out = health_out;
  o.slo =
      "pause: pause_seconds <= 120; "
      "parked: parked_requests == 0; "
      "heal: drain(degraded_chunks, 0)";
  return o;
}

void add_ballast(World& w, Pid pid, u64 bytes, u64 seed) {
  sim::Process* p = w.k().find_process(pid);
  ASSERT_NE(p, nullptr);
  auto& seg = p->mem().add("ballast", sim::MemKind::kHeap, bytes);
  seg.data.fill(0, bytes, sim::ExtentKind::kRand, seed);
}

TEST(HealthWorld, HealthySweepSamplesEveryRoundAndFiresNothing) {
  World w(4, health_opts(""), 0x6EA1);
  const Pid pa = w.ctl.launch(0, kComputeLoop, {"1000000", "200", "a"});
  w.ctl.run_for(20 * timeconst::kMillisecond);
  add_ballast(w, pa, 512 * 1024, 0xAB);
  w.ctl.checkpoint_now();
  w.ctl.checkpoint_now();

  const auto& sh = w.ctl.shared();
  ASSERT_NE(sh.health_series, nullptr);
  ASSERT_NE(sh.slo_engine, nullptr);
  EXPECT_EQ(sh.health_series->size(), 2u);
  EXPECT_EQ(sh.slo_engine->alerts_fired(), 0u);
  EXPECT_TRUE(sh.slo_engine->active().empty());
  // The series carries the aliased health metrics the rules bind to.
  EXPECT_GT(sh.health_series->value("pause_seconds"), 0.0);
  EXPECT_DOUBLE_EQ(sh.health_series->value("degraded_chunks"), 0.0);
  EXPECT_DOUBLE_EQ(sh.health_series->value("parked_requests"), 0.0);

  // Each round's critical path partitions its window exactly and sums to
  // the stage_breakdown barrier total.
  for (const core::CkptRound& r : w.ctl.stats().rounds) {
    EXPECT_EQ(r.critical_path.attributed_ns(), r.refilled - r.requested);
    EXPECT_NEAR(r.critical_path.total_seconds(), r.total_seconds(), 1e-9);
    EXPECT_FALSE(r.critical_path.entries.empty());
  }
}

TEST(HealthWorld, KillFiresExactlyHealBacklogAndClears) {
  World w(4, health_opts(""), 0xFA11);
  const Pid pa = w.ctl.launch(0, kComputeLoop, {"1000000", "200", "a"});
  const Pid pb = w.ctl.launch(1, kComputeLoop, {"1000000", "200", "b"});
  w.ctl.run_for(20 * timeconst::kMillisecond);
  add_ballast(w, pa, 1024 * 1024, 0xAA);
  add_ballast(w, pb, 1024 * 1024, 0xBB);
  w.ctl.checkpoint_now();

  // Kill the shard endpoint right after the drain barrier: the write
  // phase parks, fails over, replays — and the round's close sees the
  // degraded chunks, so the drain rule fires.
  const size_t round_idx = w.ctl.stats().rounds.size();
  w.ctl.request_checkpoint();
  ASSERT_TRUE(w.ctl.run_until(
      [&] {
        return w.ctl.stats().rounds.size() > round_idx &&
               w.ctl.stats().rounds[round_idx].drained != 0;
      },
      w.k().loop().now() + 60 * timeconst::kSecond));
  w.ctl.shared().store_service->fail_node(2);
  ASSERT_TRUE(w.ctl.run_until(
      [&] { return w.ctl.stats().rounds[round_idx].refilled != 0; },
      w.k().loop().now() + 60 * timeconst::kSecond));

  auto* eng = w.ctl.shared().slo_engine.get();
  ASSERT_EQ(eng->active(), std::vector<std::string>{"heal"});
  EXPECT_EQ(eng->alerts_fired(), 1u);
  ASSERT_FALSE(eng->events().empty());
  EXPECT_EQ(eng->events().back().rule, "heal");
  EXPECT_TRUE(eng->events().back().fired);
  EXPECT_EQ(eng->events().back().round,
            static_cast<i64>(round_idx));

  // The transition is mirrored into the trace as a zero-duration span on
  // the alert lane.
  bool alert_span = false;
  for (const obs::SpanRecord& s : w.ctl.shared().tracer->spans()) {
    if (std::string(s.name) == "alert.fired") alert_span = true;
  }
  EXPECT_TRUE(alert_span);

  // Re-replication drains the backlog; the next round boundaries observe
  // degraded == 0 and clear the alert.
  int extra = 0;
  while (!eng->active().empty() && extra < 5) {
    w.ctl.run_for(250 * timeconst::kMillisecond);
    w.ctl.checkpoint_now();
    extra++;
  }
  EXPECT_TRUE(eng->active().empty());
  EXPECT_LE(extra, 2);
  EXPECT_FALSE(eng->events().back().fired);
}

TEST(HealthWorld, HealthJsonIsByteIdenticalAcrossIdenticalRuns) {
  const auto run = [](u64 seed) {
    World w(4, health_opts(""), seed);
    const Pid pa = w.ctl.launch(0, kComputeLoop, {"1000000", "200", "a"});
    w.ctl.run_for(20 * timeconst::kMillisecond);
    add_ballast(w, pa, 512 * 1024, 0xAB);
    w.ctl.checkpoint_now();
    w.ctl.checkpoint_now();
    w.ctl.shared().membership->stop();
    w.ctl.run_for(200 * timeconst::kMillisecond);
    return w.ctl.health_json();
  };
  const std::string a = run(0x0B5A);
  const std::string b = run(0x0B5A);
  EXPECT_GT(a.size(), 1000u);
  EXPECT_EQ(a, b);
  // The document carries all three sections.
  EXPECT_NE(a.find("\"series\":"), std::string::npos);
  EXPECT_NE(a.find("\"critical_path\":"), std::string::npos);
  EXPECT_NE(a.find("\"slo\":"), std::string::npos);
  EXPECT_NE(a.find("\"phases\":"), std::string::npos);
}

TEST(HealthWorld, HealthOutFlagWritesTheDocument) {
  const std::string path = "/tmp/dsim_test_health_out.json";
  std::remove(path.c_str());
  {
    World w(4, health_opts(path), 0x0B5B);
    const Pid pa = w.ctl.launch(0, kComputeLoop, {"1000000", "200", "a"});
    w.ctl.run_for(20 * timeconst::kMillisecond);
    add_ballast(w, pa, 256 * 1024, 0xAC);
    w.ctl.checkpoint_now();
  }  // destruction flushes
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string doc((std::istreambuf_iterator<char>(f)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(doc.find("\"critical_path\":"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dsim::test
