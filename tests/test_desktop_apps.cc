// Desktop-application coverage (§5.1): every one of the paper's 21 profiles
// checkpoints and restarts; compressed sizes track the calibrated targets;
// the multi-process profiles restore their co-processes and ptys.
#include <gtest/gtest.h>

#include "apps/desktop.h"
#include "core/launch.h"
#include "sim/cluster.h"
#include "tests/testprogs.h"

namespace dsim::test {
namespace {

struct DeskWorld {
  sim::Cluster cluster;
  core::DmtcpControl ctl;
  DeskWorld()
      : cluster(sim::Cluster::single_node()), ctl(cluster.kernel(), {}) {
    apps::register_desktop_programs(cluster.kernel());
  }
  sim::Kernel& k() { return cluster.kernel(); }
};

class DesktopProfiles : public ::testing::TestWithParam<int> {};

TEST_P(DesktopProfiles, CheckpointKillRestartCompletes) {
  const auto& prof =
      apps::desktop_profiles()[static_cast<size_t>(GetParam())];
  DeskWorld w;
  const std::string res = "d_" + std::to_string(GetParam());
  w.ctl.launch(0, "desktop_app", {prof.name, "200", res});
  w.ctl.run_for(50 * timeconst::kMillisecond);
  const auto& round = w.ctl.checkpoint_now();
  EXPECT_GT(round.total_uncompressed, 0u);
  // Compressed size should be within 25% of the calibrated target
  // (rss * ratio) — this pins the Fig. 3b reproduction.
  const double target_mb = prof.rss_mb * prof.compress_ratio;
  const double got_mb =
      static_cast<double>(round.total_compressed) / 1048576.0;
  if (prof.child == nullptr) {  // co-processes add their own image
    EXPECT_NEAR(got_mb, target_mb, target_mb * 0.25) << prof.name;
  }
  w.ctl.kill_computation();
  const auto& rr = w.ctl.restart();
  EXPECT_GE(rr.procs, prof.child ? 2 : 1);
  const bool done = w.ctl.run_until(
      [&] { return !read_result(w.k(), res).empty(); },
      w.k().loop().now() + 300 * timeconst::kSecond);
  EXPECT_TRUE(done) << prof.name;
}

INSTANTIATE_TEST_SUITE_P(
    All21PlusRunCms, DesktopProfiles,
    ::testing::Range(0, static_cast<int>(apps::desktop_profiles().size())),
    [](const auto& info) {
      std::string n = apps::desktop_profiles()[static_cast<size_t>(
                          info.param)].name;
      for (char& c : n) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

TEST(DesktopApps, MultiThreadedProfileRestoresWorkers) {
  DeskWorld w;
  w.ctl.launch(0, "desktop_app", {"matlab", "300", "mt"});
  w.ctl.run_for(40 * timeconst::kMillisecond);
  w.ctl.checkpoint_now();
  w.ctl.kill_computation();
  w.ctl.restart();
  // MATLAB's profile declares 4 threads; all must be live after restart.
  int threads = 0;
  for (Pid pid : w.k().live_pids()) {
    sim::Process* p = w.k().find_process(pid);
    if (p->prog_name() != "desktop_app") continue;
    for (auto& t : p->threads()) {
      if (t->alive() && t->kind() != sim::ThreadKind::kManager) threads++;
    }
  }
  EXPECT_EQ(threads, 4);
  EXPECT_TRUE(w.ctl.run_until(
      [&] { return !read_result(w.k(), "mt").empty(); },
      w.k().loop().now() + 300 * timeconst::kSecond));
}

TEST(DesktopApps, SignalDispositionsSurviveRestart) {
  DeskWorld w;
  const Pid pid = w.ctl.launch(0, "desktop_app", {"emacs", "300", "sig"});
  w.ctl.run_for(40 * timeconst::kMillisecond);
  {
    sim::Process* p = w.k().find_process(pid);
    ASSERT_EQ(p->signals().handler[2], 7);  // installed by the app
  }
  w.ctl.checkpoint_now();
  w.ctl.kill_computation();
  w.ctl.restart();
  bool found = false;
  for (Pid lp : w.k().live_pids()) {
    sim::Process* p = w.k().find_process(lp);
    if (p->prog_name() == "desktop_app") {
      EXPECT_EQ(p->signals().handler[2], 7);
      EXPECT_EQ(p->signals().handler[15], 7);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace dsim::test
