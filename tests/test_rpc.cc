// The RPC fabric: request/return hops over the simulated network, serialized
// per-message CPU at the endpoint node, loopback for colocated callers, and
// ordering under jitter.
#include <gtest/gtest.h>

#include <vector>

#include "rpc/rpc.h"
#include "sim/event_loop.h"
#include "sim/model_params.h"
#include "sim/net.h"
#include "util/rng.h"

namespace dsim::test {
namespace {

namespace params = sim::params;

TEST(RpcFabric, ChargesBothHopsAndCountsStats) {
  sim::EventLoop loop;
  sim::Network net(loop, 4);
  rpc::RpcFabric rpc(loop, net);
  bool served = false, done = false;
  SimTime served_at = 0, done_at = 0;
  rpc.call(0, 2, 4096, 512,
           [&](rpc::RpcFabric::Reply reply) {
             served = true;
             served_at = loop.now();
             reply();
           },
           [&] {
             done = true;
             done_at = loop.now();
           });
  EXPECT_FALSE(served);  // nothing happens synchronously: the request is on
  loop.run();            // the wire, not teleported to the handler
  ASSERT_TRUE(served);
  ASSERT_TRUE(done);
  // Request hop + message CPU precede the handler; the return hop costs at
  // least the network latency again.
  EXPECT_GE(served_at, params::kNetLatency + params::kRpcMessageCpu);
  EXPECT_GE(done_at - served_at, params::kNetLatency);
  const auto& st = rpc.stats();
  EXPECT_EQ(st.calls, 1u);
  EXPECT_EQ(st.net_bytes, 4096u + 512u);
  EXPECT_GT(st.net_wait_seconds, 0.0);
  EXPECT_GT(st.endpoint_cpu_seconds, 0.0);
  // The bytes really crossed the NICs: request out of node 0, response out
  // of node 2.
  EXPECT_EQ(net.egress(0).total_submitted_bytes(), 4096u);
  EXPECT_EQ(net.egress(2).total_submitted_bytes(), 512u);
}

TEST(RpcFabric, ColocatedCallerRidesLoopback) {
  sim::EventLoop loop;
  sim::Network net(loop, 2);
  rpc::RpcFabric rpc(loop, net);
  bool done = false;
  rpc.call(1, 1, 1024, 1024, [](rpc::RpcFabric::Reply r) { r(); },
           [&] { done = true; });
  loop.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(net.egress(1).total_submitted_bytes(), 0u);
  EXPECT_EQ(net.loopback(1).total_submitted_bytes(), 2048u);
}

TEST(RpcFabric, EndpointMessageCpuSerializesPerNode) {
  sim::EventLoop loop;
  sim::Network net(loop, 4);
  rpc::RpcFabric rpc(loop, net);
  // Many tiny concurrent calls to one endpoint: their dispatch CPU is a
  // serial resource, so the last handler cannot start before N * cost.
  constexpr int kCalls = 32;
  SimTime last_served = 0;
  int done = 0;
  for (int i = 0; i < kCalls; ++i) {
    rpc.call(0, 3, 64, 64,
             [&](rpc::RpcFabric::Reply reply) {
               last_served = loop.now();
               reply();
             },
             [&] { ++done; });
  }
  loop.run();
  EXPECT_EQ(done, kCalls);
  EXPECT_GE(last_served, kCalls * params::kRpcMessageCpu);
}

TEST(RpcFabric, CompletionOrderIsFifoUnderJitter) {
  sim::EventLoop loop;
  sim::Network net(loop, 4);
  Rng rng(0xD1CE);
  net.set_jitter(&rng, 0.3);
  rpc::RpcFabric rpc(loop, net);
  // One caller, one endpoint: every stage (caller egress, message CPU,
  // endpoint egress) is FIFO, so jitter stretches the pipeline without
  // reordering it.
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    rpc.call(0, 2, 512, 128, [](rpc::RpcFabric::Reply r) { r(); },
             [&order, i] { order.push_back(i); });
  }
  loop.run();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

}  // namespace
}  // namespace dsim::test
