// ByteImage property tests: every operation checked against a plain
// std::vector reference model, plus copy-on-write and serialization.
#include <gtest/gtest.h>

#include "sim/byte_image.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace dsim::sim {
namespace {

TEST(ByteImage, FreshImageIsZero) {
  ByteImage img(1024);
  auto out = img.materialize(0, 1024);
  for (auto b : out) EXPECT_EQ(b, std::byte{0});
  EXPECT_EQ(img.real_bytes(), 0u);
}

TEST(ByteImage, WriteThenReadBack) {
  ByteImage img(4096);
  std::vector<std::byte> data(100, std::byte{0xAB});
  img.write(1000, data);
  auto out = img.materialize(990, 120);
  EXPECT_EQ(out[9], std::byte{0});
  EXPECT_EQ(out[10], std::byte{0xAB});
  EXPECT_EQ(out[109], std::byte{0xAB});
  EXPECT_EQ(out[110], std::byte{0});
}

TEST(ByteImage, PatternContentIsPositionStable) {
  ByteImage img(1 << 20);
  img.fill(0, 1 << 20, ExtentKind::kRand, 7);
  auto a = img.materialize(5000, 64);
  // Splitting the extent by a write elsewhere must not change content.
  std::vector<std::byte> poke(8, std::byte{1});
  img.write(100000, poke);
  auto b = img.materialize(5000, 64);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
}

TEST(ByteImage, CopyIsCowCheap) {
  ByteImage img(64 << 20);
  img.fill(0, 64 << 20, ExtentKind::kRand, 9);
  ByteImage copy = img;  // O(#extents)
  std::vector<std::byte> poke(16, std::byte{0x7F});
  copy.write(1234, poke);
  // Original unchanged.
  EXPECT_NE(img.materialize(1234, 1)[0], std::byte{0x7F});
  EXPECT_EQ(copy.materialize(1234, 1)[0], std::byte{0x7F});
}

TEST(ByteImage, SerializeRoundTripPreservesEverything) {
  ByteImage img(100000);
  img.fill(0, 40000, ExtentKind::kRand, 3);
  std::vector<std::byte> real(5000);
  for (size_t i = 0; i < real.size(); ++i) {
    real[i] = static_cast<std::byte>(i * 31);
  }
  img.write(45000, real);
  ByteWriter w;
  img.serialize(w);
  auto bytes = w.take();
  ByteReader r(bytes);
  ByteImage back = ByteImage::deserialize(r);
  EXPECT_EQ(back.size(), img.size());
  EXPECT_EQ(back.content_crc(), img.content_crc());
}

TEST(ByteImage, ResizeGrowsWithZeros) {
  ByteImage img(10);
  std::vector<std::byte> data(10, std::byte{0xEE});
  img.write(0, data);
  img.resize(20);
  EXPECT_EQ(img.materialize(15, 1)[0], std::byte{0});
  img.resize(5);
  EXPECT_EQ(img.size(), 5u);
  EXPECT_EQ(img.materialize(4, 1)[0], std::byte{0xEE});
}

class ByteImageFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(ByteImageFuzz, MatchesReferenceVector) {
  Rng rng(GetParam());
  const u64 size = 1 + rng.next_below(200000);
  ByteImage img(size);
  std::vector<std::byte> ref(size, std::byte{0});
  for (int op = 0; op < 120; ++op) {
    const u64 off = rng.next_below(size);
    const u64 len = std::min<u64>(1 + rng.next_below(5000), size - off);
    switch (rng.next_below(3)) {
      case 0: {  // write real bytes
        std::vector<std::byte> data(len);
        for (auto& b : data) b = static_cast<std::byte>(rng.next_u64());
        img.write(off, data);
        std::copy(data.begin(), data.end(), ref.begin() + off);
        break;
      }
      case 1: {  // fill zero
        img.fill(off, len, ExtentKind::kZero);
        std::fill(ref.begin() + off, ref.begin() + off + len, std::byte{0});
        break;
      }
      case 2: {  // fill pattern; mirror through rand_byte
        const u64 seed = rng.next_u64();
        img.fill(off, len, ExtentKind::kRand, seed);
        for (u64 i = 0; i < len; ++i) {
          ref[off + i] =
              static_cast<std::byte>(ByteImage::rand_byte(seed, off + i));
        }
        break;
      }
    }
  }
  auto out = img.materialize(0, size);
  ASSERT_TRUE(std::equal(out.begin(), out.end(), ref.begin()))
      << "divergence from reference model";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ByteImageFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12));

}  // namespace
}  // namespace dsim::sim
