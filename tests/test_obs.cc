// Observability subsystem (src/obs/): deterministic histogram/metrics
// primitives, request tracing through the full store path, span tiling,
// and the two load-bearing guarantees — byte-identical traces across
// identical runs, and simulated-time identity between traced and untraced
// runs (tracing must be free when enabled and impossible to observe from
// inside the simulation).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "ckptstore/service.h"
#include "core/launch.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/cluster.h"
#include "tests/testprogs.h"
#include "tests/testutil.h"
#include "util/rng.h"

namespace dsim::test {
namespace {

using core::DmtcpControl;
using core::DmtcpOptions;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::TraceContext;
using obs::Tracer;

// --- Histogram ---------------------------------------------------------------

TEST(HistogramTest, RecordNMatchesLegacyRunningSums) {
  // record_n accumulates sum += v * n in one multiply — the exact fp result
  // the legacy `wait_seconds += wait * n` accumulators produced.
  Histogram h;
  double legacy_sum = 0;
  u64 legacy_count = 0;
  const double vals[] = {1.25e-3, 7.5e-5, 0.5, 3.0e-2};
  const u64 ns[] = {3, 16, 1, 7};
  for (int i = 0; i < 4; ++i) {
    h.record_n(vals[i], ns[i]);
    legacy_sum += vals[i] * static_cast<double>(ns[i]);
    legacy_count += ns[i];
  }
  EXPECT_EQ(h.count(), legacy_count);
  EXPECT_EQ(h.sum(), legacy_sum);  // bit-for-bit, not approximately
  EXPECT_EQ(h.mean(), legacy_sum / static_cast<double>(legacy_count));
  EXPECT_EQ(h.max(), 0.5);
}

TEST(HistogramTest, QuantilesTrackExactSortWithinBucketError) {
  Histogram h;
  std::vector<double> vals;
  Rng rng(0x0B5);
  for (int i = 0; i < 5000; ++i) {
    // Log-uniform over ~6 decades: exercises many octaves.
    const double v = std::exp(rng.next_double() * 14.0 - 10.0);
    vals.push_back(v);
    h.record(v);
  }
  std::sort(vals.begin(), vals.end());
  for (const double q : {0.5, 0.9, 0.99}) {
    const size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(vals.size())));
    const double exact = vals[rank - 1];
    EXPECT_NEAR(h.quantile(q), exact, exact * 0.005)
        << "q=" << q;  // bucket representative: <= 1/256 relative error
  }
  // The top rank is the exact max, matching the exact-sort convention the
  // benches used on small windows.
  EXPECT_EQ(h.quantile(1.0), vals.back());
}

TEST(HistogramTest, DeltaSinceAndWindowMax) {
  Histogram h;
  h.record(0.010);
  h.record(0.020);
  const Histogram before = h;
  EXPECT_EQ(h.take_window_max(), 0.020);
  h.record(0.005);
  h.record(0.040);
  const Histogram delta = h.delta_since(before);
  EXPECT_EQ(delta.count(), 2u);
  EXPECT_EQ(delta.sum(), h.sum() - before.sum());
  // The window watermark reset above, so only post-reset samples count.
  EXPECT_EQ(h.take_window_max(), 0.040);
  EXPECT_EQ(h.max(), 0.040);  // lifetime max is never reset
}

TEST(HistogramTest, DeltaSinceEmptyWindowIsAllZero) {
  Histogram h;
  h.record(0.010);
  h.record(0.250);
  // No samples between the snapshots: the delta is the empty histogram.
  const Histogram delta = h.delta_since(h);
  EXPECT_EQ(delta.count(), 0u);
  EXPECT_EQ(delta.sum(), 0.0);
  EXPECT_EQ(delta.max(), 0.0);
  EXPECT_EQ(delta.quantile(0.99), 0.0);
}

TEST(HistogramTest, DeltaSinceSingleSampleWindow) {
  Histogram h;
  h.record(0.010);
  const Histogram before = h;
  h.record(0.125);
  const Histogram delta = h.delta_since(before);
  EXPECT_EQ(delta.count(), 1u);
  EXPECT_EQ(delta.sum(), 0.125);
  // Every rank of a one-sample window is that sample (bucketed for the
  // interior representative, exact at the top).
  EXPECT_NEAR(delta.quantile(0.5), 0.125, 0.125 * 0.005);
  EXPECT_NEAR(delta.quantile(0.99), 0.125, 0.125 * 0.005);
}

TEST(HistogramTest, DeltaSinceSpansAWindowMaxReset) {
  // take_window_max() resets only the watermark; the bucket state the
  // delta is computed from is untouched, so a window that straddles the
  // reset still subtracts exactly.
  Histogram h;
  h.record(0.020);
  const Histogram before = h;
  EXPECT_EQ(h.take_window_max(), 0.020);  // the reset inside the window
  h.record(0.040);
  h.record(0.005);
  const Histogram delta = h.delta_since(before);
  EXPECT_EQ(delta.count(), 2u);
  EXPECT_EQ(delta.sum(), h.sum() - before.sum());
  // Only the post-reset samples feed the new watermark.
  EXPECT_EQ(h.take_window_max(), 0.040);
}

TEST(MetricsRegistryTest, JsonIsSortedAndStable) {
  MetricsRegistry a, b;
  // Registration order differs; the emitted bytes must not.
  a.counter("z.last", 2);
  a.counter("a.first", 1);
  a.gauge("mid", 0.25);
  b.gauge("mid", 0.25);
  b.counter("a.first", 1);
  b.counter("z.last", 2);
  Histogram h;
  h.record(0.125);
  a.histogram("hist", h);
  b.histogram("hist", h);
  EXPECT_EQ(a.json(), b.json());
  EXPECT_LT(a.json().find("a.first"), a.json().find("z.last"));
}

// --- Tracer ------------------------------------------------------------------

TEST(TracerTest, ChildSpansMustTileTheRootExactly) {
  Tracer tr;
  TraceContext ctx;
  ctx.trace_id = tr.new_trace();
  const u64 root = tr.begin("root", 0, "requests", 1000, ctx);
  ctx.parent_span = root;
  // Two children partitioning [1000, 3000) exactly: no violation.
  const u64 c1 = tr.begin("stage.a", 0, "nic", 1000, ctx);
  tr.end(c1, 2000);
  const u64 c2 = tr.begin("stage.b", 0, "cpu", 2000, ctx);
  tr.end(c2, 3000);
  tr.end(root, 3000);
  EXPECT_EQ(tr.tiling_violations(), 0u);
  EXPECT_EQ(tr.open_spans(), 0u);

  // A gap (child covers only half the root) trips the check...
  TraceContext ctx2;
  ctx2.trace_id = tr.new_trace();
  const u64 root2 = tr.begin("root", 0, "requests", 5000, ctx2);
  ctx2.parent_span = root2;
  const u64 c3 = tr.begin("stage.a", 0, "nic", 5000, ctx2);
  tr.end(c3, 5500);
  tr.end(root2, 6000);
  EXPECT_EQ(tr.tiling_violations(), 1u);

  // ...unless the trace is marked untiled (parked/replayed requests emit
  // duplicate stage spans by design).
  TraceContext ctx3;
  ctx3.trace_id = tr.new_trace();
  const u64 root3 = tr.begin("root", 0, "requests", 7000, ctx3);
  tr.mark_untiled(ctx3.trace_id);
  tr.end(root3, 9000);
  EXPECT_EQ(tr.tiling_violations(), 1u);
}

TEST(TracerTest, StageTotalsWeightByBatchSize) {
  Tracer tr;
  const u64 s = tr.begin("store.index", obs::kServicePid, "shard0",
                         1000 * timeconst::kMillisecond, {}, /*n=*/16);
  tr.end(s, 1250 * timeconst::kMillisecond);
  const auto& st = tr.stages().at("store.index");
  EXPECT_EQ(st.count, 16u);  // one sample per key, not per span
  EXPECT_NEAR(st.seconds, 16 * 0.25, 1e-12);
}

// --- end-to-end worlds -------------------------------------------------------

struct World {
  sim::Cluster cluster;
  DmtcpControl ctl;
  Rng jitter_rng;
  World(int nodes, DmtcpOptions opts, u64 seed)
      : cluster([&] {
          auto cfg = sim::Cluster::lab_cluster(nodes);
          cfg.seed = seed;
          return cfg;
        }()),
        ctl(cluster.kernel(), opts),
        jitter_rng(seed ^ 0x0B5E111) {
    register_test_programs(cluster.kernel());
    cluster.kernel().net().set_jitter(&jitter_rng, 0.25);
  }
  sim::Kernel& k() { return cluster.kernel(); }
};

DmtcpOptions obs_opts() {
  DmtcpOptions o;
  o.incremental = true;
  o.codec = compress::CodecKind::kNone;
  o.chunking = ckptstore::ChunkingMode::kCdc;
  o.cdc_min_bytes = 2 * 1024;
  o.cdc_avg_bytes = 8 * 1024;
  o.cdc_max_bytes = 32 * 1024;
  o.dedup_scope = core::DedupScope::kCluster;
  o.chunk_replicas = 2;
  o.store_shards = 2;
  o.store_node = 2;
  return o;
}

void add_ballast(World& w, Pid pid, u64 bytes, u64 seed) {
  sim::Process* p = w.k().find_process(pid);
  ASSERT_NE(p, nullptr);
  auto& seg = p->mem().add("ballast", sim::MemKind::kHeap, bytes);
  seg.data.fill(0, bytes, sim::ExtentKind::kRand, seed);
}

struct TracedRun {
  std::string trace_json;
  SimTime end_time = 0;
  u64 open_spans = 0;
  u64 tiling_violations = 0;
  double round_seconds = 0;
};

/// One seeded scenario under tracing: jittered network, two ranks, a
/// checkpoint round (optionally with the shard endpoint killed mid-round
/// and revived after), then quiesce and snapshot the tracer.
TracedRun run_traced(u64 seed, bool kill_mid_round, bool traced = true) {
  TracedRun res;
  World w(4, obs_opts(), seed);
  auto tracer = std::make_shared<Tracer>();
  if (traced) {
    w.k().loop().set_tracer(tracer.get());
    w.ctl.shared().tracer = tracer;
  }
  const Pid pa = w.ctl.launch(0, kComputeLoop, {"1000000", "200", "a"});
  const Pid pb = w.ctl.launch(1, kComputeLoop, {"1000000", "200", "b"});
  w.ctl.run_for(20 * timeconst::kMillisecond);
  add_ballast(w, pa, 1024 * 1024, 0xAA);
  add_ballast(w, pb, 1024 * 1024, 0xBB);
  w.ctl.request_checkpoint();
  if (kill_mid_round) {
    const bool drained = w.ctl.run_until(
        [&] {
          return !w.ctl.stats().rounds.empty() &&
                 w.ctl.stats().rounds.back().drained != 0;
        },
        w.k().loop().now() + 60 * timeconst::kSecond);
    EXPECT_TRUE(drained);
    w.ctl.shared().store_service->fail_node(2);
  }
  const bool completed = w.ctl.run_until(
      [&] {
        return !w.ctl.stats().rounds.empty() &&
               w.ctl.stats().rounds.back().refilled != 0;
      },
      w.k().loop().now() + 60 * timeconst::kSecond);
  EXPECT_TRUE(completed);
  res.round_seconds = w.ctl.stats().rounds.back().total_seconds();
  if (kill_mid_round) {
    // Let the heal daemon restore replica strength, then revive the node
    // mid-run — parked probes replay, which must not leak spans.
    w.ctl.run_for(300 * timeconst::kMillisecond);
    w.ctl.shared().store_service->revive_node(2);
    w.ctl.run_for(100 * timeconst::kMillisecond);
  }
  // Quiesce: stop the heartbeat loop and drain in-flight probes so the
  // open-span check sees a settled world, not a stopped-mid-probe one.
  w.ctl.shared().membership->stop();
  w.ctl.run_for(200 * timeconst::kMillisecond);
  res.trace_json = tracer->chrome_json();
  res.end_time = w.k().loop().now();
  res.open_spans = tracer->open_spans();
  res.tiling_violations = tracer->tiling_violations();
  return res;
}

TEST(ObsWorld, TraceIsByteIdenticalAcrossIdenticalRuns) {
  // Same seed, same jitter profile: the exported Chrome JSON must match
  // byte for byte — no host clocks, no pointer ordering, nothing.
  const TracedRun a = run_traced(0x0B5A, /*kill_mid_round=*/false);
  const TracedRun b = run_traced(0x0B5A, /*kill_mid_round=*/false);
  EXPECT_GT(a.trace_json.size(), 1000u);
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.end_time, b.end_time);
}

TEST(ObsWorld, MetricsJsonIsByteIdenticalAcrossIdenticalJitteredRuns) {
  // The jittered network (World arms Network::set_jitter) perturbs every
  // queue wait, but the jitter stream is seeded: two identical runs must
  // serialize the full registry — counters, gauges, histograms — to the
  // same bytes.
  const auto run = [](u64 seed) {
    World w(4, obs_opts(), seed);
    auto tracer = std::make_shared<Tracer>();
    w.k().loop().set_tracer(tracer.get());
    w.ctl.shared().tracer = tracer;
    const Pid pa = w.ctl.launch(0, kComputeLoop, {"1000000", "200", "a"});
    const Pid pb = w.ctl.launch(1, kComputeLoop, {"1000000", "200", "b"});
    w.ctl.run_for(20 * timeconst::kMillisecond);
    add_ballast(w, pa, 1024 * 1024, 0xAA);
    add_ballast(w, pb, 1024 * 1024, 0xBB);
    w.ctl.checkpoint_now();
    w.ctl.shared().membership->stop();
    w.ctl.run_for(200 * timeconst::kMillisecond);
    return core::collect_metrics(w.ctl.shared()).json();
  };
  const std::string a = run(0x3E7A);
  const std::string b = run(0x3E7A);
  EXPECT_GT(a.size(), 200u);
  EXPECT_EQ(a, b);
}

TEST(ObsWorld, SpansBalanceAndTileAfterMidRoundKillAndRevive) {
  const TracedRun r = run_traced(0xFA11, /*kill_mid_round=*/true);
  EXPECT_EQ(r.open_spans, 0u);
  EXPECT_EQ(r.tiling_violations, 0u);
}

TEST(ObsWorld, TracingOffIsSimulatedTimeIdenticalToTracingOn) {
  // The tracer never posts events or charges time: enabling it cannot move
  // the virtual clock by a single nanosecond.
  const TracedRun off = run_traced(0x71ED, false, /*traced=*/false);
  const TracedRun on = run_traced(0x71ED, false, /*traced=*/true);
  EXPECT_EQ(off.end_time, on.end_time);
  EXPECT_EQ(off.round_seconds, on.round_seconds);
}

TEST(ObsWorld, RoundStageBreakdownDecomposesTheRound) {
  World w(4, obs_opts(), 0x0B57);
  auto tracer = std::make_shared<Tracer>();
  w.k().loop().set_tracer(tracer.get());
  w.ctl.shared().tracer = tracer;
  const Pid pa = w.ctl.launch(0, kComputeLoop, {"1000000", "200", "a"});
  w.ctl.run_for(20 * timeconst::kMillisecond);
  add_ballast(w, pa, 512 * 1024, 0xAB);
  const auto& round = w.ctl.checkpoint_now();
  // The barrier.* components partition the measured pause exactly (the
  // coordinator DSIM_CHECKs this; re-assert the arithmetic here).
  double barrier_sum = 0;
  int barrier_entries = 0;
  bool queue_entries = false;
  for (const auto& [name, seconds] : round.stage_breakdown) {
    if (name.rfind("barrier.", 0) == 0) {
      barrier_sum += seconds;
      barrier_entries++;
    }
    if (name.rfind("queue.", 0) == 0 && seconds > 0) queue_entries = true;
  }
  EXPECT_EQ(barrier_entries, 5);
  EXPECT_NEAR(barrier_sum, round.total_seconds(), 1e-9);
  // With tracing on, the round also attributes its queue-wait to stages.
  EXPECT_TRUE(queue_entries);
  // The histogram behind the round's lookup-wait scalars agrees with them.
  EXPECT_EQ(round.lookup_wait_hist.count(), round.store_lookups);
  EXPECT_EQ(round.lookup_wait_hist.sum(), round.lookup_wait_seconds);
}

TEST(ObsOptions, FlagsParseAndValidate) {
  DmtcpOptions o = obs_opts();
  std::vector<std::string> argv{"--trace-out",   "/tmp/t.json",
                                "--metrics-out", "/tmp/m.json",
                                "--log-level",   "warn"};
  EXPECT_EQ(o.apply_flags(argv), "");
  EXPECT_EQ(o.trace_out, "/tmp/t.json");
  EXPECT_EQ(o.metrics_out, "/tmp/m.json");
  EXPECT_EQ(o.log_level, "warn");
  EXPECT_TRUE(o.validate().empty());
  o.log_level = "shouting";
  EXPECT_FALSE(o.validate().empty());
}

}  // namespace
}  // namespace dsim::test
