// Compressor unit + property tests: exact round-trips across codecs,
// content classes and sizes; ratio ordering; container integrity.
#include <gtest/gtest.h>

#include "ckptstore/cdc.h"
#include "compress/compressor.h"
#include "sim/byte_image.h"
#include "util/rng.h"

namespace dsim::compress {
namespace {

std::vector<std::byte> make_content(const std::string& kind, size_t n,
                                    u64 seed) {
  std::vector<std::byte> data(n);
  Rng rng(seed);
  if (kind == "zero") return data;
  if (kind == "rand") {
    for (auto& b : data) b = static_cast<std::byte>(rng.next_u64());
  } else if (kind == "text") {
    const std::string vocab = "the quick checkpoint restarted the socket ";
    for (size_t i = 0; i < n; ++i) data[i] = std::byte(vocab[i % vocab.size()]);
  } else if (kind == "runs") {
    size_t i = 0;
    while (i < n) {
      const auto v = static_cast<std::byte>(rng.next_below(4));
      const size_t run = 1 + rng.next_below(300);
      for (size_t j = 0; j < run && i < n; ++j) data[i++] = v;
    }
  } else if (kind == "mixed") {
    for (size_t i = 0; i < n; ++i) {
      data[i] = (i / 512) % 2 ? std::byte{0}
                              : static_cast<std::byte>(rng.next_u64());
    }
  }
  return data;
}

using Param = std::tuple<CodecKind, std::string, size_t>;

class RoundTrip : public ::testing::TestWithParam<Param> {};

TEST_P(RoundTrip, ExactRecovery) {
  const auto [kind, content, size] = GetParam();
  const auto data = make_content(content, size, 0x5eed ^ size);
  const auto& c = codec(kind);
  const auto compressed = c.compress(data);
  const auto out = c.decompress(compressed);
  ASSERT_EQ(out.size(), data.size());
  EXPECT_TRUE(std::equal(out.begin(), out.end(), data.begin()));
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecsContentsSizes, RoundTrip,
    ::testing::Combine(
        ::testing::Values(CodecKind::kNone, CodecKind::kRle,
                          CodecKind::kLz77, CodecKind::kHuffman,
                          CodecKind::kGzipish),
        ::testing::Values("zero", "rand", "text", "runs", "mixed"),
        ::testing::Values(size_t{0}, size_t{1}, size_t{3}, size_t{257},
                          size_t{4096}, size_t{100000})),
    [](const auto& info) {
      return codec_name(std::get<0>(info.param)) + "_" +
             std::get<1>(info.param) + "_" +
             std::to_string(std::get<2>(info.param));
    });

TEST(Compressor, GzipishBeatsRleOnText) {
  const auto data = make_content("text", 64 * 1024, 1);
  const double gz = measure_ratio(CodecKind::kGzipish, data);
  const double rle = measure_ratio(CodecKind::kRle, data);
  EXPECT_LT(gz, 0.2);
  EXPECT_LT(gz, rle);
}

TEST(Compressor, ZerosCompressNearlyAway) {
  const auto data = make_content("zero", 1 << 20, 0);
  EXPECT_LT(measure_ratio(CodecKind::kGzipish, data), 0.01);
}

TEST(Compressor, RandomDataDoesNotExplode) {
  const auto data = make_content("rand", 1 << 20, 2);
  // Incompressible input falls back to store mode: tiny overhead only.
  EXPECT_LT(measure_ratio(CodecKind::kGzipish, data), 1.01);
}

TEST(Compressor, RatioOrderingMatchesEntropy) {
  const size_t n = 256 * 1024;
  const double zero = measure_ratio(CodecKind::kGzipish,
                                    make_content("zero", n, 0));
  const double runs = measure_ratio(CodecKind::kGzipish,
                                    make_content("runs", n, 3));
  const double text = measure_ratio(CodecKind::kGzipish,
                                    make_content("text", n, 4));
  const double rand = measure_ratio(CodecKind::kGzipish,
                                    make_content("rand", n, 5));
  EXPECT_LT(zero, runs);
  EXPECT_LT(runs, text + 0.2);
  EXPECT_LT(text, rand);
}

TEST(Compressor, ParseCodecNamesAndCostFactors) {
  CodecKind k = CodecKind::kNone;
  EXPECT_TRUE(parse_codec("none", &k));
  EXPECT_EQ(k, CodecKind::kNone);
  EXPECT_TRUE(parse_codec("rle", &k));
  EXPECT_EQ(k, CodecKind::kRle);
  EXPECT_TRUE(parse_codec("lz77", &k));
  EXPECT_EQ(k, CodecKind::kLz77);
  EXPECT_TRUE(parse_codec("huffman", &k));
  EXPECT_EQ(k, CodecKind::kHuffman);
  EXPECT_TRUE(parse_codec("lz77+huffman", &k));
  EXPECT_EQ(k, CodecKind::kGzipish);
  EXPECT_TRUE(parse_codec("gzip", &k));
  EXPECT_EQ(k, CodecKind::kGzipish);
  EXPECT_FALSE(parse_codec("zstd", &k));
  EXPECT_FALSE(parse_codec("", &k));
  // Cost factors scale the modeled CPU seconds: free pass-through at one
  // end, the full two-stage pipeline at the other, single stages between.
  EXPECT_EQ(codec_cost_factor(CodecKind::kNone), 0.0);
  EXPECT_LT(codec_cost_factor(CodecKind::kRle),
            codec_cost_factor(CodecKind::kHuffman));
  EXPECT_LT(codec_cost_factor(CodecKind::kHuffman),
            codec_cost_factor(CodecKind::kLz77));
  EXPECT_LT(codec_cost_factor(CodecKind::kLz77),
            codec_cost_factor(CodecKind::kGzipish));
  EXPECT_EQ(codec_cost_factor(CodecKind::kGzipish), 1.0);
}

TEST(Compressor, CdcChunkCorpusRoundTripsWithSaneRatios) {
  // The async pipeline streams exactly these payloads to the store: build
  // a checkpoint-image-like region mix (text, zero pages, half-zero mixed
  // spans, incompressible random pages, pattern ballast), cut it with the
  // production CDC chunker, and push every chunk through every codec.
  const auto text = make_content("text", 96 * 1024, 0xC0);
  const auto mixed = make_content("mixed", 64 * 1024, 0xC1);
  const auto rand_pages = make_content("rand", 16 * 4096, 0xC2);
  const u64 zero_len = 64 * 1024;
  const u64 ballast_len = 32 * 4096;
  sim::ByteImage img;
  img.resize(text.size() + zero_len + mixed.size() + rand_pages.size() +
             ballast_len);
  u64 off = 0;
  img.write(off, text);
  off += text.size();
  img.fill(off, zero_len, sim::ExtentKind::kZero, 0);
  off += zero_len;
  img.write(off, mixed);
  off += mixed.size();
  const u64 rand_off = off;
  img.write(off, rand_pages);
  off += rand_pages.size();
  const u64 rand_end = off;
  img.fill(off, ballast_len, sim::ExtentKind::kRand, 0xC3);

  ckptstore::ChunkingParams p;
  p.mode = ckptstore::ChunkingMode::kCdc;
  p.min_bytes = 2 * 1024;
  p.avg_bytes = 8 * 1024;
  p.max_bytes = 32 * 1024;
  const auto spans = ckptstore::scan_chunks_cdc(img, p);
  ASSERT_GT(spans.size(), 12u);

  for (const CodecKind kind :
       {CodecKind::kNone, CodecKind::kRle, CodecKind::kLz77,
        CodecKind::kHuffman, CodecKind::kGzipish}) {
    const auto& c = codec(kind);
    u64 raw = 0, packed = 0;
    u64 zero_raw = 0, zero_packed = 0;
    u64 rand_raw = 0, rand_packed = 0;
    size_t rand_spans = 0;
    for (const auto& s : spans) {
      const auto payload = img.materialize(s.off, s.len);
      const auto compressed = c.compress(payload);
      const auto out = c.decompress(compressed);
      ASSERT_TRUE(out == payload)
          << codec_name(kind) << " span @" << s.off << "+" << s.len;
      raw += payload.size();
      packed += compressed.size();
      if (s.kind == sim::ExtentKind::kZero) {
        zero_raw += payload.size();
        zero_packed += compressed.size();
      }
      if (s.off >= rand_off && s.off < rand_end) {
        rand_raw += payload.size();
        rand_packed += compressed.size();
        rand_spans++;
      }
    }
    ASSERT_GT(zero_raw, 0u);
    ASSERT_GT(rand_raw, 0u);
    // Ratio sanity, per codec. RLE is the one codec with no store-mode
    // fallback, so incompressible input can double (2 bytes per literal);
    // everything else is bounded by the container overhead. Zero pages all
    // but vanish — except under plain Huffman, whose single-symbol floor
    // is one bit per byte (ratio 1/8).
    const u64 worst = kind == CodecKind::kRle ? 2 * raw : raw;
    EXPECT_LT(packed, worst + spans.size() * 64) << codec_name(kind);
    if (kind != CodecKind::kNone) {
      const double zero_bound = kind == CodecKind::kHuffman ? 0.15 : 0.05;
      EXPECT_LT(static_cast<double>(zero_packed),
                zero_bound * static_cast<double>(zero_raw))
          << codec_name(kind);
    }
    const u64 rand_worst =
        kind == CodecKind::kRle ? 2 * rand_raw : rand_raw;
    EXPECT_LT(rand_packed, rand_worst + rand_spans * 64) << codec_name(kind);
    if (kind == CodecKind::kGzipish) {
      // The full pipeline wins clearly on the corpus as a whole.
      EXPECT_LT(static_cast<double>(packed), 0.75 * static_cast<double>(raw));
    }
  }
}

TEST(Compressor, ContainerRejectsCorruptMagic) {
  const auto data = make_content("text", 1024, 6);
  auto compressed = codec(CodecKind::kGzipish).compress(data);
  compressed[0] = std::byte{0xFF};
  EXPECT_DEATH(codec(CodecKind::kGzipish).decompress(compressed), "magic");
}

TEST(Compressor, ContainerDetectsPayloadCorruption) {
  const auto data = make_content("text", 8 * 1024, 7);
  auto compressed = codec(CodecKind::kNone).compress(data);
  compressed[compressed.size() / 2] ^= std::byte{0x01};
  EXPECT_DEATH(codec(CodecKind::kNone).decompress(compressed), "CRC");
}

}  // namespace
}  // namespace dsim::compress
