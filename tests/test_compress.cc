// Compressor unit + property tests: exact round-trips across codecs,
// content classes and sizes; ratio ordering; container integrity.
#include <gtest/gtest.h>

#include "compress/compressor.h"
#include "util/rng.h"

namespace dsim::compress {
namespace {

std::vector<std::byte> make_content(const std::string& kind, size_t n,
                                    u64 seed) {
  std::vector<std::byte> data(n);
  Rng rng(seed);
  if (kind == "zero") return data;
  if (kind == "rand") {
    for (auto& b : data) b = static_cast<std::byte>(rng.next_u64());
  } else if (kind == "text") {
    const std::string vocab = "the quick checkpoint restarted the socket ";
    for (size_t i = 0; i < n; ++i) data[i] = std::byte(vocab[i % vocab.size()]);
  } else if (kind == "runs") {
    size_t i = 0;
    while (i < n) {
      const auto v = static_cast<std::byte>(rng.next_below(4));
      const size_t run = 1 + rng.next_below(300);
      for (size_t j = 0; j < run && i < n; ++j) data[i++] = v;
    }
  } else if (kind == "mixed") {
    for (size_t i = 0; i < n; ++i) {
      data[i] = (i / 512) % 2 ? std::byte{0}
                              : static_cast<std::byte>(rng.next_u64());
    }
  }
  return data;
}

using Param = std::tuple<CodecKind, std::string, size_t>;

class RoundTrip : public ::testing::TestWithParam<Param> {};

TEST_P(RoundTrip, ExactRecovery) {
  const auto [kind, content, size] = GetParam();
  const auto data = make_content(content, size, 0x5eed ^ size);
  const auto& c = codec(kind);
  const auto compressed = c.compress(data);
  const auto out = c.decompress(compressed);
  ASSERT_EQ(out.size(), data.size());
  EXPECT_TRUE(std::equal(out.begin(), out.end(), data.begin()));
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecsContentsSizes, RoundTrip,
    ::testing::Combine(
        ::testing::Values(CodecKind::kNone, CodecKind::kRle,
                          CodecKind::kGzipish),
        ::testing::Values("zero", "rand", "text", "runs", "mixed"),
        ::testing::Values(size_t{0}, size_t{1}, size_t{3}, size_t{257},
                          size_t{4096}, size_t{100000})),
    [](const auto& info) {
      return codec_name(std::get<0>(info.param)) + "_" +
             std::get<1>(info.param) + "_" +
             std::to_string(std::get<2>(info.param));
    });

TEST(Compressor, GzipishBeatsRleOnText) {
  const auto data = make_content("text", 64 * 1024, 1);
  const double gz = measure_ratio(CodecKind::kGzipish, data);
  const double rle = measure_ratio(CodecKind::kRle, data);
  EXPECT_LT(gz, 0.2);
  EXPECT_LT(gz, rle);
}

TEST(Compressor, ZerosCompressNearlyAway) {
  const auto data = make_content("zero", 1 << 20, 0);
  EXPECT_LT(measure_ratio(CodecKind::kGzipish, data), 0.01);
}

TEST(Compressor, RandomDataDoesNotExplode) {
  const auto data = make_content("rand", 1 << 20, 2);
  // Incompressible input falls back to store mode: tiny overhead only.
  EXPECT_LT(measure_ratio(CodecKind::kGzipish, data), 1.01);
}

TEST(Compressor, RatioOrderingMatchesEntropy) {
  const size_t n = 256 * 1024;
  const double zero = measure_ratio(CodecKind::kGzipish,
                                    make_content("zero", n, 0));
  const double runs = measure_ratio(CodecKind::kGzipish,
                                    make_content("runs", n, 3));
  const double text = measure_ratio(CodecKind::kGzipish,
                                    make_content("text", n, 4));
  const double rand = measure_ratio(CodecKind::kGzipish,
                                    make_content("rand", n, 5));
  EXPECT_LT(zero, runs);
  EXPECT_LT(runs, text + 0.2);
  EXPECT_LT(text, rand);
}

TEST(Compressor, ContainerRejectsCorruptMagic) {
  const auto data = make_content("text", 1024, 6);
  auto compressed = codec(CodecKind::kGzipish).compress(data);
  compressed[0] = std::byte{0xFF};
  EXPECT_DEATH(codec(CodecKind::kGzipish).decompress(compressed), "magic");
}

TEST(Compressor, ContainerDetectsPayloadCorruption) {
  const auto data = make_content("text", 8 * 1024, 7);
  auto compressed = codec(CodecKind::kNone).compress(data);
  compressed[compressed.size() / 2] ^= std::byte{0x01};
  EXPECT_DEATH(codec(CodecKind::kNone).decompress(compressed), "CRC");
}

}  // namespace
}  // namespace dsim::compress
