// Shared restart-safe test programs used across the test suite.
//
// Each program follows the restart contract (DESIGN.md §3.2): durable state
// lives in the "state" segment, progress registers drive read/write_exact,
// and every co_await boundary leaves the state consistent. Results are
// written to /shared/results/<name> so tests can compare a checkpointed+
// restarted run against an undisturbed one.
#pragma once

#include <string>

#include "sim/kernel.h"
#include "sim/pctx.h"

namespace dsim::test {

/// Register all test programs with the kernel.
void register_test_programs(sim::Kernel& k);

/// Fetch a result file written by a test program ("" if missing).
std::string read_result(sim::Kernel& k, const std::string& name);

// Program names (argv conventions documented in testprogs.cc):
inline constexpr const char* kPingServer = "pp_server";
inline constexpr const char* kPingClient = "pp_client";
inline constexpr const char* kComputeLoop = "compute_loop";
inline constexpr const char* kPipeChain = "pipe_chain";
inline constexpr const char* kShmPair = "shm_pair";
inline constexpr const char* kPtyShell = "pty_shell";
inline constexpr const char* kSpawnTree = "spawn_tree";

}  // namespace dsim::test
