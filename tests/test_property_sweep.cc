// The core transparency property, swept: for every workload and for many
// checkpoint instants, (checkpoint → kill → restart → finish) produces
// byte-identical results to an undisturbed run. A violation anywhere in the
// stack — drain, refill, image capture, fd rearrangement, pid
// virtualization, thread contexts — shows up as a CRC mismatch or a hang.
#include <gtest/gtest.h>

#include "core/launch.h"
#include "sim/cluster.h"
#include "tests/testprogs.h"

namespace dsim::test {
namespace {

struct Workload {
  const char* name;
  std::function<void(sim::Kernel&, bool dmtcp, core::DmtcpControl*)> launch;
  std::vector<std::string> results;
};

const std::vector<Workload>& workloads() {
  static const std::vector<Workload> w = {
      {"pingpong",
       [](sim::Kernel& k, bool dmtcp, core::DmtcpControl* ctl) {
         std::vector<std::string> s{"9000", "250", "3000", "psrv"};
         std::vector<std::string> c{"0", "9000", "250", "3000", "17", "pcli"};
         if (dmtcp) {
           ctl->launch(0, kPingServer, s);
           ctl->launch(1, kPingClient, c);
         } else {
           k.spawn_process(0, kPingServer, s, {});
           k.spawn_process(1, kPingClient, c, {});
         }
       },
       {"psrv", "pcli"}},
      {"pipe",
       [](sim::Kernel& k, bool dmtcp, core::DmtcpControl* ctl) {
         std::vector<std::string> a{"524288", "pp"};
         if (dmtcp) {
           ctl->launch(0, kPipeChain, a);
         } else {
           k.spawn_process(0, kPipeChain, a, {});
         }
       },
       {"pp.child"}},
      {"shm",
       [](sim::Kernel& k, bool dmtcp, core::DmtcpControl* ctl) {
         std::vector<std::string> a{"/shared/shm/ps", "60", "ps"};
         if (dmtcp) {
           ctl->launch(0, kShmPair, a);
         } else {
           k.spawn_process(0, kShmPair, a, {});
         }
       },
       {"ps"}},
      {"pty",
       [](sim::Kernel& k, bool dmtcp, core::DmtcpControl* ctl) {
         std::vector<std::string> a{"40", "pt"};
         if (dmtcp) {
           ctl->launch(0, kPtyShell, a);
         } else {
           k.spawn_process(0, kPtyShell, a, {});
         }
       },
       {"pt"}},
      {"spawntree",
       [](sim::Kernel& k, bool dmtcp, core::DmtcpControl* ctl) {
         std::vector<std::string> a{"6", "80", "sw"};
         if (dmtcp) {
           ctl->launch(0, kSpawnTree, a);
         } else {
           k.spawn_process(0, kSpawnTree, a, {});
         }
       },
       {"sw"}},
      {"compute",
       [](sim::Kernel& k, bool dmtcp, core::DmtcpControl* ctl) {
         std::vector<std::string> a{"600", "400", "cp"};
         if (dmtcp) {
           ctl->launch(0, kComputeLoop, a);
         } else {
           k.spawn_process(0, kComputeLoop, a, {});
         }
       },
       {"cp"}},
  };
  return w;
}

std::map<std::string, std::string> baseline(const Workload& wl) {
  sim::Cluster cluster(sim::Cluster::lab_cluster(2));
  register_test_programs(cluster.kernel());
  wl.launch(cluster.kernel(), false, nullptr);
  cluster.kernel().loop().run_until(cluster.kernel().loop().now() +
                                    600 * timeconst::kSecond);
  std::map<std::string, std::string> out;
  for (const auto& r : wl.results) out[r] = read_result(cluster.kernel(), r);
  return out;
}

using Param = std::tuple<int /*workload*/, int /*ckpt delay ms*/,
                         int /*codec*/>;

class Transparency : public ::testing::TestWithParam<Param> {};

TEST_P(Transparency, KillRestartIsInvisible) {
  const auto [wi, delay_ms, codec_i] = GetParam();
  const Workload& wl = workloads()[static_cast<size_t>(wi)];
  const auto expected = baseline(wl);
  for (const auto& [name, value] : expected) {
    ASSERT_FALSE(value.empty()) << "baseline failed for " << name;
  }

  sim::Cluster cluster([&] {
    auto cfg = sim::Cluster::lab_cluster(2);
    cfg.seed = mix_seed(0x9ace, wi, delay_ms);
    return cfg;
  }());
  core::DmtcpOptions opts;
  opts.codec = codec_i == 0 ? compress::CodecKind::kGzipish
                            : compress::CodecKind::kNone;
  core::DmtcpControl ctl(cluster.kernel(), opts);
  register_test_programs(cluster.kernel());
  wl.launch(cluster.kernel(), true, &ctl);
  ctl.run_for(delay_ms * timeconst::kMillisecond);
  const auto& round = ctl.checkpoint_now();
  if (round.procs > 0) {
    ctl.kill_computation();
    ctl.restart();
  }  // else: the workload finished before the request — nothing to restore
  const bool done = ctl.run_until(
      [&] {
        for (const auto& [name, value] : expected) {
          if (read_result(cluster.kernel(), name).empty()) return false;
        }
        return true;
      },
      cluster.kernel().loop().now() + 600 * timeconst::kSecond);
  ASSERT_TRUE(done) << "restarted computation did not finish";
  for (const auto& [name, value] : expected) {
    EXPECT_EQ(read_result(cluster.kernel(), name), value)
        << "result diverged for " << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadsTimesCodecs, Transparency,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(5, 11, 23, 47),
                       ::testing::Values(0, 1)),
    [](const auto& info) {
      return workloads()[static_cast<size_t>(std::get<0>(info.param))].name +
             std::string("_t") + std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) == 0 ? "_gz" : "_raw");
    });

/// In-process resume (checkpoint without kill) must also be invisible —
/// swept over the same workloads and instants.
class ResumeTransparency
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ResumeTransparency, CheckpointResumeIsInvisible) {
  const auto [wi, delay_ms] = GetParam();
  const Workload& wl = workloads()[static_cast<size_t>(wi)];
  const auto expected = baseline(wl);

  sim::Cluster cluster(sim::Cluster::lab_cluster(2));
  core::DmtcpControl ctl(cluster.kernel(), {});
  register_test_programs(cluster.kernel());
  wl.launch(cluster.kernel(), true, &ctl);
  ctl.run_for(delay_ms * timeconst::kMillisecond);
  ctl.checkpoint_now();
  const bool done = ctl.run_until(
      [&] {
        for (const auto& [name, value] : expected) {
          if (read_result(cluster.kernel(), name).empty()) return false;
        }
        return true;
      },
      cluster.kernel().loop().now() + 600 * timeconst::kSecond);
  ASSERT_TRUE(done);
  for (const auto& [name, value] : expected) {
    EXPECT_EQ(read_result(cluster.kernel(), name), value);
  }
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadsTimesInstants, ResumeTransparency,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(7, 19, 37)),
    [](const auto& info) {
      return workloads()[static_cast<size_t>(std::get<0>(info.param))].name +
             std::string("_t") + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace dsim::test
