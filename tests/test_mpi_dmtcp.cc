// Distributed checkpointing over the full MPI stack: mpdboot/mpd ring (or
// orte star), mpirun, rank processes — all checkpointed together, exactly
// the §5.2 configuration.
#include <gtest/gtest.h>

#include "apps/distributed.h"
#include "core/launch.h"
#include "mpi/runtime.h"
#include "sim/cluster.h"
#include "tests/testprogs.h"

namespace dsim::test {
namespace {

using core::DmtcpControl;

struct MpiWorld {
  sim::Cluster cluster;
  DmtcpControl ctl;
  explicit MpiWorld(int nodes, u64 seed = 0x5eed)
      : cluster([&] {
          auto cfg = sim::Cluster::lab_cluster(nodes);
          cfg.seed = seed;
          return cfg;
        }()),
        ctl(cluster.kernel(), {}) {
    mpi::register_runtime_programs(cluster.kernel());
    apps::register_distributed_programs(cluster.kernel());
  }
  sim::Kernel& k() { return cluster.kernel(); }
  bool wait_result(const std::string& name,
                   SimTime deadline = 600 * timeconst::kSecond) {
    return ctl.run_until([&] { return !read_result(k(), name).empty(); },
                         k().loop().now() + deadline);
  }
};

std::string mpi_baseline(const std::string& runtime, int np, int nodes,
                         const std::string& prog,
                         std::vector<std::string> app_args,
                         const std::string& result) {
  sim::Cluster cluster(sim::Cluster::lab_cluster(nodes));
  mpi::register_runtime_programs(cluster.kernel());
  apps::register_distributed_programs(cluster.kernel());
  auto& k = cluster.kernel();
  if (runtime == "mpd") {
    k.spawn_process(0, "mpdboot", {std::to_string(nodes)}, {});
    k.spawn_process(0, "mpd_mpirun",
                    mpi::mpirun_argv(np, nodes, prog, app_args), {});
  } else {
    k.spawn_process(0, "orte_mpirun",
                    mpi::mpirun_argv(np, nodes, prog, app_args), {});
  }
  k.loop().run_until(k.loop().now() + 600 * timeconst::kSecond);
  return read_result(k, result);
}

TEST(MpiDmtcp, NasCgUnderMpdCheckpointAndRestart) {
  const auto expected =
      mpi_baseline("mpd", 8, 4, "nas", {"cg", "400", "cg_t"}, "cg_t");
  ASSERT_FALSE(expected.empty());

  MpiWorld w(4);
  w.ctl.launch(0, "mpdboot", {"4"});
  w.ctl.run_for(80 * timeconst::kMillisecond);
  w.ctl.launch(0, "mpd_mpirun", mpi::mpirun_argv(8, 4, "nas",
                                                 {"cg", "400", "cg_t"}));
  w.ctl.run_for(300 * timeconst::kMillisecond);  // ranks mid-computation
  const auto& round = w.ctl.checkpoint_now();
  // mpirun + 4 mpds + 8 ranks + mpdboot may or may not still be alive.
  EXPECT_GE(round.procs, 13);
  w.ctl.kill_computation();
  const auto& rr = w.ctl.restart();
  EXPECT_GE(rr.procs, 13);
  ASSERT_TRUE(w.wait_result("cg_t"));
  EXPECT_EQ(read_result(w.k(), "cg_t"), expected);
}

TEST(MpiDmtcp, ParGeant4UnderOrteCheckpointResume) {
  const auto expected = mpi_baseline(
      "orte", 6, 3, "pargeant4", {"300", "10", "pg4_t"}, "pg4_t");
  ASSERT_FALSE(expected.empty());

  MpiWorld w(3);
  w.ctl.launch(0, "orte_mpirun",
               mpi::mpirun_argv(6, 3, "pargeant4", {"300", "10", "pg4_t"}));
  w.ctl.run_for(120 * timeconst::kMillisecond);
  w.ctl.checkpoint_now();
  ASSERT_TRUE(w.wait_result("pg4_t"));
  EXPECT_EQ(read_result(w.k(), "pg4_t"), expected);
}

TEST(MpiDmtcp, IPythonSocketsCheckpointKillRestart) {
  const auto expected = [&] {
    sim::Cluster cluster(sim::Cluster::lab_cluster(4));
    mpi::register_runtime_programs(cluster.kernel());
    apps::register_distributed_programs(cluster.kernel());
    cluster.kernel().spawn_process(
        0, "ipython_controller", {"4", "200", "demo", "ipy_t"}, {});
    cluster.kernel().loop().run_until(600 * timeconst::kSecond);
    return read_result(cluster.kernel(), "ipy_t");
  }();
  ASSERT_FALSE(expected.empty());

  MpiWorld w(4);
  w.ctl.launch(0, "ipython_controller", {"4", "200", "demo", "ipy_t"});
  w.ctl.run_for(60 * timeconst::kMillisecond);
  w.ctl.checkpoint_now();
  w.ctl.kill_computation();
  w.ctl.restart();
  ASSERT_TRUE(w.wait_result("ipy_t"));
  EXPECT_EQ(read_result(w.k(), "ipy_t"), expected);
}

}  // namespace
}  // namespace dsim::test
