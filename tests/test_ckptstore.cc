// The incremental content-addressed checkpoint store: chunking, dedup
// across generations, GC retention, corrupted-chunk detection, and full
// delta-restart round trips through the DMTCP stack.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "ckptstore/cdc.h"
#include "ckptstore/chunk.h"
#include "ckptstore/manifest.h"
#include "ckptstore/repository.h"
#include "core/launch.h"
#include "mtcp/mtcp.h"
#include "sim/cluster.h"
#include "tests/testprogs.h"
#include "tests/testutil.h"
#include "util/crc32.h"

namespace dsim::test {
namespace {

using core::DmtcpControl;
using core::DmtcpOptions;
using sim::ByteImage;
using sim::ExtentKind;

constexpr u64 kChunk = 4 * 1024;
// pseudo_bytes / fixed_params / cdc_params come from tests/testutil.h.

/// A process image with one mixed segment: real content, a zero run, a
/// pseudo-random (ballast) run.
mtcp::ProcessImage make_image(u64 bytes, u64 content_seed) {
  mtcp::ProcessImage img;
  img.prog_name = "prog";
  img.argv = {"arg0"};
  img.env["HOME"] = "/";
  img.virt_pid = 7;
  img.virt_ppid = 1;
  img.origin_node = 0;
  mtcp::SegmentImage s;
  s.name = "heap";
  s.kind = sim::MemKind::kHeap;
  s.data = ByteImage(bytes);
  s.data.write(0, pseudo_bytes(bytes / 2, content_seed));
  s.data.fill(bytes / 2, bytes / 4, ExtentKind::kZero);
  s.data.fill(3 * bytes / 4, bytes / 4, ExtentKind::kRand, 0xBA11A57);
  img.segments.push_back(std::move(s));
  mtcp::ThreadImage t;
  t.kind = sim::ThreadKind::kMain;
  img.threads.push_back(t);
  img.dmtcp_blob = {std::byte{0xAB}, std::byte{0xCD}};
  return img;
}

void expect_images_equal(const mtcp::ProcessImage& a,
                         const mtcp::ProcessImage& b) {
  EXPECT_EQ(a.prog_name, b.prog_name);
  EXPECT_EQ(a.argv, b.argv);
  EXPECT_EQ(a.env, b.env);
  EXPECT_EQ(a.virt_pid, b.virt_pid);
  EXPECT_EQ(a.dmtcp_blob, b.dmtcp_blob);
  ASSERT_EQ(a.segments.size(), b.segments.size());
  for (size_t i = 0; i < a.segments.size(); ++i) {
    EXPECT_EQ(a.segments[i].name, b.segments[i].name);
    ASSERT_EQ(a.segments[i].data.size(), b.segments[i].data.size());
    EXPECT_EQ(a.segments[i].data.content_crc(),
              b.segments[i].data.content_crc());
  }
  ASSERT_EQ(a.threads.size(), b.threads.size());
}

// --- chunking ---------------------------------------------------------------

TEST(Chunker, PatternSpansAvoidMaterialization) {
  ByteImage img(16 * kChunk);
  img.fill(0, 8 * kChunk, ExtentKind::kZero);
  img.fill(8 * kChunk, 4 * kChunk, ExtentKind::kRand, 42);
  img.write(12 * kChunk, pseudo_bytes(4 * kChunk, 1));
  auto spans = ckptstore::scan_chunks(img, kChunk);
  ASSERT_EQ(spans.size(), 16u);
  for (size_t i = 0; i < 8; ++i) EXPECT_EQ(spans[i].kind, ExtentKind::kZero);
  for (size_t i = 8; i < 12; ++i) EXPECT_EQ(spans[i].kind, ExtentKind::kRand);
  for (size_t i = 12; i < 16; ++i) EXPECT_EQ(spans[i].kind, ExtentKind::kReal);
  // Identical zero chunks share one key; rand chunks differ by position.
  EXPECT_EQ(ckptstore::span_key(img, spans[0]),
            ckptstore::span_key(img, spans[1]));
  EXPECT_FALSE(ckptstore::span_key(img, spans[8]) ==
               ckptstore::span_key(img, spans[9]));
}

TEST(Chunker, KeysAreStableAcrossIdenticalImages) {
  auto a = make_image(64 * kChunk, 7);
  auto b = make_image(64 * kChunk, 7);
  auto sa = ckptstore::scan_chunks(a.segments[0].data, kChunk);
  auto sb = ckptstore::scan_chunks(b.segments[0].data, kChunk);
  ASSERT_EQ(sa.size(), sb.size());
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(ckptstore::span_key(a.segments[0].data, sa[i]),
              ckptstore::span_key(b.segments[0].data, sb[i]));
  }
}

TEST(Chunker, RejectsBadChunkSizes) {
  ByteImage img(kChunk);
  EXPECT_DEATH(ckptstore::scan_chunks(img, 0), "power of two");
  EXPECT_DEATH(ckptstore::scan_chunks(img, 3000), "power of two");
}

// --- content-defined chunking ------------------------------------------------

std::set<ckptstore::ChunkKey> key_set(const ByteImage& img,
                                      const std::vector<ckptstore::ChunkSpan>&
                                          spans) {
  std::set<ckptstore::ChunkKey> keys;
  for (const auto& s : spans) keys.insert(ckptstore::span_key(img, s));
  return keys;
}

size_t count_new_keys(const std::set<ckptstore::ChunkKey>& before,
                      const ByteImage& img,
                      const std::vector<ckptstore::ChunkSpan>& spans) {
  size_t fresh = 0;
  for (const auto& s : spans) {
    if (!before.count(ckptstore::span_key(img, s))) fresh++;
  }
  return fresh;
}

TEST(Cdc, SpansRespectBoundsAndCoverTheImage) {
  const auto p = cdc_params(1024, 4096, 16 * 1024);
  ByteImage img(300 * 1024);
  img.write(0, pseudo_bytes(300 * 1024, 21));
  const auto spans = ckptstore::scan_chunks_cdc(img, p);
  u64 off = 0;
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].off, off);
    EXPECT_LE(spans[i].len, p.max_bytes);
    if (i + 1 < spans.size()) {
      EXPECT_GE(spans[i].len, p.min_bytes);
    }
    off += spans[i].len;
  }
  EXPECT_EQ(off, img.size());
  // The cutpoint mask should give chunks in the right ballpark: well more
  // than size/max of them, well fewer than size/min.
  EXPECT_GT(spans.size(), img.size() / p.max_bytes);
  EXPECT_LT(spans.size(), img.size() / p.min_bytes + 1);
}

TEST(Cdc, CutpointsAreStableAcrossIdenticalContent) {
  const auto p = cdc_params(1024, 4096, 16 * 1024);
  ByteImage a(64 * kChunk), b(64 * kChunk);
  a.write(0, pseudo_bytes(64 * kChunk, 9));
  b.write(0, pseudo_bytes(64 * kChunk, 9));
  EXPECT_EQ(key_set(a, ckptstore::scan_chunks_cdc(a, p)),
            key_set(b, ckptstore::scan_chunks_cdc(b, p)));
}

TEST(Cdc, InsertionResynchronizesAtTheNextCutpoint) {
  // Insert K bytes near the front of a 1 MiB real-content image. Fixed
  // chunking invalidates every downstream chunk (O(image/chunk) new keys);
  // CDC cutpoints resynchronize within one chunk, so only O(1) change.
  const u64 kImage = 1024 * 1024;
  const u64 kInsertAt = 1000;
  const auto content = pseudo_bytes(kImage, 33);
  const auto inserted = pseudo_bytes(16, 0xF00D);

  ByteImage before(kImage);
  before.write(0, content);
  std::vector<std::byte> shifted;
  shifted.insert(shifted.end(), content.begin(),
                 content.begin() + kInsertAt);
  shifted.insert(shifted.end(), inserted.begin(), inserted.end());
  shifted.insert(shifted.end(), content.begin() + kInsertAt, content.end());
  ByteImage after(shifted.size());
  after.write(0, shifted);

  const auto p = cdc_params(1024, 4096, 16 * 1024);
  const auto cdc_before = key_set(before, ckptstore::scan_chunks_cdc(before,
                                                                     p));
  const auto cdc_spans = ckptstore::scan_chunks_cdc(after, p);
  const size_t cdc_new = count_new_keys(cdc_before, after, cdc_spans);
  EXPECT_LE(cdc_new, 4u);  // O(1): the chunk(s) spanning the insertion

  const auto fix_before = key_set(before, ckptstore::scan_chunks(before,
                                                                 kChunk));
  const auto fix_spans = ckptstore::scan_chunks(after, kChunk);
  const size_t fix_new = count_new_keys(fix_before, after, fix_spans);
  EXPECT_GE(fix_new, fix_spans.size() * 9 / 10);  // O(image/chunk)
}

TEST(Cdc, PatternExtentsStayDescriptorsAndCutAtTheirEdges) {
  const auto p = cdc_params(1024, 4096, 16 * 1024);
  ByteImage img(64 * kChunk);
  img.write(0, pseudo_bytes(10 * kChunk, 5));
  img.fill(10 * kChunk, 30 * kChunk, ExtentKind::kZero);
  img.fill(40 * kChunk, 8 * kChunk, ExtentKind::kRand, 0xABC);
  img.write(48 * kChunk, pseudo_bytes(16 * kChunk, 6));
  const auto spans = ckptstore::scan_chunks_cdc(img, p);
  u64 zero_bytes = 0, rand_bytes = 0, real_bytes = 0;
  for (const auto& s : spans) {
    switch (s.kind) {
      case ExtentKind::kZero: zero_bytes += s.len; break;
      case ExtentKind::kRand: rand_bytes += s.len; break;
      case ExtentKind::kReal: real_bytes += s.len; break;
    }
    EXPECT_LE(s.len, p.max_bytes);
  }
  // Pattern runs are cut exactly at their extent edges: no pattern byte is
  // ever materialized into a real span, and vice versa.
  EXPECT_EQ(zero_bytes, 30 * kChunk);
  EXPECT_EQ(rand_bytes, 8 * kChunk);
  EXPECT_EQ(real_bytes, 26 * kChunk);
}

TEST(Cdc, RejectsInconsistentBounds) {
  ByteImage img(kChunk);
  EXPECT_DEATH(ckptstore::scan_chunks_cdc(img, cdc_params(8192, 4096, 16384)),
               "min <= avg <= max");
  EXPECT_DEATH(ckptstore::scan_chunks_cdc(img, cdc_params(1024, 3000, 16384)),
               "power of two");
}

// --- dedup across generations ----------------------------------------------

TEST(CkptStore, UnchangedImageStoresOnlyTheManifest) {
  ckptstore::Repository repo;
  const auto img = make_image(256 * kChunk, 3);
  const auto codec = compress::CodecKind::kNone;

  auto g1 =
      mtcp::encode_incremental(img, codec, fixed_params(kChunk), "7", 0, repo);
  EXPECT_EQ(g1.new_chunks + repo.stats().dedup_hits, g1.total_chunks);
  EXPECT_GT(g1.new_chunk_bytes, 0u);

  auto g2 =
      mtcp::encode_incremental(img, codec, fixed_params(kChunk), "7", 1, repo);
  EXPECT_EQ(g2.new_chunks, 0u);
  EXPECT_EQ(g2.new_chunk_bytes, 0u);
  EXPECT_EQ(g2.submitted_bytes, g2.manifest_bytes.size());
  // Dedup ratio: two generations of logical bytes, one of stored.
  EXPECT_GT(repo.stats().dedup_ratio(), 1.8);
}

TEST(CkptStore, DirtyFractionBoundsNewBytes) {
  ckptstore::Repository repo;
  auto img = make_image(256 * kChunk, 3);
  const auto codec = compress::CodecKind::kNone;
  auto g1 =
      mtcp::encode_incremental(img, codec, fixed_params(kChunk), "7", 0, repo);

  // Dirty ~10% of the segment (chunk-aligned, in the real-content half).
  img.segments[0].data.write(4 * kChunk, pseudo_bytes(26 * kChunk, 999));
  auto g2 =
      mtcp::encode_incremental(img, codec, fixed_params(kChunk), "7", 1, repo);
  EXPECT_GT(g2.new_chunks, 0u);
  EXPECT_LT(g2.submitted_bytes, g1.submitted_bytes / 4);
}

// --- round trip --------------------------------------------------------------

TEST(CkptStore, DeltaDecodeEqualsFullDecode) {
  ckptstore::Repository repo;
  const auto img = make_image(64 * kChunk, 11);
  const auto codec = compress::CodecKind::kGzipish;

  // Full path.
  auto enc = mtcp::encode(img, codec);
  auto full = mtcp::decode(enc.bytes, codec, nullptr);

  // Incremental path.
  auto delta = mtcp::encode_incremental(img, codec, fixed_params(kChunk),
                                        "7", 0, repo);
  auto mf = ckptstore::Manifest::decode(delta.manifest_bytes);
  std::string err;
  u64 reads = 0;
  auto inc = mtcp::decode_incremental(mf, repo, nullptr, &reads, &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_GT(reads, 0u);
  expect_images_equal(full, inc);
  expect_images_equal(img, inc);
}

// --- GC ----------------------------------------------------------------------

TEST(CkptStore, GcReclaimsChunksOfDeadGenerations) {
  ckptstore::Repository repo;
  auto img = make_image(64 * kChunk, 5);
  const auto codec = compress::CodecKind::kNone;

  auto g0 =
      mtcp::encode_incremental(img, codec, fixed_params(kChunk), "7", 0, repo);
  const auto mf0 = ckptstore::Manifest::decode(g0.manifest_bytes);
  img.segments[0].data.write(0, pseudo_bytes(8 * kChunk, 77));
  auto g1 =
      mtcp::encode_incremental(img, codec, fixed_params(kChunk), "7", 1, repo);
  img.segments[0].data.write(0, pseudo_bytes(8 * kChunk, 78));
  auto g2 =
      mtcp::encode_incremental(img, codec, fixed_params(kChunk), "7", 2, repo);
  const auto mf2 = ckptstore::Manifest::decode(g2.manifest_bytes);

  const u64 live_before = repo.stats().live_stored_bytes;
  const u64 reclaimed = repo.collect_garbage(/*keep=*/1);
  EXPECT_GT(reclaimed, 0u);
  EXPECT_EQ(repo.stats().live_stored_bytes, live_before - reclaimed);
  EXPECT_EQ(repo.stats().reclaimed_bytes, reclaimed);
  EXPECT_EQ(repo.live_generations("7"), std::vector<int>{2});

  // The surviving generation still materializes byte-identically...
  std::string err;
  auto restored = mtcp::decode_incremental(mf2, repo, nullptr, nullptr, &err);
  ASSERT_TRUE(err.empty()) << err;
  expect_images_equal(img, restored);

  // ...while a collected generation reports its missing chunks clearly.
  auto gone = mtcp::decode_incremental(mf0, repo, nullptr, nullptr, &err);
  EXPECT_FALSE(err.empty());
  EXPECT_NE(err.find("missing from the repository"), std::string::npos);
}

// --- cross-process dedup -----------------------------------------------------

/// Image with a "mapped library" segment every process shares byte-for-byte
/// plus a private heap distinct per process.
mtcp::ProcessImage make_cluster_image(u64 lib_bytes, u64 heap_bytes,
                                      u64 heap_seed, Pid vpid) {
  mtcp::ProcessImage img;
  img.prog_name = "rank";
  img.virt_pid = vpid;
  img.virt_ppid = 1;
  img.origin_node = 0;
  mtcp::SegmentImage lib;
  lib.name = "libmpi.so";
  lib.kind = sim::MemKind::kLib;
  lib.data = ByteImage(lib_bytes);
  lib.data.write(0, pseudo_bytes(lib_bytes, 0x11B));  // identical everywhere
  img.segments.push_back(std::move(lib));
  mtcp::SegmentImage heap;
  heap.name = "heap";
  heap.kind = sim::MemKind::kHeap;
  heap.data = ByteImage(heap_bytes);
  heap.data.write(0, pseudo_bytes(heap_bytes, heap_seed));
  img.segments.push_back(std::move(heap));
  mtcp::ThreadImage t;
  t.kind = sim::ThreadKind::kMain;
  img.threads.push_back(t);
  return img;
}

TEST(CkptStore, CrossProcessSharedLibraryIsStoredOnce) {
  ckptstore::Repository repo;
  const auto codec = compress::CodecKind::kNone;  // exact byte accounting
  const auto p = cdc_params(1024, 4096, 16 * 1024);
  constexpr u64 kLib = 256 * 1024;
  constexpr u64 kHeap = 64 * 1024;

  const auto a = make_cluster_image(kLib, kHeap, /*heap_seed=*/1, 101);
  const auto da = mtcp::encode_incremental(a, codec, p, "101", 0, repo);
  const u64 stored_after_a = repo.stats().live_stored_bytes;
  EXPECT_GE(stored_after_a, kLib + kHeap);

  // A second process on (conceptually) another node submits the same
  // library: every library chunk is answered by the resident copy, and
  // only its private heap adds stored bytes.
  const auto b = make_cluster_image(kLib, kHeap, /*heap_seed=*/2, 102);
  const auto db = mtcp::encode_incremental(b, codec, p, "102", 0, repo);
  EXPECT_GE(db.dup_chunk_bytes, kLib);  // the whole library dedup'd
  const u64 added = repo.stats().live_stored_bytes - stored_after_a;
  EXPECT_LT(added, kHeap + kHeap / 2);  // heap only, no second library
  EXPECT_EQ(repo.owner_count(), 2u);
  EXPECT_GT(repo.shared_chunk_count(), 0u);
}

TEST(CkptStore, GcIsRefcountCorrectAcrossProcesses) {
  ckptstore::Repository repo;
  const auto codec = compress::CodecKind::kNone;
  const auto p = cdc_params(1024, 4096, 16 * 1024);
  constexpr u64 kLib = 128 * 1024;
  constexpr u64 kHeap = 64 * 1024;

  // Owner A writes three generations with churning heap; owner B one.
  auto imga = make_cluster_image(kLib, kHeap, 1, 101);
  mtcp::encode_incremental(imga, codec, p, "101", 0, repo);
  const auto b = make_cluster_image(kLib, kHeap, 9, 102);
  const auto db = mtcp::encode_incremental(b, codec, p, "102", 0, repo);
  const auto mfb = ckptstore::Manifest::decode(db.manifest_bytes);
  for (int gen = 1; gen <= 2; ++gen) {
    imga.segments[1].data.write(0, pseudo_bytes(kHeap, 100 + gen));
    mtcp::encode_incremental(imga, codec, p, "101", gen, repo);
  }

  // keep=1 drops A's two dead generations. Their private heap chunks die,
  // but the library chunks stay: B's live generation still references
  // them. B must restore byte-identically afterwards.
  const u64 reclaimed = repo.collect_garbage(/*keep=*/1);
  EXPECT_GT(reclaimed, 0u);
  EXPECT_LT(reclaimed, 3 * kHeap);  // never the shared library
  std::string err;
  auto back = mtcp::decode_incremental(mfb, repo, nullptr, nullptr, &err);
  ASSERT_TRUE(err.empty()) << err;
  expect_images_equal(b, back);

  // Owner A leaves the computation for good: only chunks B doesn't also
  // reference are reclaimed. Then B leaves and the store drains to zero.
  repo.drop_owner("101");
  EXPECT_EQ(repo.owner_count(), 1u);
  auto still = mtcp::decode_incremental(mfb, repo, nullptr, nullptr, &err);
  ASSERT_TRUE(err.empty()) << err;
  repo.drop_owner("102");
  EXPECT_EQ(repo.stats().live_chunks, 0u);
  EXPECT_EQ(repo.stats().live_stored_bytes, 0u);
}

// --- corruption detection ----------------------------------------------------

TEST(CkptStore, CorruptedChunkIsDetectedOnRestore) {
  ckptstore::Repository repo;
  const auto img = make_image(64 * kChunk, 9);
  const auto codec = compress::CodecKind::kNone;
  auto delta = mtcp::encode_incremental(img, codec, fixed_params(kChunk),
                                        "7", 0, repo);
  const auto mf = ckptstore::Manifest::decode(delta.manifest_bytes);

  // Rot one real chunk: same length, wrong content.
  const ckptstore::ChunkRef* victim = nullptr;
  for (const auto& ref : mf.segments[0].chunks) {
    const auto* c = repo.find(ref.key);
    ASSERT_NE(c, nullptr);
    if (c->kind == ExtentKind::kReal) {
      victim = &ref;
      break;
    }
  }
  ASSERT_NE(victim, nullptr);
  auto* chunk = repo.find_mutable(victim->key);
  chunk->stored = std::make_shared<const std::vector<std::byte>>(
      compress::codec(codec).compress(pseudo_bytes(victim->len, 0xBAD)));

  std::string err;
  auto out = mtcp::decode_incremental(mf, repo, nullptr, nullptr, &err);
  ASSERT_FALSE(err.empty());
  EXPECT_NE(err.find("corrupted chunk"), std::string::npos);
  EXPECT_NE(err.find(victim->key.str()), std::string::npos);
}

TEST(ImageIntegrity, WholeImageCrcCatchesBitRot) {
  const auto img = make_image(16 * kChunk, 2);
  ByteWriter w;
  img.serialize(w);
  auto bytes = w.take();
  // Round-trips clean...
  {
    ByteReader r(bytes);
    auto back = mtcp::ProcessImage::deserialize(r);
    expect_images_equal(img, back);
  }
  // ...and a single flipped byte in the segment data is fatal.
  bytes[bytes.size() / 2] ^= std::byte{0x01};
  ByteReader r(bytes);
  EXPECT_DEATH(mtcp::ProcessImage::deserialize(r), "checksum mismatch");
}

// --- options -----------------------------------------------------------------

TEST(Options, ValidationRejectsBadKnobs) {
  DmtcpOptions o;
  EXPECT_EQ(o.validate(), "");
  o.chunk_bytes = 0;
  EXPECT_NE(o.validate().find("power of two"), std::string::npos);
  o.chunk_bytes = 12345;
  EXPECT_NE(o.validate().find("power of two"), std::string::npos);
  o.chunk_bytes = 4096;
  o.keep_generations = 0;
  EXPECT_NE(o.validate().find("at least one"), std::string::npos);
  o.keep_generations = 2;
  o.incremental = true;
  o.forked_checkpointing = true;
  EXPECT_NE(o.validate().find("mutually exclusive"), std::string::npos);
}

TEST(Options, FlagParsingConsumesKnownFlags) {
  DmtcpOptions o;
  std::vector<std::string> argv = {"--incremental", "--chunk-bytes", "8192",
                                   "--keep-generations", "3", "prog"};
  EXPECT_EQ(o.apply_flags(argv), "");
  EXPECT_TRUE(o.incremental);
  EXPECT_EQ(o.chunk_bytes, 8192u);
  EXPECT_EQ(o.keep_generations, 3);
  ASSERT_EQ(argv.size(), 1u);
  EXPECT_EQ(argv[0], "prog");

  std::vector<std::string> bad = {"--chunk-bytes", "banana"};
  EXPECT_NE(o.apply_flags(bad).find("invalid value"), std::string::npos);
  std::vector<std::string> zero = {"--chunk-bytes", "0"};
  EXPECT_NE(o.apply_flags(zero).find("power of two"), std::string::npos);
}

TEST(Options, SharedChunkingValidatorCoversFixedAndCdc) {
  // One helper validates launch flags and restart-time manifests alike.
  auto fixed = fixed_params(4096);
  EXPECT_EQ(core::validate_chunking(fixed), "");
  fixed.fixed_bytes = 3000;
  EXPECT_NE(core::validate_chunking(fixed).find("power of two"),
            std::string::npos);

  auto cdc = cdc_params(1024, 4096, 16 * 1024);
  EXPECT_EQ(core::validate_chunking(cdc), "");
  cdc.min_bytes = 8192;  // min > avg
  EXPECT_NE(core::validate_chunking(cdc).find("min <= avg <= max"),
            std::string::npos);
  cdc = cdc_params(1024, 4096, 2048);  // max < avg
  EXPECT_NE(core::validate_chunking(cdc).find("min <= avg <= max"),
            std::string::npos);
  cdc = cdc_params(1024, 5000, 16 * 1024);  // avg not a power of two
  EXPECT_NE(core::validate_chunking(cdc).find("power of two"),
            std::string::npos);

  // DmtcpOptions::validate routes through the same helper.
  DmtcpOptions o;
  o.chunking = ckptstore::ChunkingMode::kCdc;
  o.cdc_min_bytes = 1 << 20;
  EXPECT_NE(o.validate().find("min <= avg <= max"), std::string::npos);
}

TEST(Options, ChunkingAndDedupScopeFlagsParse) {
  DmtcpOptions o;
  std::vector<std::string> argv = {
      "--chunking",      "cdc",   "--cdc-min-bytes", "1024",
      "--cdc-avg-bytes", "4096",  "--cdc-max-bytes", "16384",
      "--dedup-scope",   "cluster", "prog"};
  EXPECT_EQ(o.apply_flags(argv), "");
  EXPECT_EQ(o.chunking, ckptstore::ChunkingMode::kCdc);
  EXPECT_EQ(o.cdc_min_bytes, 1024u);
  EXPECT_EQ(o.cdc_avg_bytes, 4096u);
  EXPECT_EQ(o.cdc_max_bytes, 16384u);
  EXPECT_EQ(o.dedup_scope, core::DedupScope::kCluster);
  ASSERT_EQ(argv.size(), 1u);
  EXPECT_EQ(argv[0], "prog");

  std::vector<std::string> fast = {"--incremental",
                                   "--chunking", "fastcdc",
                                   "--chunk-replicas", "2",
                                   "--dedup-scope", "cluster",
                                   "--store-node", "3"};
  EXPECT_EQ(o.apply_flags(fast), "");
  EXPECT_EQ(o.chunking, ckptstore::ChunkingMode::kFastCdc);
  EXPECT_EQ(o.chunk_replicas, 2);
  EXPECT_EQ(o.store_node, 3);

  std::vector<std::string> bad_mode = {"--chunking", "rolling"};
  EXPECT_NE(o.apply_flags(bad_mode).find("'fixed', 'cdc' or 'fastcdc'"),
            std::string::npos);
  std::vector<std::string> bad_replicas = {"--chunk-replicas", "0"};
  EXPECT_NE(o.apply_flags(bad_replicas).find("at least one copy"),
            std::string::npos);
  o.chunk_replicas = 2;
  o.dedup_scope = core::DedupScope::kNode;
  EXPECT_NE(o.validate().find("requires a cluster-wide store"),
            std::string::npos);
  // Both routes to a cluster-wide store satisfy the replica gate: cluster
  // dedup scope, or an explicitly shared checkpoint directory.
  o.ckpt_dir = "/shared/ckpt";
  EXPECT_EQ(o.validate(), "");
  o.ckpt_dir = "/ckpt";
  o.dedup_scope = core::DedupScope::kCluster;
  EXPECT_EQ(o.validate(), "");
  // Service knobs without --incremental would be silently inert (the
  // service only exists for the incremental store): rejected instead.
  o.incremental = false;
  EXPECT_NE(o.validate().find("require --incremental"), std::string::npos);
  o.chunk_replicas = 1;
  o.store_node = 0;
  EXPECT_NE(o.validate().find("require --incremental"), std::string::npos);
  o.incremental = true;
  EXPECT_EQ(o.validate(), "");
  std::vector<std::string> bad_scope = {"--dedup-scope", "rack"};
  EXPECT_NE(o.apply_flags(bad_scope).find("'node' or 'cluster'"),
            std::string::npos);
  std::vector<std::string> bad_bounds = {"--chunking", "cdc",
                                         "--cdc-min-bytes", "999999999"};
  EXPECT_NE(o.apply_flags(bad_bounds).find("min <= avg <= max"),
            std::string::npos);
}

// --- end to end through the DMTCP stack -------------------------------------

struct World {
  sim::Cluster cluster;
  DmtcpControl ctl;
  World(int nodes, DmtcpOptions opts = {}, u64 seed = 0x5eed)
      : cluster([&] {
          auto cfg = sim::Cluster::lab_cluster(nodes);
          cfg.seed = seed;
          return cfg;
        }()),
        ctl(cluster.kernel(), opts) {
    register_test_programs(cluster.kernel());
  }
  sim::Kernel& k() { return cluster.kernel(); }
  bool run_until_results(std::initializer_list<const char*> names,
                         SimTime deadline = 300 * timeconst::kSecond) {
    return ctl.run_until(
        [&] {
          for (const char* n : names) {
            if (read_result(k(), n).empty()) return false;
          }
          return true;
        },
        k().loop().now() + deadline);
  }
};

DmtcpOptions incremental_opts() {
  DmtcpOptions o;
  o.incremental = true;
  o.chunk_bytes = 16 * 1024;
  o.keep_generations = 2;
  return o;
}

TEST(CkptStoreE2E, DeltaRestartCompletesIdenticallyToBaseline) {
  auto baseline = [] {
    sim::Cluster cluster(sim::Cluster::lab_cluster(4));
    register_test_programs(cluster.kernel());
    cluster.kernel().spawn_process(0, kPingServer, {"9000", "300", "1024",
                                                    "srv"},
                                   {});
    cluster.kernel().spawn_process(1, kPingClient,
                                   {"0", "9000", "300", "1024", "9", "cli"},
                                   {});
    cluster.kernel().loop().run_until(cluster.kernel().loop().now() +
                                      300 * timeconst::kSecond);
    std::map<std::string, std::string> out;
    out["srv"] = read_result(cluster.kernel(), "srv");
    out["cli"] = read_result(cluster.kernel(), "cli");
    return out;
  }();

  World w(2, incremental_opts());
  w.ctl.launch(0, kPingServer, {"9000", "300", "1024", "srv"});
  w.ctl.launch(1, kPingClient, {"0", "9000", "300", "1024", "9", "cli"});
  w.ctl.run_for(30 * timeconst::kMillisecond);
  w.ctl.checkpoint_now();
  w.ctl.run_for(10 * timeconst::kMillisecond);
  // Second generation: the restart below materializes from a delta.
  const auto& r2 = w.ctl.checkpoint_now();
  EXPECT_GT(r2.total_chunks, 0u);
  w.ctl.kill_computation();
  EXPECT_TRUE(read_result(w.k(), "srv").empty());
  const auto& rr = w.ctl.restart();
  EXPECT_EQ(rr.procs, 2);
  ASSERT_TRUE(w.run_until_results({"srv", "cli"}));
  EXPECT_EQ(read_result(w.k(), "srv"), baseline["srv"]);
  EXPECT_EQ(read_result(w.k(), "cli"), baseline["cli"]);
}

TEST(CkptStoreE2E, DeltaRestartWithMigrationStagesChunks) {
  // Node-local checkpoint dirs mean per-node chunk repositories; migrating
  // hosts must stage the chunks along with the manifests.
  auto baseline = [] {
    sim::Cluster cluster(sim::Cluster::lab_cluster(4));
    register_test_programs(cluster.kernel());
    cluster.kernel().spawn_process(0, kPingServer, {"9000", "200", "1024",
                                                    "srv"},
                                   {});
    cluster.kernel().spawn_process(1, kPingClient,
                                   {"0", "9000", "200", "1024", "3", "cli"},
                                   {});
    cluster.kernel().loop().run_until(cluster.kernel().loop().now() +
                                      300 * timeconst::kSecond);
    std::map<std::string, std::string> out;
    out["srv"] = read_result(cluster.kernel(), "srv");
    out["cli"] = read_result(cluster.kernel(), "cli");
    return out;
  }();

  World w(4, incremental_opts());
  w.ctl.launch(0, kPingServer, {"9000", "200", "1024", "srv"});
  w.ctl.launch(1, kPingClient, {"0", "9000", "200", "1024", "3", "cli"});
  w.ctl.run_for(25 * timeconst::kMillisecond);
  w.ctl.checkpoint_now();
  w.ctl.kill_computation();
  const auto& rr = w.ctl.restart({{0, 2}, {1, 3}});
  EXPECT_EQ(rr.procs, 2);
  ASSERT_TRUE(w.run_until_results({"srv", "cli"}));
  EXPECT_EQ(read_result(w.k(), "srv"), baseline["srv"]);
  EXPECT_EQ(read_result(w.k(), "cli"), baseline["cli"]);
}

TEST(CkptStoreE2E, SecondGenerationWritesSmallFractionAndGcTrims) {
  auto opts = incremental_opts();
  opts.codec = compress::CodecKind::kNone;  // exact byte accounting
  opts.chunk_bytes = 64 * 1024;
  opts.keep_generations = 2;
  World w(1, opts);
  const Pid pid = w.ctl.launch(0, kComputeLoop, {"1000000", "200", "cl"});
  w.ctl.run_for(20 * timeconst::kMillisecond);

  // Give the process Fig.-6-style ballast: 8 MB of pseudo-random heap.
  constexpr u64 kBallast = 8 * 1024 * 1024;
  sim::Process* p = w.k().find_process(pid);
  ASSERT_NE(p, nullptr);
  auto& seg = p->mem().add("ballast", sim::MemKind::kHeap, kBallast);
  seg.data.fill(0, kBallast, ExtentKind::kRand, 0xA0);

  const auto r1 = w.ctl.checkpoint_now();
  EXPECT_GT(r1.store_new_bytes, kBallast);  // everything is new

  // Dirty ~10% of the ballast, checkpoint again: the delta must stay well
  // under 25% of the full-image write (the acceptance bound).
  seg.data.fill(0, kBallast / 10, ExtentKind::kRand, 0xA1);
  const auto r2 = w.ctl.checkpoint_now();
  EXPECT_GT(r2.store_new_bytes, 0u);
  EXPECT_LT(r2.store_new_bytes, r1.store_new_bytes / 4);
  EXPECT_GT(r2.dedup_ratio, 1.5);

  // Third generation pushes generation 1 out of the retention window; its
  // dirty chunks are reclaimed and trimmed from the device.
  seg.data.fill(0, kBallast / 10, ExtentKind::kRand, 0xA2);
  const auto r3 = w.ctl.checkpoint_now();
  EXPECT_GT(r3.store_reclaimed_bytes, 0u);
  EXPECT_GT(w.k().node(0).storage().disk().total_discarded_bytes(), 0u);

  // The live store holds roughly one full image plus two deltas — far less
  // than three full generations.
  EXPECT_LT(r3.store_live_bytes, 2 * r1.store_new_bytes);
}

TEST(CkptStoreE2E, DeltaRestartFetchesAreChargedAsReadsNotWrites) {
  // Regression pin for the StorageDevice read/write split: a delta restart
  // fetches the manifest plus every referenced chunk — all of it must land
  // in the device's *read* counter, and none of it in the write counter.
  auto opts = incremental_opts();
  opts.codec = compress::CodecKind::kNone;  // exact byte accounting
  World w(1, opts);
  const Pid pid = w.ctl.launch(0, kComputeLoop, {"1000000", "200", "rw"});
  w.ctl.run_for(20 * timeconst::kMillisecond);
  sim::Process* p = w.k().find_process(pid);
  ASSERT_NE(p, nullptr);
  constexpr u64 kBallast = 4 * 1024 * 1024;
  auto& seg = p->mem().add("ballast", sim::MemKind::kHeap, kBallast);
  seg.data.fill(0, kBallast, ExtentKind::kRand, 0xA0);

  const auto r1 = w.ctl.checkpoint_now();
  ASSERT_GT(r1.store_live_bytes, kBallast);
  w.ctl.kill_computation();

  const auto& dev = w.k().node(0).storage().cache();
  const u64 reads_before = dev.total_read_bytes();
  const u64 writes_before = dev.total_written_bytes();
  w.ctl.restart();
  const u64 read_delta = dev.total_read_bytes() - reads_before;
  const u64 write_delta = dev.total_written_bytes() - writes_before;

  // The fetch side reads at least the full live store (manifest + chunks)...
  EXPECT_GE(read_delta, r1.store_live_bytes);
  // ...and writes exactly nothing: restoring is not storing.
  EXPECT_EQ(write_delta, 0u);
}

TEST(CkptStoreE2E, ClusterScopeStoresSharedBallastOnce) {
  // Two processes on two nodes carry an identical 4 MiB "shared library"
  // ballast. With node-scope dedup each node's repository stores its own
  // copy; with the computation-wide store the second process's chunks are
  // answered by the first's and only one copy is ever written.
  constexpr u64 kBallast = 4 * 1024 * 1024;
  struct RunResult {
    core::CkptRound round;
    u64 min_node_written = 0;  // device write accounting, lighter node
  };
  auto run = [&](core::DedupScope scope) {
    auto opts = incremental_opts();
    opts.codec = compress::CodecKind::kNone;  // exact byte accounting
    opts.chunking = ckptstore::ChunkingMode::kCdc;
    opts.dedup_scope = scope;
    World w(2, opts);
    const Pid p0 = w.ctl.launch(0, kComputeLoop, {"1000000", "200", "a"});
    const Pid p1 = w.ctl.launch(1, kComputeLoop, {"1000000", "200", "b"});
    w.ctl.run_for(20 * timeconst::kMillisecond);
    for (Pid pid : {p0, p1}) {
      sim::Process* p = w.k().find_process(pid);
      EXPECT_NE(p, nullptr);
      auto& seg = p->mem().add("libshared", sim::MemKind::kLib, kBallast);
      seg.data.fill(0, kBallast, ExtentKind::kRand, 0x11B);  // same seed
    }
    RunResult r;
    r.round = w.ctl.checkpoint_now();
    r.min_node_written =
        std::min(w.k().node(0).storage().cache().total_written_bytes(),
                 w.k().node(1).storage().cache().total_written_bytes());
    return r;
  };

  const auto node_run = run(core::DedupScope::kNode);
  const auto cluster_run = run(core::DedupScope::kCluster);
  const auto& node_round = node_run.round;
  const auto& cluster_round = cluster_run.round;
  // Node scope stores the ballast twice, cluster scope once: the saving is
  // at least one full ballast copy.
  EXPECT_GT(node_round.store_new_bytes,
            cluster_round.store_new_bytes + kBallast / 2);
  // The second process's ballast was answered by resident chunks...
  EXPECT_GE(cluster_round.store_dup_bytes, kBallast);
  // ...and the shared chunks are visible in the round's stats.
  EXPECT_GT(cluster_round.store_shared_chunks, 0u);
  EXPECT_EQ(node_round.store_shared_chunks, 0u);
  // Device-level view (StorageDevice write accounting): under node scope
  // both nodes write their full ballast copy; under cluster scope whichever
  // process checkpoints second writes almost nothing.
  EXPECT_GT(node_run.min_node_written, kBallast / 2);
  EXPECT_LT(cluster_run.min_node_written, kBallast / 2);
}

}  // namespace
}  // namespace dsim::test
