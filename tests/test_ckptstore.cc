// The incremental content-addressed checkpoint store: chunking, dedup
// across generations, GC retention, corrupted-chunk detection, and full
// delta-restart round trips through the DMTCP stack.
#include <gtest/gtest.h>

#include "ckptstore/chunk.h"
#include "ckptstore/manifest.h"
#include "ckptstore/repository.h"
#include "core/launch.h"
#include "mtcp/mtcp.h"
#include "sim/cluster.h"
#include "tests/testprogs.h"
#include "util/crc32.h"

namespace dsim::test {
namespace {

using core::DmtcpControl;
using core::DmtcpOptions;
using sim::ByteImage;
using sim::ExtentKind;

constexpr u64 kChunk = 4 * 1024;

std::vector<std::byte> pseudo_bytes(u64 n, u64 seed) {
  std::vector<std::byte> out(n);
  u64 x = seed * 0x9E3779B97F4A7C15ull + 1;
  for (u64 i = 0; i < n; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    out[i] = static_cast<std::byte>(x >> 56);
  }
  return out;
}

/// A process image with one mixed segment: real content, a zero run, a
/// pseudo-random (ballast) run.
mtcp::ProcessImage make_image(u64 bytes, u64 content_seed) {
  mtcp::ProcessImage img;
  img.prog_name = "prog";
  img.argv = {"arg0"};
  img.env["HOME"] = "/";
  img.virt_pid = 7;
  img.virt_ppid = 1;
  img.origin_node = 0;
  mtcp::SegmentImage s;
  s.name = "heap";
  s.kind = sim::MemKind::kHeap;
  s.data = ByteImage(bytes);
  s.data.write(0, pseudo_bytes(bytes / 2, content_seed));
  s.data.fill(bytes / 2, bytes / 4, ExtentKind::kZero);
  s.data.fill(3 * bytes / 4, bytes / 4, ExtentKind::kRand, 0xBA11A57);
  img.segments.push_back(std::move(s));
  mtcp::ThreadImage t;
  t.kind = sim::ThreadKind::kMain;
  img.threads.push_back(t);
  img.dmtcp_blob = {std::byte{0xAB}, std::byte{0xCD}};
  return img;
}

void expect_images_equal(const mtcp::ProcessImage& a,
                         const mtcp::ProcessImage& b) {
  EXPECT_EQ(a.prog_name, b.prog_name);
  EXPECT_EQ(a.argv, b.argv);
  EXPECT_EQ(a.env, b.env);
  EXPECT_EQ(a.virt_pid, b.virt_pid);
  EXPECT_EQ(a.dmtcp_blob, b.dmtcp_blob);
  ASSERT_EQ(a.segments.size(), b.segments.size());
  for (size_t i = 0; i < a.segments.size(); ++i) {
    EXPECT_EQ(a.segments[i].name, b.segments[i].name);
    ASSERT_EQ(a.segments[i].data.size(), b.segments[i].data.size());
    EXPECT_EQ(a.segments[i].data.content_crc(),
              b.segments[i].data.content_crc());
  }
  ASSERT_EQ(a.threads.size(), b.threads.size());
}

// --- chunking ---------------------------------------------------------------

TEST(Chunker, PatternSpansAvoidMaterialization) {
  ByteImage img(16 * kChunk);
  img.fill(0, 8 * kChunk, ExtentKind::kZero);
  img.fill(8 * kChunk, 4 * kChunk, ExtentKind::kRand, 42);
  img.write(12 * kChunk, pseudo_bytes(4 * kChunk, 1));
  auto spans = ckptstore::scan_chunks(img, kChunk);
  ASSERT_EQ(spans.size(), 16u);
  for (size_t i = 0; i < 8; ++i) EXPECT_EQ(spans[i].kind, ExtentKind::kZero);
  for (size_t i = 8; i < 12; ++i) EXPECT_EQ(spans[i].kind, ExtentKind::kRand);
  for (size_t i = 12; i < 16; ++i) EXPECT_EQ(spans[i].kind, ExtentKind::kReal);
  // Identical zero chunks share one key; rand chunks differ by position.
  EXPECT_EQ(ckptstore::span_key(img, spans[0]),
            ckptstore::span_key(img, spans[1]));
  EXPECT_FALSE(ckptstore::span_key(img, spans[8]) ==
               ckptstore::span_key(img, spans[9]));
}

TEST(Chunker, KeysAreStableAcrossIdenticalImages) {
  auto a = make_image(64 * kChunk, 7);
  auto b = make_image(64 * kChunk, 7);
  auto sa = ckptstore::scan_chunks(a.segments[0].data, kChunk);
  auto sb = ckptstore::scan_chunks(b.segments[0].data, kChunk);
  ASSERT_EQ(sa.size(), sb.size());
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(ckptstore::span_key(a.segments[0].data, sa[i]),
              ckptstore::span_key(b.segments[0].data, sb[i]));
  }
}

TEST(Chunker, RejectsBadChunkSizes) {
  ByteImage img(kChunk);
  EXPECT_DEATH(ckptstore::scan_chunks(img, 0), "power of two");
  EXPECT_DEATH(ckptstore::scan_chunks(img, 3000), "power of two");
}

// --- dedup across generations ----------------------------------------------

TEST(CkptStore, UnchangedImageStoresOnlyTheManifest) {
  ckptstore::Repository repo;
  const auto img = make_image(256 * kChunk, 3);
  const auto codec = compress::CodecKind::kNone;

  auto g1 = mtcp::encode_incremental(img, codec, kChunk, "7", 0, repo);
  EXPECT_EQ(g1.new_chunks + repo.stats().dedup_hits, g1.total_chunks);
  EXPECT_GT(g1.new_chunk_bytes, 0u);

  auto g2 = mtcp::encode_incremental(img, codec, kChunk, "7", 1, repo);
  EXPECT_EQ(g2.new_chunks, 0u);
  EXPECT_EQ(g2.new_chunk_bytes, 0u);
  EXPECT_EQ(g2.submitted_bytes, g2.manifest_bytes.size());
  // Dedup ratio: two generations of logical bytes, one of stored.
  EXPECT_GT(repo.stats().dedup_ratio(), 1.8);
}

TEST(CkptStore, DirtyFractionBoundsNewBytes) {
  ckptstore::Repository repo;
  auto img = make_image(256 * kChunk, 3);
  const auto codec = compress::CodecKind::kNone;
  auto g1 = mtcp::encode_incremental(img, codec, kChunk, "7", 0, repo);

  // Dirty ~10% of the segment (chunk-aligned, in the real-content half).
  img.segments[0].data.write(4 * kChunk, pseudo_bytes(26 * kChunk, 999));
  auto g2 = mtcp::encode_incremental(img, codec, kChunk, "7", 1, repo);
  EXPECT_GT(g2.new_chunks, 0u);
  EXPECT_LT(g2.submitted_bytes, g1.submitted_bytes / 4);
}

// --- round trip --------------------------------------------------------------

TEST(CkptStore, DeltaDecodeEqualsFullDecode) {
  ckptstore::Repository repo;
  const auto img = make_image(64 * kChunk, 11);
  const auto codec = compress::CodecKind::kGzipish;

  // Full path.
  auto enc = mtcp::encode(img, codec);
  auto full = mtcp::decode(enc.bytes, codec, nullptr);

  // Incremental path.
  auto delta = mtcp::encode_incremental(img, codec, kChunk, "7", 0, repo);
  auto mf = ckptstore::Manifest::decode(delta.manifest_bytes);
  std::string err;
  u64 reads = 0;
  auto inc = mtcp::decode_incremental(mf, repo, nullptr, &reads, &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_GT(reads, 0u);
  expect_images_equal(full, inc);
  expect_images_equal(img, inc);
}

// --- GC ----------------------------------------------------------------------

TEST(CkptStore, GcReclaimsChunksOfDeadGenerations) {
  ckptstore::Repository repo;
  auto img = make_image(64 * kChunk, 5);
  const auto codec = compress::CodecKind::kNone;

  auto g0 = mtcp::encode_incremental(img, codec, kChunk, "7", 0, repo);
  const auto mf0 = ckptstore::Manifest::decode(g0.manifest_bytes);
  img.segments[0].data.write(0, pseudo_bytes(8 * kChunk, 77));
  auto g1 = mtcp::encode_incremental(img, codec, kChunk, "7", 1, repo);
  img.segments[0].data.write(0, pseudo_bytes(8 * kChunk, 78));
  auto g2 = mtcp::encode_incremental(img, codec, kChunk, "7", 2, repo);
  const auto mf2 = ckptstore::Manifest::decode(g2.manifest_bytes);

  const u64 live_before = repo.stats().live_stored_bytes;
  const u64 reclaimed = repo.collect_garbage(/*keep=*/1);
  EXPECT_GT(reclaimed, 0u);
  EXPECT_EQ(repo.stats().live_stored_bytes, live_before - reclaimed);
  EXPECT_EQ(repo.stats().reclaimed_bytes, reclaimed);
  EXPECT_EQ(repo.live_generations("7"), std::vector<int>{2});

  // The surviving generation still materializes byte-identically...
  std::string err;
  auto restored = mtcp::decode_incremental(mf2, repo, nullptr, nullptr, &err);
  ASSERT_TRUE(err.empty()) << err;
  expect_images_equal(img, restored);

  // ...while a collected generation reports its missing chunks clearly.
  auto gone = mtcp::decode_incremental(mf0, repo, nullptr, nullptr, &err);
  EXPECT_FALSE(err.empty());
  EXPECT_NE(err.find("missing from the repository"), std::string::npos);
}

// --- corruption detection ----------------------------------------------------

TEST(CkptStore, CorruptedChunkIsDetectedOnRestore) {
  ckptstore::Repository repo;
  const auto img = make_image(64 * kChunk, 9);
  const auto codec = compress::CodecKind::kNone;
  auto delta = mtcp::encode_incremental(img, codec, kChunk, "7", 0, repo);
  const auto mf = ckptstore::Manifest::decode(delta.manifest_bytes);

  // Rot one real chunk: same length, wrong content.
  const ckptstore::ChunkRef* victim = nullptr;
  for (const auto& ref : mf.segments[0].chunks) {
    const auto* c = repo.find(ref.key);
    ASSERT_NE(c, nullptr);
    if (c->kind == ExtentKind::kReal) {
      victim = &ref;
      break;
    }
  }
  ASSERT_NE(victim, nullptr);
  auto* chunk = repo.find_mutable(victim->key);
  chunk->stored = std::make_shared<const std::vector<std::byte>>(
      compress::codec(codec).compress(pseudo_bytes(victim->len, 0xBAD)));

  std::string err;
  auto out = mtcp::decode_incremental(mf, repo, nullptr, nullptr, &err);
  ASSERT_FALSE(err.empty());
  EXPECT_NE(err.find("corrupted chunk"), std::string::npos);
  EXPECT_NE(err.find(victim->key.str()), std::string::npos);
}

TEST(ImageIntegrity, WholeImageCrcCatchesBitRot) {
  const auto img = make_image(16 * kChunk, 2);
  ByteWriter w;
  img.serialize(w);
  auto bytes = w.take();
  // Round-trips clean...
  {
    ByteReader r(bytes);
    auto back = mtcp::ProcessImage::deserialize(r);
    expect_images_equal(img, back);
  }
  // ...and a single flipped byte in the segment data is fatal.
  bytes[bytes.size() / 2] ^= std::byte{0x01};
  ByteReader r(bytes);
  EXPECT_DEATH(mtcp::ProcessImage::deserialize(r), "checksum mismatch");
}

// --- options -----------------------------------------------------------------

TEST(Options, ValidationRejectsBadKnobs) {
  DmtcpOptions o;
  EXPECT_EQ(o.validate(), "");
  o.chunk_bytes = 0;
  EXPECT_NE(o.validate().find("power of two"), std::string::npos);
  o.chunk_bytes = 12345;
  EXPECT_NE(o.validate().find("power of two"), std::string::npos);
  o.chunk_bytes = 4096;
  o.keep_generations = 0;
  EXPECT_NE(o.validate().find("at least one"), std::string::npos);
  o.keep_generations = 2;
  o.incremental = true;
  o.forked_checkpointing = true;
  EXPECT_NE(o.validate().find("mutually exclusive"), std::string::npos);
}

TEST(Options, FlagParsingConsumesKnownFlags) {
  DmtcpOptions o;
  std::vector<std::string> argv = {"--incremental", "--chunk-bytes", "8192",
                                   "--keep-generations", "3", "prog"};
  EXPECT_EQ(o.apply_flags(argv), "");
  EXPECT_TRUE(o.incremental);
  EXPECT_EQ(o.chunk_bytes, 8192u);
  EXPECT_EQ(o.keep_generations, 3);
  ASSERT_EQ(argv.size(), 1u);
  EXPECT_EQ(argv[0], "prog");

  std::vector<std::string> bad = {"--chunk-bytes", "banana"};
  EXPECT_NE(o.apply_flags(bad).find("invalid value"), std::string::npos);
  std::vector<std::string> zero = {"--chunk-bytes", "0"};
  EXPECT_NE(o.apply_flags(zero).find("power of two"), std::string::npos);
}

// --- end to end through the DMTCP stack -------------------------------------

struct World {
  sim::Cluster cluster;
  DmtcpControl ctl;
  World(int nodes, DmtcpOptions opts = {}, u64 seed = 0x5eed)
      : cluster([&] {
          auto cfg = sim::Cluster::lab_cluster(nodes);
          cfg.seed = seed;
          return cfg;
        }()),
        ctl(cluster.kernel(), opts) {
    register_test_programs(cluster.kernel());
  }
  sim::Kernel& k() { return cluster.kernel(); }
  bool run_until_results(std::initializer_list<const char*> names,
                         SimTime deadline = 300 * timeconst::kSecond) {
    return ctl.run_until(
        [&] {
          for (const char* n : names) {
            if (read_result(k(), n).empty()) return false;
          }
          return true;
        },
        k().loop().now() + deadline);
  }
};

DmtcpOptions incremental_opts() {
  DmtcpOptions o;
  o.incremental = true;
  o.chunk_bytes = 16 * 1024;
  o.keep_generations = 2;
  return o;
}

TEST(CkptStoreE2E, DeltaRestartCompletesIdenticallyToBaseline) {
  auto baseline = [] {
    sim::Cluster cluster(sim::Cluster::lab_cluster(4));
    register_test_programs(cluster.kernel());
    cluster.kernel().spawn_process(0, kPingServer, {"9000", "300", "1024",
                                                    "srv"},
                                   {});
    cluster.kernel().spawn_process(1, kPingClient,
                                   {"0", "9000", "300", "1024", "9", "cli"},
                                   {});
    cluster.kernel().loop().run_until(cluster.kernel().loop().now() +
                                      300 * timeconst::kSecond);
    std::map<std::string, std::string> out;
    out["srv"] = read_result(cluster.kernel(), "srv");
    out["cli"] = read_result(cluster.kernel(), "cli");
    return out;
  }();

  World w(2, incremental_opts());
  w.ctl.launch(0, kPingServer, {"9000", "300", "1024", "srv"});
  w.ctl.launch(1, kPingClient, {"0", "9000", "300", "1024", "9", "cli"});
  w.ctl.run_for(30 * timeconst::kMillisecond);
  w.ctl.checkpoint_now();
  w.ctl.run_for(10 * timeconst::kMillisecond);
  // Second generation: the restart below materializes from a delta.
  const auto& r2 = w.ctl.checkpoint_now();
  EXPECT_GT(r2.total_chunks, 0u);
  w.ctl.kill_computation();
  EXPECT_TRUE(read_result(w.k(), "srv").empty());
  const auto& rr = w.ctl.restart();
  EXPECT_EQ(rr.procs, 2);
  ASSERT_TRUE(w.run_until_results({"srv", "cli"}));
  EXPECT_EQ(read_result(w.k(), "srv"), baseline["srv"]);
  EXPECT_EQ(read_result(w.k(), "cli"), baseline["cli"]);
}

TEST(CkptStoreE2E, DeltaRestartWithMigrationStagesChunks) {
  // Node-local checkpoint dirs mean per-node chunk repositories; migrating
  // hosts must stage the chunks along with the manifests.
  auto baseline = [] {
    sim::Cluster cluster(sim::Cluster::lab_cluster(4));
    register_test_programs(cluster.kernel());
    cluster.kernel().spawn_process(0, kPingServer, {"9000", "200", "1024",
                                                    "srv"},
                                   {});
    cluster.kernel().spawn_process(1, kPingClient,
                                   {"0", "9000", "200", "1024", "3", "cli"},
                                   {});
    cluster.kernel().loop().run_until(cluster.kernel().loop().now() +
                                      300 * timeconst::kSecond);
    std::map<std::string, std::string> out;
    out["srv"] = read_result(cluster.kernel(), "srv");
    out["cli"] = read_result(cluster.kernel(), "cli");
    return out;
  }();

  World w(4, incremental_opts());
  w.ctl.launch(0, kPingServer, {"9000", "200", "1024", "srv"});
  w.ctl.launch(1, kPingClient, {"0", "9000", "200", "1024", "3", "cli"});
  w.ctl.run_for(25 * timeconst::kMillisecond);
  w.ctl.checkpoint_now();
  w.ctl.kill_computation();
  const auto& rr = w.ctl.restart({{0, 2}, {1, 3}});
  EXPECT_EQ(rr.procs, 2);
  ASSERT_TRUE(w.run_until_results({"srv", "cli"}));
  EXPECT_EQ(read_result(w.k(), "srv"), baseline["srv"]);
  EXPECT_EQ(read_result(w.k(), "cli"), baseline["cli"]);
}

TEST(CkptStoreE2E, SecondGenerationWritesSmallFractionAndGcTrims) {
  auto opts = incremental_opts();
  opts.codec = compress::CodecKind::kNone;  // exact byte accounting
  opts.chunk_bytes = 64 * 1024;
  opts.keep_generations = 2;
  World w(1, opts);
  const Pid pid = w.ctl.launch(0, kComputeLoop, {"1000000", "200", "cl"});
  w.ctl.run_for(20 * timeconst::kMillisecond);

  // Give the process Fig.-6-style ballast: 8 MB of pseudo-random heap.
  constexpr u64 kBallast = 8 * 1024 * 1024;
  sim::Process* p = w.k().find_process(pid);
  ASSERT_NE(p, nullptr);
  auto& seg = p->mem().add("ballast", sim::MemKind::kHeap, kBallast);
  seg.data.fill(0, kBallast, ExtentKind::kRand, 0xA0);

  const auto r1 = w.ctl.checkpoint_now();
  EXPECT_GT(r1.store_new_bytes, kBallast);  // everything is new

  // Dirty ~10% of the ballast, checkpoint again: the delta must stay well
  // under 25% of the full-image write (the acceptance bound).
  seg.data.fill(0, kBallast / 10, ExtentKind::kRand, 0xA1);
  const auto r2 = w.ctl.checkpoint_now();
  EXPECT_GT(r2.store_new_bytes, 0u);
  EXPECT_LT(r2.store_new_bytes, r1.store_new_bytes / 4);
  EXPECT_GT(r2.dedup_ratio, 1.5);

  // Third generation pushes generation 1 out of the retention window; its
  // dirty chunks are reclaimed and trimmed from the device.
  seg.data.fill(0, kBallast / 10, ExtentKind::kRand, 0xA2);
  const auto r3 = w.ctl.checkpoint_now();
  EXPECT_GT(r3.store_reclaimed_bytes, 0u);
  EXPECT_GT(w.k().node(0).storage().disk().total_discarded_bytes(), 0u);

  // The live store holds roughly one full image plus two deltas — far less
  // than three full generations.
  EXPECT_LT(r3.store_live_bytes, 2 * r1.store_new_bytes);
}

}  // namespace
}  // namespace dsim::test
