// The cluster membership & shard-failover subsystem (src/cluster/):
// heartbeat failure detection, dead-endpoint re-homing with in-flight
// replay, consistent-hash rebalancing, scrub repair wiring, and automatic
// store-node placement.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "ckptstore/service.h"
#include "cluster/failover.h"
#include "cluster/membership.h"
#include "core/launch.h"
#include "sim/cluster.h"
#include "sim/model_params.h"
#include "tests/testprogs.h"
#include "tests/testutil.h"
#include "util/rng.h"

namespace dsim::test {
namespace {

using ckptstore::ChunkKey;
using ckptstore::ChunkStoreService;
using cluster::Membership;
using cluster::MembershipConfig;
using cluster::NodeState;
using core::DmtcpControl;
using core::DmtcpOptions;

namespace params = sim::params;

ChunkKey key_of(u64 n) {
  ChunkKey k;
  k.hi = n * 0x9E3779B97F4A7C15ull + 7;
  k.lo = n;
  return k;
}

std::vector<ChunkKey> keys_range(u64 from, u64 to) {
  std::vector<ChunkKey> out;
  for (u64 i = from; i < to; ++i) out.push_back(key_of(i));
  return out;
}

// Envelope wrappers: service ops flow through the typed StoreRequest API.
void submit_lookups(ChunkStoreService& svc, NodeId from,
                    std::vector<ChunkKey> keys, std::function<void()> done) {
  ckptstore::StoreRequest req;
  req.op = ckptstore::StoreOp::kLookup;
  req.from = from;
  req.keys = std::move(keys);
  req.done = std::move(done);
  svc.submit(std::move(req));
}

void submit_store(ChunkStoreService& svc, NodeId from, const ChunkKey& key,
                  u64 bytes, std::function<void()> done) {
  ckptstore::StoreRequest req;
  req.op = ckptstore::StoreOp::kStore;
  req.from = from;
  req.keys = {key};
  req.bytes = bytes;
  req.done = std::move(done);
  svc.submit(std::move(req));
}

// --- membership state machine ------------------------------------------------

TEST(Membership, HeartbeatsDetectDeathThroughSuspicion) {
  sim::EventLoop loop;
  sim::Network net(loop, 4);
  auto health = std::make_shared<rpc::NodeHealth>(4);
  MembershipConfig cfg;
  cfg.heartbeat_interval = 10 * timeconst::kMillisecond;
  cfg.heartbeat_misses = 3;
  cfg.monitor_node = 0;
  Membership m(loop, net, health, cfg);
  std::vector<std::pair<NodeId, NodeState>> transitions;
  m.subscribe([&](NodeId n, NodeState, NodeState to) {
    transitions.emplace_back(n, to);
  });
  m.start();
  loop.run_until(35 * timeconst::kMillisecond);
  // A few healthy rounds: everyone stays alive, acks flow.
  EXPECT_GT(m.stats().heartbeats_sent, 0u);
  EXPECT_GT(m.stats().heartbeat_acks, 0u);
  EXPECT_EQ(m.stats().heartbeat_misses, 0u);
  for (NodeId n = 0; n < 4; ++n) EXPECT_EQ(m.state(n), NodeState::kAlive);

  const SimTime killed_at = loop.now();
  m.kill_node(2);
  EXPECT_EQ(m.state(2), NodeState::kAlive);  // not *detected* yet
  // First missed heartbeat suspects; the third declares.
  loop.run_until(killed_at + 15 * timeconst::kMillisecond);
  EXPECT_EQ(m.state(2), NodeState::kSuspect);
  loop.run_until(killed_at + 45 * timeconst::kMillisecond);
  EXPECT_EQ(m.state(2), NodeState::kDead);
  ASSERT_GE(transitions.size(), 2u);
  EXPECT_EQ(transitions.front(),
            (std::pair<NodeId, NodeState>{2, NodeState::kSuspect}));
  EXPECT_EQ(transitions.back(),
            (std::pair<NodeId, NodeState>{2, NodeState::kDead}));
  EXPECT_EQ(m.stats().suspicions, 1u);
  EXPECT_EQ(m.stats().deaths, 1u);
  // Dead nodes are not probed further (the miss counter froze at the
  // declaration threshold).
  const u64 misses_at_death = m.stats().heartbeat_misses;
  loop.run_until(loop.now() + 50 * timeconst::kMillisecond);
  EXPECT_EQ(m.stats().heartbeat_misses, misses_at_death);

  // Revival readmits the node as a fresh member and probes resume.
  m.revive_node(2);
  EXPECT_EQ(m.state(2), NodeState::kAlive);
  const u64 acks_before = m.stats().heartbeat_acks;
  loop.run_until(loop.now() + 30 * timeconst::kMillisecond);
  EXPECT_GT(m.stats().heartbeat_acks, acks_before);
  m.stop();
}

TEST(Membership, KillWithoutDetectorDeclaresImmediately) {
  sim::EventLoop loop;
  sim::Network net(loop, 3);
  Membership m(loop, net, nullptr, MembershipConfig{});
  bool dead_seen = false;
  m.subscribe([&](NodeId n, NodeState, NodeState to) {
    if (n == 1 && to == NodeState::kDead) dead_seen = true;
  });
  // No heartbeat loop running: the standalone kill switch must still drive
  // failover synchronously (direct-constructed services in unit tests).
  m.kill_node(1);
  EXPECT_EQ(m.state(1), NodeState::kDead);
  EXPECT_TRUE(dead_seen);
  EXPECT_FALSE(m.fabric().health()->up(1));
}

// --- RPC fabric under node death --------------------------------------------

TEST(RpcFabric, DeadEndpointFailsTheCallWithoutCharges) {
  sim::EventLoop loop;
  sim::Network net(loop, 4);
  auto health = std::make_shared<rpc::NodeHealth>(4);
  rpc::RpcFabric rpc(loop, net, health);
  health->fail(2);
  bool served = false, done = false, failed = false;
  rpc.call(0, 2, 4096, 512,
           [&](rpc::RpcFabric::Reply reply) {
             served = true;
             reply();
           },
           [&] { done = true; }, [&] { failed = true; });
  loop.run();
  EXPECT_FALSE(served);
  EXPECT_FALSE(done);
  EXPECT_TRUE(failed);
  const auto& st = rpc.stats();
  EXPECT_EQ(st.failed_calls, 1u);
  // The request crossed the *caller's* NIC (it cannot know the target
  // died), but nothing was ever charged to the dead node: no message CPU,
  // no response on its NIC.
  EXPECT_EQ(net.egress(0).total_submitted_bytes(), 4096u);
  EXPECT_EQ(net.egress(2).total_submitted_bytes(), 0u);
  EXPECT_EQ(st.endpoint_cpu_seconds, 0.0);
}

TEST(RpcFabric, DeathWhileServingDropsTheResponse) {
  sim::EventLoop loop;
  sim::Network net(loop, 4);
  auto health = std::make_shared<rpc::NodeHealth>(4);
  rpc::RpcFabric rpc(loop, net, health);
  bool done = false, failed = false;
  rpc.call(0, 2, 1024, 1024,
           [&](rpc::RpcFabric::Reply reply) {
             // The handler runs (the node was alive through dispatch), but
             // the node dies before the response is ready.
             health->fail(2);
             loop.post_in(1 * timeconst::kMillisecond, std::move(reply));
           },
           [&] { done = true; }, [&] { failed = true; });
  loop.run();
  EXPECT_FALSE(done);
  EXPECT_TRUE(failed);
  EXPECT_EQ(net.egress(2).total_submitted_bytes(), 0u);  // response dropped
}

// --- shard failover: park, re-home, replay -----------------------------------

TEST(Failover, DeadEndpointShardRehomesAndReplaysInFlight) {
  sim::EventLoop loop;
  sim::Network net(loop, 4);
  ChunkStoreService svc(loop, net, /*replicas=*/2, /*shards=*/2);
  svc.set_endpoints({2, 3});
  bool looked_up = false, stored = false;
  submit_lookups(svc, 0, keys_range(0, 40), [&] { looked_up = true; });
  for (u64 i = 0; i < 40; ++i) {
    auto done = [&stored] { stored = true; };
    submit_store(svc, 0, key_of(i), 8 * 1024,
                     i + 1 == 40 ? std::function<void()>(done)
                                 : std::function<void()>([] {}));
  }
  // Kill shard 0's endpoint while every request is still in flight. No
  // death router is set, so the service reacts synchronously: the shard
  // re-homes to the next live node in its rendezvous order and the failing
  // requests replay there.
  svc.fail_node(2);
  EXPECT_NE(svc.endpoints()[0], 2);
  loop.run();
  EXPECT_TRUE(looked_up);
  EXPECT_TRUE(stored);
  const auto& ss = svc.stats();
  EXPECT_GT(ss.parked_requests, 0u);
  EXPECT_GT(ss.replayed_requests, 0u);
  EXPECT_GE(ss.rehomed_shards, 1u);
  // The satellite invariant: nothing was ever charged to the dead node's
  // NIC after the death (its egress saw no response traffic at all — every
  // request to it was still inbound when it died).
  EXPECT_EQ(net.egress(2).total_submitted_bytes(), 0u);
}

TEST(Failover, TransientDeathRevivedBeforeDeclarationReplaysParked) {
  // A node that dies and comes back *inside the detection window* never
  // reaches kDead, so no re-home will ever flush its parked requests —
  // the revival itself must replay them or they strand forever.
  sim::EventLoop loop;
  sim::Network net(loop, 4);
  ChunkStoreService svc(loop, net, /*replicas=*/1, /*shards=*/1);
  svc.set_endpoints({2});
  MembershipConfig cfg;
  cfg.heartbeat_interval = 10 * timeconst::kMillisecond;
  cfg.heartbeat_misses = 3;
  Membership m(loop, net, svc.health(), cfg);
  cluster::FailoverManager fo(m, svc);
  svc.set_death_router([&m](NodeId n) { m.kill_node(n); });
  svc.set_revive_router([&m](NodeId n) { m.revive_node(n); });
  m.start();

  bool done = false;
  submit_lookups(svc, 0, keys_range(0, 20), [&] { done = true; });
  svc.fail_node(2);  // requests in flight park against the dead endpoint
  loop.run_until(loop.now() + 15 * timeconst::kMillisecond);
  EXPECT_FALSE(done);  // parked: one miss in, not yet declared
  EXPECT_GT(svc.stats().parked_requests, 0u);
  svc.revive_node(2);
  loop.run_until(loop.now() + 100 * timeconst::kMillisecond);
  EXPECT_TRUE(done);
  EXPECT_EQ(m.stats().deaths, 0u);           // never declared dead
  EXPECT_EQ(svc.endpoints()[0], 2);          // never re-homed
  EXPECT_GT(svc.stats().replayed_requests, 0u);
  m.stop();
}

// --- end-to-end worlds -------------------------------------------------------

struct World {
  sim::Cluster cluster;
  DmtcpControl ctl;
  World(int nodes, DmtcpOptions opts, u64 seed = 0x5eed)
      : cluster([&] {
          auto cfg = sim::Cluster::lab_cluster(nodes);
          cfg.seed = seed;
          return cfg;
        }()),
        ctl(cluster.kernel(), opts) {
    register_test_programs(cluster.kernel());
  }
  sim::Kernel& k() { return cluster.kernel(); }
  bool run_until_results(std::initializer_list<const char*> names,
                         SimTime deadline = 300 * timeconst::kSecond) {
    return ctl.run_until(
        [&] {
          for (const char* n : names) {
            if (read_result(k(), n).empty()) return false;
          }
          return true;
        },
        k().loop().now() + deadline);
  }
};

DmtcpOptions cluster_opts(int replicas, int shards = 1,
                          i32 store_node = DmtcpOptions::kStoreNodeCoord) {
  DmtcpOptions o;
  o.incremental = true;
  o.codec = compress::CodecKind::kNone;  // exact byte accounting
  o.chunking = ckptstore::ChunkingMode::kCdc;
  o.cdc_min_bytes = 2 * 1024;
  o.cdc_avg_bytes = 8 * 1024;
  o.cdc_max_bytes = 32 * 1024;
  o.dedup_scope = core::DedupScope::kCluster;
  o.chunk_replicas = replicas;
  o.store_shards = shards;
  o.store_node = store_node;
  return o;
}

void add_ballast(World& w, Pid pid, u64 bytes, u64 seed) {
  sim::Process* p = w.k().find_process(pid);
  ASSERT_NE(p, nullptr);
  auto& seg = p->mem().add("ballast", sim::MemKind::kHeap, bytes);
  seg.data.fill(0, bytes, sim::ExtentKind::kRand, seed);
}

/// All manifest files of the current restart plan, as raw bytes, in plan
/// order — the byte-identity witness for the failover determinism claim.
std::vector<std::vector<std::byte>> plan_manifests(World& w) {
  std::vector<std::vector<std::byte>> out;
  const core::RestartPlan plan = w.ctl.read_restart_plan();
  for (const auto& host : plan.hosts) {
    for (const auto& img : host.images) {
      auto inode = w.k().fs_for(host.host, img).lookup(img);
      EXPECT_NE(inode, nullptr);
      if (inode) out.push_back(inode->data.materialize(0, inode->data.size()));
    }
  }
  return out;
}

struct KillRunResult {
  std::vector<std::vector<std::byte>> manifests;
  u64 lost_chunks = 0;
  u64 replayed = 0;
  u64 rehomed = 0;
  double round_seconds = 0;
  bool restart_ok = false;
};

/// One seeded scenario: 2 ranks + 2 dedicated store nodes, R=2, jittered
/// network. Optionally kill shard 0's endpoint mid-round (right after the
/// drain barrier, when the write phase floods the shard queues), then
/// complete the round, heal, and restart.
KillRunResult run_kill_scenario(u64 seed, bool kill) {
  KillRunResult res;
  World w(4, cluster_opts(/*replicas=*/2, /*shards=*/2, /*store_node=*/2),
          seed);
  Rng jitter_rng(seed ^ 0x71773E11);
  w.k().net().set_jitter(&jitter_rng, 0.25);
  const Pid pa = w.ctl.launch(0, kComputeLoop, {"1000000", "200", "a"});
  const Pid pb = w.ctl.launch(1, kComputeLoop, {"1000000", "200", "b"});
  w.ctl.run_for(20 * timeconst::kMillisecond);
  add_ballast(w, pa, 1024 * 1024, 0xAA);
  add_ballast(w, pb, 1024 * 1024, 0xBB);

  w.ctl.request_checkpoint();
  const bool drained = w.ctl.run_until(
      [&] {
        return !w.ctl.stats().rounds.empty() &&
               w.ctl.stats().rounds.back().drained != 0;
      },
      w.k().loop().now() + 60 * timeconst::kSecond);
  EXPECT_TRUE(drained);
  if (kill) {
    // The write phase is starting: lookups and stores are heading for the
    // endpoint on node 2. Kill it mid-flight — membership must detect the
    // silence, the failover manager re-homes the shard, and the parked
    // requests replay. The content being checkpointed was frozen at
    // suspend time, so the failover must not change a single stored byte.
    w.ctl.shared().store_service->fail_node(2);
  }
  const bool completed = w.ctl.run_until(
      [&] { return w.ctl.stats().rounds.back().refilled != 0; },
      w.k().loop().now() + 60 * timeconst::kSecond);
  EXPECT_TRUE(completed);
  const auto& round = w.ctl.stats().rounds.back();
  res.round_seconds = round.total_seconds();
  res.replayed = round.failover_replayed_requests;
  res.rehomed = round.failover_rehomed_shards;
  res.manifests = plan_manifests(w);
  // Let the heal daemon finish restoring replica strength.
  w.ctl.run_for(300 * timeconst::kMillisecond);
  res.lost_chunks = w.ctl.shared().store_service->placement().lost_chunks();
  w.ctl.kill_computation();
  const auto& rr = w.ctl.restart();
  res.restart_ok = !rr.needs_restore && rr.procs == 2 &&
                   w.run_until_results({"a", "b"});
  return res;
}

TEST(Failover, MidRoundEndpointKillIsByteTransparentAcrossSeeds) {
  for (const u64 seed : {0xFA11u, 0x5EED2u}) {
    const KillRunResult base = run_kill_scenario(seed, /*kill=*/false);
    const KillRunResult killed = run_kill_scenario(seed, /*kill=*/true);
    // The round completed, the failover really engaged, and with R=2 the
    // store lost nothing.
    EXPECT_GE(killed.rehomed, 1u) << "seed " << seed;
    EXPECT_GT(killed.replayed, 0u) << "seed " << seed;
    EXPECT_EQ(killed.lost_chunks, 0u) << "seed " << seed;
    EXPECT_TRUE(killed.restart_ok) << "seed " << seed;
    // Callers saw latency, never errors: the kill-run manifests are
    // byte-identical to the undisturbed run's — failover changed *when*
    // the round finished, not *what* it stored.
    ASSERT_EQ(killed.manifests.size(), base.manifests.size());
    for (size_t i = 0; i < base.manifests.size(); ++i) {
      EXPECT_EQ(killed.manifests[i], base.manifests[i])
          << "manifest " << i << " diverged under seed " << seed;
    }
    EXPECT_GE(killed.round_seconds, base.round_seconds);
  }
}

TEST(Failover, RestartFetchesPastADeadEndpointNode) {
  // The shard endpoint (a replica holder too) dies *after* the round. The
  // restart must re-home the shard on the fly (fetch RPCs park and replay)
  // and fetch every chunk from surviving holders only.
  World w(4, cluster_opts(/*replicas=*/2, /*shards=*/1, /*store_node=*/2));
  const Pid pa = w.ctl.launch(0, kComputeLoop, {"1000000", "200", "a"});
  const Pid pb = w.ctl.launch(1, kComputeLoop, {"1000000", "200", "b"});
  w.ctl.run_for(20 * timeconst::kMillisecond);
  add_ballast(w, pa, 1024 * 1024, 0xAA);
  add_ballast(w, pb, 1024 * 1024, 0xBB);
  w.ctl.checkpoint_now();

  const u64 node2_nic_before = w.k().net().egress(2).total_submitted_bytes();
  w.ctl.shared().store_service->fail_node(2);
  w.ctl.kill_computation();
  const auto& rr = w.ctl.restart();
  EXPECT_FALSE(rr.needs_restore);
  EXPECT_EQ(rr.lost_chunks, 0u);
  EXPECT_EQ(rr.procs, 2);
  ASSERT_TRUE(w.run_until_results({"a", "b"}));
  EXPECT_NE(w.ctl.shared().store_service->endpoints()[0], 2);
  // Nothing left the dead node's NIC after its death: no fetch was served
  // or answered by it (the membership-aware holder choice plus the fabric
  // assert both guard this).
  EXPECT_EQ(w.k().net().egress(2).total_submitted_bytes(),
            node2_nic_before);
}

TEST(Failover, RevivedEndpointGetsItsShardBackAtTheRoundBoundary) {
  // Shard stickiness: a failover re-home is an *emergency* move, not a new
  // assignment. Once the original endpoint node revives, the next round
  // boundary must move the shard back to its assigned owner (and replay
  // anything parked), instead of leaving it stuck on the stand-in forever.
  World w(4, cluster_opts(/*replicas=*/2, /*shards=*/2, /*store_node=*/2));
  const Pid pa = w.ctl.launch(0, kComputeLoop, {"1000000", "200", "a"});
  const Pid pb = w.ctl.launch(1, kComputeLoop, {"1000000", "200", "b"});
  w.ctl.run_for(20 * timeconst::kMillisecond);
  add_ballast(w, pa, 1024 * 1024, 0xAA);
  add_ballast(w, pb, 1024 * 1024, 0xBB);
  w.ctl.checkpoint_now();

  auto& svc = *w.ctl.shared().store_service;
  ASSERT_EQ(svc.endpoints()[0], 2);  // shard 0's assigned owner
  svc.fail_node(2);
  w.ctl.run_for(2 * timeconst::kSecond);  // let membership declare the death
  EXPECT_NE(svc.endpoints()[0], 2);       // emergency re-home engaged

  // A round while the owner is down must NOT move the shard back.
  w.ctl.checkpoint_now();
  EXPECT_NE(svc.endpoints()[0], 2);
  EXPECT_EQ(svc.stats().rehomed_back_shards, 0u);

  svc.revive_node(2);
  const auto& round = w.ctl.checkpoint_now();
  EXPECT_EQ(svc.endpoints()[0], 2) << "shard did not stick to its owner";
  EXPECT_GE(svc.stats().rehomed_back_shards, 1u);
  EXPECT_GE(round.failover_rehomed_back_shards, 1u);

  // The store stayed coherent across the move-away and the move-back.
  w.ctl.run_for(300 * timeconst::kMillisecond);  // heal daemon settles
  EXPECT_EQ(svc.placement().lost_chunks(), 0u);
  w.ctl.kill_computation();
  const auto& rr = w.ctl.restart();
  EXPECT_FALSE(rr.needs_restore);
  EXPECT_EQ(rr.procs, 2);
  ASSERT_TRUE(w.run_until_results({"a", "b"}));
}

// --- consistent-hash rebalancing ---------------------------------------------

TEST(Rebalance, ShardCountChangeMovesOnlyReassignedKeys) {
  World w(6, cluster_opts(/*replicas=*/1, /*shards=*/3, /*store_node=*/2));
  const Pid pa = w.ctl.launch(0, kComputeLoop, {"1000000", "200", "a"});
  const Pid pb = w.ctl.launch(1, kComputeLoop, {"1000000", "200", "b"});
  w.ctl.run_for(20 * timeconst::kMillisecond);
  add_ballast(w, pa, 2 * 1024 * 1024, 0xAA);
  add_ballast(w, pb, 2 * 1024 * 1024, 0xBB);
  w.ctl.checkpoint_now();

  auto& svc = *w.ctl.shared().store_service;
  // Ground truth from the index itself: exactly the keys whose rendezvous
  // winner changes between 3 and 4 shards may move — nothing else.
  u64 expect_moved = 0, expect_total = 0;
  for (const auto& [key, chunk] : svc.repo().chunks_after(
           ChunkKey{}, static_cast<size_t>(svc.repo().stats().live_chunks))) {
    (void)chunk;
    expect_total++;
    if (ChunkStoreService::shard_of_n(key, 3) !=
        ChunkStoreService::shard_of_n(key, 4)) {
      expect_moved++;
    }
  }
  ASSERT_GT(expect_total, 100u);

  w.ctl.set_store_shards(4);
  EXPECT_EQ(svc.num_shards(), 4);
  EXPECT_EQ(w.ctl.shared().opts.store_shards, 4);
  const auto& ss = svc.stats();
  EXPECT_EQ(ss.rebalances, 1u);
  EXPECT_EQ(ss.rebalance_moved_keys, expect_moved);
  EXPECT_EQ(ss.rebalance_scanned_keys, expect_total);
  // Rendezvous property: growing 3 -> 4 moves ~1/4 of the keys.
  const double fraction = static_cast<double>(expect_moved) /
                          static_cast<double>(expect_total);
  EXPECT_GT(fraction, 0.10);
  EXPECT_LT(fraction, 0.45);

  // The next round routes with the new shard count and records the move in
  // its stats; a restart over the rebalanced store works end to end.
  const auto& round = w.ctl.checkpoint_now();
  EXPECT_EQ(round.rebalance_moved_keys, expect_moved);
  EXPECT_GT(round.rebalance_moved_bytes, 0u);
  w.ctl.kill_computation();
  const auto& rr = w.ctl.restart();
  EXPECT_FALSE(rr.needs_restore);
  EXPECT_EQ(rr.procs, 2);
  ASSERT_TRUE(w.run_until_results({"a", "b"}));
}

// --- scrub -> repair wiring --------------------------------------------------

TEST(ScrubRepair, CorruptChunkIsQuarantinedAndRestoredNextRound) {
  World w(4, cluster_opts(/*replicas=*/1));
  const Pid pa = w.ctl.launch(0, kComputeLoop, {"1000000", "200", "a"});
  w.ctl.run_for(20 * timeconst::kMillisecond);
  sim::Process* p = w.k().find_process(pa);
  ASSERT_NE(p, nullptr);
  auto& seg = p->mem().add("blob", sim::MemKind::kHeap, 512 * 1024);
  seg.data.write(0, pseudo_bytes(512 * 1024, 0x5C12B));
  w.ctl.checkpoint_now();

  auto& svc = *w.ctl.shared().store_service;
  // Rot one real chunk: same length, wrong content. Pick a big one — the
  // CDC chunks of the deterministic blob ballast are the only multi-KiB
  // real spans, so the re-launched computation below re-produces the
  // victim's exact content (a rotten *state* chunk would simply never be
  // referenced again, which repairs nothing observable).
  ckptstore::Chunk* victim = nullptr;
  for (const auto& [key, chunk] : svc.repo().chunks_after(ChunkKey{}, 4096)) {
    if (chunk->kind == sim::ExtentKind::kReal && chunk->len >= 4096) {
      victim = svc.repo().find_mutable(key);
      break;
    }
  }
  ASSERT_NE(victim, nullptr);
  victim->stored = std::make_shared<const std::vector<std::byte>>(
      compress::codec(compress::CodecKind::kNone)
          .compress(pseudo_bytes(victim->len, 0xBAD)));

  // The scrubber finds the rot and wires it into the repair path: the key
  // is quarantined (masked from the repository) so the next generation's
  // encode re-stores fresh content from the live process.
  svc.scrub(1u << 20, compress::CodecKind::kNone);
  w.ctl.run_for(100 * timeconst::kMillisecond);
  EXPECT_GE(svc.stats().scrub_corrupt_chunks, 1u);
  EXPECT_GE(svc.stats().scrub_quarantined_chunks, 1u);
  EXPECT_GE(svc.repo().quarantined_count(), 1u);

  // A restart *now* would land on the condemned chunk: the pre-flight must
  // report it instead of crashing into a CRC mismatch mid-decode.
  {
    w.ctl.kill_computation();
    const auto& rr = w.ctl.restart();
    EXPECT_TRUE(rr.needs_restore);
    EXPECT_GT(rr.lost_chunks, 0u);
    // The forced re-store: re-run the computation (fresh launch) — its
    // next checkpoint repairs the store.
    const Pid pa2 = w.ctl.launch(0, kComputeLoop, {"1000000", "200", "a"});
    w.ctl.run_for(20 * timeconst::kMillisecond);
    sim::Process* p2 = w.k().find_process(pa2);
    ASSERT_NE(p2, nullptr);
    auto& seg2 = p2->mem().add("blob", sim::MemKind::kHeap, 512 * 1024);
    seg2.data.write(0, pseudo_bytes(512 * 1024, 0x5C12B));
  }
  w.ctl.checkpoint_now();
  EXPECT_EQ(svc.repo().quarantined_count(), 0u);  // re-stored fresh

  // The repaired store restarts cleanly — the rotten container is gone.
  w.ctl.kill_computation();
  const auto& rr = w.ctl.restart();
  EXPECT_FALSE(rr.needs_restore);
  ASSERT_TRUE(w.run_until_results({"a"}));
}

TEST(ScrubRepair, DegradedStragglersAreRoutedToTheHealDaemon) {
  sim::EventLoop loop;
  sim::Network net(loop, 4);
  ChunkStoreService svc(loop, net, /*replicas=*/2, /*shards=*/1);
  svc.set_endpoints({0});
  for (u64 i = 0; i < 60; ++i) {
    submit_store(svc, 0, key_of(i), 16 * 1024, [] {});
    // The scrub walk iterates the *repository* index; mirror the placement
    // entries there (pattern descriptors — scrub only CRC-checks real
    // containers, and this test is about the degraded routing).
    ckptstore::Chunk c;
    c.kind = sim::ExtentKind::kZero;
    c.len = 16 * 1024;
    c.charged_bytes = 16 * 1024;
    svc.repo().put(key_of(i), std::move(c));
  }
  loop.run();
  // Degrade the store behind the heal daemon's back (placement-only death:
  // the one-shot heal scan a service-level fail_node would kick).
  svc.placement().fail_node(1);
  ASSERT_GT(svc.placement().degraded_count(), 0u);
  ASSERT_TRUE(svc.rereplication_idle());
  // The scrub walk trips over the degraded survivors and routes them into
  // the heal path.
  svc.scrub(1u << 20, compress::CodecKind::kNone);
  loop.run();
  EXPECT_EQ(svc.placement().degraded_count(), 0u);
  EXPECT_GT(svc.stats().rereplicated_chunks, 0u);
}

// --- automatic store placement -----------------------------------------------

TEST(AutoPlacement, SpareNodesHostTheShardEndpoints) {
  // Ranks compute on nodes 0 and 1 (the coordinator shares node 0); nodes
  // 2 and 3 are spare. Without --store-node the coordinator pins the shard
  // endpoints onto the spares at the first round.
  World w(4, cluster_opts(/*replicas=*/1, /*shards=*/2));
  const Pid pa = w.ctl.launch(0, kComputeLoop, {"1000000", "200", "a"});
  const Pid pb = w.ctl.launch(1, kComputeLoop, {"1000000", "200", "b"});
  w.ctl.run_for(20 * timeconst::kMillisecond);
  add_ballast(w, pa, 512 * 1024, 0xAA);
  add_ballast(w, pb, 512 * 1024, 0xBB);
  w.ctl.checkpoint_now();
  const auto& eps = w.ctl.shared().store_service->endpoints();
  ASSERT_EQ(eps.size(), 2u);
  for (NodeId ep : eps) {
    EXPECT_TRUE(ep == 2 || ep == 3) << "endpoint on compute node " << ep;
  }
}

TEST(AutoPlacement, NoSparesKeepsTheCoordinatorDefault) {
  // Every node computes: the startup default (shards from the coordinator's
  // node) must hold.
  World w(2, cluster_opts(/*replicas=*/1, /*shards=*/1));
  const Pid pa = w.ctl.launch(0, kComputeLoop, {"1000000", "200", "a"});
  const Pid pb = w.ctl.launch(1, kComputeLoop, {"1000000", "200", "b"});
  w.ctl.run_for(20 * timeconst::kMillisecond);
  add_ballast(w, pa, 256 * 1024, 0xAA);
  add_ballast(w, pb, 256 * 1024, 0xBB);
  w.ctl.checkpoint_now();
  EXPECT_EQ(w.ctl.shared().store_service->endpoints()[0], 0);
}

// --- options -----------------------------------------------------------------

TEST(Options, HeartbeatFlagsParseAndValidate) {
  DmtcpOptions o;
  std::vector<std::string> argv{"--incremental",         "--dedup-scope",
                                "cluster",               "--heartbeat-interval",
                                "25",                    "--heartbeat-misses",
                                "5"};
  EXPECT_EQ(o.apply_flags(argv), "");
  EXPECT_TRUE(argv.empty());
  EXPECT_EQ(o.heartbeat_interval_ms, 25);
  EXPECT_EQ(o.heartbeat_misses, 5);

  DmtcpOptions bad;
  std::vector<std::string> zero_interval{"--heartbeat-interval", "0"};
  EXPECT_NE(bad.apply_flags(zero_interval), "");
  DmtcpOptions bad2;
  std::vector<std::string> zero_misses{"--heartbeat-misses", "0"};
  EXPECT_NE(bad2.apply_flags(zero_misses), "");
}

}  // namespace
}  // namespace dsim::test
