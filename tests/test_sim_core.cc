// Simulation-core unit tests: event loop, CPU fluid sharing, storage
// queueing, network, deterministic RNG, utility types.
#include <gtest/gtest.h>

#include "sim/cpu.h"
#include "sim/event_loop.h"
#include "sim/net.h"
#include "sim/storage.h"
#include "util/crc32.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/stats.h"

namespace dsim::sim {
namespace {

TEST(EventLoop, FiresInTimeThenInsertionOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.post_at(100, [&] { order.push_back(2); });
  loop.post_at(50, [&] { order.push_back(1); });
  loop.post_at(100, [&] { order.push_back(3); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 100);
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool fired = false;
  const EventId id = loop.post_at(10, [&] { fired = true; });
  loop.cancel(id);
  loop.run();
  EXPECT_FALSE(fired);
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    loop.post_at(i * 10, [&] { count++; });
  }
  EXPECT_TRUE(loop.run_until(50));
  EXPECT_EQ(count, 5);
  EXPECT_EQ(loop.now(), 50);
}

TEST(EventLoop, PostingInsideHandlerWorks) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) loop.post_in(10, chain);
  };
  loop.post_now(chain);
  loop.run();
  EXPECT_EQ(depth, 5);
}

TEST(CpuModel, SingleJobTakesItsDuration) {
  EventLoop loop;
  CpuModel cpu(loop, 4);
  SimTime done_at = 0;
  cpu.submit(2.0, [&] { done_at = loop.now(); });
  loop.run();
  EXPECT_EQ(done_at, from_seconds(2.0));
}

TEST(CpuModel, OversubscriptionStretchesDurations) {
  EventLoop loop;
  CpuModel cpu(loop, 2);
  std::vector<SimTime> done;
  for (int i = 0; i < 4; ++i) {
    cpu.submit(1.0, [&] { done.push_back(loop.now()); });
  }
  loop.run();
  // 4 jobs of 1 core-second on 2 cores: everything finishes at 2 s.
  ASSERT_EQ(done.size(), 4u);
  for (auto t : done) EXPECT_NEAR(to_seconds(t), 2.0, 1e-6);
}

TEST(CpuModel, PauseAndResumePreservesRemainingWork) {
  EventLoop loop;
  CpuModel cpu(loop, 1);
  SimTime done_at = 0;
  const auto job = cpu.submit(1.0, [&] { done_at = loop.now(); });
  loop.post_at(from_seconds(0.5), [&] { cpu.pause(job); });
  loop.post_at(from_seconds(2.5), [&] { cpu.resume(job); });
  loop.run();
  // 0.5 s done before the pause; the remaining 0.5 s runs from t=2.5.
  EXPECT_NEAR(to_seconds(done_at), 3.0, 1e-6);
}

TEST(StorageDevice, RequestsSerialize) {
  EventLoop loop;
  StorageDevice dev(loop, "d", 100e6, 0);
  std::vector<SimTime> done;
  dev.submit(100'000'000, [&] { done.push_back(loop.now()); });
  dev.submit(100'000'000, [&] { done.push_back(loop.now()); });
  loop.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(to_seconds(done[0]), 1.0, 1e-6);
  EXPECT_NEAR(to_seconds(done[1]), 2.0, 1e-6);
}

TEST(LocalStorage, SyncDrainsDirtyAtDiskSpeed) {
  EventLoop loop;
  LocalStorage st(loop, "n0");
  bool wrote = false, synced = false;
  SimTime sync_done = 0;
  st.write(400'000'000, [&] { wrote = true; });
  loop.run();
  EXPECT_TRUE(wrote);
  EXPECT_EQ(st.dirty_bytes(), 400'000'000u);
  st.sync([&] {
    synced = true;
    sync_done = loop.now();
  });
  loop.run();
  EXPECT_TRUE(synced);
  EXPECT_EQ(st.dirty_bytes(), 0u);
  // 400 MB at 80 MB/s physical speed = 5 s (plus latency).
  EXPECT_GT(to_seconds(sync_done), 4.9);
}

TEST(Network, LoopbackFasterThanRemote) {
  EventLoop loop;
  Network net(loop, 2);
  SimTime local = 0, remote = 0;
  net.transfer(0, 0, 1'000'000, [&] { local = loop.now(); });
  loop.run();
  net.transfer(0, 1, 1'000'000, [&] { remote = loop.now() - local; });
  loop.run();
  EXPECT_LT(local, remote);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkedStreamsDiverge) {
  Rng a(42);
  Rng c1 = a.fork(1);
  Rng c2 = a.fork(2);
  EXPECT_NE(c1.next_u64(), c2.next_u64());
}

TEST(Crc32, KnownVector) {
  const char* s = "123456789";
  EXPECT_EQ(crc32(as_bytes_view(s)), 0xCBF43926u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  std::vector<std::byte> data(1000);
  Rng rng(7);
  for (auto& b : data) b = static_cast<std::byte>(rng.next_u64());
  u32 inc = 0;
  // Incremental over our table-based reflected CRC requires restart from
  // scratch per chunk boundary behaviour — verify full == full.
  inc = crc32_update(inc, std::span<const std::byte>(data).first(1000));
  EXPECT_EQ(inc, crc32(data));
}

TEST(Serialize, AllTypesRoundTrip) {
  ByteWriter w;
  w.put_u8(7);
  w.put_u16(65535);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x123456789ABCDEFull);
  w.put_i32(-42);
  w.put_i64(-1234567890123ll);
  w.put_f64(3.14159);
  w.put_bool(true);
  w.put_string("hello world");
  std::vector<std::byte> blob{std::byte{1}, std::byte{2}};
  w.put_blob(blob);
  auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_EQ(r.get_u8(), 7);
  EXPECT_EQ(r.get_u16(), 65535);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), 0x123456789ABCDEFull);
  EXPECT_EQ(r.get_i32(), -42);
  EXPECT_EQ(r.get_i64(), -1234567890123ll);
  EXPECT_DOUBLE_EQ(r.get_f64(), 3.14159);
  EXPECT_TRUE(r.get_bool());
  EXPECT_EQ(r.get_string(), "hello world");
  EXPECT_EQ(r.get_blob(), blob);
  EXPECT_TRUE(r.at_end());
}

TEST(Stats, MeanAndStddev) {
  Stats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

}  // namespace
}  // namespace dsim::sim
