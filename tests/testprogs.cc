#include "tests/testprogs.h"

#include "apps/app_util.h"
#include "util/crc32.h"

namespace dsim::test {
namespace {

using apps::argi;
using apps::args;
using apps::buffer;
using apps::StateView;
using sim::MemRef;
using sim::Task;

// ---------------------------------------------------------------------------
// pp_server <port> <rounds> <msglen> <result-name>
// Echo server: accepts one client, echoes `rounds` messages, records a CRC.
// ---------------------------------------------------------------------------

struct PPSrvState {
  i32 lfd = kNoFd;
  i32 cfd = kNoFd;
  u64 i = 0;
  u32 crc = 0;
  u8 received = 0;
  u8 pad_[3] = {};  // explicit: stored state must have no padding bits
};

Task<int> pp_server_main(sim::ProcessCtx& ctx) {
  const u16 port = static_cast<u16>(argi(ctx, 0, 9000));
  const u64 rounds = static_cast<u64>(argi(ctx, 1, 10));
  const u64 msglen = static_cast<u64>(argi(ctx, 2, 1024));
  const std::string result = args(ctx, 3, "pp_server");

  StateView<PPSrvState> st(ctx);
  MemRef buf = buffer(ctx, "buf", msglen);
  std::vector<std::byte> host(msglen);

  PPSrvState s = st.get();
  while (true) {
    switch (ctx.phase()) {
      case 0: {
        const Fd lfd = co_await ctx.socket();
        const bool ok = co_await ctx.bind(lfd, port);
        DSIM_CHECK(ok);
        co_await ctx.listen(lfd);
        s.lfd = lfd;
        st.set(s);
        ctx.phase() = 1;
        break;
      }
      case 1: {
        const Fd cfd = co_await ctx.accept(s.lfd);
        DSIM_CHECK(cfd != kNoFd);
        s.cfd = cfd;
        st.set(s);
        ctx.phase() = 2;
        break;
      }
      case 2: {
        while (s.i < rounds) {
          if (!s.received) {
            co_await ctx.read_exact(s.cfd, buf, msglen, 0);
            buf.seg->data.read(buf.off, host);
            s.crc = crc32_update(s.crc, host);
            s.received = 1;
            st.set(s);
          }
          co_await ctx.write_exact(s.cfd, buf, msglen, 1);
          s.received = 0;
          s.i++;
          st.set(s);
        }
        ctx.phase() = 3;
        break;
      }
      case 3: {
        char out[64];
        std::snprintf(out, sizeof out, "crc=%08x rounds=%llu", s.crc,
                      static_cast<unsigned long long>(s.i));
        co_await apps::write_result(ctx, result, out);
        ctx.phase() = 4;
        break;
      }
      case 4:
        co_return 0;
    }
  }
}

// ---------------------------------------------------------------------------
// pp_client <server-node> <port> <rounds> <msglen> <seed> <result-name>
// Sends deterministic messages; verifies the echo; records a CRC.
// ---------------------------------------------------------------------------

struct PPCliState {
  u64 i = 0;
  i32 fd = kNoFd;
  u32 crc = 0;
  u8 stage = 0;  // 0 = sending (buffer filled deterministically), 1 = reading
  u8 pad_[7] = {};  // explicit: stored state must have no padding bits
};

Task<int> pp_client_main(sim::ProcessCtx& ctx) {
  const NodeId srv_node = static_cast<NodeId>(argi(ctx, 0, 0));
  const u16 port = static_cast<u16>(argi(ctx, 1, 9000));
  const u64 rounds = static_cast<u64>(argi(ctx, 2, 10));
  const u64 msglen = static_cast<u64>(argi(ctx, 3, 1024));
  const u64 seed = static_cast<u64>(argi(ctx, 4, 42));
  const std::string result = args(ctx, 5, "pp_client");

  StateView<PPCliState> st(ctx);
  MemRef out = buffer(ctx, "out", msglen);
  MemRef in = buffer(ctx, "in", msglen);
  std::vector<std::byte> host(msglen);

  PPCliState s = st.get();
  while (true) {
    switch (ctx.phase()) {
      case 0: {
        const Fd fd = co_await ctx.socket();
        while (!co_await ctx.connect(fd, sim::SockAddr{srv_node, port})) {
          co_await ctx.sleep(2 * timeconst::kMillisecond);
        }
        s.fd = fd;
        st.set(s);
        ctx.phase() = 1;
        break;
      }
      case 1: {
        while (s.i < rounds) {
          if (s.stage == 0) {
            // Deterministic fill: harmless to redo if restarted mid-send.
            for (u64 j = 0; j < msglen; ++j) {
              host[j] =
                  static_cast<std::byte>(apps::payload_byte(seed, s.i, j));
            }
            out.seg->data.write(out.off, host);
            co_await ctx.write_exact(s.fd, out, msglen, 0);
            s.stage = 1;  // send complete — recorded before the next await
            st.set(s);
          }
          co_await ctx.read_exact(s.fd, in, msglen, 1);
          // Verify the echo matches what we sent.
          in.seg->data.read(in.off, host);
          for (u64 j = 0; j < msglen; ++j) {
            if (static_cast<u8>(host[j]) != apps::payload_byte(seed, s.i, j)) {
              std::fprintf(stderr,
                           "pp_client mismatch: round=%llu byte=%llu got=%02x "
                           "want=%02x\n",
                           (unsigned long long)s.i, (unsigned long long)j,
                           static_cast<u8>(host[j]),
                           apps::payload_byte(seed, s.i, j));
              std::fprintf(stderr, "got : ");
              for (u64 x = j; x < std::min<u64>(j + 12, msglen); ++x)
                std::fprintf(stderr, "%02x ", static_cast<u8>(host[x]));
              std::fprintf(stderr, "\n");
              for (u64 cand = (s.i > 2 ? s.i - 2 : 0); cand <= s.i + 2;
                   ++cand) {
                std::fprintf(stderr, "r%llu : ", (unsigned long long)cand);
                for (u64 x = j; x < std::min<u64>(j + 12, msglen); ++x)
                  std::fprintf(stderr, "%02x ",
                               apps::payload_byte(seed, cand, x));
                std::fprintf(stderr, "\n");
              }
              DSIM_CHECK_MSG(false, "echoed bytes corrupted");
            }
          }
          s.crc = crc32_update(s.crc, host);
          s.stage = 0;
          s.i++;
          st.set(s);
        }
        ctx.phase() = 2;
        break;
      }
      case 2: {
        char outb[64];
        std::snprintf(outb, sizeof outb, "crc=%08x rounds=%llu", s.crc,
                      static_cast<unsigned long long>(s.i));
        co_await apps::write_result(ctx, result, outb);
        ctx.phase() = 3;
        break;
      }
      case 3:
        co_return 0;
    }
  }
}

// ---------------------------------------------------------------------------
// compute_loop <iters> <us-per-iter> <result-name>
// Pure compute with resumable bursts; records a hash over iteration ids.
// ---------------------------------------------------------------------------

struct ComputeState {
  u64 i = 0;
  u64 acc = 0;
};

Task<int> compute_loop_main(sim::ProcessCtx& ctx) {
  const u64 iters = static_cast<u64>(argi(ctx, 0, 100));
  const double us = static_cast<double>(argi(ctx, 1, 500));
  const std::string result = args(ctx, 2, "compute_loop");

  StateView<ComputeState> st(ctx);
  ComputeState s = st.get();
  while (s.i < iters) {
    co_await ctx.cpu_chunked(us * 1e-6, 0);
    s.acc = mix_seed(s.acc, s.i);
    s.i++;
    st.set(s);
  }
  if (ctx.phase() == 0) {
    char out[64];
    std::snprintf(out, sizeof out, "acc=%016llx iters=%llu",
                  static_cast<unsigned long long>(s.acc),
                  static_cast<unsigned long long>(s.i));
    co_await apps::write_result(ctx, result, out);
    ctx.phase() = 1;
  }
  co_return 0;
}

// ---------------------------------------------------------------------------
// pipe_chain <nbytes> <result-name>   (parent)
// Creates a pipe (promoted to a socketpair under DMTCP), spawns a child
// that reads and CRCs everything, writes a deterministic stream, waits.
// ---------------------------------------------------------------------------

struct PipeParentState {
  u64 written = 0;
  i32 rfd = kNoFd;
  i32 wfd = kNoFd;
  i32 child = kNoPid;
  u8 spawned = 0;
  u8 closed = 0;
  u8 pad_[2] = {};  // explicit: stored state must have no padding bits
};

Task<int> pipe_chain_main(sim::ProcessCtx& ctx) {
  const u64 nbytes = static_cast<u64>(argi(ctx, 0, 64 * 1024));
  const std::string result = args(ctx, 1, "pipe_chain");

  StateView<PipeParentState> st(ctx);
  MemRef buf = buffer(ctx, "buf", 4096);
  PipeParentState s = st.get();

  while (true) {
    switch (ctx.phase()) {
      case 0: {
        auto [rfd, wfd] = co_await ctx.pipe();
        s.rfd = rfd;
        s.wfd = wfd;
        st.set(s);
        ctx.phase() = 1;
        break;
      }
      case 1: {
        if (!s.spawned) {
          std::vector<std::string> cargv{std::to_string(s.rfd),
                                         std::to_string(nbytes), result};
          const Pid child =
              co_await ctx.spawn("pipe_chain_child", std::move(cargv));
          s.child = child;
          s.spawned = 1;
          st.set(s);
        }
        // Parent's copy of the read end is closed so the child sees EOF.
        co_await ctx.close(s.rfd);
        ctx.phase() = 2;
        break;
      }
      case 2: {
        std::vector<std::byte> host(4096);
        while (s.written < nbytes) {
          const u64 n = std::min<u64>(host.size(), nbytes - s.written);
          for (u64 j = 0; j < n; ++j) {
            host[j] = static_cast<std::byte>(
                apps::payload_byte(7, s.written / 4096, j));
          }
          buf.seg->data.write(buf.off, std::span(host).first(n));
          co_await ctx.write_exact(s.wfd, buf, n, 0);
          s.written += n;
          st.set(s);
          // Pace the producer (realistic flow; keeps tests mid-run at
          // checkpoint time).
          co_await ctx.sleep(500 * timeconst::kMicrosecond);
        }
        if (!s.closed) {
          co_await ctx.close(s.wfd);
          s.closed = 1;
          st.set(s);
        }
        ctx.phase() = 3;
        break;
      }
      case 3: {
        co_await ctx.waitpid(s.child);
        ctx.phase() = 4;
        break;
      }
      case 4:
        co_return 0;
    }
  }
}

// pipe_chain_child <rfd> <nbytes> <result-name>
struct PipeChildState {
  u64 got = 0;
  u32 crc = 0;
  u8 pad_[4] = {};  // explicit: stored state must have no padding bits
};

Task<int> pipe_chain_child_main(sim::ProcessCtx& ctx) {
  const Fd rfd = static_cast<Fd>(argi(ctx, 0, kNoFd));
  const u64 nbytes = static_cast<u64>(argi(ctx, 1, 0));
  const std::string result = args(ctx, 2, "pipe_chain");

  StateView<PipeChildState> st(ctx);
  PipeChildState s = st.get();
  std::vector<std::byte> host(4096);
  while (ctx.phase() == 0) {
    if (s.got >= nbytes) {
      ctx.phase() = 1;
      break;
    }
    const i64 n = co_await ctx.read(rfd, host);
    DSIM_CHECK_MSG(n > 0, "pipe closed early");
    s.crc = crc32_update(s.crc,
                         std::span<const std::byte>(host).first(
                             static_cast<u64>(n)));
    s.got += static_cast<u64>(n);
    st.set(s);
  }
  if (ctx.phase() == 1) {
    char out[64];
    std::snprintf(out, sizeof out, "crc=%08x bytes=%llu", s.crc,
                  static_cast<unsigned long long>(s.got));
    co_await apps::write_result(ctx, result + ".child", out);
    ctx.phase() = 2;
  }
  co_return 0;
}

// ---------------------------------------------------------------------------
// shm_pair <path> <rounds> <result-name>  — parent maps shared memory,
// spawns a child mapping the same file; they alternate increments through a
// socketpair ping-pong. Exercises §4.5 shared-memory checkpoint rules.
// ---------------------------------------------------------------------------

struct ShmState {
  i32 sync_fd = kNoFd;
  i32 child = kNoPid;
  u64 i = 0;
  u8 spawned = 0;
  u8 stage = 0;  // 0 increment, 1 token sent, 2 awaiting reply
  u8 pad_[6] = {};  // explicit: stored state must have no padding bits
};

Task<int> shm_pair_main(sim::ProcessCtx& ctx) {
  const std::string path = args(ctx, 0, "/shared/shm/counters");
  const u64 rounds = static_cast<u64>(argi(ctx, 1, 16));
  const std::string result = args(ctx, 2, "shm_pair");

  StateView<ShmState> st(ctx);
  ShmState s = st.get();
  if (!ctx.seg("shm:" + path)) ctx.mmap_shared(path, 4096);
  sim::MemSegment* shm_seg = ctx.seg("shm:" + path);
  DSIM_CHECK(shm_seg != nullptr);
  MemRef counter{shm_seg, 0};
  MemRef token = buffer(ctx, "tok", 8);

  while (true) {
    switch (ctx.phase()) {
      case 0: {
        auto [a, b] = co_await ctx.socketpair();
        s.sync_fd = a;
        std::vector<std::string> cargv{path, std::to_string(b),
                                       std::to_string(rounds), result};
        const Pid child =
            co_await ctx.spawn("shm_pair_child", std::move(cargv));
        s.child = child;
        s.spawned = 1;
        st.set(s);
        // Close our copy of the child's end.
        co_await ctx.close(b);
        ctx.phase() = 1;
        break;
      }
      case 1: {
        while (s.i < rounds) {
          if (s.stage == 0) {
            // Parent increments, then passes the token (no awaits between
            // the increment and the stage transition).
            const u64 v = ctx.load<u64>(counter);
            ctx.store<u64>(counter, v + 1);
            ctx.store<u64>(token, s.i);
            s.stage = 1;
            st.set(s);
          }
          if (s.stage == 1) {
            co_await ctx.write_exact(s.sync_fd, token, 8, 0);
            s.stage = 2;
            st.set(s);
          }
          co_await ctx.read_exact(s.sync_fd, token, 8, 1);
          s.stage = 0;
          s.i++;
          st.set(s);
          co_await ctx.sleep(700 * timeconst::kMicrosecond);
        }
        ctx.phase() = 2;
        break;
      }
      case 2: {
        co_await ctx.waitpid(s.child);
        const u64 v = ctx.load<u64>(counter);
        char out[64];
        std::snprintf(out, sizeof out, "counter=%llu",
                      static_cast<unsigned long long>(v));
        co_await apps::write_result(ctx, result, out);
        ctx.phase() = 3;
        break;
      }
      case 3:
        co_return 0;
    }
  }
}

// shm_pair_child <path> <sync-fd> <rounds> <result-name>
struct ShmChildState {
  u64 i = 0;
  u8 stage = 0;  // 0 awaiting token, 1 incremented (replying)
  u8 pad_[7] = {};  // explicit: stored state must have no padding bits
};

Task<int> shm_pair_child_main(sim::ProcessCtx& ctx) {
  const std::string path = args(ctx, 0, "/shared/shm/counters");
  const Fd sync_fd = static_cast<Fd>(argi(ctx, 1, kNoFd));
  const u64 rounds = static_cast<u64>(argi(ctx, 2, 16));

  if (!ctx.seg("shm:" + path)) ctx.mmap_shared(path, 4096);
  sim::MemSegment* shm_seg = ctx.seg("shm:" + path);
  MemRef counter{shm_seg, 0};
  MemRef token = buffer(ctx, "tok", 8);
  StateView<ShmChildState> st(ctx);
  ShmChildState s = st.get();

  while (s.i < rounds) {
    if (s.stage == 0) {
      co_await ctx.read_exact(sync_fd, token, 8, 0);
      const u64 v = ctx.load<u64>(counter);
      ctx.store<u64>(counter, v + 1);
      s.stage = 1;
      st.set(s);
    }
    co_await ctx.write_exact(sync_fd, token, 8, 1);
    s.stage = 0;
    s.i++;
    st.set(s);
  }
  co_return 0;
}

// ---------------------------------------------------------------------------
// pty_shell <rounds> <result-name> — pty master/slave with termios changes;
// the child (same process, worker thread) uppercases what the master sends.
// ---------------------------------------------------------------------------

struct PtyState {
  i32 master = kNoFd;
  i32 slave = kNoFd;
  u64 i = 0;
  u32 crc = 0;
  u8 stage = 0;  // 0 sending, 1 reading the transformed echo
  u8 worker_started = 0;
  u8 pad_[2] = {};  // explicit: stored state must have no padding bits
};

Task<int> pty_shell_main(sim::ProcessCtx& ctx) {
  const u64 rounds = static_cast<u64>(argi(ctx, 0, 8));
  const std::string result = args(ctx, 1, "pty_shell");

  StateView<PtyState> st(ctx);
  MemRef line = buffer(ctx, "line", 64);
  std::vector<std::byte> host(64);
  PtyState s = st.get();

  while (true) {
    switch (ctx.phase()) {
      case 0: {
        auto [m, sl] = co_await ctx.openpty();
        s.master = m;
        s.slave = sl;
        ctx.set_ctty(0);
        sim::Termios tio = ctx.tcgetattr(sl);
        tio.echo = false;
        tio.icanon = false;
        ctx.tcsetattr(sl, tio);
        st.set(s);
        if (!s.worker_started) {
          ctx.spawn_thread(/*role=*/1);
          s.worker_started = 1;
          st.set(s);
        }
        ctx.phase() = 1;
        break;
      }
      case 1: {
        while (s.i < rounds) {
          if (s.stage == 0) {
            for (u64 j = 0; j < 64; ++j) {
              host[j] = static_cast<std::byte>('a' + ((s.i + j) % 26));
            }
            line.seg->data.write(line.off, host);
            co_await ctx.write_exact(s.master, line, 64, 0);
            s.stage = 1;
            st.set(s);
          }
          co_await ctx.read_exact(s.master, line, 64, 1);
          line.seg->data.read(line.off, host);
          for (u64 j = 0; j < 64; ++j) {
            DSIM_CHECK_MSG(static_cast<char>(host[j]) ==
                               static_cast<char>('A' + ((s.i + j) % 26)),
                           "pty transform mismatch");
          }
          s.crc = crc32_update(s.crc, host);
          s.stage = 0;
          s.i++;
          st.set(s);
          co_await ctx.sleep(800 * timeconst::kMicrosecond);
        }
        ctx.phase() = 2;
        break;
      }
      case 2: {
        const sim::Termios tio = ctx.tcgetattr(s.slave);
        char out[96];
        std::snprintf(out, sizeof out, "crc=%08x echo=%d icanon=%d", s.crc,
                      tio.echo ? 1 : 0, tio.icanon ? 1 : 0);
        co_await apps::write_result(ctx, result, out);
        ctx.phase() = 3;
        break;
      }
      case 3:
        co_return 0;
    }
  }
}

// pty worker thread: reads from the slave, uppercases, writes back. The
// thread's own phase distinguishes "reading" from "replying"; the transform
// itself is idempotent, so re-driving it after a restart is safe.
Task<void> pty_shell_worker(sim::ProcessCtx& ctx, u32 role) {
  (void)role;
  StateView<PtyState> st(ctx);
  MemRef wline = buffer(ctx, "wline", 64);
  std::vector<std::byte> host(64);
  while (true) {
    const PtyState s = st.get();
    if (s.slave == kNoFd) {
      co_await ctx.sleep(1 * timeconst::kMillisecond);
      continue;
    }
    if (ctx.phase() == 0) {
      co_await ctx.read_exact(s.slave, wline, 64, 0);
      wline.seg->data.read(wline.off, host);
      for (auto& b : host) {
        const char c = static_cast<char>(b);
        if (c >= 'a' && c <= 'z') b = static_cast<std::byte>(c - 'a' + 'A');
      }
      wline.seg->data.write(wline.off, host);
      ctx.phase() = 1;
    }
    co_await ctx.write_exact(s.slave, wline, 64, 1);
    ctx.phase() = 0;
  }
}

// ---------------------------------------------------------------------------
// spawn_tree <children> <iters> <result-name> — parent spawns compute
// children and sums their (deterministic) exit codes. Exercises wait(),
// fd-less children, and pid virtualization.
// ---------------------------------------------------------------------------

struct TreeState {
  i32 kids[8] = {};
  i32 nspawned = 0;
  i32 nwaited = 0;
  u64 sum = 0;
};

Task<int> spawn_tree_main(sim::ProcessCtx& ctx) {
  const int children = static_cast<int>(argi(ctx, 0, 4));
  const u64 iters = static_cast<u64>(argi(ctx, 1, 20));
  const std::string result = args(ctx, 2, "spawn_tree");
  DSIM_CHECK(children <= 8);

  StateView<TreeState> st(ctx);
  TreeState s = st.get();
  while (s.nspawned < children) {
    std::vector<std::string> cargv{std::to_string(s.nspawned),
                                   std::to_string(iters)};
    const Pid child = co_await ctx.spawn("spawn_tree_child", std::move(cargv));
    s.kids[s.nspawned] = child;
    s.nspawned++;
    st.set(s);
  }
  while (s.nwaited < children) {
    const int code = co_await ctx.waitpid(s.kids[s.nwaited]);
    s.sum += static_cast<u64>(code);
    s.nwaited++;
    st.set(s);
  }
  if (ctx.phase() == 0) {
    char out[96];
    std::snprintf(out, sizeof out, "sum=%llu",
                  static_cast<unsigned long long>(s.sum));
    co_await apps::write_result(ctx, result, out);
    // The virtual pid is reported separately: it must be stable across
    // restarts but legitimately differs from a no-DMTCP baseline run.
    char vp[32];
    std::snprintf(vp, sizeof vp, "vpid=%d", ctx.getpid());
    co_await apps::write_result(ctx, result + ".vpid", vp);
    ctx.phase() = 1;
  }
  co_return 0;
}

Task<int> spawn_tree_child_main(sim::ProcessCtx& ctx) {
  const u64 id = static_cast<u64>(argi(ctx, 0, 0));
  const u64 iters = static_cast<u64>(argi(ctx, 1, 20));
  StateView<ComputeState> st(ctx);
  ComputeState s = st.get();
  while (s.i < iters) {
    co_await ctx.cpu_chunked(200e-6, 0);
    s.i++;
    st.set(s);
  }
  co_return static_cast<int>((id * 7 + 3) % 64);
}

}  // namespace

void register_test_programs(sim::Kernel& k) {
  auto add = [&](const char* name, auto main_fn) {
    sim::Program p;
    p.name = name;
    p.main = main_fn;
    k.programs().add(std::move(p));
  };
  add(kPingServer, pp_server_main);
  add(kPingClient, pp_client_main);
  add(kComputeLoop, compute_loop_main);
  add(kPipeChain, pipe_chain_main);
  add("pipe_chain_child", pipe_chain_child_main);
  add(kShmPair, shm_pair_main);
  add("shm_pair_child", shm_pair_child_main);
  add(kSpawnTree, spawn_tree_main);
  add("spawn_tree_child", spawn_tree_child_main);
  {
    sim::Program p;
    p.name = kPtyShell;
    p.main = pty_shell_main;
    p.worker = pty_shell_worker;
    k.programs().add(std::move(p));
  }
}

std::string read_result(sim::Kernel& k, const std::string& name) {
  auto inode = k.shared_fs().lookup("/shared/results/" + name);
  if (!inode) return "";
  auto bytes = inode->data.materialize(0, inode->data.size());
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

}  // namespace dsim::test
