// Reed-Solomon erasure striping for the chunk store: codec identity over
// every survivable loss combination, fragment placement and degraded read
// plans, in-place scrub repair of rotten fragments, fragment rebuild after
// node death, cold-tier demotion, and restart through degraded reads.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <span>
#include <vector>

#include "ckptstore/erasure.h"
#include "ckptstore/placement.h"
#include "ckptstore/service.h"
#include "core/launch.h"
#include "sim/cluster.h"
#include "sim/model_params.h"
#include "tests/testprogs.h"
#include "tests/testutil.h"

namespace dsim::test {
namespace {

using ckptstore::ChunkKey;
using ckptstore::ChunkPlacement;
using ckptstore::ChunkStoreService;
using core::DmtcpControl;
using core::DmtcpOptions;
using sim::ExtentKind;

namespace erasure = ckptstore::erasure;

ChunkKey key_of(u64 n) {
  ChunkKey k;
  k.hi = n * 0x9E3779B97F4A7C15ull + 7;
  k.lo = n;
  return k;
}

// --- codec -------------------------------------------------------------------

TEST(ErasureCodec, RoundTripsAcrossProfilesAndLengths) {
  // Identity through encode -> all-fragments reconstruct, including lengths
  // that do not divide by k (the last data fragment is zero-padded).
  const std::vector<std::pair<int, int>> profiles{{2, 1}, {4, 2}, {6, 3},
                                                  {10, 4}};
  const std::vector<u64> lengths{1, 255, 4096, 64 * 1024 + 13};
  for (const auto& [k, m] : profiles) {
    for (u64 len : lengths) {
      const auto data = pseudo_bytes(len, len * 31 + static_cast<u64>(k));
      const auto frags = erasure::encode(data, k, m);
      ASSERT_EQ(frags.size(), static_cast<size_t>(k + m));
      for (const auto& f : frags) {
        EXPECT_EQ(f.size(), erasure::fragment_bytes(len, k));
      }
      std::vector<std::pair<int, std::vector<std::byte>>> all;
      for (int i = 0; i < k + m; ++i) all.emplace_back(i, frags[static_cast<size_t>(i)]);
      EXPECT_EQ(erasure::reconstruct(all, k, m, len), data)
          << "(" << k << "," << m << ") len " << len;
    }
  }
}

TEST(ErasureCodec, EveryKSubsetReconstructsAtFourTwo) {
  // (4,2): all C(6,4) = 15 four-fragment subsets decode to the original —
  // which covers every single-fragment-loss and every two-fragment-loss
  // combination the store is sold as surviving.
  const int k = 4, m = 2;
  const u64 len = 32 * 1024 + 5;
  const auto data = pseudo_bytes(len, 0xE7A5);
  const auto frags = erasure::encode(data, k, m);
  int subsets = 0;
  for (int a = 0; a < k + m; ++a) {
    for (int b = a + 1; b < k + m; ++b) {
      for (int c = b + 1; c < k + m; ++c) {
        for (int d = c + 1; d < k + m; ++d) {
          std::vector<std::pair<int, std::vector<std::byte>>> pick;
          for (int i : {a, b, c, d}) {
            pick.emplace_back(i, frags[static_cast<size_t>(i)]);
          }
          ASSERT_EQ(erasure::reconstruct(pick, k, m, len), data)
              << "survivors {" << a << "," << b << "," << c << "," << d
              << "}";
          ++subsets;
        }
      }
    }
  }
  EXPECT_EQ(subsets, 15);
}

TEST(ErasureCodec, MoreThanMLossesAreUnrecoverable) {
  const int k = 4, m = 2;
  const auto data = pseudo_bytes(8192, 0xDEAD);
  const auto frags = erasure::encode(data, k, m);
  // Three losses leave three fragments: below k, reconstruct refuses.
  std::vector<std::pair<int, std::vector<std::byte>>> three{
      {0, frags[0]}, {2, frags[2]}, {5, frags[5]}};
  EXPECT_TRUE(erasure::reconstruct(three, k, m, 8192).empty());
  EXPECT_TRUE(erasure::reconstruct({}, k, m, 8192).empty());
}

TEST(ErasureCodec, CostModelPricesParityAndDecodePasses) {
  // Encode charges the parity output (m/k of the input), decode one full
  // pass, both at kErasureBw; healthy systematic reads are free.
  EXPECT_DOUBLE_EQ(erasure::encode_seconds(4'000'000, 4, 2),
                   4'000'000.0 * 2 / 4 / sim::params::kErasureBw);
  EXPECT_DOUBLE_EQ(erasure::decode_seconds(4'000'000),
                   4'000'000.0 / sim::params::kErasureBw);
}

// --- placement ---------------------------------------------------------------

TEST(ErasurePlacement, FragmentsLandOnDistinctNodesWithFragmentCharges) {
  ChunkPlacement pl(8, 1);
  pl.enable_erasure(4, 2);
  for (u64 i = 0; i < 100; ++i) {
    const auto homes = pl.record_store(key_of(i), 4096);
    ASSERT_EQ(homes.size(), 6u);
    EXPECT_EQ(std::set<NodeId>(homes.begin(), homes.end()).size(), 6u);
    const auto info = pl.erasure_info(key_of(i));
    EXPECT_EQ(info.k, 4);
    EXPECT_EQ(info.m, 2);
    EXPECT_EQ(info.frag_bytes, erasure::fragment_bytes(4096, 4));
    EXPECT_EQ(pl.home_charge(key_of(i)), info.frag_bytes);
  }
  // Stored footprint is (k+m)/k x logical: 1.5x at (4,2) — cheaper than
  // the 2.0x an R=2 replication placement charges for the same chunks.
  const auto per_node = pl.bytes_per_node();
  u64 erasure_total = 0;
  for (u64 b : per_node) erasure_total += b;
  EXPECT_EQ(erasure_total, 100u * 6 * erasure::fragment_bytes(4096, 4));
  ChunkPlacement repl(8, 2);
  for (u64 i = 0; i < 100; ++i) repl.record_store(key_of(i), 4096);
  u64 repl_total = 0;
  for (u64 b : repl.bytes_per_node()) repl_total += b;
  EXPECT_LT(static_cast<double>(erasure_total),
            0.8 * static_cast<double>(repl_total));
}

TEST(ErasurePlacement, ReadPlanIsSystematicUntilFragmentsDie) {
  ChunkPlacement pl(8, 1);
  pl.enable_erasure(4, 2);
  const ChunkKey key = key_of(42);
  const auto homes = pl.record_store(key, 4096);
  ASSERT_EQ(homes.size(), 6u);

  bool needs_decode = true;
  auto plan = pl.read_plan(key, &needs_decode);
  ASSERT_EQ(plan.size(), 4u);
  EXPECT_FALSE(needs_decode);  // healthy: the k data fragments concatenate
  for (size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan[i].node, homes[i]);
    EXPECT_EQ(plan[i].bytes, erasure::fragment_bytes(4096, 4));
  }

  // One data fragment dies: the plan substitutes a parity fragment and the
  // caller must pay decode CPU. Still no loss.
  pl.fail_node(homes[1]);
  plan = pl.read_plan(key, &needs_decode);
  ASSERT_EQ(plan.size(), 4u);
  EXPECT_TRUE(needs_decode);
  for (const auto& src : plan) {
    EXPECT_NE(src.node, homes[1]);
    EXPECT_TRUE(pl.node_alive(src.node));
  }
  EXPECT_EQ(pl.lost_chunks(), 0u);
  EXPECT_TRUE(pl.available(key));

  // A *parity* loss alone never forces a decode: data fragments intact.
  pl.revive_node(homes[1]);
  pl.fail_node(homes[5]);
  plan = pl.read_plan(key, &needs_decode);
  ASSERT_EQ(plan.size(), 4u);
  EXPECT_FALSE(needs_decode);

  // Beyond m losses the chunk is gone: empty plan, counted lost.
  pl.fail_node(homes[0]);
  pl.fail_node(homes[1]);
  EXPECT_TRUE(pl.read_plan(key, &needs_decode).empty());
  EXPECT_FALSE(pl.available(key));
  EXPECT_TRUE(pl.lost(key));
  EXPECT_EQ(pl.lost_chunks(), 1u);
}

TEST(ErasurePlacement, HealPinsSurvivorsAndReassignsOnlyDeadSlots) {
  ChunkPlacement pl(8, 1);
  pl.enable_erasure(4, 2);
  const ChunkKey key = key_of(7);
  const auto before = pl.record_store(key, 8192);
  ASSERT_EQ(before.size(), 6u);

  pl.fail_node(before[2]);
  ASSERT_TRUE(pl.degraded(key));
  const auto fresh = pl.heal(key);
  ASSERT_EQ(fresh.size(), 1u);  // exactly the dead slot is rebuilt
  EXPECT_NE(fresh[0], before[2]);
  const auto after = pl.homes_of(key);
  ASSERT_EQ(after.size(), 6u);
  for (size_t i = 0; i < 6; ++i) {
    if (i == 2) {
      EXPECT_EQ(after[i], fresh[0]);
    } else {
      EXPECT_EQ(after[i], before[i]) << "surviving slot " << i << " moved";
    }
  }
  EXPECT_FALSE(pl.degraded(key));
  // Full strength again: two *more* losses are survivable.
  pl.fail_node(after[0]);
  pl.fail_node(after[4]);
  EXPECT_EQ(pl.lost_chunks(), 0u);
}

TEST(ErasurePlacement, CorruptFragmentsRepairInPlace) {
  ChunkPlacement pl(8, 1);
  pl.enable_erasure(4, 2);
  const ChunkKey key = key_of(3);
  const auto homes = pl.record_store(key, 4096);
  ASSERT_EQ(homes.size(), 6u);

  EXPECT_FALSE(pl.corrupt_fragment(key_of(999), 0));  // unknown key
  EXPECT_FALSE(pl.corrupt_fragment(key, 6));          // index out of range
  ASSERT_TRUE(pl.corrupt_fragment(key, 1));
  ASSERT_TRUE(pl.corrupt_fragment(key, 4));
  EXPECT_EQ(pl.corrupt_mask(key), (1u << 1) | (1u << 4));
  EXPECT_TRUE(pl.available(key));  // 4 clean fragments still reconstruct
  bool needs_decode = false;
  const auto plan = pl.read_plan(key, &needs_decode);
  ASSERT_EQ(plan.size(), 4u);
  EXPECT_TRUE(needs_decode);
  for (const auto& src : plan) EXPECT_NE(src.node, homes[1]);

  const auto rewritten = pl.repair_fragments(key);
  EXPECT_EQ(rewritten.size(), 2u);
  EXPECT_EQ(pl.corrupt_mask(key), 0u);
  EXPECT_FALSE(pl.degraded(key));

  // Three rotten fragments exceed m: beyond repair, quarantine territory.
  ASSERT_TRUE(pl.corrupt_fragment(key, 0));
  ASSERT_TRUE(pl.corrupt_fragment(key, 2));
  ASSERT_TRUE(pl.corrupt_fragment(key, 5));
  EXPECT_TRUE(pl.repair_fragments(key).empty());
  EXPECT_TRUE(pl.lost(key));
}

// --- end to end through the DMTCP stack -------------------------------------

struct World {
  sim::Cluster cluster;
  DmtcpControl ctl;
  World(int nodes, DmtcpOptions opts, u64 seed = 0x5eed)
      : cluster([&] {
          auto cfg = sim::Cluster::lab_cluster(nodes);
          cfg.seed = seed;
          return cfg;
        }()),
        ctl(cluster.kernel(), opts) {
    register_test_programs(cluster.kernel());
  }
  sim::Kernel& k() { return cluster.kernel(); }
  bool run_until_results(std::initializer_list<const char*> names,
                         SimTime deadline = 300 * timeconst::kSecond) {
    return ctl.run_until(
        [&] {
          for (const char* n : names) {
            if (read_result(k(), n).empty()) return false;
          }
          return true;
        },
        k().loop().now() + deadline);
  }
};

DmtcpOptions erasure_opts(int k = 4, int m = 2) {
  DmtcpOptions o;
  o.incremental = true;
  o.codec = compress::CodecKind::kNone;  // exact byte accounting
  o.chunking = ckptstore::ChunkingMode::kCdc;
  o.cdc_min_bytes = 2 * 1024;
  o.cdc_avg_bytes = 8 * 1024;
  o.cdc_max_bytes = 32 * 1024;
  o.dedup_scope = core::DedupScope::kCluster;
  o.erasure_k = k;
  o.erasure_m = m;
  return o;
}

void add_ballast(World& w, Pid pid, u64 bytes, u64 seed) {
  sim::Process* p = w.k().find_process(pid);
  ASSERT_NE(p, nullptr);
  auto& seg = p->mem().add("ballast", sim::MemKind::kHeap, bytes);
  seg.data.fill(0, bytes, ExtentKind::kRand, seed);
}

TEST(ErasureE2E, RestartSurvivesMNodeLossesViaDegradedReads) {
  World w(8, erasure_opts(4, 2));
  const Pid pa = w.ctl.launch(0, kComputeLoop, {"1000000", "200", "a"});
  const Pid pb = w.ctl.launch(1, kComputeLoop, {"1000000", "200", "b"});
  w.ctl.run_for(20 * timeconst::kMillisecond);
  add_ballast(w, pa, 1024 * 1024, 0xAA);
  add_ballast(w, pb, 1024 * 1024, 0xBB);
  w.ctl.checkpoint_now();

  auto& svc = *w.ctl.shared().store_service;
  ASSERT_GT(svc.placement().placed_chunks(), 0u);
  // Two nodes die with their fragments and the heal daemon gets no window:
  // restart must reconstruct every touched chunk from k survivors.
  svc.fail_node(6);
  svc.fail_node(7);
  EXPECT_EQ(svc.placement().lost_chunks(), 0u);
  w.ctl.kill_computation();
  const auto& rr = w.ctl.restart();
  EXPECT_FALSE(rr.needs_restore);
  EXPECT_EQ(rr.lost_chunks, 0u);
  EXPECT_EQ(rr.procs, 2);
  ASSERT_TRUE(w.run_until_results({"a", "b"}));
}

TEST(ErasureE2E, BeyondMLossesReportLostChunksBeforeRestart) {
  World w(8, erasure_opts(4, 2));
  const Pid pa = w.ctl.launch(0, kComputeLoop, {"1000000", "200", "a"});
  w.ctl.run_for(20 * timeconst::kMillisecond);
  add_ballast(w, pa, 2 * 1024 * 1024, 0xCC);
  w.ctl.checkpoint_now();

  auto& svc = *w.ctl.shared().store_service;
  // Three simultaneous node losses exceed m=2 for every chunk with three
  // fragment homes among the dead — no heal can rebuild those. The
  // pre-flight must refuse the restart and count them.
  svc.fail_node(5);
  svc.fail_node(6);
  svc.fail_node(7);
  ASSERT_GT(svc.placement().lost_chunks(), 0u);
  w.ctl.kill_computation();
  const auto& rr = w.ctl.restart();
  EXPECT_TRUE(rr.needs_restore);
  EXPECT_GT(rr.lost_chunks, 0u);
  EXPECT_EQ(rr.lost_chunks, svc.placement().lost_chunks());
}

TEST(ErasureE2E, HealRebuildsDeadFragmentsFromSurvivors) {
  World w(8, erasure_opts(4, 2));
  const Pid pa = w.ctl.launch(0, kComputeLoop, {"1000000", "200", "a"});
  const Pid pb = w.ctl.launch(1, kComputeLoop, {"1000000", "200", "b"});
  w.ctl.run_for(20 * timeconst::kMillisecond);
  add_ballast(w, pa, 1024 * 1024, 0xAA);
  add_ballast(w, pb, 1024 * 1024, 0xBB);
  w.ctl.checkpoint_now();

  auto& svc = *w.ctl.shared().store_service;
  ASSERT_EQ(svc.placement().degraded_count(), 0u);
  svc.fail_node(7);
  ASSERT_GT(svc.placement().degraded_count(), 0u);

  // Detection + rebuild drain in the background, as in the replication
  // heal test — but here the daemon moves fragments, not full copies.
  w.ctl.run_for(150 * timeconst::kMillisecond);
  const auto& round = w.ctl.checkpoint_now();
  EXPECT_EQ(svc.placement().degraded_count(), 0u);
  EXPECT_GT(svc.stats().rebuilt_fragments, 0u);
  EXPECT_GT(svc.stats().heal_moved_bytes, 0u);
  EXPECT_GT(round.rebuilt_fragments, 0u);
  // A single node death costs each degraded chunk exactly one fragment, so
  // the accounting is exact: one rebuilt fragment per healed chunk, and
  // moved bytes = frag x (2k + 2F - 1) = 9 x the rebuilt fragment bytes —
  // well under the 3 x full-chunk bytes an R=2 replication heal ships.
  EXPECT_EQ(svc.stats().rebuilt_fragments, svc.stats().rereplicated_chunks);
  EXPECT_EQ(svc.stats().heal_moved_bytes,
            9 * svc.stats().rereplicated_bytes);
  // Full strength restored: two further losses are survivable again.
  svc.fail_node(5);
  svc.fail_node(6);
  EXPECT_EQ(svc.placement().lost_chunks(), 0u);
}

TEST(ErasureE2E, ScrubRepairsRottenFragmentInPlace) {
  auto opts = erasure_opts(4, 2);
  opts.scrub_chunks = 1u << 20;  // scrub the whole store every round
  World w(8, opts);
  const Pid pa = w.ctl.launch(0, kComputeLoop, {"1000000", "400", "a"});
  w.ctl.run_for(20 * timeconst::kMillisecond);
  add_ballast(w, pa, 1024 * 1024, 0xDD);
  w.ctl.checkpoint_now();

  auto& svc = *w.ctl.shared().store_service;
  // Rot one fragment of a placed chunk. The next scrub pass must rebuild
  // it in place from the five clean fragments — repaired, not
  // quarantined, and the chunk never stops being readable.
  ChunkKey victim{};
  for (const auto& [key, chunk] : svc.repo().chunks_after(ChunkKey{}, 4096)) {
    if (svc.placement().erasure_info(key).k > 0) {
      victim = key;
      break;
    }
  }
  ASSERT_TRUE(svc.corrupt_fragment(victim, 2));
  EXPECT_EQ(svc.placement().corrupt_mask(victim), 1u << 2);
  EXPECT_TRUE(svc.placement().available(victim));

  const u64 repaired_before = svc.stats().scrub_repaired_fragments;
  svc.scrub(1u << 20, compress::CodecKind::kNone);
  w.ctl.run_for(200 * timeconst::kMillisecond);
  EXPECT_EQ(svc.stats().scrub_repaired_fragments, repaired_before + 1);
  EXPECT_EQ(svc.stats().scrub_quarantined_chunks, 0u);
  EXPECT_EQ(svc.placement().corrupt_mask(victim), 0u);
  EXPECT_TRUE(svc.placement().available(victim));
}

TEST(ErasureE2E, ColdDemotionRestripesOldGenerationsWider) {
  auto opts = erasure_opts(4, 2);
  opts.cold_erasure_k = 6;
  opts.cold_erasure_m = 2;
  opts.hot_generations = 1;
  World w(8, opts);
  const Pid pa = w.ctl.launch(0, kComputeLoop, {"1000000", "200", "a"});
  w.ctl.run_for(20 * timeconst::kMillisecond);
  add_ballast(w, pa, 1024 * 1024, 0x11);
  w.ctl.checkpoint_now();

  // Rewrite half the ballast: generation 1 re-chunks it under new keys,
  // which strands the old half's chunks outside the hot window
  // (hot-generations=1) while --keep-generations=2 keeps them resident.
  sim::Process* p = w.k().find_process(pa);
  ASSERT_NE(p, nullptr);
  p->mem().find("ballast")->data.fill(0, 512 * 1024, ExtentKind::kRand, 0x22);
  w.ctl.checkpoint_now();

  // The demotion daemon kicked at that round's close re-stripes the cold
  // chunks to (6,2) in the background.
  w.ctl.run_for(200 * timeconst::kMillisecond);
  auto& svc = *w.ctl.shared().store_service;
  ASSERT_GT(svc.stats().demoted_chunks, 0u);
  EXPECT_GT(svc.stats().demoted_bytes, 0u);
  u64 cold_entries = 0;
  for (const auto& [key, chunk] : svc.repo().chunks_after(ChunkKey{}, 4096)) {
    if (svc.placement().erasure_info(key).k == 6) ++cold_entries;
  }
  EXPECT_GT(cold_entries, 0u);

  // The demotion surfaces in the next round's delta, and a cold store
  // still restarts: any 6 of a cold chunk's 8 fragments reconstruct.
  const auto& round = w.ctl.checkpoint_now();
  EXPECT_GT(round.demoted_chunks, 0u);
  svc.fail_node(6);
  svc.fail_node(7);
  EXPECT_EQ(svc.placement().lost_chunks(), 0u);
  w.ctl.kill_computation();
  const auto& rr = w.ctl.restart();
  EXPECT_FALSE(rr.needs_restore);
  EXPECT_EQ(rr.lost_chunks, 0u);
  ASSERT_TRUE(w.run_until_results({"a"}));
}

TEST(ErasureOptions, FlagsParseAndValidate) {
  DmtcpOptions o;
  std::vector<std::string> argv{"--incremental", "--dedup-scope", "cluster",
                                "--erasure",     "4,2",           "--cold-erasure",
                                "6,2",           "--hot-generations", "1"};
  EXPECT_EQ(o.apply_flags(argv), "");
  EXPECT_TRUE(argv.empty());
  EXPECT_EQ(o.erasure_k, 4);
  EXPECT_EQ(o.erasure_m, 2);
  EXPECT_EQ(o.cold_erasure_k, 6);
  EXPECT_EQ(o.cold_erasure_m, 2);
  EXPECT_EQ(o.hot_generations, 1);
  EXPECT_NE(o.validate_cluster(6), "");  // cold 6+2 does not fit 6 nodes
  EXPECT_EQ(o.validate_cluster(8), "");

  DmtcpOptions repl;
  std::vector<std::string> both{"--incremental",    "--dedup-scope", "cluster",
                                "--chunk-replicas", "2",             "--erasure",
                                "4,2"};
  EXPECT_NE(repl.apply_flags(both), "");  // mutually exclusive schemes

  DmtcpOptions bad;
  std::vector<std::string> narrow{"--incremental", "--dedup-scope", "cluster",
                                  "--erasure", "1,1"};
  EXPECT_NE(bad.apply_flags(narrow), "");  // k < 2

  DmtcpOptions orphan;
  std::vector<std::string> hot_only{"--incremental", "--dedup-scope",
                                    "cluster", "--hot-generations", "2"};
  EXPECT_NE(orphan.apply_flags(hot_only), "");  // no cold tier to demote to
}

}  // namespace
}  // namespace dsim::test
