// The remote chunk-store service: rendezvous placement and replication,
// queued dedup lookups contending across ranks, replica failover on node
// failure, the R=1 data-loss path, and FastCDC normalized chunking.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "ckptstore/cdc.h"
#include "ckptstore/placement.h"
#include "ckptstore/service.h"
#include "core/launch.h"
#include "mtcp/mtcp.h"
#include "sim/cluster.h"
#include "tests/testprogs.h"
#include "tests/testutil.h"
#include "util/rng.h"

namespace dsim::test {
namespace {

using ckptstore::ChunkKey;
using ckptstore::ChunkPlacement;
using ckptstore::ChunkStoreService;
using core::DmtcpControl;
using core::DmtcpOptions;
using sim::ByteImage;
using sim::ExtentKind;

ChunkKey key_of(u64 n) {
  ChunkKey k;
  k.hi = n * 0x9E3779B97F4A7C15ull + 7;
  k.lo = n;
  return k;
}

// pseudo_bytes / cdc_params come from tests/testutil.h.

// --- placement --------------------------------------------------------------

TEST(Placement, ReplicasAreDistinctAliveNodes) {
  ChunkPlacement pl(8, 3);
  for (u64 i = 0; i < 200; ++i) {
    const auto homes = pl.place(key_of(i));
    ASSERT_EQ(homes.size(), 3u);
    std::set<NodeId> uniq(homes.begin(), homes.end());
    EXPECT_EQ(uniq.size(), 3u);
    for (NodeId n : homes) EXPECT_TRUE(pl.node_alive(n));
  }
  // More replicas than nodes degrades gracefully to one copy per node.
  ChunkPlacement small(2, 5);
  EXPECT_EQ(small.place(key_of(1)).size(), 2u);
}

TEST(Placement, RendezvousSpreadsAndIsStableUnderFailure) {
  ChunkPlacement pl(4, 1);
  std::vector<int> per_node(4, 0);
  std::vector<std::vector<NodeId>> before;
  for (u64 i = 0; i < 400; ++i) {
    const auto homes = pl.place(key_of(i));
    per_node[static_cast<size_t>(homes[0])]++;
    before.push_back(homes);
  }
  // Roughly uniform: every node holds a real share (exactly 100 each would
  // be suspicious; none should be starved or hot by an order of magnitude).
  for (int n = 0; n < 4; ++n) {
    EXPECT_GT(per_node[static_cast<size_t>(n)], 40);
    EXPECT_LT(per_node[static_cast<size_t>(n)], 200);
  }
  // Rendezvous property: failing node 2 moves only node-2 chunks.
  pl.fail_node(2);
  for (u64 i = 0; i < 400; ++i) {
    const auto homes = pl.place(key_of(i));
    if (before[i][0] != 2) {
      EXPECT_EQ(homes[0], before[i][0]);
    } else {
      EXPECT_NE(homes[0], 2);
    }
  }
}

TEST(Placement, FailoverPrefersSurvivingHomesInOrder) {
  ChunkPlacement pl(6, 2);
  // Record every key with its homes, fail two nodes, and check each
  // holder: the best surviving home when one exists, kNoHolder when both
  // replicas died with their nodes.
  std::vector<std::pair<ChunkKey, std::vector<NodeId>>> recorded;
  for (u64 i = 0; i < 100; ++i) {
    const ChunkKey k = key_of(i);
    recorded.emplace_back(k, pl.record_store(k, 1000));
    ASSERT_EQ(recorded.back().second.size(), 2u);
  }
  EXPECT_EQ(pl.lost_chunks(), 0u);

  pl.fail_node(0);
  pl.fail_node(1);
  u64 expected_lost = 0;
  for (const auto& [k, homes] : recorded) {
    i32 expected = ChunkPlacement::kNoHolder;
    for (NodeId n : homes) {
      if (pl.node_alive(n)) {
        expected = n;  // best-first order is preserved on failover
        break;
      }
    }
    EXPECT_EQ(pl.holder(k), expected);
    if (expected < 0) ++expected_lost;
  }
  EXPECT_EQ(pl.lost_chunks(), expected_lost);
  // Re-recording an existing key is a dedup no-op (no new copies).
  EXPECT_TRUE(pl.record_store(recorded[0].first, 1000).empty());
}

TEST(Placement, ReplicaOneLosesChunksWithTheirNode) {
  ChunkPlacement pl(4, 1);
  u64 on_node1 = 0;
  for (u64 i = 0; i < 200; ++i) {
    const auto homes = pl.record_store(key_of(i), 500);
    ASSERT_EQ(homes.size(), 1u);
    if (homes[0] == 1) ++on_node1;
  }
  ASSERT_GT(on_node1, 0u);
  pl.fail_node(1);
  EXPECT_EQ(pl.lost_chunks(), on_node1);
  EXPECT_EQ(pl.lost_bytes(), on_node1 * 500);
  // Revival restores the node, and with it the bytes it physically held.
  pl.revive_node(1);
  EXPECT_EQ(pl.lost_chunks(), 0u);
}

TEST(Placement, ReplicaTwoSurvivesOneNodeFailure) {
  ChunkPlacement pl(4, 2);
  for (u64 i = 0; i < 200; ++i) pl.record_store(key_of(i), 500);
  pl.fail_node(2);
  EXPECT_EQ(pl.lost_chunks(), 0u);
  for (u64 i = 0; i < 200; ++i) {
    const i32 h = pl.holder(key_of(i));
    ASSERT_GE(h, 0);
    EXPECT_NE(h, 2);
  }
}

// --- service request queue ---------------------------------------------------

std::vector<ChunkKey> keys_range(u64 from, u64 to) {
  std::vector<ChunkKey> out;
  for (u64 i = from; i < to; ++i) out.push_back(key_of(i));
  return out;
}

// Every service op flows through the typed StoreRequest envelope; these
// wrap it so the queueing tests read as one-liners.
void submit_lookups(ChunkStoreService& svc, NodeId from,
                    std::vector<ChunkKey> keys, std::function<void()> done) {
  ckptstore::StoreRequest req;
  req.op = ckptstore::StoreOp::kLookup;
  req.from = from;
  req.keys = std::move(keys);
  req.done = std::move(done);
  svc.submit(std::move(req));
}

std::vector<ckptstore::StoreTarget> submit_store(
    ChunkStoreService& svc, NodeId from, const ChunkKey& key, u64 bytes,
    std::function<void()> done) {
  ckptstore::StoreRequest req;
  req.op = ckptstore::StoreOp::kStore;
  req.from = from;
  req.keys = {key};
  req.bytes = bytes;
  req.done = std::move(done);
  return svc.submit(std::move(req)).targets;
}

void submit_fetch(ChunkStoreService& svc, NodeId from, const ChunkKey& key,
                  u64 bytes, std::function<void()> done) {
  ckptstore::StoreRequest req;
  req.op = ckptstore::StoreOp::kFetch;
  req.from = from;
  req.keys = {key};
  req.bytes = bytes;
  req.done = std::move(done);
  svc.submit(std::move(req));
}

void submit_drop(ChunkStoreService& svc, NodeId from, const ChunkKey& key,
                 u64 bytes) {
  ckptstore::StoreRequest req;
  req.op = ckptstore::StoreOp::kDrop;
  req.from = from;
  req.keys = {key};
  req.bytes = bytes;
  svc.submit(std::move(req));
}

TEST(Service, LookupsAreServedFifoAndWaitsGrowWithQueueDepth) {
  sim::EventLoop loop;
  sim::Network net(loop, 4);
  ChunkStoreService svc(loop, net, 1);  // one shard, one queue
  // Two batches submitted back to back from one node: the NIC preserves
  // their order and the shard queue serves them FIFO, so batch B completes
  // after batch A and per-lookup waits grow with queue depth.
  SimTime done_a = 0, done_b = 0;
  submit_lookups(svc, 0, keys_range(0, 50), [&] { done_a = loop.now(); });
  submit_lookups(svc, 0, keys_range(50, 100), [&] { done_b = loop.now(); });
  loop.run();
  ASSERT_GT(done_a, 0);
  ASSERT_GT(done_b, 0);
  EXPECT_GT(done_b, done_a);  // FIFO: B queued behind A's 50 probes
  const auto& ss = svc.stats();
  EXPECT_EQ(ss.lookup_requests, 100u);
  EXPECT_EQ(ss.lookup_batches, 100u);  // default: one key per RPC
  EXPECT_GT(ss.avg_lookup_wait_seconds(), 0.0);
  // The last probe waited behind 99 others; its wait dominates the mean.
  EXPECT_GT(ss.lookup_wait.max(), 1.5 * ss.avg_lookup_wait_seconds());
}

TEST(Service, LookupsTraverseTheNetwork) {
  sim::EventLoop loop;
  sim::Network net(loop, 4);
  ChunkStoreService svc(loop, net, 1);
  svc.set_endpoints({2});
  bool done = false;
  submit_lookups(svc, 0, keys_range(0, 10), [&] { done = true; });
  loop.run();
  ASSERT_TRUE(done);
  // Requests left node 0's NIC, responses left the endpoint's, and both
  // hops accumulated in-flight time in the fabric stats.
  EXPECT_GT(net.egress(0).total_submitted_bytes(), 0u);
  EXPECT_GT(net.egress(2).total_submitted_bytes(), 0u);
  EXPECT_EQ(svc.fabric().stats().calls, 10u);
  EXPECT_GT(svc.fabric().stats().net_bytes, 0u);
  EXPECT_GT(svc.fabric().stats().net_wait_seconds, 0.0);
}

TEST(Service, BatchedLookupsAmortizeRpcsAndCompleteInSubmitOrder) {
  sim::EventLoop loop;
  sim::Network net(loop, 4);
  ChunkStoreService batched(loop, net, 1, /*shards=*/1, /*lookup_batch=*/8);
  std::vector<int> order;
  for (int wave = 0; wave < 5; ++wave) {
    submit_lookups(batched, 0, keys_range(100u * wave, 100u * wave + 24),
                           [&order, wave] { order.push_back(wave); });
  }
  loop.run();
  // Every stage of the path (caller NIC, message CPU, shard queue, return
  // NIC) is FIFO, so waves complete exactly in submit order.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(batched.stats().lookup_requests, 120u);
  EXPECT_EQ(batched.stats().lookup_batches, 15u);  // 24 keys -> 3 RPCs of 8
}

TEST(Service, StoreFetchDropAccountTheShardQueues) {
  sim::EventLoop loop;
  sim::Network net(loop, 4);
  ChunkStoreService svc(loop, net, 2);
  bool stored = false, fetched = false;
  const auto homes = submit_store(svc, 0, key_of(1), 64 * 1024,
                                      [&] { stored = true; });
  EXPECT_EQ(homes.size(), 2u);
  // Dedup hit: the same key stores no new copies but still queues.
  EXPECT_TRUE(submit_store(svc, 0, key_of(1), 64 * 1024, [] {}).empty());
  submit_fetch(svc, 0, key_of(1), 64 * 1024, [&] { fetched = true; });
  submit_drop(svc, 0, key_of(9), 32 * 1024);
  loop.run();
  EXPECT_TRUE(stored);
  EXPECT_TRUE(fetched);
  const auto& ss = svc.stats();
  EXPECT_EQ(ss.store_requests, 2u);
  EXPECT_EQ(ss.fetch_requests, 1u);
  EXPECT_EQ(ss.drop_requests, 1u);
  EXPECT_EQ(ss.fetch_bytes, 64u * 1024);
  EXPECT_EQ(svc.shard_device(svc.shard_of(key_of(9)))
                .total_discarded_bytes(),
            32u * 1024);
}

// --- sharding ----------------------------------------------------------------

TEST(Sharding, SameKeyAlwaysHitsTheSameShard) {
  sim::EventLoop loop_a, loop_b;
  sim::Network net_a(loop_a, 4), net_b(loop_b, 8);
  // Same shard count, different loops/clusters: routing is a pure function
  // of (key, shard count), so every key agrees across instances and runs.
  ChunkStoreService a(loop_a, net_a, 1, /*shards=*/4);
  ChunkStoreService b(loop_b, net_b, 2, /*shards=*/4);
  std::vector<int> population(4, 0);
  for (u64 i = 0; i < 512; ++i) {
    const int s = a.shard_of(key_of(i));
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 4);
    EXPECT_EQ(s, b.shard_of(key_of(i)));
    population[static_cast<size_t>(s)]++;
  }
  // Rendezvous spreads keys: no shard is starved or grossly hot.
  for (int s = 0; s < 4; ++s) {
    EXPECT_GT(population[static_cast<size_t>(s)], 512 / 16);
    EXPECT_LT(population[static_cast<size_t>(s)], 512 / 2);
  }
}

TEST(Sharding, MoreShardsCutPerLookupWaits) {
  const auto run = [](int shards) {
    sim::EventLoop loop;
    sim::Network net(loop, 4);
    ChunkStoreService svc(loop, net, 1, shards);
    submit_lookups(svc, 0, keys_range(0, 200), [] {});
    loop.run();
    return svc.stats().avg_lookup_wait_seconds();
  };
  const double one = run(1);
  const double four = run(4);
  ASSERT_GT(one, 0.0);
  ASSERT_GT(four, 0.0);
  // Four independent queues drain the same probe load with materially less
  // queueing than one — the knee moves right with the shard count.
  EXPECT_LT(four, 0.6 * one);
}

TEST(Sharding, JitteredRpcCompletionStillPreservesPerShardFifo) {
  sim::EventLoop loop;
  sim::Network net(loop, 4);
  Rng rng(0x7177E12);
  net.set_jitter(&rng, 0.25);  // heavy multiplicative transfer noise
  ChunkStoreService svc(loop, net, 1, /*shards=*/2, /*lookup_batch=*/4);
  // Route every wave at a single shard so the FIFO claim is per-shard, and
  // submit from one caller so the NIC hop is ordered too.
  std::vector<ChunkKey> shard0;
  for (u64 i = 0; shard0.size() < 60; ++i) {
    if (svc.shard_of(key_of(i)) == 0) shard0.push_back(key_of(i));
  }
  std::vector<int> order;
  for (int wave = 0; wave < 5; ++wave) {
    std::vector<ChunkKey> batch(shard0.begin() + 12 * wave,
                                shard0.begin() + 12 * (wave + 1));
    submit_lookups(svc, 1, batch, [&order, wave] { order.push_back(wave); });
  }
  loop.run();
  // Jitter stretches individual transfers but cannot reorder a FIFO chain:
  // waves from one caller to one shard complete in submit order.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

// --- re-replication ----------------------------------------------------------

TEST(Rereplication, DaemonRestoresReplicaStrengthAfterNodeFailure) {
  sim::EventLoop loop;
  sim::Network net(loop, 4);
  ChunkStoreService svc(loop, net, /*replicas=*/2, /*shards=*/2);
  for (u64 i = 0; i < 120; ++i) {
    submit_store(svc, 0, key_of(i), 16 * 1024, [] {});
  }
  loop.run();
  ASSERT_EQ(svc.placement().degraded_count(), 0u);

  const auto cluster_nic_bytes = [&] {
    u64 total = 0;
    for (NodeId n = 0; n < 4; ++n) {
      total += net.egress(n).total_submitted_bytes() +
               net.loopback(n).total_submitted_bytes();
    }
    return total;
  };
  const u64 nic_before = cluster_nic_bytes();
  svc.fail_node(1);
  ASSERT_GT(svc.placement().degraded_count(), 0u);
  loop.run();  // the daemon walks degraded chunks through the shard queues
  EXPECT_EQ(svc.placement().degraded_count(), 0u);
  EXPECT_TRUE(svc.rereplication_idle());
  EXPECT_GT(svc.stats().rereplicated_chunks, 0u);
  EXPECT_EQ(svc.stats().rereplicated_bytes,
            svc.stats().rereplicated_chunks * 16 * 1024);
  // The copies really moved: every healed chunk crossed a surviving
  // holder's NIC (or loopback) on its way to the fresh home.
  EXPECT_GE(cluster_nic_bytes() - nic_before,
            svc.stats().rereplicated_bytes);
  // The true test of strength: losing a *second* node now loses nothing,
  // which would be false for any chunk whose homes had been {1, dead}.
  svc.fail_node(2);
  EXPECT_EQ(svc.placement().lost_chunks(), 0u);
}

TEST(Rereplication, SingleReplicaStoresHaveNothingToHeal) {
  sim::EventLoop loop;
  sim::Network net(loop, 4);
  ChunkStoreService svc(loop, net, /*replicas=*/1);
  for (u64 i = 0; i < 50; ++i) {
    submit_store(svc, 0, key_of(i), 4 * 1024, [] {});
  }
  loop.run();
  svc.fail_node(1);
  loop.run();
  // R=1 losses are not degraded, they are gone: the daemon must not invent
  // copies (the encode path's forward-heal re-stores them from content).
  EXPECT_EQ(svc.stats().rereplicated_chunks, 0u);
}

// --- FastCDC -----------------------------------------------------------------

TEST(FastCdc, SpansRespectBoundsAndCoverTheImage) {
  ByteImage img(1024 * 1024);
  img.write(0, pseudo_bytes(1024 * 1024, 17));
  const auto p =
      cdc_params(2048, 8192, 32 * 1024, ckptstore::ChunkingMode::kFastCdc);
  const auto spans = ckptstore::scan_chunks_cdc(img, p);
  ASSERT_FALSE(spans.empty());
  u64 off = 0;
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].off, off);
    off += spans[i].len;
    EXPECT_LE(spans[i].len, p.max_bytes);
    if (i + 1 < spans.size()) EXPECT_GE(spans[i].len, p.min_bytes);
  }
  EXPECT_EQ(off, img.size());
}

TEST(FastCdc, NormalizationTightensTheSizeDistribution) {
  ByteImage img(2 * 1024 * 1024);
  img.write(0, pseudo_bytes(2 * 1024 * 1024, 23));
  const u64 avg = 8192;
  const auto plain =
      ckptstore::scan_chunks_cdc(img, cdc_params(1024, avg, 8 * avg));
  const auto fast = ckptstore::scan_chunks_cdc(
      img,
      cdc_params(1024, avg, 8 * avg, ckptstore::ChunkingMode::kFastCdc));
  auto near_avg_fraction = [&](const std::vector<ckptstore::ChunkSpan>& s) {
    u64 near = 0;
    for (const auto& span : s) {
      if (span.len >= avg / 2 && span.len <= 2 * avg) ++near;
    }
    return static_cast<double>(near) / static_cast<double>(s.size());
  };
  // The two-mask scheme squeezes spans toward the target: strictly more of
  // them land within a factor of two of avg than with the single mask.
  EXPECT_GT(near_avg_fraction(fast), near_avg_fraction(plain));
  EXPECT_GT(near_avg_fraction(fast), 0.7);
}

TEST(FastCdc, CutpointsResynchronizeAfterInsertion) {
  const u64 bytes = 1024 * 1024;
  const auto content = pseudo_bytes(bytes, 31);
  std::vector<std::byte> shifted;
  const auto wedge = pseudo_bytes(64, 0xF00D);
  shifted.insert(shifted.end(), content.begin(), content.begin() + 5000);
  shifted.insert(shifted.end(), wedge.begin(), wedge.end());
  shifted.insert(shifted.end(), content.begin() + 5000, content.end());

  ByteImage a(bytes), b(bytes + 64);
  a.write(0, content);
  b.write(0, shifted);
  const auto p =
      cdc_params(2048, 8192, 32 * 1024, ckptstore::ChunkingMode::kFastCdc);
  std::set<std::pair<u64, u64>> keys_a;  // (hi, lo) of each span's content
  for (const auto& s : ckptstore::scan_chunks_cdc(a, p)) {
    const auto k = ckptstore::span_key(a, s);
    keys_a.insert({k.hi, k.lo});
  }
  u64 shared_bytes = 0, total = 0;
  for (const auto& s : ckptstore::scan_chunks_cdc(b, p)) {
    const auto k = ckptstore::span_key(b, s);
    if (keys_a.count({k.hi, k.lo})) shared_bytes += s.len;
    total += s.len;
  }
  // Only the chunks around the insertion differ; everything downstream
  // re-keys identically once the two gear masks resynchronize.
  EXPECT_GT(static_cast<double>(shared_bytes) / static_cast<double>(total),
            0.9);
}

// --- end to end through the DMTCP stack -------------------------------------

struct World {
  sim::Cluster cluster;
  DmtcpControl ctl;
  World(int nodes, DmtcpOptions opts, u64 seed = 0x5eed)
      : cluster([&] {
          auto cfg = sim::Cluster::lab_cluster(nodes);
          cfg.seed = seed;
          return cfg;
        }()),
        ctl(cluster.kernel(), opts) {
    register_test_programs(cluster.kernel());
  }
  sim::Kernel& k() { return cluster.kernel(); }
  bool run_until_results(std::initializer_list<const char*> names,
                         SimTime deadline = 300 * timeconst::kSecond) {
    return ctl.run_until(
        [&] {
          for (const char* n : names) {
            if (read_result(k(), n).empty()) return false;
          }
          return true;
        },
        k().loop().now() + deadline);
  }
};

DmtcpOptions service_opts(int replicas = 1) {
  DmtcpOptions o;
  o.incremental = true;
  o.codec = compress::CodecKind::kNone;  // exact byte accounting
  o.chunking = ckptstore::ChunkingMode::kCdc;
  o.cdc_min_bytes = 2 * 1024;
  o.cdc_avg_bytes = 8 * 1024;
  o.cdc_max_bytes = 32 * 1024;
  o.dedup_scope = core::DedupScope::kCluster;
  o.chunk_replicas = replicas;
  return o;
}

/// Give `pid` a deterministic real-content ballast so the checkpoint spans
/// enough chunks that every node holds some of them.
void add_ballast(World& w, Pid pid, u64 bytes, u64 seed) {
  sim::Process* p = w.k().find_process(pid);
  ASSERT_NE(p, nullptr);
  auto& seg = p->mem().add("ballast", sim::MemKind::kHeap, bytes);
  seg.data.fill(0, bytes, ExtentKind::kRand, seed);
}

/// Launch `ranks` compute processes (one per node) with private ballast,
/// checkpoint once, and return the round.
core::CkptRound contended_round(World& w, int ranks, u64 ballast) {
  std::vector<Pid> pids;
  for (int n = 0; n < ranks; ++n) {
    pids.push_back(w.ctl.launch(n, kComputeLoop,
                                {"1000000", "200", "p" + std::to_string(n)}));
  }
  w.ctl.run_for(20 * timeconst::kMillisecond);
  for (int n = 0; n < ranks; ++n) {
    sim::Process* p = w.k().find_process(pids[static_cast<size_t>(n)]);
    EXPECT_NE(p, nullptr);
    auto& seg = p->mem().add("ballast", sim::MemKind::kHeap, ballast);
    // Distinct seed per rank: every chunk is unique, so every submission
    // is a genuine miss — the maximum-lookup, maximum-store round.
    seg.data.fill(0, ballast, ExtentKind::kRand, 0xB0 + static_cast<u64>(n));
  }
  return w.ctl.checkpoint_now();
}

TEST(ServiceE2E, LookupWaitGrowsWithRankCount) {
  constexpr u64 kBallast = 1024 * 1024;
  World w2(2, service_opts());
  const auto r2 = contended_round(w2, 2, kBallast);
  World w8(8, service_opts());
  const auto r8 = contended_round(w8, 8, kBallast);

  ASSERT_GT(r2.store_lookups, 0u);
  ASSERT_GT(r8.store_lookups, 3 * r2.store_lookups);
  // The contention knee: four times the ranks funneling into one request
  // queue must wait substantially longer per lookup, not equally long.
  EXPECT_GT(r8.avg_lookup_wait_seconds(),
            1.5 * r2.avg_lookup_wait_seconds());
}

TEST(ServiceE2E, RoundReportsNetworkTrafficOnTheLookupPath) {
  World w(4, service_opts());
  const auto r = contended_round(w, 4, 1024 * 1024);
  // Service requests really traverse the NIC: the round saw RPCs, network
  // bytes, and in-flight time — none of which existed when requests
  // teleported to the queue.
  ASSERT_GT(r.store_lookups, 0u);
  EXPECT_GE(r.store_rpcs, r.store_lookups);  // lookups + stores + drops
  EXPECT_GT(r.store_rpc_net_bytes, 0u);
  EXPECT_GT(r.store_rpc_net_wait_seconds, 0.0);
}

TEST(ServiceE2E, ShardsMoveTheContentionKneeRight) {
  constexpr u64 kBallast = 1024 * 1024;
  // Dedicated store nodes (8..11), as stdchk deploys its service: ranks
  // compute on 0..7 and the shard endpoints never share a NIC with a
  // rank's store burst.
  auto opts1 = service_opts();
  opts1.store_node = 8;
  World w1(12, opts1);
  const auto r1 = contended_round(w1, 8, kBallast);

  auto opts4 = service_opts();
  opts4.store_node = 8;
  opts4.store_shards = 4;
  World w4(12, opts4);
  const auto r4 = contended_round(w4, 8, kBallast);

  ASSERT_GT(r1.store_lookups, 0u);
  ASSERT_EQ(r4.store_lookups, r1.store_lookups);  // same probe load
  // Four shard queues drain eight ranks' probes with strictly less
  // queueing than one: the average lookup wait drops materially.
  EXPECT_LT(r4.avg_lookup_wait_seconds(),
            0.7 * r1.avg_lookup_wait_seconds());
}

TEST(ServiceE2E, RereplicationHealsBeforeTheNextRoundCompletes) {
  World w(4, service_opts(/*replicas=*/2));
  const Pid pa = w.ctl.launch(0, kComputeLoop, {"1000000", "200", "a"});
  const Pid pb = w.ctl.launch(1, kComputeLoop, {"1000000", "200", "b"});
  w.ctl.run_for(20 * timeconst::kMillisecond);
  add_ballast(w, pa, 1024 * 1024, 0xAA);
  add_ballast(w, pb, 1024 * 1024, 0xBB);
  w.ctl.checkpoint_now();

  auto& svc = *w.ctl.shared().store_service;
  ASSERT_EQ(svc.placement().degraded_count(), 0u);
  svc.fail_node(1);
  ASSERT_GT(svc.placement().degraded_count(), 0u);

  // Death is now *detected*, not announced: the membership service needs
  // ~heartbeat_misses x heartbeat_interval of silence before the failover
  // manager kicks the heal daemon, which then drains in the background
  // while the computation keeps running. Give detection + heal their
  // window, then close another round over the healed store.
  w.ctl.run_for(150 * timeconst::kMillisecond);
  const auto& round = w.ctl.checkpoint_now();
  EXPECT_EQ(svc.placement().degraded_count(), 0u);
  EXPECT_GT(svc.stats().rereplicated_chunks, 0u);
  EXPECT_GT(round.rereplicated_chunks, 0u);
  // Losing a second node after the heal still leaves every chunk readable
  // — exactly what pre-heal homes {1, x} could not survive for x.
  svc.fail_node(2);
  EXPECT_EQ(svc.placement().lost_chunks(), 0u);
  w.ctl.kill_computation();
  const auto& rr = w.ctl.restart({{1, 3}, {2, 3}});
  EXPECT_FALSE(rr.needs_restore);
  EXPECT_EQ(rr.procs, 2);
  ASSERT_TRUE(w.run_until_results({"a", "b"}));
}

TEST(ServiceE2E, ScrubReportsCorruptAndMissingChunks) {
  auto opts = service_opts(/*replicas=*/1);
  opts.scrub_chunks = 1u << 20;  // scrub the whole store every round
  World w(4, opts);
  const Pid pa = w.ctl.launch(0, kComputeLoop, {"1000000", "400", "a"});
  w.ctl.run_for(20 * timeconst::kMillisecond);
  // Real content (not pattern ballast): only real containers can rot.
  sim::Process* p = w.k().find_process(pa);
  ASSERT_NE(p, nullptr);
  auto& seg = p->mem().add("blob", sim::MemKind::kHeap, 512 * 1024);
  seg.data.write(0, pseudo_bytes(512 * 1024, 0x5C12B));
  w.ctl.checkpoint_now();

  auto& svc = *w.ctl.shared().store_service;
  // Round 1's pass (kicked at its close) saw a clean store.
  w.ctl.run_for(100 * timeconst::kMillisecond);
  EXPECT_GT(svc.stats().scrubbed_chunks, 0u);
  EXPECT_EQ(svc.stats().scrub_corrupt_chunks, 0u);

  // Rot one real chunk (same length, wrong content) and lose a node that
  // does *not* hold it: the next pass must report exactly one corrupt
  // chunk plus the failed node's chunks as missing. (No checkpoint in
  // between — the encode path's forward-heal would re-store the losses
  // before the scrubber could see them.)
  ckptstore::Chunk* victim = nullptr;
  ChunkKey victim_key{};
  for (const auto& [key, chunk] : svc.repo().chunks_after(ChunkKey{}, 4096)) {
    if (chunk->kind == sim::ExtentKind::kReal) {
      victim = svc.repo().find_mutable(key);
      victim_key = key;
      break;
    }
  }
  ASSERT_NE(victim, nullptr);
  victim->stored = std::make_shared<const std::vector<std::byte>>(
      compress::codec(compress::CodecKind::kNone)
          .compress(pseudo_bytes(victim->len, 0xBAD)));
  const NodeId dead = svc.placement().holder(victim_key) == 2 ? 3 : 2;
  svc.fail_node(dead);
  ASSERT_GT(svc.placement().lost_chunks(), 0u);

  const u64 corrupt_before = svc.stats().scrub_corrupt_chunks;
  svc.scrub(1u << 20, compress::CodecKind::kNone);
  w.ctl.run_for(200 * timeconst::kMillisecond);  // the pass drains async
  EXPECT_EQ(svc.stats().scrub_corrupt_chunks, corrupt_before + 1);
  EXPECT_GT(svc.stats().scrub_missing_chunks, 0u);
}

// --- cluster-shape option validation ----------------------------------------

TEST(Options, StoreFlagsParseAndValidate) {
  DmtcpOptions o;
  std::vector<std::string> argv{"--incremental", "--dedup-scope", "cluster",
                                "--store-shards", "4",  "--lookup-batch",
                                "8",             "--scrub-chunks", "64"};
  EXPECT_EQ(o.apply_flags(argv), "");
  EXPECT_TRUE(argv.empty());
  EXPECT_EQ(o.store_shards, 4);
  EXPECT_EQ(o.lookup_batch, 8);
  EXPECT_EQ(o.scrub_chunks, 64u);

  DmtcpOptions bad;
  std::vector<std::string> zero{"--incremental", "--dedup-scope", "cluster",
                                "--store-shards", "0"};
  EXPECT_NE(bad.apply_flags(zero), "");
  DmtcpOptions scoped;
  std::vector<std::string> node_scope{"--incremental", "--store-shards", "2"};
  EXPECT_NE(scoped.apply_flags(node_scope), "");  // needs cluster scope
}

TEST(Options, ClusterValidationRejectsOutOfRangeEndpoints) {
  auto o = service_opts();
  o.store_node = 7;
  EXPECT_EQ(o.validate(), "");  // in isolation the flag parses fine...
  EXPECT_NE(o.validate_cluster(4), "");  // ...but node 7 of 4 is refused
  EXPECT_EQ(o.validate_cluster(8), "");
  o.store_node = core::DmtcpOptions::kStoreNodeCoord;
  EXPECT_EQ(o.validate_cluster(1), "");
}

TEST(ServiceE2E, ChunkWritesLandOnPlacementHomes) {
  // One rank on node 0, but its chunk copies scatter over all four nodes'
  // devices (rendezvous placement) instead of piling onto node 0.
  World w(4, service_opts(/*replicas=*/1));
  const auto r = contended_round(w, 1, 2 * 1024 * 1024);
  ASSERT_GT(r.store_new_bytes, 0u);
  int nodes_with_writes = 0;
  for (int n = 0; n < 4; ++n) {
    if (w.k().node(n).storage().cache().total_written_bytes() > 0) {
      ++nodes_with_writes;
    }
  }
  EXPECT_GE(nodes_with_writes, 3);
}

TEST(ServiceE2E, ReplicaFailoverRestartsAfterNodeLoss) {
  World w(4, service_opts(/*replicas=*/2));
  const Pid pa = w.ctl.launch(0, kComputeLoop, {"1000000", "200", "a"});
  const Pid pb = w.ctl.launch(1, kComputeLoop, {"1000000", "200", "b"});
  w.ctl.run_for(20 * timeconst::kMillisecond);
  add_ballast(w, pa, 1024 * 1024, 0xAA);
  add_ballast(w, pb, 1024 * 1024, 0xBB);
  w.ctl.checkpoint_now();

  // Node 1 dies. Its chunk copies are unreachable, but every chunk has a
  // second replica elsewhere; restart must read only from survivors.
  w.ctl.shared().store_service->fail_node(1);
  w.ctl.kill_computation();
  const u64 node1_reads_before =
      w.k().node(1).storage().cache().total_read_bytes();
  const auto& rr = w.ctl.restart({{1, 2}});  // host 1's procs move to node 2
  EXPECT_FALSE(rr.needs_restore);
  EXPECT_EQ(rr.lost_chunks, 0u);
  EXPECT_EQ(rr.procs, 2);
  EXPECT_EQ(w.k().node(1).storage().cache().total_read_bytes(),
            node1_reads_before);  // nothing fetched from the dead node
  ASSERT_TRUE(w.run_until_results({"a", "b"}));
}

TEST(ServiceE2E, NextGenerationHealsLostChunks) {
  // A dedup hit on a chunk whose every replica died must be re-stored
  // over the survivors — otherwise every post-failure generation keeps
  // referencing permanently unrestorable data.
  World w(4, service_opts(/*replicas=*/1));
  const Pid pa = w.ctl.launch(0, kComputeLoop, {"1000000", "200", "a"});
  const Pid pb = w.ctl.launch(1, kComputeLoop, {"1000000", "200", "b"});
  w.ctl.run_for(20 * timeconst::kMillisecond);
  add_ballast(w, pa, 1024 * 1024, 0xAA);
  add_ballast(w, pb, 1024 * 1024, 0xBB);
  w.ctl.checkpoint_now();

  auto& svc = *w.ctl.shared().store_service;
  svc.fail_node(1);
  ASSERT_GT(svc.placement().lost_chunks(), 0u);

  // The computation keeps running; the next round's unchanged chunks are
  // dedup hits, and the lost ones among them are re-placed and re-written.
  w.ctl.checkpoint_now();
  EXPECT_EQ(svc.placement().lost_chunks(), 0u);

  // A restart from the healed round reads only surviving replicas.
  w.ctl.kill_computation();
  const auto& rr = w.ctl.restart({{1, 2}});
  EXPECT_FALSE(rr.needs_restore);
  EXPECT_EQ(rr.procs, 2);
  ASSERT_TRUE(w.run_until_results({"a", "b"}));
}

TEST(ServiceE2E, ReplicaOneNodeLossForcesRestore) {
  World w(4, service_opts(/*replicas=*/1));
  const Pid pa = w.ctl.launch(0, kComputeLoop, {"1000000", "200", "a"});
  const Pid pb = w.ctl.launch(1, kComputeLoop, {"1000000", "200", "b"});
  w.ctl.run_for(20 * timeconst::kMillisecond);
  add_ballast(w, pa, 1024 * 1024, 0xAA);
  add_ballast(w, pb, 1024 * 1024, 0xBB);
  w.ctl.checkpoint_now();

  w.ctl.shared().store_service->fail_node(1);
  EXPECT_GT(w.ctl.shared().store_service->placement().lost_chunks(), 0u);
  w.ctl.kill_computation();
  const auto& rr = w.ctl.restart({{1, 2}});
  // With a single replica the failure is data loss: the pre-flight reports
  // the forced re-store instead of restarting into missing chunks.
  EXPECT_TRUE(rr.needs_restore);
  EXPECT_GT(rr.lost_chunks, 0u);
  EXPECT_EQ(rr.procs, 0);
  EXPECT_TRUE(read_result(w.k(), "a").empty());
}

}  // namespace
}  // namespace dsim::test
