// The remote chunk-store service: rendezvous placement and replication,
// queued dedup lookups contending across ranks, replica failover on node
// failure, the R=1 data-loss path, and FastCDC normalized chunking.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "ckptstore/cdc.h"
#include "ckptstore/placement.h"
#include "ckptstore/service.h"
#include "core/launch.h"
#include "mtcp/mtcp.h"
#include "sim/cluster.h"
#include "tests/testprogs.h"
#include "tests/testutil.h"

namespace dsim::test {
namespace {

using ckptstore::ChunkKey;
using ckptstore::ChunkPlacement;
using ckptstore::ChunkStoreService;
using core::DmtcpControl;
using core::DmtcpOptions;
using sim::ByteImage;
using sim::ExtentKind;

ChunkKey key_of(u64 n) {
  ChunkKey k;
  k.hi = n * 0x9E3779B97F4A7C15ull + 7;
  k.lo = n;
  return k;
}

// pseudo_bytes / cdc_params come from tests/testutil.h.

// --- placement --------------------------------------------------------------

TEST(Placement, ReplicasAreDistinctAliveNodes) {
  ChunkPlacement pl(8, 3);
  for (u64 i = 0; i < 200; ++i) {
    const auto homes = pl.place(key_of(i));
    ASSERT_EQ(homes.size(), 3u);
    std::set<NodeId> uniq(homes.begin(), homes.end());
    EXPECT_EQ(uniq.size(), 3u);
    for (NodeId n : homes) EXPECT_TRUE(pl.node_alive(n));
  }
  // More replicas than nodes degrades gracefully to one copy per node.
  ChunkPlacement small(2, 5);
  EXPECT_EQ(small.place(key_of(1)).size(), 2u);
}

TEST(Placement, RendezvousSpreadsAndIsStableUnderFailure) {
  ChunkPlacement pl(4, 1);
  std::vector<int> per_node(4, 0);
  std::vector<std::vector<NodeId>> before;
  for (u64 i = 0; i < 400; ++i) {
    const auto homes = pl.place(key_of(i));
    per_node[static_cast<size_t>(homes[0])]++;
    before.push_back(homes);
  }
  // Roughly uniform: every node holds a real share (exactly 100 each would
  // be suspicious; none should be starved or hot by an order of magnitude).
  for (int n = 0; n < 4; ++n) {
    EXPECT_GT(per_node[static_cast<size_t>(n)], 40);
    EXPECT_LT(per_node[static_cast<size_t>(n)], 200);
  }
  // Rendezvous property: failing node 2 moves only node-2 chunks.
  pl.fail_node(2);
  for (u64 i = 0; i < 400; ++i) {
    const auto homes = pl.place(key_of(i));
    if (before[i][0] != 2) {
      EXPECT_EQ(homes[0], before[i][0]);
    } else {
      EXPECT_NE(homes[0], 2);
    }
  }
}

TEST(Placement, FailoverPrefersSurvivingHomesInOrder) {
  ChunkPlacement pl(6, 2);
  // Record every key with its homes, fail two nodes, and check each
  // holder: the best surviving home when one exists, kNoHolder when both
  // replicas died with their nodes.
  std::vector<std::pair<ChunkKey, std::vector<NodeId>>> recorded;
  for (u64 i = 0; i < 100; ++i) {
    const ChunkKey k = key_of(i);
    recorded.emplace_back(k, pl.record_store(k, 1000));
    ASSERT_EQ(recorded.back().second.size(), 2u);
  }
  EXPECT_EQ(pl.lost_chunks(), 0u);

  pl.fail_node(0);
  pl.fail_node(1);
  u64 expected_lost = 0;
  for (const auto& [k, homes] : recorded) {
    i32 expected = ChunkPlacement::kNoHolder;
    for (NodeId n : homes) {
      if (pl.node_alive(n)) {
        expected = n;  // best-first order is preserved on failover
        break;
      }
    }
    EXPECT_EQ(pl.holder(k), expected);
    if (expected < 0) ++expected_lost;
  }
  EXPECT_EQ(pl.lost_chunks(), expected_lost);
  // Re-recording an existing key is a dedup no-op (no new copies).
  EXPECT_TRUE(pl.record_store(recorded[0].first, 1000).empty());
}

TEST(Placement, ReplicaOneLosesChunksWithTheirNode) {
  ChunkPlacement pl(4, 1);
  u64 on_node1 = 0;
  for (u64 i = 0; i < 200; ++i) {
    const auto homes = pl.record_store(key_of(i), 500);
    ASSERT_EQ(homes.size(), 1u);
    if (homes[0] == 1) ++on_node1;
  }
  ASSERT_GT(on_node1, 0u);
  pl.fail_node(1);
  EXPECT_EQ(pl.lost_chunks(), on_node1);
  EXPECT_EQ(pl.lost_bytes(), on_node1 * 500);
  // Revival restores the node, and with it the bytes it physically held.
  pl.revive_node(1);
  EXPECT_EQ(pl.lost_chunks(), 0u);
}

TEST(Placement, ReplicaTwoSurvivesOneNodeFailure) {
  ChunkPlacement pl(4, 2);
  for (u64 i = 0; i < 200; ++i) pl.record_store(key_of(i), 500);
  pl.fail_node(2);
  EXPECT_EQ(pl.lost_chunks(), 0u);
  for (u64 i = 0; i < 200; ++i) {
    const i32 h = pl.holder(key_of(i));
    ASSERT_GE(h, 0);
    EXPECT_NE(h, 2);
  }
}

// --- service request queue ---------------------------------------------------

TEST(Service, LookupsAreServedFifoAndWaitsGrowWithQueueDepth) {
  sim::EventLoop loop;
  ChunkStoreService svc(loop, 4, 1);
  // Two "ranks" submit lookup batches back to back; the queue serves them
  // FIFO, so rank B's batch completes after rank A's and per-lookup waits
  // grow with queue depth.
  SimTime done_a = 0, done_b = 0;
  svc.submit_lookups(50, [&] { done_a = loop.now(); });
  svc.submit_lookups(50, [&] { done_b = loop.now(); });
  loop.run();
  ASSERT_GT(done_a, 0);
  ASSERT_GT(done_b, 0);
  EXPECT_GT(done_b, done_a);  // FIFO: B queued behind A's 50 probes
  const auto& ss = svc.stats();
  EXPECT_EQ(ss.lookup_requests, 100u);
  EXPECT_GT(ss.avg_lookup_wait_seconds(), 0.0);
  // The last probe waited behind 99 others; its wait dominates the mean.
  EXPECT_GT(ss.max_lookup_wait_seconds,
            1.5 * ss.avg_lookup_wait_seconds());
}

TEST(Service, StoreFetchDropAccountTheQueue) {
  sim::EventLoop loop;
  ChunkStoreService svc(loop, 4, 2);
  bool stored = false, fetched = false;
  const auto homes = svc.submit_store(key_of(1), 64 * 1024,
                                      [&] { stored = true; });
  EXPECT_EQ(homes.size(), 2u);
  // Dedup hit: the same key stores no new copies but still queues.
  EXPECT_TRUE(svc.submit_store(key_of(1), 64 * 1024, [] {}).empty());
  svc.submit_fetch(64 * 1024, [&] { fetched = true; });
  svc.submit_drop(32 * 1024);
  loop.run();
  EXPECT_TRUE(stored);
  EXPECT_TRUE(fetched);
  const auto& ss = svc.stats();
  EXPECT_EQ(ss.store_requests, 2u);
  EXPECT_EQ(ss.fetch_requests, 1u);
  EXPECT_EQ(ss.drop_requests, 1u);
  EXPECT_EQ(ss.fetch_bytes, 64u * 1024);
  EXPECT_EQ(svc.device().total_discarded_bytes(), 32u * 1024);
}

// --- FastCDC -----------------------------------------------------------------

TEST(FastCdc, SpansRespectBoundsAndCoverTheImage) {
  ByteImage img(1024 * 1024);
  img.write(0, pseudo_bytes(1024 * 1024, 17));
  const auto p =
      cdc_params(2048, 8192, 32 * 1024, ckptstore::ChunkingMode::kFastCdc);
  const auto spans = ckptstore::scan_chunks_cdc(img, p);
  ASSERT_FALSE(spans.empty());
  u64 off = 0;
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].off, off);
    off += spans[i].len;
    EXPECT_LE(spans[i].len, p.max_bytes);
    if (i + 1 < spans.size()) EXPECT_GE(spans[i].len, p.min_bytes);
  }
  EXPECT_EQ(off, img.size());
}

TEST(FastCdc, NormalizationTightensTheSizeDistribution) {
  ByteImage img(2 * 1024 * 1024);
  img.write(0, pseudo_bytes(2 * 1024 * 1024, 23));
  const u64 avg = 8192;
  const auto plain =
      ckptstore::scan_chunks_cdc(img, cdc_params(1024, avg, 8 * avg));
  const auto fast = ckptstore::scan_chunks_cdc(
      img,
      cdc_params(1024, avg, 8 * avg, ckptstore::ChunkingMode::kFastCdc));
  auto near_avg_fraction = [&](const std::vector<ckptstore::ChunkSpan>& s) {
    u64 near = 0;
    for (const auto& span : s) {
      if (span.len >= avg / 2 && span.len <= 2 * avg) ++near;
    }
    return static_cast<double>(near) / static_cast<double>(s.size());
  };
  // The two-mask scheme squeezes spans toward the target: strictly more of
  // them land within a factor of two of avg than with the single mask.
  EXPECT_GT(near_avg_fraction(fast), near_avg_fraction(plain));
  EXPECT_GT(near_avg_fraction(fast), 0.7);
}

TEST(FastCdc, CutpointsResynchronizeAfterInsertion) {
  const u64 bytes = 1024 * 1024;
  const auto content = pseudo_bytes(bytes, 31);
  std::vector<std::byte> shifted;
  const auto wedge = pseudo_bytes(64, 0xF00D);
  shifted.insert(shifted.end(), content.begin(), content.begin() + 5000);
  shifted.insert(shifted.end(), wedge.begin(), wedge.end());
  shifted.insert(shifted.end(), content.begin() + 5000, content.end());

  ByteImage a(bytes), b(bytes + 64);
  a.write(0, content);
  b.write(0, shifted);
  const auto p =
      cdc_params(2048, 8192, 32 * 1024, ckptstore::ChunkingMode::kFastCdc);
  std::set<std::pair<u64, u64>> keys_a;  // (hi, lo) of each span's content
  for (const auto& s : ckptstore::scan_chunks_cdc(a, p)) {
    const auto k = ckptstore::span_key(a, s);
    keys_a.insert({k.hi, k.lo});
  }
  u64 shared_bytes = 0, total = 0;
  for (const auto& s : ckptstore::scan_chunks_cdc(b, p)) {
    const auto k = ckptstore::span_key(b, s);
    if (keys_a.count({k.hi, k.lo})) shared_bytes += s.len;
    total += s.len;
  }
  // Only the chunks around the insertion differ; everything downstream
  // re-keys identically once the two gear masks resynchronize.
  EXPECT_GT(static_cast<double>(shared_bytes) / static_cast<double>(total),
            0.9);
}

// --- end to end through the DMTCP stack -------------------------------------

struct World {
  sim::Cluster cluster;
  DmtcpControl ctl;
  World(int nodes, DmtcpOptions opts, u64 seed = 0x5eed)
      : cluster([&] {
          auto cfg = sim::Cluster::lab_cluster(nodes);
          cfg.seed = seed;
          return cfg;
        }()),
        ctl(cluster.kernel(), opts) {
    register_test_programs(cluster.kernel());
  }
  sim::Kernel& k() { return cluster.kernel(); }
  bool run_until_results(std::initializer_list<const char*> names,
                         SimTime deadline = 300 * timeconst::kSecond) {
    return ctl.run_until(
        [&] {
          for (const char* n : names) {
            if (read_result(k(), n).empty()) return false;
          }
          return true;
        },
        k().loop().now() + deadline);
  }
};

DmtcpOptions service_opts(int replicas = 1) {
  DmtcpOptions o;
  o.incremental = true;
  o.codec = compress::CodecKind::kNone;  // exact byte accounting
  o.chunking = ckptstore::ChunkingMode::kCdc;
  o.cdc_min_bytes = 2 * 1024;
  o.cdc_avg_bytes = 8 * 1024;
  o.cdc_max_bytes = 32 * 1024;
  o.dedup_scope = core::DedupScope::kCluster;
  o.chunk_replicas = replicas;
  return o;
}

/// Launch `ranks` compute processes (one per node) with private ballast,
/// checkpoint once, and return the round.
core::CkptRound contended_round(World& w, int ranks, u64 ballast) {
  std::vector<Pid> pids;
  for (int n = 0; n < ranks; ++n) {
    pids.push_back(w.ctl.launch(n, kComputeLoop,
                                {"1000000", "200", "p" + std::to_string(n)}));
  }
  w.ctl.run_for(20 * timeconst::kMillisecond);
  for (int n = 0; n < ranks; ++n) {
    sim::Process* p = w.k().find_process(pids[static_cast<size_t>(n)]);
    EXPECT_NE(p, nullptr);
    auto& seg = p->mem().add("ballast", sim::MemKind::kHeap, ballast);
    // Distinct seed per rank: every chunk is unique, so every submission
    // is a genuine miss — the maximum-lookup, maximum-store round.
    seg.data.fill(0, ballast, ExtentKind::kRand, 0xB0 + static_cast<u64>(n));
  }
  return w.ctl.checkpoint_now();
}

TEST(ServiceE2E, LookupWaitGrowsWithRankCount) {
  constexpr u64 kBallast = 1024 * 1024;
  World w2(2, service_opts());
  const auto r2 = contended_round(w2, 2, kBallast);
  World w8(8, service_opts());
  const auto r8 = contended_round(w8, 8, kBallast);

  ASSERT_GT(r2.store_lookups, 0u);
  ASSERT_GT(r8.store_lookups, 3 * r2.store_lookups);
  // The contention knee: four times the ranks funneling into one request
  // queue must wait substantially longer per lookup, not equally long.
  EXPECT_GT(r8.avg_lookup_wait_seconds(),
            1.5 * r2.avg_lookup_wait_seconds());
}

TEST(ServiceE2E, ChunkWritesLandOnPlacementHomes) {
  // One rank on node 0, but its chunk copies scatter over all four nodes'
  // devices (rendezvous placement) instead of piling onto node 0.
  World w(4, service_opts(/*replicas=*/1));
  const auto r = contended_round(w, 1, 2 * 1024 * 1024);
  ASSERT_GT(r.store_new_bytes, 0u);
  int nodes_with_writes = 0;
  for (int n = 0; n < 4; ++n) {
    if (w.k().node(n).storage().cache().total_written_bytes() > 0) {
      ++nodes_with_writes;
    }
  }
  EXPECT_GE(nodes_with_writes, 3);
}

/// Give `pid` a deterministic real-content ballast so the checkpoint spans
/// enough chunks that every node holds some of them.
void add_ballast(World& w, Pid pid, u64 bytes, u64 seed) {
  sim::Process* p = w.k().find_process(pid);
  ASSERT_NE(p, nullptr);
  auto& seg = p->mem().add("ballast", sim::MemKind::kHeap, bytes);
  seg.data.fill(0, bytes, ExtentKind::kRand, seed);
}

TEST(ServiceE2E, ReplicaFailoverRestartsAfterNodeLoss) {
  World w(4, service_opts(/*replicas=*/2));
  const Pid pa = w.ctl.launch(0, kComputeLoop, {"1000000", "200", "a"});
  const Pid pb = w.ctl.launch(1, kComputeLoop, {"1000000", "200", "b"});
  w.ctl.run_for(20 * timeconst::kMillisecond);
  add_ballast(w, pa, 1024 * 1024, 0xAA);
  add_ballast(w, pb, 1024 * 1024, 0xBB);
  w.ctl.checkpoint_now();

  // Node 1 dies. Its chunk copies are unreachable, but every chunk has a
  // second replica elsewhere; restart must read only from survivors.
  w.ctl.shared().store_service->fail_node(1);
  w.ctl.kill_computation();
  const u64 node1_reads_before =
      w.k().node(1).storage().cache().total_read_bytes();
  const auto& rr = w.ctl.restart({{1, 2}});  // host 1's procs move to node 2
  EXPECT_FALSE(rr.needs_restore);
  EXPECT_EQ(rr.lost_chunks, 0u);
  EXPECT_EQ(rr.procs, 2);
  EXPECT_EQ(w.k().node(1).storage().cache().total_read_bytes(),
            node1_reads_before);  // nothing fetched from the dead node
  ASSERT_TRUE(w.run_until_results({"a", "b"}));
}

TEST(ServiceE2E, NextGenerationHealsLostChunks) {
  // A dedup hit on a chunk whose every replica died must be re-stored
  // over the survivors — otherwise every post-failure generation keeps
  // referencing permanently unrestorable data.
  World w(4, service_opts(/*replicas=*/1));
  const Pid pa = w.ctl.launch(0, kComputeLoop, {"1000000", "200", "a"});
  const Pid pb = w.ctl.launch(1, kComputeLoop, {"1000000", "200", "b"});
  w.ctl.run_for(20 * timeconst::kMillisecond);
  add_ballast(w, pa, 1024 * 1024, 0xAA);
  add_ballast(w, pb, 1024 * 1024, 0xBB);
  w.ctl.checkpoint_now();

  auto& svc = *w.ctl.shared().store_service;
  svc.fail_node(1);
  ASSERT_GT(svc.placement().lost_chunks(), 0u);

  // The computation keeps running; the next round's unchanged chunks are
  // dedup hits, and the lost ones among them are re-placed and re-written.
  w.ctl.checkpoint_now();
  EXPECT_EQ(svc.placement().lost_chunks(), 0u);

  // A restart from the healed round reads only surviving replicas.
  w.ctl.kill_computation();
  const auto& rr = w.ctl.restart({{1, 2}});
  EXPECT_FALSE(rr.needs_restore);
  EXPECT_EQ(rr.procs, 2);
  ASSERT_TRUE(w.run_until_results({"a", "b"}));
}

TEST(ServiceE2E, ReplicaOneNodeLossForcesRestore) {
  World w(4, service_opts(/*replicas=*/1));
  const Pid pa = w.ctl.launch(0, kComputeLoop, {"1000000", "200", "a"});
  const Pid pb = w.ctl.launch(1, kComputeLoop, {"1000000", "200", "b"});
  w.ctl.run_for(20 * timeconst::kMillisecond);
  add_ballast(w, pa, 1024 * 1024, 0xAA);
  add_ballast(w, pb, 1024 * 1024, 0xBB);
  w.ctl.checkpoint_now();

  w.ctl.shared().store_service->fail_node(1);
  EXPECT_GT(w.ctl.shared().store_service->placement().lost_chunks(), 0u);
  w.ctl.kill_computation();
  const auto& rr = w.ctl.restart({{1, 2}});
  // With a single replica the failure is data loss: the pre-flight reports
  // the forced re-store instead of restarting into missing chunks.
  EXPECT_TRUE(rr.needs_restore);
  EXPECT_GT(rr.lost_chunks, 0u);
  EXPECT_EQ(rr.procs, 0);
  EXPECT_TRUE(read_result(w.k(), "a").empty());
}

}  // namespace
}  // namespace dsim::test
