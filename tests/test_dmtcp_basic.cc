// End-to-end checkpoint/restart over the full stack: coordinator, hijack,
// seven-stage protocol, drain/refill, MTCP images, restart with discovery.
#include <gtest/gtest.h>

#include "core/launch.h"
#include "sim/cluster.h"
#include "tests/testprogs.h"

namespace dsim::test {
namespace {

using core::DmtcpControl;
using core::DmtcpOptions;

struct World {
  sim::Cluster cluster;
  DmtcpControl ctl;
  World(int nodes, DmtcpOptions opts = {}, u64 seed = 0x5eed)
      : cluster([&] {
          auto cfg = sim::Cluster::lab_cluster(nodes);
          cfg.seed = seed;
          return cfg;
        }()),
        ctl(cluster.kernel(), opts) {
    register_test_programs(cluster.kernel());
  }
  sim::Kernel& k() { return cluster.kernel(); }
  bool run_until_results(std::initializer_list<const char*> names,
                         SimTime deadline = 300 * timeconst::kSecond) {
    return ctl.run_until(
        [&] {
          for (const char* n : names) {
            if (read_result(k(), n).empty()) return false;
          }
          return true;
        },
        k().loop().now() + deadline);
  }
};

/// Ground truth: the same computation run without DMTCP at all.
std::map<std::string, std::string> baseline_results(
    const std::function<void(sim::Kernel&)>& spawn_all,
    std::initializer_list<const char*> names) {
  sim::Cluster cluster(sim::Cluster::lab_cluster(4));
  register_test_programs(cluster.kernel());
  spawn_all(cluster.kernel());
  cluster.kernel().loop().run_until(cluster.kernel().loop().now() +
                                    300 * timeconst::kSecond);
  std::map<std::string, std::string> out;
  for (const char* n : names) out[n] = read_result(cluster.kernel(), n);
  return out;
}

TEST(DmtcpBasic, PingPongRunsUnderDmtcpWithoutCheckpoint) {
  World w(2);
  w.ctl.launch(0, kPingServer, {"9000", "50", "2048", "srv"});
  w.ctl.launch(1, kPingClient, {"0", "9000", "50", "2048", "7", "cli"});
  ASSERT_TRUE(w.run_until_results({"srv", "cli"}));
  auto expected = baseline_results(
      [](sim::Kernel& k) {
        k.spawn_process(0, kPingServer, {"9000", "50", "2048", "srv"}, {});
        k.spawn_process(1, kPingClient, {"0", "9000", "50", "2048", "7", "cli"},
                        {});
      },
      {"srv", "cli"});
  EXPECT_EQ(read_result(w.k(), "srv"), expected["srv"]);
  EXPECT_EQ(read_result(w.k(), "cli"), expected["cli"]);
}

TEST(DmtcpBasic, CheckpointResumePreservesSocketStreams) {
  World w(2);
  w.ctl.launch(0, kPingServer, {"9000", "400", "4096", "srv"});
  w.ctl.launch(1, kPingClient, {"0", "9000", "400", "4096", "7", "cli"});
  w.ctl.run_for(40 * timeconst::kMillisecond);  // mid-computation
  const auto& round = w.ctl.checkpoint_now();
  EXPECT_GT(round.total_seconds(), 0.0);
  EXPECT_EQ(round.procs, 2);
  ASSERT_TRUE(w.run_until_results({"srv", "cli"}));
  // CRCs depend only on payload content: any lost/duplicated byte breaks.
  EXPECT_NE(read_result(w.k(), "srv").find("rounds=400"), std::string::npos);
  EXPECT_EQ(read_result(w.k(), "srv").substr(0, 12),
            read_result(w.k(), "cli").substr(0, 12));
}

TEST(DmtcpBasic, KillAndRestartCompletesIdentically) {
  auto expected = baseline_results(
      [](sim::Kernel& k) {
        k.spawn_process(0, kPingServer, {"9000", "300", "1024", "srv"}, {});
        k.spawn_process(1, kPingClient, {"0", "9000", "300", "1024", "9", "cli"},
                        {});
      },
      {"srv", "cli"});

  World w(2);
  w.ctl.launch(0, kPingServer, {"9000", "300", "1024", "srv"});
  w.ctl.launch(1, kPingClient, {"0", "9000", "300", "1024", "9", "cli"});
  w.ctl.run_for(30 * timeconst::kMillisecond);
  w.ctl.checkpoint_now();
  w.ctl.kill_computation();
  // Nothing should finish while dead.
  EXPECT_TRUE(read_result(w.k(), "srv").empty());
  const auto& rr = w.ctl.restart();
  EXPECT_EQ(rr.procs, 2);
  ASSERT_TRUE(w.run_until_results({"srv", "cli"}));
  EXPECT_EQ(read_result(w.k(), "srv"), expected["srv"]);
  EXPECT_EQ(read_result(w.k(), "cli"), expected["cli"]);
}

TEST(DmtcpBasic, RestartWithMigrationToOtherNodes) {
  auto expected = baseline_results(
      [](sim::Kernel& k) {
        k.spawn_process(0, kPingServer, {"9000", "200", "1024", "srv"}, {});
        k.spawn_process(1, kPingClient, {"0", "9000", "200", "1024", "3", "cli"},
                        {});
      },
      {"srv", "cli"});

  World w(4);
  w.ctl.launch(0, kPingServer, {"9000", "200", "1024", "srv"});
  w.ctl.launch(1, kPingClient, {"0", "9000", "200", "1024", "3", "cli"});
  w.ctl.run_for(25 * timeconst::kMillisecond);
  w.ctl.checkpoint_now();
  w.ctl.kill_computation();
  // Move both original hosts to fresh nodes (processes relocated, §4.4).
  const auto& rr = w.ctl.restart({{0, 2}, {1, 3}});
  EXPECT_EQ(rr.procs, 2);
  ASSERT_TRUE(w.run_until_results({"srv", "cli"}));
  EXPECT_EQ(read_result(w.k(), "srv"), expected["srv"]);
  EXPECT_EQ(read_result(w.k(), "cli"), expected["cli"]);
}

}  // namespace
}  // namespace dsim::test
