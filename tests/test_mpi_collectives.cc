// Mini-MPI correctness: collectives produce the right values at every rank
// (checked through a verification program that writes per-rank digests),
// and every NAS-style kernel runs, checkpoints and restarts identically
// under the OpenMPI-like runtime.
#include <gtest/gtest.h>

#include "apps/app_util.h"
#include "apps/distributed.h"
#include "core/launch.h"
#include "mpi/mpi.h"
#include "mpi/runtime.h"
#include "sim/cluster.h"
#include "tests/testprogs.h"

namespace dsim::test {
namespace {

using apps::buffer;
using apps::StateView;
using sim::MemRef;
using sim::Task;

struct CollState {
  u64 step = 0;
  u8 init_done = 0;
  u8 pad_[7] = {};  // explicit: stored state must have no padding bits
};

// coll_check <result> <rank> <np> <nnodes>: runs each collective and
// verifies the mathematically expected values at every rank.
Task<int> coll_check_main(sim::ProcessCtx& ctx) {
  const std::string result = apps::args(ctx, 0, "coll");
  const auto ra = mpi::parse_rank_args(ctx, 1);
  StateView<CollState> st(ctx);
  mpi::Engine mpi(ctx, ra.rank, ra.size, ra.nnodes, 1 << 16);
  CollState s = st.get();
  if (!s.init_done) {
    co_await mpi.init();
    s.init_done = 1;
    st.set(s);
  }
  MemRef buf = buffer(ctx, "cbuf", 64 * sizeof(double));
  bool ok = true;

  // allreduce: sum of rank ids at every rank.
  if (s.step == 0) {
    ctx.store<double>(buf, static_cast<double>(ra.rank));
    co_await mpi.allreduce_sum(buf, 1);
    const double want = ra.size * (ra.size - 1) / 2.0;
    ok = ok && ctx.load<double>(buf) == want;
    s.step = 1;
    st.set(s);
  }
  co_await ctx.sleep(25 * timeconst::kMillisecond);
  // bcast from a non-zero root (wrapped into range for small sizes).
  const int broot = 2 % ra.size;
  if (s.step == 1) {
    ctx.store<double>(buf, ra.rank == broot ? 1234.5 : 0.0);
    co_await mpi.bcast(broot, buf, sizeof(double));
    ok = ok && ctx.load<double>(buf) == 1234.5;
    s.step = 2;
    st.set(s);
  }
  co_await ctx.sleep(25 * timeconst::kMillisecond);
  // reduce to a non-zero root.
  const int rroot = 1 % ra.size;
  if (s.step == 2) {
    ctx.store<double>(buf, 2.0);
    co_await mpi.reduce_sum(rroot, buf, 1);
    if (ra.rank == rroot) ok = ok && ctx.load<double>(buf) == 2.0 * ra.size;
    s.step = 3;
    st.set(s);
  }
  co_await ctx.sleep(25 * timeconst::kMillisecond);
  // barrier then alltoall: block from rank r contains r*100+dest.
  if (s.step == 3) {
    co_await mpi.barrier();
    s.step = 4;
    st.set(s);
  }
  if (s.step == 4) {
    MemRef sbuf = buffer(ctx, "a2as", 8 * static_cast<u64>(ra.size));
    MemRef rbuf = buffer(ctx, "a2ar", 8 * static_cast<u64>(ra.size));
    for (int d = 0; d < ra.size; ++d) {
      ctx.store<u64>(sbuf.at(8 * static_cast<u64>(d)),
                     static_cast<u64>(ra.rank * 100 + d));
    }
    co_await mpi.alltoall(sbuf, rbuf, 8);
    for (int src = 0; src < ra.size; ++src) {
      ok = ok && ctx.load<u64>(rbuf.at(8 * static_cast<u64>(src))) ==
                     static_cast<u64>(src * 100 + ra.rank);
    }
    s.step = 5;
    st.set(s);
  }
  if (ra.rank == 0 && s.step == 5) {
    co_await apps::write_result(ctx, result, ok ? "collectives-ok"
                                                : "collectives-BAD");
    s.step = 6;
    st.set(s);
  }
  co_return ok ? 0 : 1;
}

struct MpiWorld {
  sim::Cluster cluster;
  core::DmtcpControl ctl;
  explicit MpiWorld(int nodes)
      : cluster(sim::Cluster::lab_cluster(nodes)), ctl(cluster.kernel(), {}) {
    mpi::register_runtime_programs(cluster.kernel());
    apps::register_distributed_programs(cluster.kernel());
    sim::Program p;
    p.name = "coll_check";
    p.main = coll_check_main;
    cluster.kernel().programs().add(std::move(p));
  }
  sim::Kernel& k() { return cluster.kernel(); }
  bool wait_result(const std::string& name) {
    return ctl.run_until([&] { return !read_result(k(), name).empty(); },
                         k().loop().now() + 600 * timeconst::kSecond);
  }
};

class CollectivesBySize : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesBySize, ValuesCorrectAtEveryRank) {
  const int np = GetParam();
  MpiWorld w(4);
  w.ctl.launch(0, "orte_mpirun",
               mpi::mpirun_argv(np, 4, "coll_check", {"coll"}));
  ASSERT_TRUE(w.wait_result("coll"));
  EXPECT_EQ(read_result(w.k(), "coll"), "collectives-ok");
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectivesBySize,
                         ::testing::Values(2, 3, 4, 7, 8, 13));

TEST(Collectives, SurviveCheckpointMidway) {
  MpiWorld w(4);
  w.ctl.launch(0, "orte_mpirun",
               mpi::mpirun_argv(8, 4, "coll_check", {"collck"}));
  // Checkpoint early, while init/collectives are in flight.
  w.ctl.run_for(60 * timeconst::kMillisecond);
  w.ctl.checkpoint_now();
  w.ctl.kill_computation();
  w.ctl.restart();
  ASSERT_TRUE(w.wait_result("collck"));
  EXPECT_EQ(read_result(w.k(), "collck"), "collectives-ok");
}

// Every NAS-style kernel runs + checkpoints + restarts identically.
class NasKernels : public ::testing::TestWithParam<const char*> {};

TEST_P(NasKernels, CheckpointRestartIdentical) {
  const std::string kernel = GetParam();
  const std::string res = "nas_" + kernel;
  std::string expected;
  {
    MpiWorld w(4);
    w.k().spawn_process(0, "orte_mpirun",
                        mpi::mpirun_argv(8, 4, "nas", {kernel, "60", res}),
                        {});
    ASSERT_TRUE(w.wait_result(res)) << "baseline " << kernel;
    expected = read_result(w.k(), res);
  }
  {
    MpiWorld w(4);
    w.ctl.launch(0, "orte_mpirun",
                 mpi::mpirun_argv(8, 4, "nas", {kernel, "60", res}));
    w.ctl.run_for(80 * timeconst::kMillisecond);
    w.ctl.checkpoint_now();
    w.ctl.kill_computation();
    w.ctl.restart();
    ASSERT_TRUE(w.wait_result(res)) << "restarted " << kernel;
    EXPECT_EQ(read_result(w.k(), res), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, NasKernels,
                         ::testing::Values("ep", "is", "cg", "mg", "lu", "sp",
                                           "bt"));

}  // namespace
}  // namespace dsim::test
