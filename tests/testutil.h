// Shared deterministic content and chunking-config helpers.
//
// Tests and benches that exercise the chunk store generate their "real"
// content from the same tiny LCG so dedup scenarios (identical libraries,
// shifted buffers) mean the same bytes everywhere. One definition here —
// a tweak to content generation must not silently diverge between suites.
#pragma once

#include <vector>

#include "ckptstore/cdc.h"
#include "util/types.h"

namespace dsim::test {

/// Deterministic pseudo-random bytes (not ByteImage kRand ballast: these
/// are *real* content the chunker must materialize and hash).
inline std::vector<std::byte> pseudo_bytes(u64 n, u64 seed) {
  std::vector<std::byte> out(n);
  u64 x = seed * 0x9E3779B97F4A7C15ull + 1;
  for (u64 i = 0; i < n; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    out[i] = static_cast<std::byte>(x >> 56);
  }
  return out;
}

inline ckptstore::ChunkingParams fixed_params(u64 chunk_bytes) {
  ckptstore::ChunkingParams p;
  p.mode = ckptstore::ChunkingMode::kFixed;
  p.fixed_bytes = chunk_bytes;
  return p;
}

inline ckptstore::ChunkingParams cdc_params(
    u64 min, u64 avg, u64 max,
    ckptstore::ChunkingMode mode = ckptstore::ChunkingMode::kCdc) {
  ckptstore::ChunkingParams p;
  p.mode = mode;
  p.min_bytes = min;
  p.avg_bytes = avg;
  p.max_bytes = max;
  return p;
}

}  // namespace dsim::test
