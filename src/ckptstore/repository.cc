#include "ckptstore/repository.h"

#include <algorithm>

#include "util/assertx.h"

namespace dsim::ckptstore {

const Chunk* Repository::find(const ChunkKey& key) const {
  auto it = chunks_.find(key);
  return it == chunks_.end() ? nullptr : &it->second.chunk;
}

Chunk* Repository::find_mutable(const ChunkKey& key) {
  auto it = chunks_.find(key);
  return it == chunks_.end() ? nullptr : &it->second.chunk;
}

bool Repository::put(const ChunkKey& key, Chunk chunk) {
  stats_.put_requests++;
  auto [it, inserted] = chunks_.try_emplace(key);
  if (!inserted) {
    stats_.dedup_hits++;
    return false;
  }
  it->second.chunk = std::move(chunk);
  stats_.live_chunks++;
  stats_.live_stored_bytes += it->second.chunk.charged_bytes;
  return true;
}

void Repository::commit_generation(const std::string& owner, int gen,
                                   const std::vector<ChunkKey>& keys,
                                   u64 logical_bytes) {
  GenRec rec;
  rec.logical_bytes = logical_bytes;
  rec.keys = keys;
  std::sort(rec.keys.begin(), rec.keys.end());
  rec.keys.erase(std::unique(rec.keys.begin(), rec.keys.end()),
                 rec.keys.end());
  for (const auto& k : rec.keys) {
    auto it = chunks_.find(k);
    DSIM_CHECK_MSG(it != chunks_.end(),
                   "manifest references a chunk the repository never stored");
    it->second.refs++;
  }
  stats_.live_logical_bytes += logical_bytes;
  auto [gi, fresh] = generations_[owner].try_emplace(gen, std::move(rec));
  DSIM_CHECK_MSG(fresh, "generation committed twice for one owner");
  (void)gi;
}

u64 Repository::collect_garbage(int keep) {
  DSIM_CHECK_MSG(keep >= 1, "retention must keep at least one generation");
  u64 reclaimed = 0;
  for (auto& [owner, gens] : generations_) {
    while (static_cast<int>(gens.size()) > keep) {
      auto oldest = gens.begin();  // map is gen-ordered
      for (const auto& k : oldest->second.keys) {
        auto it = chunks_.find(k);
        DSIM_CHECK(it != chunks_.end());
        if (--it->second.refs == 0) {
          reclaimed += it->second.chunk.charged_bytes;
          stats_.live_chunks--;
          stats_.live_stored_bytes -= it->second.chunk.charged_bytes;
          chunks_.erase(it);
        }
      }
      stats_.live_logical_bytes -= oldest->second.logical_bytes;
      gens.erase(oldest);
    }
  }
  stats_.reclaimed_bytes += reclaimed;
  return reclaimed;
}

void Repository::absorb(const Repository& other) {
  for (const auto& [key, slot] : other.chunks_) {
    auto [it, inserted] = chunks_.try_emplace(key, slot);
    if (inserted) {
      stats_.live_chunks++;
      stats_.live_stored_bytes += slot.chunk.charged_bytes;
    } else {
      // Referenced from both stores: the generations of both pin it.
      it->second.refs += slot.refs;
    }
  }
  for (const auto& [owner, gens] : other.generations_) {
    auto& mine = generations_[owner];
    for (const auto& [gen, rec] : gens) {
      if (mine.try_emplace(gen, rec).second) {
        stats_.live_logical_bytes += rec.logical_bytes;
      }
    }
  }
}

std::vector<int> Repository::live_generations(const std::string& owner) const {
  std::vector<int> out;
  auto it = generations_.find(owner);
  if (it == generations_.end()) return out;
  for (const auto& [gen, rec] : it->second) out.push_back(gen);
  return out;
}

}  // namespace dsim::ckptstore
