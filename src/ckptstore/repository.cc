#include "ckptstore/repository.h"

#include <algorithm>
#include <set>

#include "util/assertx.h"

namespace dsim::ckptstore {

const Chunk* Repository::find(const ChunkKey& key) const {
  auto it = chunks_.find(key);
  return it == chunks_.end() || it->second.quarantined ? nullptr
                                                       : &it->second.chunk;
}

Chunk* Repository::find_mutable(const ChunkKey& key) {
  auto it = chunks_.find(key);
  return it == chunks_.end() || it->second.quarantined ? nullptr
                                                       : &it->second.chunk;
}

std::vector<std::pair<ChunkKey, const Chunk*>> Repository::chunks_after(
    const ChunkKey& cursor, size_t n) const {
  std::vector<std::pair<ChunkKey, const Chunk*>> out;
  const size_t resident = chunks_.size() - static_cast<size_t>(quarantined_);
  const size_t take = std::min(n, resident);
  auto it = chunks_.upper_bound(cursor);
  while (out.size() < take) {
    if (it == chunks_.end()) it = chunks_.begin();
    if (!it->second.quarantined) {
      out.emplace_back(it->first, &it->second.chunk);
    }
    ++it;
  }
  return out;
}

std::vector<ChunkKey> Repository::cold_keys(int hot_generations) const {
  if (hot_generations <= 0) return {};
  return cold_keys(
      [hot_generations](const std::string&) { return hot_generations; });
}

std::vector<ChunkKey> Repository::cold_keys(
    const std::function<int(const std::string&)>& hot_for) const {
  // Hot set: every key pinned by one of the newest `hot_for(owner)` live
  // generations of that owner. The generation maps are keyed by gen
  // number, so the newest ones sit at the back. A chunk shared across
  // owners (or tenants) stays hot while *any* referencing owner's hot
  // window still covers it.
  std::set<ChunkKey> hot;
  for (const auto& [owner, gens] : generations_) {
    const int depth = hot_for(owner);
    if (depth <= 0) continue;
    int taken = 0;
    for (auto it = gens.rbegin(); it != gens.rend() && taken < depth;
         ++it, ++taken) {
      hot.insert(it->second.keys.begin(), it->second.keys.end());
    }
  }
  std::vector<ChunkKey> cold;
  for (const auto& [key, slot] : chunks_) {
    if (slot.quarantined) continue;
    if (!hot.contains(key)) cold.push_back(key);
  }
  return cold;
}

std::map<std::pair<std::string, std::string>, u64>
Repository::shared_bytes_by_group() const {
  std::map<std::pair<std::string, std::string>, u64> out;
  const auto group_of = [](const std::string& owner) {
    const size_t slash = owner.find('/');
    return slash == std::string::npos ? owner : owner.substr(0, slash);
  };
  for (const auto& [key, slot] : chunks_) {
    if (slot.quarantined) continue;
    std::set<std::string> groups;
    for (const auto& [owner, refs] : slot.owner_refs) {
      groups.insert(group_of(owner));
    }
    if (groups.size() < 2) continue;
    for (auto a = groups.begin(); a != groups.end(); ++a) {
      for (auto b = std::next(a); b != groups.end(); ++b) {
        out[{*a, *b}] += slot.chunk.charged_bytes;
      }
    }
  }
  return out;
}

bool Repository::put(const ChunkKey& key, Chunk chunk) {
  stats_.put_requests++;
  auto [it, inserted] = chunks_.try_emplace(key);
  if (!inserted && !it->second.quarantined) {
    stats_.dedup_hits++;
    return false;
  }
  if (!inserted) {
    // Forward re-store of a quarantined key: the fresh container replaces
    // the rotten one; refcount records carried through the quarantine.
    it->second.quarantined = false;
    quarantined_--;
  }
  it->second.chunk = std::move(chunk);
  stats_.live_chunks++;
  stats_.live_stored_bytes += it->second.chunk.charged_bytes;
  return true;
}

u64 Repository::quarantine(const ChunkKey& key) {
  auto it = chunks_.find(key);
  if (it == chunks_.end() || it->second.quarantined) return 0;
  it->second.quarantined = true;
  quarantined_++;
  stats_.live_chunks--;
  stats_.live_stored_bytes -= it->second.chunk.charged_bytes;
  return it->second.chunk.charged_bytes;
}

void Repository::add_owner_ref(Slot& slot, const std::string& owner) {
  slot.refs++;
  const bool was_shared = slot.owner_refs.size() > 1;
  slot.owner_refs[owner]++;
  if (!was_shared && slot.owner_refs.size() > 1) shared_chunks_++;
}

bool Repository::drop_owner_ref(Slot& slot, const std::string& owner) {
  const bool was_shared = slot.owner_refs.size() > 1;
  auto oit = slot.owner_refs.find(owner);
  DSIM_CHECK(oit != slot.owner_refs.end());
  if (--oit->second == 0) slot.owner_refs.erase(oit);
  if (was_shared && slot.owner_refs.size() <= 1) shared_chunks_--;
  return --slot.refs == 0;
}

void Repository::commit_generation(const std::string& owner, int gen,
                                   const std::vector<ChunkKey>& keys,
                                   u64 logical_bytes) {
  GenRec rec;
  rec.logical_bytes = logical_bytes;
  rec.keys = keys;
  std::sort(rec.keys.begin(), rec.keys.end());
  rec.keys.erase(std::unique(rec.keys.begin(), rec.keys.end()),
                 rec.keys.end());
  for (const auto& k : rec.keys) {
    auto it = chunks_.find(k);
    DSIM_CHECK_MSG(it != chunks_.end(),
                   "manifest references a chunk the repository never stored");
    add_owner_ref(it->second, owner);
  }
  stats_.live_logical_bytes += logical_bytes;
  auto [gi, fresh] = generations_[owner].try_emplace(gen, std::move(rec));
  DSIM_CHECK_MSG(fresh, "generation committed twice for one owner");
  (void)gi;
}

u64 Repository::release_generation(
    const std::string& owner, const GenRec& rec,
    std::vector<ReclaimedChunk>* reclaimed_out) {
  u64 reclaimed = 0;
  for (const auto& k : rec.keys) {
    auto it = chunks_.find(k);
    DSIM_CHECK(it != chunks_.end());
    if (drop_owner_ref(it->second, owner)) {
      if (it->second.quarantined) {
        // A quarantined container's bytes were reclaimed at quarantine
        // time; the last reference just releases the masked slot.
        quarantined_--;
      } else {
        reclaimed += it->second.chunk.charged_bytes;
        if (reclaimed_out) {
          reclaimed_out->push_back({k, it->second.chunk.charged_bytes});
        }
        stats_.live_chunks--;
        stats_.live_stored_bytes -= it->second.chunk.charged_bytes;
      }
      chunks_.erase(it);
    }
  }
  stats_.live_logical_bytes -= rec.logical_bytes;
  return reclaimed;
}

u64 Repository::collect_garbage(int keep,
                                std::vector<ReclaimedChunk>* reclaimed_out,
                                const std::string& owner_prefix) {
  DSIM_CHECK_MSG(keep >= 1, "retention must keep at least one generation");
  u64 reclaimed = 0;
  for (auto& [owner, gens] : generations_) {
    if (!owner_prefix.empty() && owner.rfind(owner_prefix, 0) != 0) continue;
    while (static_cast<int>(gens.size()) > keep) {
      auto oldest = gens.begin();  // map is gen-ordered
      reclaimed += release_generation(owner, oldest->second, reclaimed_out);
      gens.erase(oldest);
    }
  }
  stats_.reclaimed_bytes += reclaimed;
  return reclaimed;
}

u64 Repository::drop_owner(const std::string& owner,
                           std::vector<ReclaimedChunk>* reclaimed_out) {
  auto oit = generations_.find(owner);
  if (oit == generations_.end()) return 0;
  u64 reclaimed = 0;
  for (const auto& [gen, rec] : oit->second) {
    reclaimed += release_generation(owner, rec, reclaimed_out);
  }
  generations_.erase(oit);
  stats_.reclaimed_bytes += reclaimed;
  return reclaimed;
}

void Repository::absorb(const Repository& other) {
  // Refcounts are derived from the generation records actually inserted
  // (generations already present are skipped, and so are their refs), so
  // absorbing the same store twice — a round-trip migration — cannot
  // double-count. Chunks are pulled over lazily, only when an inserted
  // generation references them.
  for (const auto& [owner, gens] : other.generations_) {
    auto& mine = generations_[owner];
    for (const auto& [gen, rec] : gens) {
      if (!mine.try_emplace(gen, rec).second) continue;
      stats_.live_logical_bytes += rec.logical_bytes;
      for (const auto& k : rec.keys) {
        auto it = chunks_.find(k);
        if (it == chunks_.end()) {
          auto oit = other.chunks_.find(k);
          DSIM_CHECK(oit != other.chunks_.end());
          it = chunks_.try_emplace(k).first;
          it->second.chunk = oit->second.chunk;
          stats_.live_chunks++;
          stats_.live_stored_bytes += it->second.chunk.charged_bytes;
        }
        add_owner_ref(it->second, owner);
      }
    }
  }
}

std::vector<int> Repository::live_generations(const std::string& owner) const {
  std::vector<int> out;
  auto it = generations_.find(owner);
  if (it == generations_.end()) return out;
  for (const auto& [gen, rec] : it->second) out.push_back(gen);
  return out;
}

}  // namespace dsim::ckptstore
