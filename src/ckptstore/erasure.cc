#include "ckptstore/erasure.h"

#include <algorithm>
#include <array>
#include <map>

#include "sim/model_params.h"
#include "util/assertx.h"

namespace dsim::ckptstore::erasure {

namespace {

// GF(2^8) with the AES/ECC-standard primitive polynomial x^8+x^4+x^3+x^2+1
// (0x11D). exp table doubled so mul can skip the mod-255 reduction.
struct Field {
  std::array<u8, 512> exp{};
  std::array<u8, 256> log{};

  Field() {
    u16 x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[static_cast<size_t>(i)] = static_cast<u8>(x);
      log[x] = static_cast<u8>(i);
      x <<= 1;
      if (x & 0x100) x ^= 0x11D;
    }
    for (int i = 255; i < 512; ++i) {
      exp[static_cast<size_t>(i)] = exp[static_cast<size_t>(i - 255)];
    }
  }

  u8 mul(u8 a, u8 b) const {
    if (a == 0 || b == 0) return 0;
    return exp[static_cast<size_t>(log[a]) + static_cast<size_t>(log[b])];
  }
  u8 inv(u8 a) const {
    DSIM_CHECK_MSG(a != 0, "GF(2^8) inverse of zero");
    return exp[255 - static_cast<size_t>(log[a])];
  }
  u8 pow(u8 a, int e) const {
    if (e == 0) return 1;
    if (a == 0) return 0;
    return exp[(static_cast<size_t>(log[a]) * static_cast<size_t>(e)) % 255];
  }
};

const Field& gf() {
  static const Field f;
  return f;
}

using Matrix = std::vector<std::vector<u8>>;

/// Invert a square GF(2^8) matrix by Gauss-Jordan elimination. The matrices
/// here are k-row submatrices of the systematic encoding matrix, which the
/// Vandermonde construction guarantees are invertible.
Matrix invert(Matrix a) {
  const size_t n = a.size();
  Matrix inv(n, std::vector<u8>(n, 0));
  for (size_t i = 0; i < n; ++i) inv[i][i] = 1;
  const Field& f = gf();
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    while (pivot < n && a[pivot][col] == 0) ++pivot;
    DSIM_CHECK_MSG(pivot < n, "erasure decode matrix is singular");
    std::swap(a[pivot], a[col]);
    std::swap(inv[pivot], inv[col]);
    const u8 scale = f.inv(a[col][col]);
    for (size_t j = 0; j < n; ++j) {
      a[col][j] = f.mul(a[col][j], scale);
      inv[col][j] = f.mul(inv[col][j], scale);
    }
    for (size_t row = 0; row < n; ++row) {
      if (row == col || a[row][col] == 0) continue;
      const u8 factor = a[row][col];
      for (size_t j = 0; j < n; ++j) {
        a[row][j] = static_cast<u8>(a[row][j] ^ f.mul(factor, a[col][j]));
        inv[row][j] =
            static_cast<u8>(inv[row][j] ^ f.mul(factor, inv[col][j]));
      }
    }
  }
  return inv;
}

Matrix multiply(const Matrix& a, const Matrix& b) {
  const Field& f = gf();
  Matrix out(a.size(), std::vector<u8>(b[0].size(), 0));
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b[0].size(); ++j) {
      u8 acc = 0;
      for (size_t t = 0; t < b.size(); ++t) {
        acc = static_cast<u8>(acc ^ f.mul(a[i][t], b[t][j]));
      }
      out[i][j] = acc;
    }
  }
  return out;
}

/// The (k+m)×k systematic encoding matrix: Vandermonde over evaluation
/// points 0..k+m-1, column-reduced so the top k rows are the identity.
/// Column operations preserve the all-k-row-submatrices-invertible property
/// of the Vandermonde matrix, which is exactly what reconstruct() relies
/// on. Cached per (k, m) — the simulation is single-threaded.
const Matrix& encoding_matrix(int k, int m) {
  static std::map<std::pair<int, int>, Matrix> cache;
  auto [it, fresh] = cache.try_emplace({k, m});
  if (!fresh) return it->second;
  const Field& f = gf();
  const int rows = k + m;
  Matrix vand(static_cast<size_t>(rows), std::vector<u8>(
                                             static_cast<size_t>(k), 0));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < k; ++c) {
      // 0^0 == 1 here, so row 0 is [1, 0, ..., 0].
      vand[static_cast<size_t>(r)][static_cast<size_t>(c)] =
          c == 0 ? 1 : f.pow(static_cast<u8>(r), c);
    }
  }
  Matrix top(vand.begin(), vand.begin() + k);
  it->second = multiply(vand, invert(std::move(top)));
  return it->second;
}

}  // namespace

std::vector<std::vector<std::byte>> encode(std::span<const std::byte> data,
                                           int k, int m) {
  DSIM_CHECK_MSG(k >= 2 && m >= 1 && k + m <= 255,
                 "erasure profile must satisfy 2 <= k, 1 <= m, k+m <= 255");
  const u64 frag = fragment_bytes(data.size(), k);
  std::vector<std::vector<std::byte>> out(
      static_cast<size_t>(k + m), std::vector<std::byte>(frag, std::byte{0}));
  // Systematic data fragments: the container split k ways, zero-padded.
  for (u64 pos = 0; pos < data.size(); ++pos) {
    out[static_cast<size_t>(pos / frag)][static_cast<size_t>(pos % frag)] =
        data[pos];
  }
  const Matrix& e = encoding_matrix(k, m);
  const Field& f = gf();
  for (int j = 0; j < m; ++j) {
    const auto& row = e[static_cast<size_t>(k + j)];
    auto& parity = out[static_cast<size_t>(k + j)];
    for (u64 b = 0; b < frag; ++b) {
      u8 acc = 0;
      for (int i = 0; i < k; ++i) {
        acc = static_cast<u8>(
            acc ^ f.mul(row[static_cast<size_t>(i)],
                        static_cast<u8>(out[static_cast<size_t>(i)]
                                           [static_cast<size_t>(b)])));
      }
      parity[static_cast<size_t>(b)] = std::byte{acc};
    }
  }
  return out;
}

std::vector<std::byte> reconstruct(
    const std::vector<std::pair<int, std::vector<std::byte>>>& fragments,
    int k, int m, u64 orig_len) {
  if (fragments.size() < static_cast<size_t>(k)) return {};  // > m losses
  const u64 frag = fragment_bytes(orig_len, k);
  const Matrix& e = encoding_matrix(k, m);
  // Any k supplied fragments determine the data: gather their encoding
  // rows, invert, and multiply the fragment bytes back through.
  Matrix rows(static_cast<size_t>(k));
  std::vector<const std::vector<std::byte>*> shards(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    const auto& [idx, bytes] = fragments[static_cast<size_t>(i)];
    DSIM_CHECK_MSG(idx >= 0 && idx < k + m,
                   "erasure fragment index out of range");
    DSIM_CHECK_MSG(bytes.size() == frag,
                   "erasure fragment length mismatch");
    rows[static_cast<size_t>(i)] = e[static_cast<size_t>(idx)];
    shards[static_cast<size_t>(i)] = &bytes;
  }
  const Matrix dec = invert(std::move(rows));
  const Field& f = gf();
  std::vector<std::byte> out(orig_len);
  for (int d = 0; d < k; ++d) {
    const auto& row = dec[static_cast<size_t>(d)];
    const u64 base = static_cast<u64>(d) * frag;
    if (base >= orig_len) break;
    const u64 take = std::min(frag, orig_len - base);
    for (u64 b = 0; b < take; ++b) {
      u8 acc = 0;
      for (int i = 0; i < k; ++i) {
        acc = static_cast<u8>(
            acc ^ f.mul(row[static_cast<size_t>(i)],
                        static_cast<u8>((*shards[static_cast<size_t>(i)])
                                            [static_cast<size_t>(b)])));
      }
      out[static_cast<size_t>(base + b)] = std::byte{acc};
    }
  }
  return out;
}

double encode_seconds(u64 bytes, int k, int m) {
  return static_cast<double>(bytes) * static_cast<double>(m) /
         static_cast<double>(k) / sim::params::kErasureBw;
}

double decode_seconds(u64 bytes) {
  return static_cast<double>(bytes) / sim::params::kErasureBw;
}

}  // namespace dsim::ckptstore::erasure
