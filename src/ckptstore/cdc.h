// Content-defined chunking (CDC) for the checkpoint store.
//
// Fixed-size chunking loses dedup the moment an insertion shifts bytes
// across a chunk boundary: every downstream chunk re-hashes to a new key
// even though the content is 99% identical. CDC places chunk boundaries by
// *content* instead — a rolling (gear/buzhash-style) hash over a small
// sliding window cuts wherever the hash's low bits are zero — so after an
// insertion the cutpoints resynchronize at the next content-determined
// boundary and only O(1) chunks change (LBFS/stdchk's observation, applied
// to DMTCP images).
//
// The sparse ByteImage representation is preserved: pattern extents (zero
// or pseudo-random ballast) large enough to stand alone are cut exactly at
// their extent boundaries and emitted as descriptor spans without ever
// materializing; the rolling hash only runs over real/mixed byte runs.
#pragma once

#include <string>
#include <vector>

#include "ckptstore/chunk.h"
#include "util/serialize.h"
#include "util/types.h"

namespace dsim::ckptstore {

/// How a segment is split into chunks.
enum class ChunkingMode : u8 {
  kFixed = 0,    // chunk_bytes-sized spans (PR-1 behavior)
  kCdc = 1,      // variable-size content-defined spans
  kFastCdc = 2,  // FastCDC-style normalized CDC: two gear masks around the
                 // target size tighten the chunk-size distribution
};

/// The full chunking configuration a manifest records and the encoder
/// consumes. Fixed mode uses `fixed_bytes`; CDC mode uses the
/// min/avg/max triple (avg must be a power of two — it becomes the
/// cutpoint mask).
struct ChunkingParams {
  ChunkingMode mode = ChunkingMode::kFixed;
  u64 fixed_bytes = 64 * 1024;
  u64 min_bytes = 16 * 1024;
  u64 avg_bytes = 64 * 1024;
  u64 max_bytes = 256 * 1024;

  void serialize(ByteWriter& w) const {
    w.put_u8(static_cast<u8>(mode));
    w.put_u64(fixed_bytes);
    w.put_u64(min_bytes);
    w.put_u64(avg_bytes);
    w.put_u64(max_bytes);
  }
  static ChunkingParams deserialize(ByteReader& r) {
    ChunkingParams p;
    p.mode = static_cast<ChunkingMode>(r.get_u8());
    p.fixed_bytes = r.get_u64();
    p.min_bytes = r.get_u64();
    p.avg_bytes = r.get_u64();
    p.max_bytes = r.get_u64();
    return p;
  }
};

/// Split `img` into content-defined chunk spans. Pattern extents of at
/// least `min_bytes` become descriptor spans cut at `max_bytes` (the last
/// span of each pattern run may be short); real or mixed runs are
/// materialized in bounded windows and cut by the rolling hash, with
/// every span in [min_bytes, max_bytes] except each run's final tail,
/// which may be shorter than `min_bytes` — including mid-image, wherever
/// a real run ends at a pattern-extent boundary. Aborts (DSIM_CHECK) on
/// inconsistent params; user-facing validation lives in
/// core::validate_chunking.
///
/// kFastCdc normalizes the size distribution with two masks around the
/// target (FastCDC's NC-2 scheme): before `avg_bytes` a *stricter* mask
/// (avg*4 - 1, two extra bits) makes cuts rare, after it a *looser* mask
/// (avg/4 - 1) makes them likely, squeezing spans toward avg without
/// losing content-determinism — cutpoints still resynchronize after an
/// insertion because both masks depend only on window content and span
/// length relative to the last cut.
std::vector<ChunkSpan> scan_chunks_cdc(const sim::ByteImage& img,
                                       const ChunkingParams& p);

/// Dispatch on `p.mode` (fixed → scan_chunks, cdc/fastcdc →
/// scan_chunks_cdc).
std::vector<ChunkSpan> scan_chunks_with(const sim::ByteImage& img,
                                        const ChunkingParams& p);

}  // namespace dsim::ckptstore
