// Reed-Solomon (k,m) erasure coding over GF(2^8) for the chunk store.
//
// A stored chunk container is striped into k data fragments plus m parity
// fragments (systematic: the first k fragments are the container split in
// order, so a healthy read concatenates them without touching the field
// arithmetic). Any k of the k+m fragments reconstruct the container — the
// store survives m simultaneous fragment losses at (k+m)/k byte overhead,
// versus R× for R-way replication at R-1 loss tolerance.
//
// The construction is the classic Vandermonde-derived systematic matrix:
// build the (k+m)×k Vandermonde matrix over distinct evaluation points,
// multiply by the inverse of its top k×k block so the data rows become the
// identity, and keep the property that *every* k-row submatrix is
// invertible (column operations preserve it). Decode gathers any k
// fragment rows, inverts that k×k submatrix by Gauss-Jordan elimination in
// the field, and multiplies the surviving fragments back through it.
//
// Cost model: encode charges parity output (m/k input ratio) and decode
// charges one pass over the container, both at sim::params::kErasureBw —
// table-lookup arithmetic, an order of magnitude faster than the gzip-class
// kCompressBw but visible on the restart critical path when data fragments
// are missing.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "util/types.h"

namespace dsim::ckptstore::erasure {

/// Bytes per fragment for a `len`-byte container striped k ways (the last
/// data fragment is zero-padded up to this).
inline u64 fragment_bytes(u64 len, int k) {
  return (len + static_cast<u64>(k) - 1) / static_cast<u64>(k);
}

/// Stripe `data` into k data + m parity fragments, each
/// fragment_bytes(data.size(), k) long. Fragment i < k is the i-th k-way
/// split of the input (systematic); fragments k..k+m-1 are parity.
/// Requires 2 <= k, 1 <= m, k + m <= 255.
std::vector<std::vector<std::byte>> encode(std::span<const std::byte> data,
                                           int k, int m);

/// Reconstruct the original `orig_len`-byte container from any >= k
/// fragments, given as (fragment index, fragment bytes) pairs. Returns the
/// container, or an empty vector when fewer than k fragments were supplied
/// (the unrecoverable > m losses case).
std::vector<std::byte> reconstruct(
    const std::vector<std::pair<int, std::vector<std::byte>>>& fragments,
    int k, int m, u64 orig_len);

/// CPU seconds to encode a `bytes`-long container: the parity rows are the
/// work (m output bytes per k input bytes), priced at kErasureBw.
double encode_seconds(u64 bytes, int k, int m);

/// CPU seconds to decode a `bytes`-long container when at least one *data*
/// fragment is missing (one matrix-multiply pass over the container).
/// Healthy systematic reads cost nothing — the data fragments concatenate.
double decode_seconds(u64 bytes);

}  // namespace dsim::ckptstore::erasure
