// Content-addressed chunks for incremental checkpointing.
//
// A checkpoint segment is split into fixed-size chunks; each chunk is keyed
// by a 128-bit content hash. Successive checkpoints of a long-running job
// are mostly identical, so a generation only stores the chunks not already
// resident in the repository (stdchk's observation, applied to DMTCP's
// image format).
//
// The sparse ByteImage representation is preserved end to end: a chunk that
// falls entirely inside a zero or pseudo-random pattern extent is keyed and
// stored as a descriptor — no materialization of Fig.-6-scale ballast — while
// real and mixed ranges are materialized and hashed by content.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "compress/compressor.h"
#include "sim/byte_image.h"
#include "util/serialize.h"
#include "util/types.h"

namespace dsim::ckptstore {

/// 128-bit content address. Pattern chunks use tagged synthetic keys
/// (identical pattern ranges dedup against each other but never collide
/// with real-content hashes).
struct ChunkKey {
  u64 hi = 0;
  u64 lo = 0;

  bool operator==(const ChunkKey& o) const { return hi == o.hi && lo == o.lo; }
  bool operator<(const ChunkKey& o) const {
    return hi != o.hi ? hi < o.hi : lo < o.lo;
  }
  std::string str() const;

  void serialize(ByteWriter& w) const {
    w.put_u64(hi);
    w.put_u64(lo);
  }
  static ChunkKey deserialize(ByteReader& r) {
    ChunkKey k;
    k.hi = r.get_u64();
    k.lo = r.get_u64();
    return k;
  }
};

/// Hash real content into a key.
ChunkKey content_key(std::span<const std::byte> data);
/// Synthetic key for an all-zero chunk of `len` bytes.
ChunkKey zero_key(u64 len);
/// Synthetic key for a pseudo-random pattern chunk: content is
/// ByteImage::rand_byte(seed, pos..pos+len), so (seed, pos, len) determines
/// the bytes exactly.
ChunkKey rand_key(u64 seed, u64 pos, u64 len);

/// Reference to one chunk inside a manifest: enough to fetch the chunk from
/// the repository and verify its content on restart.
struct ChunkRef {
  ChunkKey key;
  u64 len = 0;
  u32 crc = 0;  // CRC-32 of the (virtual) chunk content

  void serialize(ByteWriter& w) const {
    key.serialize(w);
    w.put_u64(len);
    w.put_u32(crc);
  }
  static ChunkRef deserialize(ByteReader& r) {
    ChunkRef c;
    c.key = ChunkKey::deserialize(r);
    c.len = r.get_u64();
    c.crc = r.get_u32();
    return c;
  }
};

/// A chunk as resident in the repository. Real chunks carry a codec
/// container (compressed once at first store, reused by every later
/// generation referencing the same key); pattern chunks carry only their
/// descriptor, with the device cost estimated from measured codec ratios
/// the same way the full-image encoder charges ballast extents.
struct Chunk {
  sim::ExtentKind kind = sim::ExtentKind::kReal;
  u64 len = 0;
  u64 seed = 0;  // kRand
  u64 pos = 0;   // kRand: segment offset the content was generated at
  u32 crc = 0;   // CRC-32 of the virtual content
  /// Bytes charged to the storage device when this chunk is first written
  /// (container size for real chunks, estimated compressed size for
  /// pattern chunks).
  u64 charged_bytes = 0;
  /// Real chunks only: the codec container holding the content.
  std::shared_ptr<const std::vector<std::byte>> stored;

  /// Materialize the full virtual content (decompresses real chunks,
  /// synthesizes pattern chunks).
  std::vector<std::byte> materialize(compress::CodecKind codec) const;
};

/// One chunk-to-be of a segment scan, before repository lookup. `kind` is a
/// pattern kind only when the chunk lies entirely inside one pattern
/// extent; mixed or real ranges report kReal and are materialized.
struct ChunkSpan {
  u64 off = 0;
  u64 len = 0;
  sim::ExtentKind kind = sim::ExtentKind::kReal;
  u64 seed = 0;
};

/// Split `img` into fixed-size chunk spans (the last one may be short).
/// `chunk_bytes` must be a non-zero power of two.
std::vector<ChunkSpan> scan_chunks(const sim::ByteImage& img, u64 chunk_bytes);

/// Key for a scanned span (cheap for pattern spans; materializes and hashes
/// real/mixed spans).
ChunkKey span_key(const sim::ByteImage& img, const ChunkSpan& s);

/// CRC-32 of a span's virtual content (cached for zero spans).
u32 span_crc(const sim::ByteImage& img, const ChunkSpan& s);

}  // namespace dsim::ckptstore
