#include "ckptstore/chunk.h"

#include <algorithm>
#include <map>

#include "util/assertx.h"
#include "util/crc32.h"
#include "util/rng.h"

namespace dsim::ckptstore {
namespace {

// Tags keep synthetic pattern keys out of the content-hash key space.
constexpr u64 kZeroTag = 0x5A45524F434B5A00ull;  // "ZEROCKZ"
constexpr u64 kRandTag = 0x52414E44434B5200ull;  // "RANDCKR"

u64 fnv1a64(std::span<const std::byte> data, u64 h) {
  constexpr u64 kPrime = 0x100000001B3ull;
  for (std::byte b : data) {
    h ^= static_cast<u64>(b);
    h *= kPrime;
  }
  return h;
}

}  // namespace

std::string ChunkKey::str() const {
  char buf[36];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

ChunkKey content_key(std::span<const std::byte> data) {
  // Two independently-seeded FNV-1a streams form the 128-bit address.
  ChunkKey k;
  k.hi = fnv1a64(data, 0xCBF29CE484222325ull);
  k.lo = fnv1a64(data, 0x84222325CBF29CE4ull) ^ mix64(data.size());
  return k;
}

ChunkKey zero_key(u64 len) { return ChunkKey{kZeroTag, mix64(len)}; }

ChunkKey rand_key(u64 seed, u64 pos, u64 len) {
  return ChunkKey{kRandTag ^ mix64(seed),
                  mix64(pos) ^ mix64(mix64(len) ^ seed)};
}

std::vector<std::byte> Chunk::materialize(compress::CodecKind codec) const {
  switch (kind) {
    case sim::ExtentKind::kZero:
      return std::vector<std::byte>(len);
    case sim::ExtentKind::kRand: {
      std::vector<std::byte> out(len);
      for (u64 i = 0; i < len; ++i) {
        out[i] = static_cast<std::byte>(sim::ByteImage::rand_byte(seed,
                                                                  pos + i));
      }
      return out;
    }
    case sim::ExtentKind::kReal: {
      DSIM_CHECK_MSG(stored != nullptr, "real chunk has no stored container");
      return compress::codec(codec).decompress(*stored);
    }
  }
  DSIM_UNREACHABLE("bad chunk kind");
}

std::vector<ChunkSpan> scan_chunks(const sim::ByteImage& img,
                                   u64 chunk_bytes) {
  DSIM_CHECK_MSG(chunk_bytes > 0 && (chunk_bytes & (chunk_bytes - 1)) == 0,
                 "chunk size must be a non-zero power of two");
  struct ExtView {
    u64 off, len;
    sim::ExtentKind kind;
    u64 seed;
  };
  std::vector<ExtView> exts;
  img.for_each_extent([&](u64 off, const sim::ByteImage::Extent& e) {
    exts.push_back({off, e.len, e.kind, e.seed});
  });

  std::vector<ChunkSpan> out;
  out.reserve((img.size() + chunk_bytes - 1) / chunk_bytes);
  size_t ei = 0;
  for (u64 off = 0; off < img.size(); off += chunk_bytes) {
    ChunkSpan s;
    s.off = off;
    s.len = std::min<u64>(chunk_bytes, img.size() - off);
    while (ei < exts.size() && exts[ei].off + exts[ei].len <= off) ++ei;
    if (ei < exts.size() && exts[ei].kind != sim::ExtentKind::kReal &&
        exts[ei].off <= off &&
        off + s.len <= exts[ei].off + exts[ei].len) {
      s.kind = exts[ei].kind;  // pure pattern chunk: no materialization
      s.seed = exts[ei].seed;
    }
    out.push_back(s);
  }
  return out;
}

ChunkKey span_key(const sim::ByteImage& img, const ChunkSpan& s) {
  switch (s.kind) {
    case sim::ExtentKind::kZero:
      return zero_key(s.len);
    case sim::ExtentKind::kRand:
      return rand_key(s.seed, s.off, s.len);
    case sim::ExtentKind::kReal:
      return content_key(img.materialize(s.off, s.len));
  }
  DSIM_UNREACHABLE("bad span kind");
}

u32 span_crc(const sim::ByteImage& img, const ChunkSpan& s) {
  if (s.kind == sim::ExtentKind::kZero) {
    static std::map<u64, u32> cache;  // one all-zero buffer per chunk size
    auto it = cache.find(s.len);
    if (it == cache.end()) {
      std::vector<std::byte> zeros(s.len);
      it = cache.emplace(s.len, crc32(zeros)).first;
    }
    return it->second;
  }
  return crc32(img.materialize(s.off, s.len));
}

}  // namespace dsim::ckptstore
