#include "ckptstore/service.h"

#include <algorithm>
#include <map>

#include "ckptstore/erasure.h"
#include "obs/trace.h"
#include "sim/model_params.h"
#include "util/assertx.h"
#include "util/crc32.h"
#include "util/logging.h"
#include "util/rng.h"

namespace dsim::ckptstore {

namespace params = sim::params;

ChunkStoreService::ChunkStoreService(sim::EventLoop& loop, sim::Network& net,
                                     int replicas, int shards,
                                     int lookup_batch, ErasureConfig erasure)
    : loop_(loop),
      net_(net),
      health_(std::make_shared<rpc::NodeHealth>(net.num_nodes())),
      fabric_(loop, net, health_),
      lookup_batch_(lookup_batch),
      erasure_(erasure),
      repo_(std::make_shared<Repository>()),
      placement_(net.num_nodes(), replicas) {
  DSIM_CHECK_MSG(shards >= 1, "chunk-store service needs at least one shard");
  DSIM_CHECK_MSG(lookup_batch >= 1,
                 "lookup batch must carry at least one key per RPC");
  if (erasure_.enabled()) {
    placement_.enable_erasure(erasure_.k, erasure_.m);
    if (erasure_.cold_enabled()) {
      placement_.set_cold_profile(erasure_.cold_k, erasure_.cold_m);
    }
  }
  shards_.reserve(static_cast<size_t>(shards));
  endpoints_.reserve(static_cast<size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    auto q = std::make_shared<IndexQueue>();
    q->dev = std::make_shared<sim::StorageDevice>(
        loop, "chunkstore" + std::to_string(s), params::kStoreServiceBw,
        params::kStoreServiceLatency);
    shards_.push_back(Shard{std::move(q), {}});
    // Default spread until the coordinator assigns real endpoints.
    endpoints_.push_back(static_cast<NodeId>(s % net.num_nodes()));
  }
}

void ChunkStoreService::set_endpoints(std::vector<NodeId> nodes) {
  DSIM_CHECK_MSG(nodes.size() == shards_.size(),
                 "endpoint assignment must name one node per shard");
  for (NodeId n : nodes) {
    DSIM_CHECK_MSG(n >= 0 && n < net_.num_nodes(),
                   "shard endpoint names a node outside the cluster");
  }
  endpoints_ = std::move(nodes);
  assigned_endpoints_ = endpoints_;
}

int ChunkStoreService::rehome_to_owners() {
  if (assigned_endpoints_.size() != shards_.size()) return 0;  // never set
  int moved = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const NodeId owner = assigned_endpoints_[s];
    if (endpoints_[s] == owner || !health_->up(owner)) continue;
    LOG_INFO("chunk store: shard %zu re-homed back from node %d to revived "
             "owner node %d",
             s, endpoints_[s], owner);
    endpoints_[s] = owner;
    stats_.rehomed_back_shards++;
    ++moved;
    // Anything parked against the interim endpoint replays at the owner.
    auto parked = std::move(shards_[s].parked);
    shards_[s].parked.clear();
    for (auto& req : parked) {
      stats_.replayed_requests++;
      shard_call(static_cast<int>(s), std::move(req));
    }
  }
  return moved;
}

int ChunkStoreService::shard_of_n(const ChunkKey& key, int shards) {
  // Rendezvous over shard ids, exactly like node placement: the winning
  // shard for a key never changes while the shard count holds, keys spread
  // uniformly for any key structure (full avalanche per input), and a
  // shard-count change reassigns exactly the keys whose winner changed.
  int best = 0;
  u64 best_score = 0;
  for (int s = 0; s < shards; ++s) {
    const u64 score =
        mix64(key.hi ^ mix64(key.lo ^ mix64(0xC4A6u + static_cast<u64>(s))));
    if (s == 0 || score > best_score) {
      best_score = score;
      best = s;
    }
  }
  return best;
}

std::shared_ptr<ChunkStoreService::ShardRequest>
ChunkStoreService::make_request(NodeId from, u64 request_bytes,
                                u64 response_bytes,
                                rpc::RpcFabric::Handler serve,
                                std::function<void()> done) {
  auto req = std::make_shared<ShardRequest>();
  req->from = from;
  req->request_bytes = request_bytes;
  req->response_bytes = response_bytes;
  req->serve = std::move(serve);
  req->done = std::move(done);
  return req;
}

void ChunkStoreService::enqueue_index(std::shared_ptr<IndexQueue> q,
                                      TenantId tenant, QosClass qos, u64 cost,
                                      std::function<void()> run,
                                      obs::TraceContext tctx) {
  // The fq_wait span covers push -> dispatch: zero-length when fair
  // queueing is off or the device is free, the DRR hold otherwise.
  obs::Tracer* tr = loop_.tracer();
  const u64 fq_span =
      (tr && tctx.trace_id)
          ? tr->begin("store.fq_wait", obs::kServicePid,
                      q->dev->name() + "/queue", loop_.now(), tctx)
          : 0;
  auto wrapped = [this, fq_span, run = std::move(run)]() mutable {
    if (fq_span) {
      if (obs::Tracer* t = loop_.tracer()) t->end(fq_span, loop_.now());
    }
    run();
  };
  if (!fair_queueing_) {
    // Arrival FIFO: hand the work straight to the device queue, exactly
    // the pre-multi-tenant discipline (the bench_tenants ablation arm).
    wrapped();
    return;
  }
  q->fq.push(qos, tenant, tenants_.weight(tenant),
             FairQueue::Item{cost, std::move(wrapped)});
  pump_queue(std::move(q));
}

void ChunkStoreService::pump_queue(std::shared_ptr<IndexQueue> q) {
  // Dispatch while the device is free. Each dispatched item submits into
  // the device and advances its busy_until, so exactly one item is in
  // service at a time and everything else waits *in the FairQueue*, where
  // a late-arriving restart-band probe can still overtake a queued
  // checkpoint storm. With unchanged dispatch order this is
  // timing-identical to direct FIFO submission: submitting at busy_until
  // or earlier lands the same max(now, busy_until) + service chain.
  while (!q->fq.empty() && q->dev->busy_until() <= loop_.now()) {
    FairQueue::Item item = q->fq.pop();
    item.run();
  }
  if (!q->fq.empty() && !q->pump_scheduled) {
    q->pump_scheduled = true;
    loop_.post_at(q->dev->busy_until(), [this, q] {
      q->pump_scheduled = false;
      pump_queue(q);
    });
  }
}

rpc::RpcFabric::Handler ChunkStoreService::index_serve(int shard,
                                                       bool is_read,
                                                       TenantId tenant,
                                                       QosClass qos,
                                                       obs::TraceContext tctx) {
  return [this, q = shards_[static_cast<size_t>(shard)].q, is_read, tenant,
          qos, tctx](rpc::RpcFabric::Reply reply) {
    enqueue_index(
        q, tenant, qos, params::kStoreLookupBytes,
        [this, q, is_read, tctx, reply = std::move(reply)]() mutable {
          obs::Tracer* tr = loop_.tracer();
          const u64 sp = (tr && tctx.trace_id)
                             ? tr->begin("store.index", obs::kServicePid,
                                         q->dev->name(), loop_.now(), tctx)
                             : 0;
          q->dev->submit(params::kStoreLookupBytes,
                         [this, sp, reply = std::move(reply)]() mutable {
                           if (sp) {
                             if (obs::Tracer* t = loop_.tracer()) {
                               t->end(sp, loop_.now());
                             }
                           }
                           reply();
                         },
                         is_read);
        },
        tctx);
  };
}

void ChunkStoreService::shard_call(int shard,
                                   std::shared_ptr<ShardRequest> req) {
  fabric_.call(
      req->from, endpoint_of(shard), req->request_bytes, req->response_bytes,
      [req](rpc::RpcFabric::Reply reply) { req->serve(std::move(reply)); },
      [req] { req->done(); },
      [this, shard, req] { park(shard, std::move(req)); }, req->trace);
}

void ChunkStoreService::park(int shard, std::shared_ptr<ShardRequest> req) {
  // A request can only fail against a shard that still exists: rebalance
  // requires live endpoints at start and asserts nothing is parked, so a
  // stale index here means those preconditions were violated.
  DSIM_CHECK_MSG(shard >= 0 && shard < num_shards(),
                 "request failed against a shard that was rebalanced away");
  stats_.parked_requests++;
  if (health_->up(endpoint_of(shard))) {
    // The shard was already re-homed while this attempt was failing in
    // flight: replay straight against the live endpoint.
    stats_.replayed_requests++;
    loop_.post_now(
        [this, shard, req = std::move(req)] { shard_call(shard, req); });
    return;
  }
  shards_[static_cast<size_t>(shard)].parked.push_back(std::move(req));
}

NodeId ChunkStoreService::pick_endpoint(int shard) const {
  // Next live node in the shard's rendezvous order: independent uniform
  // scores per (shard, node), highest live scorer wins — stable (a death
  // promotes only the next-best scorer for the affected shards) and
  // deterministic across runs.
  i32 best = -1;
  u64 best_score = 0;
  for (NodeId n = 0; n < net_.num_nodes(); ++n) {
    if (!health_->up(n)) continue;
    const u64 score =
        mix64(0xE19D ^ mix64(static_cast<u64>(shard) ^
                             mix64(0x5EED ^ static_cast<u64>(n))));
    if (best < 0 || score > best_score) {
      best_score = score;
      best = n;
    }
  }
  DSIM_CHECK_MSG(best >= 0, "no live node left to host a shard endpoint");
  return best;
}

StoreReply ChunkStoreService::submit(StoreRequest req) {
  switch (req.op) {
    case StoreOp::kLookup:
      do_lookups(std::move(req));
      return {};
    case StoreOp::kStore:
    case StoreOp::kRestore:
      return do_store(std::move(req));
    case StoreOp::kFetch:
      do_fetch(std::move(req));
      return {};
    case StoreOp::kDrop:
      do_drop(std::move(req));
      return {};
  }
  DSIM_CHECK_MSG(false, "unknown StoreOp");
  return {};
}

void ChunkStoreService::do_lookups(StoreRequest req) {
  if (req.keys.empty()) {
    if (req.done) loop_.post_now(std::move(req.done));
    return;
  }
  stats_.lookup_requests += req.keys.size();
  tenants_.stats(req.tenant).lookups += req.keys.size();
  // Route keys to their shards in submit order, then cut each shard's run
  // into batches of at most lookup_batch_ keys — one RPC per batch, one
  // queue probe's occupancy per key. A rank's batches interleave with every
  // other rank's at the shard scheduler, and each batch records the full
  // submit -> response wait for each of its keys.
  std::vector<std::vector<ChunkKey>> routed(shards_.size());
  for (const ChunkKey& key : req.keys) {
    routed[static_cast<size_t>(shard_of(key))].push_back(key);
  }
  auto remaining = std::make_shared<u64>(req.keys.size());
  auto all_done =
      std::make_shared<std::function<void()>>(std::move(req.done));
  const TenantId tenant = req.tenant;
  const QosClass qos = req.qos;
  for (size_t s = 0; s < routed.size(); ++s) {
    const auto& run = routed[s];
    for (size_t at = 0; at < run.size(); at += static_cast<size_t>(
                                             lookup_batch_)) {
      const u64 n = std::min<u64>(static_cast<u64>(lookup_batch_),
                                  run.size() - at);
      stats_.lookup_batches++;
      const SimTime submitted = loop_.now();
      auto sreq = std::make_shared<ShardRequest>();
      sreq->from = req.from;
      sreq->request_bytes =
          params::kRpcHeaderBytes + n * params::kRpcLookupKeyBytes;
      sreq->response_bytes =
          params::kRpcHeaderBytes + n * params::kRpcLookupVerdictBytes;
      // One trace per batch, rooted on the caller's "requests" lane and
      // weighted by the batch's key count so stage stats stay per-key.
      obs::Tracer* tr = loop_.tracer();
      u64 root = 0;
      obs::TraceContext tctx;
      if (tr) {
        tctx.trace_id = tr->new_trace();
        tctx.tenant = tenant;
        tctx.qos = static_cast<u8>(qos);
        tctx.op = static_cast<u8>(StoreOp::kLookup);
        root = tr->begin("store.lookup", req.from, "requests", submitted,
                         tctx, n);
        tctx.parent_span = root;
        sreq->trace = tctx;
      }
      sreq->serve = [this, q = shards_[s].q, n, tenant, qos,
                     tctx](rpc::RpcFabric::Reply reply) {
        // The batch's probes occupy the shard queue back to back; the
        // response leaves when the last probe is served.
        enqueue_index(
            q, tenant, qos, n * params::kStoreLookupBytes,
            [this, q, n, tctx, reply = std::move(reply)]() mutable {
              obs::Tracer* t0 = loop_.tracer();
              const u64 sp =
                  (t0 && tctx.trace_id)
                      ? t0->begin("store.index", obs::kServicePid,
                                  q->dev->name(), loop_.now(), tctx, n)
                      : 0;
              q->dev->submit(n * params::kStoreLookupBytes,
                             [this, sp, reply = std::move(reply)]() mutable {
                               if (sp) {
                                 if (obs::Tracer* t = loop_.tracer()) {
                                   t->end(sp, loop_.now());
                                 }
                               }
                               reply();
                             },
                             /*is_read=*/true);
            },
            tctx);
      };
      sreq->done = [this, submitted, n, tenant, root, remaining, all_done] {
        const double wait = to_seconds(loop_.now() - submitted);
        stats_.lookup_wait.record_n(wait, n);
        tenants_.stats(tenant).wait.record_n(wait, n);
        if (root) {
          if (obs::Tracer* t = loop_.tracer()) t->end(root, loop_.now());
        }
        if ((*remaining -= n) == 0 && *all_done) (*all_done)();
      };
      shard_call(static_cast<int>(s), std::move(sreq));
    }
  }
}

void ChunkStoreService::queue_store(NodeId from, TenantId tenant,
                                    QosClass qos, const ChunkKey& key,
                                    u64 charged_bytes,
                                    std::function<void()> done,
                                    obs::TraceContext tctx) {
  stats_.store_requests++;
  stats_.store_bytes += charged_bytes;
  const int s = shard_of(key);
  // The chunk travels to the shard in the request (caller NIC); the shard
  // does an index insert's worth of queue work and acks. The payload's
  // physical writes land on the placement homes' node devices, charged by
  // the caller against the homes the StoreReply returns — the shard queue
  // is the metadata path, so store bursts do not stall other ranks' probes
  // beyond their index share. Under erasure the wire carries all k+m
  // fragments — the (k+m)/k parity overhead is paid in NIC egress as well
  // as device bytes.
  const u64 wire_bytes =
      erasure_.enabled()
          ? erasure::fragment_bytes(charged_bytes, erasure_.k) *
                static_cast<u64>(erasure_.k + erasure_.m)
          : charged_bytes;
  auto sreq =
      make_request(from, params::kRpcHeaderBytes + wire_bytes,
                   params::kRpcHeaderBytes,
                   index_serve(s, /*is_read=*/false, tenant, qos, tctx),
                   std::move(done));
  sreq->trace = tctx;
  shard_call(s, std::move(sreq));
}

std::vector<StoreTarget> ChunkStoreService::store_targets(
    const ChunkKey& key, const std::vector<NodeId>& homes) {
  if (homes.empty()) return {};
  const u64 per_home = placement_.home_charge(key);
  std::vector<StoreTarget> out;
  out.reserve(homes.size());
  for (NodeId n : homes) out.push_back({n, per_home});
  return out;
}

StoreReply ChunkStoreService::do_store(StoreRequest req) {
  DSIM_CHECK_MSG(req.keys.size() == 1,
                 "a store request carries exactly one chunk key");
  const ChunkKey key = req.keys.front();
  const u64 bytes = req.bytes;
  const TenantId tenant = req.tenant;
  // Placement is synchronous — the caller charges the returned targets
  // concurrently with the index RPC — and admission control only defers
  // the RPC dispatch at the tenant edge.
  StoreReply reply;
  reply.targets = store_targets(
      key, req.op == StoreOp::kStore ? placement_.record_store(key, bytes)
                                     : placement_.re_place(key));
  TenantStats& ts = tenants_.stats(tenant);
  ts.stores++;
  ts.store_bytes += bytes;
  // Root span per store, on the caller's request lane; closes at the shard
  // ack. The admission hold (if any) becomes the first child stage.
  obs::Tracer* tr = loop_.tracer();
  u64 root = 0;
  obs::TraceContext tctx = req.trace;
  if (tr && tctx.trace_id == 0) {
    tctx.trace_id = tr->new_trace();
    tctx.tenant = tenant;
    tctx.qos = static_cast<u8>(req.qos);
    tctx.op = static_cast<u8>(req.op);
  }
  if (tr && tctx.parent_span == 0 && tctx.trace_id != 0) {
    root = tr->begin("store.store", req.from, "requests", loop_.now(), tctx);
    tctx.parent_span = root;
  }
  // Store completions drain the tenant's edge queue (and budget).
  auto done = [this, tenant, bytes, root,
               inner = std::move(req.done)]() mutable {
    TenantEdge& e = edges_[tenant];
    DSIM_CHECK(e.inflight_bytes >= bytes);
    e.inflight_bytes -= bytes;
    if (root) {
      if (obs::Tracer* t = loop_.tracer()) t->end(root, loop_.now());
    }
    if (inner) inner();
    drain_edge(tenant);
  };
  TenantEdge& edge = edges_[tenant];
  const u64 budget = tenants_.config(tenant).inflight_budget_bytes;
  // Hold at the edge only when something is already in flight: a single
  // store larger than the whole budget must still be admitted, or the
  // tenant deadlocks.
  if (budget > 0 && (edge.inflight_bytes > 0 || !edge.held.empty()) &&
      edge.inflight_bytes + bytes > budget) {
    reply.admitted = false;
    ts.admission_held++;
    stats_.admission_held_requests++;
    const u64 adm_span =
        (tr && tctx.trace_id)
            ? tr->begin("store.admission", req.from, "admission",
                        loop_.now(), tctx)
            : 0;
    edge.held.push_back(TenantEdge::Held{
        bytes, loop_.now(),
        [this, from = req.from, tenant, qos = req.qos, key, bytes, adm_span,
         tctx, done = std::move(done)]() mutable {
          if (adm_span) {
            if (obs::Tracer* t = loop_.tracer()) t->end(adm_span, loop_.now());
          }
          queue_store(from, tenant, qos, key, bytes, std::move(done), tctx);
        }});
    return reply;
  }
  edge.inflight_bytes += bytes;
  queue_store(req.from, tenant, req.qos, key, bytes, std::move(done), tctx);
  return reply;
}

void ChunkStoreService::drain_edge(TenantId tenant) {
  TenantEdge& e = edges_[tenant];
  const u64 budget = tenants_.config(tenant).inflight_budget_bytes;
  while (!e.held.empty()) {
    TenantEdge::Held& h = e.held.front();
    if (budget > 0 && e.inflight_bytes > 0 &&
        e.inflight_bytes + h.bytes > budget) {
      break;
    }
    e.inflight_bytes += h.bytes;
    const double wait = to_seconds(loop_.now() - h.held_at);
    TenantStats& ts = tenants_.stats(tenant);
    ts.admission_wait.record(wait);
    stats_.admission_wait.record(wait);
    auto dispatch = std::move(h.dispatch);
    e.held.pop_front();
    dispatch();
  }
}

void ChunkStoreService::do_fetch(StoreRequest req) {
  DSIM_CHECK_MSG(req.keys.size() == 1,
                 "a fetch request carries exactly one chunk key");
  stats_.fetch_requests++;
  stats_.fetch_bytes += req.bytes;
  TenantStats& ts = tenants_.stats(req.tenant);
  ts.fetches++;
  const int s = shard_of(req.keys.front());
  const SimTime submitted = loop_.now();
  const TenantId tenant = req.tenant;
  obs::Tracer* tr = loop_.tracer();
  u64 root = 0;
  obs::TraceContext tctx = req.trace;
  if (tr) {
    if (tctx.trace_id == 0) {
      tctx.trace_id = tr->new_trace();
      tctx.tenant = tenant;
      tctx.qos = static_cast<u8>(req.qos);
      tctx.op = static_cast<u8>(StoreOp::kFetch);
    }
    if (tctx.parent_span == 0) {
      root = tr->begin("store.fetch", req.from, "requests", submitted, tctx);
      tctx.parent_span = root;
    }
  }
  // Redirect-style fetch: the RPC carries metadata both ways, the shard
  // queue does an index probe to name the holder, and the bulk bytes
  // stream off the holding node (device + NIC, charged by the caller).
  // Fetch waits land in the tenant's sample stream alongside lookups —
  // together they are the victim-tenant latency bench_tenants gates.
  auto done = [this, submitted, tenant, root,
               inner = std::move(req.done)]() mutable {
    const double wait = to_seconds(loop_.now() - submitted);
    tenants_.stats(tenant).wait.record(wait);
    if (root) {
      if (obs::Tracer* t = loop_.tracer()) t->end(root, loop_.now());
    }
    if (inner) inner();
  };
  auto sreq = make_request(
      req.from, params::kRpcHeaderBytes, params::kRpcHeaderBytes,
      index_serve(s, /*is_read=*/true, tenant, req.qos, tctx),
      std::move(done));
  sreq->trace = tctx;
  shard_call(s, std::move(sreq));
}

void ChunkStoreService::do_drop(StoreRequest req) {
  DSIM_CHECK_MSG(req.keys.size() == 1,
                 "a drop request carries exactly one chunk key");
  stats_.drop_requests++;
  tenants_.stats(req.tenant).drops++;
  const int s = shard_of(req.keys.front());
  const u64 bytes = req.bytes;
  const TenantId tenant = req.tenant;
  const QosClass qos = req.qos;
  obs::Tracer* tr = loop_.tracer();
  u64 root = 0;
  obs::TraceContext tctx = req.trace;
  if (tr) {
    if (tctx.trace_id == 0) {
      tctx.trace_id = tr->new_trace();
      tctx.tenant = tenant;
      tctx.qos = static_cast<u8>(qos);
      tctx.op = static_cast<u8>(StoreOp::kDrop);
    }
    if (tctx.parent_span == 0) {
      root = tr->begin("store.drop", req.from, "requests", loop_.now(), tctx);
      tctx.parent_span = root;
    }
  }
  auto done = [this, root, inner = std::move(req.done)]() mutable {
    if (root) {
      if (obs::Tracer* t = loop_.tracer()) t->end(root, loop_.now());
    }
    if (inner) inner();
  };
  auto sreq = make_request(
      req.from, params::kRpcHeaderBytes, params::kRpcHeaderBytes,
      [this, q = shards_[static_cast<size_t>(s)].q, bytes, tenant, qos,
       tctx](rpc::RpcFabric::Reply reply) {
        // Trims run at the device's 64x discard speedup; their DRR
        // cost is scaled to match so a GC burst is charged what it
        // actually occupies.
        enqueue_index(q, tenant, qos, std::max<u64>(bytes >> 6, 1),
                      [q, bytes, reply = std::move(reply)]() mutable {
                        q->dev->discard(bytes);
                        reply();
                      },
                      tctx);
      },
      std::move(done));
  sreq->trace = tctx;
  shard_call(s, std::move(sreq));
}

void ChunkStoreService::charge_node(NodeId node, u64 bytes, bool is_read,
                                    std::function<void()> done) {
  if (charger_) {
    charger_(node, bytes, is_read, std::move(done));
  } else {
    loop_.post_now(std::move(done));
  }
}

void ChunkStoreService::charge_cpu(NodeId node, double seconds,
                                   std::function<void()> done) {
  if (cpu_charger_) {
    cpu_charger_(node, seconds, std::move(done));
  } else {
    loop_.post_now(std::move(done));
  }
}

void ChunkStoreService::fail_node(NodeId node) {
  // Ground truth first, unconditionally: the instant the node dies its
  // chunk copies are unreachable and its RPCs stop being chargeable. The
  // *reaction* — heal kick, shard re-home, replay — is detection's job.
  health_->fail(node);
  placement_.fail_node(node);
  if (death_router_) {
    // Wired world: membership detects the silence (heartbeat misses) and
    // its kDead event drives handle_node_death() through the failover
    // manager, detection latency and all.
    death_router_(node);
  } else {
    handle_node_death(node);
  }
}

void ChunkStoreService::revive_node(NodeId node) {
  if (revive_router_) {
    // Wired world: membership readmits the node; a kSuspect/kDead ->
    // kAlive transition drives handle_node_revival() through the failover
    // manager. A revival *before the first miss* changes no membership
    // state and fires no listener, so the reaction also runs directly —
    // it is idempotent, and requests parked in that window must not
    // strand.
    revive_router_(node);
  } else {
    health_->revive(node);
  }
  handle_node_revival(node);
}

void ChunkStoreService::handle_node_revival(NodeId node) {
  placement_.revive_node(node);
  // Requests parked against this node's endpoints replay directly: the
  // node never reached kDead (or just came back), so no re-home will ever
  // flush those queues — without this they would strand forever.
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (endpoints_[s] != node) continue;
    auto parked = std::move(shards_[s].parked);
    shards_[s].parked.clear();
    for (auto& req : parked) {
      stats_.replayed_requests++;
      shard_call(static_cast<int>(s), std::move(req));
    }
  }
}

int ChunkStoreService::handle_node_death(NodeId node) {
  // Idempotent reaction to a detected death: placement may already know
  // (fail_node's ground truth), but a death declared by membership alone
  // must land there too before heal scans run.
  placement_.fail_node(node);
  // Degraded (some alive homes, fewer than R — or >= k but fewer than k+m
  // clean fragments) chunks are healable — kick the daemon. Fully lost
  // chunks are not: those wait for the encode path's forward-heal
  // (StoreOp::kRestore) at the next generation.
  if (redundant()) schedule_heal_scan();
  // Re-home every shard stranded on the dead endpoint to the next live
  // node in its rendezvous order, then replay its parked requests there in
  // FIFO order — idempotent by chunk key, so callers see latency, never
  // errors.
  int rehomed = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (endpoints_[s] != node) continue;
    endpoints_[s] = pick_endpoint(static_cast<int>(s));
    stats_.rehomed_shards++;
    ++rehomed;
    LOG_INFO("chunk store: shard %zu re-homed from dead node %d to node %d "
             "(%zu parked request(s) to replay)",
             s, node, endpoints_[s], shards_[s].parked.size());
    auto parked = std::move(shards_[s].parked);
    shards_[s].parked.clear();
    for (auto& req : parked) {
      stats_.replayed_requests++;
      shard_call(static_cast<int>(s), std::move(req));
    }
  }
  return rehomed;
}

void ChunkStoreService::schedule_heal_scan() {
  if (heal_scan_scheduled_) return;
  heal_scan_scheduled_ = true;
  loop_.post_in(params::kRereplicateDelay, [this] {
    heal_scan_scheduled_ = false;
    for (const ChunkKey& key : placement_.degraded_chunks()) {
      heal_pending_.push_back(key);
    }
    pump_heal();
  });
}

void ChunkStoreService::pump_heal() {
  while (heal_in_flight_ < params::kRereplicateWindow &&
         !heal_pending_.empty()) {
    const ChunkKey key = heal_pending_.front();
    heal_pending_.pop_front();
    heal_one(key);
  }
}

void ChunkStoreService::heal_one(const ChunkKey& key) {
  if (erasure_.enabled()) {
    heal_one_erasure(key);
    return;
  }
  const i32 holder = placement_.holder(key);
  const u64 bytes = placement_.bytes_of(key);
  if (holder < 0 || bytes == 0) return;  // lost or unknown: not healable
  const std::vector<NodeId> fresh = placement_.heal(key);
  if (fresh.empty()) return;  // raced with another heal / already whole
  stats_.rereplicated_chunks++;
  stats_.rereplicated_bytes += bytes;
  // One full-copy read off the holder, then a NIC hop + device write per
  // fresh home: 1 + 2F copies of physical movement for F lost replicas.
  stats_.heal_moved_bytes += bytes * (1 + 2 * fresh.size());
  heal_in_flight_++;
  const size_t s = static_cast<size_t>(shard_of(key));
  obs::Tracer* tr = loop_.tracer();
  const u64 heal_span =
      tr ? tr->begin("store.heal", obs::kServicePid, "heal", loop_.now()) : 0;
  auto finish = std::make_shared<std::function<void()>>([this, heal_span] {
    if (heal_span) {
      if (obs::Tracer* t = loop_.tracer()) t->end(heal_span, loop_.now());
    }
    heal_in_flight_--;
    pump_heal();
  });
  // Walk the repair through the owning shard's scheduler as system-tenant
  // work (an index probe that contends with foreground lookups, as a real
  // repair stream does), read the surviving copy off the holder's device,
  // then stream it over the holder's NIC to each fresh home and land it on
  // that home's device.
  const auto q = shards_[s].q;
  enqueue_index(
      q, kSystemTenant, QosClass::kCheckpoint, params::kStoreLookupBytes,
      [this, q, holder, bytes, fresh, finish] {
        q->dev->submit(
            params::kStoreLookupBytes,
            [this, holder, bytes, fresh, finish] {
              charge_node(
                  holder, bytes, /*is_read=*/true,
                  [this, holder, bytes, fresh, finish] {
                    auto left = std::make_shared<int>(
                        static_cast<int>(fresh.size()));
                    for (NodeId home : fresh) {
                      net_.transfer(
                          holder, home, bytes,
                          [this, home, bytes, left, finish] {
                            charge_node(home, bytes, /*is_read=*/false,
                                        [left, finish] {
                                          if (--*left == 0) (*finish)();
                                        });
                          });
                    }
                  });
            },
            /*is_read=*/true);
      });
}

void ChunkStoreService::heal_one_erasure(const ChunkKey& key) {
  const auto info = placement_.erasure_info(key);
  if (info.k == 0) return;  // unknown (or raced into a forget)
  // Read sources *before* heal() — heal reassigns the dead slots, and the
  // rebuild must stream from the fragments that existed when the node died.
  bool needs_decode = false;
  const auto sources = placement_.read_plan(key, &needs_decode);
  if (sources.empty()) return;  // lost (< k survivors): forward-heal's job
  const std::vector<NodeId> fresh = placement_.heal(key);
  if (fresh.empty()) return;  // raced with another heal / already whole
  stats_.rereplicated_chunks++;
  stats_.rereplicated_bytes += info.frag_bytes * fresh.size();
  stats_.rebuilt_fragments += fresh.size();
  // k fragment reads, k NIC hops to the rebuilder, F fragment writes and
  // F-1 onward hops: (2k + 2F - 1) fragments of movement, against the
  // 1 + 2F *full copies* replication pays for the same F lost homes.
  stats_.heal_moved_bytes +=
      info.frag_bytes * (2 * sources.size() + 2 * fresh.size() - 1);
  heal_in_flight_++;
  const size_t s = static_cast<size_t>(shard_of(key));
  const NodeId rebuilder = fresh.front();
  const double decode_cpu = erasure::decode_seconds(placement_.bytes_of(key));
  obs::Tracer* tr = loop_.tracer();
  const u64 heal_span =
      tr ? tr->begin("store.heal", obs::kServicePid, "heal", loop_.now()) : 0;
  auto finish = std::make_shared<std::function<void()>>([this, heal_span] {
    if (heal_span) {
      if (obs::Tracer* t = loop_.tracer()) t->end(heal_span, loop_.now());
    }
    heal_in_flight_--;
    pump_heal();
  });
  // Index probe on the owning shard (system tenant, through the
  // scheduler), then: stream k surviving fragments to the rebuilding node,
  // decode there (real CPU through the fluid share), and land the rebuilt
  // fragments on every fresh home — the first one locally, the rest over
  // the rebuilder's NIC. This is the erasure economy bench_erasure gates:
  // fragments move, never full copies.
  const auto q = shards_[s].q;
  enqueue_index(
      q, kSystemTenant, QosClass::kCheckpoint, params::kStoreLookupBytes,
      [this, q, sources, fresh, rebuilder, decode_cpu,
       frag = info.frag_bytes, finish] {
        q->dev->submit(
            params::kStoreLookupBytes,
            [this, sources, fresh, rebuilder, decode_cpu, frag, finish] {
              auto gathered =
                  std::make_shared<int>(static_cast<int>(sources.size()));
              auto decode_done = [this, fresh, rebuilder, frag, finish] {
                auto left =
                    std::make_shared<int>(static_cast<int>(fresh.size()));
                const auto landed = [left, finish] {
                  if (--*left == 0) (*finish)();
                };
                for (NodeId home : fresh) {
                  if (home == rebuilder) {
                    charge_node(home, frag, /*is_read=*/false, landed);
                  } else {
                    net_.transfer(rebuilder, home, frag,
                                  [this, home, frag, landed] {
                                    charge_node(home, frag,
                                                /*is_read=*/false, landed);
                                  });
                  }
                }
              };
              for (const auto& src : sources) {
                charge_node(
                    src.node, src.bytes, /*is_read=*/true,
                    [this, src, rebuilder, gathered, decode_cpu,
                     decode_done] {
                      net_.transfer(
                          src.node, rebuilder, src.bytes,
                          [this, rebuilder, gathered, decode_cpu,
                           decode_done] {
                            if (--*gathered > 0) return;
                            obs::Tracer* t0 = loop_.tracer();
                            const u64 dec =
                                t0 ? t0->begin("store.erasure_decode",
                                               obs::kServicePid, "heal",
                                               loop_.now())
                                   : 0;
                            charge_cpu(rebuilder, decode_cpu,
                                       [this, dec, decode_done] {
                                         if (dec) {
                                           if (obs::Tracer* t =
                                                   loop_.tracer()) {
                                             t->end(dec, loop_.now());
                                           }
                                         }
                                         decode_done();
                                       });
                          });
                    });
              }
            },
            /*is_read=*/true);
      });
}

void ChunkStoreService::scrub(u64 max_chunks, compress::CodecKind codec) {
  bool saw_degraded = false;
  const auto batch =
      repo_->chunks_after(scrub_cursor_, static_cast<size_t>(max_chunks));
  // One standalone span per scrub pass, open until the last chunk's
  // verification read lands — the critical path and trace reports see the
  // scrubber's tail exactly as the device queues priced it.
  obs::Tracer* tr0 = loop_.tracer();
  const u64 scrub_span =
      (tr0 != nullptr && !batch.empty())
          ? tr0->begin("store.scrub", obs::kServicePid, "scrub", loop_.now())
          : 0;
  auto scrub_left = std::make_shared<u64>(static_cast<u64>(batch.size()));
  auto verified = std::make_shared<std::function<void()>>(
      [this, scrub_span, scrub_left] {
        if (--*scrub_left != 0) return;
        if (scrub_span != 0) {
          if (obs::Tracer* t = loop_.tracer()) t->end(scrub_span, loop_.now());
        }
      });
  for (const auto& [key, chunk] : batch) {
    scrub_cursor_ = key;
    stats_.scrubbed_chunks++;
    // Fragment rot (erasure): a corrupt fragment is *repaired*, not
    // quarantined — reconstructed from the k clean survivors and rewritten
    // in place, charging the fragment reads, a decode at the first
    // repaired home and the fragment rewrites. Only a chunk with > m bad
    // fragments is beyond repair and falls through to the quarantine path
    // below, exactly like a rotten replication container.
    bool beyond_repair = false;
    if (erasure_.enabled() && placement_.corrupt_mask(key) != 0) {
      const auto info = placement_.erasure_info(key);
      bool needs_decode = false;
      const auto sources = placement_.read_plan(key, &needs_decode);
      const std::vector<NodeId> rewritten = placement_.repair_fragments(key);
      if (rewritten.empty()) {
        beyond_repair = true;
      } else {
        stats_.scrub_repaired_fragments += rewritten.size();
        for (const auto& src : sources) {
          charge_node(src.node, src.bytes, /*is_read=*/true, [] {});
        }
        charge_cpu(rewritten.front(),
                   erasure::decode_seconds(chunk->charged_bytes), [] {});
        for (NodeId home : rewritten) {
          charge_node(home, info.frag_bytes, /*is_read=*/false, [] {});
        }
      }
    }
    // Verify synchronously (GC may reclaim the chunk before its shard queue
    // entry is served); the index probe + holder-device read below model
    // the verification cost. Pattern chunks are descriptors — only real
    // containers can rot.
    const bool missing = !beyond_repair && !placement_.available(key);
    bool corrupt = beyond_repair;
    if (!missing && !corrupt && chunk->kind == sim::ExtentKind::kReal) {
      corrupt = crc32(chunk->materialize(codec)) != chunk->crc;
    }
    if (!missing && !corrupt && placement_.degraded(key)) {
      // The walk tripped over a replica-degraded survivor (a death the heal
      // daemon's one-shot scan may have raced past): route it back through
      // the heal path.
      saw_degraded = true;
    }
    const size_t s = static_cast<size_t>(shard_of(key));
    const i32 holder = placement_.holder(key);
    const u64 read_bytes = chunk->charged_bytes;
    if (corrupt) {
      // Wire the report into the repair path instead of only counting it:
      // quarantine the rotten container (the repo masks the key, so the
      // next generation's encode sees a miss and re-stores fresh bytes
      // from live content — the forward-heal/re-store path) and drop the
      // dead copies from placement so restart pre-flights treat the chunk
      // as unavailable until the re-store lands. Reclaim and trim stay
      // paired, as everywhere: the rotten copies are trimmed from their
      // surviving homes' devices and dropped from the owning shard's index
      // at metadata rate.
      stats_.scrub_quarantined_chunks++;
      // Per-home trim: a home holds one fragment under erasure, the full
      // container under replication (read before forget drops the entry).
      const u64 per_home = placement_.home_charge(key);
      const u64 rotten = repo_->quarantine(key);
      const std::vector<NodeId> homes = placement_.forget(key);
      if (rotten > 0) {
        for (NodeId home : homes) {
          if (trimmer_) trimmer_(home, per_home > 0 ? per_home : rotten);
        }
        StoreRequest drop;
        drop.op = StoreOp::kDrop;
        drop.tenant = kSystemTenant;
        drop.from = endpoint_of(static_cast<int>(s));
        drop.keys = {key};
        drop.bytes = rotten;
        submit(std::move(drop));
      }
    }
    const auto q = shards_[s].q;
    enqueue_index(
        q, kSystemTenant, QosClass::kCheckpoint, params::kStoreLookupBytes,
        [this, q, corrupt, missing, holder, read_bytes, verified] {
          q->dev->submit(
              params::kStoreLookupBytes,
              [this, corrupt, missing, holder, read_bytes, verified] {
                // The verification reread streams off the surviving holder.
                if (holder >= 0 && read_bytes > 0) {
                  charge_node(holder, read_bytes, /*is_read=*/true,
                              [verified] { (*verified)(); });
                } else {
                  (*verified)();
                }
                if (corrupt) stats_.scrub_corrupt_chunks++;
                if (missing) stats_.scrub_missing_chunks++;
              },
              /*is_read=*/true);
        });
  }
  if (saw_degraded && redundant()) schedule_heal_scan();
}

int ChunkStoreService::demote_cold(u64 max_chunks) {
  if (!erasure_.cold_enabled() || erasure_.hot_generations <= 0) return 0;
  int demoted = 0;
  // Per-tenant hot depth: a tenant override of --hot-generations shifts
  // *its* owners' hot window; everyone else uses the global config.
  const auto hot_for = [this](const std::string& owner) {
    return tenants_.hot_for(tenant_of_owner(owner),
                            erasure_.hot_generations);
  };
  for (const ChunkKey& key : repo_->cold_keys(hot_for)) {
    if (static_cast<u64>(demoted) >= max_chunks) break;
    auto plan = std::make_shared<ChunkPlacement::DemotePlan>(
        placement_.demote(key));
    // Already cold (demoted in an earlier round), or currently unreadable:
    // rescanning it next round is a free no-op either way.
    if (plan->read.empty() || plan->write.empty()) continue;
    ++demoted;
    stats_.demoted_chunks++;
    stats_.demoted_bytes += plan->logical_bytes;
    // One standalone span per demoted chunk, open from scheduling until
    // the last cold fragment lands (the fire-and-forget tail is exactly
    // what the trace should make visible).
    obs::Tracer* tr0 = loop_.tracer();
    const u64 demote_span =
        tr0 != nullptr
            ? tr0->begin("store.demote", obs::kServicePid, "demote",
                         loop_.now())
            : 0;
    const size_t s = static_cast<size_t>(shard_of(key));
    const NodeId coder = plan->write.front();
    const double cpu =
        erasure::decode_seconds(plan->logical_bytes) +
        erasure::encode_seconds(plan->logical_bytes, erasure_.cold_k,
                                erasure_.cold_m);
    // Index update on the owning shard (the fragment layout is re-keyed),
    // then fire-and-forget: stream the k hot fragments to the first cold
    // home, decode + re-encode there, trim the hot fragments, and land the
    // cold ones — locally at the coder, over its NIC elsewhere. Background
    // work end to end; nothing waits on it.
    const auto q = shards_[s].q;
    enqueue_index(
        q, kSystemTenant, QosClass::kCheckpoint, params::kStoreLookupBytes,
        [this, q, plan, coder, cpu, demote_span] {
          q->dev->submit(
              params::kStoreLookupBytes,
              [this, plan, coder, cpu, demote_span] {
                auto gathered = std::make_shared<int>(
                    static_cast<int>(plan->read.size()));
                auto recode_done = [this, plan, coder, demote_span] {
                  for (NodeId home : plan->trim) {
                    if (trimmer_) trimmer_(home, plan->trim_bytes);
                  }
                  auto wleft = std::make_shared<int>(
                      static_cast<int>(plan->write.size()));
                  const auto landed = [this, wleft, demote_span] {
                    if (--*wleft != 0) return;
                    if (demote_span != 0) {
                      if (obs::Tracer* t = loop_.tracer()) {
                        t->end(demote_span, loop_.now());
                      }
                    }
                  };
                  for (NodeId home : plan->write) {
                    if (home == coder) {
                      charge_node(home, plan->write_bytes, /*is_read=*/false,
                                  landed);
                    } else {
                      net_.transfer(coder, home, plan->write_bytes,
                                    [this, home, plan, landed] {
                                      charge_node(home, plan->write_bytes,
                                                  /*is_read=*/false, landed);
                                    });
                    }
                  }
                };
                for (const auto& src : plan->read) {
                  charge_node(
                      src.node, src.bytes, /*is_read=*/true,
                      [this, src, coder, gathered, cpu, recode_done] {
                        net_.transfer(src.node, coder, src.bytes,
                                      [this, coder, gathered, cpu,
                                       recode_done] {
                                        if (--*gathered > 0) return;
                                        charge_cpu(coder, cpu, recode_done);
                                      });
                      });
                }
              },
              /*is_read=*/true);
        });
  }
  return demoted;
}

void ChunkStoreService::rebalance(int new_shards,
                                  std::vector<NodeId> new_endpoints,
                                  std::function<void()> done) {
  DSIM_CHECK_MSG(new_shards >= 1,
                 "rebalance needs at least one shard to move keys to");
  DSIM_CHECK_MSG(new_endpoints.size() == static_cast<size_t>(new_shards),
                 "rebalance endpoint assignment must name one node per "
                 "shard");
  for (NodeId n : new_endpoints) {
    DSIM_CHECK_MSG(health_->up(n),
                   "rebalance assigns a shard endpoint to a dead node");
  }
  for (const Shard& s : shards_) {
    DSIM_CHECK_MSG(s.parked.empty(),
                   "rebalance with parked requests: finish failover first");
  }
  const int old_shards = num_shards();
  const std::vector<NodeId> old_endpoints = endpoints_;
  stats_.rebalances++;

  // Consistent-hash key movement: enumerate the resident index and collect
  // exactly the keys whose rendezvous winner changed with the shard count.
  // Growing S -> S' moves only the keys the new shards won (~(S'-S)/S' of
  // them); shrinking moves only the evicted shards' keys. Everything else
  // stays where it is — the property that makes live resharding affordable.
  struct Move {
    ChunkKey key;
    u64 bytes = 0;
  };
  std::map<std::pair<int, int>, std::vector<Move>> moves;  // (old,new) -> keys
  u64 moved_keys = 0, moved_bytes = 0, scanned_keys = 0;
  for (const auto& [key, chunk] :
       repo_->chunks_after(ChunkKey{}, repo_->stats().live_chunks)) {
    scanned_keys++;
    stats_.rebalance_scanned_bytes += chunk->charged_bytes;
    const int from = shard_of_n(key, old_shards);
    const int to = shard_of_n(key, new_shards);
    if (from == to) continue;
    moves[{from, to}].push_back(Move{key, chunk->charged_bytes});
    moved_keys++;
    moved_bytes += chunk->charged_bytes;
  }
  stats_.rebalance_scanned_keys += scanned_keys;
  stats_.rebalance_moved_keys += moved_keys;
  stats_.rebalance_moved_bytes += moved_bytes;
  LOG_INFO("chunk store: rebalancing %d -> %d shard(s): %llu of %llu keys "
           "move",
           old_shards, new_shards,
           static_cast<unsigned long long>(moved_keys),
           static_cast<unsigned long long>(scanned_keys));

  // Swap in the new shard set first: foreground routing (there is none
  // between rounds, but restarts may race in tests) immediately uses the
  // new assignment, while the migration traffic below drains through both
  // the old queues (index reads) and the new ones (index inserts). The old
  // queues stay alive inside the batch closures until the last batch
  // lands.
  auto old_set =
      std::make_shared<std::vector<Shard>>(std::move(shards_));
  shards_.clear();
  shards_.reserve(static_cast<size_t>(new_shards));
  for (int s = 0; s < new_shards; ++s) {
    auto q = std::make_shared<IndexQueue>();
    q->dev = std::make_shared<sim::StorageDevice>(
        loop_, "chunkstore" + std::to_string(s), params::kStoreServiceBw,
        params::kStoreServiceLatency);
    shards_.push_back(Shard{std::move(q), {}});
  }
  endpoints_ = std::move(new_endpoints);
  assigned_endpoints_ = endpoints_;

  // Count batches, then run them: each batch is an index read on the old
  // shard's queue, one metadata RPC old endpoint -> new endpoint (header +
  // per-key record), and an index insert on the new shard's queue. The
  // migration runs between rounds with nothing in flight, so it rides the
  // device queues directly (system-tenant work with no foreground traffic
  // to be fair against).
  u64 batches = 0;
  for (const auto& [route, keys] : moves) {
    batches += (keys.size() + params::kRebalanceBatchKeys - 1) /
               params::kRebalanceBatchKeys;
  }
  if (batches == 0) {
    loop_.post_now(std::move(done));
    return;
  }
  // One standalone span for the whole migration, open until the last
  // batch lands on its new shard.
  obs::Tracer* tr0 = loop_.tracer();
  const u64 rb_span =
      tr0 != nullptr ? tr0->begin("store.rebalance", obs::kServicePid,
                                  "rebalance", loop_.now())
                     : 0;
  auto remaining = std::make_shared<u64>(batches);
  auto all_done = std::make_shared<std::function<void()>>(
      [this, rb_span, inner = std::move(done)] {
        if (rb_span != 0) {
          if (obs::Tracer* t = loop_.tracer()) t->end(rb_span, loop_.now());
        }
        inner();
      });
  for (const auto& [route, keys] : moves) {
    const auto [from_s, to_s] = route;
    const NodeId from_ep = old_endpoints[static_cast<size_t>(from_s)];
    const NodeId to_ep = endpoint_of(to_s);
    const auto to_q = shards_[static_cast<size_t>(to_s)].q;
    for (size_t at = 0; at < keys.size();
         at += params::kRebalanceBatchKeys) {
      const u64 n =
          std::min<u64>(params::kRebalanceBatchKeys, keys.size() - at);
      const u64 wire =
          params::kRpcHeaderBytes + n * params::kRpcLookupKeyBytes;
      const auto finish_batch = [remaining, all_done] {
        if (--*remaining == 0) (*all_done)();
      };
      // Old shard queue: read the n index entries out...
      (*old_set)[static_cast<size_t>(from_s)].q->dev->submit(
          n * params::kStoreLookupBytes,
          [this, old_set, from_ep, to_ep, to_q, n, wire, finish_batch] {
            // ...ship them endpoint to endpoint as one metadata RPC...
            fabric_.call(
                from_ep, to_ep, wire, params::kRpcHeaderBytes,
                [to_q, n](rpc::RpcFabric::Reply reply) {
                  // ...and insert them into the new shard's queue.
                  to_q->dev->submit(n * params::kStoreLookupBytes,
                                    std::move(reply), /*is_read=*/false);
                },
                finish_batch,
                // An endpoint death mid-rebalance: the batch's accounting
                // is already recorded and the shard itself will be
                // re-homed by the death's failover — count the batch done
                // rather than stranding set_store_shards on a node that
                // will never answer.
                finish_batch);
          },
          /*is_read=*/true);
    }
  }
}

}  // namespace dsim::ckptstore
