#include "ckptstore/service.h"

#include <algorithm>

#include "sim/model_params.h"
#include "util/assertx.h"
#include "util/crc32.h"
#include "util/rng.h"

namespace dsim::ckptstore {

namespace params = sim::params;

ChunkStoreService::ChunkStoreService(sim::EventLoop& loop, sim::Network& net,
                                     int replicas, int shards,
                                     int lookup_batch)
    : loop_(loop),
      net_(net),
      fabric_(loop, net),
      lookup_batch_(lookup_batch),
      repo_(std::make_shared<Repository>()),
      placement_(net.num_nodes(), replicas) {
  DSIM_CHECK_MSG(shards >= 1, "chunk-store service needs at least one shard");
  DSIM_CHECK_MSG(lookup_batch >= 1,
                 "lookup batch must carry at least one key per RPC");
  shards_.reserve(static_cast<size_t>(shards));
  endpoints_.reserve(static_cast<size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    shards_.push_back(Shard{std::make_unique<sim::StorageDevice>(
        loop, "chunkstore" + std::to_string(s), params::kStoreServiceBw,
        params::kStoreServiceLatency)});
    // Default spread until the coordinator assigns real endpoints.
    endpoints_.push_back(static_cast<NodeId>(s % net.num_nodes()));
  }
}

void ChunkStoreService::set_endpoints(std::vector<NodeId> nodes) {
  DSIM_CHECK_MSG(nodes.size() == shards_.size(),
                 "endpoint assignment must name one node per shard");
  for (NodeId n : nodes) {
    DSIM_CHECK_MSG(n >= 0 && n < net_.num_nodes(),
                   "shard endpoint names a node outside the cluster");
  }
  endpoints_ = std::move(nodes);
}

int ChunkStoreService::shard_of(const ChunkKey& key) const {
  // Rendezvous over shard ids, exactly like node placement: the winning
  // shard for a key never changes while the shard count holds, and keys
  // spread uniformly for any key structure (full avalanche per input).
  int best = 0;
  u64 best_score = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const u64 score =
        mix64(key.hi ^ mix64(key.lo ^ mix64(0xC4A6u + static_cast<u64>(s))));
    if (s == 0 || score > best_score) {
      best_score = score;
      best = static_cast<int>(s);
    }
  }
  return best;
}

void ChunkStoreService::submit_lookups(NodeId from,
                                       const std::vector<ChunkKey>& keys,
                                       std::function<void()> done) {
  if (keys.empty()) {
    loop_.post_now(std::move(done));
    return;
  }
  stats_.lookup_requests += keys.size();
  // Route keys to their shards in submit order, then cut each shard's run
  // into batches of at most lookup_batch_ keys — one RPC per batch, one
  // queue probe's occupancy per key. A rank's batches interleave with every
  // other rank's FIFO at the shard, and each batch records the full
  // submit -> response wait for each of its keys.
  std::vector<std::vector<ChunkKey>> routed(shards_.size());
  for (const ChunkKey& key : keys) {
    routed[static_cast<size_t>(shard_of(key))].push_back(key);
  }
  auto remaining = std::make_shared<u64>(keys.size());
  auto all_done = std::make_shared<std::function<void()>>(std::move(done));
  for (size_t s = 0; s < routed.size(); ++s) {
    const auto& run = routed[s];
    for (size_t at = 0; at < run.size(); at += static_cast<size_t>(
                                             lookup_batch_)) {
      const u64 n = std::min<u64>(static_cast<u64>(lookup_batch_),
                                  run.size() - at);
      stats_.lookup_batches++;
      const SimTime submitted = loop_.now();
      const u64 req = params::kRpcHeaderBytes + n * params::kRpcLookupKeyBytes;
      const u64 resp =
          params::kRpcHeaderBytes + n * params::kRpcLookupVerdictBytes;
      fabric_.call(
          from, endpoint_of(static_cast<int>(s)), req, resp,
          [this, s, n](rpc::RpcFabric::Reply reply) {
            // The batch's probes occupy the shard queue back to back; the
            // response leaves when the last probe is served.
            shards_[s].dev->submit(n * params::kStoreLookupBytes,
                                   std::move(reply), /*is_read=*/true);
          },
          [this, submitted, n, remaining, all_done] {
            const double wait = to_seconds(loop_.now() - submitted);
            stats_.lookup_wait_seconds += wait * static_cast<double>(n);
            if (wait > stats_.max_lookup_wait_seconds) {
              stats_.max_lookup_wait_seconds = wait;
            }
            if ((*remaining -= n) == 0) (*all_done)();
          });
    }
  }
}

std::vector<NodeId> ChunkStoreService::submit_store(
    NodeId from, const ChunkKey& key, u64 charged_bytes,
    std::function<void()> done) {
  stats_.store_requests++;
  stats_.store_bytes += charged_bytes;
  const int s = shard_of(key);
  // The chunk travels to the shard in the request (caller NIC); the shard
  // does an index insert's worth of queue work and acks. The payload's
  // physical writes land on the placement homes' node devices, charged by
  // the caller against the homes returned below — the shard queue is the
  // metadata path, so store bursts do not stall other ranks' probes beyond
  // their index share.
  fabric_.call(
      from, endpoint_of(s), params::kRpcHeaderBytes + charged_bytes,
      params::kRpcHeaderBytes,
      [this, s](rpc::RpcFabric::Reply reply) {
        shards_[static_cast<size_t>(s)].dev->submit(
            params::kStoreLookupBytes, std::move(reply), /*is_read=*/false);
      },
      std::move(done));
  return placement_.record_store(key, charged_bytes);
}

std::vector<NodeId> ChunkStoreService::submit_restore(
    NodeId from, const ChunkKey& key, u64 charged_bytes,
    std::function<void()> done) {
  stats_.store_requests++;
  stats_.store_bytes += charged_bytes;
  const int s = shard_of(key);
  fabric_.call(
      from, endpoint_of(s), params::kRpcHeaderBytes + charged_bytes,
      params::kRpcHeaderBytes,
      [this, s](rpc::RpcFabric::Reply reply) {
        shards_[static_cast<size_t>(s)].dev->submit(
            params::kStoreLookupBytes, std::move(reply), /*is_read=*/false);
      },
      std::move(done));
  return placement_.re_place(key);
}

void ChunkStoreService::submit_fetch(NodeId from, const ChunkKey& key,
                                     u64 bytes, std::function<void()> done) {
  stats_.fetch_requests++;
  stats_.fetch_bytes += bytes;
  const int s = shard_of(key);
  // Redirect-style fetch: the RPC carries metadata both ways, the shard
  // queue does an index probe to name the holder, and the bulk bytes
  // stream off the holding node (device + NIC, charged by the caller).
  fabric_.call(
      from, endpoint_of(s), params::kRpcHeaderBytes, params::kRpcHeaderBytes,
      [this, s](rpc::RpcFabric::Reply reply) {
        shards_[static_cast<size_t>(s)].dev->submit(
            params::kStoreLookupBytes, std::move(reply), /*is_read=*/true);
      },
      std::move(done));
}

void ChunkStoreService::submit_drop(NodeId from, const ChunkKey& key,
                                    u64 bytes) {
  stats_.drop_requests++;
  const int s = shard_of(key);
  fabric_.call(
      from, endpoint_of(s), params::kRpcHeaderBytes, params::kRpcHeaderBytes,
      [this, s, bytes](rpc::RpcFabric::Reply reply) {
        shards_[static_cast<size_t>(s)].dev->discard(bytes);
        reply();
      },
      [] {});
}

void ChunkStoreService::charge_node(NodeId node, u64 bytes, bool is_read,
                                    std::function<void()> done) {
  if (charger_) {
    charger_(node, bytes, is_read, std::move(done));
  } else {
    loop_.post_now(std::move(done));
  }
}

void ChunkStoreService::fail_node(NodeId node) {
  placement_.fail_node(node);
  // Degraded (some alive homes, fewer than R) chunks are healable — kick
  // the daemon. Fully lost chunks are not: those wait for the encode path's
  // forward-heal (submit_restore) at the next generation.
  if (placement_.replicas() > 1) schedule_heal_scan();
}

void ChunkStoreService::schedule_heal_scan() {
  if (heal_scan_scheduled_) return;
  heal_scan_scheduled_ = true;
  loop_.post_in(params::kRereplicateDelay, [this] {
    heal_scan_scheduled_ = false;
    for (const ChunkKey& key : placement_.degraded_chunks()) {
      heal_pending_.push_back(key);
    }
    pump_heal();
  });
}

void ChunkStoreService::pump_heal() {
  while (heal_in_flight_ < params::kRereplicateWindow &&
         !heal_pending_.empty()) {
    const ChunkKey key = heal_pending_.front();
    heal_pending_.pop_front();
    heal_one(key);
  }
}

void ChunkStoreService::heal_one(const ChunkKey& key) {
  const i32 holder = placement_.holder(key);
  const u64 bytes = placement_.bytes_of(key);
  if (holder < 0 || bytes == 0) return;  // lost or unknown: not healable
  const std::vector<NodeId> fresh = placement_.heal(key);
  if (fresh.empty()) return;  // raced with another heal / already whole
  stats_.rereplicated_chunks++;
  stats_.rereplicated_bytes += bytes;
  heal_in_flight_++;
  const size_t s = static_cast<size_t>(shard_of(key));
  auto finish = std::make_shared<std::function<void()>>([this] {
    heal_in_flight_--;
    pump_heal();
  });
  // Walk the repair through the owning shard's queue (an index probe that
  // contends with foreground lookups, as a real repair stream does), read
  // the surviving copy off the holder's device, then stream it over the
  // holder's NIC to each fresh home and land it on that home's device.
  shards_[s].dev->submit(
      params::kStoreLookupBytes,
      [this, holder, bytes, fresh, finish] {
        charge_node(holder, bytes, /*is_read=*/true,
                    [this, holder, bytes, fresh, finish] {
                      auto left = std::make_shared<int>(
                          static_cast<int>(fresh.size()));
                      for (NodeId home : fresh) {
                        net_.transfer(
                            holder, home, bytes,
                            [this, home, bytes, left, finish] {
                              charge_node(home, bytes, /*is_read=*/false,
                                          [left, finish] {
                                            if (--*left == 0) (*finish)();
                                          });
                            });
                      }
                    });
      },
      /*is_read=*/true);
}

void ChunkStoreService::scrub(u64 max_chunks, compress::CodecKind codec) {
  const auto batch =
      repo_->chunks_after(scrub_cursor_, static_cast<size_t>(max_chunks));
  for (const auto& [key, chunk] : batch) {
    scrub_cursor_ = key;
    stats_.scrubbed_chunks++;
    // Verify synchronously (GC may reclaim the chunk before its shard queue
    // entry is served); the index probe + holder-device read below model
    // the verification cost. Pattern chunks are descriptors — only real
    // containers can rot.
    const bool missing = !placement_.available(key);
    bool corrupt = false;
    if (!missing && chunk->kind == sim::ExtentKind::kReal) {
      corrupt = crc32(chunk->materialize(codec)) != chunk->crc;
    }
    const size_t s = static_cast<size_t>(shard_of(key));
    const i32 holder = placement_.holder(key);
    const u64 read_bytes = chunk->charged_bytes;
    shards_[s].dev->submit(
        params::kStoreLookupBytes,
        [this, corrupt, missing, holder, read_bytes] {
          // The verification reread streams off the surviving holder.
          if (holder >= 0 && read_bytes > 0) {
            charge_node(holder, read_bytes, /*is_read=*/true, [] {});
          }
          if (corrupt) stats_.scrub_corrupt_chunks++;
          if (missing) stats_.scrub_missing_chunks++;
        },
        /*is_read=*/true);
  }
}

}  // namespace dsim::ckptstore
