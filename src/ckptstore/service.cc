#include "ckptstore/service.h"

#include "sim/model_params.h"
#include "util/assertx.h"

namespace dsim::ckptstore {

ChunkStoreService::ChunkStoreService(sim::EventLoop& loop, int num_nodes,
                                     int replicas)
    : loop_(loop),
      dev_(loop, "chunkstore", sim::params::kStoreServiceBw,
           sim::params::kStoreServiceLatency),
      repo_(std::make_shared<Repository>()),
      placement_(num_nodes, replicas) {}

void ChunkStoreService::submit_lookups(u64 n, std::function<void()> done) {
  if (n == 0) {
    loop_.post_now(std::move(done));
    return;
  }
  // One queue entry per probe: a rank's lookups interleave with every other
  // rank's in FIFO order, and each records its own submit -> served wait.
  auto remaining = std::make_shared<u64>(n);
  for (u64 i = 0; i < n; ++i) {
    const SimTime submitted = loop_.now();
    const bool last = (i + 1 == n);
    dev_.submit(sim::params::kStoreLookupBytes,
                [this, submitted, remaining, last, done] {
                  const double wait = to_seconds(loop_.now() - submitted);
                  stats_.lookup_wait_seconds += wait;
                  if (wait > stats_.max_lookup_wait_seconds) {
                    stats_.max_lookup_wait_seconds = wait;
                  }
                  if (--*remaining == 0) {
                    DSIM_CHECK(last);
                    done();
                  }
                },
                /*is_read=*/true);
  }
  stats_.lookup_requests += n;
}

std::vector<NodeId> ChunkStoreService::submit_store(
    const ChunkKey& key, u64 charged_bytes, std::function<void()> done) {
  stats_.store_requests++;
  stats_.store_bytes += charged_bytes;
  dev_.submit(charged_bytes, std::move(done), /*is_read=*/false);
  return placement_.record_store(key, charged_bytes);
}

std::vector<NodeId> ChunkStoreService::submit_restore(
    const ChunkKey& key, u64 charged_bytes, std::function<void()> done) {
  stats_.store_requests++;
  stats_.store_bytes += charged_bytes;
  dev_.submit(charged_bytes, std::move(done), /*is_read=*/false);
  return placement_.re_place(key);
}

void ChunkStoreService::submit_fetch(u64 bytes, std::function<void()> done) {
  stats_.fetch_requests++;
  stats_.fetch_bytes += bytes;
  dev_.submit(bytes, std::move(done), /*is_read=*/true);
}

void ChunkStoreService::submit_drop(u64 bytes) {
  stats_.drop_requests++;
  dev_.discard(bytes);
}

}  // namespace dsim::ckptstore
