// Per-node chunk placement and replication for the cluster-wide store.
//
// The cluster-scope repository answers *what* is stored; this layer answers
// *where*. Every stored chunk is rendezvous-hashed onto `replicas` distinct
// node-local devices (highest-random-weight over (key, node)), so:
//   - restart reads are charged to the device of the node that actually
//     holds each chunk, not the restarting node's;
//   - assignments are stable — a node failure moves nothing that survives,
//     it only removes the failed node from every preference list;
//   - with replicas > 1 a single node failure leaves every chunk readable
//     from a surviving home, while replicas == 1 turns the failure into
//     data loss the restart pre-flight must report as a forced re-store.
#pragma once

#include <map>
#include <vector>

#include "ckptstore/chunk.h"
#include "util/types.h"

namespace dsim::ckptstore {

class ChunkPlacement {
 public:
  ChunkPlacement(int num_nodes, int replicas);

  int num_nodes() const { return static_cast<int>(alive_.size()); }
  int replicas() const { return replicas_; }

  /// The min(replicas, alive nodes) highest-scoring *alive* nodes for
  /// `key`, best first. Pure function of (key, alive set).
  std::vector<NodeId> place(const ChunkKey& key) const;

  /// Record a chunk stored on its current placement. Returns the homes the
  /// caller must charge the write to (one copy per home). Re-recording an
  /// already-placed key is a no-op returning no homes (dedup hit: the
  /// bytes are already on disk).
  std::vector<NodeId> record_store(const ChunkKey& key, u64 charged_bytes);

  /// The preferred surviving home holding `key`, or kNoHolder when every
  /// replica died with its node (or the key was never recorded).
  static constexpr i32 kNoHolder = -1;
  i32 holder(const ChunkKey& key) const;
  bool available(const ChunkKey& key) const { return holder(key) >= 0; }
  /// The recorded homes of `key`, best-first as placed (dead ones
  /// included). Restart filters this through the membership view so it
  /// never fetches from a holder the cluster has declared dead.
  std::vector<NodeId> homes_of(const ChunkKey& key) const;
  /// True when `key` is recorded, has a surviving copy, and fewer alive
  /// homes than min(replicas, alive nodes) — the per-key form of
  /// degraded_chunks(), used by the scrubber to re-route stragglers into
  /// the heal path.
  bool degraded(const ChunkKey& key) const;
  /// True only for a *recorded* chunk whose every home is dead — the heal
  /// trigger. Distinct from !available(): an unrecorded key is not lost,
  /// its Store is simply still in flight somewhere this round.
  bool lost(const ChunkKey& key) const;

  /// Drop the chunk's placement record (GC reclaimed it). Returns the
  /// *alive* homes whose devices the caller should trim; dead homes are
  /// gone with their node.
  std::vector<NodeId> forget(const ChunkKey& key);

  /// Recompute an existing entry's homes over the currently-alive nodes
  /// (healing a chunk whose every replica died with its node). Returns
  /// the new homes — the copies the caller must write — or empty when the
  /// key was never recorded.
  std::vector<NodeId> re_place(const ChunkKey& key);

  /// Recorded chunks with at least one surviving copy but fewer alive homes
  /// than min(replicas, alive nodes) — degraded, healable by copying from a
  /// survivor. Disjoint from lost(): an all-dead entry is not degraded.
  std::vector<ChunkKey> degraded_chunks() const;
  u64 degraded_count() const;

  /// Heal one degraded entry: recompute the full placement over the alive
  /// nodes (rendezvous keeps every surviving home in it) and return only the
  /// *fresh* homes — the copies the re-replication daemon must write. Empty
  /// when the key is unknown, lost, or not degraded, so re-queued heal work
  /// is a safe no-op. Device-charged bytes of one copy via bytes_of().
  std::vector<NodeId> heal(const ChunkKey& key);
  u64 bytes_of(const ChunkKey& key) const;

  /// Simulated node failure / recovery. Failure does not touch the
  /// repository (content survives in the index) — it makes the bytes on
  /// that node unreachable, which is exactly what placement models.
  void fail_node(NodeId node);
  void revive_node(NodeId node);
  bool node_alive(NodeId node) const;
  /// Any node currently failed? The cheap guard in front of
  /// O(chunk-refs) loss scans: with every node alive nothing can be lost.
  bool any_dead() const;

  /// Chunks / stored bytes with no surviving replica (the replicas == 1
  /// data-loss path). O(placed chunks); called from pre-flight and tests.
  u64 lost_chunks() const;
  u64 lost_bytes() const;
  u64 placed_chunks() const { return entries_.size(); }
  /// Stored bytes currently resident per node (replica copies included).
  std::vector<u64> bytes_per_node() const;

 private:
  struct Entry {
    std::vector<NodeId> homes;  // best-first at store time
    u64 bytes = 0;              // device-charged bytes of one copy
  };
  static u64 score(const ChunkKey& key, NodeId node);
  bool entry_lost(const Entry& e) const;

  int replicas_;
  std::vector<bool> alive_;
  std::map<ChunkKey, Entry> entries_;
};

}  // namespace dsim::ckptstore
