// Per-node chunk placement, replication and erasure striping for the
// cluster-wide store.
//
// The cluster-scope repository answers *what* is stored; this layer answers
// *where*. Two redundancy modes share the rendezvous-hash machinery:
//
//   Replication (default): every stored chunk is placed on `replicas`
//   distinct node-local devices (highest-random-weight over (key, node)).
//   Any surviving home serves reads; R-1 node losses are survivable at R×
//   stored bytes.
//
//   Erasure (enable_erasure(k, m)): every stored chunk container is striped
//   into k data + m parity fragments (src/ckptstore/erasure.*), fragment i
//   living on the i-th rendezvous home. Any k clean, alive fragments
//   reconstruct the chunk — m losses are survivable at (k+m)/k stored
//   bytes, the better byte economics bench_erasure gates. The code is
//   systematic, so a healthy read fetches only the k data fragments and
//   skips the decode; reads through dead or corrupt fragments substitute
//   parity and pay decode CPU (read_plan() reports which).
//
// Both modes keep the rendezvous properties:
//   - restart reads are charged to the devices of the nodes that actually
//     hold each chunk's bytes, not the restarting node's;
//   - assignments are stable — a node failure moves nothing that survives,
//     it only removes the failed node from every preference list, so
//     heal() rebuilds exactly the fragments/copies that died;
//   - per-fragment corruption (corrupt_fragment(), the scrubber's fault
//     model) is repairable in place from the k clean survivors
//     (repair_fragments()) instead of quarantining the whole chunk.
//
// Tiering: set_cold_profile(k', m') arms demote(), which re-stripes a
// chunk to the wider cold profile (background re-encode; the demotion
// daemon in ChunkStoreService drives it for generations older than
// --hot-generations). Entries record their own (k, m), so hot and cold
// chunks coexist in one placement map.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "ckptstore/chunk.h"
#include "util/types.h"

namespace dsim::ckptstore {

class ChunkPlacement {
 public:
  ChunkPlacement(int num_nodes, int replicas);

  int num_nodes() const { return static_cast<int>(alive_.size()); }
  int replicas() const { return replicas_; }

  /// Switch new stores to (k,m) erasure striping (2 <= k, 1 <= m,
  /// fragment count capped at 32 by the corrupt-mask width). Call before
  /// the first record_store; replaces `replicas` as the redundancy scheme.
  void enable_erasure(int k, int m);
  bool erasure_enabled() const { return erasure_k_ > 0; }
  int erasure_k() const { return erasure_k_; }
  int erasure_m() const { return erasure_m_; }
  /// Arm demote(): the wider (k,m) profile cold chunks re-stripe to.
  void set_cold_profile(int k, int m);

  /// A recorded chunk's own erasure profile ({0,0,0} for replication
  /// entries): the service uses frag_bytes to charge per-fragment device
  /// and network traffic.
  struct ErasureInfo {
    int k = 0;
    int m = 0;
    u64 frag_bytes = 0;
  };
  ErasureInfo erasure_info(const ChunkKey& key) const;

  /// The min(want, alive nodes) highest-scoring *alive* nodes for `key`,
  /// best first, where want is replicas (replication) or k+m (erasure).
  /// Pure function of (key, alive set).
  std::vector<NodeId> place(const ChunkKey& key) const;

  /// Record a chunk stored on its current placement. Returns the homes the
  /// caller must charge the write to (one replica copy — or one fragment —
  /// per home; see home_charge()). Re-recording an already-placed key is a
  /// no-op returning no homes (dedup hit: the bytes are already on disk).
  std::vector<NodeId> record_store(const ChunkKey& key, u64 charged_bytes);

  /// The preferred surviving home holding readable bytes of `key` (first
  /// alive, non-corrupt fragment home under erasure), or kNoHolder when
  /// nothing survives (or the key was never recorded).
  static constexpr i32 kNoHolder = -1;
  i32 holder(const ChunkKey& key) const;
  /// True when `key` is recorded and readable: a surviving replica, or >= k
  /// clean alive fragments under erasure.
  bool available(const ChunkKey& key) const;
  /// The recorded homes of `key`, best-first as placed (dead ones
  /// included; fragment i lives on homes[i] under erasure). Restart uses
  /// read_plan() instead — it additionally filters corruption and
  /// membership.
  std::vector<NodeId> homes_of(const ChunkKey& key) const;

  /// The devices to read `key` back from. Replication: one surviving home,
  /// full bytes. Erasure: k clean alive fragment homes at frag_bytes each —
  /// the k data fragments when all are healthy (`*needs_decode` = false:
  /// systematic concatenation), otherwise any k survivors with
  /// `*needs_decode` = true (the caller charges decode CPU at kErasureBw).
  /// `also_alive`, when set, additionally filters sources (restart passes
  /// the membership view — belt and braces over placement's ground truth).
  /// Empty when the chunk is not readable (lost, or never recorded).
  struct FetchSource {
    NodeId node = 0;
    u64 bytes = 0;
  };
  std::vector<FetchSource> read_plan(
      const ChunkKey& key, bool* needs_decode,
      const std::function<bool(NodeId)>& also_alive = nullptr) const;

  /// True when `key` is recorded, readable, and below full redundancy
  /// (alive, clean homes < min(want, alive nodes)) — the per-key form of
  /// degraded_chunks(), used by the scrubber to re-route stragglers into
  /// the heal path.
  bool degraded(const ChunkKey& key) const;
  /// True only for a *recorded* chunk that is unreadable — every replica
  /// dead, or fewer than k clean alive fragments. Distinct from
  /// !available(): an unrecorded key is not lost, its Store is simply
  /// still in flight somewhere this round.
  bool lost(const ChunkKey& key) const;

  /// Simulated fragment rot (erasure only): mark fragment `index` of `key`
  /// corrupt. Returns false when the key is unknown, not erasure-coded, or
  /// the index is out of range. The scrubber repairs corrupt fragments in
  /// place via repair_fragments().
  bool corrupt_fragment(const ChunkKey& key, int index);
  /// Bitmask of currently-corrupt fragment indices (0 when clean or not
  /// erasure-coded).
  u32 corrupt_mask(const ChunkKey& key) const;
  /// Repair every corrupt fragment of `key` in place: requires >= k clean
  /// alive fragments to reconstruct from. Clears the corrupt bits and
  /// returns the *alive* homes whose fragments were rewritten (the caller
  /// charges one frag_bytes write per home); empty when nothing is corrupt
  /// or the chunk is beyond repair (> m bad fragments — quarantine path).
  std::vector<NodeId> repair_fragments(const ChunkKey& key);

  /// Drop the chunk's placement record (GC reclaimed it). Returns the
  /// *alive* homes whose devices the caller should trim (home_charge()
  /// bytes each, read *before* forgetting); dead homes are gone with their
  /// node.
  std::vector<NodeId> forget(const ChunkKey& key);
  /// Device bytes one home of `key` holds: frag_bytes under erasure, the
  /// full charged bytes under replication. 0 for unknown keys.
  u64 home_charge(const ChunkKey& key) const;

  /// Recompute an existing entry's homes over the currently-alive nodes
  /// (healing a chunk whose content must be re-stored from scratch).
  /// Returns the new homes — the copies/fragments the caller must write —
  /// or empty when the key was never recorded. Under erasure this is a
  /// full re-stripe: fresh fragments everywhere, corruption cleared.
  std::vector<NodeId> re_place(const ChunkKey& key);

  /// Recorded chunks that are readable but below full redundancy —
  /// degraded, healable from survivors. Disjoint from lost(): an
  /// unreadable entry is not degraded.
  std::vector<ChunkKey> degraded_chunks() const;
  u64 degraded_count() const;

  /// Heal one degraded entry. Replication: recompute the full placement
  /// over the alive nodes (rendezvous keeps every surviving home) and
  /// return the *fresh* homes — the copies the re-replication daemon must
  /// write, charged bytes_of() each. Erasure: surviving fragments stay
  /// pinned to their slots; each dead slot is reassigned to the next fresh
  /// rendezvous node and its fragment must be *rebuilt* there from k
  /// survivors (frag_bytes each — the caller reads a read_plan() taken
  /// before this call). Empty when the key is unknown, lost, or not
  /// degraded, so re-queued heal work is a safe no-op.
  std::vector<NodeId> heal(const ChunkKey& key);
  u64 bytes_of(const ChunkKey& key) const;

  /// Re-stripe a hot erasure chunk to the cold profile (set_cold_profile).
  /// The plan carries everything the demotion daemon charges: k read
  /// sources at the hot frag_bytes, the alive hot homes to trim, and the
  /// new cold homes to write. Empty (no reads, no writes) when the key is
  /// unknown, not erasure-coded, already cold, unreadable, or no cold
  /// profile is armed.
  struct DemotePlan {
    std::vector<FetchSource> read;  // k hot-fragment sources
    std::vector<NodeId> trim;       // alive hot homes; trim_bytes each
    u64 trim_bytes = 0;
    std::vector<NodeId> write;  // cold homes; write_bytes each
    u64 write_bytes = 0;
    u64 logical_bytes = 0;  // the chunk's full charged bytes
  };
  DemotePlan demote(const ChunkKey& key);

  /// Simulated node failure / recovery. Failure does not touch the
  /// repository (content survives in the index) — it makes the bytes on
  /// that node unreachable, which is exactly what placement models.
  void fail_node(NodeId node);
  void revive_node(NodeId node);
  bool node_alive(NodeId node) const;
  /// Any node currently failed? The cheap guard in front of
  /// O(chunk-refs) loss scans: with every node alive nothing can be lost.
  bool any_dead() const;

  /// Chunks / stored bytes that are unreadable (every replica gone, or
  /// > m fragments gone). O(placed chunks); called from pre-flight and
  /// tests.
  u64 lost_chunks() const;
  u64 lost_bytes() const;
  u64 placed_chunks() const { return entries_.size(); }
  /// Stored bytes currently resident per node (replica copies counted in
  /// full, erasure fragments at frag_bytes — the physical device footprint
  /// bench_erasure's overhead comparison sums).
  std::vector<u64> bytes_per_node() const;

 private:
  struct Entry {
    std::vector<NodeId> homes;  // best-first at store time; slot i = frag i
    u64 bytes = 0;              // device-charged bytes of the whole chunk
    u16 k = 0;                  // erasure profile; 0 = replication entry
    u16 m = 0;
    u64 frag_bytes = 0;     // per-fragment device bytes (erasure only)
    u32 corrupt_mask = 0;   // bit i: fragment i rotten (erasure only)
  };
  static u64 score(const ChunkKey& key, NodeId node);
  /// Top `want` alive nodes by rendezvous score, best first.
  std::vector<NodeId> place_n(const ChunkKey& key, size_t want) const;
  /// Alive, non-corrupt homes/fragments of an entry.
  size_t clean_alive(const Entry& e) const;
  /// Full-strength home count for an entry given the current alive set.
  size_t want_homes(const Entry& e, size_t alive_nodes) const;
  bool entry_lost(const Entry& e) const;
  bool entry_degraded(const Entry& e, size_t alive_nodes) const;
  size_t count_alive() const;

  int replicas_;
  int erasure_k_ = 0;
  int erasure_m_ = 0;
  int cold_k_ = 0;
  int cold_m_ = 0;
  std::vector<bool> alive_;
  std::map<ChunkKey, Entry> entries_;
};

}  // namespace dsim::ckptstore
