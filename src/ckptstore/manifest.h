// Per-generation checkpoint manifests.
//
// In incremental mode the file written to the checkpoint directory is not
// the memory image but a manifest: the image's metadata plus, per segment,
// the ordered list of chunk references that reassemble its content from the
// chunk repository. The manifest is the unit of retention — a generation is
// live while its manifest is, and GC drops chunks referenced only by dead
// manifests.
#pragma once

#include <string>
#include <vector>

#include "ckptstore/cdc.h"
#include "ckptstore/chunk.h"
#include "util/serialize.h"
#include "util/types.h"

namespace dsim::ckptstore {

/// One segment's reassembly recipe.
struct SegmentManifest {
  std::string name;
  u8 kind = 0;  // sim::MemKind, opaque at this layer
  bool shared = false;
  std::string backing_path;
  u64 size = 0;
  std::vector<ChunkRef> chunks;
};

struct Manifest {
  static constexpr u32 kMagic = 0x53434D44;  // "DMCS" little-endian

  std::string owner;   // stable process identity (virtual pid)
  int generation = 0;  // checkpoint round the manifest belongs to
  /// How the segments were chunked (mode + fixed/CDC knobs). Restart
  /// validates this against core::validate_chunking before trusting it.
  ChunkingParams chunking;
  u8 codec = 0;  // compress::CodecKind the chunk containers use
  /// Opaque blob from the layer above (mtcp identity, threads, signals,
  /// DMTCP connection table).
  std::vector<std::byte> meta_blob;
  std::vector<SegmentManifest> segments;

  /// Sum of segment (virtual) sizes.
  u64 full_bytes() const;
  /// Every chunk key referenced, in segment order (with duplicates).
  std::vector<ChunkKey> all_keys() const;

  /// Serialize with a trailing CRC-32 of the whole manifest.
  std::vector<std::byte> encode() const;
  /// Inverse of encode(); aborts on magic/CRC mismatch (a corrupt manifest
  /// is unrecoverable — chunk-level corruption is the graceful path).
  static Manifest decode(std::span<const std::byte> bytes);
  /// Cheap container sniff: does `bytes` start with the manifest magic?
  static bool is_manifest(std::span<const std::byte> bytes);
};

}  // namespace dsim::ckptstore
