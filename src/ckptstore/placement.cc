#include "ckptstore/placement.h"

#include <algorithm>

#include "util/assertx.h"
#include "util/rng.h"

namespace dsim::ckptstore {

ChunkPlacement::ChunkPlacement(int num_nodes, int replicas)
    : replicas_(replicas), alive_(static_cast<size_t>(num_nodes), true) {
  DSIM_CHECK_MSG(num_nodes >= 1, "placement needs at least one node");
  DSIM_CHECK_MSG(replicas >= 1, "placement needs at least one replica");
}

u64 ChunkPlacement::score(const ChunkKey& key, NodeId node) {
  // Chained mix64 over (node, key.lo, key.hi): an independent uniform
  // draw per (key, node) pair — the highest-random-weight (rendezvous)
  // construction. Each input passes through a full avalanche round, so
  // structured keys (the store's tagged synthetic zero/rand keys, or a
  // test's sequential ones) spread as well as content hashes do.
  return mix64(key.hi ^ mix64(key.lo ^ mix64(static_cast<u64>(node))));
}

std::vector<NodeId> ChunkPlacement::place(const ChunkKey& key) const {
  std::vector<std::pair<u64, NodeId>> scored;
  for (size_t n = 0; n < alive_.size(); ++n) {
    if (!alive_[n]) continue;
    scored.emplace_back(score(key, static_cast<NodeId>(n)),
                        static_cast<NodeId>(n));
  }
  const size_t want = std::min<size_t>(static_cast<size_t>(replicas_),
                                       scored.size());
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<ptrdiff_t>(want),
                    scored.end(), std::greater<>());
  std::vector<NodeId> out;
  out.reserve(want);
  for (size_t i = 0; i < want; ++i) out.push_back(scored[i].second);
  return out;
}

std::vector<NodeId> ChunkPlacement::record_store(const ChunkKey& key,
                                                 u64 charged_bytes) {
  auto [it, fresh] = entries_.try_emplace(key);
  if (!fresh) return {};  // dedup hit: the copies are already placed
  it->second.homes = place(key);
  it->second.bytes = charged_bytes;
  DSIM_CHECK_MSG(!it->second.homes.empty(),
                 "chunk store has no alive node to place on");
  return it->second.homes;
}

i32 ChunkPlacement::holder(const ChunkKey& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return kNoHolder;
  for (NodeId n : it->second.homes) {
    if (node_alive(n)) return n;
  }
  return kNoHolder;
}

bool ChunkPlacement::lost(const ChunkKey& key) const {
  auto it = entries_.find(key);
  return it != entries_.end() && entry_lost(it->second);
}

std::vector<NodeId> ChunkPlacement::homes_of(const ChunkKey& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? std::vector<NodeId>{} : it->second.homes;
}

bool ChunkPlacement::degraded(const ChunkKey& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  const size_t alive_nodes = static_cast<size_t>(
      std::count(alive_.begin(), alive_.end(), true));
  const size_t want = std::min<size_t>(static_cast<size_t>(replicas_),
                                       alive_nodes);
  const size_t alive_homes = static_cast<size_t>(std::count_if(
      it->second.homes.begin(), it->second.homes.end(),
      [&](NodeId n) { return node_alive(n); }));
  return alive_homes > 0 && alive_homes < want;
}

std::vector<NodeId> ChunkPlacement::forget(const ChunkKey& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return {};
  std::vector<NodeId> alive_homes;
  for (NodeId n : it->second.homes) {
    if (node_alive(n)) alive_homes.push_back(n);
  }
  entries_.erase(it);
  return alive_homes;
}

std::vector<NodeId> ChunkPlacement::re_place(const ChunkKey& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return {};
  it->second.homes = place(key);
  DSIM_CHECK_MSG(!it->second.homes.empty(),
                 "chunk store has no alive node to re-place on");
  return it->second.homes;
}

std::vector<ChunkKey> ChunkPlacement::degraded_chunks() const {
  std::vector<ChunkKey> out;
  if (!any_dead()) return out;  // full placements everywhere: nothing to heal
  const size_t alive_nodes = static_cast<size_t>(
      std::count(alive_.begin(), alive_.end(), true));
  const size_t want = std::min<size_t>(static_cast<size_t>(replicas_),
                                       alive_nodes);
  for (const auto& [key, e] : entries_) {
    const size_t alive_homes = static_cast<size_t>(std::count_if(
        e.homes.begin(), e.homes.end(),
        [&](NodeId n) { return node_alive(n); }));
    if (alive_homes > 0 && alive_homes < want) out.push_back(key);
  }
  return out;
}

u64 ChunkPlacement::degraded_count() const {
  if (!any_dead()) return 0;
  const size_t alive_nodes = static_cast<size_t>(
      std::count(alive_.begin(), alive_.end(), true));
  const size_t want = std::min<size_t>(static_cast<size_t>(replicas_),
                                       alive_nodes);
  u64 degraded = 0;
  for (const auto& [key, e] : entries_) {
    const size_t alive_homes = static_cast<size_t>(std::count_if(
        e.homes.begin(), e.homes.end(),
        [&](NodeId n) { return node_alive(n); }));
    if (alive_homes > 0 && alive_homes < want) ++degraded;
  }
  return degraded;
}

std::vector<NodeId> ChunkPlacement::heal(const ChunkKey& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return {};
  std::vector<NodeId> alive_homes;
  for (NodeId n : it->second.homes) {
    if (node_alive(n)) alive_homes.push_back(n);
  }
  if (alive_homes.empty()) return {};  // lost: re_place()'s job, not heal's
  const std::vector<NodeId> want = place(key);
  if (want.size() <= alive_homes.size()) return {};  // already at strength
  // Rendezvous scores are fixed per (key, node), so removing dead nodes only
  // promotes the next-best scorers: `want` is a superset of the surviving
  // homes, and the difference is exactly the copies to write.
  std::vector<NodeId> fresh;
  for (NodeId n : want) {
    if (std::find(alive_homes.begin(), alive_homes.end(), n) ==
        alive_homes.end()) {
      fresh.push_back(n);
    }
  }
  it->second.homes = want;
  return fresh;
}

u64 ChunkPlacement::bytes_of(const ChunkKey& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? 0 : it->second.bytes;
}

void ChunkPlacement::fail_node(NodeId node) {
  DSIM_CHECK(node >= 0 && static_cast<size_t>(node) < alive_.size());
  alive_[static_cast<size_t>(node)] = false;
}

void ChunkPlacement::revive_node(NodeId node) {
  DSIM_CHECK(node >= 0 && static_cast<size_t>(node) < alive_.size());
  // Revival restores the *node*, not the chunk bytes it lost: chunks whose
  // homes all died stay lost until re-stored by a future generation.
  alive_[static_cast<size_t>(node)] = true;
}

bool ChunkPlacement::node_alive(NodeId node) const {
  return node >= 0 && static_cast<size_t>(node) < alive_.size() &&
         alive_[static_cast<size_t>(node)];
}

bool ChunkPlacement::any_dead() const {
  return std::find(alive_.begin(), alive_.end(), false) != alive_.end();
}

bool ChunkPlacement::entry_lost(const Entry& e) const {
  return std::none_of(e.homes.begin(), e.homes.end(),
                      [&](NodeId n) { return node_alive(n); });
}

u64 ChunkPlacement::lost_chunks() const {
  u64 lost = 0;
  for (const auto& [key, e] : entries_) {
    if (entry_lost(e)) ++lost;
  }
  return lost;
}

u64 ChunkPlacement::lost_bytes() const {
  u64 lost = 0;
  for (const auto& [key, e] : entries_) {
    if (entry_lost(e)) lost += e.bytes;
  }
  return lost;
}

std::vector<u64> ChunkPlacement::bytes_per_node() const {
  std::vector<u64> out(alive_.size(), 0);
  for (const auto& [key, e] : entries_) {
    for (NodeId n : e.homes) out[static_cast<size_t>(n)] += e.bytes;
  }
  return out;
}

}  // namespace dsim::ckptstore
