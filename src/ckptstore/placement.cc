#include "ckptstore/placement.h"

#include <algorithm>

#include "ckptstore/erasure.h"
#include "util/assertx.h"
#include "util/rng.h"

namespace dsim::ckptstore {

ChunkPlacement::ChunkPlacement(int num_nodes, int replicas)
    : replicas_(replicas), alive_(static_cast<size_t>(num_nodes), true) {
  DSIM_CHECK_MSG(num_nodes >= 1, "placement needs at least one node");
  DSIM_CHECK_MSG(replicas >= 1, "placement needs at least one replica");
}

void ChunkPlacement::enable_erasure(int k, int m) {
  DSIM_CHECK_MSG(entries_.empty(),
                 "enable_erasure must precede the first record_store");
  DSIM_CHECK_MSG(k >= 2 && m >= 1 && k + m <= 32,
                 "erasure profile must satisfy 2 <= k, 1 <= m, k+m <= 32");
  DSIM_CHECK_MSG(k + m <= num_nodes(),
                 "erasure needs k+m distinct nodes for the fragments");
  erasure_k_ = k;
  erasure_m_ = m;
}

void ChunkPlacement::set_cold_profile(int k, int m) {
  DSIM_CHECK_MSG(erasure_enabled(),
                 "cold profile requires erasure mode (enable_erasure first)");
  DSIM_CHECK_MSG(k >= 2 && m >= 1 && k + m <= 32,
                 "cold profile must satisfy 2 <= k, 1 <= m, k+m <= 32");
  DSIM_CHECK_MSG(k + m <= num_nodes(),
                 "cold profile needs k+m distinct nodes for the fragments");
  cold_k_ = k;
  cold_m_ = m;
}

ChunkPlacement::ErasureInfo ChunkPlacement::erasure_info(
    const ChunkKey& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.k == 0) return {};
  return {it->second.k, it->second.m, it->second.frag_bytes};
}

u64 ChunkPlacement::score(const ChunkKey& key, NodeId node) {
  // Chained mix64 over (node, key.lo, key.hi): an independent uniform
  // draw per (key, node) pair — the highest-random-weight (rendezvous)
  // construction. Each input passes through a full avalanche round, so
  // structured keys (the store's tagged synthetic zero/rand keys, or a
  // test's sequential ones) spread as well as content hashes do.
  return mix64(key.hi ^ mix64(key.lo ^ mix64(static_cast<u64>(node))));
}

std::vector<NodeId> ChunkPlacement::place_n(const ChunkKey& key,
                                            size_t want) const {
  std::vector<std::pair<u64, NodeId>> scored;
  for (size_t n = 0; n < alive_.size(); ++n) {
    if (!alive_[n]) continue;
    scored.emplace_back(score(key, static_cast<NodeId>(n)),
                        static_cast<NodeId>(n));
  }
  want = std::min(want, scored.size());
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<ptrdiff_t>(want),
                    scored.end(), std::greater<>());
  std::vector<NodeId> out;
  out.reserve(want);
  for (size_t i = 0; i < want; ++i) out.push_back(scored[i].second);
  return out;
}

std::vector<NodeId> ChunkPlacement::place(const ChunkKey& key) const {
  return place_n(key, erasure_enabled()
                          ? static_cast<size_t>(erasure_k_ + erasure_m_)
                          : static_cast<size_t>(replicas_));
}

std::vector<NodeId> ChunkPlacement::record_store(const ChunkKey& key,
                                                 u64 charged_bytes) {
  auto [it, fresh] = entries_.try_emplace(key);
  if (!fresh) return {};  // dedup hit: the copies are already placed
  it->second.homes = place(key);
  it->second.bytes = charged_bytes;
  if (erasure_enabled()) {
    it->second.k = static_cast<u16>(erasure_k_);
    it->second.m = static_cast<u16>(erasure_m_);
    it->second.frag_bytes = erasure::fragment_bytes(charged_bytes, erasure_k_);
  }
  DSIM_CHECK_MSG(!it->second.homes.empty(),
                 "chunk store has no alive node to place on");
  return it->second.homes;
}

i32 ChunkPlacement::holder(const ChunkKey& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return kNoHolder;
  const Entry& e = it->second;
  for (size_t i = 0; i < e.homes.size(); ++i) {
    if (!node_alive(e.homes[i])) continue;
    if (e.k > 0 && (e.corrupt_mask >> i) & 1u) continue;
    return e.homes[i];
  }
  return kNoHolder;
}

bool ChunkPlacement::available(const ChunkKey& key) const {
  auto it = entries_.find(key);
  return it != entries_.end() && !entry_lost(it->second);
}

bool ChunkPlacement::lost(const ChunkKey& key) const {
  auto it = entries_.find(key);
  return it != entries_.end() && entry_lost(it->second);
}

std::vector<NodeId> ChunkPlacement::homes_of(const ChunkKey& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? std::vector<NodeId>{} : it->second.homes;
}

std::vector<ChunkPlacement::FetchSource> ChunkPlacement::read_plan(
    const ChunkKey& key, bool* needs_decode,
    const std::function<bool(NodeId)>& also_alive) const {
  *needs_decode = false;
  auto it = entries_.find(key);
  if (it == entries_.end()) return {};
  const Entry& e = it->second;
  auto usable = [&](size_t i) {
    if (!node_alive(e.homes[i])) return false;
    if (e.k > 0 && (e.corrupt_mask >> i) & 1u) return false;
    return !also_alive || also_alive(e.homes[i]);
  };
  if (e.k == 0) {
    // Replication: any one surviving copy carries the whole chunk.
    for (size_t i = 0; i < e.homes.size(); ++i) {
      if (usable(i)) return {{e.homes[i], e.bytes}};
    }
    return {};
  }
  // Erasure: the k data fragments when healthy (systematic — no decode),
  // else the first k usable fragments of any kind plus a decode pass.
  const size_t k = e.k;
  std::vector<size_t> picks;
  picks.reserve(k);
  for (size_t i = 0; i < e.homes.size() && picks.size() < k; ++i) {
    if (usable(i)) picks.push_back(i);
  }
  if (picks.size() < k) return {};  // unreadable through this view
  for (size_t i = 0; i < k; ++i) {
    if (picks[i] != i) {
      *needs_decode = true;  // a parity fragment substitutes for data
      break;
    }
  }
  std::vector<FetchSource> out;
  out.reserve(k);
  for (size_t i : picks) out.push_back({e.homes[i], e.frag_bytes});
  return out;
}

bool ChunkPlacement::degraded(const ChunkKey& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  return entry_degraded(it->second, count_alive());
}

bool ChunkPlacement::corrupt_fragment(const ChunkKey& key, int index) {
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.k == 0) return false;
  if (index < 0 || static_cast<size_t>(index) >= it->second.homes.size()) {
    return false;
  }
  it->second.corrupt_mask |= 1u << index;
  return true;
}

u32 ChunkPlacement::corrupt_mask(const ChunkKey& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? 0 : it->second.corrupt_mask;
}

std::vector<NodeId> ChunkPlacement::repair_fragments(const ChunkKey& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return {};
  Entry& e = it->second;
  if (e.k == 0 || e.corrupt_mask == 0) return {};
  if (clean_alive(e) < e.k) return {};  // beyond repair: quarantine path
  std::vector<NodeId> rewritten;
  for (size_t i = 0; i < e.homes.size(); ++i) {
    if (!((e.corrupt_mask >> i) & 1u)) continue;
    // A corrupt fragment on a dead node is the heal daemon's problem (the
    // slot gets a fresh home anyway); repair rewrites the alive ones.
    if (node_alive(e.homes[i])) rewritten.push_back(e.homes[i]);
    e.corrupt_mask &= ~(1u << i);
  }
  return rewritten;
}

std::vector<NodeId> ChunkPlacement::forget(const ChunkKey& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return {};
  std::vector<NodeId> alive_homes;
  for (NodeId n : it->second.homes) {
    if (node_alive(n)) alive_homes.push_back(n);
  }
  entries_.erase(it);
  return alive_homes;
}

u64 ChunkPlacement::home_charge(const ChunkKey& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return 0;
  return it->second.k > 0 ? it->second.frag_bytes : it->second.bytes;
}

std::vector<NodeId> ChunkPlacement::re_place(const ChunkKey& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return {};
  it->second.homes = place(key);
  it->second.corrupt_mask = 0;  // fresh fragments everywhere
  DSIM_CHECK_MSG(!it->second.homes.empty(),
                 "chunk store has no alive node to re-place on");
  return it->second.homes;
}

std::vector<ChunkKey> ChunkPlacement::degraded_chunks() const {
  std::vector<ChunkKey> out;
  if (!any_dead()) return out;  // full placements everywhere: nothing to heal
  const size_t alive_nodes = count_alive();
  for (const auto& [key, e] : entries_) {
    if (entry_degraded(e, alive_nodes)) out.push_back(key);
  }
  return out;
}

u64 ChunkPlacement::degraded_count() const {
  if (!any_dead()) return 0;
  const size_t alive_nodes = count_alive();
  u64 degraded = 0;
  for (const auto& [key, e] : entries_) {
    if (entry_degraded(e, alive_nodes)) ++degraded;
  }
  return degraded;
}

std::vector<NodeId> ChunkPlacement::heal(const ChunkKey& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return {};
  Entry& e = it->second;
  std::vector<NodeId> alive_homes;
  for (NodeId n : e.homes) {
    if (node_alive(n)) alive_homes.push_back(n);
  }
  if (e.k == 0) {
    if (alive_homes.empty()) return {};  // lost: re_place()'s job, not heal's
    const std::vector<NodeId> want = place(key);
    if (want.size() <= alive_homes.size()) return {};  // already at strength
    // Rendezvous scores are fixed per (key, node), so removing dead nodes
    // only promotes the next-best scorers: `want` is a superset of the
    // surviving homes, and the difference is exactly the copies to write.
    std::vector<NodeId> fresh;
    for (NodeId n : want) {
      if (std::find(alive_homes.begin(), alive_homes.end(), n) ==
          alive_homes.end()) {
        fresh.push_back(n);
      }
    }
    e.homes = want;
    return fresh;
  }
  // Erasure: surviving fragments stay pinned to their slots (their bytes
  // are already right); only dead slots get fresh homes, and each fresh
  // home receives a *rebuilt* fragment decoded from k survivors.
  if (clean_alive(e) < e.k) return {};  // lost: nothing to rebuild from
  const std::vector<NodeId> want =
      place_n(key, static_cast<size_t>(e.k + e.m));
  std::vector<NodeId> candidates;  // alive, not already hosting a fragment
  for (NodeId n : want) {
    if (std::find(alive_homes.begin(), alive_homes.end(), n) ==
        alive_homes.end()) {
      candidates.push_back(n);
    }
  }
  std::vector<NodeId> fresh;
  size_t next = 0;
  for (size_t i = 0; i < e.homes.size() && next < candidates.size(); ++i) {
    if (node_alive(e.homes[i])) continue;
    e.homes[i] = candidates[next++];
    e.corrupt_mask &= ~(1u << i);  // the rebuilt fragment is clean
    fresh.push_back(e.homes[i]);
  }
  return fresh;
}

u64 ChunkPlacement::bytes_of(const ChunkKey& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? 0 : it->second.bytes;
}

ChunkPlacement::DemotePlan ChunkPlacement::demote(const ChunkKey& key) {
  DemotePlan plan;
  if (cold_k_ == 0) return plan;
  auto it = entries_.find(key);
  if (it == entries_.end()) return plan;
  Entry& e = it->second;
  if (e.k == 0) return plan;  // replication entries never re-stripe
  if (e.k == cold_k_ && e.m == cold_m_) return plan;  // already cold
  bool needs_decode = false;
  plan.read = read_plan(key, &needs_decode);
  if (plan.read.empty()) return plan;  // unreadable: heal/restore territory
  plan.trim_bytes = e.frag_bytes;
  for (NodeId n : e.homes) {
    if (node_alive(n)) plan.trim.push_back(n);
  }
  e.k = static_cast<u16>(cold_k_);
  e.m = static_cast<u16>(cold_m_);
  e.frag_bytes = erasure::fragment_bytes(e.bytes, cold_k_);
  e.corrupt_mask = 0;
  e.homes = place_n(key, static_cast<size_t>(cold_k_ + cold_m_));
  plan.write = e.homes;
  plan.write_bytes = e.frag_bytes;
  plan.logical_bytes = e.bytes;
  return plan;
}

void ChunkPlacement::fail_node(NodeId node) {
  DSIM_CHECK(node >= 0 && static_cast<size_t>(node) < alive_.size());
  alive_[static_cast<size_t>(node)] = false;
}

void ChunkPlacement::revive_node(NodeId node) {
  DSIM_CHECK(node >= 0 && static_cast<size_t>(node) < alive_.size());
  // Revival restores the *node*, not the chunk bytes it lost: chunks whose
  // homes all died stay lost until re-stored by a future generation.
  alive_[static_cast<size_t>(node)] = true;
}

bool ChunkPlacement::node_alive(NodeId node) const {
  return node >= 0 && static_cast<size_t>(node) < alive_.size() &&
         alive_[static_cast<size_t>(node)];
}

bool ChunkPlacement::any_dead() const {
  return std::find(alive_.begin(), alive_.end(), false) != alive_.end();
}

size_t ChunkPlacement::clean_alive(const Entry& e) const {
  size_t clean = 0;
  for (size_t i = 0; i < e.homes.size(); ++i) {
    if (!node_alive(e.homes[i])) continue;
    if (e.k > 0 && (e.corrupt_mask >> i) & 1u) continue;
    ++clean;
  }
  return clean;
}

size_t ChunkPlacement::want_homes(const Entry& e, size_t alive_nodes) const {
  const size_t full = e.k > 0 ? static_cast<size_t>(e.k + e.m)
                              : static_cast<size_t>(replicas_);
  return std::min(full, alive_nodes);
}

bool ChunkPlacement::entry_lost(const Entry& e) const {
  if (e.k > 0) return clean_alive(e) < e.k;
  return std::none_of(e.homes.begin(), e.homes.end(),
                      [&](NodeId n) { return node_alive(n); });
}

bool ChunkPlacement::entry_degraded(const Entry& e,
                                    size_t alive_nodes) const {
  const size_t clean = clean_alive(e);
  if (e.k > 0 && clean < e.k) return false;  // lost, not degraded
  if (e.k == 0 && clean == 0) return false;
  return clean < want_homes(e, alive_nodes);
}

size_t ChunkPlacement::count_alive() const {
  return static_cast<size_t>(
      std::count(alive_.begin(), alive_.end(), true));
}

u64 ChunkPlacement::lost_chunks() const {
  u64 lost = 0;
  for (const auto& [key, e] : entries_) {
    if (entry_lost(e)) ++lost;
  }
  return lost;
}

u64 ChunkPlacement::lost_bytes() const {
  u64 lost = 0;
  for (const auto& [key, e] : entries_) {
    if (entry_lost(e)) lost += e.bytes;
  }
  return lost;
}

std::vector<u64> ChunkPlacement::bytes_per_node() const {
  std::vector<u64> out(alive_.size(), 0);
  for (const auto& [key, e] : entries_) {
    const u64 per_home = e.k > 0 ? e.frag_bytes : e.bytes;
    for (NodeId n : e.homes) out[static_cast<size_t>(n)] += per_home;
  }
  return out;
}

}  // namespace dsim::ckptstore
