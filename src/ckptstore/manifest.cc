#include "ckptstore/manifest.h"

#include "util/assertx.h"
#include "util/crc32.h"

namespace dsim::ckptstore {

u64 Manifest::full_bytes() const {
  u64 acc = 0;
  for (const auto& s : segments) acc += s.size;
  return acc;
}

std::vector<ChunkKey> Manifest::all_keys() const {
  std::vector<ChunkKey> keys;
  for (const auto& s : segments) {
    for (const auto& c : s.chunks) keys.push_back(c.key);
  }
  return keys;
}

std::vector<std::byte> Manifest::encode() const {
  ByteWriter w;
  w.put_u32(kMagic);
  w.put_string(owner);
  w.put_i32(generation);
  chunking.serialize(w);
  w.put_u8(codec);
  w.put_blob(meta_blob);
  w.put_u64(segments.size());
  for (const auto& s : segments) {
    w.put_string(s.name);
    w.put_u8(s.kind);
    w.put_bool(s.shared);
    w.put_string(s.backing_path);
    w.put_u64(s.size);
    w.put_u64(s.chunks.size());
    for (const auto& c : s.chunks) c.serialize(w);
  }
  w.put_u32(crc32(w.bytes()));
  return w.take();
}

Manifest Manifest::decode(std::span<const std::byte> bytes) {
  DSIM_CHECK_MSG(bytes.size() > 8, "manifest truncated");
  const u32 body_crc = crc32(bytes.subspan(0, bytes.size() - 4));
  ByteReader r(bytes);
  Manifest m;
  DSIM_CHECK_MSG(r.get_u32() == kMagic, "not a checkpoint manifest");
  m.owner = r.get_string();
  m.generation = r.get_i32();
  m.chunking = ChunkingParams::deserialize(r);
  m.codec = r.get_u8();
  m.meta_blob = r.get_blob();
  const u64 nseg = r.get_u64();
  for (u64 i = 0; i < nseg; ++i) {
    SegmentManifest s;
    s.name = r.get_string();
    s.kind = r.get_u8();
    s.shared = r.get_bool();
    s.backing_path = r.get_string();
    s.size = r.get_u64();
    const u64 nchunks = r.get_u64();
    for (u64 j = 0; j < nchunks; ++j) {
      s.chunks.push_back(ChunkRef::deserialize(r));
    }
    m.segments.push_back(std::move(s));
  }
  DSIM_CHECK_MSG(r.get_u32() == body_crc,
                 "checkpoint manifest checksum mismatch");
  return m;
}

bool Manifest::is_manifest(std::span<const std::byte> bytes) {
  if (bytes.size() < 4) return false;
  u32 magic = 0;
  for (size_t i = 0; i < 4; ++i) {
    magic |= static_cast<u32>(static_cast<u8>(bytes[i])) << (8 * i);
  }
  return magic == kMagic;
}

}  // namespace dsim::ckptstore
