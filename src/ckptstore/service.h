// The remote chunk-store service (stdchk-style storage service), sharded
// across RPC endpoints on the simulated network — now multi-tenant.
//
// PR 3 funneled every dedup Lookup/Store/Fetch/Drop through one FIFO queue,
// but requests teleported there: no NIC hop, no message CPU. This version
// makes each request a real RPC (src/rpc/) and shards the service. Every
// request arrives through one typed envelope (StoreRequest, tenant.h):
//
//   kLookup   one dedup probe per submitted chunk key, batched K keys per
//             RPC (`--lookup-batch`); each probe occupies its shard's queue,
//   kStore    a chunk accepted (payload over the caller's NIC, an index
//             insert on the shard) and placed on `replicas` node devices,
//   kRestore  re-store of a dedup-hit chunk whose every replica died,
//   kFetch    a restart locating a chunk (index probe; the bulk bytes
//             stream off the holding node's device and NIC, charged by the
//             caller),
//   kDrop     GC trim for a reclaimed chunk at metadata rate.
//
// The shard queue is the *metadata/index* path — chunk payloads physically
// live on placement-home node devices and travel the network as RPC request
// bodies, so they are charged to NICs and node devices, never double-charged
// to the index queue.
//
// Chunk keys are rendezvous-hashed onto `shards` endpoints (stable: the same
// key always reaches the same shard while the shard count holds), each shard
// owning its own sim::StorageDevice queue. The coordinator assigns
// shard -> node at startup.
//
// Multi-tenancy (this PR): N computations share one service. Each shard's
// single arrival FIFO is replaced by weighted deficit-round-robin over
// per-(QoS band, tenant) sub-queues: restart traffic (QosClass::kRestart)
// drains with strict priority over checkpoint-storm stores, and within a
// band tenants share device-bytes by their registry weight — a noisy
// tenant's checkpoint storm cannot starve a victim tenant's restart probes.
// Admission control holds a tenant's over-budget stores at the *tenant
// edge* (per-tenant in-flight byte budget) so they queue outside the shard
// scheduler instead of occupying slots; they dispatch as earlier stores
// complete. Chunk content stays tenant-blind: identical bytes dedup across
// tenants and are stored once, while manifests/GC are owned per tenant via
// the "t<id>/<vpid>" owner convention (tenant.h). `--fair-queueing off`
// reverts every shard to the PR-3 arrival FIFO (the bench_tenants ablation).
//
// Failure tolerance (PR 5, src/cluster/): every service RPC carries a
// failure path. A request whose endpoint node died *parks* on its shard
// instead of erroring; when the membership service declares the node dead,
// the failover manager re-homes the shard to the next live node in the
// shard's rendezvous order and the parked requests replay there in FIFO
// order. Requests are idempotent by chunk key, so callers observe elevated
// latency — never an error. Changing the shard count between rounds runs a
// consistent-hash rebalance: only the keys whose rendezvous winner changed
// migrate, in batched metadata RPCs through the normal queues.
//
// Three background activities ride the same queues (as kSystemTenant, on
// the checkpoint band — repair storms are weighed against foreground
// traffic, not above it):
//   - re-replication: after a node death, replica-degraded chunks (alive
//     homes < R but > 0) are re-copied from a surviving holder to fresh
//     rendezvous homes until the store is back at `replicas` copies;
//   - scrubbing: scrub(N, codec) verifies up to N resident chunks per round
//     against their manifest CRCs. Corrupt chunks are *quarantined* (repo
//     entry masked, placement forgotten) so the next generation's encode
//     re-stores them fresh from live content — the forward-heal path;
//     degraded survivors the scan trips over are routed to the heal daemon.
//   - rebalancing: see above.
//
// The service charges its shard queues and the RPC fabric. Physical bytes
// land on node-local devices through the injected DeviceCharger (stores and
// restart fetches stay charged by core, which owns the kernel).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ckptstore/placement.h"
#include "ckptstore/repository.h"
#include "ckptstore/tenant.h"
#include "compress/compressor.h"
#include "rpc/rpc.h"
#include "sim/net.h"
#include "sim/storage.h"
#include "util/types.h"

namespace dsim::ckptstore {

/// Request statistics, cumulative over the computation. The coordinator
/// snapshots deltas into each CkptRound. Per-tenant breakdowns live in the
/// TenantRegistry (tenants()).
struct ServiceStats {
  u64 lookup_requests = 0;
  u64 lookup_batches = 0;  // lookup RPCs issued (K keys amortize one RPC)
  u64 store_requests = 0;
  u64 fetch_requests = 0;
  u64 drop_requests = 0;
  u64 store_bytes = 0;  // accepted chunk bytes (one copy; replicas multiply
                        // on the node devices, not the shard queues)
  u64 fetch_bytes = 0;
  /// Submit -> completion wait of every lookup/fetch key (one histogram
  /// sample per key, including the RPC's network hops and endpoint message
  /// CPU). mean() is the headline contention metric; the per-round max
  /// drains through take_window_max() (the coordinator, each round).
  obs::Histogram lookup_wait;
  // Admission control: stores held at their tenant edge because the
  // tenant's in-flight byte budget was exhausted, and the per-store hold
  // before dispatching.
  u64 admission_held_requests = 0;
  obs::Histogram admission_wait;
  // Re-replication daemon: chunks restored to full replica strength after a
  // node failure, and the copy bytes written doing it.
  u64 rereplicated_chunks = 0;
  u64 rereplicated_bytes = 0;
  // Scrub daemon: chunks verified against manifest CRCs, and the failures.
  u64 scrubbed_chunks = 0;
  u64 scrub_corrupt_chunks = 0;  // content no longer matches its CRC
  u64 scrub_missing_chunks = 0;  // no surviving replica holds the bytes
  /// Corrupt chunks the scrubber quarantined for forward re-store (the next
  /// generation's encode writes them fresh from live content).
  u64 scrub_quarantined_chunks = 0;
  // Shard failover: requests that found their endpoint dead and parked,
  // requests re-issued after a re-home, and shards re-homed.
  u64 parked_requests = 0;
  u64 replayed_requests = 0;
  u64 rehomed_shards = 0;
  /// Shards moved *back* to their assigned endpoint at a round boundary
  /// after the endpoint was revived (rehome_to_owners()).
  u64 rehomed_back_shards = 0;
  /// Pre-codec logical bytes behind the accepted store_bytes (the async
  /// pipeline and the coordinator derive the store-level compress ratio
  /// from the two).
  u64 store_raw_bytes = 0;
  // Consistent-hash rebalancing (shard-count changes between rounds).
  u64 rebalances = 0;
  u64 rebalance_moved_keys = 0;
  u64 rebalance_moved_bytes = 0;    // stored bytes of reassigned keys
  u64 rebalance_scanned_keys = 0;   // resident keys examined across passes
  u64 rebalance_scanned_bytes = 0;  // stored bytes examined across passes
  /// Bytes physically moved by heal repairs — device reads, network hops
  /// and device writes summed, in both redundancy modes. The
  /// rebuild-traffic comparison bench_erasure gates: a (k,m) fragment
  /// rebuild moves ~(2k + 2F - 1)/k fragment-sizes where an R-way re-store
  /// moves 1 + 2F full copies for the same F lost homes.
  u64 heal_moved_bytes = 0;
  /// Erasure heal: fragments rebuilt onto fresh homes from k survivors
  /// (the replication counterpart is rereplicated_chunks' full copies).
  u64 rebuilt_fragments = 0;
  /// Corrupt fragments the scrubber reconstructed in place from the clean
  /// survivors — repairs that under replication would have quarantined the
  /// whole chunk for forward re-store.
  u64 scrub_repaired_fragments = 0;
  // Cold-tier demotion daemon: chunks re-striped to the wider cold (k,m)
  // profile, and the logical bytes they carry.
  u64 demoted_chunks = 0;
  u64 demoted_bytes = 0;
  double avg_lookup_wait_seconds() const { return lookup_wait.mean(); }
};

class ChunkStoreService {
 public:
  /// Redundancy-scheme selection (--erasure / --cold-erasure /
  /// --hot-generations): k = 0 keeps R-way replication; k > 0 stripes
  /// every stored chunk into k data + m parity fragments and makes
  /// `replicas` irrelevant. cold_k > 0 additionally arms the demotion
  /// daemon, re-striping chunks referenced only by generations older than
  /// `hot_generations` to the wider cold profile.
  struct ErasureConfig {
    int k = 0;
    int m = 0;
    int cold_k = 0;
    int cold_m = 0;
    int hot_generations = 0;
    bool enabled() const { return k > 0; }
    bool cold_enabled() const { return cold_k > 0; }
  };

  /// `replicas` copies of each chunk across the cluster's node devices;
  /// `shards` independent service endpoints; `lookup_batch` keys per lookup
  /// RPC; `erasure` optionally replaces replication with (k,m) striping.
  /// Until set_endpoints() overrides them, shard s lives on node
  /// (s mod nodes) so directly-constructed services (tests) work.
  ChunkStoreService(sim::EventLoop& loop, sim::Network& net, int replicas,
                    int shards, int lookup_batch, ErasureConfig erasure);
  ChunkStoreService(sim::EventLoop& loop, sim::Network& net, int replicas,
                    int shards = 1, int lookup_batch = 1)
      : ChunkStoreService(loop, net, replicas, shards, lookup_batch,
                          ErasureConfig{}) {}

  const ErasureConfig& erasure() const { return erasure_; }

  /// Endpoint setup (done by the coordinator at startup: the shards run
  /// where the coordinator says they run, as dmtcp_coordinator itself does).
  void set_endpoints(std::vector<NodeId> nodes);
  const std::vector<NodeId>& endpoints() const { return endpoints_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  /// Rendezvous hash of `key` over `shards` endpoints — a pure function of
  /// (key, shard count), so the same key hits the same shard in every run
  /// and a shard-count change reassigns exactly the keys whose winner
  /// changed (the consistent-hashing property rebalance() relies on).
  static int shard_of_n(const ChunkKey& key, int shards);
  int shard_of(const ChunkKey& key) const {
    return shard_of_n(key, num_shards());
  }

  /// The cluster-scope repository (shared so DmtcpShared::repos can alias
  /// it — stats aggregation and migration keep working unchanged).
  const std::shared_ptr<Repository>& repo_ptr() const { return repo_; }
  Repository& repo() { return *repo_; }
  ChunkPlacement& placement() { return placement_; }
  const ChunkPlacement& placement() const { return placement_; }
  /// The cluster's shared RPC liveness map (ground truth of node death;
  /// the membership service's fabric shares it).
  const std::shared_ptr<rpc::NodeHealth>& health() const { return health_; }

  /// Per-tenant config (DRR weights, admission budgets, retention
  /// overrides) and per-tenant request statistics. Each computation's
  /// control handle registers its tenant here at startup.
  TenantRegistry& tenants() { return tenants_; }
  const TenantRegistry& tenants() const { return tenants_; }
  /// Fair queueing on (default): per-shard DRR over (QoS band, tenant)
  /// sub-queues. Off: the PR-3 single arrival FIFO per shard — requests
  /// hit the shard device in arrival order regardless of tenant or QoS.
  void set_fair_queueing(bool on) { fair_queueing_ = on; }
  bool fair_queueing() const { return fair_queueing_; }

  /// Node-device charging hook (kernel charge_storage_bg, injected by core:
  /// the daemons must land replica copies and verification reads on node
  /// devices, but this layer does not own the kernel). Unset: bytes are
  /// accounted on the shard queues only.
  using DeviceCharger = std::function<void(
      NodeId node, u64 bytes, bool is_read, std::function<void()> done)>;
  void set_device_charger(DeviceCharger charger) {
    charger_ = std::move(charger);
  }
  /// Node-device trim hook (kernel discard_storage, injected by core): the
  /// scrubber's quarantine must drop the rotten container's bytes from the
  /// placement homes' devices, exactly as GC pairs every reclaim with a
  /// trim. Unset: only the owning shard's metadata queue records the drop.
  using DeviceTrimmer = std::function<void(NodeId node, u64 bytes)>;
  void set_device_trimmer(DeviceTrimmer trimmer) {
    trimmer_ = std::move(trimmer);
  }
  /// Node-CPU charging hook (kernel cpu().submit, injected by core): the
  /// erasure daemons burn real decode/encode CPU — a fragment rebuild
  /// decodes at the rebuilding node, a demotion re-encodes at the first
  /// cold home — and that work must contend with the application through
  /// the fluid share. Unset: decode/encode completes instantly.
  using CpuCharger =
      std::function<void(NodeId node, double seconds, std::function<void()>)>;
  void set_cpu_charger(CpuCharger charger) {
    cpu_charger_ = std::move(charger);
  }

  /// Death/revival routing hooks. When set (the wired DMTCP world),
  /// fail_node()/revive_node() report the ground-truth event here — the
  /// membership service — and the *reaction* (heal kick, shard re-home,
  /// replay) waits for its detection, which calls back into
  /// handle_node_death()/handle_node_revival() through the failover
  /// manager. Unset (standalone tests), the service reacts immediately.
  void set_death_router(std::function<void(NodeId)> router) {
    death_router_ = std::move(router);
  }
  void set_revive_router(std::function<void(NodeId)> router) {
    revive_router_ = std::move(router);
  }

  /// THE service entry point: every Lookup/Store/Restore/Fetch/Drop flows
  /// through this one typed envelope (the per-op signatures of PRs 3-7 are
  /// gone). The reply is the synchronous half: placement targets for
  /// stores (the caller charges one device write per home; empty on a
  /// placement dedup hit) and whether admission control dispatched the
  /// request immediately. `req.done` fires when the service has finished —
  /// the last probe's response for lookups, the shard ack for stores (even
  /// when held at the tenant edge first), the index probe's response for
  /// fetches. Drops are fire-and-forget (`done` may be empty).
  ///
  /// Per-(tenant, QoS band) order is FIFO end to end; cross-tenant order
  /// within a shard is the fair-queueing scheduler's business.
  StoreReply submit(StoreRequest req);

  /// Simulated node failure. Ground truth lands immediately — the node's
  /// chunk copies become unreachable (placement) and its RPCs stop being
  /// chargeable (NodeHealth) — then the death is routed through membership
  /// (detection latency) or, standalone, handled synchronously.
  void fail_node(NodeId node);
  /// Simulated node revival, the mirror image: health flips up
  /// immediately; the reaction (placement readmission + replay of any
  /// requests parked against the node's endpoints) arrives via membership
  /// or, standalone, synchronously.
  void revive_node(NodeId node);

  /// Reaction to a *detected* node death (membership's kDead event, via the
  /// failover manager — or directly from fail_node() when no router is
  /// set): kick the heal daemon for the replicas the node held, and re-home
  /// every shard whose endpoint died to the next live node in the shard's
  /// rendezvous order, replaying parked requests there. Returns the number
  /// of shards re-homed. Idempotent.
  int handle_node_death(NodeId node);
  /// Reaction to a detected revival (membership's transition back to
  /// kAlive — including a transient death the heartbeats re-acked before
  /// declaring): readmit the node to placement and replay requests parked
  /// against its endpoints, which would otherwise strand forever (no death
  /// declaration means no re-home to flush them). Idempotent.
  void handle_node_revival(NodeId node);

  /// Move every shard whose current endpoint differs from its *assigned*
  /// endpoint (set_endpoints()/rebalance()) back, provided the assigned
  /// node is live again. Failover re-homes are meant to be temporary —
  /// without this, a revived endpoint rejoins placement but its shards stay
  /// wherever failover pushed them forever. Called by the coordinator at
  /// the round boundary (no in-flight requests); replays anything parked on
  /// the moved shards. Returns the number of shards moved back.
  int rehome_to_owners();

  /// Record pre-codec logical bytes behind accepted stores (see
  /// ServiceStats::store_raw_bytes); called by the checkpoint writer.
  void note_raw_bytes(u64 raw) { stats_.store_raw_bytes += raw; }

  /// True when no heal work is pending or in flight.
  bool rereplication_idle() const {
    return heal_in_flight_ == 0 && heal_pending_.empty() &&
           !heal_scan_scheduled_;
  }

  /// Scrub pass: verify up to `max_chunks` resident chunks (round-robin
  /// cursor) against their recorded CRCs, charging each verification read
  /// to the owning shard's queue. `codec` decompresses real containers.
  /// Corrupt chunks are quarantined for forward re-store; degraded
  /// survivors kick the heal daemon. Under erasure, per-fragment rot
  /// (corrupt_fragment()) is *repaired* in place — the fragment is
  /// reconstructed from the k clean survivors and rewritten — and only a
  /// chunk with > m bad fragments falls back to quarantine.
  void scrub(u64 max_chunks, compress::CodecKind codec);

  /// Simulated fragment rot (erasure only): mark fragment `index` of `key`
  /// corrupt, to be found and repaired by a later scrub pass. Returns
  /// false when the key is unknown or not erasure-coded.
  bool corrupt_fragment(const ChunkKey& key, int index) {
    return placement_.corrupt_fragment(key, index);
  }

  /// Cold-tier demotion pass: re-stripe up to `max_chunks` chunks
  /// referenced only by generations older than the per-tenant effective
  /// hot_generations to the cold (k,m) profile, charging fragment reads,
  /// a decode + re-encode at the first cold home, old-fragment trims and
  /// new-fragment writes in the background. Returns the number of chunks
  /// demoted (0 when no cold profile is armed). The coordinator calls
  /// this once per round, capped at params::kDemoteChunksPerRound.
  int demote_cold(u64 max_chunks);

  /// Consistent-hash rebalance to `new_shards` endpoints (between rounds;
  /// no requests may be parked or in flight). Only the keys whose shard
  /// assignment changed migrate: each batch costs an index read on the old
  /// shard's queue, a metadata RPC old endpoint -> new endpoint, and an
  /// index insert on the new shard's queue. `done` fires when every moved
  /// key has landed.
  void rebalance(int new_shards, std::vector<NodeId> new_endpoints,
                 std::function<void()> done);

  sim::StorageDevice& shard_device(int shard) {
    return *shards_[static_cast<size_t>(shard)].q->dev;
  }
  const rpc::RpcFabric& fabric() const { return fabric_; }
  const ServiceStats& stats() const { return stats_; }
  /// Requests currently parked (endpoint died mid-flight, awaiting a
  /// re-home replay), summed across shards. The health engine samples
  /// this at round boundaries — a healthy round ends with zero.
  u64 parked_now() const {
    u64 n = 0;
    for (const Shard& s : shards_) n += static_cast<u64>(s.parked.size());
    return n;
  }
  /// Return the max single-lookup wait observed since the last call and
  /// reset it, so each CkptRound records its own round's max rather than
  /// the run-global one.
  double take_max_lookup_wait() { return stats_.lookup_wait.take_window_max(); }

 private:
  /// One service request, held by shared_ptr so a failed attempt can park
  /// and replay it with its completion callback intact (the caller's `done`
  /// fires exactly once, on the attempt that succeeds).
  struct ShardRequest {
    NodeId from = 0;
    u64 request_bytes = 0;
    u64 response_bytes = 0;
    rpc::RpcFabric::Handler serve;
    std::function<void()> done;
    /// Trace this attempt belongs to (zero trace_id when untraced). Rides
    /// the envelope so a park/replay re-issues under the same trace — which
    /// the tracer is told to exempt from span tiling.
    obs::TraceContext trace;
  };
  /// One shard's index queue: the device that prices metadata work plus
  /// the fair-queueing scheduler in front of it. Dispatch discipline: an
  /// item leaves the FairQueue only when the device is free, so the DRR
  /// decides order while the device keeps pricing service time — with a
  /// single tenant this is timing-identical to submitting straight into
  /// the device FIFO.
  struct IndexQueue {
    std::shared_ptr<sim::StorageDevice> dev;
    FairQueue fq;
    bool pump_scheduled = false;
  };
  struct Shard {
    /// shared_ptr: in-flight serve closures capture the queue they were
    /// aimed at, so a rebalance that swaps the shard set mid-flight (a
    /// racing restart) can never leave a closure indexing a vector that
    /// shrank under it — the request drains through its original queue.
    std::shared_ptr<IndexQueue> q;
    /// Requests whose endpoint died mid-flight, FIFO, awaiting re-home.
    std::deque<std::shared_ptr<ShardRequest>> parked;
  };
  /// Admission control state for one tenant: bytes of dispatched,
  /// not-yet-acked stores, plus the stores held back because dispatching
  /// them would exceed the tenant's budget.
  struct TenantEdge {
    u64 inflight_bytes = 0;
    struct Held {
      u64 bytes = 0;
      SimTime held_at = 0;
      std::function<void()> dispatch;
    };
    std::deque<Held> held;
  };

  NodeId endpoint_of(int shard) const {
    return endpoints_[static_cast<size_t>(shard)];
  }
  /// Issue (or re-issue) a request against the shard's current endpoint;
  /// parks it on fabric failure.
  void shard_call(int shard, std::shared_ptr<ShardRequest> req);
  static std::shared_ptr<ShardRequest> make_request(
      NodeId from, u64 request_bytes, u64 response_bytes,
      rpc::RpcFabric::Handler serve, std::function<void()> done);
  /// Hand one unit of index work to the shard's scheduler: `run` performs
  /// the actual device submission (or discard) when the scheduler
  /// dispatches it. Bypasses the FairQueue entirely when fair queueing is
  /// off — `run` executes immediately, the PR-3 arrival-FIFO behavior.
  void enqueue_index(std::shared_ptr<IndexQueue> q, TenantId tenant,
                     QosClass qos, u64 cost, std::function<void()> run,
                     obs::TraceContext tctx = {});
  /// Dispatch queued items while the shard device is free; re-arm at
  /// busy_until() otherwise. One item dispatches per device-free instant,
  /// so late-arriving restart-band work can still overtake a queued
  /// checkpoint storm.
  void pump_queue(std::shared_ptr<IndexQueue> q);
  /// Serve handler for a single index probe/insert on the shard's queue,
  /// routed through the fair-queueing scheduler under (tenant, qos).
  rpc::RpcFabric::Handler index_serve(int shard, bool is_read,
                                      TenantId tenant, QosClass qos,
                                      obs::TraceContext tctx = {});
  // The envelope's per-op bodies.
  void do_lookups(StoreRequest req);
  StoreReply do_store(StoreRequest req);
  void do_fetch(StoreRequest req);
  void do_drop(StoreRequest req);
  /// The shared tail of kStore/kRestore: account the store and queue its
  /// index insert RPC.
  void queue_store(NodeId from, TenantId tenant, QosClass qos,
                   const ChunkKey& key, u64 charged_bytes,
                   std::function<void()> done, obs::TraceContext tctx = {});
  /// Dispatch held stores whose tenant budget has room again (called from
  /// every store completion).
  void drain_edge(TenantId tenant);
  void park(int shard, std::shared_ptr<ShardRequest> req);
  /// Next live node in the shard's rendezvous order (highest-random-weight
  /// over (shard, node), restricted to NodeHealth-up nodes).
  NodeId pick_endpoint(int shard) const;
  void charge_node(NodeId node, u64 bytes, bool is_read,
                   std::function<void()> done);
  void charge_cpu(NodeId node, double seconds, std::function<void()> done);
  /// The placement homes of a just-recorded store as chargeable writes.
  std::vector<StoreTarget> store_targets(const ChunkKey& key,
                                         const std::vector<NodeId>& homes);
  /// Any redundancy to heal back to? Replication needs R > 1; erasure
  /// always has parity (m >= 1).
  bool redundant() const {
    return erasure_.enabled() || placement_.replicas() > 1;
  }
  void schedule_heal_scan();
  void pump_heal();
  void heal_one(const ChunkKey& key);
  void heal_one_erasure(const ChunkKey& key);

  sim::EventLoop& loop_;
  sim::Network& net_;
  std::shared_ptr<rpc::NodeHealth> health_;
  rpc::RpcFabric fabric_;
  std::vector<Shard> shards_;
  std::vector<NodeId> endpoints_;
  /// The coordinator-assigned (or rebalance-chosen) endpoint per shard:
  /// where each shard *should* live when its node is up. endpoints_ drifts
  /// from this under failover; rehome_to_owners() converges them.
  std::vector<NodeId> assigned_endpoints_;
  int lookup_batch_;
  ErasureConfig erasure_;
  std::shared_ptr<Repository> repo_;
  ChunkPlacement placement_;
  ServiceStats stats_;
  TenantRegistry tenants_;
  std::map<TenantId, TenantEdge> edges_;
  bool fair_queueing_ = true;
  DeviceCharger charger_;
  DeviceTrimmer trimmer_;
  CpuCharger cpu_charger_;
  std::function<void(NodeId)> death_router_;
  std::function<void(NodeId)> revive_router_;
  // Re-replication daemon state.
  std::deque<ChunkKey> heal_pending_;
  int heal_in_flight_ = 0;
  bool heal_scan_scheduled_ = false;
  // Scrub round-robin cursor (last key verified).
  ChunkKey scrub_cursor_{};
};

}  // namespace dsim::ckptstore
