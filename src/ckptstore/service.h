// The remote chunk-store service (stdchk-style storage service).
//
// PR 2's `--dedup-scope cluster` kept one computation-wide Repository that
// answered every dedup lookup for free — no queueing, no contention, none
// of the storage funneling that dominates the paper's Fig. 5b. This class
// turns the cluster-scope store into a *service*: it owns the shared
// Repository and the per-node ChunkPlacement, and funnels every request —
//
//   Lookup    one dedup probe per submitted chunk (hit or miss),
//   Store     a new chunk accepted and placed on `replicas` node devices,
//   Fetch     a restart reading a chunk's bytes back,
//   DropOwner / GC trim for reclaimed chunks,
//
// — through one FIFO sim::StorageDevice queue. N ranks checkpointing
// concurrently serialize on that queue, so per-lookup latency grows with
// rank count (bench_service's contention knee) exactly as shared-storage
// writes do in Fig. 5b.
//
// The service charges only its own request queue. Physical bytes land on
// node-local devices: the caller charges each placement home for Store
// copies and each holding node for Fetch reads (the kernel owns node
// devices; this layer names the nodes, core does the charging).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "ckptstore/placement.h"
#include "ckptstore/repository.h"
#include "sim/storage.h"
#include "util/types.h"

namespace dsim::ckptstore {

/// Request-queue statistics, cumulative over the computation. The
/// coordinator snapshots deltas into each CkptRound.
struct ServiceStats {
  u64 lookup_requests = 0;
  u64 store_requests = 0;
  u64 fetch_requests = 0;
  u64 drop_requests = 0;
  u64 store_bytes = 0;  // accepted chunk bytes (one copy; replicas multiply
                        // on the node devices, not the service queue)
  u64 fetch_bytes = 0;
  /// Cumulative submit -> completion wait across lookups; the per-lookup
  /// average is the headline contention metric.
  double lookup_wait_seconds = 0;
  /// Max single-lookup wait since construction or the last
  /// take_max_lookup_wait() (the coordinator drains it per round).
  double max_lookup_wait_seconds = 0;
  double avg_lookup_wait_seconds() const {
    return lookup_requests == 0 ? 0.0
                                : lookup_wait_seconds /
                                      static_cast<double>(lookup_requests);
  }
};

class ChunkStoreService {
 public:
  /// `replicas` copies of each chunk across `num_nodes` node devices.
  ChunkStoreService(sim::EventLoop& loop, int num_nodes, int replicas);

  /// Endpoint setup (done by the coordinator at startup: the service runs
  /// where the coordinator says it runs, as dmtcp_coordinator itself does).
  void set_endpoint(NodeId node) { endpoint_ = node; }
  NodeId endpoint() const { return endpoint_; }

  /// The cluster-scope repository (shared so DmtcpShared::repos can alias
  /// it — stats aggregation and migration keep working unchanged).
  const std::shared_ptr<Repository>& repo_ptr() const { return repo_; }
  Repository& repo() { return *repo_; }
  ChunkPlacement& placement() { return placement_; }
  const ChunkPlacement& placement() const { return placement_; }

  /// Queue `n` Lookup requests; `done` fires when the last one completes.
  /// Each lookup is its own queue entry so waits are measured per request
  /// and ranks' probes interleave FIFO, not rank-at-a-time.
  void submit_lookups(u64 n, std::function<void()> done);

  /// Queue a Store of one chunk. Returns the placement homes the caller
  /// must charge one copy of `charged_bytes` to (empty on a placement
  /// dedup hit); `done` fires when the service has accepted the write.
  std::vector<NodeId> submit_store(const ChunkKey& key, u64 charged_bytes,
                                   std::function<void()> done);

  /// Queue a re-Store of a dedup-hit chunk whose every replica died with
  /// its node: the write costs a fresh Store on the queue and the copies
  /// are re-placed over the surviving nodes (returned for the caller to
  /// charge). The caller checks placement().available() first — healthy
  /// dedup hits must not queue stores.
  std::vector<NodeId> submit_restore(const ChunkKey& key, u64 charged_bytes,
                                     std::function<void()> done);

  /// Queue a Fetch of `bytes` of chunk data (restart path); the caller
  /// additionally charges the holding node's device for the read.
  void submit_fetch(u64 bytes, std::function<void()> done);

  /// DropOwner / GC trim: drop `bytes` of reclaimed data at metadata rate
  /// (queue occupancy only, no completion to wait on).
  void submit_drop(u64 bytes);

  /// Simulated node failure: the node's chunk copies become unreachable.
  void fail_node(NodeId node) { placement_.fail_node(node); }

  sim::StorageDevice& device() { return dev_; }
  const ServiceStats& stats() const { return stats_; }
  /// Return the max single-lookup wait observed since the last call and
  /// reset it, so each CkptRound records its own round's max rather than
  /// the run-global one.
  double take_max_lookup_wait() {
    const double m = stats_.max_lookup_wait_seconds;
    stats_.max_lookup_wait_seconds = 0;
    return m;
  }

 private:
  sim::EventLoop& loop_;
  sim::StorageDevice dev_;
  std::shared_ptr<Repository> repo_;
  ChunkPlacement placement_;
  ServiceStats stats_;
  NodeId endpoint_ = -1;
};

}  // namespace dsim::ckptstore
