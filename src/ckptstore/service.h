// The remote chunk-store service (stdchk-style storage service), sharded
// across RPC endpoints on the simulated network.
//
// PR 3 funneled every dedup Lookup/Store/Fetch/Drop through one FIFO queue,
// but requests teleported there: no NIC hop, no message CPU. This version
// makes each request a real RPC (src/rpc/) and shards the service:
//
//   Lookup    one dedup probe per submitted chunk key, batched K keys per
//             RPC (`--lookup-batch`); each probe occupies its shard's queue,
//   Store     a chunk accepted (payload over the caller's NIC, an index
//             insert on the shard) and placed on `replicas` node devices,
//   Fetch     a restart locating a chunk (index probe; the bulk bytes
//             stream off the holding node's device and NIC, charged by the
//             caller),
//   Drop      GC trim for a reclaimed chunk at metadata rate.
//
// The shard queue is the *metadata/index* path — chunk payloads physically
// live on placement-home node devices and travel the network as RPC request
// bodies, so they are charged to NICs and node devices, never double-charged
// to the index queue (PR 3 charged stores at container size to the one
// queue; with real transport that would count the same bytes twice and let
// one rank's store burst stall every other rank's probes).
//
// Chunk keys are rendezvous-hashed onto `shards` endpoints (stable: the same
// key always reaches the same shard), each shard owning its own FIFO
// sim::StorageDevice queue, so the contention knee bench_service exposes
// moves right as shards are added. The coordinator assigns shard -> node at
// startup (`--store-shards` endpoints from `--store-node` upward).
//
// Two background daemons ride the same queues:
//   - re-replication: after fail_node, replica-degraded chunks (alive homes
//     < R but > 0) are re-copied from a surviving holder to fresh rendezvous
//     homes until the store is back at `replicas` copies;
//   - scrubbing: scrub(N, codec) verifies up to N resident chunks per round
//     against their manifest CRCs, counting corrupt/missing chunks.
//
// The service charges its shard queues and the RPC fabric. Physical bytes
// land on node-local devices through the injected DeviceCharger (stores and
// restart fetches stay charged by core, which owns the kernel).
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ckptstore/placement.h"
#include "ckptstore/repository.h"
#include "compress/compressor.h"
#include "rpc/rpc.h"
#include "sim/net.h"
#include "sim/storage.h"
#include "util/types.h"

namespace dsim::ckptstore {

/// Request statistics, cumulative over the computation. The coordinator
/// snapshots deltas into each CkptRound.
struct ServiceStats {
  u64 lookup_requests = 0;
  u64 lookup_batches = 0;  // lookup RPCs issued (K keys amortize one RPC)
  u64 store_requests = 0;
  u64 fetch_requests = 0;
  u64 drop_requests = 0;
  u64 store_bytes = 0;  // accepted chunk bytes (one copy; replicas multiply
                        // on the node devices, not the shard queues)
  u64 fetch_bytes = 0;
  /// Cumulative submit -> completion wait across lookups (now including the
  /// RPC's network hops and endpoint message CPU); the per-lookup average
  /// is the headline contention metric.
  double lookup_wait_seconds = 0;
  /// Max single-lookup wait since construction or the last
  /// take_max_lookup_wait() (the coordinator drains it per round).
  double max_lookup_wait_seconds = 0;
  // Re-replication daemon: chunks restored to full replica strength after a
  // node failure, and the copy bytes written doing it.
  u64 rereplicated_chunks = 0;
  u64 rereplicated_bytes = 0;
  // Scrub daemon: chunks verified against manifest CRCs, and the failures.
  u64 scrubbed_chunks = 0;
  u64 scrub_corrupt_chunks = 0;  // content no longer matches its CRC
  u64 scrub_missing_chunks = 0;  // no surviving replica holds the bytes
  double avg_lookup_wait_seconds() const {
    return lookup_requests == 0 ? 0.0
                                : lookup_wait_seconds /
                                      static_cast<double>(lookup_requests);
  }
};

class ChunkStoreService {
 public:
  /// `replicas` copies of each chunk across the cluster's node devices;
  /// `shards` independent service endpoints; `lookup_batch` keys per lookup
  /// RPC. Until set_endpoints() overrides them, shard s lives on node
  /// (s mod nodes) so directly-constructed services (tests) work.
  ChunkStoreService(sim::EventLoop& loop, sim::Network& net, int replicas,
                    int shards = 1, int lookup_batch = 1);

  /// Endpoint setup (done by the coordinator at startup: the shards run
  /// where the coordinator says they run, as dmtcp_coordinator itself does).
  void set_endpoints(std::vector<NodeId> nodes);
  const std::vector<NodeId>& endpoints() const { return endpoints_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  /// Rendezvous hash of `key` over the shard set — a pure function of
  /// (key, shard count), so the same key hits the same shard in every run.
  int shard_of(const ChunkKey& key) const;

  /// The cluster-scope repository (shared so DmtcpShared::repos can alias
  /// it — stats aggregation and migration keep working unchanged).
  const std::shared_ptr<Repository>& repo_ptr() const { return repo_; }
  Repository& repo() { return *repo_; }
  ChunkPlacement& placement() { return placement_; }
  const ChunkPlacement& placement() const { return placement_; }

  /// Node-device charging hook (kernel charge_storage_bg, injected by core:
  /// the daemons must land replica copies and verification reads on node
  /// devices, but this layer does not own the kernel). Unset: bytes are
  /// accounted on the shard queues only.
  using DeviceCharger = std::function<void(
      NodeId node, u64 bytes, bool is_read, std::function<void()> done)>;
  void set_device_charger(DeviceCharger charger) {
    charger_ = std::move(charger);
  }

  /// Look up `keys` (dedup probes, hit or miss alike) from node `from`:
  /// keys are routed to their shards, batched `lookup_batch` per RPC, and
  /// each probe occupies its shard's queue. `done` fires at the caller when
  /// the last probe's response lands. Per-shard batches complete in submit
  /// order (every stage of the path is FIFO).
  void submit_lookups(NodeId from, const std::vector<ChunkKey>& keys,
                      std::function<void()> done);

  /// Store one chunk from node `from`. Returns the placement homes the
  /// caller must charge one copy of `charged_bytes` to (empty on a
  /// placement dedup hit); `done` fires when the shard has accepted the
  /// write. The request carries the chunk bytes over the caller's NIC.
  std::vector<NodeId> submit_store(NodeId from, const ChunkKey& key,
                                   u64 charged_bytes,
                                   std::function<void()> done);

  /// Re-Store of a dedup-hit chunk whose every replica died with its node:
  /// costs a fresh Store and the copies are re-placed over the surviving
  /// nodes (returned for the caller to charge). The caller checks
  /// placement().available() first — healthy dedup hits must not queue
  /// stores.
  std::vector<NodeId> submit_restore(NodeId from, const ChunkKey& key,
                                     u64 charged_bytes,
                                     std::function<void()> done);

  /// Fetch `bytes` of chunk data (restart path) from node `from`; the
  /// caller additionally charges the holding node's device and NIC for the
  /// bulk read (the shard answers with the holder — it does not proxy the
  /// bytes).
  void submit_fetch(NodeId from, const ChunkKey& key, u64 bytes,
                    std::function<void()> done);

  /// GC trim for one reclaimed chunk: drop `bytes` at metadata rate on the
  /// owning shard (fire-and-forget).
  void submit_drop(NodeId from, const ChunkKey& key, u64 bytes);

  /// Simulated node failure: the node's chunk copies become unreachable.
  /// With replicas > 1 this kicks the background re-replication daemon,
  /// which walks degraded chunks through the shard queues until every
  /// surviving chunk is back at full replica strength.
  void fail_node(NodeId node);
  void revive_node(NodeId node) { placement_.revive_node(node); }
  /// True when no heal work is pending or in flight.
  bool rereplication_idle() const {
    return heal_in_flight_ == 0 && heal_pending_.empty() &&
           !heal_scan_scheduled_;
  }

  /// Scrub pass: verify up to `max_chunks` resident chunks (round-robin
  /// cursor) against their recorded CRCs, charging each verification read
  /// to the owning shard's queue. `codec` decompresses real containers.
  void scrub(u64 max_chunks, compress::CodecKind codec);

  sim::StorageDevice& shard_device(int shard) {
    return *shards_[static_cast<size_t>(shard)].dev;
  }
  const rpc::RpcFabric& fabric() const { return fabric_; }
  const ServiceStats& stats() const { return stats_; }
  /// Return the max single-lookup wait observed since the last call and
  /// reset it, so each CkptRound records its own round's max rather than
  /// the run-global one.
  double take_max_lookup_wait() {
    const double m = stats_.max_lookup_wait_seconds;
    stats_.max_lookup_wait_seconds = 0;
    return m;
  }

 private:
  struct Shard {
    std::unique_ptr<sim::StorageDevice> dev;
  };

  NodeId endpoint_of(int shard) const {
    return endpoints_[static_cast<size_t>(shard)];
  }
  void charge_node(NodeId node, u64 bytes, bool is_read,
                   std::function<void()> done);
  void schedule_heal_scan();
  void pump_heal();
  void heal_one(const ChunkKey& key);

  sim::EventLoop& loop_;
  sim::Network& net_;
  rpc::RpcFabric fabric_;
  std::vector<Shard> shards_;
  std::vector<NodeId> endpoints_;
  int lookup_batch_;
  std::shared_ptr<Repository> repo_;
  ChunkPlacement placement_;
  ServiceStats stats_;
  DeviceCharger charger_;
  // Re-replication daemon state.
  std::deque<ChunkKey> heal_pending_;
  int heal_in_flight_ = 0;
  bool heal_scan_scheduled_ = false;
  // Scrub round-robin cursor (last key verified).
  ChunkKey scrub_cursor_{};
};

}  // namespace dsim::ckptstore
