#include "ckptstore/tenant.h"

#include <cstdlib>

#include "util/assertx.h"

namespace dsim::ckptstore {

void FairQueue::push(QosClass qos, TenantId tenant, double weight,
                     Item item) {
  Band& b = bands_[static_cast<size_t>(qos)];
  SubQueue& sq = b.queues[tenant];
  // Weight re-read on every push so a registry reconfiguration takes
  // effect on the next grant; floor keeps a misconfigured weight from
  // freezing the rotation.
  sq.quantum = static_cast<u64>(static_cast<double>(kFairQueueQuantumBytes) *
                                std::max(weight, 0.01));
  if (sq.items.empty()) {
    b.active.push_back(tenant);
    sq.deficit = 0;
  }
  sq.items.push_back(std::move(item));
  ++size_;
}

FairQueue::Item FairQueue::pop() {
  DSIM_CHECK_MSG(size_ > 0, "pop() from an empty fair queue");
  // Strict band priority: restart (higher enum value) drains first.
  for (int band = kNumQosBands - 1; band >= 0; --band) {
    Band& b = bands_[static_cast<size_t>(band)];
    while (!b.active.empty()) {
      const TenantId t = b.active.front();
      SubQueue& sq = b.queues[t];
      if (sq.items.front().cost <= sq.deficit) {
        Item item = std::move(sq.items.front());
        sq.items.pop_front();
        sq.deficit -= item.cost;
        --size_;
        if (sq.items.empty()) {
          // Classic DRR: an emptied queue forfeits its leftover deficit
          // (no banking credit across idle periods).
          sq.deficit = 0;
          b.active.pop_front();
        }
        return item;
      }
      // Head doesn't fit the deficit: grant a quantum and rotate. Each
      // full rotation grows every waiting queue's deficit, so even an
      // oversized head is served after finitely many rounds.
      sq.deficit += sq.quantum;
      b.active.pop_front();
      b.active.push_back(t);
    }
  }
  DSIM_CHECK_MSG(false, "fair queue size/band bookkeeping diverged");
  return {};
}

TenantId tenant_of_owner(const std::string& owner) {
  // "t<id>/<rest>" — anything else (legacy plain-vpid owners) is the
  // default tenant.
  if (owner.size() < 3 || owner[0] != 't') return kDefaultTenant;
  const size_t slash = owner.find('/');
  if (slash == std::string::npos || slash < 2) return kDefaultTenant;
  char* end = nullptr;
  const long id = std::strtol(owner.c_str() + 1, &end, 10);
  if (end != owner.c_str() + slash) return kDefaultTenant;
  return static_cast<TenantId>(id);
}

}  // namespace dsim::ckptstore
