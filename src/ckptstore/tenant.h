// Multi-tenant vocabulary for the chunk-store service.
//
// One shared service now serves N concurrent computations (tenants): mixed
// desktop + MPI jobs with staggered checkpoint intervals hitting the same
// shard endpoints, the stdchk shape. This header holds everything the
// service needs to keep those tenants honest:
//
//   StoreRequest/StoreReply   the one typed envelope every service RPC uses
//                             (Lookup/Store/Restore/Fetch/Drop used to be
//                             five ad-hoc signatures; context like tenant id,
//                             generation and QoS class now travels in one
//                             place),
//   TenantRegistry            per-tenant config (DRR weight, in-flight store
//                             byte budget, retention overrides) and
//                             per-tenant request statistics,
//   FairQueue                 deficit round-robin over per-(QoS band, tenant)
//                             sub-queues — the scheduler that replaces each
//                             shard's single arrival FIFO, so one tenant's
//                             checkpoint storm cannot starve another
//                             tenant's restart probes,
//   tenant_owner() et al.     the owner-string convention ("t<id>/<vpid>")
//                             that folds the tenant id into manifest/GC
//                             ownership while chunk *content* stays
//                             tenant-blind — identical bytes dedup across
//                             tenants and are stored exactly once.
#pragma once

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ckptstore/chunk.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/types.h"

namespace dsim::ckptstore {

using TenantId = int;

/// The single-computation default: every pre-multi-tenant caller lands here,
/// so a one-tenant world behaves exactly as before.
inline constexpr TenantId kDefaultTenant = 0;
/// The service's own background daemons (heal, scrub, demote, rebalance):
/// their index probes ride the checkpoint band under this id, so repair
/// storms are weighed against foreground traffic instead of bypassing the
/// scheduler.
inline constexpr TenantId kSystemTenant = -1;

/// QoS bands, strict priority between them: restart traffic (a computation
/// trying to come back to life) always drains before checkpoint-storm
/// stores. Within a band, tenants share by weighted DRR.
enum class QosClass : u8 {
  kCheckpoint = 0,
  kRestart = 1,
};
inline constexpr int kNumQosBands = 2;

enum class StoreOp : u8 {
  kLookup,   // dedup probes, batched per shard
  kStore,    // accept one chunk, place on fresh homes
  kRestore,  // re-store of a dedup hit whose replicas all died
  kFetch,    // restart locating a chunk (index probe; bulk off the holder)
  kDrop,     // GC trim at metadata rate
};

/// One device write a store fans out to: a full replica copy under
/// replication, one fragment under erasure.
struct StoreTarget {
  NodeId node = 0;
  u64 bytes = 0;
};

/// The one typed request envelope. Lookup uses `keys` (all of them);
/// Store/Restore/Fetch/Drop operate on keys[0] with `bytes` payload.
/// `done` fires at the caller when the service has finished the request
/// (last probe's response for lookups; shard ack for stores; never for a
/// fire-and-forget drop, where it may be empty).
struct StoreRequest {
  StoreOp op = StoreOp::kLookup;
  TenantId tenant = kDefaultTenant;
  int generation = 0;
  QosClass qos = QosClass::kCheckpoint;
  NodeId from = 0;
  std::vector<ChunkKey> keys;
  u64 bytes = 0;
  std::function<void()> done;
  /// Filled by the service when tracing is enabled: callers may pre-seed
  /// it to group their requests under an existing trace, but normally the
  /// service opens one root span per request/batch itself.
  obs::TraceContext trace;
};

/// The synchronous half of the answer. `targets` (Store/Restore only) are
/// the placement writes the caller must charge, one per home. `admitted`
/// is false when admission control held the store at the tenant edge —
/// `done` still fires once the edge drains it through a shard.
struct StoreReply {
  std::vector<StoreTarget> targets;
  bool admitted = true;
};

/// Per-tenant service policy. Zero means "inherit the global default":
/// unlimited budget, the computation's own --keep-generations /
/// --hot-generations.
struct TenantConfig {
  double weight = 1.0;            // DRR share within a QoS band
  u64 inflight_budget_bytes = 0;  // admission control; 0 = unlimited
  int keep_generations = 0;       // per-tenant GC retention; 0 = global
  int hot_generations = 0;        // per-tenant cold-demotion age; 0 = global
};

/// Per-tenant request statistics, cumulative. `wait` records the submit ->
/// completion wait of every lookup/fetch key (one histogram sample per
/// key); a bench windows a phase by snapshotting the histogram before and
/// reading `delta_since(before).quantile(0.99)` after — replacing the old
/// unbounded `wait_samples` vector + exact-sort-at-read-time pattern.
struct TenantStats {
  u64 lookups = 0;
  u64 stores = 0;
  u64 fetches = 0;
  u64 drops = 0;
  u64 store_bytes = 0;
  u64 admission_held = 0;  // stores held at the tenant edge
  obs::Histogram wait;     // per-key lookup+fetch wait (seconds)
  obs::Histogram admission_wait;  // per-store hold at the tenant edge
};

/// Config + stats, keyed by tenant id. Unconfigured tenants read the
/// defaults (weight 1.0, no budget, global retention).
class TenantRegistry {
 public:
  void configure(TenantId t, TenantConfig cfg) { configs_[t] = cfg; }
  const TenantConfig& config(TenantId t) const {
    auto it = configs_.find(t);
    return it == configs_.end() ? default_ : it->second;
  }
  double weight(TenantId t) const { return config(t).weight; }
  /// Effective keep-last-N for `t`: its own override, else the global.
  int keep_for(TenantId t, int global_keep) const {
    const int k = config(t).keep_generations;
    return k > 0 ? k : global_keep;
  }
  /// Effective hot-generation age for `t`: its override, else the global.
  int hot_for(TenantId t, int global_hot) const {
    const int h = config(t).hot_generations;
    return h > 0 ? h : global_hot;
  }
  TenantStats& stats(TenantId t) { return stats_[t]; }
  const std::map<TenantId, TenantStats>& all_stats() const { return stats_; }

 private:
  std::map<TenantId, TenantConfig> configs_;
  std::map<TenantId, TenantStats> stats_;
  TenantConfig default_{};
};

/// DRR quantum at weight 1.0, in device-equivalent bytes (the same unit
/// item costs are expressed in: index-probe bytes for metadata work). Large
/// enough that a lookup batch passes in one grant, small enough that a
/// store burst cannot monopolize a rotation.
inline constexpr u64 kFairQueueQuantumBytes = 256 * 1024;

/// Deficit round-robin over per-(QoS band, tenant) sub-queues.
///
/// Strict priority between bands: pop() drains the restart band before the
/// checkpoint band ever runs. Within a band, classic DRR: each sub-queue
/// holds a deficit counter; visiting a queue whose head doesn't fit grants
/// it quantum * weight and rotates it to the back, so over time each
/// tenant's share of device-bytes converges to its weight regardless of who
/// floods the queue. Per-tenant order stays FIFO.
class FairQueue {
 public:
  struct Item {
    u64 cost = 0;  // device-equivalent bytes this item will occupy
    std::function<void()> run;
  };

  void push(QosClass qos, TenantId tenant, double weight, Item item);
  /// Next item by (band priority, DRR). Precondition: !empty().
  Item pop();
  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

 private:
  struct SubQueue {
    std::deque<Item> items;
    u64 deficit = 0;
    u64 quantum = kFairQueueQuantumBytes;
  };
  struct Band {
    std::map<TenantId, SubQueue> queues;
    std::deque<TenantId> active;  // DRR rotation; only non-empty sub-queues
  };
  Band bands_[kNumQosBands];
  size_t size_ = 0;
};

/// Owner-string convention: the tenant id is folded into manifest/GC
/// ownership as a "t<id>/" prefix on the per-process owner, so each
/// tenant's generations form an independent namespace while chunk content
/// stays tenant-blind (identical bytes dedup across tenants).
inline std::string tenant_prefix(TenantId t) {
  return "t" + std::to_string(t) + "/";
}
inline std::string tenant_owner(TenantId t, const std::string& base_owner) {
  return tenant_prefix(t) + base_owner;
}
/// Parse the tenant back out of an owner string; owners without the prefix
/// (pre-multi-tenant repositories, tests) read as the default tenant.
TenantId tenant_of_owner(const std::string& owner);

}  // namespace dsim::ckptstore
