#include "ckptstore/cdc.h"

#include <algorithm>
#include <array>

#include "util/assertx.h"

namespace dsim::ckptstore {
namespace {

using sim::ByteImage;
using sim::ExtentKind;

/// 256 pseudo-random gear constants, generated once from splitmix64 so the
/// cutpoints are stable across runs and builds (chunk keys must be).
std::array<u64, 256> make_gear_table() {
  std::array<u64, 256> t{};
  u64 x = 0x9E3779B97F4A7C15ull;
  for (auto& v : t) {
    x += 0x9E3779B97F4A7C15ull;
    u64 z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    v = z ^ (z >> 31);
  }
  return t;
}

const std::array<u64, 256>& gear() {
  static const std::array<u64, 256> t = make_gear_table();
  return t;
}

void check_params(const ChunkingParams& p) {
  DSIM_CHECK_MSG(p.mode == ChunkingMode::kCdc ||
                     p.mode == ChunkingMode::kFastCdc,
                 "CDC scanner handed a non-CDC chunking mode");
  DSIM_CHECK_MSG(p.min_bytes > 0 && p.min_bytes <= p.avg_bytes &&
                     p.avg_bytes <= p.max_bytes,
                 "CDC bounds must satisfy 0 < min <= avg <= max");
  DSIM_CHECK_MSG((p.avg_bytes & (p.avg_bytes - 1)) == 0,
                 "CDC average chunk size must be a power of two");
}

/// Cut a real/mixed run into content-defined spans. The gear hash
/// `h = (h << 1) + gear[byte]` depends only on the last ~64 bytes, so a
/// byte insertion perturbs cutpoints for at most one window before they
/// resynchronize with the pre-insertion boundaries. The scan is strictly
/// sequential, so the run is materialized in bounded windows — peak
/// memory stays O(max_bytes) however large the run (the fixed scanner's
/// property, preserved).
///
/// Plain CDC tests one mask (avg - 1). FastCDC mode normalizes the size
/// distribution with two: below the target a stricter mask (two extra
/// bits → cuts 4x rarer) suppresses small chunks, above it a looser mask
/// (two fewer bits → cuts 4x likelier) pulls the tail in before the hard
/// max cut. Both masks are functions of window content and distance from
/// the last cut only, so resynchronization is preserved.
void cut_real_run(const ByteImage& img, u64 run_off, u64 run_len,
                  const ChunkingParams& p, std::vector<ChunkSpan>& out) {
  const auto& g = gear();
  const bool normalized = p.mode == ChunkingMode::kFastCdc;
  const u64 mask_pre =
      normalized ? (p.avg_bytes * 4 - 1) : (p.avg_bytes - 1);
  const u64 mask_post =
      normalized ? (std::max<u64>(p.avg_bytes / 4, 1) - 1)
                 : (p.avg_bytes - 1);
  const u64 window = std::max<u64>(4 * p.max_bytes, 256 * 1024);
  std::vector<std::byte> buf;
  u64 buf_base = 0;  // run-relative offset buf[0] corresponds to
  u64 start = 0;
  u64 h = 0;
  for (u64 i = 0; i < run_len; ++i) {
    if (i >= buf_base + buf.size()) {
      buf_base = i;
      buf = img.materialize(run_off + i, std::min(window, run_len - i));
    }
    h = (h << 1) + g[static_cast<u8>(buf[i - buf_base])];
    const u64 len = i + 1 - start;
    const u64 mask = len < p.avg_bytes ? mask_pre : mask_post;
    if (len >= p.max_bytes || (len >= p.min_bytes && (h & mask) == 0)) {
      out.push_back(ChunkSpan{run_off + start, len, ExtentKind::kReal, 0});
      start = i + 1;
      h = 0;
    }
  }
  if (start < run_len) {
    out.push_back(
        ChunkSpan{run_off + start, run_len - start, ExtentKind::kReal, 0});
  }
}

}  // namespace

std::vector<ChunkSpan> scan_chunks_cdc(const ByteImage& img,
                                       const ChunkingParams& p) {
  check_params(p);
  struct ExtView {
    u64 off, len;
    ExtentKind kind;
    u64 seed;
  };
  std::vector<ExtView> exts;
  img.for_each_extent([&](u64 off, const ByteImage::Extent& e) {
    exts.push_back({off, e.len, e.kind, e.seed});
  });

  std::vector<ChunkSpan> out;
  // Pattern extents at least min_bytes long stand alone: their boundaries
  // are content-determined by definition (the content *is* the descriptor),
  // so cutting at the extent edge keeps them dedupable without
  // materialization. Shorter pattern fragments fold into the surrounding
  // real run.
  u64 run_off = 0;   // start of the pending real/mixed run
  u64 run_len = 0;
  auto flush_run = [&] {
    if (run_len > 0) cut_real_run(img, run_off, run_len, p, out);
    run_len = 0;
  };
  for (const auto& e : exts) {
    if (e.kind != ExtentKind::kReal && e.len >= p.min_bytes) {
      flush_run();
      // Descriptor spans, cut at max_bytes (tail may be short).
      for (u64 done = 0; done < e.len; done += p.max_bytes) {
        const u64 len = std::min<u64>(p.max_bytes, e.len - done);
        out.push_back(ChunkSpan{e.off + done, len, e.kind, e.seed});
      }
      run_off = e.off + e.len;
      continue;
    }
    if (run_len == 0) run_off = e.off;
    run_len = e.off + e.len - run_off;
  }
  flush_run();
  return out;
}

std::vector<ChunkSpan> scan_chunks_with(const ByteImage& img,
                                        const ChunkingParams& p) {
  // kCdc and kFastCdc share the scanner; the mode picks the mask scheme.
  return p.mode == ChunkingMode::kFixed ? scan_chunks(img, p.fixed_bytes)
                                        : scan_chunks_cdc(img, p);
}

}  // namespace dsim::ckptstore
