// The content-addressed chunk repository.
//
// One repository backs one checkpoint directory (the sim's analogue of a
// stdchk-style checkpoint store service): chunks are stored once, keyed by
// content, and refcounted by the generations whose manifests reference
// them. Retention is "keep the last N generations per owner"; collecting
// garbage drops dead manifests, decrements chunk refcounts, and reclaims
// the storage of chunks no live generation references.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ckptstore/chunk.h"

namespace dsim::ckptstore {

/// Aggregate repository statistics (dedup ratio, live/dead bytes),
/// surfaced per round through the DMTCP stats plumbing.
struct RepoStats {
  u64 live_chunks = 0;
  u64 live_stored_bytes = 0;   // device-resident chunk bytes
  u64 live_logical_bytes = 0;  // sum of image bytes live manifests describe
  u64 reclaimed_bytes = 0;     // cumulative stored bytes freed by GC
  u64 put_requests = 0;        // cumulative chunk submissions
  u64 dedup_hits = 0;          // submissions answered by a resident chunk
  /// Logical bytes described per stored byte (>= 1 once dedup bites).
  double dedup_ratio() const {
    return live_stored_bytes == 0
               ? 1.0
               : static_cast<double>(live_logical_bytes) /
                     static_cast<double>(live_stored_bytes);
  }
};

class Repository {
 public:
  /// Resident chunk for `key`, or nullptr.
  const Chunk* find(const ChunkKey& key) const;
  /// Fault-injection / repair access (tests simulate chunk-store rot by
  /// swapping a chunk's content for a plausible-but-wrong container).
  Chunk* find_mutable(const ChunkKey& key);

  /// Store `chunk` under `key` if absent. Returns true when the chunk is
  /// new (its charged_bytes must be written to the device), false on a
  /// dedup hit. Re-putting a quarantined key replaces the rotten container
  /// with the fresh one and counts as a new store — the forward re-store
  /// path the scrubber's quarantine exists for.
  bool put(const ChunkKey& key, Chunk chunk);

  /// Quarantine a chunk the scrubber found corrupt: find() stops returning
  /// it (so the next generation's encode sees a miss and re-stores fresh
  /// content) while its refcount records survive — GC stays correct for
  /// the generations still referencing the key, and the re-put slots
  /// straight back in. Returns the stored bytes the rotten container
  /// occupied (the caller trims them from its devices), 0 if the key is
  /// unknown or already quarantined.
  u64 quarantine(const ChunkKey& key);
  /// Keys currently masked by quarantine (restart pre-flights must treat
  /// them as unavailable until a generation re-stores them).
  u64 quarantined_count() const { return quarantined_; }

  /// Record a chunk submission answered by a resident chunk without going
  /// through put() (the encoder's find-first fast path). Keeps the
  /// put_requests/dedup_hits counters meaning "all submissions".
  void note_hit() {
    stats_.put_requests++;
    stats_.dedup_hits++;
  }

  /// Record a committed manifest: `owner`'s generation `gen` references
  /// `keys` and describes `logical_bytes` of image content. Pins every
  /// referenced chunk until the generation is collected.
  void commit_generation(const std::string& owner, int gen,
                         const std::vector<ChunkKey>& keys,
                         u64 logical_bytes);

  /// A chunk GC reclaimed: its key and the device bytes it occupied. The
  /// placement layer uses these to trim the right node devices.
  struct ReclaimedChunk {
    ChunkKey key;
    u64 bytes = 0;
  };

  /// Retention policy: keep only the newest `keep` generations per owner.
  /// Returns the stored bytes reclaimed from chunks that became dead.
  /// Refcounts span owners: a chunk shared by several processes (the same
  /// mapped library chunked to the same key) stays resident until the last
  /// referencing generation of the last referencing owner dies — including
  /// owners of *other tenants* in a multi-tenant store, which is exactly
  /// why one tenant's GC can never drop a chunk another tenant still
  /// references. When `reclaimed_out` is given, every reclaimed chunk is
  /// appended to it (the chunk-store service trims each one from its
  /// placement homes). A non-empty `owner_prefix` scopes the pass to
  /// owners starting with it (one tenant's "t<id>/" namespace), so each
  /// tenant applies its own keep-last-N independently.
  u64 collect_garbage(int keep,
                      std::vector<ReclaimedChunk>* reclaimed_out = nullptr,
                      const std::string& owner_prefix = "");

  /// Drop every generation of `owner` (the process left the computation
  /// for good — exited without a pending restart, or its images were
  /// migrated away). Chunks it shared with other owners survive; chunks
  /// only it referenced are reclaimed. Returns the stored bytes reclaimed.
  u64 drop_owner(const std::string& owner,
                 std::vector<ReclaimedChunk>* reclaimed_out = nullptr);

  /// Copy `other`'s generations — and the chunks they reference — into
  /// this repository (checkpoint migration: the chunks a staged manifest
  /// references must travel to the target node's store with it).
  /// Generations already present are skipped with their refs, so
  /// re-absorbing after a round-trip migration never double-counts.
  void absorb(const Repository& other);

  /// Generations currently live for `owner` (oldest first).
  std::vector<int> live_generations(const std::string& owner) const;

  /// Distinct owners with at least one live generation.
  size_t owner_count() const { return generations_.size(); }

  /// Chunks referenced by live generations of more than one owner — the
  /// cross-process dedup the cluster-wide store exists for. Maintained
  /// incrementally (commit/GC), so reading it per round is O(1).
  u64 shared_chunk_count() const { return shared_chunks_; }

  /// Stored bytes of chunks referenced by more than one owner *group*,
  /// keyed by unordered group pair. A group is the owner prefix before the
  /// first '/' (the tenant namespace "t<id>"); owners without a '/' form
  /// their own group. This is the cross-tenant dedup report: bytes the
  /// store holds once although two tenants both reference them (shared
  /// mapped libraries across jobs). Walks the index — call it per round or
  /// per bench, not per request.
  std::map<std::pair<std::string, std::string>, u64> shared_bytes_by_group()
      const;

  /// Up to `n` resident chunks with keys strictly after `cursor`, wrapping
  /// to the start when the end is reached — the scrub daemon's round-robin
  /// walk. Pointers are valid until the next mutation (the scrubber
  /// verifies synchronously, before GC can reclaim anything).
  std::vector<std::pair<ChunkKey, const Chunk*>> chunks_after(
      const ChunkKey& cursor, size_t n) const;

  /// Resident, non-quarantined chunks referenced by *no* hot generation —
  /// hot meaning one of the newest `hot_generations` live generations of
  /// any owner. These are the demotion daemon's candidates: content only
  /// older checkpoints still pin, safe to re-stripe to the cold erasure
  /// profile in the background.
  std::vector<ChunkKey> cold_keys(int hot_generations) const;
  /// Same walk with a per-owner hot depth (multi-tenant stores resolve
  /// --hot-generations per tenant): `hot_for(owner)` returns how many of
  /// that owner's newest generations count as hot. A chunk is cold only
  /// when *every* owner referencing it considers it cold.
  std::vector<ChunkKey> cold_keys(
      const std::function<int(const std::string&)>& hot_for) const;

  const RepoStats& stats() const { return stats_; }

 private:
  struct Slot {
    Chunk chunk;
    int refs = 0;  // live generations referencing this chunk
    /// Live generations per owner — tracks which chunks are shared across
    /// processes without a per-round sweep. Size > 1 means shared.
    std::map<std::string, int> owner_refs;
    /// Scrub found the container rotten: masked from find()/chunks_after()
    /// and excluded from live-bytes stats until re-put, but the refcount
    /// records stay so GC semantics survive the quarantine window.
    bool quarantined = false;
  };
  struct GenRec {
    std::vector<ChunkKey> keys;  // unique keys this generation pins
    u64 logical_bytes = 0;
  };

  /// All shared_chunks_ bookkeeping lives in this pair: one reference
  /// from `owner` is added to / dropped from `slot`, and the shared
  /// counter is adjusted on the single-owner <-> multi-owner transitions.
  /// drop_owner_ref returns true when the slot's last reference died.
  void add_owner_ref(Slot& slot, const std::string& owner);
  bool drop_owner_ref(Slot& slot, const std::string& owner);

  /// Unpin one of `owner`'s generations, reclaiming chunks that reach zero
  /// refs. Returns the stored bytes reclaimed (caller updates
  /// reclaimed_bytes) and appends each dead chunk to `reclaimed_out` when
  /// given.
  u64 release_generation(const std::string& owner, const GenRec& rec,
                         std::vector<ReclaimedChunk>* reclaimed_out);

  std::map<ChunkKey, Slot> chunks_;
  std::map<std::string, std::map<int, GenRec>> generations_;
  u64 shared_chunks_ = 0;  // slots with owner_refs from > 1 owner
  u64 quarantined_ = 0;    // slots currently masked by quarantine
  RepoStats stats_;
};

}  // namespace dsim::ckptstore
