#include "core/coordinator.h"

#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "ckptasync/pipeline.h"
#include "core/msg_io.h"
#include "core/protocol.h"
#include "core/restart_script.h"
#include "sim/model_params.h"
#include "sim/pctx.h"
#include "util/assertx.h"
#include "util/logging.h"

namespace dsim::core {
namespace {

struct Client {
  Fd fd = kNoFd;
  UniquePid upid{};
  Pid vpid = kNoPid;
  std::string host;
  NodeId node = 0;  // from kRegister: drives automatic store placement
  bool restarting = false;
};

struct BarrierState {
  std::vector<Fd> waiters;
  int expected = 0;
};

struct CoordState {
  std::shared_ptr<DmtcpShared> shared;
  std::map<Fd, Client> clients;
  std::map<std::string, BarrierState> barriers;
  // Discovery service (§4.4 step 2).
  std::map<sim::ConnId, std::pair<i32, i32>> conn_addrs;
  std::map<sim::ConnId, std::vector<Fd>> pending_queries;
  // Restart-script material, per round: host -> image paths.
  std::map<int, std::map<i32, std::vector<std::string>>> round_images;
  // dmtcp_command clients waiting for checkpoint completion.
  std::vector<Fd> ckpt_waiters;
  int current_round = -1;
  // Automatic store-node placement happens once, at the first round, when
  // the registered membership finally says which nodes compute.
  bool endpoints_finalized = false;
  // Discovery entries are valid for one restart only; stale addresses from
  // a previous restart point at rendezvous listeners that no longer exist.
  size_t discovery_epoch = 0;
  // Chunk-store service and RPC-fabric stats at the previous round's close,
  // so each CkptRound records this round's delta (lookups served, wait
  // time, network bytes, scrub/heal results).
  ckptstore::ServiceStats svc_last;
  rpc::RpcStats rpc_last;
  // Async-pipeline stats at the previous round's close (same delta idiom).
  ckptasync::PipelineStats pipe_last;
  // Tracer per-stage totals at the previous round's close: the delta feeds
  // the round's "queue.*" stage_breakdown entries (tracing enabled only).
  std::map<std::string, obs::Tracer::StageStat> stage_last;
  // Full metrics-registry snapshot at the previous round's close: its
  // delta_since against the current snapshot is this round's health
  // time-series sample (--health-out / --slo only).
  obs::MetricsRegistry reg_last;
};

void refresh_discovery_epoch(CoordState* st) {
  const size_t epoch = st->shared->stats.restarts.size();
  if (st->discovery_epoch != epoch) {
    st->discovery_epoch = epoch;
    st->conn_addrs.clear();
    st->pending_queries.clear();
  }
}

sim::TcpVNode* sock_of(sim::Process& p, Fd fd) {
  auto of = p.fds().get(fd);
  if (!of || of->vnode->kind() != sim::VKind::kTcp) return nullptr;
  return static_cast<sim::TcpVNode*>(of->vnode.get());
}

Task<void> send_to(sim::ProcessCtx& ctx, Fd fd, Msg m) {
  if (auto* s = sock_of(ctx.process(), fd)) {
    co_await send_msg(ctx.kernel(), ctx.thread(), *s, m);
  }
}

/// Automatic store-node placement (once, at the first round, when the
/// registrations say which nodes compute): without an explicit
/// --store-node, shard endpoints are pinned onto spare non-compute nodes
/// when any exist — stdchk deploys its storage service on dedicated
/// machines for exactly the reason bench_service pins them by hand: an
/// endpoint sharing a NIC with a rank's store burst couples the metadata
/// path to bulk traffic. No spares (every node computes) keeps the startup
/// default, shards spreading from the coordinator's node.
void finalize_endpoints(CoordState* st, sim::ProcessCtx& ctx) {
  if (st->endpoints_finalized) return;
  st->endpoints_finalized = true;
  auto* svc = st->shared->store_service.get();
  if (svc == nullptr || !st->shared->owns_store ||
      st->shared->opts.store_node != DmtcpOptions::kStoreNodeCoord) {
    return;  // no service, an attached tenant, or an explicitly pinned base
  }
  std::set<NodeId> compute;
  for (const auto& [fd, c] : st->clients) compute.insert(c.node);
  std::vector<NodeId> spares;
  for (NodeId n = 0; n < ctx.kernel().num_nodes(); ++n) {
    if (compute.count(n) || n == ctx.process().node()) continue;
    if (st->shared->membership && !st->shared->membership->alive(n)) continue;
    spares.push_back(n);
  }
  if (spares.empty()) return;
  std::vector<NodeId> endpoints;
  endpoints.reserve(static_cast<size_t>(svc->num_shards()));
  for (int s = 0; s < svc->num_shards(); ++s) {
    endpoints.push_back(spares[static_cast<size_t>(s) % spares.size()]);
  }
  LOG_INFO("coordinator: auto-placing %d shard endpoint(s) on %zu spare "
           "non-compute node(s) (first: node %d)",
           svc->num_shards(), spares.size(), endpoints.front());
  svc->set_endpoints(std::move(endpoints));
}

Task<void> initiate_checkpoint(CoordState* st, sim::ProcessCtx& ctx) {
  if (st->shared->ckpt_active) co_return;  // a round is already in flight
  finalize_endpoints(st, ctx);
  if (auto* svc = st->shared->store_service.get();
      svc != nullptr && st->shared->owns_store) {
    // Round boundary: move failover-re-homed shards back to their assigned
    // endpoints if those nodes were revived (shard stickiness fix — no
    // in-flight foreground traffic here, so the move is safe).
    svc->rehome_to_owners();
  }
  st->shared->ckpt_active = true;
  const int round = static_cast<int>(st->shared->stats.rounds.size());
  st->current_round = round;
  CkptRound r;
  r.requested = ctx.now();
  st->shared->stats.rounds.push_back(r);
  LOG_INFO("coordinator: checkpoint round %d requested (%zu clients)", round,
           st->clients.size());
  if (st->clients.empty()) {
    // Nothing to checkpoint: complete the round trivially (procs == 0 tells
    // the requester the computation had already finished).
    auto& rr = st->shared->stats.rounds.back();
    rr.suspended = rr.elected = rr.drained = rr.checkpointed = rr.refilled =
        ctx.now();
    st->shared->ckpt_active = false;
    co_return;
  }
  Msg req;
  req.type = MsgType::kCkptRequest;
  req.a = round;
  for (const auto& [fd, c] : st->clients) {
    co_await ctx.cpu(to_seconds(sim::params::kCoordMsgCpu));
    co_await send_to(ctx, fd, req);
  }
}

void stamp_barrier(CoordState* st, const std::string& name, SimTime now) {
  auto& stats = st->shared->stats;
  if (!stats.rounds.empty()) {
    CkptRound& r = stats.rounds.back();
    if (name == barrier::kSuspended) r.suspended = now;
    else if (name == barrier::kElected) r.elected = now;
    else if (name == barrier::kDrained) r.drained = now;
    else if (name == barrier::kCheckpointed) r.checkpointed = now;
    else if (name == barrier::kRefilled) r.refilled = now;
  }
  if (!stats.restarts.empty()) {
    RestartRun& rr = stats.restarts.back();
    if (name == "restart:checkpointed") {
      rr.refill_seconds = -to_seconds(now);  // completed at restart:refilled
    } else if (name == "restart:refilled") {
      rr.refilled = now;
      rr.refill_seconds += to_seconds(now);
      if (auto* tr = st->shared->tracer.get();
          tr != nullptr && rr.refilled > rr.script_started) {
        // Same sweep as a checkpoint round, over the restart window;
        // uninstrumented time falls to the restart.load/.refill phases.
        rr.critical_path = obs::critical_path(
            *tr, rr.script_started, rr.refilled, restart_phases(rr));
        DSIM_CHECK_MSG(rr.critical_path.attributed_ns() ==
                           rr.refilled - rr.script_started,
                       "restart critical path must partition the window");
      }
    }
  }
}

Task<void> finish_round(CoordState* st, sim::ProcessCtx& ctx) {
  st->shared->ckpt_active = false;
  st->shared->ckpt_generation++;
  // Generate the restart script for this round (§3).
  const int round = st->current_round;
  if (!st->shared->repos.empty()) {
    // Snapshot the repositories after every manager committed + GC'd: the
    // round's stats carry the store's live size and dedup ratio,
    // aggregated across node-local stores.
    u64 live = 0, reclaimed = 0, logical = 0, shared_chunks = 0;
    for (const auto& [node, repo] : st->shared->repos) {
      const auto& rs = repo->stats();
      live += rs.live_stored_bytes;
      reclaimed += rs.reclaimed_bytes;
      logical += rs.live_logical_bytes;
      shared_chunks += repo->shared_chunk_count();
    }
    auto& r = st->shared->stats.rounds.back();
    r.store_live_bytes = live;
    r.store_shared_chunks = shared_chunks;
    r.store_reclaimed_bytes = reclaimed;
    r.dedup_ratio = live == 0 ? 1.0
                              : static_cast<double>(logical) /
                                    static_cast<double>(live);
  }
  if (auto* svc = st->shared->store_service.get();
      svc != nullptr && st->shared->owns_store) {
    // Request-queue view of the round: the lookups this round's managers
    // queued and how long they waited in line behind every other rank's —
    // plus the RPC fabric's view (requests really crossed the network) and
    // the background daemons' results since the previous round. Only the
    // computation that owns the service snapshots the deltas and kicks the
    // daemons; attached tenants would double-consume both.
    const ckptstore::ServiceStats& ss = svc->stats();
    const rpc::RpcStats& rs = svc->fabric().stats();
    auto& r = st->shared->stats.rounds.back();
    r.store_lookups = ss.lookup_requests - st->svc_last.lookup_requests;
    // The round's full wait distribution is the histogram's bucket delta;
    // its sum() is exactly the old running-sum delta (same subtraction),
    // so the scalar fields the bench JSON emits are unchanged.
    r.lookup_wait_hist = ss.lookup_wait.delta_since(st->svc_last.lookup_wait);
    r.lookup_wait_seconds = r.lookup_wait_hist.sum();
    r.max_lookup_wait_seconds = svc->take_max_lookup_wait();
    r.store_admission_held =
        ss.admission_held_requests - st->svc_last.admission_held_requests;
    r.store_admission_wait_seconds =
        ss.admission_wait.sum() - st->svc_last.admission_wait.sum();
    r.store_rpcs = rs.calls - st->rpc_last.calls;
    r.store_rpc_net_bytes = rs.net_bytes - st->rpc_last.net_bytes;
    r.store_rpc_net_wait_seconds =
        rs.net_wait_seconds - st->rpc_last.net_wait_seconds;
    r.scrubbed_chunks = ss.scrubbed_chunks - st->svc_last.scrubbed_chunks;
    r.scrub_corrupt_chunks =
        ss.scrub_corrupt_chunks - st->svc_last.scrub_corrupt_chunks;
    r.scrub_missing_chunks =
        ss.scrub_missing_chunks - st->svc_last.scrub_missing_chunks;
    r.scrub_quarantined_chunks =
        ss.scrub_quarantined_chunks - st->svc_last.scrub_quarantined_chunks;
    r.rereplicated_chunks =
        ss.rereplicated_chunks - st->svc_last.rereplicated_chunks;
    r.failover_rehomed_shards =
        ss.rehomed_shards - st->svc_last.rehomed_shards;
    r.failover_replayed_requests =
        ss.replayed_requests - st->svc_last.replayed_requests;
    r.failover_rehomed_back_shards =
        ss.rehomed_back_shards - st->svc_last.rehomed_back_shards;
    r.rebalance_moved_keys =
        ss.rebalance_moved_keys - st->svc_last.rebalance_moved_keys;
    r.rebalance_moved_bytes =
        ss.rebalance_moved_bytes - st->svc_last.rebalance_moved_bytes;
    r.rebuilt_fragments =
        ss.rebuilt_fragments - st->svc_last.rebuilt_fragments;
    r.scrub_repaired_fragments =
        ss.scrub_repaired_fragments - st->svc_last.scrub_repaired_fragments;
    r.demoted_chunks = ss.demoted_chunks - st->svc_last.demoted_chunks;
    r.demoted_bytes = ss.demoted_bytes - st->svc_last.demoted_bytes;
    st->svc_last = ss;
    st->rpc_last = rs;
    // Kick this round's scrub pass; its results land in the next round's
    // delta (the pass drains through the shard queues asynchronously).
    if (st->shared->opts.scrub_chunks > 0) {
      svc->scrub(st->shared->opts.scrub_chunks, st->shared->opts.codec);
    }
    // Cold-tier demotion rides the same round boundary: chunks only old
    // generations still reference re-stripe to the wider cold profile in
    // the background, capped per round so foreground traffic wins.
    if (svc->erasure().cold_enabled()) {
      svc->demote_cold(sim::params::kDemoteChunksPerRound);
    }
  }
  {
    // Derived per-round signals from the managers' blob-v2 sums: the
    // store-level compress ratio over this round's new chunks and the
    // workload's dirty-locality fraction (generation 0 reads 1.0).
    auto& r = st->shared->stats.rounds.back();
    r.compress_ratio =
        r.store_raw_new_bytes == 0
            ? 1.0
            : static_cast<double>(r.store_new_chunk_bytes) /
                  static_cast<double>(r.store_raw_new_bytes);
    r.dirty_page_fraction =
        r.total_uncompressed == 0
            ? 0.0
            : 1.0 - static_cast<double>(r.store_dup_bytes) /
                        static_cast<double>(r.total_uncompressed);
  }
  if (auto* pipe = st->shared->async_pipeline.get()) {
    const ckptasync::PipelineStats& ps = pipe->stats();
    auto& r = st->shared->stats.rounds.back();
    r.cow_pages_copied =
        ps.cow_pages_copied - st->pipe_last.cow_pages_copied;
    r.cow_copy_seconds = ps.cow_copy_seconds - st->pipe_last.cow_copy_seconds;
    r.async_queued_bytes = ps.queued_bytes - st->pipe_last.queued_bytes;
    r.async_blocked_seconds =
        ps.blocked_seconds - st->pipe_last.blocked_seconds;
    // Drain latency of the jobs that *completed* in this round's window
    // (a round's own jobs usually finish after its refill barrier).
    r.async_drain_seconds = ps.drain_seconds - st->pipe_last.drain_seconds;
    st->pipe_last = ps;
  }
  {
    // Critical-path attribution: the barrier stages decompose the round's
    // pause exactly (they are adjacent intervals of one timeline, so their
    // sum IS the total — asserted to catch any future re-stamping bug);
    // with tracing on, the per-stage queue-wait deltas ride along.
    auto& r = st->shared->stats.rounds.back();
    r.stage_breakdown["barrier.suspend"] = r.suspend_seconds();
    r.stage_breakdown["barrier.elect"] = r.elect_seconds();
    r.stage_breakdown["barrier.drain"] = r.drain_seconds();
    r.stage_breakdown["barrier.write"] = r.write_seconds();
    r.stage_breakdown["barrier.refill"] = r.refill_seconds();
    const double barrier_sum =
        r.stage_breakdown["barrier.suspend"] +
        r.stage_breakdown["barrier.elect"] +
        r.stage_breakdown["barrier.drain"] +
        r.stage_breakdown["barrier.write"] +
        r.stage_breakdown["barrier.refill"];
    DSIM_CHECK_MSG(std::fabs(barrier_sum - r.total_seconds()) <= 1e-9,
                   "round barrier stages must sum to the measured total");
    if (auto* tr = st->shared->tracer.get()) {
      for (const auto& [name, stat] : tr->stages()) {
        const auto it = st->stage_last.find(name);
        const double prev = it == st->stage_last.end() ? 0.0 : it->second.seconds;
        const double delta = stat.seconds - prev;
        if (delta > 0) r.stage_breakdown["queue." + name] = delta;
      }
      st->stage_last = tr->stages();
      // Critical-path attribution over the pause window: the backward
      // sweep partitions [requested, refilled) in integer nanoseconds,
      // so its attributed time equals the barrier stage total exactly —
      // both identities asserted, every round.
      r.critical_path =
          obs::critical_path(*tr, r.requested, r.refilled, round_phases(r));
      DSIM_CHECK_MSG(
          r.critical_path.attributed_ns() == r.refilled - r.requested,
          "round critical path must partition the pause window");
      DSIM_CHECK_MSG(
          std::fabs(r.critical_path.total_seconds() - barrier_sum) <= 1e-9,
          "round critical path must sum to the stage_breakdown total");
      if (!r.critical_path.entries.empty()) {
        LOG_DEBUG("coordinator: round %d critical path: %s",
                  st->current_round, r.critical_path.top_blame().c_str());
      }
    }
  }
  if (st->shared->health_series) {
    // Health time-series sample: the registry's delta against the
    // previous round's snapshot, flattened to named scalars — counter
    // deltas and backlog gauges under their registry names, selected
    // histogram deltas as .p99, plus the aliases the SLO rules and docs
    // use (pause_seconds, degraded_chunks, parked_requests, ...).
    auto& r = st->shared->stats.rounds.back();
    obs::MetricsRegistry now_reg = collect_metrics(*st->shared);
    const obs::MetricsRegistry delta = now_reg.delta_since(st->reg_last);
    st->reg_last = std::move(now_reg);
    obs::RoundSeries::Sample sample;
    sample.round = st->current_round;
    sample.at = r.refilled;
    for (const auto& [name, v] : delta.counters()) {
      sample.values[name] = static_cast<double>(v);
    }
    for (const auto& [name, v] : delta.gauges()) sample.values[name] = v;
    for (const auto& [name, h] : delta.histograms()) {
      if (h.count() != 0) sample.values[name + ".p99"] = h.quantile(0.99);
    }
    sample.values["pause_seconds"] = r.total_seconds();
    sample.values["degraded_chunks"] = sample.values["store.degraded_chunks"];
    sample.values["heal_backlog"] = sample.values["store.degraded_chunks"];
    sample.values["parked_requests"] = sample.values["store.parked_now"];
    sample.values["quarantined_chunks"] =
        sample.values["store.quarantined_chunks"];
    sample.values["admission_held"] =
        sample.values["store.admission_held_requests"];
    sample.values["replayed_requests"] =
        sample.values["store.replayed_requests"];
    st->shared->health_series->push(std::move(sample));
    if (auto* slo = st->shared->slo_engine.get()) {
      const std::vector<obs::AlertEvent> events =
          slo->evaluate(*st->shared->health_series);
      for (const obs::AlertEvent& ev : events) {
        // Alerts become structured trace events: a zero-duration span on
        // an alert.<rule> lane of the service process, stamped with the
        // round's virtual close time (zero-length, so the critical-path
        // sweep never attributes wait to the alert itself).
        if (auto* tr = st->shared->tracer.get()) {
          tr->end(tr->begin(ev.fired ? "alert.fired" : "alert.cleared",
                            obs::kServicePid, "alert." + ev.rule, ctx.now()),
                  ctx.now());
        }
        if (ev.fired) {
          LOG_WARN("coordinator: SLO alert %s", ev.message.c_str());
        } else {
          LOG_INFO("coordinator: SLO %s", ev.message.c_str());
        }
      }
    }
  }
  RestartPlan plan;
  plan.coord_node = st->shared->opts.coord_node;
  plan.coord_port = st->shared->opts.coord_port;
  for (const auto& [host, paths] : st->round_images[round]) {
    plan.hosts.push_back(RestartPlan::HostLine{host, paths});
    plan.total_procs += static_cast<int>(paths.size());
  }
  const std::string script = format_restart_script(plan);
  const std::string path =
      st->shared->opts.ckpt_dir + "/dmtcp_restart_script.sh";
  auto inode =
      ctx.kernel().fs_for(ctx.process().node(), path).create(path);
  inode->data = sim::ByteImage(script.size());
  inode->data.write(0, as_bytes_view(script));
  // Wake dmtcp_command --checkpoint waiters.
  for (Fd fd : st->ckpt_waiters) {
    Msg done;
    done.type = MsgType::kCommandReply;
    done.s = "checkpoint-done";
    done.a = round;
    co_await send_to(ctx, fd, done);
  }
  st->ckpt_waiters.clear();
}

/// Release every barrier whose waiter count reached its expectation. Called
/// on both barrier arrivals and client departures: a client exiting
/// mid-round shrinks the membership and can satisfy a pending barrier.
Task<void> maybe_release_barriers(CoordState* st, sim::ProcessCtx& ctx) {
  for (auto& [name, b] : st->barriers) {
    const int expected =
        b.expected > 0 ? b.expected : static_cast<int>(st->clients.size());
    if (b.waiters.empty() ||
        static_cast<int>(b.waiters.size()) < expected) {
      continue;
    }
    LOG_INFO("coordinator: barrier %s released (%zu waiters)", name.c_str(),
             b.waiters.size());
    stamp_barrier(st, name, ctx.now());
    Msg rel;
    rel.type = MsgType::kBarrierRelease;
    rel.s = name;
    auto waiters = std::move(b.waiters);
    b.waiters.clear();
    b.expected = 0;
    for (Fd w : waiters) co_await send_to(ctx, w, rel);
    if (name == barrier::kRefilled) co_await finish_round(st, ctx);
  }
}

Task<void> client_handler(CoordState* st, sim::ProcessCtx* pctx, Fd fd) {
  auto& ctx = *pctx;
  auto& k = ctx.kernel();
  sim::TcpVNode* sock = sock_of(ctx.process(), fd);
  DSIM_CHECK(sock != nullptr);
  while (true) {
    auto m = co_await recv_msg(k, ctx.thread(), *sock);
    if (!m) break;  // client gone
    co_await ctx.cpu(to_seconds(sim::params::kCoordMsgCpu));
    switch (m->type) {
      case MsgType::kRegister: {
        Client c;
        c.fd = fd;
        c.upid = m->upid;
        c.vpid = m->a;
        c.host = m->s;
        c.node = static_cast<NodeId>(m->ua);
        c.restarting = m->b != 0;
        st->clients[fd] = c;
        LOG_INFO("coordinator: register vpid=%d host=%s fd=%d (%zu clients)",
                 c.vpid, c.host.c_str(), fd, st->clients.size());
        if (c.restarting && !st->shared->stats.restarts.empty()) {
          st->shared->stats.restarts.back().procs++;
        }
        break;
      }
      case MsgType::kBarrierWait: {
        auto& b = st->barriers[m->s];
        if (m->a > 0) b.expected = m->a;
        b.waiters.push_back(fd);
        co_await maybe_release_barriers(st, ctx);
        break;
      }
      case MsgType::kCommand: {
        if (m->s == "checkpoint") {
          co_await initiate_checkpoint(st, ctx);
          if (m->a == 1) {
            st->ckpt_waiters.push_back(fd);
          } else {
            Msg rep;
            rep.type = MsgType::kCommandReply;
            rep.s = "checkpoint-requested";
            co_await send_to(ctx, fd, rep);
          }
        } else if (m->s == "status") {
          Msg rep;
          rep.type = MsgType::kCommandReply;
          rep.s = "clients";
          rep.a = static_cast<int>(st->clients.size());
          co_await send_to(ctx, fd, rep);
        } else if (m->s == "interval") {
          st->shared->opts.interval =
              static_cast<SimTime>(m->a) * timeconst::kSecond;
          Msg rep;
          rep.type = MsgType::kCommandReply;
          rep.s = "interval-set";
          co_await send_to(ctx, fd, rep);
        }
        break;
      }
      case MsgType::kAdvertise: {
        refresh_discovery_epoch(st);
        st->conn_addrs[m->conn] = {m->a, m->b};
        auto it = st->pending_queries.find(m->conn);
        if (it != st->pending_queries.end()) {
          Msg info;
          info.type = MsgType::kAddrInfo;
          info.conn = m->conn;
          info.a = m->a;
          info.b = m->b;
          for (Fd q : it->second) co_await send_to(ctx, q, info);
          st->pending_queries.erase(it);
        }
        break;
      }
      case MsgType::kQueryAddr: {
        refresh_discovery_epoch(st);
        auto it = st->conn_addrs.find(m->conn);
        if (it != st->conn_addrs.end()) {
          Msg info;
          info.type = MsgType::kAddrInfo;
          info.conn = m->conn;
          info.a = it->second.first;
          info.b = it->second.second;
          co_await send_to(ctx, fd, info);
        } else {
          st->pending_queries[m->conn].push_back(fd);
        }
        break;
      }
      case MsgType::kImageStats: {
        const int round = m->a;
        auto& r = st->shared->stats.rounds.at(static_cast<size_t>(round));
        r.procs++;
        r.total_uncompressed += m->ua;
        ByteReader br(m->blob);
        const u64 written = br.get_u64();
        r.total_compressed += written;
        if (br.remaining() > 0) {
          // Incremental manifest exchange: managers additionally report
          // their delta against the chunk repository. The bytes written
          // are the delta (new chunks + manifest).
          r.store_new_bytes += written;
          r.total_chunks += br.get_u64();
          r.new_chunks += br.get_u64();
          r.store_dup_bytes += br.get_u64();
          if (br.remaining() > 0) {
            // Blob v2 (compressed-chunk + async extension).
            r.store_new_chunk_bytes += br.get_u64();
            r.store_raw_new_bytes += br.get_u64();
            const u64 flags = br.get_u64();
            if (flags & kImageFlagSkipped) r.async_skipped_procs++;
          }
        }
        st->round_images[round][m->b].push_back(m->s);
        break;
      }
      case MsgType::kStageNote: {
        if (!st->shared->stats.restarts.empty()) {
          RestartRun& rr = st->shared->stats.restarts.back();
          const double secs = to_seconds(static_cast<SimTime>(m->ua));
          if (m->s == "files") rr.files_ptys_seconds += secs;
          else if (m->s == "reconnect") rr.reconnect_seconds += secs;
          else if (m->s == "memory") {
            rr.memory_threads_seconds += secs;
            rr.hosts_reported++;
          }
        }
        break;
      }
      default:
        DSIM_UNREACHABLE("coordinator: unexpected message type");
    }
  }
  LOG_INFO("coordinator: client fd=%d vpid=%d disconnected", fd,
           st->clients.count(fd) ? st->clients[fd].vpid : -1);
  st->clients.erase(fd);
  // The departure may satisfy a barrier the remaining clients wait in.
  co_await maybe_release_barriers(st, ctx);
  k.close_fd(ctx.process(), fd);
}

Task<void> interval_timer(CoordState* st, sim::ProcessCtx* pctx) {
  auto& ctx = *pctx;
  while (true) {
    const SimTime iv = st->shared->opts.interval;
    if (iv <= 0) {
      co_await ctx.sleep(50 * timeconst::kMillisecond);
      continue;
    }
    co_await ctx.sleep(iv);
    if (st->shared->opts.interval > 0) {
      co_await initiate_checkpoint(st, ctx);
    }
  }
}

Task<void> handler_entry(CoordState* st, sim::ProcessCtx* pctx, Fd fd) {
  co_await client_handler(st, pctx, fd);
}

Task<int> coordinator_main(sim::ProcessCtx& ctx,
                           std::shared_ptr<DmtcpShared> shared) {
  auto st = std::make_unique<CoordState>();
  st->shared = shared;

  const Fd lfd = co_await ctx.socket_raw(false);
  const bool ok = co_await ctx.bind_raw(lfd, shared->opts.coord_port);
  DSIM_CHECK_MSG(ok, "coordinator: port already in use");
  co_await ctx.listen_raw(lfd);

  if (shared->store_service && shared->owns_store) {
    // Endpoint setup: shard 0 runs where --store-node says (default:
    // alongside the coordinator, as dmtcp's helper daemons do) and the
    // remaining shards spread round-robin from there. Managers reach every
    // shard over the RPC fabric from here on; the option set was validated
    // against the cluster shape at launch (DmtcpOptions::validate_cluster),
    // so the base node is in range by construction.
    auto& svc = *shared->store_service;
    const NodeId base =
        shared->opts.store_node >= 0
            ? static_cast<NodeId>(shared->opts.store_node)
            : ctx.process().node();
    std::vector<NodeId> endpoints;
    endpoints.reserve(static_cast<size_t>(svc.num_shards()));
    for (int s = 0; s < svc.num_shards(); ++s) {
      endpoints.push_back(
          static_cast<NodeId>((base + s) % ctx.kernel().num_nodes()));
    }
    svc.set_endpoints(std::move(endpoints));
    LOG_INFO("coordinator: chunk-store service with %d shard(s) from node "
             "%d (%d replica(s) per chunk, %d lookup key(s) per RPC)",
             svc.num_shards(), base, shared->opts.chunk_replicas,
             shared->opts.lookup_batch);
  }

  {
    sim::Thread& t =
        ctx.process().add_thread(sim::ThreadKind::kManager);
    t.start(interval_timer(st.get(), &t.pctx()));
  }

  while (true) {
    const Fd cfd = co_await ctx.accept_raw(lfd);
    if (cfd == kNoFd) break;
    sim::Thread& t = ctx.process().add_thread(sim::ThreadKind::kManager);
    t.start(handler_entry(st.get(), &t.pctx(), cfd));
  }
  co_return 0;
}

Task<int> command_main(sim::ProcessCtx& ctx,
                       std::shared_ptr<DmtcpShared> shared) {
  // argv: [command] — "checkpoint" (waits for completion) or "status".
  DSIM_CHECK(!ctx.process().argv().empty());
  const std::string cmd = ctx.process().argv()[0];
  const Fd fd = co_await ctx.socket_raw(false);
  const sim::SockAddr coord{shared->opts.coord_node, shared->opts.coord_port};
  while (!co_await ctx.connect_raw(fd, coord)) {
    co_await ctx.sleep(1 * timeconst::kMillisecond);
  }
  auto* sock = sock_of(ctx.process(), fd);
  Msg m;
  m.type = MsgType::kCommand;
  m.s = cmd;
  m.a = (cmd == "checkpoint") ? 1 : 0;  // wait for completion
  co_await send_msg(ctx.kernel(), ctx.thread(), *sock, m);
  auto reply = co_await recv_msg(ctx.kernel(), ctx.thread(), *sock);
  co_return reply.has_value() ? 0 : 1;
}

}  // namespace

sim::Program make_coordinator_program(SharedResolver resolve) {
  sim::Program p;
  p.name = "dmtcp_coordinator";
  p.main = [resolve](sim::ProcessCtx& ctx) {
    return coordinator_main(ctx, resolve(ctx.process()));
  };
  return p;
}

sim::Program make_command_program(SharedResolver resolve) {
  sim::Program p;
  p.name = "dmtcp_command";
  p.main = [resolve](sim::ProcessCtx& ctx) {
    return command_main(ctx, resolve(ctx.process()));
  };
  return p;
}

}  // namespace dsim::core
