#include "core/launch.h"

#include <cstdio>
#include <fstream>
#include <set>

#include "ckptasync/pipeline.h"
#include "ckptstore/manifest.h"
#include "ckptstore/tenant.h"
#include "cluster/failover.h"
#include "cluster/membership.h"
#include "core/coordinator.h"
#include "core/hijack.h"
#include "core/restart.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/model_params.h"
#include "util/assertx.h"
#include "util/logging.h"

namespace dsim::core {

namespace {

/// Log-clock bridge: set_log_clock takes a plain function pointer, so the
/// loop reference lives in a file-static. Every computation on one process
/// shares one virtual clock anyway (kernels are not mixed across tests
/// within a single log line's lifetime).
sim::EventLoop* g_log_loop = nullptr;
SimTime log_now() { return g_log_loop != nullptr ? g_log_loop->now() : 0; }

LogLevel parse_log_level(const std::string& s, LogLevel fallback) {
  if (s == "trace") return LogLevel::kTrace;
  if (s == "debug") return LogLevel::kDebug;
  if (s == "info") return LogLevel::kInfo;
  if (s == "warn") return LogLevel::kWarn;
  if (s == "error") return LogLevel::kError;
  if (s == "off") return LogLevel::kOff;
  return fallback;
}

/// Rules installed when --health-out is set without an explicit --slo:
/// the two invariants every healthy deployment shares regardless of
/// workload — no request still parked at a round boundary, and a heal
/// backlog (degraded chunks after a node death) that drains within two
/// rounds of appearing.
constexpr const char* kDefaultSloRules =
    "parked: parked_requests == 0; "
    "heal_backlog: drain(degraded_chunks, 2)";

/// Create the health engine (round series + SLO rules) when either
/// --health-out or --slo asks for it. opts.slo was validated at
/// option-parse time, so add_rules cannot fail here.
void arm_health(DmtcpShared* shared) {
  const DmtcpOptions& opts = shared->opts;
  if (!opts.health_enabled()) return;
  shared->health_series = std::make_shared<obs::RoundSeries>();
  shared->slo_engine = std::make_shared<obs::SloEngine>();
  const std::string err = shared->slo_engine->add_rules(
      opts.slo.empty() ? kDefaultSloRules : opts.slo);
  DSIM_CHECK_MSG(err.empty(), err.c_str());
}

std::string fmt_us(SimTime t) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(t) / 1e3);
  return buf;
}

}  // namespace

DmtcpControl::DmtcpControl(sim::Kernel& kernel, DmtcpOptions opts)
    : k_(kernel),
      shared_(std::make_shared<DmtcpShared>()),
      registry_(std::make_shared<SharedRegistry>()) {
  const std::string err = opts.validate();
  DSIM_CHECK_MSG(err.empty(), ("dmtcp_checkpoint: " + err).c_str());
  const std::string cluster_err = opts.validate_cluster(k_.num_nodes());
  DSIM_CHECK_MSG(cluster_err.empty(),
                 ("dmtcp_checkpoint: " + cluster_err).c_str());
  shared_->opts = opts;
  if (!opts.trace_out.empty() || !opts.metrics_out.empty() ||
      opts.health_enabled()) {
    // Observability is armed by any export flag (the health engine's
    // critical path walks the tracer's spans); the tracer installs on
    // the kernel's event loop, where every instrumentation site finds it.
    shared_->tracer = std::make_shared<obs::Tracer>();
    k_.loop().set_tracer(shared_->tracer.get());
  }
  arm_health(shared_.get());
  if (opts.incremental && shared_->cluster_wide_store()) {
    // The cluster-wide store is a *service* reached over the RPC fabric,
    // not a free index: it owns the shared repository (repos[kSharedRepo]
    // aliases it so stats aggregation and migration are unchanged), the
    // replica placement map, and one FIFO queue per shard. The coordinator
    // assigns shard endpoints at startup.
    shared_->store_service = std::make_shared<ckptstore::ChunkStoreService>(
        k_.loop(), k_.net(), opts.chunk_replicas, opts.store_shards,
        opts.lookup_batch,
        ckptstore::ChunkStoreService::ErasureConfig{
            opts.erasure_k, opts.erasure_m, opts.cold_erasure_k,
            opts.cold_erasure_m, opts.hot_generations});
    // The re-replication daemon lands replica copies (and verification
    // reads) on node devices; the service names the nodes, the kernel does
    // the charging.
    sim::Kernel* kp = &k_;
    const std::string charge_path = opts.ckpt_dir + "/chunkstore";
    shared_->store_service->set_device_charger(
        [kp, charge_path](NodeId node, u64 bytes, bool is_read,
                          std::function<void()> done) {
          kp->charge_storage_bg(node, charge_path, bytes, is_read,
                                std::move(done));
        });
    // The scrubber's quarantine pairs every reclaim with a device trim on
    // the rotten copies' homes, exactly as GC does.
    shared_->store_service->set_device_trimmer(
        [kp, charge_path](NodeId node, u64 bytes) {
          kp->discard_storage(node, charge_path, bytes);
        });
    // Erasure decode/re-encode (fragment rebuilds, scrub repairs, cold
    // demotions) is real CPU on the node doing the arithmetic, contending
    // with the application through the fluid share.
    shared_->store_service->set_cpu_charger(
        [kp](NodeId node, double seconds, std::function<void()> done) {
          kp->node(node).cpu().submit(seconds, std::move(done));
        });
    shared_->repos[DmtcpShared::kSharedRepo] =
        shared_->store_service->repo_ptr();
    // Cluster membership + shard failover (src/cluster/): the coordinator's
    // node heartbeats every other node over the RPC fabric, and the
    // failover manager consumes its death events — heal kick plus shard
    // re-home with in-flight replay. The service routes ground-truth kills
    // (fail_node) through membership, so the reaction arrives only after
    // the detection latency a real deployment would pay.
    cluster::MembershipConfig mcfg;
    mcfg.heartbeat_interval =
        static_cast<SimTime>(opts.heartbeat_interval_ms) *
        timeconst::kMillisecond;
    mcfg.heartbeat_misses = opts.heartbeat_misses;
    mcfg.monitor_node = opts.coord_node;
    shared_->membership = std::make_shared<cluster::Membership>(
        k_.loop(), k_.net(), shared_->store_service->health(), mcfg);
    shared_->failover = std::make_shared<cluster::FailoverManager>(
        *shared_->membership, *shared_->store_service);
    auto membership = shared_->membership;
    shared_->store_service->set_death_router(
        [membership](NodeId n) { membership->kill_node(n); });
    shared_->store_service->set_revive_router(
        [membership](NodeId n) { membership->revive_node(n); });
    shared_->membership->start();
  }
  if (opts.ckpt_async) {
    // Async COW checkpoint pipeline: background encode/store jobs charge
    // their CPU stages on the snapshot node through the fluid share, so the
    // app slowdown during a drain is emergent, not scripted.
    sim::Kernel* kp = &k_;
    shared_->async_pipeline = std::make_shared<ckptasync::CkptAsyncPipeline>(
        [kp](NodeId node, double seconds, std::function<void()> done) {
          kp->node(node).cpu().submit(seconds, std::move(done));
        },
        [kp] { return kp->loop().now(); },
        opts.compress_bw > 0 ? opts.compress_bw
                             : sim::params::kCompressBw);
  }
  finish_init();
}

DmtcpControl::DmtcpControl(DmtcpControl& host, DmtcpOptions opts)
    : k_(host.k_),
      shared_(std::make_shared<DmtcpShared>()),
      registry_(host.registry_) {
  const std::string err = opts.validate();
  DSIM_CHECK_MSG(err.empty(), ("dmtcp_checkpoint: " + err).c_str());
  const std::string cluster_err = opts.validate_cluster(k_.num_nodes());
  DSIM_CHECK_MSG(cluster_err.empty(),
                 ("dmtcp_checkpoint: " + cluster_err).c_str());
  DSIM_CHECK_MSG(host.shared_->store_service != nullptr,
                 "tenant attach: the host computation has no chunk-store "
                 "service (--incremental --dedup-scope cluster)");
  DSIM_CHECK_MSG(opts.incremental && opts.cluster_wide_store(),
                 "tenant attach: the attaching computation must be "
                 "--incremental with --dedup-scope cluster");
  DSIM_CHECK_MSG(registry_->count(opts.coord_port) == 0,
                 "tenant attach: coord_port already used by another "
                 "computation on this kernel");
  shared_->opts = opts;
  shared_->owns_store = false;
  shared_->store_service = host.shared_->store_service;
  shared_->membership = host.shared_->membership;
  shared_->failover = host.shared_->failover;
  // Tenants share the host's tracer (one loop, one tracer): an attached
  // computation's requests land on the same trace timeline.
  shared_->tracer = host.shared_->tracer;
  if (!shared_->tracer &&
      (!opts.trace_out.empty() || !opts.metrics_out.empty() ||
       opts.health_enabled())) {
    shared_->tracer = std::make_shared<obs::Tracer>();
    k_.loop().set_tracer(shared_->tracer.get());
  }
  // A tenant's health engine is its own (rules and series scoped to this
  // computation's rounds) even though the tracer and service are shared.
  arm_health(shared_.get());
  shared_->repos[DmtcpShared::kSharedRepo] =
      shared_->store_service->repo_ptr();
  if (opts.ckpt_async) {
    sim::Kernel* kp = &k_;
    shared_->async_pipeline = std::make_shared<ckptasync::CkptAsyncPipeline>(
        [kp](NodeId node, double seconds, std::function<void()> done) {
          kp->node(node).cpu().submit(seconds, std::move(done));
        },
        [kp] { return kp->loop().now(); },
        opts.compress_bw > 0 ? opts.compress_bw : sim::params::kCompressBw);
  }
  finish_init();
}

void DmtcpControl::finish_init() {
  const DmtcpOptions& opts = shared_->opts;
  // Stamp log lines with the virtual clock and apply --log-level. Both are
  // process-global (one kernel per test/bench process), so re-applying per
  // computation is idempotent.
  g_log_loop = &k_.loop();
  set_log_clock(&log_now);
  if (!opts.log_level.empty()) {
    set_log_level(parse_log_level(opts.log_level, log_level()));
  }
  if (shared_->tracer && shared_->async_pipeline) {
    shared_->async_pipeline->set_tracer(shared_->tracer.get());
  }
  if (auto* svc = shared_->store_service.get()) {
    // Register this computation's tenant policy with the (possibly shared)
    // service: DRR weight, admission budget and retention overrides all key
    // on the tenant id the managers stamp into their requests. The fair-
    // queueing switch is service topology, so only the owner sets it.
    ckptstore::TenantConfig tc;
    tc.weight = opts.tenant_weight;
    tc.inflight_budget_bytes = opts.tenant_budget_bytes;
    tc.keep_generations = opts.keep_generations;
    tc.hot_generations = opts.hot_generations;
    svc->tenants().configure(opts.tenant_id, tc);
    if (shared_->owns_store) svc->set_fair_queueing(opts.fair_queueing);
  }
  (*registry_)[opts.coord_port] = shared_;
  auto reg = registry_;
  SharedResolver resolve =
      [reg](sim::Process& p) -> std::shared_ptr<DmtcpShared> {
    if (reg->size() == 1) return reg->begin()->second;
    const std::string port = p.env_or("DMTCP_COORD_PORT", "");
    const auto it =
        port.empty() ? reg->end()
                     : reg->find(static_cast<u16>(std::stoi(port)));
    DSIM_CHECK_MSG(it != reg->end(),
                   "dmtcp process carries no DMTCP_COORD_PORT matching a "
                   "computation on this kernel");
    return it->second;
  };
  // ProgramRegistry::add overwrites by name and every control registers the
  // same registry-backed factories, so re-registration is idempotent.
  k_.programs().add(make_coordinator_program(resolve));
  k_.programs().add(make_command_program(resolve));
  k_.programs().add(make_restart_program(resolve));
  k_.set_attach_factory([resolve](sim::Process& p) {
    return std::make_shared<Hijack>(p, resolve(p));
  });
  coord_pid_ = k_.spawn_process(opts.coord_node, "dmtcp_coordinator", {},
                                {{"DMTCP_COORD_PORT",
                                  std::to_string(opts.coord_port)}});
}

DmtcpControl::~DmtcpControl() { flush_observability(); }

obs::MetricsRegistry collect_metrics(const DmtcpShared& shared) {
  obs::MetricsRegistry reg;
  if (const auto* svc = shared.store_service.get()) {
    const ckptstore::ServiceStats& ss = svc->stats();
    reg.counter("store.lookup_requests", ss.lookup_requests);
    reg.counter("store.lookup_batches", ss.lookup_batches);
    reg.counter("store.store_requests", ss.store_requests);
    reg.counter("store.fetch_requests", ss.fetch_requests);
    reg.counter("store.drop_requests", ss.drop_requests);
    reg.counter("store.store_bytes", ss.store_bytes);
    reg.counter("store.admission_held_requests", ss.admission_held_requests);
    reg.counter("store.parked_requests", ss.parked_requests);
    reg.counter("store.replayed_requests", ss.replayed_requests);
    reg.histogram("store.lookup_wait", ss.lookup_wait);
    reg.histogram("store.admission_wait", ss.admission_wait);
    // Health levels (gauges survive delta_since as current values): the
    // backlog signals the SLO drain rules watch at round boundaries.
    reg.gauge("store.degraded_chunks",
              static_cast<double>(svc->placement().degraded_count()));
    reg.gauge("store.parked_now", static_cast<double>(svc->parked_now()));
    reg.gauge("store.quarantined_chunks",
              static_cast<double>(svc->repo_ptr()->quarantined_count()));
    for (const auto& [tenant, ts] : svc->tenants().all_stats()) {
      const std::string p = "tenant." + std::to_string(tenant) + ".";
      reg.counter(p + "lookups", ts.lookups);
      reg.counter(p + "stores", ts.stores);
      reg.counter(p + "fetches", ts.fetches);
      reg.counter(p + "admission_held", ts.admission_held);
      reg.histogram(p + "wait", ts.wait);
      reg.histogram(p + "admission_wait", ts.admission_wait);
    }
    const rpc::RpcStats& rs = svc->fabric().stats();
    reg.counter("rpc.calls", rs.calls);
    reg.counter("rpc.net_bytes", rs.net_bytes);
    reg.counter("rpc.failed_calls", rs.failed_calls);
    reg.gauge("rpc.net_wait_seconds", rs.net_wait_seconds);
    reg.gauge("rpc.endpoint_cpu_seconds", rs.endpoint_cpu_seconds);
  }
  if (const auto* tr = shared.tracer.get()) {
    reg.counter("trace.spans", static_cast<u64>(tr->spans().size()));
    reg.counter("trace.open_spans", tr->open_spans());
    reg.counter("trace.tiling_violations", tr->tiling_violations());
    for (const auto& [name, hist] : tr->stage_histograms()) {
      reg.histogram("stage." + name, hist);
    }
  }
  return reg;
}

std::string DmtcpControl::health_json() const {
  // Critical paths are recomputed here from the tracer's *final* span
  // set — spans that were still open at a round's close (async drains,
  // heals crossing the boundary) have closed by teardown, so this
  // document and the exported Chrome trace describe the identical span
  // population. That is what lets trace_report.py --critical-path re-run
  // the sweep over the trace and demand <=1% agreement. The per-round
  // CkptRound::critical_path (computed live at the round boundary) keeps
  // the round-close view for tests and benches; both partition the same
  // window exactly.
  const obs::Tracer* tr = shared_->tracer.get();
  // The exact phase marks the sweep used, so the Python cross-check can
  // attribute uncovered gaps identically (the restart split point is not
  // reconstructible from the stamps alone).
  const auto phases_json = [](const std::vector<obs::PhaseMark>& phases) {
    std::string out = "[";
    for (size_t i = 0; i < phases.size(); ++i) {
      if (i != 0) out += ",";
      out += "{\"name\":\"" + phases[i].name + "\"";
      out += ",\"begin_us\":" + fmt_us(phases[i].begin);
      out += ",\"end_us\":" + fmt_us(phases[i].end) + "}";
    }
    return out + "]";
  };
  std::string out = "{\n\"series\": ";
  out += shared_->health_series ? shared_->health_series->json() : "{}";
  out += ",\n\"critical_path\": {\"rounds\":[";
  bool first = true;
  for (size_t i = 0; i < shared_->stats.rounds.size(); ++i) {
    const CkptRound& r = shared_->stats.rounds[i];
    if (r.refilled == 0 || tr == nullptr) continue;
    const obs::CritPathReport rep =
        obs::critical_path(*tr, r.requested, r.refilled, round_phases(r));
    if (!first) out += ",";
    first = false;
    out += "{\"round\":" + std::to_string(i);
    out += ",\"ts_us\":{\"requested\":" + fmt_us(r.requested);
    out += ",\"suspended\":" + fmt_us(r.suspended);
    out += ",\"elected\":" + fmt_us(r.elected);
    out += ",\"drained\":" + fmt_us(r.drained);
    out += ",\"checkpointed\":" + fmt_us(r.checkpointed);
    out += ",\"refilled\":" + fmt_us(r.refilled);
    out += "},\"phases\":" + phases_json(round_phases(r));
    out += ",\"report\":" + rep.json() + "}";
  }
  out += "],\"restarts\":[";
  first = true;
  for (size_t i = 0; i < shared_->stats.restarts.size(); ++i) {
    const RestartRun& rr = shared_->stats.restarts[i];
    if (rr.refilled <= rr.script_started || tr == nullptr) continue;
    const obs::CritPathReport rep = obs::critical_path(
        *tr, rr.script_started, rr.refilled, restart_phases(rr));
    if (!first) out += ",";
    first = false;
    out += "{\"restart\":" + std::to_string(i);
    out += ",\"ts_us\":{\"script_started\":" + fmt_us(rr.script_started);
    out += ",\"refilled\":" + fmt_us(rr.refilled);
    out += "},\"phases\":" + phases_json(restart_phases(rr));
    out += ",\"report\":" + rep.json() + "}";
  }
  out += "]},\n\"slo\": ";
  out += shared_->slo_engine ? shared_->slo_engine->json() : "{}";
  out += "\n}\n";
  return out;
}

void DmtcpControl::flush_observability() {
  const DmtcpOptions& opts = shared_->opts;
  obs::Tracer* tr = shared_->tracer.get();
  if (tr == nullptr) return;
  if (!opts.trace_out.empty()) {
    if (!tr->write_chrome_json(opts.trace_out)) {
      LOG_WARN("trace export to %s failed", opts.trace_out.c_str());
    }
  }
  if (!opts.metrics_out.empty()) {
    if (!collect_metrics(*shared_).write(opts.metrics_out)) {
      LOG_WARN("metrics export to %s failed", opts.metrics_out.c_str());
    }
  }
  if (!opts.health_out.empty()) {
    std::ofstream f(opts.health_out);
    if (f) f << health_json();
    if (!f.good()) {
      LOG_WARN("health export to %s failed", opts.health_out.c_str());
    }
  }
}

Pid DmtcpControl::launch(NodeId node, const std::string& prog,
                         std::vector<std::string> argv,
                         std::map<std::string, std::string> extra_env) {
  std::map<std::string, std::string> env = std::move(extra_env);
  env["DMTCP_ENABLED"] = "1";
  env["DMTCP_COORD_NODE"] = std::to_string(shared_->opts.coord_node);
  env["DMTCP_COORD_PORT"] = std::to_string(shared_->opts.coord_port);
  return k_.spawn_process(node, prog, std::move(argv), std::move(env));
}

bool DmtcpControl::run_until(const std::function<bool()>& pred,
                             SimTime deadline) {
  while (!pred()) {
    if (k_.loop().now() >= deadline) return pred();
    const SimTime step =
        std::min<SimTime>(deadline, k_.loop().now() + timeconst::kMillisecond);
    const bool more = k_.loop().run_until(step);
    if (!more && !pred() && k_.loop().now() >= deadline) return false;
    if (!more && k_.loop().pending() == 0 && !pred()) {
      // No events left: the predicate can never become true.
      return pred();
    }
  }
  return true;
}

void DmtcpControl::run_for(SimTime dt) {
  k_.loop().run_until(k_.loop().now() + dt);
}

void DmtcpControl::request_checkpoint() {
  k_.spawn_process(shared_->opts.coord_node, "dmtcp_command", {"checkpoint"},
                   {{"DMTCP_COORD_NODE",
                     std::to_string(shared_->opts.coord_node)},
                    {"DMTCP_COORD_PORT",
                     std::to_string(shared_->opts.coord_port)}});
}

const CkptRound& DmtcpControl::checkpoint_now(SimTime deadline_extra) {
  const size_t round = shared_->stats.rounds.size();
  request_checkpoint();
  const SimTime deadline =
      k_.loop().now() + 600 * timeconst::kSecond + deadline_extra;
  const bool done = run_until(
      [&] {
        return shared_->stats.rounds.size() > round &&
               shared_->stats.rounds[round].refilled != 0;
      },
      deadline);
  DSIM_CHECK_MSG(done, "checkpoint round did not complete");
  return shared_->stats.rounds[round];
}

void DmtcpControl::set_store_shards(int new_shards) {
  auto* svc = shared_->store_service.get();
  DSIM_CHECK_MSG(svc != nullptr,
                 "set_store_shards needs the cluster-wide chunk-store "
                 "service (--dedup-scope cluster)");
  DSIM_CHECK_MSG(!shared_->ckpt_active,
                 "set_store_shards mid-round: rebalance runs between "
                 "rounds");
  if (new_shards == svc->num_shards()) return;
  // Endpoint policy mirrors the coordinator's: walk nodes from the current
  // first endpoint, skipping dead ones, until every shard has a live home.
  // Liveness is the ground-truth NodeHealth map — the same one rebalance()
  // asserts against — not membership's *detected* state: a node killed
  // inside the detection window must be routed around here, not crashed
  // into.
  const auto& health = *svc->health();
  const auto& old_eps = svc->endpoints();
  std::vector<NodeId> endpoints;
  endpoints.reserve(static_cast<size_t>(new_shards));
  for (int s = 0; s < new_shards; ++s) {
    if (s < static_cast<int>(old_eps.size()) &&
        health.up(old_eps[static_cast<size_t>(s)])) {
      endpoints.push_back(old_eps[static_cast<size_t>(s)]);
      continue;
    }
    NodeId n = (old_eps.front() + s) % k_.num_nodes();
    for (int tries = 0; tries < k_.num_nodes(); ++tries) {
      if (health.up(n)) break;
      n = (n + 1) % k_.num_nodes();
    }
    endpoints.push_back(n);
  }
  bool moved = false;
  svc->rebalance(new_shards, std::move(endpoints), [&moved] { moved = true; });
  const bool done =
      run_until([&moved] { return moved; },
                k_.loop().now() + 600 * timeconst::kSecond);
  DSIM_CHECK_MSG(done, "shard rebalance did not complete");
  shared_->opts.store_shards = new_shards;
}

void DmtcpControl::kill_computation() {
  const std::string port = std::to_string(shared_->opts.coord_port);
  for (Pid pid : k_.live_pids()) {
    sim::Process* p = k_.find_process(pid);
    if (p == nullptr || p->env_or("DMTCP_ENABLED", "") != "1") continue;
    // With several computations sharing the kernel, the kill is scoped to
    // this computation: launch() tags every process with its coordinator
    // port and children inherit the environment.
    if (registry_->size() > 1 && p->env_or("DMTCP_COORD_PORT", "") != port) {
      continue;
    }
    k_.kill_process(pid);
  }
  // Let EOFs and handler teardown propagate.
  run_for(10 * timeconst::kMillisecond);
}

RestartPlan DmtcpControl::read_restart_plan() const {
  const std::string path =
      shared_->opts.ckpt_dir + "/dmtcp_restart_script.sh";
  auto inode = k_.fs_for(shared_->opts.coord_node, path).lookup(path);
  DSIM_CHECK_MSG(inode != nullptr, "no restart script generated yet");
  auto bytes = inode->data.materialize(0, inode->data.size());
  return parse_restart_script(
      std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()));
}

const RestartRun& DmtcpControl::restart(std::map<NodeId, NodeId> host_map) {
  RestartPlan plan = read_restart_plan();

  // Pre-flight under the chunk-store service: every chunk the plan's
  // manifests reference must have a surviving replica. With
  // --chunk-replicas=1 a node failure makes its chunks unrecoverable —
  // report the forced re-store instead of restarting into missing data;
  // with R > 1 the surviving replicas carry the restart. Scrub-quarantined
  // chunks (rotten containers awaiting forward re-store) count as
  // unavailable the same way: restarting into a chunk the scrubber
  // condemned would fail its CRC check anyway.
  if (const auto* svc = shared_->store_service.get();
      svc != nullptr && (svc->placement().any_dead() ||
                         svc->repo_ptr()->quarantined_count() > 0)) {
    // Every node alive (and no quarantine) means nothing can be lost — the
    // O(chunk-refs) manifest walk below only runs after an actual failure.
    // One set across every manifest: a shared chunk referenced by all ranks
    // counts as one lost chunk, not once per referencing image.
    std::set<ckptstore::ChunkKey> seen;
    u64 lost = 0;
    for (const auto& host : plan.hosts) {
      for (const auto& img : host.images) {
        auto inode = k_.fs_for(host.host, img).lookup(img);
        if (!inode) continue;
        auto bytes = inode->data.materialize(0, inode->data.size());
        if (!ckptstore::Manifest::is_manifest(bytes)) continue;
        for (const auto& key :
             ckptstore::Manifest::decode(bytes).all_keys()) {
          if (seen.insert(key).second && !svc->placement().available(key)) {
            ++lost;
          }
        }
      }
    }
    if (lost > 0) {
      LOG_INFO(
          "restart pre-flight: %llu chunks have no surviving replica; "
          "full re-store required",
          static_cast<unsigned long long>(lost));
      RestartRun failed;
      failed.script_started = k_.loop().now();
      failed.refilled = k_.loop().now();
      failed.needs_restore = true;
      failed.lost_chunks = lost;
      shared_->stats.restarts.push_back(failed);
      return shared_->stats.restarts.back();
    }
  }

  RestartRun run;
  run.script_started = k_.loop().now();
  shared_->stats.restarts.push_back(run);
  const size_t idx = shared_->stats.restarts.size() - 1;

  for (const auto& host : plan.hosts) {
    NodeId target = host.host;
    if (auto it = host_map.find(host.host); it != host_map.end()) {
      target = it->second;
    }
    // Migration with node-local images: stage the image files onto the
    // target node (the paper's cluster-to-laptop use case stages images
    // out-of-band; the SAN/NFS configuration shares them naturally).
    if (target != host.host && !shared_->shared_ckpt_dir()) {
      for (const auto& img : host.images) {
        auto src = k_.node(host.host).fs().lookup(img);
        DSIM_CHECK(src != nullptr);
        auto dst = k_.node(target).fs().create(img);
        *dst = *src;
      }
      // Incremental images are manifests: stage the source node's chunk
      // repository alongside them, as the images themselves are staged.
      // The migrated processes' generations then leave the source store —
      // otherwise the cluster-wide live-bytes aggregation keeps counting
      // the stranded copies forever (chunks other owners still reference
      // survive the drop, refcounted as usual).
      if (shared_->opts.incremental) {
        if (auto it = shared_->repos.find(host.host);
            it != shared_->repos.end()) {
          shared_->repo_for(target).absorb(*it->second);
          u64 reclaimed = 0;
          for (const auto& img : host.images) {
            auto inode = k_.node(host.host).fs().lookup(img);
            auto bytes = inode->data.materialize(0, inode->data.size());
            if (ckptstore::Manifest::is_manifest(bytes)) {
              reclaimed += it->second->drop_owner(
                  ckptstore::Manifest::decode(bytes).owner);
            }
          }
          // Trim the reclaimed chunk bytes from the source device, as the
          // GC path does — reclaim and trim stay paired everywhere.
          if (reclaimed > 0) {
            k_.discard_storage(host.host, host.images.front(), reclaimed);
          }
        }
      }
    }
    std::vector<std::string> argv{
        "--coord-node", std::to_string(plan.coord_node),
        "--coord-port", std::to_string(plan.coord_port),
        "--expected",   std::to_string(plan.total_procs),
        "--hosts",      std::to_string(plan.hosts.size())};
    for (const auto& img : host.images) argv.push_back(img);
    // The port tag lets the restart process (and the user processes it
    // forks, which inherit its environment) resolve to this computation
    // when several share the kernel.
    k_.spawn_process(target, "dmtcp_restart", std::move(argv),
                     {{"DMTCP_COORD_NODE", std::to_string(plan.coord_node)},
                      {"DMTCP_COORD_PORT", std::to_string(plan.coord_port)}});
  }

  const bool done = run_until(
      [&] { return shared_->stats.restarts[idx].refilled != 0; },
      k_.loop().now() + 600 * timeconst::kSecond);
  DSIM_CHECK_MSG(done, "restart did not complete");
  return shared_->stats.restarts[idx];
}

}  // namespace dsim::core
