// Instrumentation shared between the DMTCP runtime and the experimenter.
//
// The coordinator stamps barrier-release times; managers report image sizes;
// restart processes report stage durations. Benches read this after the
// simulation settles. (This mirrors the paper's methodology: stage times are
// "the durations between the global barriers", §5.3.)
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ckptstore/repository.h"
#include "ckptstore/service.h"
#include "cluster/failover.h"
#include "cluster/membership.h"
#include "core/options.h"
#include "obs/critpath.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "util/types.h"

namespace dsim::ckptasync {
class CkptAsyncPipeline;
}  // namespace dsim::ckptasync

namespace dsim::sim {
class Process;
}  // namespace dsim::sim

namespace dsim::core {

/// One checkpoint round, timestamped by the coordinator.
struct CkptRound {
  SimTime requested = 0;
  SimTime suspended = 0;
  SimTime elected = 0;
  SimTime drained = 0;
  SimTime checkpointed = 0;
  SimTime refilled = 0;
  int procs = 0;
  u64 total_uncompressed = 0;  // aggregate cluster-wide image bytes
  u64 total_compressed = 0;
  /// Forked mode: when the last background writer finished (image durable).
  SimTime background_done = 0;

  // Incremental mode (the ckptstore subsystem): per-round repository view.
  u64 store_new_bytes = 0;   // chunk+manifest bytes actually written
  u64 store_live_bytes = 0;  // resident chunk bytes after this round's GC
  u64 store_reclaimed_bytes = 0;  // cumulative bytes GC has freed
  /// Logical image bytes this round answered by already-resident chunks
  /// (earlier generations or other processes sharing the store).
  u64 store_dup_bytes = 0;
  /// Chunks referenced by more than one process after this round — the
  /// shared mapped libraries a cluster-wide store stores exactly once.
  u64 store_shared_chunks = 0;
  u64 total_chunks = 0;
  u64 new_chunks = 0;
  double dedup_ratio = 0;  // logical bytes per stored byte

  // Chunk-store service (cluster scope): this round's view of the request
  // queue. Lookups contend across ranks, so the per-lookup average wait is
  // the Fig.-5b-style contention metric bench_service sweeps.
  u64 store_lookups = 0;           // dedup lookups served this round
  double lookup_wait_seconds = 0;  // cumulative submit -> served wait
  double max_lookup_wait_seconds = 0;
  /// Full per-key lookup-wait distribution for the round (bucket delta of
  /// the service histogram): the scalars above are its count()/sum(), kept
  /// for the emitted bench JSON; quantiles (p50/p90/p99) come from here.
  obs::Histogram lookup_wait_hist;
  /// Admission control (multi-tenant): stores this round that exceeded the
  /// tenant's in-flight byte budget and were held at the tenant edge, and
  /// the cumulative held -> dispatched wait they accrued.
  u64 store_admission_held = 0;
  double store_admission_wait_seconds = 0;

  // RPC-fabric view of the round: service requests traverse the simulated
  // network (caller NIC -> endpoint message CPU -> return hop), so the
  // lookup path has real network bytes and in-flight time.
  u64 store_rpcs = 0;
  u64 store_rpc_net_bytes = 0;
  double store_rpc_net_wait_seconds = 0;

  // Background store daemons, as observed at this round's close. Scrub and
  // heal passes complete asynchronously, so a pass kicked at round N
  // surfaces in round N+1's delta.
  u64 scrubbed_chunks = 0;
  u64 scrub_corrupt_chunks = 0;
  u64 scrub_missing_chunks = 0;
  u64 scrub_quarantined_chunks = 0;
  u64 rereplicated_chunks = 0;
  // Erasure-mode daemons (src/ckptstore/erasure.*), same delayed-delta
  // convention: fragments rebuilt onto fresh homes by the heal daemon,
  // corrupt fragments the scrubber repaired in place, and chunks the
  // demotion daemon re-striped to the cold (k,m) profile.
  u64 rebuilt_fragments = 0;
  u64 scrub_repaired_fragments = 0;
  u64 demoted_chunks = 0;
  u64 demoted_bytes = 0;

  // Cluster membership & shard failover (src/cluster/), this round's view:
  // shards re-homed off dead endpoints, requests that parked on a dead
  // endpoint and replayed after the re-home (the caller-visible latency
  // instead of an error), and consistent-hash rebalance movement when the
  // shard count changed since the previous round.
  u64 failover_rehomed_shards = 0;
  u64 failover_replayed_requests = 0;
  /// Shards moved *back* to their rendezvous owner at this round's start
  /// after the owner endpoint was revived (stickiness fix).
  u64 failover_rehomed_back_shards = 0;
  u64 rebalance_moved_keys = 0;
  u64 rebalance_moved_bytes = 0;

  // Compressed-chunk accounting over this round's *new* chunks.
  u64 store_new_chunk_bytes = 0;  // container (post-codec) bytes stored
  u64 store_raw_new_bytes = 0;    // logical (pre-codec) bytes chunked
  double compress_ratio = 0;      // stored/raw; 1.0 when nothing compresses
  /// Fraction of logical image bytes NOT answered by resident chunks —
  /// the workload's dirty-locality signal (generation 0 reads 1.0).
  double dirty_page_fraction = 0;

  // Async COW pipeline (--ckpt-async), this round's view.
  u64 cow_pages_copied = 0;       // snapshot pages the app dirtied mid-drain
  double cow_copy_seconds = 0;    // background CPU those copies charged
  u64 async_queued_bytes = 0;     // logical bytes handed to the pipeline
  double async_drain_seconds = 0;      // max job drain latency this round
  double async_blocked_seconds = 0;    // backpressure=block wait, summed
  u64 async_skipped_procs = 0;         // backpressure=skip rounds skipped

  /// Critical-path attribution for the round: seconds per named component.
  /// The "barrier.*" entries decompose total_seconds() exactly (the
  /// coordinator asserts they sum to it); with tracing enabled, "queue.*"
  /// entries additionally attribute the round's queue-wait to stages
  /// (per-round deltas of the tracer's stage totals).
  std::map<std::string, double> stage_breakdown;

  /// Critical-path blame report for the pause window [requested,
  /// refilled): the backward sweep over the tracer's spans (obs/critpath)
  /// partitions the window exactly, so the report's attributed time
  /// equals the stage_breakdown barrier total — the coordinator asserts
  /// both identities every round. Empty when tracing is off.
  obs::CritPathReport critical_path;

  double avg_lookup_wait_seconds() const {
    return lookup_wait_hist.count() != 0 ? lookup_wait_hist.mean()
           : store_lookups == 0
               ? 0.0
               : lookup_wait_seconds / static_cast<double>(store_lookups);
  }

  double total_seconds() const { return to_seconds(refilled - requested); }
  double suspend_seconds() const { return to_seconds(suspended - requested); }
  double elect_seconds() const { return to_seconds(elected - suspended); }
  double drain_seconds() const { return to_seconds(drained - elected); }
  double write_seconds() const { return to_seconds(checkpointed - drained); }
  double refill_seconds() const { return to_seconds(refilled - checkpointed); }
};

/// One restart, assembled from restart-process stage notes + coordinator
/// barrier stamps.
struct RestartRun {
  SimTime script_started = 0;
  SimTime refilled = 0;      // == resume point (§4.4 steps 6-7)
  int procs = 0;
  // Per-host stage durations, averaged across hosts (Table 1b methodology).
  double files_ptys_seconds = 0;
  double reconnect_seconds = 0;
  double memory_threads_seconds = 0;
  int hosts_reported = 0;

  double total_seconds() const { return to_seconds(refilled - script_started); }
  double refill_seconds = 0;  // duration between restart B5 and B6

  // Chunk-store service placement view: set by the pre-flight availability
  // check. `needs_restore` means some referenced chunk has no surviving
  // replica (a node died under --chunk-replicas=1) — the computation must
  // be re-run and re-stored, nothing was restarted.
  bool needs_restore = false;
  u64 lost_chunks = 0;  // referenced chunks with every replica gone

  /// Critical-path blame for [script_started, refilled): same sweep as a
  /// checkpoint round, with restart-phase marks (load up to the B5
  /// barrier, refill after it) absorbing uninstrumented time. Empty when
  /// tracing is off.
  obs::CritPathReport critical_path;
};

struct DmtcpStats {
  std::vector<CkptRound> rounds;
  std::vector<RestartRun> restarts;
  const CkptRound& last_round() const { return rounds.back(); }
  const RestartRun& last_restart() const { return restarts.back(); }
};

/// State shared by the control handle, coordinator and hijacks of one
/// computation. Lives on the experimenter's side of the fence.
struct DmtcpShared {
  DmtcpOptions opts;
  DmtcpStats stats;
  /// Content-addressed chunk repositories backing ckpt_dir (incremental
  /// mode only). A shared ckpt_dir (/shared/...) is one stdchk-style store
  /// service for the whole computation, as is --dedup-scope cluster (a
  /// computation-wide dedup index over node-local disks: a chunk another
  /// node already stored is referenced, not rewritten). Plain node-local
  /// directories get one repository per node — without the cluster index,
  /// dedup cannot span physically separate disks.
  /// Keyed by node id, or kSharedRepo for the shared store.
  static constexpr int kSharedRepo = -1;
  std::map<int, std::shared_ptr<ckptstore::Repository>> repos;
  bool shared_ckpt_dir() const {
    return opts.ckpt_dir.rfind("/shared", 0) == 0;
  }
  bool cluster_wide_store() const { return opts.cluster_wide_store(); }
  ckptstore::Repository& repo_for(NodeId node) {
    auto& r = repos[cluster_wide_store() ? kSharedRepo : node];
    if (!r) r = std::make_shared<ckptstore::Repository>();
    return *r;
  }
  /// The remote chunk-store service (incremental + cluster scope only):
  /// owns the shared repository (repos[kSharedRepo] aliases it), queues
  /// Lookup/Store/Fetch/Drop requests, and tracks chunk placement.
  /// Created by DmtcpControl; its endpoint is set by the coordinator.
  std::shared_ptr<ckptstore::ChunkStoreService> store_service;
  /// False when this computation attached to another computation's store
  /// service (multi-tenant serving): the owning computation's coordinator
  /// assigns endpoints, snapshots service/RPC stat deltas and kicks the
  /// background daemons; an attached tenant's coordinator must not, or
  /// deltas would be double-consumed and daemons double-kicked.
  bool owns_store = true;
  /// Cluster membership (heartbeat failure detection from the
  /// coordinator's node) and the shard-failover manager consuming its
  /// death events. Created alongside the store service; the membership's
  /// fabric shares the service's NodeHealth map, so a killed node fails
  /// heartbeats and store RPCs identically. Restart consults membership
  /// before choosing a chunk's holder.
  std::shared_ptr<cluster::Membership> membership;
  std::shared_ptr<cluster::FailoverManager> failover;
  /// Async COW checkpoint pipeline (--ckpt-async): snapshot trackers +
  /// background encode/store jobs. Created by DmtcpControl.
  std::shared_ptr<ckptasync::CkptAsyncPipeline> async_pipeline;
  /// Request tracer (--trace-out / --metrics-out): created by the owning
  /// computation's DmtcpControl and installed on the kernel's event loop;
  /// attached tenants share the host's tracer. Null when tracing is off —
  /// every instrumentation site is a null check, so disabled runs are
  /// simulated-time-identical to a build without the subsystem.
  std::shared_ptr<obs::Tracer> tracer;
  /// Round-health engine (--health-out / --slo): the per-round
  /// metric-delta time-series the coordinator feeds at every round
  /// boundary, and the SLO rule engine evaluated over it. Created by
  /// DmtcpControl when either flag is set; null otherwise. Per
  /// computation — an attached tenant evaluating its own rules keeps its
  /// own series (registry deltas are taken against the computation's own
  /// previous snapshot, so sharing the host's service is safe).
  std::shared_ptr<obs::RoundSeries> health_series;
  std::shared_ptr<obs::SloEngine> slo_engine;
  int ckpt_generation = 0;  // bumped per completed checkpoint
  /// Virtual pids in use across the computation (conflict detection, §4.5).
  std::set<Pid> active_vpids;
  /// Virtual pid -> current real pid (pid virtualization, §4.5). Entries
  /// persist across exits (real pids are never reused within a run) and are
  /// re-pointed on restart.
  std::map<Pid, Pid> vpid_map;
  /// True while a checkpoint round is in flight (new spawns are held at the
  /// wrapper until it completes, keeping the barrier membership stable).
  bool ckpt_active = false;
};

/// The round's barrier phases as critical-path phase marks: adjacent,
/// disjoint, covering [requested, refilled) exactly. Shared by the
/// coordinator's per-round attribution and flush_observability's
/// whole-trace recomputation (and mirrored by trace_report.py, which
/// rebuilds them from the health JSON's round timestamps).
inline std::vector<obs::PhaseMark> round_phases(const CkptRound& r) {
  return {{"barrier.suspend", r.requested, r.suspended},
          {"barrier.elect", r.suspended, r.elected},
          {"barrier.drain", r.elected, r.drained},
          {"barrier.write", r.drained, r.checkpointed},
          {"barrier.refill", r.checkpointed, r.refilled}};
}

/// Restart-window phase marks: load (script start to the B5 barrier,
/// reconstructed from refill_seconds) and refill after it.
inline std::vector<obs::PhaseMark> restart_phases(const RestartRun& rr) {
  SimTime b5 = rr.refilled - from_seconds(rr.refill_seconds);
  if (b5 < rr.script_started) b5 = rr.script_started;
  if (b5 > rr.refilled) b5 = rr.refilled;
  return {{"restart.load", rr.script_started, b5},
          {"restart.refill", b5, rr.refilled}};
}

/// Snapshot the computation's observable state into one registry:
/// service/tenant/RPC counters and histograms plus the tracer's stage
/// histograms — the same document --metrics-out exports at teardown. The
/// coordinator calls it at every round boundary and diffs consecutive
/// snapshots (MetricsRegistry::delta_since) into the health time-series.
/// Defined in launch.cc.
obs::MetricsRegistry collect_metrics(const DmtcpShared& shared);

/// Resolves which computation's shared state a dmtcp_* process belongs to.
/// With several computations multiplexed on one kernel (multi-tenant serving
/// against a shared chunk store), resolution keys on the process's
/// DMTCP_COORD_PORT environment; with a single computation it is constant.
using SharedResolver =
    std::function<std::shared_ptr<DmtcpShared>(sim::Process&)>;

}  // namespace dsim::core
