// dmtcp_restart_script.sh generation and parsing (§3).
//
// "Additionally, a shell script, dmtcp_restart_script.sh, is created
// containing all the commands needed to restart the distributed
// computation. This script consists of many calls to dmtcp_restart, one for
// each node." The script is a real text artifact written into the simulated
// filesystem; DmtcpControl::restart() parses it back, which keeps the
// generate/parse pair honest (round-trip tested).
#pragma once

#include <string>
#include <vector>

#include "util/types.h"

namespace dsim::core {

struct RestartPlan {
  NodeId coord_node = 0;
  u16 coord_port = 7779;
  int total_procs = 0;
  struct HostLine {
    NodeId host = 0;
    std::vector<std::string> images;
  };
  std::vector<HostLine> hosts;
};

std::string format_restart_script(const RestartPlan& plan);
RestartPlan parse_restart_script(const std::string& text);

}  // namespace dsim::core
