// Coordinator wire protocol.
//
// Managers, restart processes and dmtcp_command talk to the checkpoint
// coordinator over ordinary (simulated) TCP with length-prefixed messages.
// The coordinator implements exactly the primitives the paper needs: a
// cluster-wide barrier (§4.3 — "the only global communication primitive
// used at checkpoint time is a barrier") and, at restart time, a discovery
// service for re-locating migrated peers (§4.4 step 2).
#pragma once

#include <string>
#include <vector>

#include "core/ids.h"
#include "sim/socket.h"
#include "util/serialize.h"
#include "util/types.h"

namespace dsim::core {

enum class MsgType : u8 {
  kRegister = 1,        // manager -> coord: join computation (s=hostname, a=vpid, b=restarting, ua=node)
  kCkptRequest = 2,     // coord -> manager: begin checkpoint (a=round)
  kBarrierWait = 3,     // manager -> coord: waiting at barrier `s` (a=expected override, 0=all clients)
  kBarrierRelease = 4,  // coord -> manager: barrier `s` released
  kCommand = 5,         // dmtcp_command -> coord: s in {"checkpoint","status","kill","interval"} (a=arg)
  kCommandReply = 6,    // coord -> dmtcp_command: s=reply text, a=numeric
  kAdvertise = 7,       // restart -> coord: conn listener at (a=node, b=port)
  kQueryAddr = 8,       // restart -> coord: where is conn? (blocks until advertised)
  kAddrInfo = 9,        // coord -> restart: conn is at (a=node, b=port)
  kVpidCheck = 10,      // hijack -> coord: does vpid a collide? reply kVpidReply b=1 collision
  kVpidReply = 11,
  kVpidRegister = 12,   // hijack -> coord: vpid a now in use
  kImageStats = 13,     // manager -> coord: ua=uncompressed, blob=8B compressed (round a)
  kStageNote = 14,      // restart -> coord: s=stage name, ua=duration ns (restart breakdown)
};

/// kImageStats incremental-blob flag word (7th u64, appended after
/// [submitted][total_chunks][new_chunks][dup_bytes][stored_new][raw_new]).
/// Older 4-u64 blobs simply omit the extension; the coordinator parses
/// behind remaining() checks.
inline constexpr u64 kImageFlagAsync = 1;    // drained via --ckpt-async
inline constexpr u64 kImageFlagSkipped = 2;  // round skipped (backpressure)

struct Msg {
  MsgType type = MsgType::kRegister;
  UniquePid upid{};
  i32 a = 0;
  i32 b = 0;
  u64 ua = 0;
  std::string s;
  sim::ConnId conn{};
  std::vector<std::byte> blob;

  std::vector<std::byte> encode() const {
    ByteWriter w;
    w.put_u8(static_cast<u8>(type));
    upid.serialize(w);
    w.put_i32(a);
    w.put_i32(b);
    w.put_u64(ua);
    w.put_string(s);
    conn.serialize(w);
    w.put_blob(blob);
    return w.take();
  }
  static Msg decode(std::span<const std::byte> bytes) {
    ByteReader r(bytes);
    Msg m;
    m.type = static_cast<MsgType>(r.get_u8());
    m.upid = UniquePid::deserialize(r);
    m.a = r.get_i32();
    m.b = r.get_i32();
    m.ua = r.get_u64();
    m.s = r.get_string();
    m.conn = sim::ConnId::deserialize(r);
    m.blob = r.get_blob();
    return m;
  }
};

/// Barrier names for the checkpoint rounds (§4.3, Fig. 1) and restart
/// (§4.4, Fig. 2).
namespace barrier {
inline constexpr const char* kSuspended = "suspended";
inline constexpr const char* kElected = "elected";
inline constexpr const char* kDrained = "drained";
inline constexpr const char* kCheckpointed = "checkpointed";
inline constexpr const char* kRefilled = "refilled";
inline constexpr const char* kRestartConns = "restart:conns";
}  // namespace barrier

}  // namespace dsim::core
