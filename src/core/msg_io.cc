#include "core/msg_io.h"

#include "util/assertx.h"

namespace dsim::core {

Task<void> send_msg(sim::Kernel& k, sim::Thread& t, sim::TcpVNode& s,
                    const Msg& m) {
  auto payload = m.encode();
  ByteWriter w;
  w.put_u32(static_cast<u32>(payload.size()));
  w.put_bytes(payload);
  auto frame = w.take();
  u64 sent = 0;
  while (sent < frame.size()) {
    const u64 n = co_await k.sock_send(
        t, s, std::span<const std::byte>(frame).subspan(sent));
    if (n == 0) co_return;  // peer gone; caller notices on next recv
    sent += n;
  }
}

Task<std::optional<Msg>> recv_msg(sim::Kernel& k, sim::Thread& t,
                                  sim::TcpVNode& s) {
  auto read_full = [&](std::span<std::byte> out) -> Task<bool> {
    u64 got = 0;
    while (got < out.size()) {
      const u64 n = co_await k.sock_recv(t, s, out.subspan(got));
      if (n == 0) co_return false;
      got += n;
    }
    co_return true;
  };
  std::array<std::byte, 4> lenbuf;
  if (!co_await read_full(lenbuf)) co_return std::nullopt;
  ByteReader lr(lenbuf);
  const u32 len = lr.get_u32();
  std::vector<std::byte> payload(len);
  if (!co_await read_full(payload)) co_return std::nullopt;
  co_return Msg::decode(payload);
}

}  // namespace dsim::core
