// DMTCP identity types.
#pragma once

#include <string>

#include "util/serialize.h"
#include "util/types.h"

namespace dsim::core {

/// Globally unique process identity: (hostid, pid, creation time). Stable
/// across checkpoint/restart; used in image filenames and registration.
struct UniquePid {
  u64 hostid = 0;
  Pid pid = 0;     // virtual pid
  u64 time = 0;    // creation timestamp (ns)

  bool operator==(const UniquePid&) const = default;
  bool operator<(const UniquePid& o) const {
    if (hostid != o.hostid) return hostid < o.hostid;
    if (pid != o.pid) return pid < o.pid;
    return time < o.time;
  }
  bool valid() const { return hostid != 0 || pid != 0 || time != 0; }

  std::string str() const {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%llx-%d-%llx",
                  static_cast<unsigned long long>(hostid), pid,
                  static_cast<unsigned long long>(time));
    return buf;
  }

  void serialize(ByteWriter& w) const {
    w.put_u64(hostid);
    w.put_i32(pid);
    w.put_u64(time);
  }
  static UniquePid deserialize(ByteReader& r) {
    UniquePid u;
    u.hostid = r.get_u64();
    u.pid = r.get_i32();
    u.time = r.get_u64();
    return u;
  }
};

/// Deterministic host id for a simulated node.
inline u64 hostid_of(NodeId node) {
  return 0xd317c0ffee000000ULL | static_cast<u64>(node);
}

}  // namespace dsim::core
