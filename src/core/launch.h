// DmtcpControl: the experimenter's handle on a DMTCP-managed computation.
//
// Owns the shared state, registers the dmtcp_* programs with the kernel,
// installs the hijack attach hook, and spawns the coordinator (the paper's
// "the first call to dmtcp_checkpoint will automatically spawn the
// checkpoint coordinator", §3). Benches and tests drive everything through
// this class: launch under checkpoint control, request checkpoints, kill
// the computation, and restart from the generated script — optionally
// migrating hosts.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "core/restart_script.h"
#include "core/stats.h"
#include "sim/kernel.h"

namespace dsim::core {

class DmtcpControl {
 public:
  DmtcpControl(sim::Kernel& kernel, DmtcpOptions opts);

  /// Attach a second computation to `host`'s chunk-store service
  /// (multi-tenant serving): this computation gets its own coordinator,
  /// barrier membership, checkpoint rounds and restart plumbing, but its
  /// managers issue Store/Lookup/Fetch/Drop against the host's service,
  /// scoped to opts.tenant_id. Requires incremental + cluster store on both
  /// sides and a coord_port distinct from every computation already sharing
  /// the kernel (the port is how spawned dmtcp_* processes resolve their
  /// computation). Service topology — shards, replicas, erasure profile,
  /// fair queueing — comes from the owning computation; this tenant's
  /// --tenant-weight/--tenant-budget-mb/--keep-generations register its
  /// per-tenant policy with the shared service.
  DmtcpControl(DmtcpControl& host, DmtcpOptions opts);

  /// Flushes --trace-out / --metrics-out if armed (also runs at
  /// destruction, so a bench that just falls off the end still exports).
  ~DmtcpControl();

  /// Export the observability artifacts now: the Chrome trace_event JSON
  /// to opts.trace_out, the metrics registry (service/tenant/RPC/tracer
  /// counters, gauges and histograms) to opts.metrics_out, and the
  /// round-health document (time-series + critical paths + SLO summary)
  /// to opts.health_out. No-op when no flag is set. Idempotent — later
  /// calls overwrite with the then-current totals.
  void flush_observability();

  /// The --health-out document as a string: {"series":...,
  /// "critical_path":{"rounds":[...],"restarts":[...]},"slo":...}.
  /// Critical paths are recomputed from the tracer's current span set so
  /// the document matches the exported trace span-for-span (the Python
  /// cross-check depends on this).
  std::string health_json() const;

  /// dmtcp_checkpoint <program> — launch under checkpoint control.
  Pid launch(NodeId node, const std::string& prog,
             std::vector<std::string> argv = {},
             std::map<std::string, std::string> extra_env = {});

  /// Drive the simulation until `pred()` or until `deadline` virtual time.
  /// Returns true if the predicate was met.
  bool run_until(const std::function<bool()>& pred, SimTime deadline);
  /// Drive the simulation for `dt` of virtual time.
  void run_for(SimTime dt);

  /// dmtcp_command --checkpoint: trigger a checkpoint and wait for the
  /// round to complete. Returns the round's stats.
  const CkptRound& checkpoint_now(SimTime deadline_extra = 0);
  /// Fire-and-forget checkpoint request.
  void request_checkpoint();

  /// Kill every process running under DMTCP (cluster-wide failure). The
  /// coordinator survives — as in reality, it is outside the computation.
  void kill_computation();

  /// Change the chunk-store shard count between rounds. Runs the
  /// consistent-hash rebalance — only the keys whose rendezvous winner
  /// changed migrate, in batched metadata RPCs through the normal shard
  /// queues — and blocks until every moved key has landed. Endpoints of
  /// surviving shards stay put; new shards land on the next live nodes
  /// from the current base (membership-checked).
  void set_store_shards(int new_shards);

  /// Parse dmtcp_restart_script.sh and run it. `host_map` relocates
  /// original hosts to new nodes (migration / restart-on-a-laptop, §1 use
  /// case 6). Returns the restart's stats.
  const RestartRun& restart(std::map<NodeId, NodeId> host_map = {});
  /// The parsed restart plan from the last generated script.
  RestartPlan read_restart_plan() const;

  DmtcpShared& shared() { return *shared_; }
  std::shared_ptr<DmtcpShared> shared_ptr() { return shared_; }
  const DmtcpStats& stats() const { return shared_->stats; }
  sim::Kernel& kernel() { return k_; }
  Pid coordinator_pid() const { return coord_pid_; }

 private:
  /// Computations multiplexed on this kernel, keyed by coordinator port —
  /// the spawn-time environment tag dmtcp_* processes resolve through.
  using SharedRegistry = std::map<u16, std::shared_ptr<DmtcpShared>>;

  /// Common ctor tail: tenant registration, program (re-)registration with
  /// the registry-based resolver, coordinator spawn.
  void finish_init();

  sim::Kernel& k_;
  std::shared_ptr<DmtcpShared> shared_;
  std::shared_ptr<SharedRegistry> registry_;
  Pid coord_pid_ = kNoPid;
};

}  // namespace dsim::core
