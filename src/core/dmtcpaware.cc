#include "core/dmtcpaware.h"

#include "core/hijack.h"
#include "core/msg_io.h"

namespace dsim::core {
namespace {
Hijack* hijack_of(sim::ProcessCtx& ctx) {
  return dynamic_cast<Hijack*>(ctx.process().interposer());
}
}  // namespace

bool dmtcp_is_enabled(sim::ProcessCtx& ctx) {
  return hijack_of(ctx) != nullptr;
}

sim::Task<bool> dmtcp_request_checkpoint(sim::ProcessCtx& ctx) {
  Hijack* h = hijack_of(ctx);
  if (!h) co_return false;
  // Equivalent of dmtcp_command --checkpoint from inside the application:
  // a transient coordinator connection, kept out of the connection table.
  auto& k = ctx.kernel();
  const Fd fd = co_await ctx.socket_raw(false);
  ctx.fd_get(fd)->dmtcp_internal = true;
  const sim::SockAddr coord{
      static_cast<NodeId>(std::stoi(ctx.process().env_or("DMTCP_COORD_NODE",
                                                         "0"))),
      static_cast<u16>(
          std::stoi(ctx.process().env_or("DMTCP_COORD_PORT", "7779")))};
  while (!co_await ctx.connect_raw(fd, coord)) {
    co_await ctx.sleep(1 * timeconst::kMillisecond);
  }
  auto of = ctx.fd_get(fd);
  auto* sock = static_cast<sim::TcpVNode*>(of->vnode.get());
  Msg m;
  m.type = MsgType::kCommand;
  m.s = "checkpoint";
  m.a = 0;  // do not wait inside the app: the manager suspends this thread
  co_await send_msg(k, ctx.thread(), *sock, m);
  auto reply = co_await recv_msg(k, ctx.thread(), *sock);
  co_await ctx.close_raw(fd);
  co_return reply.has_value();
}

void dmtcp_delay_checkpoints_lock(sim::ProcessCtx& ctx) {
  if (Hijack* h = hijack_of(ctx)) h->delay_lock();
}

void dmtcp_delay_checkpoints_unlock(sim::ProcessCtx& ctx) {
  if (Hijack* h = hijack_of(ctx)) h->delay_unlock();
}

DmtcpStatus dmtcp_status(sim::ProcessCtx& ctx) {
  DmtcpStatus st;
  if (Hijack* h = hijack_of(ctx)) {
    st.enabled = true;
    st.checkpoint_generation = h->completed_generations();
    st.virtual_pid = h->vpid();
  }
  return st;
}

void dmtcp_install_hooks(sim::ProcessCtx& ctx, std::function<void()> pre_ckpt,
                         std::function<void()> post_ckpt,
                         std::function<void()> post_restart) {
  if (Hijack* h = hijack_of(ctx)) {
    h->set_hooks(std::move(pre_ckpt), std::move(post_ckpt),
                 std::move(post_restart));
  }
}

}  // namespace dsim::core
