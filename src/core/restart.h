// dmtcp_restart: the unified per-host restart process (§4.4, Fig. 2).
//
// One restart process per host: it reopens files and recreates ptys,
// re-establishes sockets through the coordinator's discovery service, then
// forks into the user processes, rearranges descriptors with dup2 so that
// previously-shared descriptions are shared again, restores memory and
// threads via MTCP, and hands control to the restored checkpoint managers
// (which join at Barrier 5, refill, and resume).
#pragma once

#include <memory>

#include "core/stats.h"
#include "sim/program.h"

namespace dsim::core {

sim::Program make_restart_program(SharedResolver resolve);

}  // namespace dsim::core
