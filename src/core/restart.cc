#include "core/restart.h"

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "ckptstore/erasure.h"
#include "ckptstore/manifest.h"
#include "ckptstore/tenant.h"
#include "core/hijack.h"
#include "core/msg_io.h"
#include "core/protocol.h"
#include "mtcp/mtcp.h"
#include "sim/model_params.h"
#include "sim/pctx.h"
#include "sim/sync.h"
#include "util/assertx.h"
#include "util/logging.h"

namespace dsim::core {
namespace {

using sim::SegKind;
using sim::SockSegment;
using sim::TcpVNode;

struct LoadedImage {
  mtcp::ProcessImage img;
  ConnTable table;
  double decode_seconds = 0;
};

struct RestartArgs {
  NodeId coord_node = 0;
  u16 coord_port = 7779;
  int expected = 0;
  int hosts = 0;
  std::vector<std::string> images;
};

RestartArgs parse_args(const std::vector<std::string>& argv) {
  RestartArgs a;
  for (size_t i = 0; i < argv.size(); ++i) {
    if (argv[i] == "--coord-node") a.coord_node = std::stoi(argv[++i]);
    else if (argv[i] == "--coord-port")
      a.coord_port = static_cast<u16>(std::stoi(argv[++i]));
    else if (argv[i] == "--expected") a.expected = std::stoi(argv[++i]);
    else if (argv[i] == "--hosts") a.hosts = std::stoi(argv[++i]);
    else a.images.push_back(argv[i]);
  }
  return a;
}

TcpVNode* tcp_of(const std::shared_ptr<sim::OpenFile>& of) {
  DSIM_CHECK(of && of->vnode->kind() == sim::VKind::kTcp);
  return static_cast<TcpVNode*>(of->vnode.get());
}

/// §4.4 step 2 handshake: after reconnecting, "the two sides perform a
/// handshake and agree on the socket being restored".
Task<void> send_conn_handshake(sim::ProcessCtx& ctx, TcpVNode& s,
                               const sim::ConnId& id) {
  ByteWriter w;
  id.serialize(w);
  SockSegment seg;
  seg.kind = SegKind::kCtrl;
  seg.bytes = w.take();
  co_await ctx.kernel().sock_send_segment(ctx.thread(), s, std::move(seg));
}

Task<sim::ConnId> recv_conn_handshake(sim::ProcessCtx& ctx, TcpVNode& s) {
  auto seg = co_await ctx.kernel().sock_recv_segment(ctx.thread(), s);
  DSIM_CHECK_MSG(seg.kind == SegKind::kCtrl, "restart handshake corrupted");
  ByteReader r(seg.bytes);
  co_return sim::ConnId::deserialize(r);
}

Task<int> restart_main(sim::ProcessCtx& ctx,
                       std::shared_ptr<DmtcpShared> shared) {
  auto& k = ctx.kernel();
  sim::Process& self = ctx.process();
  const RestartArgs args = parse_args(self.argv());
  DSIM_CHECK_MSG(!args.images.empty(), "dmtcp_restart: no images given");

  // --- Load the images. Metadata (connection tables) is needed now; the
  // bulk memory cost (read + gunzip) is charged in stage 3-5, where each
  // restored process pays it — in parallel across the node's cores, as the
  // real restart does after forking.
  std::vector<LoadedImage> loaded;
  double total_decode_seconds = 0;
  u64 total_read_bytes = 0;
  // Chunk-store service mode: reads are charged to the node holding each
  // chunk (first surviving replica), and every chunk read is one Fetch RPC
  // routed to the key's shard.
  std::map<NodeId, u64> fetch_by_node;
  std::vector<std::pair<ckptstore::ChunkKey, u64>> fetch_chunks;
  for (const auto& path : args.images) {
    auto inode = k.fs_for(self.node(), path).lookup(path);
    DSIM_CHECK_MSG(inode != nullptr, "dmtcp_restart: image not found");
    auto container = inode->data.materialize(0, inode->data.size());
    double decode_seconds = 0;
    LoadedImage li;
    if (ckptstore::Manifest::is_manifest(container)) {
      // Delta restart: materialize the image from the generation manifest
      // plus the chunk repository, verifying every chunk's CRC. The read
      // cost is the manifest plus every referenced chunk — the full image
      // worth of stored bytes, not just this generation's delta.
      const auto mf = ckptstore::Manifest::decode(container);
      // Same helper dmtcp_checkpoint validates its flags with: a manifest
      // recording impossible chunking parameters is corrupt, and failing
      // here beats feeding it to the chunk scanner's asserts.
      const std::string cfg_err = validate_chunking(mf.chunking);
      DSIM_CHECK_MSG(cfg_err.empty(),
                     ("dmtcp_restart: manifest has invalid chunking "
                      "parameters: " +
                      cfg_err)
                         .c_str());
      std::string err;
      u64 chunk_read_bytes = 0;
      const ckptstore::Repository& repo = shared->repo_for(self.node());
      li.img = mtcp::decode_incremental(mf, repo, &decode_seconds,
                                        &chunk_read_bytes, &err);
      DSIM_CHECK_MSG(err.empty(), err.c_str());
      if (const auto* svc = shared->store_service.get()) {
        // Placement-aware fetch plan. decode_incremental succeeded, so
        // every referenced chunk is resident; the pre-flight in
        // DmtcpControl::restart guarantees a surviving holder. The holder
        // choice consults *membership* on top of placement: a node the
        // cluster has declared dead is never fetched from, even in the
        // window where a detected death has not yet propagated everywhere
        // (placement and membership share ground truth, but belt and
        // braces is exactly what a restart path wants).
        const auto& membership = shared->membership;
        const std::function<bool(NodeId)> member_alive =
            membership ? std::function<bool(NodeId)>([&membership](NodeId n) {
              return membership->alive(n);
            })
                       : nullptr;
        for (const auto& sm : mf.segments) {
          for (const auto& ref : sm.chunks) {
            const ckptstore::Chunk* c = repo.find(ref.key);
            DSIM_CHECK(c != nullptr);
            // Replication: one surviving copy, full bytes. Erasure: k
            // fragment reads — and when a data fragment is dead or
            // corrupt, a parity fragment substitutes and the degraded
            // read pays a decode pass on the restarting node's CPU.
            bool needs_decode = false;
            const auto plan = svc->placement().read_plan(
                ref.key, &needs_decode, member_alive);
            if (plan.empty()) {
              // Pre-flight guarantees availability; an empty plan here
              // means the membership view lags placement — read locally
              // rather than off a node the cluster considers dead.
              fetch_by_node[self.node()] += c->charged_bytes;
            } else {
              for (const auto& src : plan) fetch_by_node[src.node] += src.bytes;
              if (needs_decode) {
                decode_seconds +=
                    ckptstore::erasure::decode_seconds(c->charged_bytes);
              }
            }
            fetch_chunks.emplace_back(ref.key, c->charged_bytes);
          }
        }
        total_read_bytes += container.size();
      } else {
        total_read_bytes += container.size() + chunk_read_bytes;
      }
    } else {
      li.img = mtcp::decode(container, shared->opts.codec, &decode_seconds);
      total_read_bytes += inode->charge_or_size();
    }
    li.decode_seconds = decode_seconds;
    total_decode_seconds += decode_seconds;
    li.table = ConnTable::decode(li.img.dmtcp_blob);
    loaded.push_back(std::move(li));
  }

  // --- Connect to the coordinator (discovery service + barriers).
  const Fd coord_fd = co_await ctx.socket_raw(false);
  self.fds().get(coord_fd)->dmtcp_internal = true;
  while (!co_await ctx.connect_raw(
      coord_fd, sim::SockAddr{args.coord_node, args.coord_port})) {
    co_await ctx.sleep(1 * timeconst::kMillisecond);
  }
  TcpVNode* coord = tcp_of(self.fds().get(coord_fd));

  // --- Stage 1 (§4.4): reopen files and recreate ptys.
  const SimTime t_files = ctx.now();
  std::map<u64, std::shared_ptr<sim::OpenFile>> descs;
  std::map<i32, std::pair<std::shared_ptr<sim::OpenFile>,
                          std::shared_ptr<sim::OpenFile>>>
      ptys;
  struct EstabWork {
    const ConnRecord* rec;
    std::shared_ptr<sim::OpenFile> listener;  // acceptor side only
  };
  std::vector<EstabWork> estabs;
  std::set<u64> estab_seen;

  for (const auto& li : loaded) {
    for (const auto& rec : li.table.conns) {
      if (descs.count(rec.desc_id)) continue;
      k.reserve_description_ids(rec.desc_id);
      switch (rec.type) {
        case ConnType::kFile: {
          auto of = k.open_file(self, rec.path, {.create = true});
          of->offset = rec.offset;
          of->description_id = rec.desc_id;
          descs[rec.desc_id] = of;
          break;
        }
        case ConnType::kPtyMaster:
        case ConnType::kPtySlave: {
          auto it = ptys.find(rec.pty_id);
          if (it == ptys.end()) {
            auto [m, s] = k.make_pty(self);
            static_cast<sim::PtyVNode&>(*m->vnode).pair().termios =
                rec.termios;
            it = ptys.emplace(rec.pty_id, std::make_pair(m, s)).first;
          }
          descs[rec.desc_id] = rec.type == ConnType::kPtyMaster
                                   ? it->second.first
                                   : it->second.second;
          descs[rec.desc_id]->description_id = rec.desc_id;
          break;
        }
        case ConnType::kListener: {
          auto of = k.make_socket(self, rec.unix_domain);
          const bool ok = k.sock_bind(self, *tcp_of(of), rec.listen_port);
          DSIM_CHECK_MSG(ok, "dmtcp_restart: listener port taken");
          k.sock_listen(self, *tcp_of(of));
          tcp_of(of)->conn_id = rec.conn_id;
          of->description_id = rec.desc_id;
          descs[rec.desc_id] = of;
          break;
        }
        case ConnType::kRawSocket: {
          auto of = k.make_socket(self, rec.unix_domain);
          tcp_of(of)->conn_id = rec.conn_id;
          of->description_id = rec.desc_id;
          descs[rec.desc_id] = of;
          break;
        }
        case ConnType::kEstablished: {
          if (rec.peer_gone) {
            // Half-closed at checkpoint time: restore a local socket that
            // reports EOF after its (refilled) residual data.
            auto of = k.make_socket(self, rec.unix_domain);
            TcpVNode* s = tcp_of(of);
            s->state = TcpVNode::State::kEstablished;
            s->peer_closed = true;
            s->conn_id = rec.conn_id;
            s->promoted_pipe = rec.promoted_pipe;
            of->description_id = rec.desc_id;
            descs[rec.desc_id] = of;
            break;
          }
          // A description shared by several processes (fork semantics)
          // appears in each of their tables; reconnect it exactly once.
          if (estab_seen.insert(rec.desc_id).second) {
            estabs.push_back(EstabWork{&rec, nullptr});
          }
          break;
        }
      }
      co_await ctx.sleep(25 * timeconst::kMicrosecond);  // per-fd syscalls
    }
  }
  {
    Msg note;
    note.type = MsgType::kStageNote;
    note.s = "files";
    note.ua = static_cast<u64>(ctx.now() - t_files);
    co_await send_msg(k, ctx.thread(), *coord, note);
  }

  // --- Stage 2 (§4.4): recreate and reconnect sockets via discovery.
  const SimTime t_conns = ctx.now();
  // (a) Acceptor ends: one rendezvous listener per connection, advertised
  // to the discovery service.
  for (auto& w : estabs) {
    if (!w.rec->is_acceptor) continue;
    auto lof = k.make_socket(self, w.rec->unix_domain);
    const bool ok = k.sock_bind(self, *tcp_of(lof), 0);  // ephemeral
    DSIM_CHECK(ok);
    k.sock_listen(self, *tcp_of(lof));
    w.listener = lof;
    Msg adv;
    adv.type = MsgType::kAdvertise;
    adv.conn = w.rec->conn_id;
    adv.a = self.node();
    adv.b = tcp_of(lof)->local.port;
    co_await send_msg(k, ctx.thread(), *coord, adv);
  }
  // (b) Connector ends: query the discovery service...
  int queries = 0;
  for (const auto& w : estabs) {
    if (w.rec->is_acceptor) continue;
    Msg q;
    q.type = MsgType::kQueryAddr;
    q.conn = w.rec->conn_id;
    co_await send_msg(k, ctx.thread(), *coord, q);
    ++queries;
  }
  // ...and collect the advertisements as peers come up.
  std::map<sim::ConnId, sim::SockAddr> addrs;
  while (static_cast<int>(addrs.size()) < queries) {
    auto m = co_await recv_msg(k, ctx.thread(), *coord);
    DSIM_CHECK_MSG(m.has_value(), "coordinator died during restart");
    DSIM_CHECK(m->type == MsgType::kAddrInfo);
    addrs[m->conn] = sim::SockAddr{m->a, static_cast<u16>(m->b)};
  }
  // (c) Connect all connector ends and handshake on the connection id.
  for (const auto& w : estabs) {
    if (w.rec->is_acceptor) continue;
    auto of = k.make_socket(self, w.rec->unix_domain);
    TcpVNode* s = tcp_of(of);
    const sim::SockAddr addr = addrs.at(w.rec->conn_id);
    while (!co_await k.sock_connect(ctx.thread(), *s, addr)) {
      co_await ctx.sleep(1 * timeconst::kMillisecond);
    }
    s->conn_id = w.rec->conn_id;
    s->promoted_pipe = w.rec->promoted_pipe;
    of->description_id = w.rec->desc_id;
    co_await send_conn_handshake(ctx, *s, w.rec->conn_id);
    descs[w.rec->desc_id] = of;
  }
  // (d) Accept on all acceptor ends; verify the handshake.
  for (const auto& w : estabs) {
    if (!w.rec->is_acceptor) continue;
    auto of = co_await k.sock_accept(ctx.thread(), *tcp_of(w.listener));
    DSIM_CHECK(of != nullptr);
    TcpVNode* s = tcp_of(of);
    const sim::ConnId peer_id = co_await recv_conn_handshake(ctx, *s);
    DSIM_CHECK_MSG(peer_id == w.rec->conn_id,
                   "restart: handshake disagreed on the restored socket");
    s->conn_id = w.rec->conn_id;
    s->is_acceptor = true;
    s->promoted_pipe = w.rec->promoted_pipe;
    of->description_id = w.rec->desc_id;
    descs[w.rec->desc_id] = of;
  }
  // All hosts must finish reconnection before user processes run (Fig. 2).
  {
    Msg bw;
    bw.type = MsgType::kBarrierWait;
    bw.s = barrier::kRestartConns;
    bw.a = args.hosts;
    co_await send_msg(k, ctx.thread(), *coord, bw);
    while (true) {
      auto m = co_await recv_msg(k, ctx.thread(), *coord);
      DSIM_CHECK(m.has_value());
      if (m->type == MsgType::kBarrierRelease &&
          m->s == barrier::kRestartConns) {
        break;
      }
    }
    Msg note;
    note.type = MsgType::kStageNote;
    note.s = "reconnect";
    note.ua = static_cast<u64>(ctx.now() - t_conns);
    co_await send_msg(k, ctx.thread(), *coord, note);
  }

  // --- Stages 3-5 (§4.4): fork into user processes, rearrange fds with
  // dup2 semantics, restore memory and threads. The per-image read and
  // decompress costs run concurrently (one core each, fluid-shared).
  const SimTime t_mem = ctx.now();
  {
    if (auto* svc = shared->store_service.get();
        svc != nullptr && !fetch_chunks.empty()) {
      // Chunk fetches are RPCs through the shard queues (contending with
      // any other host restarting concurrently)...
      auto fq = std::make_shared<sim::CountLatch>(
          static_cast<int>(fetch_chunks.size()));
      // Fetches ride the restart QoS band: the fair-queueing scheduler
      // serves them ahead of any tenant's checkpoint-storm traffic, so a
      // restarting computation is never starved by a noisy neighbor.
      for (const auto& [key, b] : fetch_chunks) {
        ckptstore::StoreRequest req;
        req.op = ckptstore::StoreOp::kFetch;
        req.tenant = shared->opts.tenant_id;
        req.qos = ckptstore::QosClass::kRestart;
        req.from = self.node();
        req.keys = {key};
        req.bytes = b;
        req.done = [fq] { fq->done_one(); };
        svc->submit(std::move(req));
      }
      while (fq->remaining > 0) co_await fq->wq.wait(ctx.thread());
      // ...and the bytes stream off the holding nodes' devices and over
      // their NICs to this node, concurrently across holders. Device
      // charges are *reads*: delta restart must never inflate the write
      // counters (the split the device accounting regression test pins).
      auto rd = std::make_shared<sim::CountLatch>(
          2 * static_cast<int>(fetch_by_node.size()));
      for (const auto& [holder, bytes] : fetch_by_node) {
        k.charge_storage_bg(holder, args.images[0], bytes, /*is_read=*/true,
                            [rd] { rd->done_one(); });
        k.net().transfer(holder, self.node(), bytes,
                         [rd] { rd->done_one(); });
      }
      while (rd->remaining > 0) co_await rd->wq.wait(ctx.thread());
    }
    // Device: one sequential read stream per restart process (manifests
    // and full images on this node).
    co_await k.charge_storage(ctx.thread(), self.node(), args.images[0],
                              total_read_bytes, /*is_read=*/true);
    // CPU: per-image gunzip/copy jobs in parallel on this node's cores.
    auto sync = std::make_shared<sim::CountLatch>(
        static_cast<int>(loaded.size()));
    for (auto& li : loaded) {
      k.node(self.node()).cpu().submit(li.decode_seconds,
                                       [sync] { sync->done_one(); });
    }
    while (sync->remaining > 0) co_await sync->wq.wait(ctx.thread());
  }
  for (auto& li : loaded) {
    sim::Process& child = k.fork_bare_child(self);
    // Stage 4: exact descriptor layout; shared descriptions share OpenFiles.
    child.fds().clear();
    for (const auto& fe : li.table.fds) {
      auto it = descs.find(fe.desc_id);
      DSIM_CHECK_MSG(it != descs.end(), "restart: missing description");
      child.fds().install_at(fe.fd, it->second);
    }
    // Stage 5: memory (private segments), then the §4.5 shared-memory rules.
    mtcp::restore_memory(child, li.img);
    for (const auto& si : li.img.segments) {
      if (!si.shared) continue;
      auto& fs = k.fs_for(child.node(), si.backing_path);
      const bool missing = !fs.exists(si.backing_path);
      const bool read_only = fs.read_only(si.backing_path);
      if (missing) {
        // Backing file missing and directory writable: create a new backing
        // file from checkpoint data.
        fs.create(si.backing_path);
      }
      auto seg = k.mmap_shared(child, si.backing_path, si.data.size());
      if (!read_only) {
        // Overwrite the shared segment with checkpoint data; co-mapped
        // processes write the same bytes, so the end state is consistent.
        auto bytes = si.data.materialize(0, si.data.size());
        seg->data.write(0, bytes);
        auto inode = fs.lookup(si.backing_path);
        inode->data = seg->data;
      }
      // Read-only: map current file data, *not* the checkpoint data (§4.5).
      child.mem().attach(seg);
    }
    child.env() = li.img.env;
    // Identity + hijack runtime with the restored connection table.
    const UniquePid upid{hostid_of(li.img.origin_node), li.img.virt_pid, 0};
    auto hijack =
        Hijack::make_restored(child, shared, li.table, li.img.virt_pid,
                              li.img.virt_ppid, upid, args.expected);
    child.set_interposer(hijack);
    // User threads start suspended; the manager resumes them at stage 7.
    std::vector<sim::ThreadContext> contexts;
    for (const auto& ti : li.img.threads) contexts.push_back(ti.ctx);
    k.start_restored(child, li.img.prog_name, li.img.argv, contexts,
                     /*start_suspended=*/true);
    hijack->on_attach();  // manager joins at "restart:checkpointed" (B5)
    co_await ctx.sleep(300 * timeconst::kMicrosecond);  // fork cost
  }
  {
    Msg note;
    note.type = MsgType::kStageNote;
    note.s = "memory";
    note.ua = static_cast<u64>(ctx.now() - t_mem);
    co_await send_msg(k, ctx.thread(), *coord, note);
  }
  // The restart process's duplicate descriptor references are dropped on
  // exit (children hold their own references), mirroring the real restart
  // program exec'ing into the user processes.
  co_return 0;
}

}  // namespace

sim::Program make_restart_program(SharedResolver resolve) {
  sim::Program p;
  p.name = "dmtcp_restart";
  p.main = [resolve](sim::ProcessCtx& ctx) {
    return restart_main(ctx, resolve(ctx.process()));
  };
  return p;
}

}  // namespace dsim::core
