// The DMTCP checkpoint coordinator.
//
// A single process outside the checkpointed computation (spawned
// automatically by the first dmtcp_checkpoint, §3). It implements:
//   - registration of checkpoint managers,
//   - the cluster-wide barrier (the only checkpoint-time primitive, §4.3),
//   - checkpoint initiation (on command or --interval timer),
//   - the restart-time discovery service (§4.4 step 2),
//   - restart-script generation (§3),
//   - virtual-pid bookkeeping.
//
// "Global barriers could be implemented efficiently through peer-to-peer
// communication or broadcast trees, but are currently centralized for
// simplicity" (§4.3) — same choice here; bench_ablation measures the
// coordinator's cost as process count grows.
#pragma once

#include <memory>

#include "core/stats.h"
#include "sim/program.h"

namespace dsim::core {

/// Program factories registered into the kernel by DmtcpControl. The
/// resolver maps a spawned process to its computation's shared state (by
/// DMTCP_COORD_PORT when several computations share the kernel).
sim::Program make_coordinator_program(SharedResolver resolve);
sim::Program make_command_program(SharedResolver resolve);

}  // namespace dsim::core
