// Connection information table (§4.3 step 4: "The connection information
// table is then written to disk").
//
// One ConnRecord per open-file description; the FdEntry list maps the
// process's descriptor numbers onto description ids so restart can rebuild
// exact sharing (two fds — possibly in different processes — that shared a
// description before checkpoint share one again after restart).
#pragma once

#include <string>
#include <vector>

#include "core/ids.h"
#include "sim/ipc.h"
#include "sim/socket.h"
#include "util/serialize.h"
#include "util/types.h"

namespace dsim::core {

enum class ConnType : u8 {
  kFile = 0,
  kListener = 1,
  kEstablished = 2,  // TCP, UNIX-domain socketpair, or promoted pipe
  kRawSocket = 3,    // socket() with no bind/connect yet
  kPtyMaster = 4,
  kPtySlave = 5,
};

struct ConnRecord {
  u64 desc_id = 0;
  ConnType type = ConnType::kFile;
  u64 offset = 0;
  Pid fown_saved = 0;

  // kFile
  std::string path;

  // sockets
  sim::ConnId conn_id{};
  bool is_acceptor = false;
  bool unix_domain = false;
  bool promoted_pipe = false;
  u16 listen_port = 0;
  /// This process drained this end (election winner, §4.3 step 3).
  bool drain_leader = false;
  /// The peer end was already closed at checkpoint time (half-closed
  /// connection): restore locally — drained bytes go straight back into the
  /// receive buffer, and no discovery/reconnect happens.
  bool peer_gone = false;
  /// Bytes drained from this end's receive path (leader only).
  std::vector<std::byte> drained;

  // ptys
  i32 pty_id = -1;
  sim::Termios termios{};

  void serialize(ByteWriter& w) const;
  static ConnRecord deserialize(ByteReader& r);
};

struct FdEntry {
  Fd fd = kNoFd;
  u64 desc_id = 0;
};

struct ConnTable {
  std::vector<FdEntry> fds;
  std::vector<ConnRecord> conns;
  /// Connections flushed from listener backlogs at suspend time, waiting to
  /// be handed out by accept(): (listener description id, stashed fd).
  std::vector<std::pair<u64, i32>> preaccepted;

  const ConnRecord* find(u64 desc_id) const {
    for (const auto& c : conns) {
      if (c.desc_id == desc_id) return &c;
    }
    return nullptr;
  }

  std::vector<std::byte> encode() const;
  static ConnTable decode(std::span<const std::byte> bytes);
};

}  // namespace dsim::core
