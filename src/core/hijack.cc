#include "core/hijack.h"

#include <algorithm>
#include <set>

#include "ckptasync/pipeline.h"
#include "ckptstore/erasure.h"
#include "ckptstore/tenant.h"
#include "core/msg_io.h"
#include "mtcp/mtcp.h"
#include "sim/model_params.h"
#include "sim/sync.h"
#include "util/assertx.h"
#include "util/logging.h"

namespace dsim::core {

using sim::SegKind;
using sim::SockSegment;
using sim::TcpVNode;
namespace params = sim::params;

namespace {

std::string sanitize(std::string s) {
  for (char& c : s) {
    if (c == '/' || c == ':' || c == ' ') c = '_';
  }
  return s;
}

/// Store phase of one async drain job: replays the synchronous incremental
/// store sequence (lookups -> stores/heals -> device charges -> manifest ->
/// GC drops) as a callback chain off the event loop, so the checkpoint
/// barrier releases without waiting on any of it. Kept alive by the
/// callbacks it registers.
struct AsyncStoreJob : std::enable_shared_from_this<AsyncStoreJob> {
  sim::Kernel* k = nullptr;
  std::shared_ptr<DmtcpShared> shared;
  std::shared_ptr<ckptstore::ChunkStoreService> svc;  // null: local-repo path
  ckptstore::TenantId tenant = ckptstore::kDefaultTenant;
  NodeId node = 0;
  std::string path;
  std::vector<ckptstore::ChunkKey> probes;
  std::vector<std::pair<ckptstore::ChunkKey, u64>> to_store;
  std::vector<std::pair<ckptstore::ChunkKey, u64>> dup_chunks;
  size_t fresh = 0;  // to_store[0..fresh) are new stores; the rest heals
  u64 manifest_size = 0;
  u64 submitted_bytes = 0;
  std::function<void()> done;

  int pending = 0;
  std::map<NodeId, u64> home_bytes;

  void run() {
    auto self = shared_from_this();
    if (!svc) {
      k->charge_storage_bg(node, path, submitted_bytes, /*is_read=*/false,
                           [self] { self->gc_and_done(); });
      return;
    }
    ckptstore::StoreRequest lk;
    lk.op = ckptstore::StoreOp::kLookup;
    lk.tenant = tenant;
    lk.from = node;
    lk.keys = probes;
    lk.done = [self] { self->stores(); };
    svc->submit(std::move(lk));
  }

  void stores() {
    // Heal forward: dedup hits whose every replica died with its node are
    // re-stored over the survivors (same rule as the synchronous path).
    if (svc->placement().any_dead()) {
      std::set<ckptstore::ChunkKey> healed;
      for (const auto& [key, bytes] : dup_chunks) {
        if (svc->placement().lost(key) && healed.insert(key).second) {
          to_store.emplace_back(key, bytes);
        }
      }
    }
    if (to_store.empty()) {
      charges();
      return;
    }
    auto self = shared_from_this();
    pending = static_cast<int>(to_store.size());
    auto one = [self] {
      if (--self->pending == 0) self->charges();
    };
    for (size_t i = 0; i < to_store.size(); ++i) {
      const auto& [key, bytes] = to_store[i];
      ckptstore::StoreRequest st;
      st.op = i < fresh ? ckptstore::StoreOp::kStore
                        : ckptstore::StoreOp::kRestore;
      st.tenant = tenant;
      st.from = node;
      st.keys = {key};
      st.bytes = bytes;
      st.done = one;
      const auto reply = svc->submit(std::move(st));
      for (const auto& t : reply.targets) home_bytes[t.node] += t.bytes;
    }
  }

  void charges() {
    auto self = shared_from_this();
    pending = static_cast<int>(home_bytes.size()) + 1;  // +1: the manifest
    auto one = [self] {
      if (--self->pending == 0) self->gc_and_done();
    };
    for (const auto& [home, bytes] : home_bytes) {
      k->charge_storage_bg(home, path, bytes, /*is_read=*/false, one);
    }
    k->charge_storage_bg(node, path, manifest_size, /*is_read=*/false, one);
  }

  void gc_and_done() {
    ckptstore::Repository& repo = shared->repo_for(node);
    if (svc) {
      std::vector<ckptstore::Repository::ReclaimedChunk> dead;
      const u64 reclaimed =
          repo.collect_garbage(shared->opts.keep_generations, &dead,
                               ckptstore::tenant_prefix(tenant));
      if (reclaimed > 0) {
        for (const auto& rc : dead) {
          ckptstore::StoreRequest dr;
          dr.op = ckptstore::StoreOp::kDrop;
          dr.tenant = tenant;
          dr.from = node;
          dr.keys = {rc.key};
          dr.bytes = rc.bytes;
          svc->submit(std::move(dr));
          // One fragment per home under erasure, the full container under
          // replication — read before forget drops the entry.
          const u64 per_home = svc->placement().home_charge(rc.key);
          for (NodeId home : svc->placement().forget(rc.key)) {
            k->discard_storage(home, path, per_home > 0 ? per_home : rc.bytes);
          }
        }
      }
    } else {
      const u64 reclaimed =
          repo.collect_garbage(shared->opts.keep_generations);
      if (reclaimed > 0) k->discard_storage(node, path, reclaimed);
    }
    done();
  }
};

}  // namespace

Task<void> hijack_manager_entry(Hijack* h, sim::ProcessCtx* ctx) {
  co_await h->manager_main(*ctx);
}

Hijack::Hijack(sim::Process& p, std::shared_ptr<DmtcpShared> shared)
    : p_(p), shared_(std::move(shared)) {
  vpid_ = p.pid();
  upid_ = UniquePid{hostid_of(p.node()), vpid_,
                    static_cast<u64>(p.kernel().loop().now())};
  if (!shared_->active_vpids.insert(vpid_).second) {
    // Virtual-pid conflict (§4.5): a restored process already owns this pid.
    // The parent's fork wrapper will observe `conflicted` and re-fork.
    conflicted_ = true;
  } else {
    shared_->vpid_map[vpid_] = p.pid();
  }
}

std::shared_ptr<Hijack> Hijack::make_restored(
    sim::Process& p, std::shared_ptr<DmtcpShared> shared, ConnTable table,
    Pid vpid, Pid virt_ppid, UniquePid upid, int expected_procs) {
  auto h = std::shared_ptr<Hijack>(new Hijack(p, std::move(shared)));
  // Undo the fresh-attach vpid claim and take over the image's identity.
  h->shared_->active_vpids.erase(h->vpid_);
  h->shared_->vpid_map.erase(h->vpid_);
  h->vpid_ = vpid;
  h->upid_ = upid;
  h->shared_->active_vpids.insert(vpid);
  h->shared_->vpid_map[vpid] = p.pid();  // translation re-pointed (§4.5)
  h->is_restored_ = true;
  h->virt_ppid_ = virt_ppid;
  h->restart_expected_ = expected_procs;
  h->restored_table_ = std::move(table);
  for (const auto& [desc, fd] : h->restored_table_.preaccepted) {
    h->preaccepted_[desc].push_back(fd);
  }
  return h;
}

void Hijack::on_attach() {
  // "Launches a checkpoint management thread in every user process" (§4).
  sim::Thread& t = p_.add_thread(sim::ThreadKind::kManager);
  t.start(hijack_manager_entry(this, &t.pctx()));
}

void Hijack::on_process_exit() { shared_->active_vpids.erase(vpid_); }

// --- wrapped syscalls -------------------------------------------------------

Task<std::pair<Fd, Fd>> Hijack::wrap_pipe(sim::ProcessCtx& ctx) {
  // §4.5: "a wrapper around the pipe system call promotes pipes into
  // sockets" so the drain/refill machinery handles them.
  auto [a, b] = co_await ctx.socketpair_raw();
  if (auto* va = ctx.fd_tcp(a)) va->promoted_pipe = true;
  if (auto* vb = ctx.fd_tcp(b)) vb->promoted_pipe = true;
  co_return std::make_pair(a, b);
}

Task<Pid> Hijack::wrap_spawn(sim::ProcessCtx& ctx, NodeId node,
                             std::string prog, std::vector<std::string> argv,
                             std::map<std::string, std::string> env) {
  // Hold new spawns while a checkpoint is in flight so the coordinator's
  // barrier membership stays stable for the round.
  while (shared_->ckpt_active) {
    co_await ctx.sleep(500 * timeconst::kMicrosecond);
  }
  // The ssh/exec interception point (§3): make sure the child — possibly on
  // a remote node — runs under DMTCP with the same coordinator.
  env["DMTCP_ENABLED"] = "1";
  for (int attempt = 0; attempt < 64; ++attempt) {
    const Pid child = co_await ctx.spawn_raw(node, prog, argv, env);
    sim::Process* cp = ctx.kernel().find_process(child);
    DSIM_CHECK(cp != nullptr);
    auto* ch = dynamic_cast<Hijack*>(cp->interposer());
    if (ch != nullptr && ch->conflicted_) {
      // §4.5: terminate the child with the conflicting virtual pid and fork
      // once again.
      LOG_INFO("vpid conflict on pid %d; re-forking", child);
      ctx.kernel().kill_process(child);
      continue;
    }
    co_return child;
  }
  DSIM_UNREACHABLE("could not resolve vpid conflict after 64 attempts");
}

Pid Hijack::wrap_getpid(sim::ProcessCtx& ctx) {
  (void)ctx;
  return vpid_;
}

Task<int> Hijack::wrap_waitpid(sim::ProcessCtx& ctx, Pid child) {
  // Translate the (stable) virtual pid to the current real pid (§4.5).
  Pid real = child;
  if (auto it = shared_->vpid_map.find(child);
      it != shared_->vpid_map.end()) {
    real = it->second;
  }
  sim::Process* c = ctx.kernel().find_process(real);
  if (!c) co_return 255;  // child predates the last restart; nothing to reap
  if (c->state() == sim::ProcState::kDead) co_return 255;  // already reaped
  if (c->ppid() != p_.pid()) {
    // Restored processes are forked from dmtcp_restart; re-establish the
    // original parent/child link so wait semantics hold.
    c->set_ppid(p_.pid());
    p_.children().push_back(real);
  }
  co_return co_await ctx.waitpid_raw(real);
}

Task<Fd> Hijack::wrap_accept(sim::ProcessCtx& ctx, Fd fd) {
  auto of = ctx.fd_get(fd);
  DSIM_CHECK(of != nullptr);
  auto it = preaccepted_.find(of->description_id);
  if (it != preaccepted_.end() && !it->second.empty()) {
    const Fd ready = it->second.front();
    it->second.pop_front();
    co_return ready;
  }
  co_return co_await ctx.accept_raw(fd);
}

// --- manager -----------------------------------------------------------------

sim::TcpVNode* Hijack::coord_sock() {
  auto of = p_.fds().get(coord_fd_);
  DSIM_CHECK(of && of->vnode->kind() == sim::VKind::kTcp);
  return static_cast<TcpVNode*>(of->vnode.get());
}

sim::TcpVNode* Hijack::vnode_for_desc(u64 desc_id) {
  for (const auto& [fd, of] : p_.fds().entries()) {
    if (of->description_id == desc_id &&
        of->vnode->kind() == sim::VKind::kTcp) {
      return static_cast<TcpVNode*>(of->vnode.get());
    }
  }
  return nullptr;
}

std::shared_ptr<sim::OpenFile> Hijack::desc_by_id(u64 desc_id) {
  for (const auto& [fd, of] : p_.fds().entries()) {
    if (of->description_id == desc_id) return of;
  }
  return nullptr;
}

Task<void> Hijack::manager_main(sim::ProcessCtx& ctx) {
  auto& k = ctx.kernel();
  // Open the coordinator connection (kept out of checkpoints).
  coord_fd_ = co_await ctx.socket_raw(false);
  p_.fds().get(coord_fd_)->dmtcp_internal = true;
  const sim::SockAddr coord{
      static_cast<NodeId>(std::stoi(p_.env_or("DMTCP_COORD_NODE", "0"))),
      static_cast<u16>(std::stoi(p_.env_or("DMTCP_COORD_PORT", "7779")))};
  while (!co_await ctx.connect_raw(coord_fd_, coord)) {
    co_await ctx.sleep(1 * timeconst::kMillisecond);
  }
  Msg reg;
  reg.type = MsgType::kRegister;
  reg.upid = upid_;
  reg.a = vpid_;
  reg.b = is_restored_ ? 1 : 0;
  reg.ua = static_cast<u64>(p_.node());  // automatic store placement input
  reg.s = k.node(p_.node()).hostname();
  co_await send_msg(k, ctx.thread(), *coord_sock(), reg);

  if (is_restored_) {
    co_await restart_resume(ctx);
  }

  // Barrier 1 (§4.3): wait until the coordinator requests a checkpoint.
  while (true) {
    auto m = co_await recv_msg(k, ctx.thread(), *coord_sock());
    if (!m) co_return;  // coordinator gone; computation is shutting down
    if (m->type == MsgType::kCkptRequest) {
      co_await do_checkpoint(ctx, m->a);
    }
  }
}

Task<void> Hijack::barrier(sim::ProcessCtx& ctx, const std::string& name,
                           int expected) {
  auto& k = ctx.kernel();
  Msg m;
  m.type = MsgType::kBarrierWait;
  m.upid = upid_;
  m.s = name;
  m.a = expected;
  co_await send_msg(k, ctx.thread(), *coord_sock(), m);
  while (true) {
    auto r = co_await recv_msg(k, ctx.thread(), *coord_sock());
    DSIM_CHECK_MSG(r.has_value(), "coordinator died inside a barrier");
    if (r->type == MsgType::kBarrierRelease && r->s == name) co_return;
  }
}

void Hijack::suspend_user_threads() {
  for (auto& t : p_.threads()) {
    if (t->kind() == sim::ThreadKind::kManager || !t->alive()) continue;
    t->ckpt_suspend();
  }
}

void Hijack::resume_user_threads() {
  for (auto& t : p_.threads()) {
    if (t->kind() == sim::ThreadKind::kManager || !t->alive()) continue;
    t->ckpt_resume();
  }
}

int Hijack::flush_accept_backlogs() {
  // Connections sitting in listener backlogs become real fds so they are
  // checkpointed; accept() hands them out from the stash afterwards.
  int flushed = 0;
  auto entries = p_.fds().entries();  // copy: we install new fds below
  for (const auto& [fd, of] : entries) {
    if (of->dmtcp_internal || of->vnode->kind() != sim::VKind::kTcp) continue;
    auto* s = static_cast<TcpVNode*>(of->vnode.get());
    if (s->state != TcpVNode::State::kListening) continue;
    while (auto accepted = p_.kernel().try_accept(*s)) {
      const Fd nfd = p_.fds().install(accepted, 512);  // high fd range
      preaccepted_[of->description_id].push_back(nfd);
      ++flushed;
    }
  }
  return flushed;
}

ConnTable Hijack::build_conn_table() {
  ConnTable table;
  std::map<u64, bool> seen;
  for (const auto& [fd, of] : p_.fds().entries()) {
    if (of->dmtcp_internal) continue;
    table.fds.push_back(FdEntry{fd, of->description_id});
    if (seen.count(of->description_id)) continue;
    seen[of->description_id] = true;

    ConnRecord rec;
    rec.desc_id = of->description_id;
    rec.offset = of->offset;
    rec.fown_saved = of->fown_saved;
    switch (of->vnode->kind()) {
      case sim::VKind::kFile: {
        rec.type = ConnType::kFile;
        rec.path = static_cast<sim::FileVNode&>(*of->vnode).path();
        break;
      }
      case sim::VKind::kTcp: {
        auto* s = static_cast<TcpVNode*>(of->vnode.get());
        rec.conn_id = s->conn_id;
        rec.unix_domain = s->unix_domain;
        rec.promoted_pipe = s->promoted_pipe;
        if (s->state == TcpVNode::State::kListening) {
          rec.type = ConnType::kListener;
          rec.listen_port = s->local.port;
        } else if (s->state == TcpVNode::State::kEstablished) {
          rec.type = ConnType::kEstablished;
          rec.is_acceptor = s->is_acceptor;
          rec.drain_leader = (of->fown_pid == p_.pid());
          rec.peer_gone = s->peer_closed || s->peer.expired();
        } else {
          rec.type = ConnType::kRawSocket;
        }
        break;
      }
      case sim::VKind::kPtyMaster:
      case sim::VKind::kPtySlave: {
        auto& pv = static_cast<sim::PtyVNode&>(*of->vnode);
        rec.type = of->vnode->kind() == sim::VKind::kPtyMaster
                       ? ConnType::kPtyMaster
                       : ConnType::kPtySlave;
        rec.pty_id = pv.pair().id;
        rec.termios = pv.pair().termios;
        break;
      }
      case sim::VKind::kPipeRead:
      case sim::VKind::kPipeWrite:
        DSIM_UNREACHABLE(
            "raw pipe under DMTCP: the pipe() wrapper should have promoted "
            "it to a socketpair");
      default:
        rec.type = ConnType::kFile;
        break;
    }
    table.conns.push_back(std::move(rec));
  }
  for (const auto& [desc, fds] : preaccepted_) {
    for (Fd fd : fds) table.preaccepted.emplace_back(desc, fd);
  }
  return table;
}

Task<void> Hijack::drain_all(sim::ProcessCtx& ctx, ConnTable& table) {
  // §4.3 step 4, run concurrently over all led sockets: flush a token, drain
  // until the peer's token arrives, then handshake on the connection id.
  struct Job {
    TcpVNode* sock;
    ConnRecord* rec;
    int state = 0;  // 0 token, 1 drain, 2 send-handshake, 3 await, 4 done
    std::vector<std::byte> drained;
  };
  std::vector<Job> jobs;
  for (auto& rec : table.conns) {
    if (rec.type != ConnType::kEstablished || !rec.drain_leader) continue;
    TcpVNode* s = vnode_for_desc(rec.desc_id);
    DSIM_CHECK(s != nullptr);
    jobs.push_back(Job{s, &rec, 0, {}});
  }
  // TCP flush dynamics the socket model abstracts away (Table 1a's ~0.1 s
  // drain stage); see model_params.h.
  if (!jobs.empty()) co_await ctx.sleep(params::kDrainFlushBase);
  auto& k = ctx.kernel();
  while (true) {
    bool all_done = true;
    bool progress = false;
    for (auto& j : jobs) {
      if (j.state == 4) continue;
      if (j.sock->peer_closed && j.sock->recv_q.empty() && j.state <= 1) {
        j.rec->drained = std::move(j.drained);
        j.state = 4;  // half-closed connection: keep what we got
        progress = true;
        continue;
      }
      switch (j.state) {
        case 0: {
          SockSegment tok;
          tok.kind = SegKind::kToken;
          tok.bytes = {std::byte{0xD7}};
          if (k.try_send_segment(*j.sock, std::move(tok))) {
            j.state = 1;
            progress = true;
          }
          break;
        }
        case 1: {
          while (auto seg = k.try_recv_segment(*j.sock)) {
            progress = true;
            if (seg->kind == SegKind::kToken) {
              j.state = 2;
              break;
            }
            DSIM_CHECK_MSG(seg->kind == SegKind::kData,
                           "unexpected protocol segment during drain");
            j.drained.insert(j.drained.end(), seg->bytes.begin(),
                             seg->bytes.end());
          }
          break;
        }
        case 2: {
          ByteWriter w;
          j.rec->conn_id.serialize(w);
          SockSegment ctrl;
          ctrl.kind = SegKind::kCtrl;
          ctrl.bytes = w.take();
          if (k.try_send_segment(*j.sock, std::move(ctrl))) {
            j.state = 3;
            progress = true;
          }
          break;
        }
        case 3: {
          if (auto seg = k.try_recv_segment(*j.sock)) {
            DSIM_CHECK(seg->kind == SegKind::kCtrl);
            ByteReader r(seg->bytes);
            const auto peer_id = sim::ConnId::deserialize(r);
            DSIM_CHECK_MSG(peer_id == j.rec->conn_id,
                           "drain handshake: remote side reports a "
                           "different globally unique socket id");
            j.rec->drained = std::move(j.drained);
            j.state = 4;
            progress = true;
          }
          break;
        }
      }
      if (j.state != 4) all_done = false;
    }
    if (all_done) break;
    if (!progress) co_await ctx.sleep(150 * timeconst::kMicrosecond);
  }
}

Task<void> Hijack::refill_all(sim::ProcessCtx& ctx, const ConnTable& table) {
  // §4.3 step 6: each leader sends its drained bytes back to the sender
  // (ctrl plane), and re-sends the peer's blob as ordinary data so it lands
  // back in the peer's kernel receive buffer.
  struct Job {
    TcpVNode* sock;
    const ConnRecord* rec;
    int state = 0;  // 0 send-ctrl, 1 await-ctrl, 2 resend, 3 done
    std::vector<std::byte> peer_blob;
    u64 resent = 0;
  };
  std::vector<Job> jobs;
  for (const auto& rec : table.conns) {
    if (rec.type != ConnType::kEstablished || !rec.drain_leader) continue;
    TcpVNode* s = vnode_for_desc(rec.desc_id);
    DSIM_CHECK(s != nullptr);
    jobs.push_back(Job{s, &rec, 0, {}, 0});
  }
  auto& k = ctx.kernel();
  while (true) {
    bool all_done = true;
    bool progress = false;
    for (auto& j : jobs) {
      if (j.state == 3) continue;
      if (j.sock->peer_closed || j.sock->peer.expired()) {
        // Half-closed connection: the peer cannot re-send, so the drained
        // bytes go straight back into our own receive buffer (they precede
        // the EOF the application will eventually observe).
        if (j.state == 0 && !j.rec->drained.empty()) {
          SockSegment seg;
          seg.kind = SegKind::kData;
          seg.bytes = j.rec->drained;
          j.sock->recv_q.push_back(std::move(seg));
          j.sock->recv_q_bytes += j.rec->drained.size();
          j.sock->readable.wake_all();
        }
        j.state = 3;
        progress = true;
        continue;
      }
      switch (j.state) {
        case 0: {
          ByteWriter w;
          w.put_blob(j.rec->drained);
          SockSegment ctrl;
          ctrl.kind = SegKind::kCtrl;
          ctrl.bytes = w.take();
          if (k.try_send_segment(*j.sock, std::move(ctrl))) {
            j.state = 1;
            progress = true;
          }
          break;
        }
        case 1: {
          if (auto seg = k.try_recv_segment(*j.sock)) {
            DSIM_CHECK(seg->kind == SegKind::kCtrl);
            ByteReader r(seg->bytes);
            j.peer_blob = r.get_blob();
            j.state = j.peer_blob.empty() ? 3 : 2;
            progress = true;
          }
          break;
        }
        case 2: {
          while (j.resent < j.peer_blob.size()) {
            const u64 n = std::min<u64>(params::kTcpSegmentBytes,
                                        j.peer_blob.size() - j.resent);
            SockSegment seg;
            seg.kind = SegKind::kData;
            seg.bytes.assign(
                j.peer_blob.begin() + static_cast<ptrdiff_t>(j.resent),
                j.peer_blob.begin() + static_cast<ptrdiff_t>(j.resent + n));
            if (!k.try_send_segment(*j.sock, std::move(seg))) break;
            j.resent += n;
            progress = true;
          }
          if (j.resent == j.peer_blob.size()) j.state = 3;
          break;
        }
      }
      if (j.state != 3) all_done = false;
    }
    if (all_done) break;
    if (!progress) co_await ctx.sleep(150 * timeconst::kMicrosecond);
  }
}

std::string Hijack::ckpt_path() const {
  return shared_->opts.ckpt_dir + "/ckpt_" + sanitize(p_.prog_name()) + "_" +
         upid_.str() + ".dmtcp";
}

Task<void> Hijack::write_image(sim::ProcessCtx& ctx, int round,
                               const ConnTable& table) {
  auto& k = ctx.kernel();
  if (shared_->opts.sync == SyncMode::kSyncPrevious && generations_ > 0) {
    co_await k.sync_storage(ctx.thread(), p_.node(), ckpt_path());
  }

  // Async backpressure: a new round reaching a process whose previous drain
  // is still in flight either waits for it (block) or sits this round out
  // (skip), leaving the previous generation's manifest in place. Resolved
  // before the snapshot so a skipped process does zero encode work.
  ckptasync::CkptAsyncPipeline* pipe =
      shared_->opts.ckpt_async ? shared_->async_pipeline.get() : nullptr;
  if (pipe != nullptr && pipe->busy(upid_.str())) {
    if (shared_->opts.async_backpressure == AsyncBackpressure::kSkip) {
      pipe->note_skip();
      Msg stats;
      stats.type = MsgType::kImageStats;
      stats.upid = upid_;
      stats.a = round;
      stats.b = p_.node();
      stats.ua = 0;
      stats.s = ckpt_path();
      ByteWriter bw;
      for (int i = 0; i < 6; ++i) bw.put_u64(0);
      bw.put_u64(kImageFlagAsync | kImageFlagSkipped);
      stats.blob = bw.take();
      co_await send_msg(k, ctx.thread(), *coord_sock(), stats);
      co_return;
    }
    const SimTime blocked_from = k.loop().now();
    while (pipe->busy(upid_.str())) {
      co_await ctx.sleep(250 * timeconst::kMicrosecond);
    }
    pipe->note_blocked(to_seconds(k.loop().now() - blocked_from));
  }

  mtcp::ProcessImage img = mtcp::capture(p_);
  img.virt_pid = vpid_;
  img.dmtcp_blob = table.encode();

  const std::string path = ckpt_path();
  auto inode = k.fs_for(p_.node(), path).create(path);

  if (shared_->opts.incremental) {
    // Incremental mode: chunk the image against the content-addressed
    // repository and write only the chunks no earlier generation stored,
    // plus the generation manifest. The scan still walks the full image;
    // the codec only runs over new chunk bytes.
    ckptstore::Repository& repo = shared_->repo_for(p_.node());
    // Manifest/GC ownership is tenant-namespaced ("t<id>/<vpid>") so each
    // tenant's retention runs independently while chunk content — keyed by
    // content alone — still dedups across tenants.
    mtcp::EncodedDelta delta = mtcp::encode_incremental(
        img, shared_->opts.codec, shared_->opts.chunking_params(),
        ckptstore::tenant_owner(shared_->opts.tenant_id,
                                std::to_string(vpid_)),
        round, repo);
    ckptstore::ChunkStoreService* svc = shared_->store_service.get();
    // Striping new chunk containers into k+m fragments is checkpoint-path
    // CPU like compression, priced by the parity rows at kErasureBw.
    double erasure_seconds = 0;
    if (svc != nullptr && svc->erasure().enabled()) {
      erasure_seconds = ckptstore::erasure::encode_seconds(
          delta.new_chunk_bytes, svc->erasure().k, svc->erasure().m);
    }
    if (pipe == nullptr) {
      co_await ctx.cpu(delta.assemble_seconds + delta.compress_seconds +
                       erasure_seconds);
    } else {
      // Async mode: the app pays only the fork/COW snapshot cost here; the
      // scan/chunk and compress CPU are re-priced onto the background
      // pipeline below.
      const double rss_mb =
          static_cast<double>(p_.mem().total_bytes()) / (1024.0 * 1024.0);
      co_await ctx.sleep(params::kForkBase +
                         static_cast<SimTime>(
                             rss_mb * static_cast<double>(params::kForkPerMb)));
    }
    inode->data = sim::ByteImage(delta.manifest_bytes.size());
    inode->data.write(0, delta.manifest_bytes);
    inode->charged_size = delta.submitted_bytes;
    if (pipe != nullptr) {
      // Hand the drain to the pipeline: chunk CPU, compress CPU (re-priced
      // under --compress-bw and the codec's cost factor), then the same
      // store sequence the synchronous path runs, as a callback chain.
      double compress_seconds = 0;
      if (shared_->opts.codec != compress::CodecKind::kNone) {
        // Zero-class input flies through the codec at the same zero:data
        // rate ratio the synchronous gzip model uses.
        const double zero_speedup =
            params::kGzipZeroBw / params::kGzipDataBw;
        compress_seconds =
            compress::codec_cost_factor(shared_->opts.codec) *
            (static_cast<double>(delta.new_logical_data_bytes) /
                 pipe->compress_bw() +
             static_cast<double>(delta.new_logical_zero_bytes) /
                 (pipe->compress_bw() * zero_speedup));
      }
      auto job = std::make_shared<AsyncStoreJob>();
      job->k = &k;
      job->shared = shared_;
      job->svc = shared_->store_service;
      job->tenant = shared_->opts.tenant_id;
      job->node = p_.node();
      job->path = path;
      if (job->svc) {
        job->probes.reserve(delta.dup_chunks.size() +
                            delta.stored_chunks.size());
        for (const auto& [key, bytes] : delta.dup_chunks) {
          job->probes.push_back(key);
        }
        for (const auto& [key, bytes] : delta.stored_chunks) {
          job->probes.push_back(key);
        }
      }
      job->fresh = delta.stored_chunks.size();
      job->to_store = std::move(delta.stored_chunks);
      job->dup_chunks = std::move(delta.dup_chunks);
      job->manifest_size = delta.manifest_bytes.size();
      job->submitted_bytes = delta.submitted_bytes;
      if (job->svc) job->svc->note_raw_bytes(delta.new_logical_bytes());

      ckptasync::JobSpec spec;
      spec.key = upid_.str();
      spec.node = p_.node();
      spec.chunk_seconds = delta.assemble_seconds;
      // The background drain stripes compressed chunks on the way out, so
      // the encode cost rides the pipeline's compress stage.
      spec.compress_seconds = compress_seconds + erasure_seconds;
      spec.queued_bytes = delta.submitted_bytes;
      spec.raw_new_bytes = delta.new_logical_bytes();
      spec.compressed_new_bytes = delta.new_chunk_bytes;
      spec.segments = p_.mem().segments();
      spec.store = [job](std::function<void()> done) {
        job->done = std::move(done);
        job->run();
      };
      auto shared = shared_;
      auto* kp = &k;
      spec.on_complete = [kp, shared, round] {
        auto& r = shared->stats.rounds[static_cast<size_t>(round)];
        r.background_done = std::max(r.background_done, kp->loop().now());
      };
      pipe->start(std::move(spec));

      Msg stats;
      stats.type = MsgType::kImageStats;
      stats.upid = upid_;
      stats.a = round;
      stats.b = p_.node();
      stats.ua = delta.virtual_uncompressed;
      stats.s = path;
      ByteWriter bw;
      bw.put_u64(delta.submitted_bytes);
      bw.put_u64(delta.total_chunks);
      bw.put_u64(delta.new_chunks);
      bw.put_u64(delta.dup_chunk_bytes);
      bw.put_u64(delta.new_chunk_bytes);      // post-codec stored bytes
      bw.put_u64(delta.new_logical_bytes());  // pre-codec chunked bytes
      bw.put_u64(kImageFlagAsync);
      stats.blob = bw.take();
      co_await send_msg(k, ctx.thread(), *coord_sock(), stats);
      co_return;
    }
    if (svc) {
      svc->note_raw_bytes(delta.new_logical_bytes());
      // Remote chunk-store service: every chunk submission is a Lookup RPC
      // (hit or miss alike) routed to its key's shard — the probes cross
      // this node's NIC, pay the endpoint's message CPU, and serialize on
      // the shard queues, so N ranks' probes contend the way the paper's
      // coordinator/peer messages do (§4.3).
      {
        std::vector<ckptstore::ChunkKey> probes;
        probes.reserve(delta.dup_chunks.size() + delta.stored_chunks.size());
        for (const auto& [key, bytes] : delta.dup_chunks) {
          probes.push_back(key);
        }
        for (const auto& [key, bytes] : delta.stored_chunks) {
          probes.push_back(key);
        }
        DSIM_CHECK(probes.size() == delta.total_chunks);
        auto lk = std::make_shared<sim::CountLatch>(1);
        ckptstore::StoreRequest req;
        req.op = ckptstore::StoreOp::kLookup;
        req.tenant = shared_->opts.tenant_id;
        req.from = p_.node();
        req.keys = std::move(probes);
        req.done = [lk] { lk->done_one(); };
        svc->submit(std::move(req));
        while (lk->remaining > 0) co_await lk->wq.wait(ctx.thread());
      }
      // Store phase: new chunks go through the service queue and land as
      // R copies on their rendezvous-placement homes' devices (restart
      // reads will charge whichever home survives). Dedup hits normally
      // cost nothing — but a hit on a chunk whose every replica died with
      // its node would pin permanently unrestorable data into this
      // generation's manifest, so those are re-stored over the survivors:
      // the store heals forward as generations land.
      std::map<NodeId, u64> home_bytes;
      const size_t fresh = delta.stored_chunks.size();
      auto to_store = std::move(delta.stored_chunks);
      if (svc->placement().any_dead()) {  // nothing can be lost otherwise
        std::set<ckptstore::ChunkKey> healed;
        for (const auto& [key, bytes] : delta.dup_chunks) {
          // lost(), not !available(): a dup hit on a key some rank's
          // Store is still carrying this round is merely unrecorded, not
          // lost. dup_chunks holds one entry per *reference* (shared zero
          // chunks recur across segments) — heal each lost key once.
          if (svc->placement().lost(key) && healed.insert(key).second) {
            to_store.emplace_back(key, bytes);
          }
        }
      }
      if (!to_store.empty()) {
        auto st = std::make_shared<sim::CountLatch>(
            static_cast<int>(to_store.size()));
        for (size_t i = 0; i < to_store.size(); ++i) {
          const auto& [key, bytes] = to_store[i];
          ckptstore::StoreRequest req;
          req.op = i < fresh ? ckptstore::StoreOp::kStore
                             : ckptstore::StoreOp::kRestore;
          req.tenant = shared_->opts.tenant_id;
          req.from = p_.node();
          req.keys = {key};
          req.bytes = bytes;
          req.done = [st] { st->done_one(); };
          const auto reply = svc->submit(std::move(req));
          for (const auto& t : reply.targets) home_bytes[t.node] += t.bytes;
        }
        while (st->remaining > 0) co_await st->wq.wait(ctx.thread());
      }
      if (!home_bytes.empty()) {
        auto wr = std::make_shared<sim::CountLatch>(
            static_cast<int>(home_bytes.size()));
        for (const auto& [home, bytes] : home_bytes) {
          k.charge_storage_bg(home, path, bytes, /*is_read=*/false,
                              [wr] { wr->done_one(); });
        }
        while (wr->remaining > 0) co_await wr->wq.wait(ctx.thread());
      }
      // The manifest itself stays a file in this process's ckpt_dir.
      co_await k.charge_storage(ctx.thread(), p_.node(), path,
                                delta.manifest_bytes.size(),
                                /*is_read=*/false);
    } else {
      co_await k.charge_storage(ctx.thread(), p_.node(), path,
                                delta.submitted_bytes, /*is_read=*/false);
    }
    if (shared_->opts.sync == SyncMode::kSyncAfter) {
      co_await k.sync_storage(ctx.thread(), p_.node(), path);
    }
    // Retention: drop generations beyond the keep window and trim the
    // reclaimed chunk bytes from the store device. The service trims each
    // dead chunk from the placement homes that actually hold it (one
    // DropOwner-style metadata request through its queue); without the
    // service the trim lands on the GC-triggering node's device.
    if (svc) {
      // Per-tenant retention: scope the GC pass to this tenant's owner
      // namespace, so each tenant applies its own keep-last-N without
      // touching the generations of tenants sharing the store.
      std::vector<ckptstore::Repository::ReclaimedChunk> dead;
      const u64 reclaimed = repo.collect_garbage(
          shared_->opts.keep_generations, &dead,
          ckptstore::tenant_prefix(shared_->opts.tenant_id));
      if (reclaimed > 0) {
        for (const auto& rc : dead) {
          // One Drop RPC per reclaimed chunk, routed to the shard that
          // owns the key; the trim lands on the placement homes that
          // actually hold the copies.
          ckptstore::StoreRequest dr;
          dr.op = ckptstore::StoreOp::kDrop;
          dr.tenant = shared_->opts.tenant_id;
          dr.from = p_.node();
          dr.keys = {rc.key};
          dr.bytes = rc.bytes;
          svc->submit(std::move(dr));
          for (NodeId home : svc->placement().forget(rc.key)) {
            k.discard_storage(home, path, rc.bytes);
          }
        }
      }
    } else {
      const u64 reclaimed =
          repo.collect_garbage(shared_->opts.keep_generations);
      if (reclaimed > 0) k.discard_storage(p_.node(), path, reclaimed);
    }

    Msg stats;
    stats.type = MsgType::kImageStats;
    stats.upid = upid_;
    stats.a = round;
    stats.b = p_.node();
    stats.ua = delta.virtual_uncompressed;
    stats.s = path;
    ByteWriter bw;
    bw.put_u64(delta.submitted_bytes);  // chunks + manifest actually written
    bw.put_u64(delta.total_chunks);
    bw.put_u64(delta.new_chunks);
    bw.put_u64(delta.dup_chunk_bytes);  // logical bytes dedup answered
    bw.put_u64(delta.new_chunk_bytes);      // post-codec stored bytes
    bw.put_u64(delta.new_logical_bytes());  // pre-codec chunked bytes
    bw.put_u64(0);                          // flags: synchronous drain
    stats.blob = bw.take();
    co_await send_msg(k, ctx.thread(), *coord_sock(), stats);
    co_return;
  }

  mtcp::EncodedImage enc = mtcp::encode(img, shared_->opts.codec);

  if (shared_->opts.forked_checkpointing) {
    // §5.3: fork a child; the child compresses and writes while the parent
    // resumes. Copy-on-write makes the fork cheap; the child's compression
    // occupies a core via the fluid-share CPU model.
    const double rss_mb =
        static_cast<double>(p_.mem().total_bytes()) / (1024.0 * 1024.0);
    co_await ctx.sleep(params::kForkBase +
                       static_cast<SimTime>(rss_mb *
                                            static_cast<double>(
                                                params::kForkPerMb)));
    inode->data = sim::ByteImage(enc.bytes.size());
    inode->data.write(0, enc.bytes);
    auto shared = shared_;
    auto* kp = &k;
    const NodeId node = p_.node();
    const u64 charge = enc.virtual_compressed;
    k.node(p_.node())
        .cpu()
        .submit(enc.assemble_seconds + enc.compress_seconds,
                [kp, node, path, charge, shared, round] {
                  kp->charge_storage_bg(
                      node, path, charge, /*is_read=*/false,
                      [kp, shared, round] {
                        auto& r = shared->stats.rounds[static_cast<size_t>(
                            round)];
                        r.background_done =
                            std::max(r.background_done, kp->loop().now());
                      });
                });
  } else {
    co_await ctx.cpu(enc.assemble_seconds + enc.compress_seconds);
    inode->data = sim::ByteImage(enc.bytes.size());
    inode->data.write(0, enc.bytes);
    co_await k.charge_storage(ctx.thread(), p_.node(), path,
                              enc.virtual_compressed, /*is_read=*/false);
    if (shared_->opts.sync == SyncMode::kSyncAfter) {
      co_await k.sync_storage(ctx.thread(), p_.node(), path);
    }
  }

  Msg stats;
  stats.type = MsgType::kImageStats;
  stats.upid = upid_;
  stats.a = round;
  stats.b = p_.node();
  stats.ua = enc.virtual_uncompressed;
  stats.s = path;
  ByteWriter bw;
  bw.put_u64(enc.virtual_compressed);
  stats.blob = bw.take();
  co_await send_msg(k, ctx.thread(), *coord_sock(), stats);
}

Task<void> Hijack::do_checkpoint(sim::ProcessCtx& ctx, int round) {
  // dmtcpaware: the application may briefly delay checkpoints around a
  // critical section.
  while (delay_count_ > 0) {
    co_await ctx.sleep(200 * timeconst::kMicrosecond);
  }
  if (hook_pre_) hook_pre_();

  // Stage 2: suspend user threads; save fd owners (§4.3).
  suspend_user_threads();
  int nthreads = 0;
  for (auto& t : p_.threads()) {
    if (t->alive() && t->kind() != sim::ThreadKind::kManager) ++nthreads;
  }
  flush_accept_backlogs();
  co_await ctx.sleep(params::kSuspendBase +
                     nthreads * params::kSuspendPerThread);
  co_await barrier(ctx, barrier::kSuspended);

  // Stage 3: elect shared-FD leaders via the F_SETOWN trick.
  int nsock = 0;
  for (const auto& [fd, of] : p_.fds().entries()) {
    if (of->dmtcp_internal || of->vnode->kind() != sim::VKind::kTcp) continue;
    of->fown_saved = of->fown_pid;
    of->fown_pid = p_.pid();  // last writer wins the election
    ++nsock;
  }
  co_await ctx.sleep(params::kElectBase + nsock * params::kElectPerFd);
  co_await barrier(ctx, barrier::kElected);

  // Stage 4: drain kernel buffers; handshake; write connection table.
  ConnTable table = build_conn_table();
  co_await drain_all(ctx, table);
  co_await barrier(ctx, barrier::kDrained);

  // Stage 5: write the checkpoint image.
  co_await write_image(ctx, round, table);
  co_await barrier(ctx, barrier::kCheckpointed);

  // Stage 6: refill kernel buffers.
  co_await refill_all(ctx, table);
  co_await barrier(ctx, barrier::kRefilled);

  // Stage 7: restore F_SETOWN owners and resume user threads.
  for (const auto& [fd, of] : p_.fds().entries()) {
    if (of->dmtcp_internal || of->vnode->kind() != sim::VKind::kTcp) continue;
    of->fown_pid = of->fown_saved;
  }
  if (hook_post_) hook_post_();
  resume_user_threads();
  ++generations_;
}

Task<void> Hijack::restart_resume(sim::ProcessCtx& ctx) {
  // §4.4 step 5: "the user process will resume at Barrier 5 of the
  // checkpoint algorithm", then refill (step 6) and resume (step 7).
  co_await barrier(ctx, "restart:checkpointed", restart_expected_);
  co_await refill_all(ctx, restored_table_);
  co_await barrier(ctx, "restart:refilled", restart_expected_);
  for (const auto& rec : restored_table_.conns) {
    if (auto of = desc_by_id(rec.desc_id)) of->fown_pid = rec.fown_saved;
  }
  // Re-establish the original parent/child link (pid virtualization, §4.5):
  // the vpid map is complete once every restored process has passed the
  // global barrier above. Without this, an exiting restored child would be
  // auto-reaped (its fork parent is the defunct restart process).
  if (auto it = shared_->vpid_map.find(virt_ppid_);
      it != shared_->vpid_map.end()) {
    if (sim::Process* parent = p_.kernel().find_process(it->second);
        parent && parent->state() == sim::ProcState::kRunning) {
      p_.set_ppid(parent->pid());
      parent->children().push_back(p_.pid());
    }
  }
  if (hook_post_restart_) hook_post_restart_();
  resume_user_threads();
  ++generations_;
}

}  // namespace dsim::core
