#include "core/conn_table.h"

namespace dsim::core {

void ConnRecord::serialize(ByteWriter& w) const {
  w.put_u64(desc_id);
  w.put_u8(static_cast<u8>(type));
  w.put_u64(offset);
  w.put_i32(fown_saved);
  w.put_string(path);
  conn_id.serialize(w);
  w.put_bool(is_acceptor);
  w.put_bool(unix_domain);
  w.put_bool(promoted_pipe);
  w.put_u16(listen_port);
  w.put_bool(drain_leader);
  w.put_bool(peer_gone);
  w.put_blob(drained);
  w.put_i32(pty_id);
  w.put_bool(termios.icanon);
  w.put_bool(termios.echo);
  w.put_bool(termios.isig);
  w.put_u8(termios.veof);
  w.put_u8(termios.vintr);
}

ConnRecord ConnRecord::deserialize(ByteReader& r) {
  ConnRecord c;
  c.desc_id = r.get_u64();
  c.type = static_cast<ConnType>(r.get_u8());
  c.offset = r.get_u64();
  c.fown_saved = r.get_i32();
  c.path = r.get_string();
  c.conn_id = sim::ConnId::deserialize(r);
  c.is_acceptor = r.get_bool();
  c.unix_domain = r.get_bool();
  c.promoted_pipe = r.get_bool();
  c.listen_port = r.get_u16();
  c.drain_leader = r.get_bool();
  c.peer_gone = r.get_bool();
  c.drained = r.get_blob();
  c.pty_id = r.get_i32();
  c.termios.icanon = r.get_bool();
  c.termios.echo = r.get_bool();
  c.termios.isig = r.get_bool();
  c.termios.veof = r.get_u8();
  c.termios.vintr = r.get_u8();
  return c;
}

std::vector<std::byte> ConnTable::encode() const {
  ByteWriter w;
  w.put_u64(fds.size());
  for (const auto& f : fds) {
    w.put_i32(f.fd);
    w.put_u64(f.desc_id);
  }
  w.put_u64(conns.size());
  for (const auto& c : conns) c.serialize(w);
  w.put_u64(preaccepted.size());
  for (const auto& [desc, fd] : preaccepted) {
    w.put_u64(desc);
    w.put_i32(fd);
  }
  return w.take();
}

ConnTable ConnTable::decode(std::span<const std::byte> bytes) {
  ByteReader r(bytes);
  ConnTable t;
  const u64 nf = r.get_u64();
  for (u64 i = 0; i < nf; ++i) {
    FdEntry e;
    e.fd = r.get_i32();
    e.desc_id = r.get_u64();
    t.fds.push_back(e);
  }
  const u64 nc = r.get_u64();
  for (u64 i = 0; i < nc; ++i) t.conns.push_back(ConnRecord::deserialize(r));
  const u64 np = r.get_u64();
  for (u64 i = 0; i < np; ++i) {
    const u64 desc = r.get_u64();
    const i32 fd = r.get_i32();
    t.preaccepted.emplace_back(desc, fd);
  }
  return t;
}

}  // namespace dsim::core
