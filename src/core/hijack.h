// The DMTCP hijack library: per-process checkpoint runtime.
//
// Injected at process start (the simulator's LD_PRELOAD, §4.2), it:
//   - spawns the checkpoint manager thread;
//   - connects to the coordinator and registers the process;
//   - wraps the syscalls DMTCP cares about (pipe promotion §4.5, remote
//     spawn interception §3, pid virtualization §4.5, pre-accepted
//     connection stashing);
//   - executes the seven checkpoint stages with six barriers (§4.3) and the
//     resume-from-restart path (§4.4 steps 5-7).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "core/conn_table.h"
#include "core/ids.h"
#include "core/protocol.h"
#include "core/stats.h"
#include "sim/interposer.h"
#include "sim/pctx.h"

namespace dsim::core {

using sim::Task;

class Hijack final : public sim::Interposer {
 public:
  /// Fresh attach at process start.
  Hijack(sim::Process& p, std::shared_ptr<DmtcpShared> shared);
  /// Reconstructed by dmtcp_restart for a restored process. `table` carries
  /// the connection table (with drained data) from the checkpoint image.
  static std::shared_ptr<Hijack> make_restored(
      sim::Process& p, std::shared_ptr<DmtcpShared> shared, ConnTable table,
      Pid vpid, Pid virt_ppid, UniquePid upid, int expected_procs);

  // --- Interposer lifecycle ---
  void on_attach() override;
  void on_process_exit() override;

  // --- wrapped syscalls ---
  Task<std::pair<Fd, Fd>> wrap_pipe(sim::ProcessCtx& ctx) override;
  Task<Pid> wrap_spawn(sim::ProcessCtx& ctx, NodeId node, std::string prog,
                       std::vector<std::string> argv,
                       std::map<std::string, std::string> env) override;
  Pid wrap_getpid(sim::ProcessCtx& ctx) override;
  Task<int> wrap_waitpid(sim::ProcessCtx& ctx, Pid child) override;
  Task<Fd> wrap_accept(sim::ProcessCtx& ctx, Fd fd) override;

  // --- dmtcpaware surface (see core/dmtcpaware.h) ---
  void delay_lock() { ++delay_count_; }
  void delay_unlock() { --delay_count_; }
  int delay_count() const { return delay_count_; }
  void set_hooks(std::function<void()> pre, std::function<void()> post,
                 std::function<void()> post_restart) {
    hook_pre_ = std::move(pre);
    hook_post_ = std::move(post);
    hook_post_restart_ = std::move(post_restart);
  }
  int completed_generations() const { return generations_; }

  UniquePid upid() const { return upid_; }
  Pid vpid() const { return vpid_; }
  DmtcpShared& shared() { return *shared_; }
  sim::Process& process() { return p_; }

 private:
  friend Task<void> hijack_manager_entry(Hijack* h, sim::ProcessCtx* ctx);

  Task<void> manager_main(sim::ProcessCtx& ctx);
  Task<void> do_checkpoint(sim::ProcessCtx& ctx, int round);
  Task<void> restart_resume(sim::ProcessCtx& ctx);

  // Stage helpers.
  void suspend_user_threads();
  void resume_user_threads();
  int flush_accept_backlogs();
  ConnTable build_conn_table();
  /// Concurrent token-flush / drain / handshake over all led sockets.
  Task<void> drain_all(sim::ProcessCtx& ctx, ConnTable& table);
  /// Concurrent refill: exchange drained blobs and re-send (§4.3 step 6).
  Task<void> refill_all(sim::ProcessCtx& ctx, const ConnTable& table);
  Task<void> write_image(sim::ProcessCtx& ctx, int round,
                         const ConnTable& table);
  Task<void> barrier(sim::ProcessCtx& ctx, const std::string& name,
                     int expected = 0);
  std::string ckpt_path() const;
  sim::TcpVNode* coord_sock();
  sim::TcpVNode* vnode_for_desc(u64 desc_id);
  std::shared_ptr<sim::OpenFile> desc_by_id(u64 desc_id);

  sim::Process& p_;
  std::shared_ptr<DmtcpShared> shared_;
  Pid vpid_ = kNoPid;
  Pid virt_ppid_ = kNoPid;
  UniquePid upid_{};
  Fd coord_fd_ = kNoFd;
  bool is_restored_ = false;
  int restart_expected_ = 0;
  ConnTable restored_table_;
  int delay_count_ = 0;
  int generations_ = 0;
  /// Fresh attach found its pid already used as a virtual pid (§4.5); the
  /// parent's fork wrapper kills this child and forks again.
  bool conflicted_ = false;
  std::function<void()> hook_pre_;
  std::function<void()> hook_post_;
  std::function<void()> hook_post_restart_;
  /// Pre-accepted connections flushed from listener backlogs at suspend
  /// time: listener description id -> fds ready to hand to accept().
  std::map<u64, std::deque<Fd>> preaccepted_;
};

}  // namespace dsim::core
