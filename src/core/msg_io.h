// Length-prefixed Msg I/O over simulated TCP (manager plane).
//
// Managers and the coordinator are never checkpointed mid-message (managers
// block at "barrier 1" between rounds; the coordinator is outside the
// computation), so plain blocking loops are sufficient here — no progress
// registers needed.
#pragma once

#include <optional>

#include "core/protocol.h"
#include "sim/kernel.h"

namespace dsim::core {

using sim::Task;

Task<void> send_msg(sim::Kernel& k, sim::Thread& t, sim::TcpVNode& s,
                    const Msg& m);

/// Returns nullopt on EOF (peer closed).
Task<std::optional<Msg>> recv_msg(sim::Kernel& k, sim::Thread& t,
                                  sim::TcpVNode& s);

}  // namespace dsim::core
