// dmtcpaware: the optional application programming interface (§3.1).
//
// "This library allows the application to: test if it is running under
// DMTCP; request checkpoints; delay checkpoints during a critical section
// of code; query DMTCP status; and insert hook functions before/after
// checkpointing or restart." Programs link against these free functions;
// all of them degrade gracefully when the process runs without DMTCP.
#pragma once

#include <functional>

#include "sim/pctx.h"
#include "sim/task.h"

namespace dsim::core {

/// True if the calling process runs under checkpoint control.
bool dmtcp_is_enabled(sim::ProcessCtx& ctx);

/// Request a checkpoint of the whole computation and wait until it
/// completes. No-op (returns false) without DMTCP.
sim::Task<bool> dmtcp_request_checkpoint(sim::ProcessCtx& ctx);

/// Delay any checkpoint while in a critical section. RAII-style guard pair.
void dmtcp_delay_checkpoints_lock(sim::ProcessCtx& ctx);
void dmtcp_delay_checkpoints_unlock(sim::ProcessCtx& ctx);

/// Scoped critical section helper.
class DmtcpDelayGuard {
 public:
  explicit DmtcpDelayGuard(sim::ProcessCtx& ctx) : ctx_(ctx) {
    dmtcp_delay_checkpoints_lock(ctx_);
  }
  ~DmtcpDelayGuard() { dmtcp_delay_checkpoints_unlock(ctx_); }
  DmtcpDelayGuard(const DmtcpDelayGuard&) = delete;
  DmtcpDelayGuard& operator=(const DmtcpDelayGuard&) = delete;

 private:
  sim::ProcessCtx& ctx_;
};

struct DmtcpStatus {
  bool enabled = false;
  int checkpoint_generation = 0;  // completed checkpoints in this process
  Pid virtual_pid = kNoPid;
};
DmtcpStatus dmtcp_status(sim::ProcessCtx& ctx);

/// Install hook functions run before a checkpoint, after a checkpoint
/// resume, and after a restart (§3.1). Restored programs must re-install
/// their hooks (function objects are not part of the checkpointed state —
/// same contract as real dmtcpaware callbacks after exec).
void dmtcp_install_hooks(sim::ProcessCtx& ctx, std::function<void()> pre_ckpt,
                         std::function<void()> post_ckpt,
                         std::function<void()> post_restart);

}  // namespace dsim::core
