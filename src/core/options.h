// DMTCP configuration knobs exposed by dmtcp_checkpoint's command line.
#pragma once

#include <cstdlib>
#include <string>
#include <vector>

#include "compress/compressor.h"
#include "util/types.h"

namespace dsim::core {

/// What to do about kernel write buffers after a checkpoint (§5.2).
enum class SyncMode : u8 {
  kNone = 0,          // default; matches the paper's timing methodology
  kSyncAfter = 1,     // sync() before resuming user threads (+0.79 s)
  kSyncPrevious = 2,  // sync the *previous* checkpoint instead
};

struct DmtcpOptions {
  NodeId coord_node = 0;
  u16 coord_port = 7779;
  compress::CodecKind codec = compress::CodecKind::kGzipish;  // gzip default
  bool forked_checkpointing = false;  // fork + copy-on-write writer (§5.3)
  SyncMode sync = SyncMode::kNone;
  std::string ckpt_dir = "/ckpt";     // "/shared/ckpt" → SAN/NFS (Fig. 5b)
  SimTime interval = 0;               // --interval: periodic checkpoints

  // Incremental content-addressed checkpoint store (src/ckptstore/).
  bool incremental = false;     // --incremental: write chunk deltas only
  u64 chunk_bytes = 64 * 1024;  // --chunk-bytes: power-of-two chunk size
  int keep_generations = 2;     // --keep-generations: GC retention window

  /// Validate the option set; returns "" when consistent, else a
  /// human-readable rejection (dmtcp_checkpoint refuses to launch on it).
  std::string validate() const {
    if (chunk_bytes == 0 || (chunk_bytes & (chunk_bytes - 1)) != 0) {
      return "--chunk-bytes must be a non-zero power of two (got " +
             std::to_string(chunk_bytes) + ")";
    }
    if (keep_generations < 1) {
      return "--keep-generations must keep at least one generation (got " +
             std::to_string(keep_generations) + ")";
    }
    if (incremental && forked_checkpointing) {
      return "--incremental and forked checkpointing are mutually "
             "exclusive (the chunk store serializes in-line)";
    }
    return "";
  }

  /// Apply dmtcp_checkpoint command-line flags. Recognized flags are
  /// consumed in place; returns "" on success, else a parse error.
  std::string apply_flags(std::vector<std::string>& argv) {
    std::vector<std::string> rest;
    std::string err;
    for (size_t i = 0; i < argv.size(); ++i) {
      const std::string& a = argv[i];
      auto intval = [&](const char* flag) -> long {
        if (i + 1 >= argv.size()) {
          err = std::string(flag) + " requires a value";
          return -1;
        }
        const std::string& v = argv[++i];
        char* end = nullptr;
        const long n = std::strtol(v.c_str(), &end, 10);
        if (end == v.c_str() || *end != '\0' || n < 0) {
          err = std::string(flag) + ": invalid value '" + v + "'";
          return -1;
        }
        return n;
      };
      if (a == "--incremental") {
        incremental = true;
      } else if (a == "--chunk-bytes") {
        const long n = intval("--chunk-bytes");
        if (!err.empty()) return err;
        chunk_bytes = static_cast<u64>(n);
      } else if (a == "--keep-generations") {
        const long n = intval("--keep-generations");
        if (!err.empty()) return err;
        keep_generations = static_cast<int>(n);
      } else {
        rest.push_back(a);
      }
    }
    argv = std::move(rest);
    return validate();
  }
};

}  // namespace dsim::core
