// DMTCP configuration knobs exposed by dmtcp_checkpoint's command line.
#pragma once

#include <cstdlib>
#include <string>
#include <vector>

#include "ckptstore/cdc.h"
#include "compress/compressor.h"
#include "obs/slo.h"
#include "util/types.h"

namespace dsim::core {

/// What to do about kernel write buffers after a checkpoint (§5.2).
enum class SyncMode : u8 {
  kNone = 0,          // default; matches the paper's timing methodology
  kSyncAfter = 1,     // sync() before resuming user threads (+0.79 s)
  kSyncPrevious = 2,  // sync the *previous* checkpoint instead
};

/// How far chunk dedup reaches in incremental mode.
enum class DedupScope : u8 {
  kNode = 0,     // one repository per node-local checkpoint directory
  kCluster = 1,  // one computation-wide repository (stdchk-style store
                 // service): identical chunks from different processes on
                 // different nodes are stored exactly once
};

/// Validate a chunking configuration with a user-facing message ("" when
/// consistent). The single source of truth for the `--chunk-bytes` and CDC
/// min<=avg<=max bounds: dmtcp_checkpoint rejects bad flags through it at
/// launch, and dmtcp_restart rejects corrupt or hand-edited manifests
/// through it before trusting their recorded parameters.
inline std::string validate_chunking(const ckptstore::ChunkingParams& p) {
  if (p.mode != ckptstore::ChunkingMode::kFixed &&
      p.mode != ckptstore::ChunkingMode::kCdc &&
      p.mode != ckptstore::ChunkingMode::kFastCdc) {
    return "--chunking must be 'fixed', 'cdc' or 'fastcdc'";
  }
  if (p.fixed_bytes == 0 || (p.fixed_bytes & (p.fixed_bytes - 1)) != 0) {
    return "--chunk-bytes must be a non-zero power of two (got " +
           std::to_string(p.fixed_bytes) + ")";
  }
  if (p.mode != ckptstore::ChunkingMode::kFixed) {
    if (p.avg_bytes == 0 || (p.avg_bytes & (p.avg_bytes - 1)) != 0) {
      return "--cdc-avg-bytes must be a non-zero power of two (got " +
             std::to_string(p.avg_bytes) + ")";
    }
    if (p.min_bytes == 0 || p.min_bytes > p.avg_bytes ||
        p.avg_bytes > p.max_bytes) {
      return "CDC chunk bounds must satisfy 0 < min <= avg <= max (got "
             "min=" + std::to_string(p.min_bytes) +
             " avg=" + std::to_string(p.avg_bytes) +
             " max=" + std::to_string(p.max_bytes) + ")";
    }
  }
  return "";
}

/// Backpressure policy when a checkpoint round starts while the previous
/// async drain is still in flight.
enum class AsyncBackpressure : u8 {
  kBlock = 0,  // wait for the previous drain (app pauses until it finishes)
  kSkip = 1,   // skip this round for the still-draining process
};

/// Every knob of the incremental chunk store and its service stack —
/// chunking, retention, dedup scope, redundancy (replicas/erasure/cold
/// tier), service topology (shards/endpoints/batching), background daemons
/// (scrub), the async drain pipeline, and multi-tenant policy (tenant id,
/// DRR weight, admission budget, fair queueing) — in one struct with one
/// validate(). These ~20 flags grew across PRs 3-8 with their interactions
/// checked ad hoc or not at all; the single validate() is now the only
/// place nonsense combinations are rejected, with a message naming the
/// flags involved. DmtcpOptions inherits this, so every `opts.X` call site
/// reads the same members it always did.
struct StoreConfig {
  /// --ckpt-async: copy-on-write snapshot + background encode/store pipeline
  /// (src/ckptasync/). The app is charged only the fork/COW snapshot cost at
  /// checkpoint time; chunking, compression and store RPCs drain in the
  /// background. Requires --incremental (the pipeline streams chunk deltas).
  bool ckpt_async = false;
  /// --async-backpressure: what happens when a round starts before the
  /// previous drain finished ('block' or 'skip').
  AsyncBackpressure async_backpressure = AsyncBackpressure::kBlock;
  /// --compress-bw: background compress-stage input rate in bytes/second
  /// for the async pipeline's gzip-class baseline (0 = model default
  /// kCompressBw). Other codecs scale by compress::codec_cost_factor.
  double compress_bw = 0;
  u64 chunk_bytes = 64 * 1024;  // --chunk-bytes: power-of-two chunk size
  int keep_generations = 2;     // --keep-generations: GC retention window
  /// --chunking: fixed-size spans or content-defined cutpoints.
  ckptstore::ChunkingMode chunking = ckptstore::ChunkingMode::kFixed;
  u64 cdc_min_bytes = 16 * 1024;   // --cdc-min-bytes: CDC chunk floor
  u64 cdc_avg_bytes = 64 * 1024;   // --cdc-avg-bytes: target (power of two)
  u64 cdc_max_bytes = 256 * 1024;  // --cdc-max-bytes: CDC chunk ceiling
  /// --dedup-scope: node-local repositories or one computation-wide store.
  DedupScope dedup_scope = DedupScope::kNode;
  /// --chunk-replicas: copies of each chunk across node-local devices
  /// under the cluster-wide chunk-store service. 1 = no redundancy (a
  /// node failure loses its chunks and forces a full re-store); R > 1
  /// survives R-1 node failures per chunk at R× write amplification.
  int chunk_replicas = 1;
  /// --store-node: node hosting the first chunk-store shard endpoint
  /// (kStoreNodeCoord = wherever the coordinator runs). Validated against
  /// the cluster node count by validate_cluster() at launch — service RPCs
  /// charge the endpoint's message CPU and NIC, so an out-of-range endpoint
  /// would misattribute those charges.
  static constexpr i32 kStoreNodeCoord = -1;
  i32 store_node = kStoreNodeCoord;
  /// --store-shards: service endpoints the chunk store is sharded across.
  /// Chunk keys rendezvous-hash to shards; each shard owns its own request
  /// queue, so the lookup contention knee moves right with S. The
  /// coordinator assigns shard s to node (store_node + s) mod nodes.
  int store_shards = 1;
  /// --lookup-batch: dedup-probe keys carried per lookup RPC. K > 1
  /// amortizes the RPC header and endpoint message CPU over K probes at the
  /// cost of per-key latency (a key's response waits for its whole batch).
  int lookup_batch = 1;
  /// --scrub-chunks: resident chunks verified against their manifest CRCs
  /// per checkpoint round (round-robin cursor), through the shard queues.
  /// 0 disables scrubbing. Corrupt chunks are quarantined for forward
  /// re-store; degraded stragglers are routed to the heal daemon.
  u64 scrub_chunks = 0;
  /// --erasure K,M: Reed-Solomon (k data, m parity) fragment striping
  /// instead of replica copies — each stored chunk splits into k+m
  /// fragments on distinct nodes, any k of which reconstruct it. Survives
  /// m node losses at (k+m)/k byte overhead (vs R× for --chunk-replicas).
  /// 0,0 keeps replication. Mutually exclusive with --chunk-replicas > 1.
  int erasure_k = 0;
  int erasure_m = 0;
  /// --cold-erasure K,M: the wider profile chunks referenced only by
  /// generations older than --hot-generations re-stripe to in the
  /// background (the cold tier). Requires --erasure and --hot-generations.
  int cold_erasure_k = 0;
  int cold_erasure_m = 0;
  /// --hot-generations N: per owner, the newest N live generations count
  /// as hot; chunks referenced only by older ones are demotion candidates.
  int hot_generations = 0;
  /// --tenant N: this computation's tenant id in a shared multi-tenant
  /// chunk store. Manifest/GC ownership is namespaced per tenant
  /// ("t<id>/<vpid>") while chunk content dedups across tenants; the
  /// service's fair-queueing scheduler and admission control key on it.
  int tenant_id = 0;
  /// --tenant-weight W: this tenant's deficit-round-robin share of each
  /// shard's index queue within its QoS band (relative to the other
  /// tenants' weights; 1.0 = equal share).
  double tenant_weight = 1.0;
  /// --tenant-budget-mb N: admission-control budget — at most N MiB of
  /// this tenant's stores in flight at the service; over-budget stores
  /// queue at the tenant edge without occupying shard slots. 0 = unlimited.
  u64 tenant_budget_bytes = 0;
  /// --fair-queueing on|off: per-shard weighted DRR + QoS bands (on,
  /// default) vs the single arrival FIFO per shard (off — the ablation arm
  /// bench_tenants measures victim-tenant starvation against).
  bool fair_queueing = true;

  /// Validate every store knob and their interactions; returns "" when
  /// consistent, else a human-readable rejection. `incremental`, `forked`
  /// and `cluster_store` are the launch-level facts the combinations
  /// depend on (the chunk-store service only exists for an incremental,
  /// cluster-wide store).
  std::string validate_store(bool incremental, bool forked,
                             bool cluster_store) const {
    if (keep_generations < 1) {
      return "--keep-generations must keep at least one generation (got " +
             std::to_string(keep_generations) + ")";
    }
    if (chunk_replicas < 1) {
      return "--chunk-replicas must place at least one copy (got " +
             std::to_string(chunk_replicas) + ")";
    }
    if (store_shards < 1) {
      return "--store-shards must keep at least one service shard (got " +
             std::to_string(store_shards) + ")";
    }
    if (lookup_batch < 1) {
      return "--lookup-batch must carry at least one key per RPC (got " +
             std::to_string(lookup_batch) + ")";
    }
    if (chunk_replicas > 1 && !cluster_store) {
      return "--chunk-replicas > 1 requires a cluster-wide store "
             "(--dedup-scope cluster or a /shared checkpoint directory): "
             "replica placement is a property of the store service";
    }
    if ((store_shards > 1 || lookup_batch > 1 || scrub_chunks > 0 ||
         store_node >= 0) &&
        !cluster_store) {
      return "--store-node/--store-shards/--lookup-batch/--scrub-chunks "
             "configure the cluster-wide chunk-store service (--dedup-scope "
             "cluster or a /shared checkpoint directory)";
    }
    if (!incremental &&
        (chunk_replicas > 1 || store_node >= 0 || store_shards > 1 ||
         lookup_batch > 1 || scrub_chunks > 0)) {
      return "--chunk-replicas/--store-node/--store-shards/--lookup-batch/"
             "--scrub-chunks require --incremental: the chunk-store service "
             "only exists for the incremental store";
    }
    if (erasure_k != 0 || erasure_m != 0) {
      if (erasure_k < 2 || erasure_m < 1 || erasure_k + erasure_m > 32) {
        return "--erasure K,M must satisfy 2 <= K, 1 <= M, K+M <= 32 (got " +
               std::to_string(erasure_k) + "," + std::to_string(erasure_m) +
               ")";
      }
      if (chunk_replicas > 1) {
        return "--erasure and --chunk-replicas > 1 are mutually exclusive: "
               "pick one redundancy scheme";
      }
      if (!incremental || !cluster_store) {
        return "--erasure requires --incremental and a cluster-wide store "
               "(--dedup-scope cluster or a /shared checkpoint directory): "
               "fragments are placed by the store service";
      }
    }
    if (cold_erasure_k != 0 || cold_erasure_m != 0) {
      if (erasure_k == 0) {
        return "--cold-erasure requires --erasure: the cold tier re-stripes "
               "erasure-coded chunks to a wider profile";
      }
      if (cold_erasure_k < 2 || cold_erasure_m < 1 ||
          cold_erasure_k + cold_erasure_m > 32) {
        return "--cold-erasure K,M must satisfy 2 <= K, 1 <= M, K+M <= 32 "
               "(got " + std::to_string(cold_erasure_k) + "," +
               std::to_string(cold_erasure_m) + ")";
      }
      if (hot_generations < 1) {
        return "--cold-erasure requires --hot-generations >= 1 to define "
               "which generations stay hot";
      }
    }
    if (hot_generations > 0 && cold_erasure_k == 0) {
      return "--hot-generations only matters with --cold-erasure: there is "
             "no cold tier to demote to";
    }
    if (incremental && forked) {
      return "--incremental and forked checkpointing are mutually "
             "exclusive (use --ckpt-async for a background chunk drain)";
    }
    if (ckpt_async && !incremental) {
      return "--ckpt-async requires --incremental: the background pipeline "
             "streams chunk deltas";
    }
    if (ckpt_async && forked) {
      return "--ckpt-async and forked checkpointing are mutually exclusive "
             "(the async pipeline already snapshots copy-on-write)";
    }
    if (compress_bw < 0) {
      return "--compress-bw must be non-negative";
    }
    if (tenant_id < 0) {
      return "--tenant must be a non-negative tenant id (got " +
             std::to_string(tenant_id) + ")";
    }
    if (tenant_weight <= 0) {
      return "--tenant-weight must be positive (got " +
             std::to_string(tenant_weight) + ")";
    }
    if ((tenant_id > 0 || tenant_weight != 1.0 || tenant_budget_bytes > 0) &&
        !(incremental && cluster_store)) {
      return "--tenant/--tenant-weight/--tenant-budget-mb configure the "
             "shared multi-tenant chunk-store service and require "
             "--incremental plus a cluster-wide store (--dedup-scope "
             "cluster or a /shared checkpoint directory)";
    }
    return "";
  }

  /// Validate the store knobs that depend on the cluster shape, known only
  /// at launch. Shard endpoints derive as (store_node + s) mod num_nodes,
  /// so a valid base keeps every shard in range.
  std::string validate_store_cluster(int num_nodes) const {
    if (store_node >= num_nodes) {
      return "--store-node " + std::to_string(store_node) +
             " names a node outside the cluster (" +
             std::to_string(num_nodes) + " node(s))";
    }
    if (erasure_k > 0 && erasure_k + erasure_m > num_nodes) {
      return "--erasure " + std::to_string(erasure_k) + "," +
             std::to_string(erasure_m) + " needs " +
             std::to_string(erasure_k + erasure_m) +
             " distinct fragment nodes but the cluster has " +
             std::to_string(num_nodes);
    }
    if (cold_erasure_k > 0 && cold_erasure_k + cold_erasure_m > num_nodes) {
      return "--cold-erasure " + std::to_string(cold_erasure_k) + "," +
             std::to_string(cold_erasure_m) + " needs " +
             std::to_string(cold_erasure_k + cold_erasure_m) +
             " distinct fragment nodes but the cluster has " +
             std::to_string(num_nodes);
    }
    return "";
  }
};

struct DmtcpOptions : StoreConfig {
  NodeId coord_node = 0;
  u16 coord_port = 7779;
  compress::CodecKind codec = compress::CodecKind::kGzipish;  // gzip default
  bool forked_checkpointing = false;  // fork + copy-on-write writer (§5.3)
  SyncMode sync = SyncMode::kNone;
  std::string ckpt_dir = "/ckpt";     // "/shared/ckpt" → SAN/NFS (Fig. 5b)
  SimTime interval = 0;               // --interval: periodic checkpoints

  // Incremental content-addressed checkpoint store (src/ckptstore/).
  bool incremental = false;     // --incremental: write chunk deltas only
  /// --heartbeat-interval: milliseconds between membership heartbeat
  /// probes from the coordinator's node to every other node. Together with
  /// --heartbeat-misses this sets the failure-detection latency
  /// (~interval x misses) the shard-failover replay machinery absorbs.
  int heartbeat_interval_ms = 10;
  /// --heartbeat-misses: consecutive missed heartbeats before a suspected
  /// node is declared dead (first miss suspects, Nth declares).
  int heartbeat_misses = 3;

  // Observability (src/obs/): deterministic tracing + metrics export.
  /// --trace-out FILE: write a Chrome trace_event JSON trace of every
  /// request's queueing stages at teardown (Perfetto-loadable). Empty =
  /// tracing off (zero-cost: no tracer is even created).
  std::string trace_out;
  /// --metrics-out FILE: write the metrics registry (counters, gauges,
  /// histograms with p50/p90/p99) as JSON at teardown. Also arms the
  /// tracer, since stage histograms come from it.
  std::string metrics_out;
  /// --health-out FILE: write the round-health document — per-round
  /// metric-delta time-series, per-round/per-restart critical-path blame
  /// reports, and the SLO engine's alert summary — as JSON at teardown.
  /// Arms the tracer (the critical path walks its spans).
  std::string health_out;
  /// --slo "name: expr; ...": declarative health rules evaluated at every
  /// round boundary (see obs/slo.h for the grammar). Empty with
  /// --health-out set installs the default rule set (parked requests
  /// drain to zero by round end; degraded chunks drain within two
  /// rounds). Also arms the health engine without --health-out: alerts
  /// still land in the trace and the engine state is queryable in tests.
  std::string slo;
  /// --log-level LEVEL: runtime log threshold (trace|debug|info|warn|
  /// error|off). Empty = keep the DSIM_LOG_LEVEL environment default.
  std::string log_level;

  /// The health engine (time-series + SLO evaluation + critical path)
  /// runs when either health flag is set.
  bool health_enabled() const { return !health_out.empty() || !slo.empty(); }

  /// One cluster-wide store backs the computation when the checkpoint
  /// directory is explicitly shared (/shared/...) or dedup scope is
  /// cluster. The single source of truth for the predicate — DmtcpShared
  /// and validate() both key on it.
  bool cluster_wide_store() const {
    return ckpt_dir.rfind("/shared", 0) == 0 ||
           dedup_scope == DedupScope::kCluster;
  }

  /// The chunking configuration the encoder consumes and the manifest
  /// records.
  ckptstore::ChunkingParams chunking_params() const {
    ckptstore::ChunkingParams p;
    p.mode = chunking;
    p.fixed_bytes = chunk_bytes;
    p.min_bytes = cdc_min_bytes;
    p.avg_bytes = cdc_avg_bytes;
    p.max_bytes = cdc_max_bytes;
    return p;
  }

  /// Validate the option set; returns "" when consistent, else a
  /// human-readable rejection (dmtcp_checkpoint refuses to launch on it).
  std::string validate() const {
    if (const std::string err = validate_chunking(chunking_params());
        !err.empty()) {
      return err;
    }
    if (heartbeat_interval_ms < 1) {
      return "--heartbeat-interval must be at least 1 ms (got " +
             std::to_string(heartbeat_interval_ms) + ")";
    }
    if (heartbeat_misses < 1) {
      return "--heartbeat-misses must allow at least one miss (got " +
             std::to_string(heartbeat_misses) + ")";
    }
    if (!log_level.empty() && log_level != "trace" && log_level != "debug" &&
        log_level != "info" && log_level != "warn" && log_level != "error" &&
        log_level != "off") {
      return "--log-level: expected 'trace', 'debug', 'info', 'warn', "
             "'error' or 'off', got '" + log_level + "'";
    }
    if (!slo.empty()) {
      // Reject a malformed rule spec at launch, not at the first round
      // boundary mid-run.
      std::vector<obs::SloRule> rules;
      if (const std::string err = obs::SloEngine::parse(slo, &rules);
          !err.empty()) {
        return err;
      }
    }
    return validate_store(incremental, forked_checkpointing,
                          cluster_wide_store());
  }

  /// Validate the options that depend on the cluster shape, known only at
  /// launch. Called by DmtcpControl before any process spawns: an
  /// out-of-range service endpoint used to be caught (by an assert) only
  /// when the coordinator assigned endpoints, after charges could already
  /// be misattributed.
  std::string validate_cluster(int num_nodes) const {
    if (coord_node < 0 || coord_node >= num_nodes) {
      return "coordinator node " + std::to_string(coord_node) +
             " is outside the cluster (" + std::to_string(num_nodes) +
             " node(s))";
    }
    return validate_store_cluster(num_nodes);
  }

  /// Apply dmtcp_checkpoint command-line flags. Recognized flags are
  /// consumed in place; returns "" on success, else a parse error.
  std::string apply_flags(std::vector<std::string>& argv) {
    std::vector<std::string> rest;
    std::string err;
    for (size_t i = 0; i < argv.size(); ++i) {
      const std::string& a = argv[i];
      auto intval = [&](const char* flag) -> long {
        if (i + 1 >= argv.size()) {
          err = std::string(flag) + " requires a value";
          return -1;
        }
        const std::string& v = argv[++i];
        char* end = nullptr;
        const long n = std::strtol(v.c_str(), &end, 10);
        if (end == v.c_str() || *end != '\0' || n < 0) {
          err = std::string(flag) + ": invalid value '" + v + "'";
          return -1;
        }
        return n;
      };
      auto strval = [&](const char* flag) -> std::string {
        if (i + 1 >= argv.size()) {
          err = std::string(flag) + " requires a value";
          return "";
        }
        return argv[++i];
      };
      if (a == "--incremental") {
        incremental = true;
      } else if (a == "--ckpt-async") {
        ckpt_async = true;
      } else if (a == "--async-backpressure") {
        const std::string v = strval("--async-backpressure");
        if (!err.empty()) return err;
        if (v == "block") async_backpressure = AsyncBackpressure::kBlock;
        else if (v == "skip") async_backpressure = AsyncBackpressure::kSkip;
        else
          return "--async-backpressure: expected 'block' or 'skip', got '" +
                 v + "'";
      } else if (a == "--compress") {
        const std::string v = strval("--compress");
        if (!err.empty()) return err;
        if (!compress::parse_codec(v, &codec)) {
          return "--compress: expected 'none', 'lz77', 'huffman' or "
                 "'lz77+huffman', got '" + v + "'";
        }
      } else if (a == "--compress-bw") {
        const long n = intval("--compress-bw");
        if (!err.empty()) return err;
        compress_bw = static_cast<double>(n);
      } else if (a == "--chunk-bytes") {
        const long n = intval("--chunk-bytes");
        if (!err.empty()) return err;
        chunk_bytes = static_cast<u64>(n);
      } else if (a == "--keep-generations") {
        const long n = intval("--keep-generations");
        if (!err.empty()) return err;
        keep_generations = static_cast<int>(n);
      } else if (a == "--chunking") {
        const std::string v = strval("--chunking");
        if (!err.empty()) return err;
        if (v == "fixed") chunking = ckptstore::ChunkingMode::kFixed;
        else if (v == "cdc") chunking = ckptstore::ChunkingMode::kCdc;
        else if (v == "fastcdc") chunking = ckptstore::ChunkingMode::kFastCdc;
        else
          return "--chunking: expected 'fixed', 'cdc' or 'fastcdc', got '" +
                 v + "'";
      } else if (a == "--cdc-min-bytes") {
        const long n = intval("--cdc-min-bytes");
        if (!err.empty()) return err;
        cdc_min_bytes = static_cast<u64>(n);
      } else if (a == "--cdc-avg-bytes") {
        const long n = intval("--cdc-avg-bytes");
        if (!err.empty()) return err;
        cdc_avg_bytes = static_cast<u64>(n);
      } else if (a == "--cdc-max-bytes") {
        const long n = intval("--cdc-max-bytes");
        if (!err.empty()) return err;
        cdc_max_bytes = static_cast<u64>(n);
      } else if (a == "--dedup-scope") {
        const std::string v = strval("--dedup-scope");
        if (!err.empty()) return err;
        if (v == "node") dedup_scope = DedupScope::kNode;
        else if (v == "cluster") dedup_scope = DedupScope::kCluster;
        else
          return "--dedup-scope: expected 'node' or 'cluster', got '" + v +
                 "'";
      } else if (a == "--chunk-replicas") {
        const long n = intval("--chunk-replicas");
        if (!err.empty()) return err;
        chunk_replicas = static_cast<int>(n);
      } else if (a == "--store-node") {
        const long n = intval("--store-node");
        if (!err.empty()) return err;
        store_node = static_cast<i32>(n);
      } else if (a == "--store-shards") {
        const long n = intval("--store-shards");
        if (!err.empty()) return err;
        store_shards = static_cast<int>(n);
      } else if (a == "--lookup-batch") {
        const long n = intval("--lookup-batch");
        if (!err.empty()) return err;
        lookup_batch = static_cast<int>(n);
      } else if (a == "--scrub-chunks") {
        const long n = intval("--scrub-chunks");
        if (!err.empty()) return err;
        scrub_chunks = static_cast<u64>(n);
      } else if (a == "--erasure" || a == "--cold-erasure") {
        const std::string flag = a;
        const std::string v = strval(flag.c_str());
        if (!err.empty()) return err;
        const size_t comma = v.find(',');
        char* kend = nullptr;
        char* mend = nullptr;
        const long k = comma == std::string::npos
                           ? -1
                           : std::strtol(v.c_str(), &kend, 10);
        const long m = comma == std::string::npos
                           ? -1
                           : std::strtol(v.c_str() + comma + 1, &mend, 10);
        if (comma == std::string::npos || kend != v.c_str() + comma ||
            mend == nullptr || *mend != '\0' || k < 0 || m < 0) {
          return flag + ": expected K,M (e.g. 4,2), got '" + v + "'";
        }
        (flag == "--erasure" ? erasure_k : cold_erasure_k) =
            static_cast<int>(k);
        (flag == "--erasure" ? erasure_m : cold_erasure_m) =
            static_cast<int>(m);
      } else if (a == "--hot-generations") {
        const long n = intval("--hot-generations");
        if (!err.empty()) return err;
        hot_generations = static_cast<int>(n);
      } else if (a == "--tenant") {
        const long n = intval("--tenant");
        if (!err.empty()) return err;
        tenant_id = static_cast<int>(n);
      } else if (a == "--tenant-weight") {
        const std::string v = strval("--tenant-weight");
        if (!err.empty()) return err;
        char* end = nullptr;
        const double w = std::strtod(v.c_str(), &end);
        if (end == v.c_str() || *end != '\0') {
          return "--tenant-weight: invalid value '" + v + "'";
        }
        tenant_weight = w;
      } else if (a == "--tenant-budget-mb") {
        const long n = intval("--tenant-budget-mb");
        if (!err.empty()) return err;
        tenant_budget_bytes = static_cast<u64>(n) * 1024 * 1024;
      } else if (a == "--fair-queueing") {
        const std::string v = strval("--fair-queueing");
        if (!err.empty()) return err;
        if (v == "on") fair_queueing = true;
        else if (v == "off") fair_queueing = false;
        else
          return "--fair-queueing: expected 'on' or 'off', got '" + v + "'";
      } else if (a == "--trace-out") {
        trace_out = strval("--trace-out");
        if (!err.empty()) return err;
      } else if (a == "--metrics-out") {
        metrics_out = strval("--metrics-out");
        if (!err.empty()) return err;
      } else if (a == "--health-out") {
        health_out = strval("--health-out");
        if (!err.empty()) return err;
      } else if (a == "--slo") {
        slo = strval("--slo");
        if (!err.empty()) return err;
      } else if (a == "--log-level") {
        log_level = strval("--log-level");
        if (!err.empty()) return err;
      } else if (a == "--heartbeat-interval") {
        const long n = intval("--heartbeat-interval");
        if (!err.empty()) return err;
        heartbeat_interval_ms = static_cast<int>(n);
      } else if (a == "--heartbeat-misses") {
        const long n = intval("--heartbeat-misses");
        if (!err.empty()) return err;
        heartbeat_misses = static_cast<int>(n);
      } else {
        rest.push_back(a);
      }
    }
    argv = std::move(rest);
    return validate();
  }
};

}  // namespace dsim::core
