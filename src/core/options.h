// DMTCP configuration knobs exposed by dmtcp_checkpoint's command line.
#pragma once

#include <string>

#include "compress/compressor.h"
#include "util/types.h"

namespace dsim::core {

/// What to do about kernel write buffers after a checkpoint (§5.2).
enum class SyncMode : u8 {
  kNone = 0,          // default; matches the paper's timing methodology
  kSyncAfter = 1,     // sync() before resuming user threads (+0.79 s)
  kSyncPrevious = 2,  // sync the *previous* checkpoint instead
};

struct DmtcpOptions {
  NodeId coord_node = 0;
  u16 coord_port = 7779;
  compress::CodecKind codec = compress::CodecKind::kGzipish;  // gzip default
  bool forked_checkpointing = false;  // fork + copy-on-write writer (§5.3)
  SyncMode sync = SyncMode::kNone;
  std::string ckpt_dir = "/ckpt";     // "/shared/ckpt" → SAN/NFS (Fig. 5b)
  SimTime interval = 0;               // --interval: periodic checkpoints
};

}  // namespace dsim::core
