// Critical-path attribution over the tracer's span timeline.
//
// A checkpoint round (or a restart) is one window [begin, end) of virtual
// time; the question the blame report answers is "which stage was the
// system actually waiting on at each instant of that window?". The answer
// is computed as a backward sweep: starting from the window's end, pick
// the most-specific span active at that instant (the latest-started one —
// children start at or after their parents, and among concurrent lanes
// the last dependency to start is the one the window's tail waited on),
// attribute the segment back to that span's begin, and jump there.
// Instants covered by no span at all are attributed to the enclosing
// coordinator phase (`barrier.suspend` ... `barrier.refill`), split
// exactly at the phase boundaries the round stamps.
//
// Because the sweep *partitions* the window in integer nanoseconds —
// every instant lands in exactly one segment, segments never overlap —
// the attributed nanoseconds sum to (end - begin) by construction. The
// coordinator asserts this against `CkptRound::stage_breakdown`'s barrier
// total every round, and `tools/trace_report.py --critical-path` re-runs
// the identical sweep over the exported Chrome trace as an independent
// cross-check.
//
// Everything here reads closed spans only and touches no clock: the
// report is a pure function of (spans, window, phases), so same-seed runs
// produce byte-identical blame reports.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.h"
#include "util/types.h"

namespace dsim::obs {

/// A named sub-interval of the window (the round's barrier phases): time
/// no span accounts for is blamed on the phase it fell in. Phases must be
/// non-overlapping and sorted by begin; gaps between phases (or outside
/// every phase) fall back to the "idle" entry.
struct PhaseMark {
  std::string name;
  SimTime begin = 0;
  SimTime end = 0;
};

/// One ranked component of the critical path: `ns` of the window was
/// spent waiting on `stage` (a span name, a phase name, or "idle") on
/// lane `lane` of process `pid` for `tenant`. Phase/idle entries carry
/// pid -1 and an empty lane.
struct CritPathEntry {
  std::string stage;
  i32 pid = -1;
  std::string lane;
  i32 tenant = 0;
  SimTime ns = 0;

  double seconds() const { return to_seconds(ns); }
};

struct CritPathReport {
  SimTime window_begin = 0;
  SimTime window_end = 0;
  /// Aggregated per (stage, pid, lane, tenant), ranked by attributed time
  /// (ties broken by the key, so the ranking is deterministic).
  std::vector<CritPathEntry> entries;

  /// Sum of every entry's ns — equals window_end - window_begin exactly
  /// (the sweep partitions the window; `critical_path` checks it).
  SimTime attributed_ns() const;
  SimTime total_ns() const { return window_end - window_begin; }
  double total_seconds() const { return to_seconds(total_ns()); }

  /// Fraction of the window attributed to `entries[i]` (0 when empty).
  double fraction(size_t i) const;
  /// Human-readable top blame line, e.g.
  /// "fq_wait on store-service/shard3.q tenant 1 = 41.0% of pause".
  std::string top_blame() const;
  /// Stable JSON: {"begin_us":...,"end_us":...,"total_seconds":...,
  /// "entries":[{"stage":...,"pid":...,"lane":...,"tenant":...,
  /// "seconds":...,"fraction":...},...]}. Timestamps are µs with ns
  /// precision (%.3f), matching the Chrome trace export.
  std::string json() const;
};

/// Run the backward sweep over `tracer`'s closed spans for the window
/// [begin, end). See the file comment for the algorithm; the returned
/// report's attributed_ns() always equals end - begin.
CritPathReport critical_path(const Tracer& tracer, SimTime begin,
                             SimTime end,
                             const std::vector<PhaseMark>& phases);

}  // namespace dsim::obs
