#include "obs/slo.h"

#include <cstdio>
#include <cstdlib>

namespace dsim::obs {

namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string fmt_us(SimTime t) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(t) / 1e3);
  return buf;
}

std::string trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n')) {
    --e;
  }
  return s.substr(b, e - b);
}

bool parse_number(const std::string& s, double* out) {
  const std::string t = trim(s);
  if (t.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(t.c_str(), &end);
  return end == t.c_str() + t.size();
}

/// Split "metric OP value" on the comparison operator. Two-char operators
/// are matched before their one-char prefixes.
bool split_comparison(const std::string& s, std::string* metric,
                      std::string* op, double* bound) {
  static const char* kOps[] = {"<=", ">=", "==", "!=", "<", ">"};
  for (const char* o : kOps) {
    const size_t pos = s.find(o);
    if (pos == std::string::npos) continue;
    *metric = trim(s.substr(0, pos));
    *op = o;
    if (metric->empty()) return false;
    return parse_number(s.substr(pos + std::string(o).size()), bound);
  }
  return false;
}

bool compare(double lhs, const std::string& op, double rhs) {
  if (op == "<=") return lhs <= rhs;
  if (op == "<") return lhs < rhs;
  if (op == ">=") return lhs >= rhs;
  if (op == ">") return lhs > rhs;
  if (op == "==") return lhs == rhs;
  return lhs != rhs;  // "!="
}

/// "fn(a, b)" -> {a, b}; empty on malformed input.
bool split_call(const std::string& s, size_t fn_len, std::string* a,
                std::string* b) {
  const size_t close = s.rfind(')');
  if (close == std::string::npos || close < fn_len) return false;
  const std::string inner = s.substr(fn_len, close - fn_len);
  const size_t comma = inner.rfind(',');
  if (comma == std::string::npos) return false;
  *a = trim(inner.substr(0, comma));
  *b = trim(inner.substr(comma + 1));
  return !a->empty() && !b->empty();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string SloEngine::parse(const std::string& spec,
                             std::vector<SloRule>* out) {
  size_t pos = 0;
  while (pos <= spec.size()) {
    const size_t semi = spec.find(';', pos);
    const std::string part = trim(
        semi == std::string::npos ? spec.substr(pos)
                                  : spec.substr(pos, semi - pos));
    pos = semi == std::string::npos ? spec.size() + 1 : semi + 1;
    if (part.empty()) continue;

    const size_t colon = part.find(':');
    if (colon == std::string::npos) {
      return "--slo: rule '" + part + "' lacks a 'name:' prefix";
    }
    SloRule r;
    r.name = trim(part.substr(0, colon));
    r.text = trim(part.substr(colon + 1));
    if (r.name.empty() || r.name.find(' ') != std::string::npos) {
      return "--slo: bad rule name in '" + part + "'";
    }
    const std::string& e = r.text;
    if (e.rfind("drain(", 0) == 0) {
      r.kind = SloRule::Kind::kDrain;
      std::string metric, n;
      double rounds = 0;
      if (!split_call(e, 6, &metric, &n) || !parse_number(n, &rounds) ||
          rounds < 0 || e.back() != ')') {
        return "--slo: rule '" + r.name +
               "': expected drain(metric, rounds)";
      }
      r.metric = metric;
      r.drain_rounds = static_cast<size_t>(rounds);
    } else if (e.rfind("burn(", 0) == 0) {
      r.kind = SloRule::Kind::kBurn;
      const size_t close = e.find(')');
      std::string metric, n, rest_metric;
      if (close == std::string::npos ||
          !split_call(e.substr(0, close + 1), 5, &metric, &n)) {
        return "--slo: rule '" + r.name +
               "': expected burn(metric OP value, window) OP bound";
      }
      double window = 0;
      if (!split_comparison(metric, &r.metric, &r.inner_op,
                            &r.inner_bound) ||
          !parse_number(n, &window) || window < 1) {
        return "--slo: rule '" + r.name +
               "': expected burn(metric OP value, window) OP bound";
      }
      r.window = static_cast<size_t>(window);
      if (!split_comparison("x " + e.substr(close + 1), &rest_metric, &r.op,
                            &r.bound)) {
        return "--slo: rule '" + r.name + "': burn(...) needs 'OP bound'";
      }
    } else if (e.size() > 1 && e[0] == 'p' && e[1] >= '0' && e[1] <= '9') {
      r.kind = SloRule::Kind::kQuantile;
      const size_t paren = e.find('(');
      const size_t close = e.find(')');
      double pct = 0, window = 0;
      std::string metric, n;
      if (paren == std::string::npos || close == std::string::npos ||
          !parse_number(e.substr(1, paren - 1), &pct) || pct <= 0 ||
          pct > 100 ||
          !split_call(e.substr(0, close + 1), paren + 1, &metric, &n) ||
          !parse_number(n, &window) || window < 1 ||
          !split_comparison("x " + e.substr(close + 1), &n, &r.op,
                            &r.bound)) {
        return "--slo: rule '" + r.name +
               "': expected pNN(metric, window) OP bound";
      }
      r.metric = metric;
      r.q = pct / 100.0;
      r.window = static_cast<size_t>(window);
    } else {
      r.kind = SloRule::Kind::kThreshold;
      if (!split_comparison(e, &r.metric, &r.op, &r.bound)) {
        return "--slo: rule '" + r.name + "': expected 'metric OP value'";
      }
    }
    out->push_back(std::move(r));
  }
  return "";
}

std::string SloEngine::add_rules(const std::string& spec) {
  std::vector<SloRule> rules;
  const std::string err = parse(spec, &rules);
  if (!err.empty()) return err;
  for (SloRule& r : rules) add_rule(std::move(r));
  return "";
}

void SloEngine::add_rule(SloRule rule) {
  RuleState st;
  st.rule = std::move(rule);
  states_.push_back(std::move(st));
}

std::vector<AlertEvent> SloEngine::evaluate(const RoundSeries& series) {
  std::vector<AlertEvent> out;
  if (series.empty()) return out;
  const RoundSeries::Sample& s = series.back();
  for (RuleState& st : states_) {
    const SloRule& r = st.rule;
    double measured = 0;
    bool healthy = true;
    switch (r.kind) {
      case SloRule::Kind::kThreshold:
        measured = series.value(r.metric);
        healthy = compare(measured, r.op, r.bound);
        break;
      case SloRule::Kind::kQuantile:
        measured = series.window_quantile(r.metric, r.q, r.window);
        healthy = compare(measured, r.op, r.bound);
        break;
      case SloRule::Kind::kDrain:
        measured =
            static_cast<double>(series.consecutive_nonzero(r.metric));
        healthy = measured <= static_cast<double>(r.drain_rounds);
        break;
      case SloRule::Kind::kBurn:
        measured = series.window_burn(r.metric, r.inner_bound, r.window);
        healthy = compare(measured, r.op, r.bound);
        break;
    }
    if (!healthy && !st.active) {
      st.active = true;
      ++fired_;
      AlertEvent ev;
      ev.rule = r.name;
      ev.round = s.round;
      ev.at = s.at;
      ev.fired = true;
      ev.value = measured;
      ev.message = r.name + ": " + r.text + " violated (measured " +
                   fmt_double(measured) + ")";
      events_.push_back(ev);
      out.push_back(std::move(ev));
    } else if (healthy && st.active) {
      st.active = false;
      AlertEvent ev;
      ev.rule = r.name;
      ev.round = s.round;
      ev.at = s.at;
      ev.fired = false;
      ev.value = measured;
      ev.message = r.name + ": recovered (measured " + fmt_double(measured) +
                   ")";
      events_.push_back(ev);
      out.push_back(std::move(ev));
    }
  }
  return out;
}

std::vector<std::string> SloEngine::active() const {
  std::vector<std::string> out;
  for (const RuleState& st : states_) {
    if (st.active) out.push_back(st.rule.name);
  }
  return out;
}

std::string SloEngine::json() const {
  std::string out = "{\"rules\":[";
  for (size_t i = 0; i < states_.size(); ++i) {
    if (i != 0) out += ",";
    out += "{\"name\":\"" + json_escape(states_[i].rule.name) + "\"";
    out += ",\"rule\":\"" + json_escape(states_[i].rule.text) + "\"}";
  }
  out += "],\"active\":[";
  const std::vector<std::string> act = active();
  for (size_t i = 0; i < act.size(); ++i) {
    if (i != 0) out += ",";
    out += "\"" + json_escape(act[i]) + "\"";
  }
  out += "],\"alerts_fired\":" + std::to_string(fired_);
  out += ",\"events\":[";
  for (size_t i = 0; i < events_.size(); ++i) {
    const AlertEvent& ev = events_[i];
    if (i != 0) out += ",";
    out += "{\"rule\":\"" + json_escape(ev.rule) + "\"";
    out += ",\"round\":" + std::to_string(ev.round);
    out += ",\"t_us\":" + fmt_us(ev.at);
    out += ",\"type\":\"" + std::string(ev.fired ? "fired" : "cleared") +
           "\"";
    out += ",\"value\":" + fmt_double(ev.value);
    out += ",\"message\":\"" + json_escape(ev.message) + "\"}";
  }
  out += "]}";
  return out;
}

}  // namespace dsim::obs
