// Deterministic metrics primitives: a fixed-bucket log-scale histogram and
// a registry that renders counters/gauges/histograms as stable JSON.
//
// The histogram replaces the ad-hoc wait accounting that had grown three
// separate shapes across the tree — `lookup_wait_seconds` running sums with
// a hand-rolled max watermark in `ServiceStats`, per-key
// `std::vector<double> wait_samples` in `TenantStats` (unbounded memory,
// exact-sort p99 at read time), and `*_wait_seconds / count` averages in
// `CkptRound`. One type now serves all three uses:
//
//   - `record_n(v, n)` adds `n` samples of value `v` in one shot and
//     accumulates `sum_ += v * n` exactly like the legacy running sums did,
//     so `mean()` and `sum()` reproduce the old scalar numbers bit-for-bit
//     (committed bench baselines stay valid without regeneration).
//   - Quantiles come from fixed log-linear buckets: each power-of-two
//     octave is split into 128 linear sub-buckets, giving a worst-case
//     relative error of 1/256 (~0.4%) anywhere in [2^-31 s, 2^9 s) — ns
//     jitter to eight-minute stalls — with zero allocation after
//     construction and O(1) record.
//   - `take_window_max()` is the per-round max watermark (read and reset),
//     `delta_since(prev)` the per-round / per-probe-window delta that
//     replaces "remember the sample count before the window" bookkeeping.
//
// Everything here is plain arithmetic on the virtual clock's values: no
// host time, no allocation ordering, no pointers — identical runs produce
// identical registries byte-for-byte.
#pragma once

#include <array>
#include <cstddef>
#include <map>
#include <string>

#include "util/types.h"

namespace dsim::obs {

class Histogram {
 public:
  /// Add one sample. Values are in seconds by convention (the callers all
  /// record queue waits), but any non-negative double works; negatives
  /// clamp to the bottom bucket.
  void record(double v) { record_n(v, 1); }
  /// Add `n` samples of the same value (a batch completing together).
  /// Accumulates `sum += v * n` in one multiply — the exact fp result the
  /// legacy `wait_seconds += wait * n` accumulators produced.
  void record_n(double v, u64 n);

  u64 count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  /// Largest sample ever recorded (exact, not bucketed).
  double max() const { return max_; }

  /// q in [0, 1]: value at rank ceil(q * count) (1-based), matching the
  /// exact-sort convention the benches used. The top-ranked sample returns
  /// the exact max; interior ranks return the bucket representative
  /// (<= 0.4% relative error).
  double quantile(double q) const;

  /// Max since the last call (exact); resets the watermark. Replaces
  /// ChunkStoreService::take_max_lookup_wait's hand-rolled reset.
  double take_window_max();

  /// Bucket-wise difference `*this - prev` where `prev` is an earlier
  /// snapshot of the same stream. count/sum subtract exactly; max of the
  /// delta is the top nonempty bucket's representative (bucketed).
  Histogram delta_since(const Histogram& prev) const;

  /// Stable JSON object: {"count":N,"sum":S,"mean":M,"max":X,
  /// "p50":...,"p90":...,"p99":...}. Doubles render with %.9g.
  std::string json() const;

 private:
  // 128 linear sub-buckets per power-of-two octave over [2^-31, 2^9) s.
  static constexpr int kSubBuckets = 128;
  static constexpr int kMinExp = -31;
  static constexpr int kMaxExp = 9;
  static constexpr int kBuckets = (kMaxExp - kMinExp) * kSubBuckets;

  static int bucket_of(double v);
  static double bucket_value(int b);

  u64 count_ = 0;
  double sum_ = 0;
  double max_ = 0;
  double window_max_ = 0;
  std::array<u64, static_cast<size_t>(kBuckets)> buckets_{};
};

/// Named counters, gauges and histograms rendered as one JSON document.
/// Backed by std::map so iteration (and therefore the emitted bytes) is
/// independent of registration order.
class MetricsRegistry {
 public:
  void counter(const std::string& name, u64 v) { counters_[name] = v; }
  void gauge(const std::string& name, double v) { gauges_[name] = v; }
  void histogram(const std::string& name, const Histogram& h) {
    histograms_[name] = h;
  }

  const std::map<std::string, u64>& counters() const { return counters_; }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Registry-wide delta against an earlier snapshot of the same stream:
  /// counters subtract (a name absent from `prev` counts as 0), gauges
  /// keep their current value (a gauge is a level, not a rate — the
  /// per-round "delta" of a level is the level), histograms take
  /// `Histogram::delta_since`. This is what the coordinator snapshots at
  /// every round boundary to build the per-round health time-series.
  MetricsRegistry delta_since(const MetricsRegistry& prev) const;

  /// {"counters":{...},"gauges":{...},"histograms":{...}} with keys
  /// sorted; byte-stable across identical runs.
  std::string json() const;
  /// Write json() to `path`; returns false on I/O failure.
  bool write(const std::string& path) const;

 private:
  std::map<std::string, u64> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace dsim::obs
