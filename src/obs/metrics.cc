#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace dsim::obs {

namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

int Histogram::bucket_of(double v) {
  if (!(v > 0)) return 0;  // zero, negatives, NaN -> bottom bucket
  int exp = 0;
  const double m = std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1)
  const int octave = exp - 1;            // v in [2^octave, 2^(octave+1))
  if (octave < kMinExp) return 0;
  if (octave >= kMaxExp) return kBuckets - 1;
  // m - 0.5 in [0, 0.5): scale to 128 linear sub-buckets per octave.
  const int sub = static_cast<int>((m - 0.5) * (2 * kSubBuckets));
  return (octave - kMinExp) * kSubBuckets +
         std::min(sub, kSubBuckets - 1);
}

double Histogram::bucket_value(int b) {
  const int octave = b / kSubBuckets + kMinExp;
  const int sub = b % kSubBuckets;
  // Midpoint of the sub-bucket's mantissa range, scaled to the octave.
  const double m =
      0.5 + (static_cast<double>(sub) + 0.5) / (2 * kSubBuckets);
  return std::ldexp(m, octave + 1);
}

void Histogram::record_n(double v, u64 n) {
  if (n == 0) return;
  buckets_[static_cast<size_t>(bucket_of(v))] += n;
  count_ += n;
  sum_ += v * static_cast<double>(n);
  if (v > max_) max_ = v;
  if (v > window_max_) window_max_ = v;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  const double want = std::ceil(q * static_cast<double>(count_));
  const u64 rank = std::min<u64>(
      count_, want < 1 ? 1 : static_cast<u64>(want));
  u64 seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[static_cast<size_t>(b)];
    if (seen >= rank) {
      // The sample at the very top rank is the max, which we track
      // exactly; interior ranks get the bucket representative.
      if (rank == count_) return max_;
      return bucket_value(b);
    }
  }
  return max_;
}

double Histogram::take_window_max() {
  const double m = window_max_;
  window_max_ = 0;
  return m;
}

Histogram Histogram::delta_since(const Histogram& prev) const {
  Histogram d;
  d.count_ = count_ - prev.count_;
  d.sum_ = sum_ - prev.sum_;
  for (int b = kBuckets - 1; b >= 0; --b) {
    const size_t i = static_cast<size_t>(b);
    d.buckets_[i] = buckets_[i] - prev.buckets_[i];
    if (d.max_ == 0 && d.buckets_[i] != 0) d.max_ = bucket_value(b);
  }
  d.window_max_ = d.max_;
  return d;
}

std::string Histogram::json() const {
  std::string out = "{\"count\":" + std::to_string(count_);
  out += ",\"sum\":" + fmt_double(sum_);
  out += ",\"mean\":" + fmt_double(mean());
  out += ",\"max\":" + fmt_double(max_);
  out += ",\"p50\":" + fmt_double(quantile(0.50));
  out += ",\"p90\":" + fmt_double(quantile(0.90));
  out += ",\"p99\":" + fmt_double(quantile(0.99));
  out += "}";
  return out;
}

MetricsRegistry MetricsRegistry::delta_since(
    const MetricsRegistry& prev) const {
  MetricsRegistry d;
  for (const auto& [name, v] : counters_) {
    const auto it = prev.counters_.find(name);
    d.counters_[name] = v - (it == prev.counters_.end() ? 0 : it->second);
  }
  for (const auto& [name, v] : gauges_) d.gauges_[name] = v;
  for (const auto& [name, h] : histograms_) {
    const auto it = prev.histograms_.find(name);
    d.histograms_[name] =
        it == prev.histograms_.end() ? h : h.delta_since(it->second);
  }
  return d;
}

std::string MetricsRegistry::json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters_) {
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": " + std::to_string(v);
    first = false;
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges_) {
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": " + fmt_double(v);
    first = false;
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": " + h.json();
    first = false;
  }
  out += "\n  }\n}\n";
  return out;
}

bool MetricsRegistry::write(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << json();
  return f.good();
}

}  // namespace dsim::obs
