// Per-round health time-series: a bounded ring of metric deltas, one
// sample per checkpoint-round boundary.
//
// The coordinator snapshots the metrics registry at every round's close
// (`MetricsRegistry::delta_since` against the previous close), flattens
// the delta into named scalars — pause seconds, heal backlog, degraded
// chunks, admission holds, replay depth, plus every registry counter's
// per-round delta — and pushes one `Sample` here. The SLO engine reads
// the ring to evaluate its rules; `--health-out` serializes it.
//
// Bounded by construction: past `capacity` rounds the oldest samples
// fall off (counted in `dropped()`), so a week-long soak cannot grow the
// series without bound. Samples are keyed maps and timestamps are
// virtual SimTime, so the JSON is byte-identical across same-seed runs.
#pragma once

#include <deque>
#include <map>
#include <string>

#include "util/types.h"

namespace dsim::obs {

class RoundSeries {
 public:
  explicit RoundSeries(size_t capacity = 512) : capacity_(capacity) {}

  struct Sample {
    i64 round = 0;    // checkpoint round index (restarts use -1)
    SimTime at = 0;   // the round's refill barrier (virtual time)
    std::map<std::string, double> values;
  };

  void push(Sample s);

  const std::deque<Sample>& samples() const { return samples_; }
  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  size_t dropped() const { return dropped_; }
  const Sample& back() const { return samples_.back(); }

  /// `metric` in the sample `back_idx` rounds before the latest (0 = the
  /// latest); 0.0 when out of range or the sample lacks the metric.
  double value(const std::string& metric, size_t back_idx = 0) const;

  /// Exact quantile of `metric` over the last `window` samples (all of
  /// them when window >= size): rank ceil(q*n), 1-based, over the sorted
  /// window — deterministic, no bucketing. 0.0 on an empty series.
  double window_quantile(const std::string& metric, double q,
                         size_t window) const;

  /// Fraction of the last `window` samples where `metric` > `threshold`
  /// (the burn rate of a budget); 0.0 on an empty series.
  double window_burn(const std::string& metric, double threshold,
                     size_t window) const;

  /// How many consecutive samples, counting back from the latest, had
  /// `metric` != 0. 0 when the latest sample is zero or missing.
  size_t consecutive_nonzero(const std::string& metric) const;

  /// Stable JSON: {"dropped":N,"rounds":[{"round":R,"t_us":...,
  /// "values":{...}},...]} with sorted value keys; doubles as %.9g.
  std::string json() const;

 private:
  size_t capacity_;
  size_t dropped_ = 0;
  std::deque<Sample> samples_;
};

}  // namespace dsim::obs
