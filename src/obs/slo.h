// Declarative SLO rules over the per-round health time-series, with a
// deterministic fire/clear alert state machine.
//
// Rules are parsed from one `--slo` spec string, `;`-separated, each
// `name: expression`. Four expression forms:
//
//   pause:  pause_seconds <= 0.5            threshold on the latest round
//   tail:   p99(pause_seconds, 8) <= 0.6    exact quantile over a window
//   heal:   drain(degraded_chunks, 2)       metric must return to zero
//                                           within N rounds of going
//                                           nonzero (heal-backlog drain)
//   burn:   burn(pause_seconds > 0.4, 8) <= 0.25
//                                           budget burn rate: fraction of
//                                           the window's rounds violating
//
// The engine evaluates every rule once per round boundary, on the series'
// latest sample. A rule whose healthy condition fails *fires* an alert; a
// firing rule whose condition holds again *clears* it. Both transitions
// append an `AlertEvent` stamped with the round index and virtual
// SimTime — no host clocks, no wall time — so the same seed produces the
// same alert stream byte-for-byte, which is what lets CI gate "a healthy
// sweep fires zero alerts" and "a kill fires exactly this set and clears
// within the window" as hard assertions rather than flaky heuristics.
//
// The coordinator mirrors each transition into the trace as a
// zero-duration span (`alert.fired` / `alert.cleared` on an
// `alert.<rule>` lane of the service process), and
// `DmtcpControl::flush_observability` serializes the engine's summary
// into the `--health-out` JSON.
#pragma once

#include <string>
#include <vector>

#include "obs/timeseries.h"
#include "util/types.h"

namespace dsim::obs {

struct SloRule {
  enum class Kind { kThreshold, kQuantile, kDrain, kBurn };

  std::string name;
  Kind kind = Kind::kThreshold;
  std::string metric;
  /// Comparison that must hold for the rule to be healthy (threshold,
  /// quantile and burn kinds): one of <=, <, >=, >, ==, !=.
  std::string op;
  double bound = 0;
  double q = 0;              // quantile, e.g. 0.99 (kQuantile)
  size_t window = 1;         // rounds in the sliding window
  size_t drain_rounds = 0;   // kDrain: allowed consecutive nonzero rounds
  std::string inner_op;      // kBurn: comparison inside burn(...)
  double inner_bound = 0;
  std::string text;          // original rule text, echoed in reports
};

/// One fire or clear transition. `value` is the measured quantity at the
/// transition (metric value, quantile, consecutive-nonzero count, or burn
/// fraction, by rule kind).
struct AlertEvent {
  std::string rule;
  i64 round = 0;
  SimTime at = 0;
  bool fired = false;  // true = fired, false = cleared
  double value = 0;
  std::string message;
};

class SloEngine {
 public:
  /// Parse a `;`-separated rule spec. Returns "" and appends to `out` on
  /// success, else a human-readable error naming the offending rule.
  static std::string parse(const std::string& spec,
                           std::vector<SloRule>* out);

  /// Parse `spec` and install the rules; returns "" or the parse error.
  std::string add_rules(const std::string& spec);
  void add_rule(SloRule rule);
  size_t rule_count() const { return states_.size(); }

  /// Evaluate every rule against the series' latest sample; returns the
  /// transitions (fired/cleared) this round, already appended to
  /// `events()`. No-op on an empty series.
  std::vector<AlertEvent> evaluate(const RoundSeries& series);

  const std::vector<AlertEvent>& events() const { return events_; }
  /// Names of the rules currently firing, in rule order.
  std::vector<std::string> active() const;
  /// Total fire transitions ever (clears not counted).
  u64 alerts_fired() const { return fired_; }

  /// Stable JSON: {"rules":[{"name":...,"rule":...},...],
  /// "active":[...],"alerts_fired":N,
  /// "events":[{"rule":...,"round":R,"t_us":...,"type":"fired"|"cleared",
  /// "value":...,"message":...},...]}.
  std::string json() const;

 private:
  struct RuleState {
    SloRule rule;
    bool active = false;
  };

  std::vector<RuleState> states_;
  std::vector<AlertEvent> events_;
  u64 fired_ = 0;
};

}  // namespace dsim::obs
