#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace dsim::obs {

u32 Tracer::lane(i32 pid, const std::string& name) {
  auto key = std::make_pair(pid, name);
  const auto it = lanes_.find(key);
  if (it != lanes_.end()) return it->second;
  lane_names_.push_back(key);
  const u32 tid = static_cast<u32>(lane_names_.size());
  lanes_.emplace(std::move(key), tid);
  return tid;
}

u64 Tracer::begin(const char* name, i32 pid, const std::string& lane_name,
                  SimTime now, const TraceContext& ctx, u64 n) {
  SpanRecord rec;
  rec.id = next_span_++;
  rec.trace_id = ctx.trace_id;
  rec.parent = ctx.parent_span;
  rec.begin = now;
  rec.pid = pid;
  rec.tid = lane(pid, lane_name);
  rec.tenant = ctx.tenant;
  rec.qos = ctx.qos;
  rec.op = ctx.op;
  rec.n = n;
  rec.name = name;
  if (ctx.trace_id != 0 && ctx.parent_span == 0) {
    traces_[ctx.trace_id].root_span = rec.id;
  }
  open_.emplace(rec.id, rec);
  return rec.id;
}

void Tracer::end(u64 span, SimTime now) {
  if (span == 0) return;
  const auto it = open_.find(span);
  if (it == open_.end()) return;
  SpanRecord rec = it->second;
  open_.erase(it);
  rec.end = now;
  const SimTime dur = rec.end - rec.begin;
  StageStat& st = stages_[rec.name];
  st.count += rec.n;
  st.seconds += to_seconds(dur) * static_cast<double>(rec.n);
  stage_hist_[rec.name].record_n(to_seconds(dur), rec.n);
  if (rec.trace_id != 0) {
    const auto t = traces_.find(rec.trace_id);
    if (t != traces_.end()) {
      if (rec.id == t->second.root_span) {
        // The root just closed: its children must have tiled [begin, end)
        // exactly — same integer nanosecond total, no gaps, no overlap.
        if (!t->second.untiled && t->second.child_ns != dur) {
          tiling_violations_++;
        }
        traces_.erase(t);
      } else {
        t->second.child_ns += dur;
      }
    }
  }
  spans_.push_back(rec);
}

void Tracer::mark_untiled(u64 trace_id) {
  const auto it = traces_.find(trace_id);
  if (it != traces_.end()) it->second.untiled = true;
}

std::string Tracer::chrome_json() const {
  std::vector<const SpanRecord*> order;
  order.reserve(spans_.size());
  for (const SpanRecord& s : spans_) order.push_back(&s);
  std::sort(order.begin(), order.end(),
            [](const SpanRecord* a, const SpanRecord* b) {
              if (a->begin != b->begin) return a->begin < b->begin;
              return a->id < b->id;
            });

  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  char buf[512];
  bool first = true;
  const auto emit = [&](const char* line) {
    if (!first) out += ",\n";
    out += line;
    first = false;
  };

  std::map<i32, int> pids;
  for (const auto& [pid, name] : lane_names_) pids[pid] = 1;
  for (const auto& [pid, unused] : pids) {
    (void)unused;
    if (pid == kServicePid) {
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                    "\"args\":{\"name\":\"store-service\"}}",
                    pid);
    } else {
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                    "\"args\":{\"name\":\"node%d\"}}",
                    pid, pid);
    }
    emit(buf);
  }
  for (size_t i = 0; i < lane_names_.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,"
                  "\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
                  lane_names_[i].first, static_cast<u32>(i + 1),
                  lane_names_[i].second.c_str());
    emit(buf);
  }

  for (const SpanRecord* s : order) {
    // Microseconds with three decimals: exact at ns resolution.
    std::snprintf(
        buf, sizeof(buf),
        "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
        "\"pid\":%d,\"tid\":%u,\"args\":{\"trace\":%llu,\"span\":%llu,"
        "\"parent\":%llu,\"tenant\":%d,\"qos\":%u,\"op\":%u,\"n\":%llu}}",
        s->name, static_cast<double>(s->begin) / 1e3,
        static_cast<double>(s->end - s->begin) / 1e3, s->pid, s->tid,
        static_cast<unsigned long long>(s->trace_id),
        static_cast<unsigned long long>(s->id),
        static_cast<unsigned long long>(s->parent), s->tenant,
        static_cast<unsigned>(s->qos), static_cast<unsigned>(s->op),
        static_cast<unsigned long long>(s->n));
    emit(buf);
  }
  out += "\n]}\n";
  return out;
}

bool Tracer::write_chrome_json(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << chrome_json();
  return f.good();
}

}  // namespace dsim::obs
