#include "obs/timeseries.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

namespace dsim::obs {

namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string fmt_us(SimTime t) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(t) / 1e3);
  return buf;
}

}  // namespace

void RoundSeries::push(Sample s) {
  samples_.push_back(std::move(s));
  while (samples_.size() > capacity_) {
    samples_.pop_front();
    ++dropped_;
  }
}

double RoundSeries::value(const std::string& metric, size_t back_idx) const {
  if (back_idx >= samples_.size()) return 0.0;
  const Sample& s = samples_[samples_.size() - 1 - back_idx];
  const auto it = s.values.find(metric);
  return it == s.values.end() ? 0.0 : it->second;
}

double RoundSeries::window_quantile(const std::string& metric, double q,
                                    size_t window) const {
  if (samples_.empty()) return 0.0;
  const size_t n = std::min(window, samples_.size());
  std::vector<double> v;
  v.reserve(n);
  for (size_t i = 0; i < n; ++i) v.push_back(value(metric, i));
  std::sort(v.begin(), v.end());
  const double want = std::ceil(q * static_cast<double>(v.size()));
  const size_t rank = std::min<size_t>(
      v.size(), want < 1 ? 1 : static_cast<size_t>(want));
  return v[rank - 1];
}

double RoundSeries::window_burn(const std::string& metric, double threshold,
                                size_t window) const {
  if (samples_.empty()) return 0.0;
  const size_t n = std::min(window, samples_.size());
  size_t over = 0;
  for (size_t i = 0; i < n; ++i) {
    if (value(metric, i) > threshold) ++over;
  }
  return static_cast<double>(over) / static_cast<double>(n);
}

size_t RoundSeries::consecutive_nonzero(const std::string& metric) const {
  size_t n = 0;
  while (n < samples_.size() && value(metric, n) != 0.0) ++n;
  return n;
}

std::string RoundSeries::json() const {
  std::string out = "{\"dropped\":" + std::to_string(dropped_);
  out += ",\"rounds\":[";
  bool first_sample = true;
  for (const Sample& s : samples_) {
    if (!first_sample) out += ",";
    first_sample = false;
    out += "{\"round\":" + std::to_string(s.round);
    out += ",\"t_us\":" + fmt_us(s.at);
    out += ",\"values\":{";
    bool first_val = true;
    for (const auto& [name, v] : s.values) {
      if (!first_val) out += ",";
      first_val = false;
      out += "\"" + name + "\":" + fmt_double(v);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

}  // namespace dsim::obs
