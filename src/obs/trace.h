// Deterministic request tracing over the virtual clock.
//
// A `TraceContext` rides inside `rpc::RpcFabric` calls and the store's
// `StoreRequest`/`ShardRequest` envelopes; the layers it passes through
// open a span at each queueing stage (caller NIC, endpoint message CPU,
// tenant admission hold, FairQueue wait, shard index/device service,
// return NIC hop) and close it when the stage's callback fires. Spans are
// stamped with `SimTime` only — no host clock, no allocation addresses —
// so two runs with the same seed and jitter profile emit byte-identical
// traces.
//
// Zero cost when disabled: the tracer hangs off `sim::EventLoop` as a
// plain pointer (null by default), every instrumentation site is a null
// check around inlined calls, and the tracer itself never posts events or
// charges simulated time — enabling it cannot move the virtual clock,
// which is what the bench's trace_overhead_ratio gate asserts.
//
// Span tiling: for a traced request, the child stage spans partition the
// root span's [begin, end) exactly, in integer nanoseconds — every unit of
// measured latency is attributed to exactly one stage, no gaps, no
// double-charging. The tracer checks this identity when each root closes
// (`tiling_violations()`), except for traces explicitly marked untiled
// (`mark_untiled`): requests parked on a dead endpoint and replayed emit
// duplicate stage spans by design.
//
// Export is Chrome trace_event JSON (`Tracer::write_chrome_json`): one
// "process" per simulated node plus one synthetic process for the store
// service's shard/device lanes, one "thread" per lane — load the file in
// Perfetto (ui.perfetto.dev) or chrome://tracing.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/types.h"

namespace dsim::obs {

/// Synthetic Chrome-trace "process" that hosts the store service's shard
/// queue and device lanes (a device is not pinned to one node id the way
/// request lanes are; shards migrate on failover).
inline constexpr i32 kServicePid = 1'000'000;

/// Carried by value through RPC calls and request envelopes. trace_id 0
/// means "untraced" — every instrumentation site skips span creation.
struct TraceContext {
  u64 trace_id = 0;
  u64 parent_span = 0;
  i32 tenant = 0;
  u8 qos = 0;
  u8 op = 0;
};

struct SpanRecord {
  u64 id = 0;
  u64 trace_id = 0;   // 0 for standalone spans (devices, daemons)
  u64 parent = 0;
  SimTime begin = 0;
  SimTime end = 0;
  i32 pid = 0;        // node id, or kServicePid
  u32 tid = 0;        // lane registered via the (pid, lane-name) pair
  i32 tenant = 0;
  u8 qos = 0;
  u8 op = 0;
  u64 n = 1;          // batch weight (keys per lookup batch)
  const char* name = "";  // string literal: the stage name
};

class Tracer {
 public:
  /// Per-stage totals, snapshotted by the coordinator for per-round
  /// deltas (CkptRound::stage_breakdown).
  struct StageStat {
    u64 count = 0;
    double seconds = 0;
  };

  /// Allocate a fresh trace id (sequential, deterministic).
  u64 new_trace() { return next_trace_++; }

  /// Open a span at virtual time `now`. A ctx with trace_id != 0 and
  /// parent_span == 0 marks this span as the trace's root (its children
  /// must tile it exactly); trace_id == 0 makes a standalone span.
  /// Returns the span id (never 0).
  u64 begin(const char* name, i32 pid, const std::string& lane, SimTime now,
            const TraceContext& ctx = {}, u64 n = 1);
  /// Close a span. `span == 0` is a no-op so call sites can thread
  /// "maybe-traced" ids through callbacks unguarded.
  void end(u64 span, SimTime now);

  /// Exempt a trace from the tiling identity: its request was parked,
  /// replayed, or failed over, so stage spans legitimately overlap or
  /// duplicate.
  void mark_untiled(u64 trace_id);

  u64 open_spans() const { return open_.size(); }
  u64 tiling_violations() const { return tiling_violations_; }
  const std::vector<SpanRecord>& spans() const { return spans_; }
  /// Registered (pid, lane-name) pairs; a SpanRecord's tid-1 indexes this
  /// (the critical-path blame report resolves lanes through it).
  const std::vector<std::pair<i32, std::string>>& lane_names() const {
    return lane_names_;
  }
  const std::map<std::string, StageStat>& stages() const { return stages_; }
  /// Per-stage duration histograms (seconds), for the metrics registry.
  const std::map<std::string, Histogram>& stage_histograms() const {
    return stage_hist_;
  }

  /// Chrome trace_event JSON: process/thread metadata plus one complete
  /// ("X") event per closed span, sorted by (begin, span id). Timestamps
  /// are microseconds with ns precision (%.3f) — byte-stable.
  std::string chrome_json() const;
  /// Write chrome_json() to `path`; returns false on I/O failure.
  bool write_chrome_json(const std::string& path) const;

 private:
  struct TraceInfo {
    u64 root_span = 0;
    SimTime child_ns = 0;  // summed durations of closed child spans
    bool untiled = false;
  };

  u32 lane(i32 pid, const std::string& name);

  u64 next_span_ = 1;
  u64 next_trace_ = 1;
  u64 tiling_violations_ = 0;
  std::vector<SpanRecord> spans_;                   // closed spans
  std::map<u64, SpanRecord> open_;                  // by span id
  std::map<u64, TraceInfo> traces_;                 // live traces
  std::map<std::pair<i32, std::string>, u32> lanes_;
  std::vector<std::pair<i32, std::string>> lane_names_;  // tid-1 -> lane
  std::map<std::string, StageStat> stages_;
  std::map<std::string, Histogram> stage_hist_;
};

}  // namespace dsim::obs
