#include "obs/critpath.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <tuple>

#include "util/assertx.h"

namespace dsim::obs {

namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string fmt_us(SimTime t) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(t) / 1e3);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

using AggKey = std::tuple<std::string, i32, std::string, i32>;

}  // namespace

SimTime CritPathReport::attributed_ns() const {
  SimTime sum = 0;
  for (const auto& e : entries) sum += e.ns;
  return sum;
}

double CritPathReport::fraction(size_t i) const {
  if (i >= entries.size() || total_ns() <= 0) return 0;
  return static_cast<double>(entries[i].ns) /
         static_cast<double>(total_ns());
}

std::string CritPathReport::top_blame() const {
  if (entries.empty()) return "empty window";
  const CritPathEntry& e = entries.front();
  std::string where;
  if (e.pid >= 0) {
    where = " on ";
    where += e.pid == kServicePid ? std::string("store-service")
                                  : "node" + std::to_string(e.pid);
    if (!e.lane.empty()) where += "/" + e.lane;
    if (e.tenant != 0) where += " tenant " + std::to_string(e.tenant);
  }
  char pct[32];
  std::snprintf(pct, sizeof(pct), "%.1f", fraction(0) * 100.0);
  return e.stage + where + " = " + pct + "% of pause";
}

std::string CritPathReport::json() const {
  std::string out = "{\"begin_us\":" + fmt_us(window_begin);
  out += ",\"end_us\":" + fmt_us(window_end);
  out += ",\"total_seconds\":" + fmt_double(total_seconds());
  out += ",\"entries\":[";
  for (size_t i = 0; i < entries.size(); ++i) {
    const CritPathEntry& e = entries[i];
    if (i != 0) out += ",";
    out += "{\"stage\":\"" + json_escape(e.stage) + "\"";
    out += ",\"pid\":" + std::to_string(e.pid);
    out += ",\"lane\":\"" + json_escape(e.lane) + "\"";
    out += ",\"tenant\":" + std::to_string(e.tenant);
    out += ",\"ns\":" + std::to_string(e.ns);
    out += ",\"seconds\":" + fmt_double(e.seconds());
    out += ",\"fraction\":" + fmt_double(fraction(i));
    out += "}";
  }
  out += "]}";
  return out;
}

CritPathReport critical_path(const Tracer& tracer, SimTime begin,
                             SimTime end,
                             const std::vector<PhaseMark>& phases) {
  CritPathReport rep;
  rep.window_begin = begin;
  rep.window_end = end;
  if (end <= begin) return rep;

  // Spans that overlap the window (zero-length spans — alert markers and
  // trivially instant stages — never explain elapsed time, so they are
  // excluded), sorted by begin so "latest-started active span" is a
  // suffix scan.
  std::vector<const SpanRecord*> spans;
  for (const SpanRecord& s : tracer.spans()) {
    if (s.end > s.begin && s.end > begin && s.begin < end) {
      spans.push_back(&s);
    }
  }
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord* a, const SpanRecord* b) {
              if (a->begin != b->begin) return a->begin < b->begin;
              return a->id < b->id;
            });
  // Span end times, sorted, for the "jump over an uncovered gap" step.
  std::vector<SimTime> ends;
  ends.reserve(spans.size());
  for (const SpanRecord* s : spans) ends.push_back(s->end);
  std::sort(ends.begin(), ends.end());

  const auto& lanes = tracer.lane_names();
  const auto lane_of = [&](const SpanRecord* s) -> std::string {
    const size_t i = s->tid;
    return i >= 1 && i <= lanes.size() ? lanes[i - 1].second
                                       : std::string();
  };

  std::map<AggKey, SimTime> agg;
  // Attribute the uncovered gap [lo, hi) to the coordinator phases it
  // fell in, splitting exactly at phase boundaries; anything outside
  // every phase is "idle". Phases are disjoint and sorted, so walking
  // them forward partitions the gap.
  const auto attribute_gap = [&](SimTime lo, SimTime hi) {
    SimTime t = lo;
    for (const PhaseMark& p : phases) {
      if (t >= hi) break;
      const SimTime pb = std::max(t, p.begin);
      const SimTime pe = std::min(hi, p.end);
      if (pe <= pb) continue;
      if (pb > t) agg[AggKey{"idle", -1, "", 0}] += pb - t;
      agg[AggKey{p.name, -1, "", 0}] += pe - pb;
      t = pe;
    }
    if (t < hi) agg[AggKey{"idle", -1, "", 0}] += hi - t;
  };

  SimTime t = end;
  while (t > begin) {
    // Latest-started span active at t-ε: begin < t <= end. Scan the
    // by-begin suffix below t backwards; the first hit has the maximal
    // begin (ties resolved to the highest id by the sort order).
    const SpanRecord* pick = nullptr;
    const auto hi = std::upper_bound(
        spans.begin(), spans.end(), t,
        [](SimTime v, const SpanRecord* s) { return v <= s->begin; });
    for (auto it = hi; it != spans.begin();) {
      --it;
      if ((*it)->end >= t) {
        pick = *it;
        break;
      }
    }
    if (pick != nullptr) {
      const SimTime lo = std::max(pick->begin, begin);
      agg[AggKey{pick->name, pick->pid, lane_of(pick), pick->tenant}] +=
          t - lo;
      t = lo;
    } else {
      // Nothing in flight: jump to the latest span end before t (or the
      // window start) and blame the gap on the enclosing phase.
      const auto e = std::lower_bound(ends.begin(), ends.end(), t);
      const SimTime lo =
          e == ends.begin() ? begin : std::max(begin, *(e - 1));
      attribute_gap(lo, t);
      t = lo;
    }
  }

  rep.entries.reserve(agg.size());
  for (const auto& [key, ns] : agg) {
    CritPathEntry e;
    e.stage = std::get<0>(key);
    e.pid = std::get<1>(key);
    e.lane = std::get<2>(key);
    e.tenant = std::get<3>(key);
    e.ns = ns;
    rep.entries.push_back(std::move(e));
  }
  std::sort(rep.entries.begin(), rep.entries.end(),
            [](const CritPathEntry& a, const CritPathEntry& b) {
              if (a.ns != b.ns) return a.ns > b.ns;
              if (a.stage != b.stage) return a.stage < b.stage;
              if (a.pid != b.pid) return a.pid < b.pid;
              if (a.lane != b.lane) return a.lane < b.lane;
              return a.tenant < b.tenant;
            });
  DSIM_CHECK_MSG(rep.attributed_ns() == rep.total_ns(),
                 "critical-path sweep must partition the window exactly");
  return rep;
}

}  // namespace dsim::obs
