#include "compress/huffman.h"

#include <algorithm>
#include <array>
#include <queue>

#include "compress/bitstream.h"
#include "util/assertx.h"
#include "util/serialize.h"

namespace dsim::compress {
namespace {

constexpr int kMaxBits = 15;
constexpr int kAlphabet = 256;

/// Compute code lengths from symbol frequencies with a standard
/// two-queue Huffman construction, then clamp to kMaxBits by re-running on
/// dampened frequencies if needed (rare for byte alphabets).
std::array<u8, kAlphabet> code_lengths(std::array<u64, kAlphabet> freq) {
  std::array<u8, kAlphabet> lengths{};
  for (int attempt = 0; attempt < 8; ++attempt) {
    struct HNode {
      u64 weight;
      int left = -1, right = -1;  // indices into nodes; -1 = leaf
      int symbol = -1;
    };
    std::vector<HNode> nodes;
    using Entry = std::pair<u64, int>;  // (weight, node index)
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    for (int s = 0; s < kAlphabet; ++s) {
      if (freq[s] == 0) continue;
      nodes.push_back({freq[s], -1, -1, s});
      heap.emplace(freq[s], static_cast<int>(nodes.size() - 1));
    }
    lengths.fill(0);
    if (heap.empty()) return lengths;
    if (heap.size() == 1) {
      lengths[nodes[heap.top().second].symbol] = 1;
      return lengths;
    }
    while (heap.size() > 1) {
      auto [wa, a] = heap.top();
      heap.pop();
      auto [wb, b] = heap.top();
      heap.pop();
      nodes.push_back({wa + wb, a, b, -1});
      heap.emplace(wa + wb, static_cast<int>(nodes.size() - 1));
    }
    // Depth-first walk to assign depths.
    int root = heap.top().second;
    int max_depth = 0;
    std::vector<std::pair<int, int>> stack{{root, 0}};
    while (!stack.empty()) {
      auto [n, depth] = stack.back();
      stack.pop_back();
      const HNode& node = nodes[static_cast<size_t>(n)];
      if (node.symbol >= 0) {
        lengths[node.symbol] = static_cast<u8>(depth);
        max_depth = std::max(max_depth, depth);
      } else {
        stack.emplace_back(node.left, depth + 1);
        stack.emplace_back(node.right, depth + 1);
      }
    }
    if (max_depth <= kMaxBits) return lengths;
    // Dampen frequencies and retry; flattens the tree.
    for (auto& f : freq) {
      if (f) f = (f >> 2) + 1;
    }
  }
  DSIM_UNREACHABLE("huffman length limiting failed to converge");
}

/// Canonical code assignment from lengths (RFC 1951 style).
std::array<u32, kAlphabet> canonical_codes(
    const std::array<u8, kAlphabet>& lengths) {
  std::array<u32, kAlphabet> codes{};
  std::array<u32, kMaxBits + 2> bl_count{};
  for (int s = 0; s < kAlphabet; ++s) bl_count[lengths[s]]++;
  bl_count[0] = 0;
  std::array<u32, kMaxBits + 2> next_code{};
  u32 code = 0;
  for (int bits = 1; bits <= kMaxBits; ++bits) {
    code = (code + bl_count[bits - 1]) << 1;
    next_code[bits] = code;
  }
  for (int s = 0; s < kAlphabet; ++s) {
    if (lengths[s]) codes[s] = next_code[lengths[s]]++;
  }
  return codes;
}

/// Reverse bit order of `code` over `len` bits. We write LSB-first, so
/// canonical (MSB-first) codes are stored reversed to stay prefix-decodable.
u32 reverse_bits(u32 code, int len) {
  u32 r = 0;
  for (int i = 0; i < len; ++i) {
    r = (r << 1) | ((code >> i) & 1);
  }
  return r;
}

}  // namespace

std::vector<std::byte> huffman_encode(std::span<const std::byte> input) {
  std::array<u64, kAlphabet> freq{};
  for (std::byte b : input) freq[static_cast<u8>(b)]++;
  const auto lengths = code_lengths(freq);
  const auto codes = canonical_codes(lengths);

  ByteWriter header;
  for (int s = 0; s < kAlphabet; ++s) header.put_u8(lengths[s]);
  header.put_u64(input.size());

  BitWriter bits;
  for (std::byte b : input) {
    const int s = static_cast<u8>(b);
    bits.put_bits(reverse_bits(codes[s], lengths[s]), lengths[s]);
  }
  auto payload = bits.finish();
  header.put_bytes(payload);
  return header.take();
}

std::vector<std::byte> huffman_decode(std::span<const std::byte> input) {
  ByteReader reader(input);
  std::array<u8, kAlphabet> lengths{};
  for (int s = 0; s < kAlphabet; ++s) lengths[s] = reader.get_u8();
  const u64 count = reader.get_u64();
  const auto codes = canonical_codes(lengths);

  // Build a direct-indexed decode table over kMaxBits bits: each entry maps
  // the next kMaxBits (LSB-first) to (symbol, length).
  struct Entry {
    i16 symbol = -1;
    u8 len = 0;
  };
  std::vector<Entry> table(static_cast<size_t>(1) << kMaxBits);
  for (int s = 0; s < kAlphabet; ++s) {
    const int len = lengths[s];
    if (!len) continue;
    const u32 rcode = reverse_bits(codes[s], len);
    // All table slots whose low `len` bits equal rcode decode to s.
    const u32 step = 1u << len;
    for (u32 idx = rcode; idx < table.size(); idx += step) {
      table[idx] = {static_cast<i16>(s), static_cast<u8>(len)};
    }
  }

  std::vector<std::byte> out;
  out.reserve(count);
  // Bit-level scan with manual buffer (BitReader cannot peek past the end on
  // the final symbols, so pad the accumulator with zeros).
  auto payload = reader.get_bytes(reader.remaining());
  u64 acc = 0;
  int fill = 0;
  size_t pos = 0;
  for (u64 i = 0; i < count; ++i) {
    while (fill < kMaxBits && pos < payload.size()) {
      acc |= static_cast<u64>(static_cast<u8>(payload[pos++])) << fill;
      fill += 8;
    }
    const Entry e = table[acc & ((1u << kMaxBits) - 1)];
    DSIM_CHECK_MSG(e.symbol >= 0 && e.len > 0 && e.len <= fill + kMaxBits,
                   "corrupt huffman stream");
    out.push_back(static_cast<std::byte>(e.symbol));
    acc >>= e.len;
    fill -= e.len;
  }
  return out;
}

}  // namespace dsim::compress
