// Order-0 canonical Huffman coder over the 256-byte alphabet.
//
// Code lengths are limited to 15 bits (length-limited via the simple
// frequency-clamping iteration); the header stores 256 4-bit-packed...
// actually 256 bytes of code lengths (small next to payloads). Canonical
// assignment means the decoder can rebuild codes from lengths alone.
#pragma once

#include <span>
#include <vector>

#include "util/types.h"

namespace dsim::compress {

/// Encode `input` as [256 code lengths][u64 symbol count][bitstream].
std::vector<std::byte> huffman_encode(std::span<const std::byte> input);

/// Inverse of huffman_encode.
std::vector<std::byte> huffman_decode(std::span<const std::byte> input);

}  // namespace dsim::compress
