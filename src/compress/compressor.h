// Compression codecs for checkpoint images.
//
// DMTCP pipes checkpoint images through gzip by default (§5: "DMTCP
// dynamically invokes gzip before saving"). We implement a real gzip-like
// codec from scratch (LZ77 with hash-chain matching + order-0 canonical
// Huffman entropy stage, CRC-32 verified container) so that reported
// compressed sizes are measured, not modeled. An RLE codec and a null codec
// exist for tests and ablations.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/types.h"

namespace dsim::compress {

enum class CodecKind : u8 {
  kNone = 0,    // store; identity transform
  kRle = 1,     // run-length encoding (ablation / tests)
  kGzipish = 2, // LZ77 + canonical Huffman; the default "gzip"
  kLz77 = 3,    // LZ77 token stream alone (no entropy stage)
  kHuffman = 4, // order-0 canonical Huffman alone (no match stage)
};

std::string codec_name(CodecKind kind);

/// Parse a --compress value into a codec: "none", "lz77", "huffman",
/// "lz77+huffman" (the gzip-style two-stage default; "gzip" is accepted as
/// an alias). Returns false on an unknown name.
bool parse_codec(const std::string& name, CodecKind* out);

/// Relative single-core CPU cost of compressing one input byte under
/// `kind`, as a multiple of the gzip-class baseline (kGzipish == 1.0): the
/// match stage dominates, the entropy stage alone is cheap, and the null
/// codec costs nothing. The async pipeline prices its compress stage as
/// cost_factor * input_bytes / kCompressBw.
double codec_cost_factor(CodecKind kind);

/// A compression codec. Implementations are pure functions of their input
/// (no hidden state), so they are safe to share.
class Codec {
 public:
  virtual ~Codec() = default;
  virtual CodecKind kind() const = 0;

  /// Compress `input` into a self-describing container (magic, original
  /// size, CRC-32 of the original data, payload).
  virtual std::vector<std::byte> compress(
      std::span<const std::byte> input) const = 0;

  /// Decompress a container produced by `compress`. Aborts (DSIM_CHECK) on
  /// corrupt containers — checkpoint integrity is a hard invariant.
  virtual std::vector<std::byte> decompress(
      std::span<const std::byte> container) const = 0;
};

/// Singleton accessor for a codec implementation.
const Codec& codec(CodecKind kind);

/// Measured compression ratio (compressed/original) of a data sample under
/// `kind`. Used to extrapolate sizes of pattern (ballast) extents from a
/// materialized sample. Returns 1.0 for empty input.
double measure_ratio(CodecKind kind, std::span<const std::byte> sample);

}  // namespace dsim::compress
