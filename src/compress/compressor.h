// Compression codecs for checkpoint images.
//
// DMTCP pipes checkpoint images through gzip by default (§5: "DMTCP
// dynamically invokes gzip before saving"). We implement a real gzip-like
// codec from scratch (LZ77 with hash-chain matching + order-0 canonical
// Huffman entropy stage, CRC-32 verified container) so that reported
// compressed sizes are measured, not modeled. An RLE codec and a null codec
// exist for tests and ablations.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/types.h"

namespace dsim::compress {

enum class CodecKind : u8 {
  kNone = 0,   // store; identity transform
  kRle = 1,    // run-length encoding (ablation / tests)
  kGzipish = 2 // LZ77 + canonical Huffman; the default "gzip"
};

std::string codec_name(CodecKind kind);

/// A compression codec. Implementations are pure functions of their input
/// (no hidden state), so they are safe to share.
class Codec {
 public:
  virtual ~Codec() = default;
  virtual CodecKind kind() const = 0;

  /// Compress `input` into a self-describing container (magic, original
  /// size, CRC-32 of the original data, payload).
  virtual std::vector<std::byte> compress(
      std::span<const std::byte> input) const = 0;

  /// Decompress a container produced by `compress`. Aborts (DSIM_CHECK) on
  /// corrupt containers — checkpoint integrity is a hard invariant.
  virtual std::vector<std::byte> decompress(
      std::span<const std::byte> container) const = 0;
};

/// Singleton accessor for a codec implementation.
const Codec& codec(CodecKind kind);

/// Measured compression ratio (compressed/original) of a data sample under
/// `kind`. Used to extrapolate sizes of pattern (ballast) extents from a
/// materialized sample. Returns 1.0 for empty input.
double measure_ratio(CodecKind kind, std::span<const std::byte> sample);

}  // namespace dsim::compress
