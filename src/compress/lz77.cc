#include "compress/lz77.h"

#include <algorithm>
#include <cstring>

#include "util/assertx.h"

namespace dsim::compress {
namespace {

constexpr size_t kWindow = 1 << 16;     // 64 KiB back-reference window
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = 1 << 20;   // long matches make zero runs cheap
constexpr int kMaxChain = 32;           // match-finder effort bound
constexpr size_t kHashSize = 1 << 16;

u32 hash4(const std::byte* p) {
  u32 v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> 16;
}

void put_varint(std::vector<std::byte>& out, u64 v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::byte>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<std::byte>(v));
}

u64 get_varint(std::span<const std::byte> data, size_t& pos) {
  u64 v = 0;
  int shift = 0;
  while (true) {
    DSIM_CHECK_MSG(pos < data.size(), "lz77 stream truncated");
    const u8 b = static_cast<u8>(data[pos++]);
    v |= static_cast<u64>(b & 0x7F) << shift;
    if (!(b & 0x80)) break;
    shift += 7;
    DSIM_CHECK_MSG(shift < 64, "lz77 varint overflow");
  }
  return v;
}

}  // namespace

std::vector<std::byte> lz77_compress(std::span<const std::byte> input) {
  std::vector<std::byte> out;
  out.reserve(input.size() / 2 + 16);

  // head[h] = most recent position with hash h; prev[i % kWindow] = previous
  // position in the chain for position i.
  std::vector<i64> head(kHashSize, -1);
  std::vector<i64> prev(kWindow, -1);

  const size_t n = input.size();
  size_t lit_start = 0;  // start of pending literal run

  auto flush_literals = [&](size_t end) {
    if (end <= lit_start) return;
    out.push_back(std::byte{0x00});
    put_varint(out, end - lit_start);
    out.insert(out.end(), input.begin() + static_cast<ptrdiff_t>(lit_start),
               input.begin() + static_cast<ptrdiff_t>(end));
  };

  size_t i = 0;
  while (i < n) {
    size_t best_len = 0;
    size_t best_dist = 0;
    if (i + kMinMatch <= n) {
      const u32 h = hash4(input.data() + i);
      i64 cand = head[h];
      int chain = 0;
      while (cand >= 0 && i - static_cast<size_t>(cand) <= kWindow &&
             chain++ < kMaxChain) {
        const size_t c = static_cast<size_t>(cand);
        // Quick reject on first byte beyond current best.
        if (best_len == 0 || (c + best_len < n && i + best_len < n &&
                              input[c + best_len] == input[i + best_len])) {
          const size_t limit = std::min(n - i, kMaxMatch);
          size_t len = 0;
          while (len < limit && input[c + len] == input[i + len]) ++len;
          if (len > best_len) {
            best_len = len;
            best_dist = i - c;
            if (len >= limit) break;
          }
        }
        cand = prev[c % kWindow];
      }
    }

    if (best_len >= kMinMatch) {
      flush_literals(i);
      out.push_back(std::byte{0x01});
      put_varint(out, best_len);
      put_varint(out, best_dist);
      // Insert hash entries for the matched region (sparsely for speed).
      const size_t end = i + best_len;
      const size_t stride = best_len > 512 ? 61 : 1;
      for (size_t j = i; j + kMinMatch <= n && j < end; j += stride) {
        const u32 h = hash4(input.data() + j);
        prev[j % kWindow] = head[h];
        head[h] = static_cast<i64>(j);
      }
      i = end;
      lit_start = i;
    } else {
      if (i + kMinMatch <= n) {
        const u32 h = hash4(input.data() + i);
        prev[i % kWindow] = head[h];
        head[h] = static_cast<i64>(i);
      }
      ++i;
    }
  }
  flush_literals(n);
  return out;
}

std::vector<std::byte> lz77_decompress(std::span<const std::byte> tokens,
                                       u64 expected_size) {
  std::vector<std::byte> out;
  out.reserve(expected_size);
  size_t pos = 0;
  while (pos < tokens.size()) {
    const u8 op = static_cast<u8>(tokens[pos++]);
    if (op == 0x00) {
      const u64 len = get_varint(tokens, pos);
      DSIM_CHECK_MSG(pos + len <= tokens.size(), "lz77 literal overrun");
      out.insert(out.end(), tokens.begin() + static_cast<ptrdiff_t>(pos),
                 tokens.begin() + static_cast<ptrdiff_t>(pos + len));
      pos += len;
    } else if (op == 0x01) {
      const u64 len = get_varint(tokens, pos);
      const u64 dist = get_varint(tokens, pos);
      DSIM_CHECK_MSG(dist > 0 && dist <= out.size(), "lz77 bad distance");
      size_t src = out.size() - dist;
      for (u64 k = 0; k < len; ++k) out.push_back(out[src + k]);
    } else {
      DSIM_UNREACHABLE("lz77 bad opcode");
    }
  }
  DSIM_CHECK_MSG(out.size() == expected_size, "lz77 size mismatch");
  return out;
}

}  // namespace dsim::compress
