// Bit-level I/O for the Huffman entropy stage.
#pragma once

#include <span>
#include <vector>

#include "util/assertx.h"
#include "util/types.h"

namespace dsim::compress {

/// LSB-first bit writer (gzip convention).
class BitWriter {
 public:
  void put_bits(u32 value, int nbits) {
    DSIM_CHECK(nbits >= 0 && nbits <= 24);
    acc_ |= static_cast<u64>(value & ((1u << nbits) - 1)) << fill_;
    fill_ += nbits;
    while (fill_ >= 8) {
      out_.push_back(static_cast<std::byte>(acc_ & 0xFF));
      acc_ >>= 8;
      fill_ -= 8;
    }
  }

  std::vector<std::byte> finish() {
    if (fill_ > 0) {
      out_.push_back(static_cast<std::byte>(acc_ & 0xFF));
      acc_ = 0;
      fill_ = 0;
    }
    return std::move(out_);
  }

 private:
  std::vector<std::byte> out_;
  u64 acc_ = 0;
  int fill_ = 0;
};

/// LSB-first bit reader.
class BitReader {
 public:
  explicit BitReader(std::span<const std::byte> data) : data_(data) {}

  u32 get_bits(int nbits) {
    DSIM_CHECK(nbits >= 0 && nbits <= 24);
    while (fill_ < nbits) {
      DSIM_CHECK_MSG(pos_ < data_.size(), "bitstream truncated");
      acc_ |= static_cast<u64>(static_cast<u8>(data_[pos_++])) << fill_;
      fill_ += 8;
    }
    u32 v = static_cast<u32>(acc_ & ((1u << nbits) - 1));
    acc_ >>= nbits;
    fill_ -= nbits;
    return v;
  }

  u32 get_bit() { return get_bits(1); }

 private:
  std::span<const std::byte> data_;
  size_t pos_ = 0;
  u64 acc_ = 0;
  int fill_ = 0;
};

}  // namespace dsim::compress
