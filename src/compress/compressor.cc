#include "compress/compressor.h"

#include <array>

#include "compress/huffman.h"
#include "compress/lz77.h"
#include "util/assertx.h"
#include "util/crc32.h"
#include "util/serialize.h"

namespace dsim::compress {
namespace {

constexpr u32 kMagic = 0x315A4744;  // "DGZ1"

// Container: [u32 magic][u8 kind][u64 orig_size][u32 crc32][payload]
std::vector<std::byte> wrap(CodecKind kind, std::span<const std::byte> input,
                            std::span<const std::byte> payload) {
  ByteWriter w;
  w.put_u32(kMagic);
  w.put_u8(static_cast<u8>(kind));
  w.put_u64(input.size());
  w.put_u32(crc32(input));
  w.put_bytes(payload);
  return w.take();
}

struct Header {
  CodecKind kind;
  u64 orig_size;
  u32 crc;
  std::span<const std::byte> payload;
};

Header unwrap(std::span<const std::byte> container) {
  ByteReader r(container);
  DSIM_CHECK_MSG(r.get_u32() == kMagic, "bad checkpoint container magic");
  Header h;
  h.kind = static_cast<CodecKind>(r.get_u8());
  h.orig_size = r.get_u64();
  h.crc = r.get_u32();
  h.payload = r.get_bytes(r.remaining());
  return h;
}

void verify(const Header& h, std::span<const std::byte> out) {
  DSIM_CHECK_MSG(out.size() == h.orig_size, "decompressed size mismatch");
  DSIM_CHECK_MSG(crc32(out) == h.crc, "checkpoint image CRC mismatch");
}

class NoneCodec final : public Codec {
 public:
  CodecKind kind() const override { return CodecKind::kNone; }
  std::vector<std::byte> compress(
      std::span<const std::byte> input) const override {
    return wrap(kind(), input, input);
  }
  std::vector<std::byte> decompress(
      std::span<const std::byte> container) const override {
    const Header h = unwrap(container);
    DSIM_CHECK(h.kind == CodecKind::kNone);
    std::vector<std::byte> out(h.payload.begin(), h.payload.end());
    verify(h, out);
    return out;
  }
};

class RleCodec final : public Codec {
 public:
  CodecKind kind() const override { return CodecKind::kRle; }

  std::vector<std::byte> compress(
      std::span<const std::byte> input) const override {
    // [run length u8 (1..255)][byte], repeated.
    std::vector<std::byte> payload;
    payload.reserve(input.size() / 4 + 16);
    size_t i = 0;
    while (i < input.size()) {
      size_t run = 1;
      while (i + run < input.size() && run < 255 &&
             input[i + run] == input[i]) {
        ++run;
      }
      payload.push_back(static_cast<std::byte>(run));
      payload.push_back(input[i]);
      i += run;
    }
    return wrap(kind(), input, payload);
  }

  std::vector<std::byte> decompress(
      std::span<const std::byte> container) const override {
    const Header h = unwrap(container);
    DSIM_CHECK(h.kind == CodecKind::kRle);
    std::vector<std::byte> out;
    out.reserve(h.orig_size);
    DSIM_CHECK_MSG(h.payload.size() % 2 == 0, "rle payload corrupt");
    for (size_t i = 0; i < h.payload.size(); i += 2) {
      const auto run = static_cast<size_t>(h.payload[i]);
      out.insert(out.end(), run, h.payload[i + 1]);
    }
    verify(h, out);
    return out;
  }
};

class GzipishCodec final : public Codec {
 public:
  CodecKind kind() const override { return CodecKind::kGzipish; }

  std::vector<std::byte> compress(
      std::span<const std::byte> input) const override {
    auto tokens = lz77_compress(input);
    auto entropy = huffman_encode(tokens);
    // Keep whichever representation is smaller; flag in first payload byte.
    ByteWriter w;
    if (entropy.size() + 1 < input.size()) {
      w.put_u8(1);
      w.put_u64(tokens.size());
      w.put_bytes(entropy);
    } else {
      w.put_u8(0);  // incompressible; store raw
      w.put_bytes(input);
    }
    auto payload = w.take();
    return wrap(kind(), input, payload);
  }

  std::vector<std::byte> decompress(
      std::span<const std::byte> container) const override {
    const Header h = unwrap(container);
    DSIM_CHECK(h.kind == CodecKind::kGzipish);
    ByteReader r(h.payload);
    const u8 mode = r.get_u8();
    std::vector<std::byte> out;
    if (mode == 0) {
      auto raw = r.get_bytes(r.remaining());
      out.assign(raw.begin(), raw.end());
    } else {
      const u64 token_size = r.get_u64();
      auto tokens = huffman_decode(r.get_bytes(r.remaining()));
      DSIM_CHECK_MSG(tokens.size() == token_size, "gzipish token size");
      out = lz77_decompress(tokens, h.orig_size);
    }
    verify(h, out);
    return out;
  }
};

class Lz77Codec final : public Codec {
 public:
  CodecKind kind() const override { return CodecKind::kLz77; }

  std::vector<std::byte> compress(
      std::span<const std::byte> input) const override {
    auto tokens = lz77_compress(input);
    ByteWriter w;
    if (tokens.size() + 1 < input.size()) {
      w.put_u8(1);
      w.put_bytes(tokens);
    } else {
      w.put_u8(0);  // incompressible; store raw
      w.put_bytes(input);
    }
    auto payload = w.take();
    return wrap(kind(), input, payload);
  }

  std::vector<std::byte> decompress(
      std::span<const std::byte> container) const override {
    const Header h = unwrap(container);
    DSIM_CHECK(h.kind == CodecKind::kLz77);
    ByteReader r(h.payload);
    const u8 mode = r.get_u8();
    std::vector<std::byte> out;
    if (mode == 0) {
      auto raw = r.get_bytes(r.remaining());
      out.assign(raw.begin(), raw.end());
    } else {
      out = lz77_decompress(r.get_bytes(r.remaining()), h.orig_size);
    }
    verify(h, out);
    return out;
  }
};

class HuffmanCodec final : public Codec {
 public:
  CodecKind kind() const override { return CodecKind::kHuffman; }

  std::vector<std::byte> compress(
      std::span<const std::byte> input) const override {
    auto entropy = huffman_encode(input);
    ByteWriter w;
    if (entropy.size() + 1 < input.size()) {
      w.put_u8(1);
      w.put_bytes(entropy);
    } else {
      w.put_u8(0);  // incompressible (or tiny); store raw
      w.put_bytes(input);
    }
    auto payload = w.take();
    return wrap(kind(), input, payload);
  }

  std::vector<std::byte> decompress(
      std::span<const std::byte> container) const override {
    const Header h = unwrap(container);
    DSIM_CHECK(h.kind == CodecKind::kHuffman);
    ByteReader r(h.payload);
    const u8 mode = r.get_u8();
    std::vector<std::byte> out;
    if (mode == 0) {
      auto raw = r.get_bytes(r.remaining());
      out.assign(raw.begin(), raw.end());
    } else {
      out = huffman_decode(r.get_bytes(r.remaining()));
    }
    verify(h, out);
    return out;
  }
};

}  // namespace

std::string codec_name(CodecKind kind) {
  switch (kind) {
    case CodecKind::kNone: return "none";
    case CodecKind::kRle: return "rle";
    case CodecKind::kGzipish: return "gzip";
    case CodecKind::kLz77: return "lz77";
    case CodecKind::kHuffman: return "huffman";
  }
  return "?";
}

bool parse_codec(const std::string& name, CodecKind* out) {
  if (name == "none") *out = CodecKind::kNone;
  else if (name == "rle") *out = CodecKind::kRle;
  else if (name == "lz77") *out = CodecKind::kLz77;
  else if (name == "huffman") *out = CodecKind::kHuffman;
  else if (name == "lz77+huffman" || name == "gzip") *out = CodecKind::kGzipish;
  else return false;
  return true;
}

double codec_cost_factor(CodecKind kind) {
  switch (kind) {
    case CodecKind::kNone: return 0.0;
    case CodecKind::kRle: return 0.05;
    case CodecKind::kHuffman: return 0.30;  // entropy stage only
    case CodecKind::kLz77: return 0.70;     // match stage only
    case CodecKind::kGzipish: return 1.0;   // both stages: the baseline
  }
  return 1.0;
}

const Codec& codec(CodecKind kind) {
  static const NoneCodec none;
  static const RleCodec rle;
  static const GzipishCodec gz;
  static const Lz77Codec lz;
  static const HuffmanCodec huff;
  switch (kind) {
    case CodecKind::kNone: return none;
    case CodecKind::kRle: return rle;
    case CodecKind::kGzipish: return gz;
    case CodecKind::kLz77: return lz;
    case CodecKind::kHuffman: return huff;
  }
  DSIM_UNREACHABLE("unknown codec");
}

double measure_ratio(CodecKind kind, std::span<const std::byte> sample) {
  if (sample.empty()) return 1.0;
  const auto out = codec(kind).compress(sample);
  return static_cast<double>(out.size()) / static_cast<double>(sample.size());
}

}  // namespace dsim::compress
