// LZ77 token stream with hash-chain match finding.
//
// Token format (byte-oriented, later entropy-coded by the Huffman stage):
//   0x00 <varint len> <len literal bytes>     -- literal run
//   0x01 <varint len> <varint dist>           -- match (copy len from dist)
// Matches may be self-overlapping (dist < len), which encodes runs; long
// zero regions therefore collapse to a handful of bytes, reproducing gzip's
// behaviour on the NAS/IS mostly-zero buckets (§5.4).
#pragma once

#include <span>
#include <vector>

#include "util/types.h"

namespace dsim::compress {

std::vector<std::byte> lz77_compress(std::span<const std::byte> input);
std::vector<std::byte> lz77_decompress(std::span<const std::byte> tokens,
                                       u64 expected_size);

}  // namespace dsim::compress
