#include "baseline/dejavu.h"

namespace dsim::baseline {

double dejavu_runtime_seconds(const DejaVuModel& m, double plain_seconds,
                              u64 comm_bytes, u64 dirty_bytes) {
  const double log_cost =
      static_cast<double>(comm_bytes) / m.log_bytes_per_sec;
  const double fault_cost = static_cast<double>(dirty_bytes / 4096) *
                            m.page_fault_us * 1e-6;
  return plain_seconds * (1.0 + m.cpu_overhead) + log_cost + fault_cost;
}

double dejavu_checkpoint_seconds(const DejaVuModel& m, u64 dirty_bytes) {
  return m.quiesce_seconds +
         static_cast<double>(dirty_bytes) / m.ckpt_disk_bw;
}

}  // namespace dsim::baseline
