// DejaVu-style baseline checkpointer model (§2 comparison).
//
// DejaVu (Ruscio et al.) takes a more invasive approach than DMTCP: it logs
// all communication and uses page protection to detect modified pages, which
// costs overhead during normal execution — Ruscio et al. report ~45 %
// overhead on a Chombo benchmark with ten checkpoints per hour, versus
// DMTCP's essentially-zero overhead between checkpoints. DejaVu was not
// publicly available (the paper could not obtain it either), so this module
// models its published cost structure rather than its implementation:
//   - every CPU second of application work costs (1 + kCpuOverhead);
//   - every transmitted byte is additionally logged (kLogByteCost);
//   - a checkpoint writes the dirty-page set at disk speed after a global
//     quiesce (no streaming drain protocol).
// bench_baseline_dejavu applies this model to the same Chombo-like workload
// DMTCP checkpoints, reproducing the comparison's shape.
#pragma once

#include "util/types.h"

namespace dsim::baseline {

struct DejaVuModel {
  double cpu_overhead = 0.45;      // reported runtime overhead
  double log_bytes_per_sec = 35e6; // message-log flush bandwidth
  double page_fault_us = 4.0;      // write-protect fault per dirty page
  double ckpt_disk_bw = 80e6;      // dirty pages to disk (no page-cache trick)
  double quiesce_seconds = 0.8;    // global stop + log flush coordination
};

/// Projected run time of a workload under DejaVu given its plain run time,
/// total communicated bytes and dirty memory footprint.
double dejavu_runtime_seconds(const DejaVuModel& m, double plain_seconds,
                              u64 comm_bytes, u64 dirty_bytes);

/// Projected duration of one DejaVu checkpoint.
double dejavu_checkpoint_seconds(const DejaVuModel& m, u64 dirty_bytes);

}  // namespace dsim::baseline
