#include "cluster/membership.h"

#include "obs/trace.h"
#include "sim/model_params.h"
#include "util/assertx.h"
#include "util/logging.h"

namespace dsim::cluster {

namespace params = sim::params;

Membership::Membership(sim::EventLoop& loop, sim::Network& net,
                       std::shared_ptr<rpc::NodeHealth> health,
                       MembershipConfig cfg)
    : loop_(loop),
      health_(health ? std::move(health)
                     : std::make_shared<rpc::NodeHealth>(net.num_nodes())),
      fabric_(loop, net, health_),
      cfg_(cfg),
      states_(static_cast<size_t>(net.num_nodes()), NodeState::kAlive),
      misses_(static_cast<size_t>(net.num_nodes()), 0),
      timer_(loop) {
  DSIM_CHECK_MSG(cfg_.heartbeat_interval > 0,
                 "heartbeat interval must be positive");
  DSIM_CHECK_MSG(cfg_.heartbeat_misses >= 1,
                 "a node must be allowed at least one miss before death");
  DSIM_CHECK_MSG(cfg_.monitor_node >= 0 &&
                     cfg_.monitor_node < net.num_nodes(),
                 "membership monitor is outside the cluster");
}

void Membership::start() {
  timer_.start(cfg_.heartbeat_interval, [this] { tick(); });
}

void Membership::stop() { timer_.stop(); }

void Membership::tick() {
  // One probe per monitored node per interval. Acks ride the normal return
  // hop; a probe to a dead node fails at the fabric (the request arrives
  // nowhere) and counts as a miss. Probes already in flight when the next
  // tick fires are fine: miss counting is per-response, and a late ack
  // resets the counter.
  for (NodeId n = 0; n < num_nodes(); ++n) {
    if (n == cfg_.monitor_node) continue;
    if (states_[static_cast<size_t>(n)] == NodeState::kDead) continue;
    stats_.heartbeats_sent++;
    // Standalone probe span (trace_id 0): covers send -> ack/miss, so the
    // trace shows detection-latency gaps as missing heartbeat lanes.
    u64 span = 0;
    if (obs::Tracer* tr = loop_.tracer()) {
      span = tr->begin("cluster.heartbeat", cfg_.monitor_node, "heartbeat",
                       loop_.now());
    }
    fabric_.call(
        cfg_.monitor_node, n, params::kHeartbeatBytes,
        params::kHeartbeatBytes,
        [](rpc::RpcFabric::Reply reply) { reply(); },
        [this, n, span] {
          if (obs::Tracer* tr = loop_.tracer()) tr->end(span, loop_.now());
          on_ack(n);
        },
        [this, n, span] {
          if (obs::Tracer* tr = loop_.tracer()) tr->end(span, loop_.now());
          on_miss(n);
        });
  }
}

void Membership::on_ack(NodeId n) {
  stats_.heartbeat_acks++;
  misses_[static_cast<size_t>(n)] = 0;
  if (states_[static_cast<size_t>(n)] == NodeState::kSuspect) {
    transition(n, NodeState::kAlive);
  }
}

void Membership::on_miss(NodeId n) {
  stats_.heartbeat_misses++;
  const NodeState st = states_[static_cast<size_t>(n)];
  if (st == NodeState::kDead) return;  // already declared (e.g. straggler)
  const int misses = ++misses_[static_cast<size_t>(n)];
  if (misses >= cfg_.heartbeat_misses) {
    transition(n, NodeState::kDead);
  } else if (st == NodeState::kAlive) {
    transition(n, NodeState::kSuspect);
  }
}

void Membership::transition(NodeId n, NodeState to) {
  NodeState& st = states_.at(static_cast<size_t>(n));
  if (st == to) return;
  const NodeState from = st;
  st = to;
  if (to == NodeState::kSuspect) stats_.suspicions++;
  if (to == NodeState::kDead) {
    stats_.deaths++;
    LOG_INFO("membership: node %d declared dead (%llu consecutive misses)",
             n,
             static_cast<unsigned long long>(
                 misses_[static_cast<size_t>(n)]));
  }
  for (const Listener& l : listeners_) l(n, from, to);
}

void Membership::kill_node(NodeId n) {
  DSIM_CHECK_MSG(n >= 0 && n < num_nodes(),
                 "kill_node names a node outside the cluster");
  DSIM_CHECK_MSG(n != cfg_.monitor_node,
                 "killing the membership monitor is not modeled (the "
                 "coordinator is outside the computation, §3)");
  if (!health_->up(n)) return;  // already dead
  health_->fail(n);
  if (!started()) {
    // No detector running (standalone service tests): declare immediately
    // so direct-driven failover still happens.
    misses_[static_cast<size_t>(n)] = cfg_.heartbeat_misses;
    transition(n, NodeState::kDead);
  }
  // Otherwise the heartbeat loop notices the silence: first miss suspects,
  // heartbeat_misses-th declares — the detection latency failover's replay
  // machinery exists to absorb.
}

void Membership::revive_node(NodeId n) {
  DSIM_CHECK_MSG(n >= 0 && n < num_nodes(),
                 "revive_node names a node outside the cluster");
  health_->revive(n);
  misses_[static_cast<size_t>(n)] = 0;
  transition(n, NodeState::kAlive);
}

}  // namespace dsim::cluster
