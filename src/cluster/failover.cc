#include "cluster/failover.h"

#include "util/logging.h"

namespace dsim::cluster {

FailoverManager::FailoverManager(Membership& membership,
                                 ckptstore::ChunkStoreService& svc)
    : membership_(membership), svc_(svc) {
  membership_.subscribe([this](NodeId n, NodeState from, NodeState to) {
    on_transition(n, from, to);
  });
}

void FailoverManager::on_transition(NodeId node, NodeState from,
                                    NodeState to) {
  if (to == NodeState::kSuspect) {
    stats_.suspicions_seen++;
    LOG_INFO("failover: node %d suspected (missed a heartbeat)", node);
    return;
  }
  if (to == NodeState::kAlive && from != NodeState::kAlive) {
    // Revival — explicit (revive_node) or a transient death whose
    // heartbeat ack beat the miss threshold. Either way requests parked
    // against the node's endpoints must replay now: no kDead declaration
    // means no re-home will ever flush them.
    svc_.handle_node_revival(node);
    return;
  }
  if (to != NodeState::kDead) return;
  stats_.deaths_handled++;
  const u64 replayed_before = svc_.stats().replayed_requests;
  const int rehomed = svc_.handle_node_death(node);
  stats_.shards_rehomed += static_cast<u64>(rehomed);
  stats_.requests_replayed +=
      svc_.stats().replayed_requests - replayed_before;
  LOG_INFO("failover: node %d dead -> %d shard(s) re-homed, heal kicked",
           node, rehomed);
}

}  // namespace dsim::cluster
