// Shard failover: the membership consumer that keeps the chunk store
// serving through node death.
//
// Before this subsystem, a dead shard endpoint stranded its FIFO index
// queue and every in-flight request forever — fail_node() only told the
// re-replication daemon. The failover manager closes the loop:
//
//   membership kDead(n) ──► ChunkStoreService::handle_node_death(n)
//                               ├── heal daemon: re-replicate the chunk
//                               │   copies node n held (R >= 2)
//                               └── every shard whose endpoint was n:
//                                     re-home to the next live node in the
//                                     shard's rendezvous order, replay its
//                                     parked requests there (FIFO)
//
// Requests are idempotent by chunk key, so a caller whose Lookup/Store/
// Fetch was in flight when the endpoint died observes elevated latency —
// the detection window plus the replay — never an error. The manager also
// subscribes to suspicion transitions purely for observability (operators
// of the real system would page on flapping suspects).
#pragma once

#include "ckptstore/service.h"
#include "cluster/membership.h"
#include "util/types.h"

namespace dsim::cluster {

struct FailoverStats {
  u64 deaths_handled = 0;
  u64 shards_rehomed = 0;
  u64 requests_replayed = 0;  // parked requests re-issued after re-homes
  u64 suspicions_seen = 0;
};

class FailoverManager {
 public:
  /// Subscribes to `membership` on construction; both referents must
  /// outlive the manager (DmtcpShared owns all three).
  FailoverManager(Membership& membership, ckptstore::ChunkStoreService& svc);

  const FailoverStats& stats() const { return stats_; }

 private:
  void on_transition(NodeId node, NodeState from, NodeState to);

  Membership& membership_;
  ckptstore::ChunkStoreService& svc_;
  FailoverStats stats_;
};

}  // namespace dsim::cluster
