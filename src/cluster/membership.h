// Cluster membership: heartbeat failure detection for the chunk store.
//
// DMTCP's coordinator is the one process that knows which peers are alive,
// yet until this subsystem existed our store treated node death as an
// out-of-band fail_node() call that only the re-replication daemon reacted
// to — a shard endpoint that died silently stranded its FIFO queue and
// every in-flight Lookup/Store/Fetch. stdchk's lesson is that a checkpoint
// store built on failure-prone contributor nodes needs *first-class*
// membership: someone must notice the silence and drive recovery.
//
// The membership service runs on the coordinator's node (the monitor) and
// heartbeats every other node over the RPC fabric:
//
//             ack within interval              miss                miss x N
//   kAlive ─────────────────────┐   ┌─────► kSuspect ──────────► kDead
//      ▲                        │   │           │                   │
//      └────────────────────────┘   │           │ ack (resets)      │ final
//      └── ack while suspect ◄──────┴───────────┘                   ▼
//                                                      listeners (failover)
//
// One missed heartbeat moves a node to kSuspect (it may just be slow — the
// fabric inherits Network::set_jitter); `heartbeat_misses` *consecutive*
// misses declare it kDead and notify subscribers (the shard failover
// manager re-homes its shards; the heal daemon restores its replicas).
// kDead is terminal for a given incarnation: revive_node() readmits the
// node as a fresh member.
//
// Ground truth vs. detection: kill_node() is the *simulation's* kill switch
// — it marks the node down in the shared rpc::NodeHealth map immediately
// (bytes and RPCs stop being chargeable the instant the node dies), while
// the membership *state machine* only learns of the death through missed
// heartbeats, `heartbeat_misses x heartbeat_interval` later. That gap is
// the detection latency real systems live with, and the failover replay
// machinery is what makes it survivable. Without a running heartbeat loop
// (standalone construction in unit tests) kill_node() declares the death
// immediately so direct-driven services still fail over.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "rpc/rpc.h"
#include "sim/event_loop.h"
#include "sim/net.h"
#include "util/types.h"

namespace dsim::cluster {

enum class NodeState : u8 { kAlive = 0, kSuspect = 1, kDead = 2 };

struct MembershipConfig {
  /// --heartbeat-interval: one probe per monitored node per interval.
  SimTime heartbeat_interval = 10 * timeconst::kMillisecond;
  /// --heartbeat-misses: consecutive misses before kSuspect becomes kDead.
  int heartbeat_misses = 3;
  /// The monitor (the coordinator's node) — never probed, assumed alive.
  NodeId monitor_node = 0;
};

struct MembershipStats {
  u64 heartbeats_sent = 0;
  u64 heartbeat_acks = 0;
  u64 heartbeat_misses = 0;  // probes that fired their failure path
  u64 suspicions = 0;        // kAlive -> kSuspect transitions
  u64 deaths = 0;            // -> kDead transitions
};

class Membership {
 public:
  /// `health` is the cluster's shared RPC liveness map (the same object the
  /// chunk-store service's fabric consults); the membership fabric shares
  /// it so a heartbeat to a killed node fails exactly like a store request.
  Membership(sim::EventLoop& loop, sim::Network& net,
             std::shared_ptr<rpc::NodeHealth> health, MembershipConfig cfg);

  /// Begin (or stop) the heartbeat loop. Heartbeats contend on the
  /// monitor's NIC like any other traffic.
  void start();
  void stop();
  bool started() const { return timer_.running(); }

  NodeState state(NodeId n) const {
    return states_.at(static_cast<size_t>(n));
  }
  bool alive(NodeId n) const { return state(n) != NodeState::kDead; }
  int num_nodes() const { return static_cast<int>(states_.size()); }

  /// Transition listener, called as (node, from, to). Subscribed by the
  /// shard failover manager; fires on every state change including
  /// suspicion, so subscribers can pre-stage recovery.
  using Listener = std::function<void(NodeId, NodeState, NodeState)>;
  void subscribe(Listener l) { listeners_.push_back(std::move(l)); }

  /// Simulation ground truth: the node dies *now* (its NodeHealth entry
  /// flips immediately). With the heartbeat loop running the state machine
  /// detects the death after ~misses x interval; without it the death is
  /// declared synchronously.
  void kill_node(NodeId n);
  /// Readmit a node: health up, state kAlive, miss counter cleared.
  void revive_node(NodeId n);

  const MembershipStats& stats() const { return stats_; }
  const rpc::RpcFabric& fabric() const { return fabric_; }
  const MembershipConfig& config() const { return cfg_; }

 private:
  void tick();
  void on_ack(NodeId n);
  void on_miss(NodeId n);
  void transition(NodeId n, NodeState to);

  sim::EventLoop& loop_;
  std::shared_ptr<rpc::NodeHealth> health_;
  rpc::RpcFabric fabric_;  // own fabric, shared health: heartbeat traffic
                           // contends on NICs but is attributed separately
                           // from store requests in per-round stats
  MembershipConfig cfg_;
  std::vector<NodeState> states_;
  std::vector<int> misses_;  // consecutive misses per node
  std::vector<Listener> listeners_;
  MembershipStats stats_;
  sim::PeriodicTimer timer_;
};

}  // namespace dsim::cluster
