// MPI process-manager runtimes.
//
// Two launch stacks mirror the paper's §5.2 configurations:
//  - MPICH2-like: `mpdboot` spawns an `mpd` daemon per node over ssh (the
//    DMTCP-intercepted path, §3); the daemons connect into a ring and keep
//    a token circulating. `mpd_mpirun` contacts each mpd over a control
//    connection to spawn the rank processes.
//  - OpenMPI-like: `orte_mpirun` spawns an `orted` daemon per node over
//    ssh; orteds connect back to mpirun (a star), which commands them to
//    spawn ranks.
// All daemons and launchers are ordinary simulated processes and are part
// of the checkpointed computation — exactly what the paper's "Baseline"
// rows in Fig. 4 measure ("the cost of checkpointing MPICH2 and its
// resource manager, MPD").
#pragma once

#include "sim/kernel.h"

namespace dsim::mpi {

/// Register mpdboot/mpd/mpd_mpirun/orted/orte_mpirun with the kernel.
void register_runtime_programs(sim::Kernel& k);

/// Control port of the mpd daemon on a node.
inline constexpr u16 kMpdPortBase = 21000;
/// Port mpirun (OpenMPI-like) listens on for orted call-backs.
inline constexpr u16 kOrtePort = 22000;

/// Convenience used by benches: argv for `mpd_mpirun`/`orte_mpirun`:
///   [np, nnodes, prog, appargs...]; the rank processes receive
///   [appargs..., rank, np, nnodes].
std::vector<std::string> mpirun_argv(int np, int nnodes,
                                     const std::string& prog,
                                     std::vector<std::string> app_args);

}  // namespace dsim::mpi
