#include "mpi/mpi.h"

#include "util/assertx.h"

namespace dsim::mpi {

using apps::buffer;
using sim::MemRef;

namespace {
// Sub-state for in-flight init handshakes (field of MpiPersist via copy).
}  // namespace

Engine::Engine(sim::ProcessCtx& ctx, int rank, int size, int nnodes,
               u64 scratch_bytes)
    : ctx_(ctx), scratch_bytes_(scratch_bytes) {
  DSIM_CHECK(size <= kMaxRanks);
  sim::MemSegment* st = ctx.seg("mpi_state");
  if (!st) {
    st = &ctx.alloc("mpi_state", sim::MemKind::kData, sizeof(MpiPersist));
    MpiPersist fresh;
    fresh.rank = rank;
    fresh.size = size;
    fresh.nnodes = nnodes;
    fresh.pend_fd = kNoFd;
    for (auto& f : fresh.fds) f = kNoFd;
    ctx.store(MemRef{st, 0}, fresh);
  }
  stref_ = MemRef{st, 0};
  scratch_ = buffer(ctx, "mpi_scratch", scratch_bytes);
  cached_ = ctx.load<MpiPersist>(stref_);
}

Fd Engine::fd_of(int peer) {
  DSIM_CHECK(peer >= 0 && peer < cached_.size && peer != cached_.rank);
  const Fd fd = cached_.fds[peer];
  DSIM_CHECK_MSG(fd != kNoFd, "MPI: no connection to peer (init incomplete?)");
  return fd;
}

Task<void> Engine::init() {
  MpiPersist p = load();
  MemRef hello_out = buffer(ctx_, "mpi_hello_out", 4);
  MemRef hello_in = buffer(ctx_, "mpi_hello_in", 4);

  if (p.init_stage == 0) {
    const Fd lfd = co_await ctx_.socket();
    const bool ok =
        co_await ctx_.bind(lfd, static_cast<u16>(kPortBase + p.rank));
    DSIM_CHECK_MSG(ok, "MPI: rank rendezvous port taken");
    co_await ctx_.listen(lfd);
    p.lfd = lfd;
    ctx_.store<i32>(hello_out, p.rank);
    p.init_stage = 1;
    store(p);
  }
  if (p.init_stage == 1) {
    // Connect to all lower ranks; identify ourselves with a 4-byte hello.
    while (p.connect_i < p.rank) {
      const int j = p.connect_i;
      if (p.pend_fd == kNoFd) {
        const Fd fd = co_await ctx_.socket();
        p.pend_fd = fd;
        store(p);
      }
      if (sim::TcpVNode* s = ctx_.fd_tcp(p.pend_fd);
          s && s->state == sim::TcpVNode::State::kRaw) {
        const sim::SockAddr addr{node_of(j),
                                 static_cast<u16>(kPortBase + j)};
        while (!co_await ctx_.connect(p.pend_fd, addr)) {
          co_await ctx_.sleep(2 * timeconst::kMillisecond);
        }
      }
      co_await ctx_.write_exact(p.pend_fd, hello_out, 4, kRegA);
      p.fds[j] = p.pend_fd;
      p.pend_fd = kNoFd;
      p.connect_i = j + 1;
      store(p);
    }
    p.init_stage = 2;
    store(p);
  }
  if (p.init_stage == 2) {
    // Accept from all higher ranks; they identify themselves.
    while (p.accept_n < p.size - 1 - p.rank) {
      if (p.pend_fd == kNoFd) {
        const Fd fd = co_await ctx_.accept(p.lfd);
        DSIM_CHECK(fd != kNoFd);
        p.pend_fd = fd;
        store(p);
      }
      co_await ctx_.read_exact(p.pend_fd, hello_in, 4, kRegB);
      const i32 peer = ctx_.load<i32>(hello_in);
      DSIM_CHECK(peer > p.rank && peer < p.size);
      p.fds[peer] = p.pend_fd;
      p.pend_fd = kNoFd;
      p.accept_n++;
      store(p);
    }
    p.init_stage = 3;
    store(p);
  }
}

Task<void> Engine::send(int peer, MemRef buf, u64 len) {
  co_await ctx_.write_exact(fd_of(peer), buf, len, kRegA);
}

Task<void> Engine::recv(int peer, MemRef buf, u64 len) {
  co_await ctx_.read_exact(fd_of(peer), buf, len, kRegB);
}

Task<void> Engine::sendrecv(int peer, MemRef sbuf, MemRef rbuf, u64 len) {
  // Rank order breaks send-send deadlocks for transfers larger than the
  // socket buffering capacity.
  if (cached_.rank < peer) {
    co_await send(peer, sbuf, len);
    co_await recv(peer, rbuf, len);
  } else {
    co_await recv(peer, rbuf, len);
    co_await send(peer, sbuf, len);
  }
}

// Collectives use flat deterministic schedules: progress is a single
// coll_step counter, which makes the restart contract trivial to audit.
// (Tree algorithms would shave latency but change nothing the experiments
// measure.)

Task<void> Engine::reduce_sum(int root, MemRef buf, u64 count) {
  MpiPersist p = load();
  const u64 bytes = count * sizeof(double);
  DSIM_CHECK(bytes <= scratch_bytes_);
  if (p.rank != root) {
    if (p.coll_step == 0) {
      co_await send(root, buf, bytes);
      p.coll_step = 0;  // single-step op; falls through to completion
      store(p);
    }
  } else {
    while (p.coll_step < static_cast<u32>(p.size - 1)) {
      const int peer =
          (root + 1 + static_cast<int>(p.coll_step)) % p.size;
      co_await recv(peer, scratch_, bytes);
      // Accumulate (atomic with the step bump: no awaits in between).
      std::vector<double> acc(count), in(count);
      buf.seg->data.read(buf.off, std::as_writable_bytes(std::span(acc)));
      scratch_.seg->data.read(scratch_.off,
                              std::as_writable_bytes(std::span(in)));
      for (u64 i = 0; i < count; ++i) acc[i] += in[i];
      buf.seg->data.write(buf.off, std::as_bytes(std::span(acc)));
      p.coll_step++;
      store(p);
    }
  }
  p.coll_step = 0;
  store(p);
}

Task<void> Engine::bcast(int root, MemRef buf, u64 len) {
  MpiPersist p = load();
  DSIM_CHECK(len <= scratch_bytes_ || p.rank == root);
  if (p.rank == root) {
    while (p.coll_step < static_cast<u32>(p.size - 1)) {
      const int peer = (root + 1 + static_cast<int>(p.coll_step)) % p.size;
      co_await send(peer, buf, len);
      p.coll_step++;
      store(p);
    }
  } else {
    if (p.coll_step == 0) {
      co_await recv(root, buf, len);
      p.coll_step = 1;
      store(p);
    }
  }
  p.coll_step = 0;
  store(p);
}

Task<void> Engine::allreduce_sum(MemRef buf, u64 count) {
  // reduce to rank 0, then bcast. Both restart-safe; the pair is sequenced
  // by the application's own stage (allreduce is one app-visible await).
  MpiPersist p = load();
  if (p.coll_sub == 0) {
    co_await reduce_sum(0, buf, count);
    p = load();
    p.coll_sub = 1;
    store(p);
  }
  co_await bcast(0, buf, count * sizeof(double));
  p = load();
  p.coll_sub = 0;
  store(p);
}

Task<void> Engine::barrier() {
  // An 8-byte allreduce serves as the barrier.
  MemRef tok = buffer(ctx_, "mpi_barrier_tok", sizeof(double));
  co_await allreduce_sum(tok, 1);
}

Task<void> Engine::alltoall(MemRef sendbuf, MemRef recvbuf, u64 block) {
  MpiPersist p = load();
  DSIM_CHECK(block <= scratch_bytes_);
  // Self-block copy first (step 0), then pairwise exchange rounds.
  if (p.coll_step == 0) {
    auto self = sendbuf.seg->data.materialize(
        sendbuf.off + static_cast<u64>(p.rank) * block, block);
    recvbuf.seg->data.write(recvbuf.off + static_cast<u64>(p.rank) * block,
                            self);
    p.coll_step = 1;
    store(p);
  }
  while (p.coll_step < static_cast<u32>(p.size)) {
    const int s = static_cast<int>(p.coll_step);
    const int peer = (p.rank + s) % p.size;
    const int from = (p.rank - s + p.size) % p.size;
    // Send my block destined for `peer`; receive `from`'s block for me.
    // Distinct peers, so a fixed order cannot deadlock. The send completion
    // is persisted (coll_sub) so a restart never re-sends a block.
    MemRef sblk = sendbuf.at(static_cast<u64>(peer) * block);
    MemRef rblk = recvbuf.at(static_cast<u64>(from) * block);
    if (p.coll_sub == 0) {
      co_await send(peer, sblk, block);
      p.coll_sub = 1;
      store(p);
    }
    co_await recv(from, rblk, block);
    p.coll_sub = 0;
    p.coll_step++;
    store(p);
  }
  p.coll_step = 0;
  store(p);
}

RankArgs parse_rank_args(sim::ProcessCtx& ctx, size_t first_index) {
  RankArgs a;
  a.rank = static_cast<int>(apps::argi(ctx, first_index, 0));
  a.size = static_cast<int>(apps::argi(ctx, first_index + 1, 1));
  a.nnodes = static_cast<int>(apps::argi(ctx, first_index + 2, 1));
  return a;
}

}  // namespace dsim::mpi
