#include "mpi/runtime.h"

#include <sstream>

#include "apps/app_util.h"
#include "core/dmtcpaware.h"
#include "mpi/mpi.h"
#include "sim/pctx.h"
#include "util/assertx.h"

namespace dsim::mpi {
namespace {

using apps::argi;
using apps::args;
using apps::buffer;
using apps::StateView;
using sim::MemRef;
using sim::Task;

// Fixed-size control frame (restart-safe exact-length transfers).
constexpr u64 kFrame = 256;
constexpr u32 kOpSpawn = 1;
constexpr u32 kOpWaitAll = 2;
constexpr u32 kOpPing = 3;
constexpr u32 kOpReply = 100;
// 4-byte connection-role hello sent after connecting to an mpd.
constexpr i32 kHelloRing = 0x52494e47;  // "RING"
constexpr i32 kHelloCtl = 0x43544c30;   // "CTL0"


struct Frame {
  u32 op = 0;
  u32 n = 0;
  char payload[kFrame - 8] = {};
};
static_assert(sizeof(Frame) == kFrame);

Frame make_frame(u32 op, u32 n, const std::string& payload) {
  Frame f;
  f.op = op;
  f.n = n;
  DSIM_CHECK(payload.size() < sizeof(f.payload));
  std::memcpy(f.payload, payload.data(), payload.size());
  return f;
}

std::vector<std::string> split_words(const std::string& s) {
  std::istringstream in(s);
  std::vector<std::string> out;
  std::string w;
  while (in >> w) out.push_back(w);
  return out;
}

std::string join_words(const std::vector<std::string>& v) {
  std::string out;
  for (const auto& w : v) {
    if (!out.empty()) out += ' ';
    out += w;
  }
  return out;
}

// ---------------------------------------------------------------------------
// mpd <index> <nnodes>
// ---------------------------------------------------------------------------

struct MpdState {
  i32 lfd = kNoFd;
  i32 ring_next = kNoFd;  // to (idx+1)%n
  i32 ring_prev = kNoFd;  // from (idx-1+n)%n
  i32 ctl = kNoFd;        // control connection (mpirun / mpdboot)
  i32 pend = kNoFd;       // accepted, awaiting role hello
  i32 kids[kMaxRanks / 2] = {};
  i32 nkids = 0;
  i32 nwaited = 0;
  u8 keepalive_up = 0;
  u8 ctl_stage = 0;
  u8 pad_[2] = {};  // explicit: stored state must have no padding bits
};

Task<void> mpd_keepalive(sim::ProcessCtx& ctx, u32 role) {
  (void)role;
  // Circulate an 8-byte token around the mpd ring forever; this keeps real
  // bytes in kernel buffers and on the wire at checkpoint time.
  StateView<MpdState> st(ctx, "state");
  MemRef tok = buffer(ctx, "katok", 8);
  const bool initiator = ctx.process().argv().size() > 0 &&
                         std::stoi(ctx.process().argv()[0]) == 0;
  while (true) {
    const MpdState s = st.get();
    if (s.ring_next == kNoFd || s.ring_prev == kNoFd) {
      co_await ctx.sleep(2 * timeconst::kMillisecond);
      continue;
    }
    if (initiator) {
      if (ctx.phase() == 0) {
        co_await ctx.write_exact(s.ring_next, tok, 8, 2);
        ctx.phase() = 1;
      }
      co_await ctx.read_exact(s.ring_prev, tok, 8, 3);
      ctx.phase() = 0;
      co_await ctx.sleep(5 * timeconst::kMillisecond);
    } else {
      if (ctx.phase() == 0) {
        co_await ctx.read_exact(s.ring_prev, tok, 8, 2);
        ctx.phase() = 1;
      }
      co_await ctx.write_exact(s.ring_next, tok, 8, 3);
      ctx.phase() = 0;
    }
  }
}

Task<int> mpd_main(sim::ProcessCtx& ctx) {
  const int idx = static_cast<int>(argi(ctx, 0, 0));
  const int n = static_cast<int>(argi(ctx, 1, 1));
  StateView<MpdState> st(ctx);
  MemRef frame = buffer(ctx, "frame", kFrame);
  MpdState s = st.get();

  if (ctx.phase() == 0) {
    const Fd lfd = co_await ctx.socket();
    const bool ok =
        co_await ctx.bind(lfd, static_cast<u16>(kMpdPortBase + idx));
    DSIM_CHECK_MSG(ok, "mpd: port taken");
    co_await ctx.listen(lfd);
    s.lfd = lfd;
    st.set(s);
    ctx.phase() = 1;
  }
  MemRef hello = buffer(ctx, "hello", 4);
  if (ctx.phase() == 1 && n > 1) {
    // Ring: connect to the next daemon and identify as its ring peer.
    if (s.ring_next == kNoFd) {
      const Fd fd = co_await ctx.socket();
      s.ring_next = fd;
      st.set(s);
    }
    if (sim::TcpVNode* v = ctx.fd_tcp(s.ring_next);
        v && v->state == sim::TcpVNode::State::kRaw) {
      const int next = (idx + 1) % n;
      const sim::SockAddr addr{static_cast<NodeId>(next),
                               static_cast<u16>(kMpdPortBase + next)};
      while (!co_await ctx.connect(s.ring_next, addr)) {
        co_await ctx.sleep(2 * timeconst::kMillisecond);
      }
    }
    ctx.store<i32>(hello, kHelloRing);
    co_await ctx.write_exact(s.ring_next, hello, 4, 4);
    ctx.phase() = 3;
  } else if (ctx.phase() == 1) {
    ctx.phase() = 3;  // single-node ring degenerates
  }
  // Accept loop: classify each incoming connection by its role hello, then
  // serve control connections (one at a time) or install the ring peer.
  while (true) {
    if (ctx.phase() == 3) {
      if (s.pend == kNoFd) {
        const Fd fd = co_await ctx.accept(s.lfd);
        DSIM_CHECK(fd != kNoFd);
        s.pend = fd;
        st.set(s);
      }
      co_await ctx.read_exact(s.pend, hello, 4, 5);
      const i32 role = ctx.load<i32>(hello);
      if (role == kHelloRing) {
        s.ring_prev = s.pend;
        s.pend = kNoFd;
        st.set(s);
        if (!s.keepalive_up) {
          ctx.spawn_thread(/*keepalive role=*/1);
          s.keepalive_up = 1;
          st.set(s);
        }
        continue;  // keep accepting
      }
      DSIM_CHECK(role == kHelloCtl);
      s.ctl = s.pend;
      s.pend = kNoFd;
      st.set(s);
      ctx.phase() = 4;
    }
    // Command loop on the current control connection.
    while (ctx.phase() == 4) {
      if (s.ctl_stage == 0) {
        const bool open = co_await ctx.read_exact_or_eof(s.ctl, frame,
                                                         kFrame, 0);
        if (!open) {  // client exited; serve the next control connection
          co_await ctx.close(s.ctl);
          s.ctl = kNoFd;
          st.set(s);
          ctx.phase() = 3;
          break;
        }
        s.ctl_stage = 1;
        st.set(s);
      }
      Frame f = ctx.load<Frame>(frame);
      switch (f.op) {
        case kOpSpawn: {
          // Delay checkpoints across the fork so the coordinator's client
          // set stays stable (dmtcpaware critical section, §3.1).
          core::DmtcpDelayGuard guard(ctx);
          auto argv = split_words(
              std::string(f.payload, strnlen(f.payload, sizeof f.payload)));
          DSIM_CHECK(!argv.empty());
          const std::string prog = argv.front();
          argv.erase(argv.begin());
          const Pid kid = co_await ctx.spawn(prog, std::move(argv));
          s.kids[s.nkids++] = kid;
          st.set(s);
          ctx.store(frame, make_frame(kOpReply, static_cast<u32>(kid), ""));
          break;
        }
        case kOpWaitAll: {
          while (s.nwaited < s.nkids) {
            co_await ctx.waitpid(s.kids[s.nwaited]);
            s.nwaited++;
            st.set(s);
          }
          ctx.store(frame, make_frame(kOpReply, 0, "alldone"));
          break;
        }
        case kOpPing: {
          ctx.store(frame, make_frame(kOpReply, 0, "pong"));
          break;
        }
        default:
          DSIM_UNREACHABLE("mpd: bad control op");
      }
      co_await ctx.write_exact_or_eof(s.ctl, frame, kFrame, 1);
      s.ctl_stage = 0;
      st.set(s);
    }
  }
}

// ---------------------------------------------------------------------------
// mpdboot <nnodes>
// ---------------------------------------------------------------------------

struct BootState {
  i32 spawned = 0;
  i32 probe_fd = kNoFd;
  u8 probe_stage = 0;
  u8 pad_[3] = {};  // explicit: stored state must have no padding bits
};

Task<int> mpdboot_main(sim::ProcessCtx& ctx) {
  const int n = static_cast<int>(argi(ctx, 0, 1));
  StateView<BootState> st(ctx);
  MemRef frame = buffer(ctx, "frame", kFrame);
  BootState s = st.get();
  // Spawn one mpd per node via ssh — the wrapper rewrites the remote spawn
  // so the daemons also run under DMTCP (§3).
  while (s.spawned < n) {
    std::vector<std::string> argv{std::to_string(s.spawned),
                                  std::to_string(n)};
    co_await ctx.ssh(static_cast<NodeId>(s.spawned), "mpd", std::move(argv));
    s.spawned++;
    st.set(s);
  }
  // Probe the ring: ping mpd 0 until it responds.
  if (s.probe_stage == 0) {
    const Fd fd = co_await ctx.socket();
    s.probe_fd = fd;
    st.set(s);
    s.probe_stage = 1;
    st.set(s);
  }
  if (s.probe_stage == 1) {
    if (sim::TcpVNode* v = ctx.fd_tcp(s.probe_fd);
        v && v->state == sim::TcpVNode::State::kRaw) {
      while (!co_await ctx.connect(s.probe_fd,
                                   sim::SockAddr{0, kMpdPortBase})) {
        co_await ctx.sleep(2 * timeconst::kMillisecond);
      }
    }
    {
      MemRef hello = buffer(ctx, "hello", 4);
      ctx.store<i32>(hello, kHelloCtl);
      co_await ctx.write_exact(s.probe_fd, hello, 4, 2);
    }
    ctx.store(frame, make_frame(kOpPing, 0, ""));
    co_await ctx.write_exact(s.probe_fd, frame, kFrame, 0);
    s.probe_stage = 2;
    st.set(s);
  }
  co_await ctx.read_exact(s.probe_fd, frame, kFrame, 1);
  co_return 0;
}

// ---------------------------------------------------------------------------
// Shared mpirun logic: spawn ranks through per-node daemon control conns.
// mpd_mpirun <np> <nnodes> <prog> <appargs...>  (connects to mpds)
// ---------------------------------------------------------------------------

struct MpirunState {
  i32 ctl[64] = {};   // control fd per node
  i32 nconn = 0;
  i32 nspawned = 0;
  i32 nwait_sent = 0;
  i32 nwait_done = 0;
  u8 stage = 0;
  u8 pad_[3] = {};  // explicit: stored state must have no padding bits
};

Task<int> mpd_mpirun_main(sim::ProcessCtx& ctx) {
  const int np = static_cast<int>(argi(ctx, 0, 1));
  const int nnodes = static_cast<int>(argi(ctx, 1, 1));
  const std::string prog = args(ctx, 2, "");
  DSIM_CHECK(nnodes <= 64);
  StateView<MpirunState> st(ctx);
  MemRef frame = buffer(ctx, "frame", kFrame);
  MpirunState s = st.get();

  // Connect to every node's mpd and identify as a control client.
  MemRef hello = buffer(ctx, "hello", 4);
  while (s.nconn < nnodes) {
    const Fd fd = co_await ctx.socket();
    while (!co_await ctx.connect(
        fd, sim::SockAddr{static_cast<NodeId>(s.nconn),
                          static_cast<u16>(kMpdPortBase + s.nconn)})) {
      co_await ctx.sleep(2 * timeconst::kMillisecond);
    }
    ctx.store<i32>(hello, kHelloCtl);
    co_await ctx.write_exact(fd, hello, 4, 2);
    s.ctl[s.nconn] = fd;
    s.nconn++;
    st.set(s);
  }
  // Spawn ranks round-robin (rank r on node r % nnodes).
  const auto& argv = ctx.process().argv();
  while (s.nspawned < np) {
    const int r = s.nspawned;
    std::vector<std::string> rank_argv{prog};
    for (size_t i = 3; i < argv.size(); ++i) rank_argv.push_back(argv[i]);
    rank_argv.push_back(std::to_string(r));
    rank_argv.push_back(std::to_string(np));
    rank_argv.push_back(std::to_string(nnodes));
    if (s.stage == 0) {
      ctx.store(frame, make_frame(kOpSpawn, 0, join_words(rank_argv)));
      co_await ctx.write_exact(s.ctl[r % nnodes], frame, kFrame, 0);
      s.stage = 1;
      st.set(s);
    }
    co_await ctx.read_exact(s.ctl[r % nnodes], frame, kFrame, 1);
    s.stage = 0;
    s.nspawned++;
    st.set(s);
  }
  // Wait for completion on every daemon.
  while (s.nwait_sent < nnodes) {
    if (s.stage == 0) {
      ctx.store(frame, make_frame(kOpWaitAll, 0, ""));
      co_await ctx.write_exact(s.ctl[s.nwait_sent], frame, kFrame, 0);
      s.stage = 1;
      st.set(s);
    }
    co_await ctx.read_exact(s.ctl[s.nwait_sent], frame, kFrame, 1);
    s.stage = 0;
    s.nwait_sent++;
    st.set(s);
  }
  co_return 0;
}

// ---------------------------------------------------------------------------
// OpenMPI-like: orte_mpirun spawns orteds (children!) which call back.
// orted <index> <mpirun_node>
// orte_mpirun <np> <nnodes> <prog> <appargs...>
// ---------------------------------------------------------------------------

struct OrtedState {
  i32 ctl = kNoFd;
  i32 kids[kMaxRanks / 2] = {};
  i32 nkids = 0;
  i32 nwaited = 0;
  u8 ctl_stage = 0;
  u8 pad_[3] = {};  // explicit: stored state must have no padding bits
};

Task<int> orted_main(sim::ProcessCtx& ctx) {
  const NodeId back = static_cast<NodeId>(argi(ctx, 1, 0));
  StateView<OrtedState> st(ctx);
  MemRef frame = buffer(ctx, "frame", kFrame);
  OrtedState s = st.get();
  if (ctx.phase() == 0) {
    const Fd fd = co_await ctx.socket();
    s.ctl = fd;
    st.set(s);
    ctx.phase() = 1;
  }
  if (ctx.phase() == 1) {
    if (sim::TcpVNode* v = ctx.fd_tcp(s.ctl);
        v && v->state == sim::TcpVNode::State::kRaw) {
      while (!co_await ctx.connect(s.ctl, sim::SockAddr{back, kOrtePort})) {
        co_await ctx.sleep(2 * timeconst::kMillisecond);
      }
    }
    ctx.phase() = 2;
  }
  while (true) {
    if (s.ctl_stage == 0) {
      const bool open = co_await ctx.read_exact_or_eof(s.ctl, frame,
                                                       kFrame, 0);
      if (!open) co_return 0;  // mpirun exited; orted's job is done
      s.ctl_stage = 1;
      st.set(s);
    }
    Frame f = ctx.load<Frame>(frame);
    if (f.op == kOpSpawn) {
      core::DmtcpDelayGuard guard(ctx);
      auto argv = split_words(
          std::string(f.payload, strnlen(f.payload, sizeof f.payload)));
      const std::string prog = argv.front();
      argv.erase(argv.begin());
      const Pid kid = co_await ctx.spawn(prog, std::move(argv));
      s.kids[s.nkids++] = kid;
      st.set(s);
      ctx.store(frame, make_frame(kOpReply, static_cast<u32>(kid), ""));
    } else if (f.op == kOpWaitAll) {
      while (s.nwaited < s.nkids) {
        co_await ctx.waitpid(s.kids[s.nwaited]);
        s.nwaited++;
        st.set(s);
      }
      ctx.store(frame, make_frame(kOpReply, 0, "alldone"));
    } else {
      ctx.store(frame, make_frame(kOpReply, 0, "pong"));
    }
    co_await ctx.write_exact_or_eof(s.ctl, frame, kFrame, 1);
    s.ctl_stage = 0;
    st.set(s);
  }
}

struct OrteRunState {
  i32 lfd = kNoFd;
  i32 ctl[64] = {};  // by node index (identified at callback)
  i32 nspawned_daemons = 0;
  i32 naccepted = 0;
  i32 nspawned = 0;
  i32 nwait_sent = 0;
  u8 stage = 0;
  u8 pad_[3] = {};  // explicit: stored state must have no padding bits
};

Task<int> orte_mpirun_main(sim::ProcessCtx& ctx) {
  const int np = static_cast<int>(argi(ctx, 0, 1));
  const int nnodes = static_cast<int>(argi(ctx, 1, 1));
  const std::string prog = args(ctx, 2, "");
  DSIM_CHECK(nnodes <= 64);
  StateView<OrteRunState> st(ctx);
  MemRef frame = buffer(ctx, "frame", kFrame);
  OrteRunState s = st.get();

  if (ctx.phase() == 0) {
    const Fd lfd = co_await ctx.socket();
    const bool ok = co_await ctx.bind(lfd, kOrtePort);
    DSIM_CHECK(ok);
    co_await ctx.listen(lfd);
    s.lfd = lfd;
    st.set(s);
    ctx.phase() = 1;
  }
  // Spawn one orted per node (ssh; DMTCP-wrapped); they call back here.
  while (s.nspawned_daemons < nnodes) {
    std::vector<std::string> argv{
        std::to_string(s.nspawned_daemons),
        std::to_string(ctx.process().node())};
    co_await ctx.ssh(static_cast<NodeId>(s.nspawned_daemons), "orted",
                     std::move(argv));
    s.nspawned_daemons++;
    st.set(s);
  }
  while (s.naccepted < nnodes) {
    const Fd fd = co_await ctx.accept(s.lfd);
    DSIM_CHECK(fd != kNoFd);
    // Identify the daemon by its source node.
    sim::TcpVNode* v = ctx.fd_tcp(fd);
    s.ctl[v->remote.node] = fd;
    s.naccepted++;
    st.set(s);
  }
  const auto& argv = ctx.process().argv();
  while (s.nspawned < np) {
    const int r = s.nspawned;
    std::vector<std::string> rank_argv{prog};
    for (size_t i = 3; i < argv.size(); ++i) rank_argv.push_back(argv[i]);
    rank_argv.push_back(std::to_string(r));
    rank_argv.push_back(std::to_string(np));
    rank_argv.push_back(std::to_string(nnodes));
    if (s.stage == 0) {
      ctx.store(frame, make_frame(kOpSpawn, 0, join_words(rank_argv)));
      co_await ctx.write_exact(s.ctl[r % nnodes], frame, kFrame, 0);
      s.stage = 1;
      st.set(s);
    }
    co_await ctx.read_exact(s.ctl[r % nnodes], frame, kFrame, 1);
    s.stage = 0;
    s.nspawned++;
    st.set(s);
  }
  while (s.nwait_sent < nnodes) {
    if (s.stage == 0) {
      ctx.store(frame, make_frame(kOpWaitAll, 0, ""));
      co_await ctx.write_exact(s.ctl[s.nwait_sent], frame, kFrame, 0);
      s.stage = 1;
      st.set(s);
    }
    co_await ctx.read_exact(s.ctl[s.nwait_sent], frame, kFrame, 1);
    s.stage = 0;
    s.nwait_sent++;
    st.set(s);
  }
  co_return 0;
}

}  // namespace

std::vector<std::string> mpirun_argv(int np, int nnodes,
                                     const std::string& prog,
                                     std::vector<std::string> app_args) {
  std::vector<std::string> argv{std::to_string(np), std::to_string(nnodes),
                                prog};
  for (auto& a : app_args) argv.push_back(std::move(a));
  return argv;
}

void register_runtime_programs(sim::Kernel& k) {
  {
    sim::Program p;
    p.name = "mpd";
    p.main = mpd_main;
    p.worker = mpd_keepalive;
    k.programs().add(std::move(p));
  }
  auto add = [&](const char* name, auto fn) {
    sim::Program p;
    p.name = name;
    p.main = fn;
    k.programs().add(std::move(p));
  };
  add("mpdboot", mpdboot_main);
  add("mpd_mpirun", mpd_mpirun_main);
  add("orted", orted_main);
  add("orte_mpirun", orte_mpirun_main);
}

}  // namespace dsim::mpi
