// Mini-MPI: a restart-safe message-passing library over simulated sockets.
//
// This is the substrate the paper's distributed experiments need (§5.2):
// NAS kernels and ParGeant4 run "under MPICH2" or "under OpenMPI" — i.e.,
// over an MPI library whose daemons and rank processes are all part of the
// checkpointed computation. Mini-MPI provides point-to-point transfers and
// the collectives the workloads use (barrier, bcast, reduce, allreduce,
// alltoall), implemented as explicit stage machines whose progress lives in
// simulated memory — so a checkpoint can land anywhere inside a collective
// and the restarted process resumes it exactly (DESIGN.md §3.2).
//
// Simplifications versus real MPI (documented substitutions):
//  - messages are untagged; each (sender, receiver) pair exchanges a
//    protocol-agreed sequence of exactly-sized transfers;
//  - rank r's rendezvous listener lives on port kPortBase + r (unique
//    cluster-wide), and rank placement is round-robin over nodes.
#pragma once

#include "apps/app_util.h"
#include "sim/pctx.h"

namespace dsim::mpi {

using sim::Task;

inline constexpr int kMaxRanks = 160;
inline constexpr u16 kPortBase = 20000;

/// Thread-context register slots reserved for MPI internals. Application
/// code must keep to slots 0..7.
inline constexpr sim::RegSlot kRegA = 8;
inline constexpr sim::RegSlot kRegB = 9;

/// Persistent engine state (lives in the "mpi_state" segment).
struct MpiPersist {
  i32 rank = -1;
  i32 size = 0;
  i32 nnodes = 1;
  i32 lfd = kNoFd;
  u8 init_stage = 0;   // 0 listener, 1 connecting, 2 accepting, 3 done
  i32 connect_i = 0;   // next lower rank to connect to
  i32 accept_n = 0;    // higher ranks accepted so far
  i32 pend_fd = kNoFd; // in-flight handshake fd (init restart safety)
  i32 fds[kMaxRanks] = {};
  // Collective progress (one collective in flight per process).
  u32 coll_step = 0;
  u32 coll_sub = 0;
};

/// The engine. Construct fresh each run (also after restart); all durable
/// state is in simulated memory.
class Engine {
 public:
  /// rank/size/nnodes typically come from argv (set by mpirun).
  Engine(sim::ProcessCtx& ctx, int rank, int size, int nnodes,
         u64 scratch_bytes = 1 << 20);

  /// Establish the full mesh (restart-safe).
  Task<void> init();

  int rank() const { return cached_.rank; }
  int size() const { return cached_.size; }
  /// Node hosting a rank (round-robin placement, matching the runtimes).
  NodeId node_of(int rank) const { return rank % cached_.nnodes; }

  // Point-to-point. Both sides must agree on `len`.
  Task<void> send(int peer, sim::MemRef buf, u64 len);
  Task<void> recv(int peer, sim::MemRef buf, u64 len);

  // Collectives over doubles (enough for the NAS kernels). All restart-safe.
  Task<void> barrier();
  Task<void> bcast(int root, sim::MemRef buf, u64 len);
  /// Sum-reduce `count` doubles in place at every rank.
  Task<void> allreduce_sum(sim::MemRef buf, u64 count);
  /// Sum-reduce to root only.
  Task<void> reduce_sum(int root, sim::MemRef buf, u64 count);
  /// Each rank sends `block` bytes to every rank from sendbuf (size*block)
  /// into recvbuf (size*block) — the NAS/IS exchange pattern.
  Task<void> alltoall(sim::MemRef sendbuf, sim::MemRef recvbuf, u64 block);

 private:
  MpiPersist load() { return ctx_.load<MpiPersist>(stref_); }
  void store(const MpiPersist& p) {
    ctx_.store(stref_, p);
    cached_ = p;
  }
  Fd fd_of(int peer);
  Task<void> sendrecv(int peer, sim::MemRef sbuf, sim::MemRef rbuf, u64 len);

  sim::ProcessCtx& ctx_;
  sim::MemRef stref_;
  sim::MemRef scratch_;
  u64 scratch_bytes_;
  MpiPersist cached_;
};

/// Standard argv tail for MPI rank programs: [... rank size nnodes].
struct RankArgs {
  int rank = 0;
  int size = 1;
  int nnodes = 1;
};
RankArgs parse_rank_args(sim::ProcessCtx& ctx, size_t first_index);

}  // namespace dsim::mpi
