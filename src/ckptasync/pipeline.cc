#include "ckptasync/pipeline.h"

#include <algorithm>

#include "obs/trace.h"
#include "sim/model_params.h"
#include "util/assertx.h"

namespace dsim::ckptasync {

using sim::params::kCowPageBytes;
using sim::params::kCowPageFaultSeconds;
using sim::params::kMemcpyBw;

struct CkptAsyncPipeline::Job {
  std::string key;
  NodeId node = 0;
  SimTime started = 0;
  u64 drain_span = 0;  // async.drain span, open for the job's lifetime
  std::function<void()> on_complete;
  std::vector<std::unique_ptr<SegTracker>> trackers;
};

CkptAsyncPipeline::CkptAsyncPipeline(CpuCharger charge, Clock clock,
                                     double compress_bw)
    : charge_(std::move(charge)),
      clock_(std::move(clock)),
      compress_bw_(compress_bw) {
  DSIM_CHECK(charge_ && clock_);
  DSIM_CHECK_MSG(compress_bw_ > 0, "async compress bandwidth must be > 0");
}

CkptAsyncPipeline::~CkptAsyncPipeline() {
  // Disarm any observers still pointed at live segments (jobs in flight at
  // simulation teardown must not leave dangling observer pointers behind).
  for (auto& [key, job] : active_) {
    for (auto& t : job->trackers) {
      if (auto seg = t->seg.lock()) {
        if (seg->data.write_observer() == t.get()) {
          seg->data.set_write_observer(nullptr);
        }
      }
    }
  }
}

void CkptAsyncPipeline::SegTracker::on_mutate(u64 off, u64 len) {
  if (off >= snap_size) return;
  const u64 end = std::min(snap_size, off + len);
  const u64 first = off / kCowPageBytes;
  const u64 last = (end + kCowPageBytes - 1) / kCowPageBytes;
  u64 fresh = 0;
  for (u64 p = first; p < last && p < touched.size(); ++p) {
    if (!touched[p]) {
      touched[p] = true;
      ++fresh;
    }
  }
  if (fresh > 0) pipe->charge_cow_pages(node, fresh);
}

void CkptAsyncPipeline::charge_cow_pages(NodeId node, u64 pages) {
  const double seconds =
      static_cast<double>(pages) *
      (static_cast<double>(kCowPageBytes) / kMemcpyBw + kCowPageFaultSeconds);
  stats_.cow_pages_copied += pages;
  stats_.cow_copy_seconds += seconds;
  // The copy occupies the touching node's CPU through the fluid share; the
  // app-visible slowdown is emergent, so nothing waits on completion.
  charge_(node, seconds, [] {});
}

void CkptAsyncPipeline::start(JobSpec spec) {
  DSIM_CHECK_MSG(!busy(spec.key),
                 "async pipeline: job already in flight for this process");
  auto job = std::make_shared<Job>();
  job->key = spec.key;
  job->node = spec.node;
  job->started = clock_();
  job->on_complete = std::move(spec.on_complete);

  stats_.jobs_started++;
  stats_.queued_bytes += spec.queued_bytes;
  stats_.raw_new_bytes += spec.raw_new_bytes;
  stats_.compressed_new_bytes += spec.compressed_new_bytes;

  // Arm a first-touch COW tracker on every live segment for the duration of
  // the drain. The snapshot copies taken by capture() never propagate the
  // observer (ByteImage copy semantics), so only the *live* image fires.
  for (auto& seg : spec.segments) {
    if (!seg) continue;
    auto t = std::make_unique<SegTracker>();
    t->pipe = this;
    t->node = spec.node;
    t->seg = seg;
    t->snap_size = seg->data.size();
    t->touched.assign((t->snap_size + kCowPageBytes - 1) / kCowPageBytes,
                      false);
    seg->data.set_write_observer(t.get());
    job->trackers.push_back(std::move(t));
  }
  active_.emplace(job->key, job);

  // Stage chain: chunk CPU -> compress CPU -> store traffic -> finish. Each
  // stage runs as a background CPU job on the snapshot node, sharing cores
  // with the app through the fluid-share model. With a tracer installed the
  // chain emits standalone spans (async.drain covering the whole job, plus
  // one span per stage); the tracer never charges sim time, so traced and
  // untraced runs are event-for-event identical.
  u64 chunk_span = 0;
  if (tracer_ != nullptr) {
    job->drain_span =
        tracer_->begin("async.drain", obs::kServicePid, "async", job->started);
    chunk_span =
        tracer_->begin("async.chunk", obs::kServicePid, "async", job->started);
  }
  const std::string key = job->key;
  auto store = std::move(spec.store);
  charge_(spec.node, spec.chunk_seconds,
          [this, key, node = spec.node, cs = spec.compress_seconds,
           store = std::move(store), chunk_span]() mutable {
            u64 compress_span = 0;
            if (tracer_ != nullptr) {
              const SimTime now = clock_();
              tracer_->end(chunk_span, now);
              compress_span =
                  tracer_->begin("async.compress", obs::kServicePid, "async",
                                 now);
            }
            charge_(node, cs, [this, key, store = std::move(store),
                               compress_span]() mutable {
              u64 store_span = 0;
              if (tracer_ != nullptr) {
                const SimTime now = clock_();
                tracer_->end(compress_span, now);
                if (store) {
                  store_span = tracer_->begin("async.store", obs::kServicePid,
                                              "async", now);
                }
              }
              if (store) {
                store([this, key, store_span] {
                  if (tracer_ != nullptr) tracer_->end(store_span, clock_());
                  finish(key);
                });
              } else {
                finish(key);
              }
            });
          });
}

void CkptAsyncPipeline::finish(const std::string& key) {
  auto it = active_.find(key);
  DSIM_CHECK(it != active_.end());
  auto job = it->second;
  for (auto& t : job->trackers) {
    if (auto seg = t->seg.lock()) {
      if (seg->data.write_observer() == t.get()) {
        seg->data.set_write_observer(nullptr);
      }
    }
  }
  if (tracer_ != nullptr) tracer_->end(job->drain_span, clock_());
  const double drain = to_seconds(clock_() - job->started);
  stats_.jobs_completed++;
  stats_.drain_seconds += drain;
  stats_.max_drain_seconds = std::max(stats_.max_drain_seconds, drain);
  active_.erase(it);
  if (job->on_complete) job->on_complete();
}

}  // namespace dsim::ckptasync
