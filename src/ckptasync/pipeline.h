// Async copy-on-write checkpoint pipeline (--ckpt-async).
//
// At checkpoint time the app pays only a fork/COW snapshot cost; chunking,
// compression and store traffic drain through a background job per process:
//
//   snapshot --> [bg CPU] chunk/CDC --> [bg CPU] compress --> store RPCs
//
// While a job drains, its process's memory segments carry a write observer:
// the first app write to each snapshotted page charges a COW fault + page
// copy as background CPU on the touching node, so the app slowdown stays
// emergent through the fluid-share CPU model rather than being scripted.
// When a new round reaches a process whose previous job is still draining,
// the backpressure policy (--async-backpressure) either blocks the round on
// the drain or skips this process for the round; both are modeled and
// surfaced in CkptRound.
//
// The pipeline is deliberately core-free: the DMTCP layer injects a CPU
// charger and a clock, so this subsystem depends only on sim/ primitives.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/byte_image.h"
#include "sim/process.h"
#include "util/types.h"

namespace dsim::obs {
class Tracer;
}  // namespace dsim::obs

namespace dsim::ckptasync {

/// Charge `core_seconds` of background CPU on `node`, calling `done` when
/// the fluid-share model completes the job.
using CpuCharger = std::function<void(NodeId, double, std::function<void()>)>;
using Clock = std::function<SimTime()>;

/// Cumulative pipeline counters; consumers (the coordinator) snapshot and
/// delta them per round, like ServiceStats.
struct PipelineStats {
  u64 jobs_started = 0;
  u64 jobs_completed = 0;
  u64 queued_bytes = 0;        // logical bytes handed to background jobs
  u64 raw_new_bytes = 0;       // pre-codec bytes of new chunks drained
  u64 compressed_new_bytes = 0;  // post-codec container bytes drained
  u64 cow_pages_copied = 0;
  double cow_copy_seconds = 0;   // background CPU charged for COW copies
  double drain_seconds = 0;      // cumulative job snapshot -> durable latency
  double max_drain_seconds = 0;  // max single-job drain latency
  double blocked_seconds = 0;    // backpressure=block wait, summed
  u64 skipped_rounds = 0;        // backpressure=skip process-rounds skipped
};

/// One background encode/store job, described by the DMTCP layer.
struct JobSpec {
  std::string key;  // one in-flight job per process (universal pid string)
  NodeId node = 0;  // node whose background CPU the encode stages occupy
  double chunk_seconds = 0;     // snapshot scan + chunking stage CPU
  double compress_seconds = 0;  // compress stage CPU (codec- and bw-scaled)
  u64 queued_bytes = 0;         // logical bytes this job drains
  u64 raw_new_bytes = 0;
  u64 compressed_new_bytes = 0;
  /// Live memory segments of the snapshotted process; the pipeline arms a
  /// COW write observer on each for the duration of the drain.
  std::vector<std::shared_ptr<sim::MemSegment>> segments;
  /// Store stage: issue the chunk/manifest store traffic, call the provided
  /// continuation once everything is durable. Runs after the CPU stages.
  std::function<void(std::function<void()>)> store;
  /// Fired when the job is fully drained (after observer disarm).
  std::function<void()> on_complete;
};

class CkptAsyncPipeline {
 public:
  CkptAsyncPipeline(CpuCharger charge, Clock clock, double compress_bw);
  ~CkptAsyncPipeline();

  CkptAsyncPipeline(const CkptAsyncPipeline&) = delete;
  CkptAsyncPipeline& operator=(const CkptAsyncPipeline&) = delete;

  /// Background compress-stage input rate (bytes/s) for the gzip-class
  /// baseline codec; resolved from --compress-bw / kCompressBw at launch.
  double compress_bw() const { return compress_bw_; }

  /// True while `key`'s previous job is still draining.
  bool busy(const std::string& key) const { return active_.count(key) > 0; }
  bool idle() const { return active_.empty(); }

  /// Start a background drain job. The caller must have resolved
  /// backpressure first (DSIM_CHECKed: one job per key).
  void start(JobSpec spec);

  /// Backpressure accounting, reported by the DMTCP layer.
  void note_blocked(double seconds) { stats_.blocked_seconds += seconds; }
  void note_skip() { stats_.skipped_rounds++; }

  /// Install the request tracer (--trace-out): each drain job emits
  /// async.drain / async.chunk / async.compress / async.store spans. Null
  /// (the default) disables instrumentation entirely.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  const PipelineStats& stats() const { return stats_; }

 private:
  struct Job;
  /// Per-segment first-touch page tracker armed on the live ByteImage.
  struct SegTracker final : sim::ByteImage::WriteObserver {
    CkptAsyncPipeline* pipe = nullptr;
    NodeId node = 0;
    std::weak_ptr<sim::MemSegment> seg;
    u64 snap_size = 0;
    std::vector<bool> touched;  // one bit per kCowPageBytes page
    void on_mutate(u64 off, u64 len) override;
  };

  void charge_cow_pages(NodeId node, u64 pages);
  void finish(const std::string& key);

  CpuCharger charge_;
  Clock clock_;
  double compress_bw_;
  obs::Tracer* tracer_ = nullptr;
  PipelineStats stats_;
  std::map<std::string, std::shared_ptr<Job>> active_;
};

}  // namespace dsim::ckptasync
