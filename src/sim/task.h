// Lazy coroutine task type.
//
// Simulated threads, daemons and protocol handlers are C++20 coroutines
// returning Task<T>. A Task starts suspended; `co_await`ing it starts it and
// transfers control back to the awaiter when it finishes (symmetric
// transfer, so long await chains do not grow the host stack).
//
// A key property the checkpointing layer relies on: between two co_await
// points a coroutine runs atomically with respect to the simulation. This is
// the simulator's analogue of "between two preemption points", and defines
// the safe suspend points for checkpointing (DESIGN.md §3.2).
#pragma once

#include <coroutine>
#include <exception>
#include <utility>
#include <variant>

#include "util/assertx.h"

namespace dsim::sim {

template <typename T>
class Task;

namespace detail {

struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }
  template <typename Promise>
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    auto cont = h.promise().continuation;
    return cont ? cont : std::noop_coroutine();
  }
  void await_resume() const noexcept {}
};

template <typename T>
struct TaskPromise {
  std::coroutine_handle<> continuation;
  std::variant<std::monostate, T, std::exception_ptr> result;

  Task<T> get_return_object();
  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void return_value(T v) { result.template emplace<1>(std::move(v)); }
  void unhandled_exception() {
    result.template emplace<2>(std::current_exception());
  }

  T take() {
    if (result.index() == 2) {
      std::rethrow_exception(std::get<2>(result));
    }
    DSIM_CHECK_MSG(result.index() == 1, "task finished without a value");
    return std::move(std::get<1>(result));
  }
};

template <>
struct TaskPromise<void> {
  std::coroutine_handle<> continuation;
  std::exception_ptr error;

  Task<void> get_return_object();
  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void return_void() {}
  void unhandled_exception() { error = std::current_exception(); }

  void take() {
    if (error) std::rethrow_exception(error);
  }
};

}  // namespace detail

/// Owning handle to a lazy coroutine. Move-only.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::TaskPromise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : h_(h) {}
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(h_); }

  // Awaiter interface: co_await task starts it.
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiting) {
    h_.promise().continuation = awaiting;
    return h_;
  }
  T await_resume() { return h_.promise().take(); }

  /// Release ownership (caller becomes responsible for destroy()).
  Handle release() { return std::exchange(h_, {}); }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  Handle h_{};
};

namespace detail {
template <typename T>
Task<T> TaskPromise<T>::get_return_object() {
  return Task<T>{std::coroutine_handle<TaskPromise<T>>::from_promise(*this)};
}
inline Task<void> TaskPromise<void>::get_return_object() {
  return Task<void>{
      std::coroutine_handle<TaskPromise<void>>::from_promise(*this)};
}
}  // namespace detail

}  // namespace dsim::sim
