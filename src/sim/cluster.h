// Cluster: convenience builder around Kernel matching the paper's testbeds.
#pragma once

#include <memory>

#include "sim/kernel.h"

namespace dsim::sim {

struct ClusterConfig {
  int nodes = 1;
  int cores_per_node = 4;   // dual-socket dual-core Xeon 5130 (§5.2)
  bool san = false;         // attach SAN/NFS shared storage (Fig. 5b)
  u64 seed = 0x5eed;
  double jitter_sigma = 0.0;
};

/// Owns a Kernel configured like one of the paper's testbeds. The paper's
/// desktop experiments (§5.1) use single_node(); the distributed experiments
/// (§5.2) use lab_cluster(32).
class Cluster {
 public:
  explicit Cluster(const ClusterConfig& cfg);

  static ClusterConfig single_node();
  static ClusterConfig lab_cluster(int nodes, bool san = false);

  Kernel& kernel() { return *kernel_; }
  EventLoop& loop() { return kernel_->loop(); }
  /// Run the simulation until no events remain.
  void run() { kernel_->loop().run(); }
  /// Run at most until the given virtual time.
  bool run_until(SimTime t) { return kernel_->loop().run_until(t); }

 private:
  std::unique_ptr<Kernel> kernel_;
};

}  // namespace dsim::sim
