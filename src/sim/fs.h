// Flat-namespace filesystems.
//
// Each node has a local filesystem; the cluster mounts a shared one at
// /shared (SAN-backed, reachable directly over Fibre Channel from nodes
// with HBAs and via NFS from the rest — the Fig.-5b configuration). Paths
// are canonical absolute strings; directories are implicit.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/vnode.h"
#include "util/types.h"

namespace dsim::sim {

class FileSystem {
 public:
  explicit FileSystem(std::string name) : name_(std::move(name)) {}

  std::shared_ptr<Inode> lookup(const std::string& path) const;
  /// Get-or-create.
  std::shared_ptr<Inode> create(const std::string& path);
  bool exists(const std::string& path) const { return files_.count(path) > 0; }
  bool unlink(const std::string& path);
  std::vector<std::string> list(const std::string& prefix) const;
  const std::string& name() const { return name_; }
  /// Permission bit used by the shared-memory restore rules (§4.5).
  void set_read_only(const std::string& path, bool ro);
  bool read_only(const std::string& path) const;

 private:
  std::string name_;
  std::map<std::string, std::shared_ptr<Inode>> files_;
  std::map<std::string, bool> read_only_;
};

}  // namespace dsim::sim
