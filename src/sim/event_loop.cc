#include "sim/event_loop.h"

namespace dsim::sim {

EventId EventLoop::post_at(SimTime t, Fn fn) {
  DSIM_CHECK_MSG(t >= now_, "cannot schedule into the past");
  const EventId id = next_seq_++;
  queue_.push(Ev{t, id, id});
  fns_.emplace(id, std::move(fn));
  return id;
}

void EventLoop::cancel(EventId id) {
  if (id == kNoEvent) return;
  auto it = fns_.find(id);
  if (it == fns_.end()) return;  // already fired
  fns_.erase(it);
  cancelled_.insert(id);
}

bool EventLoop::pop_one() {
  while (!queue_.empty()) {
    Ev ev = queue_.top();
    queue_.pop();
    if (cancelled_.erase(ev.id)) continue;
    auto it = fns_.find(ev.id);
    if (it == fns_.end()) continue;
    Fn fn = std::move(it->second);
    fns_.erase(it);
    DSIM_CHECK(ev.t >= now_);
    now_ = ev.t;
    fn();
    return true;
  }
  return false;
}

void EventLoop::run() {
  stopped_ = false;
  while (!stopped_ && pop_one()) {
  }
}

void PeriodicTimer::start(SimTime interval, EventLoop::Fn fn) {
  DSIM_CHECK_MSG(interval > 0, "periodic timer needs a positive interval");
  stop();
  interval_ = interval;
  fn_ = std::move(fn);
  arm();
}

void PeriodicTimer::stop() {
  loop_.cancel(pending_);
  pending_ = kNoEvent;
}

void PeriodicTimer::arm() {
  pending_ = loop_.post_in(interval_, [this] {
    pending_ = kNoEvent;
    // Re-arm before the callback: fn_ may call stop() to end the loop.
    arm();
    fn_();
  });
}

bool EventLoop::run_until(SimTime deadline) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    // Peek: do not advance past the deadline.
    Ev ev = queue_.top();
    if (cancelled_.count(ev.id)) {
      queue_.pop();
      cancelled_.erase(ev.id);
      continue;
    }
    if (ev.t > deadline) {
      now_ = deadline;
      return true;
    }
    pop_one();
  }
  if (now_ < deadline) now_ = deadline;
  return !queue_.empty();
}

}  // namespace dsim::sim
