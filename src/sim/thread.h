// Simulated threads, wait queues and checkpoint suspension.
//
// A Thread owns one root coroutine. Threads park at await points and are
// woken via WaitQueues, timers or CPU-job completions. Checkpoint suspension
// (`ckpt_suspend`) defers all wakeups until `ckpt_resume` — the simulator's
// analogue of MTCP stopping user threads with a signal (§4.3 step 2).
//
// ThreadContext is the serializable "register file": an application-defined
// phase counter plus sixteen 64-bit registers. Restart-safe primitives
// (read_exact / write_exact / cpu_chunked) persist their progress here, so a
// restored thread resumes its in-flight operation exactly where it stopped —
// the simulator's analogue of MTCP restoring register state (DESIGN.md §3.2).
#pragma once

#include <array>
#include <coroutine>
#include <memory>
#include <vector>

#include "sim/cpu.h"
#include "sim/event_loop.h"
#include "sim/task.h"
#include "util/types.h"

namespace dsim::sim {

class Kernel;
class Process;
class ProcessCtx;
class Thread;

/// Serializable per-thread execution context (saved in checkpoint images).
struct ThreadContext {
  u32 phase = 0;              ///< application program counter
  u32 role = 0;               ///< worker-thread role (program-defined)
  std::array<u64, 16> regs{}; ///< progress registers (see ProcessCtx)
};

enum class ThreadKind : u8 {
  kMain = 0,     ///< the process's initial thread
  kWorker = 1,   ///< program-spawned thread (restored via Program::worker)
  kManager = 2,  ///< DMTCP checkpoint manager thread (recreated by Hijack)
};

/// FIFO wait queue used by every blocking kernel object.
class WaitQueue {
 public:
  ~WaitQueue();
  void wake_all();
  void wake_one();
  bool empty() const { return waiters_.empty(); }

  /// Awaitable: parks the thread until a wake.
  struct Awaiter {
    Thread& t;
    WaitQueue& q;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
  };
  Awaiter wait(Thread& t) { return Awaiter{t, *this}; }

 private:
  friend class Thread;
  std::vector<Thread*> waiters_;
};

class Thread {
 public:
  Thread(Kernel& kernel, Process& process, Tid tid, ThreadKind kind);
  ~Thread();
  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  /// Begin executing `body` (scheduled on the event loop, not inline).
  void start(Task<void> body);
  /// Destroy the coroutine and cancel all pending wakeups/jobs.
  void kill();

  bool done() const { return done_; }
  bool killed() const { return killed_; }
  bool alive() const { return started_ && !done_ && !killed_; }

  /// Park the current coroutine awaiting a wake (queue may be null for
  /// timer/CPU waits).
  void park(std::coroutine_handle<> h, WaitQueue* q);
  /// Schedule a resume (deferred while checkpoint-suspended).
  void wake();

  // Bookkeeping for cancellable waits.
  void set_timer(EventId ev) { timer_ = ev; }
  void clear_timer() { timer_ = kNoEvent; }
  void set_cpu_job(CpuModel* cpu, CpuModel::JobId job) {
    cpu_ = cpu;
    cpu_job_ = job;
  }
  void clear_cpu_job() {
    cpu_ = nullptr;
    cpu_job_ = 0;
  }

  /// Freeze the thread: pending and future wakeups are deferred, an active
  /// CPU burst is paused. Idempotent.
  void ckpt_suspend();
  /// Unfreeze; fires any deferred wakeup and resumes a paused CPU burst.
  void ckpt_resume();
  bool ckpt_suspended() const { return ckpt_suspended_; }
  /// True if the thread is parked waiting (i.e., at a safe suspend point).
  bool parked() const { return static_cast<bool>(next_resume_); }

  ThreadContext& context() { return ctx_; }
  const ThreadContext& context() const { return ctx_; }
  void set_context(const ThreadContext& c) { ctx_ = c; }

  Tid tid() const { return tid_; }
  ThreadKind kind() const { return kind_; }
  Process& process() { return process_; }
  Kernel& kernel() { return kernel_; }

  /// Per-thread ProcessCtx facade (created lazily by Kernel when starting
  /// program code on this thread).
  ProcessCtx& pctx();

 private:
  struct Root {
    struct promise_type {
      Root get_return_object() {
        return Root{std::coroutine_handle<promise_type>::from_promise(*this)};
      }
      std::suspend_always initial_suspend() noexcept { return {}; }
      std::suspend_always final_suspend() noexcept { return {}; }
      void return_void() {}
      void unhandled_exception();
    };
    std::coroutine_handle<promise_type> h;
  };
  static Root root_body(Thread* self, Task<void> body);
  void on_body_done();
  void schedule_resume();

  Kernel& kernel_;
  Process& process_;
  Tid tid_;
  ThreadKind kind_;
  ThreadContext ctx_;
  std::unique_ptr<ProcessCtx> pctx_;

  std::coroutine_handle<Root::promise_type> root_{};
  std::coroutine_handle<> next_resume_{};
  WaitQueue* waiting_on_ = nullptr;
  EventId pending_wake_ = kNoEvent;
  EventId timer_ = kNoEvent;
  CpuModel* cpu_ = nullptr;
  CpuModel::JobId cpu_job_ = 0;
  bool ckpt_suspended_ = false;
  bool wake_deferred_ = false;
  bool started_ = false;
  bool done_ = false;
  bool killed_ = false;

  friend class WaitQueue;
};

}  // namespace dsim::sim
