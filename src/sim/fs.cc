#include "sim/fs.h"

namespace dsim::sim {

std::shared_ptr<Inode> FileSystem::lookup(const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : it->second;
}

std::shared_ptr<Inode> FileSystem::create(const std::string& path) {
  auto it = files_.find(path);
  if (it != files_.end()) return it->second;
  auto inode = std::make_shared<Inode>();
  files_.emplace(path, inode);
  return inode;
}

bool FileSystem::unlink(const std::string& path) {
  return files_.erase(path) > 0;
}

std::vector<std::string> FileSystem::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, inode] : files_) {
    if (path.rfind(prefix, 0) == 0) out.push_back(path);
  }
  return out;
}

void FileSystem::set_read_only(const std::string& path, bool ro) {
  read_only_[path] = ro;
}

bool FileSystem::read_only(const std::string& path) const {
  auto it = read_only_.find(path);
  return it != read_only_.end() && it->second;
}

}  // namespace dsim::sim
