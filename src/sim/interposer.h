// Syscall interposition interface — the simulator's LD_PRELOAD.
//
// DMTCP injects dmtcphijack.so and overrides a small set of libc symbols
// (§4.2 lists them: socket, connect, bind, listen, accept, setsockopt,
// exec*, fork, close, dup2, socketpair, openlog, syslog, closelog, ptsname).
// Here, a Process may carry an Interposer; ProcessCtx routes exactly those
// calls through it. The default implementation is a transparent passthrough;
// core::Hijack overrides to record connection metadata, promote pipes,
// virtualize pids, and intercept remote spawns.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/socket.h"
#include "sim/task.h"
#include "util/types.h"

namespace dsim::sim {

class ProcessCtx;

class Interposer {
 public:
  virtual ~Interposer() = default;

  /// Called once when the library is "injected" at process start, before the
  /// program's main thread runs. The hijack spawns its checkpoint manager
  /// thread here (§4.2).
  virtual void on_attach() {}
  /// Called as the process exits (before fd teardown).
  virtual void on_process_exit() {}

  // Wrapped syscalls. Defaults forward to the raw kernel implementations.
  virtual Task<Fd> wrap_socket(ProcessCtx& ctx, bool unix_domain);
  virtual Task<bool> wrap_connect(ProcessCtx& ctx, Fd fd, SockAddr addr);
  virtual Task<bool> wrap_bind(ProcessCtx& ctx, Fd fd, u16 port);
  virtual Task<void> wrap_listen(ProcessCtx& ctx, Fd fd);
  virtual Task<Fd> wrap_accept(ProcessCtx& ctx, Fd fd);
  virtual Task<std::pair<Fd, Fd>> wrap_socketpair(ProcessCtx& ctx);
  virtual Task<std::pair<Fd, Fd>> wrap_pipe(ProcessCtx& ctx);
  virtual Task<Pid> wrap_spawn(ProcessCtx& ctx, NodeId node, std::string prog,
                               std::vector<std::string> argv,
                               std::map<std::string, std::string> env);
  virtual Task<int> wrap_waitpid(ProcessCtx& ctx, Pid child);
  virtual Task<void> wrap_close(ProcessCtx& ctx, Fd fd);
  virtual Task<void> wrap_dup2(ProcessCtx& ctx, Fd oldfd, Fd newfd);
  virtual Pid wrap_getpid(ProcessCtx& ctx);
  virtual Task<std::pair<Fd, Fd>> wrap_openpty(ProcessCtx& ctx);
  virtual std::string wrap_ptsname(ProcessCtx& ctx, Fd master);
  virtual void wrap_openlog(ProcessCtx& ctx, std::string ident);
  virtual void wrap_syslog(ProcessCtx& ctx, std::string msg);
  virtual void wrap_closelog(ProcessCtx& ctx);
};

}  // namespace dsim::sim
