#include "sim/interposer.h"

#include "sim/pctx.h"

namespace dsim::sim {

Task<Fd> Interposer::wrap_socket(ProcessCtx& ctx, bool unix_domain) {
  return ctx.socket_raw(unix_domain);
}
Task<bool> Interposer::wrap_connect(ProcessCtx& ctx, Fd fd, SockAddr addr) {
  return ctx.connect_raw(fd, addr);
}
Task<bool> Interposer::wrap_bind(ProcessCtx& ctx, Fd fd, u16 port) {
  return ctx.bind_raw(fd, port);
}
Task<void> Interposer::wrap_listen(ProcessCtx& ctx, Fd fd) {
  return ctx.listen_raw(fd);
}
Task<Fd> Interposer::wrap_accept(ProcessCtx& ctx, Fd fd) {
  return ctx.accept_raw(fd);
}
Task<std::pair<Fd, Fd>> Interposer::wrap_socketpair(ProcessCtx& ctx) {
  return ctx.socketpair_raw();
}
Task<std::pair<Fd, Fd>> Interposer::wrap_pipe(ProcessCtx& ctx) {
  return ctx.pipe_raw();
}
Task<Pid> Interposer::wrap_spawn(ProcessCtx& ctx, NodeId node,
                                 std::string prog,
                                 std::vector<std::string> argv,
                                 std::map<std::string, std::string> env) {
  return ctx.spawn_raw(node, prog, std::move(argv), std::move(env));
}
Task<int> Interposer::wrap_waitpid(ProcessCtx& ctx, Pid child) {
  return ctx.waitpid_raw(child);
}
Task<void> Interposer::wrap_close(ProcessCtx& ctx, Fd fd) {
  return ctx.close_raw(fd);
}
Task<void> Interposer::wrap_dup2(ProcessCtx& ctx, Fd oldfd, Fd newfd) {
  return ctx.dup2_raw(oldfd, newfd);
}
Pid Interposer::wrap_getpid(ProcessCtx& ctx) { return ctx.getpid_real(); }
Task<std::pair<Fd, Fd>> Interposer::wrap_openpty(ProcessCtx& ctx) {
  return ctx.openpty_raw();
}
std::string Interposer::wrap_ptsname(ProcessCtx& ctx, Fd master) {
  return ctx.ptsname_raw(master);
}
void Interposer::wrap_openlog(ProcessCtx& ctx, std::string ident) {
  ctx.process().syslog_ident = std::move(ident);
}
void Interposer::wrap_syslog(ProcessCtx& ctx, std::string msg) {
  ctx.process().syslog_messages.push_back(ctx.process().syslog_ident + ": " +
                                          msg);
}
void Interposer::wrap_closelog(ProcessCtx& ctx) {
  ctx.process().syslog_ident.clear();
}

}  // namespace dsim::sim
