// Storage device models.
//
// A StorageDevice is a FIFO queueing server with a bandwidth and a latency:
// concurrent requests from many nodes serialize, which is exactly what
// produces the Fig.-5b contention shape when 32 nodes checkpoint to one SAN
// (8 direct Fibre-Channel clients) and one NFS server (remaining 24 nodes).
//
// Local disks additionally model the Linux page cache: unsynced writes are
// absorbed at memory-copy-like rates (the paper's Fig.-6 "implied bandwidth
// well beyond the typical 100 MB/s of disk"), while sync() drains dirty
// bytes at physical disk speed — the §5.2 sync-cost experiment.
#pragma once

#include <functional>
#include <string>

#include "sim/event_loop.h"
#include "util/rng.h"
#include "util/types.h"

namespace dsim::sim {

/// Shared queueing server (SAN device, NFS server, physical disk spindle).
class StorageDevice {
 public:
  StorageDevice(EventLoop& loop, std::string name, double bytes_per_sec,
                SimTime latency)
      : loop_(loop),
        name_(std::move(name)),
        bw_(bytes_per_sec),
        latency_(latency) {}

  /// Enqueue a transfer of `bytes`; `done` fires when it completes.
  /// `is_read` only affects accounting (reads and writes share the queue),
  /// so benches can attribute device traffic: a dedup'd cluster round
  /// writes shared chunks once but every restart still reads them.
  /// `logical_bytes` (0 = same as `bytes`) is what the counters record
  /// when the transfer size was rescaled for timing — LocalStorage models
  /// its faster read path by shrinking the request against the write-rate
  /// device, but the counters must stay in un-scaled bytes.
  void submit(u64 bytes, std::function<void()> done, bool is_read = false,
              u64 logical_bytes = 0);

  /// Account garbage collection of dead checkpoint generations: the device
  /// drops `bytes` of stored data at metadata (trim) rate — far cheaper
  /// than a transfer, but it still occupies the queue briefly.
  void discard(u64 bytes);

  /// Time at which the device queue drains (>= now).
  SimTime busy_until() const { return busy_until_; }
  const std::string& name() const { return name_; }
  double bandwidth() const { return bw_; }
  /// Cumulative bytes transferred through submit().
  u64 total_submitted_bytes() const { return submitted_bytes_; }
  /// Read/write split of total_submitted_bytes().
  u64 total_read_bytes() const { return read_bytes_; }
  u64 total_written_bytes() const { return submitted_bytes_ - read_bytes_; }
  /// Cumulative bytes dropped through discard() (GC'd generations).
  u64 total_discarded_bytes() const { return discarded_bytes_; }

  /// Multiplicative jitter hook (set once per experiment repetition).
  void set_jitter(Rng* rng, double sigma) {
    jitter_rng_ = rng;
    jitter_sigma_ = sigma;
  }

 private:
  SimTime jittered(double seconds);

  EventLoop& loop_;
  std::string name_;
  double bw_;
  SimTime latency_;
  SimTime busy_until_ = 0;
  u64 submitted_bytes_ = 0;
  u64 read_bytes_ = 0;
  u64 discarded_bytes_ = 0;
  Rng* jitter_rng_ = nullptr;
  double jitter_sigma_ = 0;
};

/// Per-node local storage with a page cache in front of a physical disk.
class LocalStorage {
 public:
  LocalStorage(EventLoop& loop, std::string name);

  /// Buffered write: absorbed by the page cache; dirty bytes accumulate.
  void write(u64 bytes, std::function<void()> done);
  /// Warm read (checkpoint images just written are cache-resident).
  void read(u64 bytes, std::function<void()> done);
  /// Flush dirty bytes to the physical disk (the §5.2 sync experiment).
  void sync(std::function<void()> done);

  /// Drop `bytes` of stored data (checkpoint-store GC) at trim rate.
  void discard(u64 bytes);

  u64 dirty_bytes() const { return dirty_; }
  const StorageDevice& cache() const { return cache_; }
  const StorageDevice& disk() const { return disk_; }
  /// Drop dirty accounting without cost (models writeback completing in the
  /// background between experiments).
  void writeback_complete() { dirty_ = 0; }

  void set_jitter(Rng* rng, double sigma) {
    cache_.set_jitter(rng, sigma);
    disk_.set_jitter(rng, sigma);
  }

 private:
  StorageDevice cache_;  // page-cache absorb/read path
  StorageDevice disk_;   // physical spindle (sync path)
  u64 dirty_ = 0;
};

}  // namespace dsim::sim
