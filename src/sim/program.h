// Program registry: "executables" the simulated OS can run.
//
// A Program supplies the main-thread coroutine and (for multithreaded
// programs) a worker-thread entry. On restart the same factories are
// re-invoked with restored ThreadContexts — the analogue of re-entering the
// text segment of the same binary with restored registers.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "sim/task.h"
#include "util/types.h"

namespace dsim::sim {

class ProcessCtx;

struct Program {
  std::string name;
  /// Main-thread body. Return value is the process exit code.
  std::function<Task<int>(ProcessCtx&)> main;
  /// Optional worker-thread body; `role` comes from the saved ThreadContext.
  std::function<Task<void>(ProcessCtx&, u32 role)> worker;
};

class ProgramRegistry {
 public:
  void add(Program p) { programs_[p.name] = std::move(p); }
  const Program* find(const std::string& name) const {
    auto it = programs_.find(name);
    return it == programs_.end() ? nullptr : &it->second;
  }

 private:
  std::map<std::string, Program> programs_;
};

}  // namespace dsim::sim
