#include "sim/kernel.h"

#include <algorithm>
#include <cstring>

#include "sim/interposer.h"
#include "sim/model_params.h"
#include "sim/pctx.h"
#include "util/assertx.h"
#include "util/logging.h"

namespace dsim::sim {
namespace {

/// One-shot completion for bridging callback APIs into coroutines. Held by
/// shared_ptr so a killed waiter cannot dangle under a late callback.
struct SyncPoint {
  bool done = false;
  WaitQueue wq;
  void complete() {
    done = true;
    wq.wake_all();
  }
};

Task<void> run_program_main(ProcessCtx* ctx, const Program* prog) {
  const int rc = co_await prog->main(*ctx);
  ctx->process().set_exit_code(rc);
}

Task<void> run_program_worker(ProcessCtx* ctx, const Program* prog, u32 role) {
  co_await prog->worker(*ctx, role);
}

}  // namespace

std::string ConnId::str() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "conn[%llx:%u:%llu:%u]",
                static_cast<unsigned long long>(host), pid,
                static_cast<unsigned long long>(timestamp), seq);
  return buf;
}

void TcpVNode::on_last_close() { kernel_.on_socket_close(*this); }

Kernel::Kernel(const KernelConfig& cfg)
    : cfg_(cfg),
      rng_(cfg.seed),
      net_(loop_, cfg.num_nodes),
      shared_fs_("shared:/"),
      san_dev_(loop_, "san", params::kSanBandwidth, params::kSanLatency),
      nfs_dev_(loop_, "nfs", params::kNfsBandwidth, params::kNfsLatency) {
  nodes_.reserve(cfg.num_nodes);
  for (int i = 0; i < cfg.num_nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>(loop_, i, cfg.cores_per_node,
                                            i < cfg.san_direct_nodes));
  }
  if (cfg.jitter_sigma > 0) {
    net_.set_jitter(&rng_, cfg.jitter_sigma);
    san_dev_.set_jitter(&rng_, cfg.jitter_sigma);
    nfs_dev_.set_jitter(&rng_, cfg.jitter_sigma);
    for (auto& n : nodes_) n->storage().set_jitter(&rng_, cfg.jitter_sigma);
  }
}

Kernel::~Kernel() {
  // Kill all processes first so coroutine frames (which reference kernel
  // objects) unwind before members are destroyed.
  for (auto& [pid, p] : procs_) {
    for (auto& t : p->threads()) t->kill();
  }
}

Node& Kernel::node(NodeId id) {
  DSIM_CHECK(id >= 0 && id < static_cast<NodeId>(nodes_.size()));
  return *nodes_[id];
}

// --- process management --------------------------------------------------

Pid Kernel::spawn_process(NodeId node_id, const std::string& prog,
                          std::vector<std::string> argv,
                          std::map<std::string, std::string> env, Pid ppid,
                          const FdTable* inherit_fds) {
  const Pid pid = next_pid_++;
  auto proc = std::make_unique<Process>(*this, pid, node_id, prog,
                                        std::move(argv), std::move(env), ppid);
  if (inherit_fds) proc->fds() = inherit_fds->clone_for_exec();
  Process& p = *proc;
  procs_.emplace(pid, std::move(proc));
  if (Process* parent = find_process(ppid)) parent->children().push_back(pid);

  if (attach_factory_ && p.env_or("DMTCP_ENABLED", "") == "1") {
    p.set_interposer(attach_factory_(p));
    p.interposer()->on_attach();
  }
  start_fresh(p);
  LOG_DEBUG("spawn pid=%d prog=%s node=%d", pid, prog.c_str(), node_id);
  return pid;
}

void Kernel::start_fresh(Process& p) {
  const Program* prog = programs_.find(p.prog_name());
  DSIM_CHECK_MSG(prog != nullptr, "unknown program");
  Thread& t = p.add_thread(ThreadKind::kMain);
  t.start(run_program_main(&t.pctx(), prog));
}

Process* Kernel::find_process(Pid pid) {
  auto it = procs_.find(pid);
  return it == procs_.end() ? nullptr : it->second.get();
}

void Kernel::kill_process(Pid pid) {
  Process* p = find_process(pid);
  if (!p || p->state() != ProcState::kRunning) return;
  p->set_exit_code(137);
  process_exit(*p);
}

void Kernel::process_exit(Process& p) {
  if (p.state() != ProcState::kRunning) return;
  if (p.interposer()) p.interposer()->on_process_exit();
  for (auto& t : p.threads()) t->kill();
  // Close all descriptors (wakes peers with EOF etc.).
  auto entries = p.fds().entries();
  p.fds().clear();
  for (auto& [fd, of] : entries) release_description(std::move(of));
  p.set_state(ProcState::kZombie);
  Process* parent = find_process(p.ppid());
  if (parent && parent->state() == ProcState::kRunning) {
    parent->child_exit_wq().wake_all();
  } else {
    p.set_state(ProcState::kDead);  // auto-reaped
  }
  LOG_DEBUG("exit pid=%d code=%d", p.pid(), p.exit_code());
}

void Kernel::on_thread_done(Pid pid, Tid tid) {
  Process* p = find_process(pid);
  if (!p || p->state() != ProcState::kRunning) return;
  Thread* t = p->find_thread(tid);
  if (!t) return;
  if (t->kind() == ThreadKind::kMain || p->exit_requested()) {
    process_exit(*p);
  }
}

Task<int> Kernel::wait_child(Thread& t, Pid child) {
  Process& parent = t.process();
  while (true) {
    Process* c = find_process(child);
    DSIM_CHECK_MSG(c != nullptr, "waitpid: no such child");
    DSIM_CHECK_MSG(c->ppid() == parent.pid(), "waitpid: not our child");
    if (c->state() == ProcState::kZombie) {
      c->set_state(ProcState::kDead);
      co_return c->exit_code();
    }
    DSIM_CHECK_MSG(c->state() != ProcState::kDead, "waitpid: already reaped");
    co_await parent.child_exit_wq().wait(t);
  }
}

std::vector<Pid> Kernel::live_pids() const {
  std::vector<Pid> out;
  for (const auto& [pid, p] : procs_) {
    if (p->state() == ProcState::kRunning) out.push_back(pid);
  }
  return out;
}

Process& Kernel::fork_bare_child(Process& parent) {
  const Pid pid = next_pid_++;
  auto proc = std::make_unique<Process>(*this, pid, parent.node(),
                                        parent.prog_name() + ":child",
                                        parent.argv(), parent.env(),
                                        parent.pid());
  proc->fds() = parent.fds().clone();
  Process& p = *proc;
  procs_.emplace(pid, std::move(proc));
  parent.children().push_back(pid);
  return p;
}

void Kernel::start_restored(Process& p, const std::string& prog_name,
                            std::vector<std::string> argv,
                            const std::vector<ThreadContext>& threads,
                            bool start_suspended) {
  p.set_prog_name(prog_name);
  p.set_argv(std::move(argv));
  p.set_restored(true);
  const Program* prog = programs_.find(prog_name);
  DSIM_CHECK_MSG(prog != nullptr, "restore: unknown program");
  bool main_done = false;
  for (const auto& ctx : threads) {
    if (!main_done) {
      Thread& t = p.add_thread(ThreadKind::kMain);
      t.set_context(ctx);
      if (start_suspended) t.ckpt_suspend();
      t.start(run_program_main(&t.pctx(), prog));
      main_done = true;
    } else {
      Thread& t = p.add_thread(ThreadKind::kWorker);
      t.set_context(ctx);
      DSIM_CHECK_MSG(prog->worker != nullptr,
                     "restore: program has worker threads but no entry");
      if (start_suspended) t.ckpt_suspend();
      t.start(run_program_worker(&t.pctx(), prog, ctx.role));
    }
  }
}

// --- time / cpu -------------------------------------------------------------

namespace {
struct SleepAwaiter {
  Kernel& k;
  Thread& t;
  SimTime dt;
  bool await_ready() const noexcept { return dt <= 0; }
  void await_suspend(std::coroutine_handle<> h) {
    t.park(h, nullptr);
    Thread* tp = &t;
    const EventId ev = k.loop().post_in(dt, [tp] {
      tp->clear_timer();
      tp->wake();
    });
    t.set_timer(ev);
  }
  void await_resume() const noexcept {}
};

struct CpuAwaiter {
  CpuModel& cpu;
  Thread& t;
  double seconds;
  bool await_ready() const noexcept { return seconds <= 0; }
  void await_suspend(std::coroutine_handle<> h) {
    t.park(h, nullptr);
    Thread* tp = &t;
    const auto job = cpu.submit(seconds, [tp] {
      tp->clear_cpu_job();
      tp->wake();
    });
    t.set_cpu_job(&cpu, job);
  }
  void await_resume() const noexcept {}
};
}  // namespace

Task<void> Kernel::sleep_for(Thread& t, SimTime dt) {
  co_await SleepAwaiter{*this, t, dt};
}

Task<void> Kernel::cpu_burst(Thread& t, double core_seconds) {
  double s = core_seconds;
  if (cfg_.jitter_sigma > 0) {
    s *= std::max(0.2, 1.0 + rng_.next_gaussian() * cfg_.jitter_sigma);
  }
  co_await CpuAwaiter{node(t.process().node()).cpu(), t, s};
}

// --- sockets -----------------------------------------------------------------

std::shared_ptr<OpenFile> Kernel::make_socket(Process& p, bool unix_domain) {
  auto vn = std::make_shared<TcpVNode>(*this);
  vn->local.node = p.node();
  vn->unix_domain = unix_domain;
  auto of = std::make_shared<OpenFile>();
  of->vnode = vn;
  of->description_id = next_description_id();
  return of;
}

bool Kernel::sock_bind(Process& p, TcpVNode& s, u16 port) {
  SockAddr addr{p.node(), port == 0 ? node(p.node()).alloc_ephemeral_port()
                                    : port};
  auto it = listeners_.find(addr);
  if (it != listeners_.end() && !it->second.expired()) return false;
  s.local = addr;
  return true;
}

void Kernel::sock_listen(Process& p, TcpVNode& s) {
  (void)p;
  DSIM_CHECK_MSG(s.local.port != 0, "listen() before bind()");
  s.state = TcpVNode::State::kListening;
  listeners_[s.local] = s.weak_from_this();
}

Task<std::shared_ptr<OpenFile>> Kernel::sock_accept(Thread& t, TcpVNode& s) {
  while (s.accept_q.empty()) {
    if (s.state != TcpVNode::State::kListening) co_return nullptr;
    co_await s.acceptable.wait(t);
  }
  auto vn = std::move(s.accept_q.front());
  s.accept_q.pop_front();
  auto of = std::make_shared<OpenFile>();
  of->vnode = vn;
  of->description_id = next_description_id();
  co_return of;
}

Task<bool> Kernel::sock_connect(Thread& t, TcpVNode& s, SockAddr addr) {
  DSIM_CHECK_MSG(s.state == TcpVNode::State::kRaw, "connect on used socket");
  // SYN + SYN/ACK round trip.
  const bool local = addr.node == s.local.node;
  co_await sleep_for(t, 2 * (local ? params::kLoopbackLatency
                                   : params::kNetLatency));
  auto it = listeners_.find(addr);
  if (it == listeners_.end()) co_return false;
  auto listener = it->second.lock();
  if (!listener || listener->state != TcpVNode::State::kListening) {
    co_return false;
  }
  if (s.local.port == 0) {
    s.local.port = node(s.local.node).alloc_ephemeral_port();
  }
  auto srv = std::make_shared<TcpVNode>(*this);
  srv->state = TcpVNode::State::kEstablished;
  srv->local = addr;
  srv->remote = s.local;
  srv->is_acceptor = true;
  srv->unix_domain = s.unix_domain;
  srv->peer = s.shared_from_this();
  s.peer = srv;
  s.remote = addr;
  s.state = TcpVNode::State::kEstablished;
  // Connection identity (§4.4): hostid+pid of the connector, creation time,
  // per-kernel sequence. Known to both ends from establishment — the
  // observable equivalent of DMTCP's connect/accept information handshake.
  s.conn_id = ConnId{0xd317c0ffee000000ULL | static_cast<u64>(s.local.node),
                     static_cast<u32>(t.process().pid()),
                     static_cast<u64>(loop_.now()), next_conn_seq_++};
  srv->conn_id = s.conn_id;
  listener->accept_q.push_back(std::move(srv));
  listener->acceptable.wake_all();
  co_return true;
}

bool Kernel::try_send_segment(TcpVNode& s, SockSegment seg) {
  DSIM_CHECK(!seg.bytes.empty());
  if (s.state != TcpVNode::State::kEstablished || s.peer.expired()) {
    return true;  // dropped on closed socket; "success" so callers move on
  }
  if (s.send_q_bytes >= params::kSockSendBuf) return false;
  s.send_q_bytes += seg.bytes.size();
  s.send_q.push_back(std::move(seg));
  pump_socket(s.shared_from_this());
  return true;
}

std::optional<SockSegment> Kernel::try_recv_segment(TcpVNode& s) {
  if (s.recv_q.empty()) return std::nullopt;
  SockSegment seg = std::move(s.recv_q.front());
  s.recv_q.pop_front();
  if (seg.consumed > 0) {
    seg.bytes.erase(seg.bytes.begin(),
                    seg.bytes.begin() + static_cast<ptrdiff_t>(seg.consumed));
    seg.consumed = 0;
  }
  s.recv_q_bytes -= seg.bytes.size();
  if (auto p = s.peer.lock()) pump_socket(p);
  return seg;
}

std::shared_ptr<OpenFile> Kernel::try_accept(TcpVNode& s) {
  if (s.accept_q.empty()) return nullptr;
  auto vn = std::move(s.accept_q.front());
  s.accept_q.pop_front();
  auto of = std::make_shared<OpenFile>();
  of->vnode = std::move(vn);
  of->description_id = next_description_id();
  return of;
}

Task<u64> Kernel::sock_send(Thread& t, TcpVNode& s,
                            std::span<const std::byte> bytes, SegKind kind) {
  DSIM_CHECK(!bytes.empty());
  while (s.send_q_bytes >= params::kSockSendBuf) {
    if (s.state != TcpVNode::State::kEstablished || s.peer.expired()) {
      co_return 0;  // EPIPE
    }
    co_await s.writable.wait(t);
  }
  if (s.state != TcpVNode::State::kEstablished || s.peer.expired()) {
    co_return 0;
  }
  const u64 room = params::kSockSendBuf - s.send_q_bytes;
  const u64 n = std::min<u64>(room, bytes.size());
  u64 queued = 0;
  while (queued < n) {
    const u64 seg_n = std::min<u64>(params::kTcpSegmentBytes, n - queued);
    SockSegment seg;
    seg.kind = kind;
    seg.bytes.assign(bytes.begin() + static_cast<ptrdiff_t>(queued),
                     bytes.begin() + static_cast<ptrdiff_t>(queued + seg_n));
    s.send_q.push_back(std::move(seg));
    queued += seg_n;
  }
  s.send_q_bytes += n;
  pump_socket(s.shared_from_this());
  co_return n;
}

Task<u64> Kernel::sock_recv(Thread& t, TcpVNode& s, std::span<std::byte> out) {
  DSIM_CHECK(!out.empty());
  while (s.recv_q.empty()) {
    if (s.peer_closed || s.state != TcpVNode::State::kEstablished) {
      co_return 0;  // EOF
    }
    co_await s.readable.wait(t);
  }
  SockSegment& front = s.recv_q.front();
  DSIM_CHECK_MSG(front.kind == SegKind::kData,
                 "user recv() reached a protocol segment");
  const u64 n = std::min<u64>(out.size(), front.remaining());
  std::memcpy(out.data(), front.bytes.data() + front.consumed, n);
  front.consumed += n;
  s.recv_q_bytes -= n;
  if (front.remaining() == 0) s.recv_q.pop_front();
  if (auto p = s.peer.lock()) pump_socket(p);  // receive window opened
  co_return n;
}

Task<SockSegment> Kernel::sock_recv_segment(Thread& t, TcpVNode& s) {
  while (s.recv_q.empty()) {
    if (s.peer_closed || s.state != TcpVNode::State::kEstablished) {
      co_return SockSegment{};  // empty kData == EOF sentinel
    }
    co_await s.readable.wait(t);
  }
  SockSegment seg = std::move(s.recv_q.front());
  s.recv_q.pop_front();
  if (seg.consumed > 0) {
    seg.bytes.erase(seg.bytes.begin(),
                    seg.bytes.begin() + static_cast<ptrdiff_t>(seg.consumed));
    seg.consumed = 0;
  }
  s.recv_q_bytes -= seg.bytes.size();
  if (auto p = s.peer.lock()) pump_socket(p);
  co_return seg;
}

Task<void> Kernel::sock_send_segment(Thread& t, TcpVNode& s, SockSegment seg) {
  DSIM_CHECK(!seg.bytes.empty());
  while (s.send_q_bytes >= params::kSockSendBuf) {
    if (s.state != TcpVNode::State::kEstablished || s.peer.expired()) {
      co_return;
    }
    co_await s.writable.wait(t);
  }
  s.send_q_bytes += seg.bytes.size();
  s.send_q.push_back(std::move(seg));
  pump_socket(s.shared_from_this());
}

std::pair<std::shared_ptr<OpenFile>, std::shared_ptr<OpenFile>>
Kernel::make_socketpair(Process& p) {
  auto a = make_socket(p, /*unix_domain=*/true);
  auto b = make_socket(p, /*unix_domain=*/true);
  auto& va = static_cast<TcpVNode&>(*a->vnode);
  auto& vb = static_cast<TcpVNode&>(*b->vnode);
  va.local.port = node(p.node()).alloc_ephemeral_port();
  vb.local.port = node(p.node()).alloc_ephemeral_port();
  va.remote = vb.local;
  vb.remote = va.local;
  va.peer = std::static_pointer_cast<TcpVNode>(b->vnode);
  vb.peer = std::static_pointer_cast<TcpVNode>(a->vnode);
  va.state = vb.state = TcpVNode::State::kEstablished;
  vb.is_acceptor = true;  // deterministic "acceptor" end for restart
  va.conn_id = ConnId{0xd317c0ffee000000ULL | static_cast<u64>(p.node()),
                      static_cast<u32>(p.pid()),
                      static_cast<u64>(loop_.now()), next_conn_seq_++};
  vb.conn_id = va.conn_id;
  return {std::move(a), std::move(b)};
}

void Kernel::link_established(Process& pa, TcpVNode& a, Process& pb,
                              TcpVNode& b) {
  a.local = {pa.node(), node(pa.node()).alloc_ephemeral_port()};
  b.local = {pb.node(), node(pb.node()).alloc_ephemeral_port()};
  a.remote = b.local;
  b.remote = a.local;
  a.peer = b.shared_from_this();
  b.peer = a.shared_from_this();
  a.state = b.state = TcpVNode::State::kEstablished;
}

void Kernel::pump_socket(std::shared_ptr<TcpVNode> s) {
  if (s->state != TcpVNode::State::kEstablished && !s->lingering) return;
  auto peer = s->peer.lock();
  if (!peer) return;
  bool moved = false;
  while (!s->send_q.empty()) {
    const u64 n = s->send_q.front().remaining();
    const u64 used = peer->recv_q_bytes + s->in_flight;
    if (used > 0 && used + n > params::kSockRecvBuf) break;
    auto seg = std::make_shared<SockSegment>(std::move(s->send_q.front()));
    s->send_q.pop_front();
    s->send_q_bytes -= n;
    s->in_flight += n;
    net_.transfer(s->local.node, peer->local.node, std::max<u64>(n, 1),
                  [this, s, peer, n, seg] {
                    s->in_flight -= n;
                    if (peer->state == TcpVNode::State::kClosed) return;
                    peer->recv_q.push_back(std::move(*seg));
                    peer->recv_q_bytes += n;
                    peer->readable.wake_all();
                    pump_socket(s);
                  });
    moved = true;
  }
  if (moved) s->writable.wake_all();
}

void Kernel::on_socket_close(TcpVNode& s) {
  if (s.state == TcpVNode::State::kListening) {
    listeners_.erase(s.local);
  } else if (s.state == TcpVNode::State::kEstablished) {
    // TCP semantics: buffered and in-flight bytes are delivered before the
    // peer observes the FIN. Linger until the pipeline drains.
    s.state = TcpVNode::State::kClosed;
    s.lingering = true;
    linger_poll(s.shared_from_this());
  } else {
    s.state = TcpVNode::State::kClosed;
  }
  s.readable.wake_all();
  s.writable.wake_all();
  s.acceptable.wake_all();
  s.accept_q.clear();
}

void Kernel::linger_poll(std::shared_ptr<TcpVNode> s) {
  if (!s->lingering) return;
  if (s->send_q.empty() && s->in_flight == 0) {
    s->lingering = false;
    if (auto p = s->peer.lock()) {
      p->peer_closed = true;
      p->readable.wake_all();
    }
    return;
  }
  pump_socket(s);
  loop_.post_in(20 * timeconst::kMicrosecond,
                [this, s] { linger_poll(std::move(s)); });
}

// --- pipes / ptys ------------------------------------------------------------

std::pair<std::shared_ptr<OpenFile>, std::shared_ptr<OpenFile>>
Kernel::make_pipe(Process& p) {
  (void)p;
  auto buf = std::make_shared<PipeBuf>();
  auto rd = std::make_shared<OpenFile>();
  rd->vnode = std::make_shared<PipeVNode>(VKind::kPipeRead, buf);
  rd->description_id = next_description_id();
  auto wr = std::make_shared<OpenFile>();
  wr->vnode = std::make_shared<PipeVNode>(VKind::kPipeWrite, buf);
  wr->description_id = next_description_id();
  return {std::move(rd), std::move(wr)};
}

std::pair<std::shared_ptr<OpenFile>, std::shared_ptr<OpenFile>>
Kernel::make_pty(Process& p) {
  auto pair = std::make_shared<PtyPair>();
  pair->id = node(p.node()).alloc_pty_id();
  pair->slave_name = "/dev/pts/" + std::to_string(pair->id);
  auto master = std::make_shared<OpenFile>();
  master->vnode = std::make_shared<PtyVNode>(VKind::kPtyMaster, pair);
  master->description_id = next_description_id();
  auto slave = std::make_shared<OpenFile>();
  slave->vnode = std::make_shared<PtyVNode>(VKind::kPtySlave, pair);
  slave->description_id = next_description_id();
  return {std::move(master), std::move(slave)};
}

Task<u64> Kernel::pipe_read(Thread& t, PipeVNode& v, std::span<std::byte> out) {
  PipeBuf& b = v.buf();
  while (b.data.empty()) {
    if (b.writer_closed) co_return 0;
    co_await b.readable.wait(t);
  }
  const u64 n = std::min<u64>(out.size(), b.data.size());
  for (u64 i = 0; i < n; ++i) {
    out[i] = b.data.front();
    b.data.pop_front();
  }
  b.writable.wake_all();
  co_return n;
}

Task<u64> Kernel::pipe_write(Thread& t, PipeVNode& v,
                             std::span<const std::byte> bytes) {
  PipeBuf& b = v.buf();
  while (b.data.size() >= b.capacity) {
    if (b.reader_closed) co_return 0;  // EPIPE
    co_await b.writable.wait(t);
  }
  if (b.reader_closed) co_return 0;
  const u64 n = std::min<u64>(bytes.size(), b.capacity - b.data.size());
  for (u64 i = 0; i < n; ++i) b.data.push_back(bytes[i]);
  b.readable.wake_all();
  co_return n;
}

Task<u64> Kernel::pty_read(Thread& t, PtyVNode& v, std::span<std::byte> out) {
  PtyPair& p = v.pair();
  const bool master = v.kind() == VKind::kPtyMaster;
  auto& q = master ? p.to_master : p.to_slave;
  auto& wq = master ? p.master_readable : p.slave_readable;
  const bool& other_closed = master ? p.slave_closed : p.master_closed;
  while (q.empty()) {
    if (other_closed) co_return 0;
    co_await wq.wait(t);
  }
  const u64 n = std::min<u64>(out.size(), q.size());
  for (u64 i = 0; i < n; ++i) {
    out[i] = q.front();
    q.pop_front();
  }
  co_return n;
}

Task<u64> Kernel::pty_write(Thread& t, PtyVNode& v,
                            std::span<const std::byte> bytes) {
  (void)t;
  PtyPair& p = v.pair();
  const bool master = v.kind() == VKind::kPtyMaster;
  if ((master && p.slave_closed) || (!master && p.master_closed)) co_return 0;
  auto& q = master ? p.to_slave : p.to_master;
  for (std::byte b : bytes) q.push_back(b);
  (master ? p.slave_readable : p.master_readable).wake_all();
  co_return bytes.size();
}

// --- files --------------------------------------------------------------------

FileSystem& Kernel::fs_for(NodeId node_id, const std::string& path) {
  if (path.rfind("/shared", 0) == 0) return shared_fs_;
  return node(node_id).fs();
}

StorageBackend Kernel::backend_for(const std::string& path) const {
  return path.rfind("/shared", 0) == 0 ? StorageBackend::kShared
                                       : StorageBackend::kLocalDisk;
}

StorageDevice& Kernel::shared_device_for(NodeId node_id) {
  return node(node_id).has_fc() ? san_dev_ : nfs_dev_;
}

std::shared_ptr<OpenFile> Kernel::open_file(Process& p,
                                            const std::string& path,
                                            OpenFlags flags) {
  FileSystem& fs = fs_for(p.node(), path);
  std::shared_ptr<Inode> inode =
      flags.create ? fs.create(path) : fs.lookup(path);
  if (!inode) return nullptr;
  if (flags.truncate) inode->data.resize(0);
  auto of = std::make_shared<OpenFile>();
  of->vnode = std::make_shared<FileVNode>(path, inode);
  of->offset = flags.append ? inode->data.size() : 0;
  of->description_id = next_description_id();
  return of;
}

Task<void> Kernel::charge_storage(Thread& t, NodeId node_id,
                                  const std::string& path, u64 bytes,
                                  bool is_read) {
  auto sp = std::make_shared<SyncPoint>();
  if (backend_for(path) == StorageBackend::kLocalDisk) {
    auto& st = node(node_id).storage();
    if (is_read) {
      st.read(bytes, [sp] { sp->complete(); });
    } else {
      st.write(bytes, [sp] { sp->complete(); });
    }
  } else {
    shared_device_for(node_id).submit(bytes, [sp] { sp->complete(); },
                                      is_read);
  }
  while (!sp->done) co_await sp->wq.wait(t);
}

void Kernel::charge_storage_bg(NodeId node_id, const std::string& path,
                               u64 bytes, bool is_read,
                               std::function<void()> done) {
  if (backend_for(path) == StorageBackend::kLocalDisk) {
    auto& st = node(node_id).storage();
    if (is_read) {
      st.read(bytes, std::move(done));
    } else {
      st.write(bytes, std::move(done));
    }
  } else {
    shared_device_for(node_id).submit(bytes, std::move(done), is_read);
  }
}

Task<void> Kernel::sync_storage(Thread& t, NodeId node_id,
                                const std::string& path) {
  auto sp = std::make_shared<SyncPoint>();
  if (backend_for(path) == StorageBackend::kLocalDisk) {
    node(node_id).storage().sync([sp] { sp->complete(); });
  } else {
    shared_device_for(node_id).submit(1, [sp] { sp->complete(); });
  }
  while (!sp->done) co_await sp->wq.wait(t);
}

void Kernel::discard_storage(NodeId node_id, const std::string& path,
                             u64 bytes) {
  if (backend_for(path) == StorageBackend::kLocalDisk) {
    node(node_id).storage().discard(bytes);
  } else {
    shared_device_for(node_id).discard(bytes);
  }
}

Task<u64> Kernel::file_read(Thread& t, OpenFile& of, std::span<std::byte> out) {
  auto& fv = static_cast<FileVNode&>(*of.vnode);
  Inode& inode = fv.inode();
  const u64 size = inode.data.size();
  if (of.offset >= size) co_return 0;
  const u64 n = std::min<u64>(out.size(), size - of.offset);
  co_await charge_storage(t, t.process().node(), fv.path(), n,
                          /*is_read=*/true);
  inode.data.read(of.offset, out.first(n));
  of.offset += n;
  co_return n;
}

Task<u64> Kernel::file_write(Thread& t, OpenFile& of,
                             std::span<const std::byte> bytes) {
  auto& fv = static_cast<FileVNode&>(*of.vnode);
  co_await charge_storage(t, t.process().node(), fv.path(), bytes.size(),
                          /*is_read=*/false);
  // Mutate content only after the device time has elapsed, so concurrent
  // observers never see a half-written file.
  Inode& inode = fv.inode();
  const u64 end = of.offset + bytes.size();
  if (end > inode.data.size()) inode.data.resize(end);
  inode.data.write(of.offset, bytes);
  inode.version++;
  of.offset = end;
  co_return bytes.size();
}

void Kernel::close_fd(Process& p, Fd fd) {
  auto of = p.fds().remove(fd);
  if (of) release_description(std::move(of));
}

void Kernel::release_description(std::shared_ptr<OpenFile> of) {
  if (!of) return;
  if (of.use_count() > 1) return;  // still open elsewhere (dup/fork share)
  // This was the last descriptor-table reference: run close semantics now.
  // The vnode itself may be kept alive a little longer by in-flight network
  // delivery closures — those are transient and must not defer the FIN.
  auto vn = of->vnode;
  of.reset();
  if (vn) vn->on_last_close();
}

// --- shared memory ------------------------------------------------------------

std::shared_ptr<MemSegment> Kernel::mmap_shared(Process& p,
                                                const std::string& path,
                                                u64 size) {
  FileSystem& fs = fs_for(p.node(), path);
  auto inode = fs.create(path);
  if (inode->data.size() < size) inode->data.resize(size);
  // One live MemSegment per backing file: processes mapping the same file
  // share the same bytes (real mmap MAP_SHARED semantics).
  const std::string key = fs.name() + path;
  auto it = shm_live_.find(key);
  if (it != shm_live_.end()) {
    if (auto seg = it->second.lock()) return seg;
  }
  auto seg = std::make_shared<MemSegment>();
  seg->id = 0;
  seg->name = "shm:" + path;
  seg->kind = MemKind::kShm;
  seg->shared = true;
  seg->backing_path = path;
  seg->data = inode->data;  // COW copy of current file content
  shm_live_[key] = seg;
  return seg;
}

}  // namespace dsim::sim
