// ProcessCtx: the syscall facade simulated programs run against.
//
// One ProcessCtx exists per (process, thread). Calls that DMTCP wraps are
// routed through the process's Interposer when present — this is the
// simulator's LD_PRELOAD boundary (§4.2). The `*_raw` variants bypass the
// interposer; they are what the hijack library itself calls.
//
// Restart-safe primitives: `read_exact` / `write_exact` / `cpu_chunked`
// persist their progress in a ThreadContext register (`RegSlot`), and
// buffers live in simulated memory (`MemRef`). After a kill+restart, the
// program re-invokes the same primitive with the same arguments and it
// continues from the persisted position — the observable equivalent of
// MTCP restoring registers mid-syscall (DESIGN.md §3.2).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/ipc.h"
#include "sim/kernel.h"
#include "sim/process.h"
#include "sim/socket.h"
#include "sim/task.h"
#include "sim/thread.h"
#include "util/types.h"

namespace dsim::sim {

/// Index of a progress register in ThreadContext::regs.
using RegSlot = int;

/// A location in simulated process memory (survives checkpoint/restart).
struct MemRef {
  MemSegment* seg = nullptr;
  u64 off = 0;
  MemRef at(u64 delta) const { return {seg, off + delta}; }
};

class ProcessCtx {
 public:
  ProcessCtx(Kernel& kernel, Process& process, Thread& thread)
      : k_(kernel), p_(process), t_(thread) {}

  Kernel& kernel() { return k_; }
  Process& process() { return p_; }
  Thread& thread() { return t_; }
  SimTime now() const { return k_.loop().now(); }
  bool restored() const { return p_.restored(); }
  Rng& rng() { return p_.rng(); }

  /// Application program counter (persisted across restart).
  u32& phase() { return t_.context().phase; }
  /// Progress registers (persisted across restart).
  u64& reg(RegSlot r) { return t_.context().regs[static_cast<size_t>(r)]; }

  // --- time / compute ---------------------------------------------------------
  Task<void> sleep(SimTime dt) { return k_.sleep_for(t_, dt); }
  /// Uninterruptible-by-restart compute burst (manager internals, short ops).
  Task<void> cpu(double seconds) { return k_.cpu_burst(t_, seconds); }
  /// Restart-resumable compute: progress persisted in `reg` (microseconds).
  Task<void> cpu_chunked(double seconds, RegSlot reg);

  // --- process management -----------------------------------------------------
  /// fork+exec on this node (wrapped: DMTCP registers the child, virtualizes
  /// its pid, and re-forks on a virtual-pid conflict, §4.5).
  Task<Pid> spawn(const std::string& prog, std::vector<std::string> argv = {},
                  std::map<std::string, std::string> extra_env = {});
  /// Remote spawn via ssh (wrapped: DMTCP rewrites the command so the remote
  /// process also runs under checkpoint control, §3).
  Task<Pid> ssh(NodeId node, const std::string& prog,
                std::vector<std::string> argv = {},
                std::map<std::string, std::string> extra_env = {});
  Task<int> waitpid(Pid child);  // wrapped: DMTCP translates virtual pids
  Task<int> waitpid_raw(Pid child) { return k_.wait_child(t_, child); }
  Pid getpid();        // wrapped: returns the virtual pid under DMTCP
  Pid getpid_real() const { return p_.pid(); }

  /// Spawn an additional user thread running the program's worker entry.
  Tid spawn_thread(u32 role);

  // --- memory -------------------------------------------------------------------
  MemSegment& alloc(const std::string& name, MemKind kind, u64 size) {
    return p_.mem().add(name, kind, size);
  }
  MemSegment* seg(const std::string& name) { return p_.mem().find(name); }
  std::shared_ptr<MemSegment> mmap_shared(const std::string& path, u64 size);

  /// Typed access to simulated memory (state structs must be trivially
  /// copyable).
  template <typename T>
  T load(MemRef ref) {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    ref.seg->data.read(ref.off, std::as_writable_bytes(std::span(&v, 1)));
    return v;
  }
  template <typename T>
  void store(MemRef ref, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    ref.seg->data.write(ref.off, std::as_bytes(std::span(&v, 1)));
  }

  // --- descriptors ----------------------------------------------------------------
  Task<Fd> open(const std::string& path, bool create = false,
                bool truncate = false, bool append = false);
  Task<void> close(Fd fd);      // wrapped
  Fd dup(Fd fd);
  Task<void> dup2(Fd oldfd, Fd newfd);  // wrapped
  i64 lseek(Fd fd, i64 off, int whence);  // 0=SET 1=CUR 2=END
  void fcntl_setown(Fd fd, Pid owner);
  Pid fcntl_getown(Fd fd);

  /// Generic read/write dispatching on descriptor kind. Single attempt
  /// (may transfer fewer bytes than requested).
  Task<i64> read(Fd fd, std::span<std::byte> out);
  Task<i64> write(Fd fd, std::span<const std::byte> bytes);

  /// Restart-safe exact-length I/O; `buf` in simulated memory, progress in
  /// `reg` (reset to 0 on completion).
  Task<void> read_exact(Fd fd, MemRef buf, u64 len, RegSlot reg);
  Task<void> write_exact(Fd fd, MemRef buf, u64 len, RegSlot reg);
  /// Like read/write_exact but tolerate a clean EOF at record boundary
  /// (returns false). EOF mid-record still aborts — that is corruption.
  Task<bool> read_exact_or_eof(Fd fd, MemRef buf, u64 len, RegSlot reg);
  Task<bool> write_exact_or_eof(Fd fd, MemRef buf, u64 len, RegSlot reg);

  // --- sockets -----------------------------------------------------------------------
  Task<Fd> socket(bool unix_domain = false);           // wrapped
  Task<bool> bind(Fd fd, u16 port);                    // wrapped
  Task<void> listen(Fd fd);                            // wrapped
  Task<Fd> accept(Fd fd);                              // wrapped
  Task<bool> connect(Fd fd, SockAddr addr);            // wrapped
  Task<std::pair<Fd, Fd>> socketpair();                // wrapped
  Task<std::pair<Fd, Fd>> pipe();                      // wrapped (promoted)
  void setsockopt(Fd fd, int opt, int value);          // recorded by wrappers

  // --- terminals -----------------------------------------------------------------------
  Task<std::pair<Fd, Fd>> openpty();                   // wrapped
  std::string ptsname(Fd master);                      // wrapped
  Termios tcgetattr(Fd fd);
  void tcsetattr(Fd fd, const Termios& tio);
  void set_ctty(i32 pty_id) { p_.ctty() = pty_id; }

  // --- syslog (wrapped per §4.2) ----------------------------------------------------------
  void openlog(const std::string& ident);
  void syslog(const std::string& msg);
  void closelog();

  void exit(int code) { p_.request_exit(code); }

  // --- raw (interposer-bypassing) variants -----------------------------------------------
  Task<Fd> socket_raw(bool unix_domain);
  Task<bool> bind_raw(Fd fd, u16 port);
  Task<void> listen_raw(Fd fd);
  Task<Fd> accept_raw(Fd fd);
  Task<bool> connect_raw(Fd fd, SockAddr addr);
  Task<std::pair<Fd, Fd>> socketpair_raw();
  Task<std::pair<Fd, Fd>> pipe_raw();
  Task<Pid> spawn_raw(NodeId node, const std::string& prog,
                      std::vector<std::string> argv,
                      std::map<std::string, std::string> env);
  Task<void> close_raw(Fd fd);
  Task<void> dup2_raw(Fd oldfd, Fd newfd);
  Task<std::pair<Fd, Fd>> openpty_raw();
  std::string ptsname_raw(Fd master);

  /// Resolve an fd to its description / vnode (kernel-plane helpers).
  std::shared_ptr<OpenFile> fd_get(Fd fd) { return p_.fds().get(fd); }
  TcpVNode* fd_tcp(Fd fd);

  /// Build the default environment passed to children (DMTCP vars included).
  std::map<std::string, std::string> child_env(
      std::map<std::string, std::string> extra) const;

 private:
  Kernel& k_;
  Process& p_;
  Thread& t_;
};

}  // namespace dsim::sim
