// TCP-like sockets with kernel buffers and in-flight data.
//
// The socket model carries three pools of bytes per direction — the sender's
// kernel send buffer, segments in flight in the Network, and the receiver's
// kernel receive buffer — because DMTCP's drain protocol (§4.3 step 4) must
// capture all three. Flow control is credit-based: a sender may not have
// more than the receiver's buffer capacity outstanding (in flight + queued).
//
// Segments are typed: kData carries user bytes; kToken is the drain marker
// DMTCP sends to flush a connection; kCtrl carries manager-to-manager
// payloads (refill blobs, restart handshakes). Tokens/ctrl ride the same
// ordered stream as data — the token therefore arrives after every user
// byte sent before it, which is what makes the drain sound.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "sim/thread.h"
#include "sim/vnode.h"
#include "util/serialize.h"
#include "util/types.h"

namespace dsim::sim {

class Kernel;

struct SockAddr {
  NodeId node = -1;
  u16 port = 0;
  bool operator==(const SockAddr&) const = default;
  bool operator<(const SockAddr& o) const {
    return node != o.node ? node < o.node : port < o.port;
  }
};

/// Globally unique connection id (§4.4: "hostid, pid, timestamp,
/// per-process connection number"). Assigned by the DMTCP wrappers at
/// connect/accept time; stays constant across migration.
struct ConnId {
  u64 host = 0;
  u32 pid = 0;
  u64 timestamp = 0;
  u32 seq = 0;
  bool operator==(const ConnId&) const = default;
  bool operator<(const ConnId& o) const {
    if (host != o.host) return host < o.host;
    if (pid != o.pid) return pid < o.pid;
    if (timestamp != o.timestamp) return timestamp < o.timestamp;
    return seq < o.seq;
  }
  bool valid() const { return host != 0 || pid != 0 || timestamp != 0; }
  void serialize(ByteWriter& w) const {
    w.put_u64(host);
    w.put_u32(pid);
    w.put_u64(timestamp);
    w.put_u32(seq);
  }
  static ConnId deserialize(ByteReader& r) {
    ConnId id;
    id.host = r.get_u64();
    id.pid = r.get_u32();
    id.timestamp = r.get_u64();
    id.seq = r.get_u32();
    return id;
  }
  std::string str() const;
};

enum class SegKind : u8 { kData = 0, kToken = 1, kCtrl = 2 };

struct SockSegment {
  SegKind kind = SegKind::kData;
  std::vector<std::byte> bytes;
  u64 consumed = 0;  // partial-read cursor (kData at queue front)
  u64 remaining() const { return bytes.size() - consumed; }
};

class TcpVNode final : public VNode,
                       public std::enable_shared_from_this<TcpVNode> {
 public:
  enum class State : u8 {
    kRaw,          // socket() called, not yet bound/connected
    kListening,
    kEstablished,
    kClosed,       // locally closed
  };

  explicit TcpVNode(Kernel& kernel)
      : VNode(VKind::kTcp), kernel_(kernel) {}

  State state = State::kRaw;
  SockAddr local{};
  SockAddr remote{};
  bool is_acceptor = false;  // this end was created by accept()

  /// Paper §4.4: socket type recorded by the wrappers. Loopback/UNIX-domain
  /// and promoted pipes are all TcpVNode instances flagged here.
  bool unix_domain = false;
  bool promoted_pipe = false;

  // --- established-connection plumbing ---
  std::weak_ptr<TcpVNode> peer;
  std::deque<SockSegment> send_q;  // kernel send buffer
  u64 send_q_bytes = 0;
  u64 in_flight = 0;               // bytes handed to the Network
  std::deque<SockSegment> recv_q;  // kernel receive buffer
  u64 recv_q_bytes = 0;
  bool peer_closed = false;        // FIN seen (ordered behind all data)
  /// Closed locally but still flushing buffered/in-flight data before the
  /// FIN is delivered to the peer (TCP linger semantics: data, then FIN).
  bool lingering = false;
  bool pump_scheduled = false;
  WaitQueue readable;
  WaitQueue writable;

  // --- listener plumbing ---
  std::deque<std::shared_ptr<TcpVNode>> accept_q;
  WaitQueue acceptable;
  u64 next_accept_hint = 0;

  /// Total receivable bytes currently buffered (data + token + ctrl).
  u64 buffered_bytes() const { return recv_q_bytes; }

  /// DMTCP-layer connection identity (set by the Hijack wrappers).
  ConnId conn_id{};

  void on_last_close() override;
  Kernel& kernel() { return kernel_; }

 private:
  Kernel& kernel_;
};

}  // namespace dsim::sim
