// Calibrated virtual-time cost model constants.
//
// These model the paper's 2008-era testbed (§5.2): dual-socket dual-core
// Xeon 5130 nodes, Gigabit Ethernet, local SATA disks, an EMC CX300 SAN over
// 4 Gb/s Fibre Channel reachable from 8 of 32 nodes, NFS for the rest, and
// gzip-era compression speeds. Values were calibrated so Table 1's stage
// breakdown and the headline "2 s checkpoint on 128 cores" reproduce; see
// EXPERIMENTS.md for paper-vs-measured numbers. All bandwidths are in
// bytes/second of *virtual* time.
#pragma once

#include "util/types.h"

namespace dsim::sim::params {

// --- Node ---------------------------------------------------------------
inline constexpr int kCoresPerNode = 4;
inline constexpr u64 kNodeRamBytes = 8ull << 30;

// --- Network (Gigabit Ethernet) ------------------------------------------
inline constexpr double kNicBandwidth = 117e6;        // ~GigE goodput
inline constexpr SimTime kNetLatency = 100 * timeconst::kMicrosecond;
inline constexpr SimTime kLoopbackLatency = 8 * timeconst::kMicrosecond;
inline constexpr double kLoopbackBandwidth = 1.2e9;
inline constexpr u64 kTcpSegmentBytes = 64 * 1024;
// Kernel socket buffer defaults ("tens of kilobytes", §5.4).
inline constexpr u64 kSockSendBuf = 64 * 1024;
inline constexpr u64 kSockRecvBuf = 64 * 1024;

// --- Storage --------------------------------------------------------------
// Local disk: checkpoints are written without sync (§5.2), so writes land in
// the page cache. The paper's Fig. 6 analysis ("implied bandwidth is well
// beyond the typical 100 MB/s of disk") is what this models.
inline constexpr double kPageCacheWriteBw = 450e6;  // absorb rate, per node
inline constexpr double kPageCacheReadBw = 420e6;   // warm-cache read rate
inline constexpr double kLocalDiskBw = 80e6;        // physical writeback rate
inline constexpr SimTime kDiskLatency = 2 * timeconst::kMillisecond;

// SAN: EMC CX300 over 4 Gb/s Fibre Channel, shared by the 8 directly
// attached nodes. NFS: one server exporting the SAN to the other 24 nodes
// over GigE.
inline constexpr double kSanBandwidth = 380e6;   // aggregate FC goodput
inline constexpr double kNfsBandwidth = 95e6;    // aggregate via GigE server
inline constexpr SimTime kSanLatency = 1 * timeconst::kMillisecond;
inline constexpr SimTime kNfsLatency = 4 * timeconst::kMillisecond;
inline constexpr int kSanDirectNodes = 8;        // nodes with FC HBAs

// --- Compression (gzip-era single-core throughput, Xeon 5130 class) --------
// Cost model: zero-filled input flies through gzip (long matches, little
// entropy work) while "typical" program data (heap/library bytes) crawls.
// This split reproduces both Table 1a's 3.9 s compressed write for NAS/MG
// and the NAS/IS anomaly (§5.4: mostly-zero buckets compress quickly and
// small).
inline constexpr double kGzipZeroBw = 260e6;  // zero-extent input rate
inline constexpr double kGzipDataBw = 11e6;   // non-zero input rate
// gunzip is considerably faster than gzip (§5.4); output-rate bound.
inline constexpr double kGunzipOutBw = 50e6;

// --- Process / checkpoint mechanics ----------------------------------------
// Suspending user threads: signal delivery + quiesce (Table 1a: ~25 ms).
inline constexpr SimTime kSuspendBase = 24 * timeconst::kMillisecond;
inline constexpr SimTime kSuspendPerThread = 120 * timeconst::kMicrosecond;
// FD leader election: one fcntl round per shared descriptor (~1.4 ms total).
inline constexpr SimTime kElectPerFd = 30 * timeconst::kMicrosecond;
inline constexpr SimTime kElectBase = 800 * timeconst::kMicrosecond;
// Draining a connection: the paper's ~0.1 s drain stage (Table 1a) is
// dominated by TCP flush dynamics (slow-start, delayed ACKs, receiver
// scheduling) that the instantaneous-window socket model does not produce;
// charge them explicitly per drained process.
inline constexpr SimTime kDrainFlushBase = 95 * timeconst::kMillisecond;
// Building/restoring the in-user-space image when *not* compressing
// (page-table setup + copy; Table 1b "restore memory/threads" uncompressed).
inline constexpr double kImageAssembleBw = 200e6;
// Raw memcpy rate (image assembly when the data is piped through gzip).
inline constexpr double kMemcpyBw = 2.4e9;
// Gear rolling-hash scan rate over real content (content-defined
// chunking's extra cutpoint-search pass; fixed chunking skips it). Gear
// is one shift+add+table-lookup per byte — slower than memcpy, far
// faster than gzip.
inline constexpr double kGearHashBw = 1.2e9;
// fork() for forked checkpointing: page-table copy cost per MB of RSS.
inline constexpr SimTime kForkPerMb = 600 * timeconst::kMicrosecond;
inline constexpr SimTime kForkBase = 300 * timeconst::kMicrosecond;
// Copy-on-write slowdown while a forked checkpoint is in flight is emergent:
// the writer child occupies a core in the fluid-share CPU model.

// --- Async COW checkpoint pipeline (src/ckptasync/) --------------------------
// Snapshotted pages the application touches before the background drain
// finishes pay a copy-on-write fault: trap + page copy, charged as
// background CPU on the touching node so the slowdown stays emergent
// through the fluid share (one full page copy at memcpy rate plus the
// fault/TLB overhead).
inline constexpr u64 kCowPageBytes = 4 * 1024;
inline constexpr double kCowPageFaultSeconds = 2e-6;
// Background compress-stage input rate (single core) for the async
// pipeline's gzip-class baseline codec; other codecs scale by their
// relative cost factor (compress::codec_cost_factor). This is the knob the
// compress-vs-NIC/device crossover sweeps: a slow core makes compression
// lose to shipping raw bytes over a fast fabric, a fast core makes it win
// on a slow NIC/device. Overridable per run via --compress-bw.
inline constexpr double kCompressBw = 30e6;

// --- Erasure coding (src/ckptstore/erasure.*) --------------------------------
// Reed-Solomon GF(2^8) table arithmetic on a single 2008-era core: one
// table lookup + XOR per (input byte x parity row). Far faster than gzip
// (kCompressBw) but not free — restart decode with missing data fragments
// and background fragment rebuilds charge CPU at this input rate.
inline constexpr double kErasureBw = 400e6;
// Cold-tier demotion daemon: generations older than --hot-generations are
// re-encoded to the wider cold (k,m) profile in the background, at most
// this many chunks per checkpoint round so demotion never swamps the
// foreground store traffic.
inline constexpr u64 kDemoteChunksPerRound = 256;

// --- Chunk-store service (stdchk-style remote store) ------------------------
// The cluster-scope store is a *service* with one FIFO request queue, not a
// free in-memory index: every dedup Lookup, chunk Store, restart Fetch and
// GC Drop occupies the queue, so N ranks' requests serialize the way Fig.-5b
// storage traffic does. The request-processing rate is GigE-server class
// (one store node answering the whole computation); each Lookup costs an
// index probe's worth of queue occupancy, and Store/Fetch cost their chunk
// bytes. Per-request RPC latency is pipelined (it delays completion, not the
// queue), so the contention knee comes from queue occupancy alone.
inline constexpr double kStoreServiceBw = 180e6;
inline constexpr SimTime kStoreServiceLatency = 250 * timeconst::kMicrosecond;
inline constexpr u64 kStoreLookupBytes = 4 * 1024;

// --- Chunk-store RPC fabric --------------------------------------------------
// Service requests are real messages over the cluster network (src/rpc/):
// each RPC charges the caller's NIC egress for the request, a serialized
// per-message dispatch CPU at the endpoint node, and the endpoint's NIC for
// the response. Batched lookups amortize the header + dispatch cost over K
// keys — the latency/amortization trade-off `--lookup-batch` exposes.
inline constexpr SimTime kRpcMessageCpu = 15 * timeconst::kMicrosecond;
inline constexpr u64 kRpcHeaderBytes = 256;
inline constexpr u64 kRpcLookupKeyBytes = 48;      // key + len on the wire
inline constexpr u64 kRpcLookupVerdictBytes = 24;  // per-key reply payload
// Background re-replication daemon: scan delay after a node failure, and a
// bound on concurrent chunk heals so the daemon does not starve foreground
// lookups on the shard queues.
inline constexpr SimTime kRereplicateDelay = 2 * timeconst::kMillisecond;
inline constexpr int kRereplicateWindow = 8;

// --- Cluster membership & shard failover (src/cluster/) ----------------------
// Heartbeat probes are tiny fixed-size messages (sequence number + epoch on
// the wire); detection latency is heartbeat_misses x heartbeat_interval,
// configured via --heartbeat-interval / --heartbeat-misses.
inline constexpr u64 kHeartbeatBytes = 64;
// Shard rebalancing moves reassigned index entries between endpoints in
// batches: each migration RPC carries up to this many keys (header + per-key
// record on the wire, one index-probe's queue occupancy per key at both the
// source and destination shard).
inline constexpr u64 kRebalanceBatchKeys = 64;

// --- Coordinator protocol ---------------------------------------------------
inline constexpr SimTime kCoordMsgCpu = 6 * timeconst::kMicrosecond;

// --- OS jitter ---------------------------------------------------------------
// Per-operation multiplicative noise (lognormal-ish, sigma as fraction).
// Gives the error bars of Fig. 4 their spread; seeded per repetition.
inline constexpr double kJitterSigma = 0.035;

}  // namespace dsim::sim::params
