#include "sim/pctx.h"

#include <algorithm>

#include "sim/interposer.h"
#include "util/assertx.h"

namespace dsim::sim {
namespace {
constexpr double kCpuChunkSeconds = 0.010;  // resumable compute granularity
}

// --- compute ----------------------------------------------------------------

Task<void> ProcessCtx::cpu_chunked(double seconds, RegSlot r) {
  const u64 total_us = static_cast<u64>(seconds * 1e6);
  while (reg(r) < total_us) {
    const double remaining = static_cast<double>(total_us - reg(r)) * 1e-6;
    const double burst = std::min(kCpuChunkSeconds, remaining);
    co_await cpu(burst);
    reg(r) += static_cast<u64>(burst * 1e6);
  }
  reg(r) = 0;
}

// --- process management --------------------------------------------------------

std::map<std::string, std::string> ProcessCtx::child_env(
    std::map<std::string, std::string> extra) const {
  auto env = p_.env();
  for (auto& [k, v] : extra) env[k] = v;
  return env;
}

Task<Pid> ProcessCtx::spawn(const std::string& prog,
                            std::vector<std::string> argv,
                            std::map<std::string, std::string> extra_env) {
  auto env = child_env(std::move(extra_env));
  if (p_.interposer()) {
    return p_.interposer()->wrap_spawn(*this, p_.node(), prog, std::move(argv),
                                       std::move(env));
  }
  return spawn_raw(p_.node(), prog, std::move(argv), std::move(env));
}

Task<Pid> ProcessCtx::ssh(NodeId node, const std::string& prog,
                          std::vector<std::string> argv,
                          std::map<std::string, std::string> extra_env) {
  auto env = child_env(std::move(extra_env));
  if (p_.interposer()) {
    return p_.interposer()->wrap_spawn(*this, node, prog, std::move(argv),
                                       std::move(env));
  }
  return spawn_raw(node, prog, std::move(argv), std::move(env));
}

Task<Pid> ProcessCtx::spawn_raw(NodeId node, const std::string& prog,
                                std::vector<std::string> argv,
                                std::map<std::string, std::string> env) {
  // fork+exec costs one scheduling round trip.
  co_await sleep(200 * timeconst::kMicrosecond);
  co_return k_.spawn_process(node, prog, std::move(argv), std::move(env),
                             p_.pid(), &p_.fds());
}

Task<int> ProcessCtx::waitpid(Pid child) {
  if (p_.interposer()) return p_.interposer()->wrap_waitpid(*this, child);
  return waitpid_raw(child);
}

Pid ProcessCtx::getpid() {
  if (p_.interposer()) return p_.interposer()->wrap_getpid(*this);
  return p_.pid();
}

Tid ProcessCtx::spawn_thread(u32 role) {
  const Program* prog = k_.programs().find(p_.prog_name());
  DSIM_CHECK_MSG(prog && prog->worker, "program has no worker entry");
  Thread& t = p_.add_thread(ThreadKind::kWorker);
  t.context().role = role;
  struct Runner {
    static Task<void> run(ProcessCtx* ctx, const Program* prog, u32 role) {
      co_await prog->worker(*ctx, role);
    }
  };
  t.start(Runner::run(&t.pctx(), prog, role));
  return t.tid();
}

std::shared_ptr<MemSegment> ProcessCtx::mmap_shared(const std::string& path,
                                                    u64 size) {
  auto seg = k_.mmap_shared(p_, path, size);
  p_.mem().attach(seg);
  return seg;
}

// --- descriptors -----------------------------------------------------------------

Task<Fd> ProcessCtx::open(const std::string& path, bool create, bool truncate,
                          bool append) {
  co_await sleep(30 * timeconst::kMicrosecond);  // metadata op
  auto of = k_.open_file(p_, path, {create, truncate, append});
  if (!of) co_return kNoFd;
  co_return p_.fds().install(of);
}

Task<void> ProcessCtx::close(Fd fd) {
  if (p_.interposer()) return p_.interposer()->wrap_close(*this, fd);
  return close_raw(fd);
}

Task<void> ProcessCtx::close_raw(Fd fd) {
  k_.close_fd(p_, fd);
  co_return;
}

Fd ProcessCtx::dup(Fd fd) {
  auto of = p_.fds().get(fd);
  DSIM_CHECK_MSG(of != nullptr, "dup: bad fd");
  return p_.fds().install(of);
}

Task<void> ProcessCtx::dup2(Fd oldfd, Fd newfd) {
  if (p_.interposer()) return p_.interposer()->wrap_dup2(*this, oldfd, newfd);
  return dup2_raw(oldfd, newfd);
}

Task<void> ProcessCtx::dup2_raw(Fd oldfd, Fd newfd) {
  auto of = p_.fds().get(oldfd);
  DSIM_CHECK_MSG(of != nullptr, "dup2: bad fd");
  if (oldfd == newfd) co_return;
  if (p_.fds().contains(newfd)) k_.close_fd(p_, newfd);
  p_.fds().install_at(newfd, of);
  co_return;
}

i64 ProcessCtx::lseek(Fd fd, i64 off, int whence) {
  auto of = p_.fds().get(fd);
  DSIM_CHECK_MSG(of && of->vnode->kind() == VKind::kFile, "lseek: bad fd");
  auto& fv = static_cast<FileVNode&>(*of->vnode);
  i64 base = 0;
  switch (whence) {
    case 0: base = 0; break;
    case 1: base = static_cast<i64>(of->offset); break;
    case 2: base = static_cast<i64>(fv.inode().data.size()); break;
    default: DSIM_UNREACHABLE("lseek whence");
  }
  const i64 pos = base + off;
  DSIM_CHECK(pos >= 0);
  of->offset = static_cast<u64>(pos);
  return pos;
}

void ProcessCtx::fcntl_setown(Fd fd, Pid owner) {
  auto of = p_.fds().get(fd);
  DSIM_CHECK_MSG(of != nullptr, "fcntl: bad fd");
  of->fown_pid = owner;
}

Pid ProcessCtx::fcntl_getown(Fd fd) {
  auto of = p_.fds().get(fd);
  DSIM_CHECK_MSG(of != nullptr, "fcntl: bad fd");
  return of->fown_pid;
}

TcpVNode* ProcessCtx::fd_tcp(Fd fd) {
  auto of = p_.fds().get(fd);
  if (!of || of->vnode->kind() != VKind::kTcp) return nullptr;
  return static_cast<TcpVNode*>(of->vnode.get());
}

Task<i64> ProcessCtx::read(Fd fd, std::span<std::byte> out) {
  auto of = p_.fds().get(fd);
  DSIM_CHECK_MSG(of != nullptr, "read: bad fd");
  switch (of->vnode->kind()) {
    case VKind::kFile:
      co_return static_cast<i64>(co_await k_.file_read(t_, *of, out));
    case VKind::kTcp:
      co_return static_cast<i64>(co_await k_.sock_recv(
          t_, static_cast<TcpVNode&>(*of->vnode), out));
    case VKind::kPipeRead:
      co_return static_cast<i64>(co_await k_.pipe_read(
          t_, static_cast<PipeVNode&>(*of->vnode), out));
    case VKind::kPtyMaster:
    case VKind::kPtySlave:
      co_return static_cast<i64>(co_await k_.pty_read(
          t_, static_cast<PtyVNode&>(*of->vnode), out));
    case VKind::kDevNull:
      co_return 0;
    default:
      DSIM_UNREACHABLE("read: unsupported descriptor kind");
  }
}

Task<i64> ProcessCtx::write(Fd fd, std::span<const std::byte> bytes) {
  auto of = p_.fds().get(fd);
  DSIM_CHECK_MSG(of != nullptr, "write: bad fd");
  switch (of->vnode->kind()) {
    case VKind::kFile:
      co_return static_cast<i64>(co_await k_.file_write(t_, *of, bytes));
    case VKind::kTcp:
      co_return static_cast<i64>(co_await k_.sock_send(
          t_, static_cast<TcpVNode&>(*of->vnode), bytes));
    case VKind::kPipeWrite:
      co_return static_cast<i64>(co_await k_.pipe_write(
          t_, static_cast<PipeVNode&>(*of->vnode), bytes));
    case VKind::kPtyMaster:
    case VKind::kPtySlave:
      co_return static_cast<i64>(co_await k_.pty_write(
          t_, static_cast<PtyVNode&>(*of->vnode), bytes));
    case VKind::kDevNull:
      co_return static_cast<i64>(bytes.size());
    default:
      DSIM_UNREACHABLE("write: unsupported descriptor kind");
  }
}

Task<bool> ProcessCtx::read_exact_or_eof(Fd fd, MemRef buf, u64 len,
                                         RegSlot r) {
  std::vector<std::byte> tmp(std::min<u64>(len, 64 * 1024));
  while (reg(r) < len) {
    const u64 want = std::min<u64>(tmp.size(), len - reg(r));
    const i64 n = co_await read(fd, std::span(tmp).first(want));
    if (n <= 0) {
      DSIM_CHECK_MSG(reg(r) == 0, "EOF mid-record");
      co_return false;
    }
    buf.seg->data.write(buf.off + reg(r),
                        std::span<const std::byte>(tmp).first(
                            static_cast<u64>(n)));
    reg(r) += static_cast<u64>(n);
  }
  reg(r) = 0;
  co_return true;
}

Task<bool> ProcessCtx::write_exact_or_eof(Fd fd, MemRef buf, u64 len,
                                          RegSlot r) {
  std::vector<std::byte> tmp(std::min<u64>(len, 64 * 1024));
  while (reg(r) < len) {
    const u64 want = std::min<u64>(tmp.size(), len - reg(r));
    buf.seg->data.read(buf.off + reg(r), std::span(tmp).first(want));
    const i64 n =
        co_await write(fd, std::span<const std::byte>(tmp).first(want));
    if (n <= 0) {
      reg(r) = 0;  // peer gone; record abandoned
      co_return false;
    }
    reg(r) += static_cast<u64>(n);
  }
  reg(r) = 0;
  co_return true;
}

Task<void> ProcessCtx::read_exact(Fd fd, MemRef buf, u64 len, RegSlot r) {
  std::vector<std::byte> tmp(std::min<u64>(len, 64 * 1024));
  while (reg(r) < len) {
    const u64 want = std::min<u64>(tmp.size(), len - reg(r));
    const i64 n = co_await read(fd, std::span(tmp).first(want));
    if (n <= 0) {
      std::fprintf(stderr, "read_exact fail: prog=%s pid=%d fd=%d\n",
                   p_.prog_name().c_str(), p_.pid(), fd);
    }
    DSIM_CHECK_MSG(n > 0, "read_exact: EOF mid-record");
    buf.seg->data.write(buf.off + reg(r),
                        std::span<const std::byte>(tmp).first(
                            static_cast<u64>(n)));
    reg(r) += static_cast<u64>(n);
  }
  DSIM_CHECK(reg(r) == len);
  reg(r) = 0;
}

Task<void> ProcessCtx::write_exact(Fd fd, MemRef buf, u64 len, RegSlot r) {
  std::vector<std::byte> tmp(std::min<u64>(len, 64 * 1024));
  while (reg(r) < len) {
    const u64 want = std::min<u64>(tmp.size(), len - reg(r));
    buf.seg->data.read(buf.off + reg(r), std::span(tmp).first(want));
    const i64 n = co_await write(fd, std::span<const std::byte>(tmp).first(want));
    if (n <= 0) {
      std::fprintf(stderr, "write_exact fail: prog=%s pid=%d fd=%d",
                   p_.prog_name().c_str(), p_.pid(), fd);
      if (auto* v = fd_tcp(fd)) {
        std::fprintf(stderr, " remote=%d:%u conn=%s", v->remote.node,
                     v->remote.port, v->conn_id.str().c_str());
      }
      std::fprintf(stderr, " argv0=%s arg3=%s\n",
                   p_.argv().empty() ? "" : p_.argv()[0].c_str(),
                   p_.argv().size() > 3 ? p_.argv()[3].c_str() : "");
    }
    DSIM_CHECK_MSG(n > 0, "write_exact: peer closed mid-record");
    reg(r) += static_cast<u64>(n);
  }
  DSIM_CHECK(reg(r) == len);
  reg(r) = 0;
}

// --- sockets -----------------------------------------------------------------------

Task<Fd> ProcessCtx::socket(bool unix_domain) {
  if (p_.interposer()) return p_.interposer()->wrap_socket(*this, unix_domain);
  return socket_raw(unix_domain);
}

Task<Fd> ProcessCtx::socket_raw(bool unix_domain) {
  auto of = k_.make_socket(p_, unix_domain);
  co_return p_.fds().install(of);
}

Task<bool> ProcessCtx::bind(Fd fd, u16 port) {
  if (p_.interposer()) return p_.interposer()->wrap_bind(*this, fd, port);
  return bind_raw(fd, port);
}

Task<bool> ProcessCtx::bind_raw(Fd fd, u16 port) {
  TcpVNode* s = fd_tcp(fd);
  DSIM_CHECK_MSG(s != nullptr, "bind: not a socket");
  co_return k_.sock_bind(p_, *s, port);
}

Task<void> ProcessCtx::listen(Fd fd) {
  if (p_.interposer()) return p_.interposer()->wrap_listen(*this, fd);
  return listen_raw(fd);
}

Task<void> ProcessCtx::listen_raw(Fd fd) {
  TcpVNode* s = fd_tcp(fd);
  DSIM_CHECK_MSG(s != nullptr, "listen: not a socket");
  k_.sock_listen(p_, *s);
  co_return;
}

Task<Fd> ProcessCtx::accept(Fd fd) {
  if (p_.interposer()) return p_.interposer()->wrap_accept(*this, fd);
  return accept_raw(fd);
}

Task<Fd> ProcessCtx::accept_raw(Fd fd) {
  TcpVNode* s = fd_tcp(fd);
  DSIM_CHECK_MSG(s != nullptr, "accept: not a socket");
  auto of = co_await k_.sock_accept(t_, *s);
  if (!of) co_return kNoFd;
  co_return p_.fds().install(of);
}

Task<bool> ProcessCtx::connect(Fd fd, SockAddr addr) {
  if (p_.interposer()) return p_.interposer()->wrap_connect(*this, fd, addr);
  return connect_raw(fd, addr);
}

Task<bool> ProcessCtx::connect_raw(Fd fd, SockAddr addr) {
  TcpVNode* s = fd_tcp(fd);
  DSIM_CHECK_MSG(s != nullptr, "connect: not a socket");
  co_return co_await k_.sock_connect(t_, *s, addr);
}

Task<std::pair<Fd, Fd>> ProcessCtx::socketpair() {
  if (p_.interposer()) return p_.interposer()->wrap_socketpair(*this);
  return socketpair_raw();
}

Task<std::pair<Fd, Fd>> ProcessCtx::socketpair_raw() {
  auto [a, b] = k_.make_socketpair(p_);
  const Fd fa = p_.fds().install(a);
  const Fd fb = p_.fds().install(b);
  co_return std::make_pair(fa, fb);
}

Task<std::pair<Fd, Fd>> ProcessCtx::pipe() {
  if (p_.interposer()) return p_.interposer()->wrap_pipe(*this);
  return pipe_raw();
}

Task<std::pair<Fd, Fd>> ProcessCtx::pipe_raw() {
  auto [rd, wr] = k_.make_pipe(p_);
  const Fd fr = p_.fds().install(rd);
  const Fd fw = p_.fds().install(wr);
  co_return std::make_pair(fr, fw);
}

void ProcessCtx::setsockopt(Fd fd, int opt, int value) {
  // Recorded for fidelity; no behavioural knobs modeled yet.
  (void)fd;
  (void)opt;
  (void)value;
}

// --- terminals ------------------------------------------------------------------------

Task<std::pair<Fd, Fd>> ProcessCtx::openpty() {
  if (p_.interposer()) return p_.interposer()->wrap_openpty(*this);
  return openpty_raw();
}

Task<std::pair<Fd, Fd>> ProcessCtx::openpty_raw() {
  auto [m, s] = k_.make_pty(p_);
  const Fd fm = p_.fds().install(m);
  const Fd fs = p_.fds().install(s);
  co_return std::make_pair(fm, fs);
}

std::string ProcessCtx::ptsname(Fd master) {
  if (p_.interposer()) return p_.interposer()->wrap_ptsname(*this, master);
  return ptsname_raw(master);
}

std::string ProcessCtx::ptsname_raw(Fd master) {
  auto of = p_.fds().get(master);
  DSIM_CHECK_MSG(of && of->vnode->kind() == VKind::kPtyMaster,
                 "ptsname: not a pty master");
  return static_cast<PtyVNode&>(*of->vnode).pair().slave_name;
}

Termios ProcessCtx::tcgetattr(Fd fd) {
  auto of = p_.fds().get(fd);
  DSIM_CHECK_MSG(of && (of->vnode->kind() == VKind::kPtyMaster ||
                        of->vnode->kind() == VKind::kPtySlave),
                 "tcgetattr: not a tty");
  return static_cast<PtyVNode&>(*of->vnode).pair().termios;
}

void ProcessCtx::tcsetattr(Fd fd, const Termios& tio) {
  auto of = p_.fds().get(fd);
  DSIM_CHECK_MSG(of && (of->vnode->kind() == VKind::kPtyMaster ||
                        of->vnode->kind() == VKind::kPtySlave),
                 "tcsetattr: not a tty");
  static_cast<PtyVNode&>(*of->vnode).pair().termios = tio;
}

// --- syslog --------------------------------------------------------------------------------

void ProcessCtx::openlog(const std::string& ident) {
  if (p_.interposer()) {
    p_.interposer()->wrap_openlog(*this, ident);
    return;
  }
  p_.syslog_ident = ident;
}

void ProcessCtx::syslog(const std::string& msg) {
  if (p_.interposer()) {
    p_.interposer()->wrap_syslog(*this, msg);
    return;
  }
  p_.syslog_messages.push_back(p_.syslog_ident + ": " + msg);
}

void ProcessCtx::closelog() {
  if (p_.interposer()) {
    p_.interposer()->wrap_closelog(*this);
    return;
  }
  p_.syslog_ident.clear();
}

}  // namespace dsim::sim
