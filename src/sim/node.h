// A cluster node: cores, NIC endpoint, local storage, local filesystem.
#pragma once

#include <memory>
#include <string>

#include "sim/cpu.h"
#include "sim/fs.h"
#include "sim/storage.h"
#include "util/types.h"

namespace dsim::sim {

class Node {
 public:
  Node(EventLoop& loop, NodeId id, int cores, bool has_fc)
      : id_(id),
        hostname_("node" + std::to_string(id)),
        has_fc_(has_fc),
        cpu_(loop, cores),
        storage_(loop, hostname_),
        fs_(hostname_ + ":/") {}

  NodeId id() const { return id_; }
  const std::string& hostname() const { return hostname_; }
  /// True if the node has a Fibre Channel HBA (direct SAN path; §5.2 says 8
  /// of the 32 nodes did — the rest reach the SAN via NFS).
  bool has_fc() const { return has_fc_; }

  CpuModel& cpu() { return cpu_; }
  LocalStorage& storage() { return storage_; }
  FileSystem& fs() { return fs_; }

  u16 alloc_ephemeral_port() { return next_port_++; }
  i32 alloc_pty_id() { return next_pty_++; }

 private:
  NodeId id_;
  std::string hostname_;
  bool has_fc_;
  CpuModel cpu_;
  LocalStorage storage_;
  FileSystem fs_;
  u16 next_port_ = 40000;
  i32 next_pty_ = 0;
};

}  // namespace dsim::sim
