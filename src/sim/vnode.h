// Virtual-node layer: open-file descriptions and kernel objects backing
// file descriptors.
//
// POSIX sharing semantics are modeled faithfully because DMTCP depends on
// them: `dup`/`fork` share one OpenFile (the "file description": offset,
// flags, F_SETOWN owner), and DMTCP's leader election (§4.3 step 3) elects
// one process per *description* by misusing F_SETOWN — the last setter wins.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "sim/byte_image.h"
#include "util/types.h"

namespace dsim::sim {

enum class VKind : u8 {
  kFile = 0,
  kTcp = 1,
  kPipeRead = 2,
  kPipeWrite = 3,
  kPtyMaster = 4,
  kPtySlave = 5,
  kDevNull = 6,
};

/// Base class of kernel objects reachable through file descriptors.
class VNode {
 public:
  explicit VNode(VKind kind) : kind_(kind) {}
  virtual ~VNode() = default;
  VKind kind() const { return kind_; }

  /// Called when the last OpenFile referencing this vnode is closed.
  virtual void on_last_close() {}

 private:
  VKind kind_;
};

/// A file on some filesystem. Inode contents are a ByteImage, so checkpoint
/// image files can "weigh" their virtual size while storing only real bytes.
struct Inode {
  ByteImage data;
  u64 version = 0;  // bumped on writes (cheap change detection)
  /// Device-charged size when it differs from the stored bytes (checkpoint
  /// images store real container bytes but weigh their virtual size).
  u64 charged_size = 0;
  u64 charge_or_size() const { return charged_size ? charged_size : data.size(); }
};

class FileVNode final : public VNode {
 public:
  FileVNode(std::string path, std::shared_ptr<Inode> inode)
      : VNode(VKind::kFile), path_(std::move(path)), inode_(std::move(inode)) {}
  const std::string& path() const { return path_; }
  Inode& inode() { return *inode_; }
  std::shared_ptr<Inode> inode_ptr() const { return inode_; }

 private:
  std::string path_;
  std::shared_ptr<Inode> inode_;
};

class DevNullVNode final : public VNode {
 public:
  DevNullVNode() : VNode(VKind::kDevNull) {}
};

/// Open-file description (POSIX "file description"). Shared by dup/fork.
struct OpenFile {
  std::shared_ptr<VNode> vnode;
  u64 offset = 0;
  int flags = 0;
  /// F_SETOWN value; DMTCP's election trick (§4.3 step 3) writes the pid of
  /// every sharing process here — the last writer wins the election.
  Pid fown_pid = 0;
  /// Saved pre-election owner, restored after refill (§4.3).
  Pid fown_saved = 0;
  /// Stable identity used by checkpoint tables to reconstruct sharing.
  u64 description_id = 0;
  /// DMTCP-internal descriptor (e.g. the coordinator connection); excluded
  /// from checkpoints, exactly as real DMTCP keeps its own sockets out of
  /// the connection table.
  bool dmtcp_internal = false;
};

/// Per-process descriptor table.
class FdTable {
 public:
  /// Install `of` at the lowest free fd >= min_fd.
  Fd install(std::shared_ptr<OpenFile> of, Fd min_fd = 0);
  /// Install at a specific fd (dup2 semantics: closes existing silently —
  /// callers handle close side effects).
  void install_at(Fd fd, std::shared_ptr<OpenFile> of);
  std::shared_ptr<OpenFile> get(Fd fd) const;
  /// Remove the entry; returns the description (callers run close logic).
  std::shared_ptr<OpenFile> remove(Fd fd);
  bool contains(Fd fd) const { return map_.count(fd) != 0; }

  const std::map<Fd, std::shared_ptr<OpenFile>>& entries() const {
    return map_;
  }
  /// Copy for fork(): shares OpenFile objects (POSIX semantics).
  FdTable clone() const { return *this; }
  /// Copy for fork+exec: DMTCP-internal descriptors are close-on-exec
  /// (the child must open its own coordinator connection).
  FdTable clone_for_exec() const {
    FdTable t;
    for (const auto& [fd, of] : map_) {
      if (!of->dmtcp_internal) t.map_.emplace(fd, of);
    }
    return t;
  }
  void clear() { map_.clear(); }

 private:
  std::map<Fd, std::shared_ptr<OpenFile>> map_;
};

}  // namespace dsim::sim
