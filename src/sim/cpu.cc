#include "sim/cpu.h"

#include "util/assertx.h"

namespace dsim::sim {

double CpuModel::rate() const {
  const int n = static_cast<int>(running_.size());
  if (n == 0) return 1.0;
  return n <= cores_ ? 1.0 : static_cast<double>(cores_) / n;
}

void CpuModel::advance_all() {
  const double r = rate();
  const SimTime now = loop_.now();
  for (auto& [id, job] : running_) {
    const double elapsed = to_seconds(now - job.last_update);
    job.remaining -= elapsed * r;
    if (job.remaining < 0) job.remaining = 0;
    job.last_update = now;
  }
}

void CpuModel::reschedule_all() {
  const double r = rate();
  for (auto& [id, job] : running_) {
    loop_.cancel(job.ev);
    const double secs = job.remaining / r;
    const JobId jid = id;
    job.ev = loop_.post_in(from_seconds(secs), [this, jid] { complete(jid); });
  }
}

CpuModel::JobId CpuModel::submit(double core_seconds,
                                 std::function<void()> done) {
  advance_all();
  const JobId id = next_id_++;
  running_.emplace(id, Job{core_seconds, loop_.now(), std::move(done)});
  reschedule_all();
  return id;
}

void CpuModel::complete(JobId id) {
  auto it = running_.find(id);
  DSIM_CHECK(it != running_.end());
  advance_all();
  auto done = std::move(it->second.done);
  running_.erase(it);
  reschedule_all();
  done();
}

void CpuModel::pause(JobId id) {
  auto it = running_.find(id);
  if (it == running_.end()) return;
  advance_all();
  loop_.cancel(it->second.ev);
  it->second.ev = kNoEvent;
  paused_.insert(running_.extract(it));
  reschedule_all();
}

void CpuModel::resume(JobId id) {
  auto it = paused_.find(id);
  if (it == paused_.end()) return;
  advance_all();
  it->second.last_update = loop_.now();
  running_.insert(paused_.extract(it));
  reschedule_all();
}

void CpuModel::cancel(JobId id) {
  if (auto it = running_.find(id); it != running_.end()) {
    advance_all();
    loop_.cancel(it->second.ev);
    running_.erase(it);
    reschedule_all();
    return;
  }
  paused_.erase(id);
}

}  // namespace dsim::sim
