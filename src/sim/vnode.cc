#include "sim/vnode.h"

#include "util/assertx.h"

namespace dsim::sim {

Fd FdTable::install(std::shared_ptr<OpenFile> of, Fd min_fd) {
  Fd fd = min_fd;
  while (map_.count(fd)) ++fd;
  map_.emplace(fd, std::move(of));
  return fd;
}

void FdTable::install_at(Fd fd, std::shared_ptr<OpenFile> of) {
  map_[fd] = std::move(of);
}

std::shared_ptr<OpenFile> FdTable::get(Fd fd) const {
  auto it = map_.find(fd);
  return it == map_.end() ? nullptr : it->second;
}

std::shared_ptr<OpenFile> FdTable::remove(Fd fd) {
  auto it = map_.find(fd);
  if (it == map_.end()) return nullptr;
  auto of = std::move(it->second);
  map_.erase(it);
  return of;
}

}  // namespace dsim::sim
