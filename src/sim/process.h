// Simulated processes and address spaces.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/byte_image.h"
#include "sim/thread.h"
#include "sim/vnode.h"
#include "util/rng.h"
#include "util/types.h"

namespace dsim::sim {

class Interposer;

enum class MemKind : u8 {
  kData = 0,   // program state struct (segment "state" by convention)
  kHeap = 1,
  kStack = 2,
  kLib = 3,    // models mapped dynamic libraries (RunCMS's 540 libs)
  kShm = 4,    // shared mapping with a backing file (§4.5 rules)
};

/// One mapped memory region. Shared (kShm) segments are shared_ptr-shared
/// between processes, mirroring mmap(MAP_SHARED) of a common backing file.
struct MemSegment {
  u64 id = 0;
  std::string name;
  MemKind kind = MemKind::kHeap;
  bool shared = false;
  std::string backing_path;  // kShm: file the mapping is backed by
  ByteImage data;
};

class AddressSpace {
 public:
  /// Create a private zero-filled segment.
  MemSegment& add(std::string name, MemKind kind, u64 size);
  /// Attach an existing (shared) segment.
  void attach(std::shared_ptr<MemSegment> seg);
  /// Find by name (null if absent). Names are unique per process by
  /// convention (enforced by add()).
  MemSegment* find(const std::string& name);
  const MemSegment* find(const std::string& name) const;
  bool detach(const std::string& name);

  u64 total_bytes() const;
  const std::vector<std::shared_ptr<MemSegment>>& segments() const {
    return segs_;
  }
  std::vector<std::shared_ptr<MemSegment>>& segments() { return segs_; }
  void clear() { segs_.clear(); }

 private:
  std::vector<std::shared_ptr<MemSegment>> segs_;
  u64 next_id_ = 1;
};

enum class ProcState : u8 { kRunning, kZombie, kDead };

/// Signal dispositions — enough structure for checkpoint/restore fidelity
/// tests ("signal handlers" in the paper's restored-artifact inventory).
struct SignalTable {
  static constexpr int kNumSignals = 32;
  std::array<u8, kNumSignals> handler{};  // 0=default, 1=ignore, else id
  u32 blocked_mask = 0;
  bool operator==(const SignalTable&) const = default;
};

class Process {
 public:
  Process(Kernel& kernel, Pid pid, NodeId node, std::string prog_name,
          std::vector<std::string> argv,
          std::map<std::string, std::string> env, Pid ppid);
  ~Process();
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  Pid pid() const { return pid_; }
  Pid ppid() const { return ppid_; }
  void set_ppid(Pid p) { ppid_ = p; }
  NodeId node() const { return node_; }
  const std::string& prog_name() const { return prog_name_; }
  void set_prog_name(std::string n) { prog_name_ = std::move(n); }
  const std::vector<std::string>& argv() const { return argv_; }
  void set_argv(std::vector<std::string> a) { argv_ = std::move(a); }
  std::map<std::string, std::string>& env() { return env_; }
  const std::map<std::string, std::string>& env() const { return env_; }
  std::string env_or(const std::string& key, const std::string& dflt) const;

  FdTable& fds() { return fds_; }
  AddressSpace& mem() { return mem_; }
  SignalTable& signals() { return signals_; }
  i32& ctty() { return ctty_; }

  Thread& add_thread(ThreadKind kind);
  Thread* find_thread(Tid tid);
  std::vector<std::unique_ptr<Thread>>& threads() { return threads_; }
  Thread* main_thread();

  ProcState state() const { return state_; }
  void set_state(ProcState s) { state_ = s; }
  int exit_code() const { return exit_code_; }
  void set_exit_code(int c) { exit_code_ = c; }
  bool exit_requested() const { return exit_requested_; }
  void request_exit(int code) {
    exit_requested_ = true;
    exit_code_ = code;
  }

  std::vector<Pid>& children() { return children_; }
  WaitQueue& child_exit_wq() { return child_exit_wq_; }

  /// DMTCP hijack runtime, when running under checkpoint control.
  Interposer* interposer() const { return interposer_.get(); }
  void set_interposer(std::shared_ptr<Interposer> ip) {
    interposer_ = std::move(ip);
  }
  std::shared_ptr<Interposer> interposer_ptr() const { return interposer_; }

  /// True if this process was reconstructed from a checkpoint image.
  bool restored() const { return restored_; }
  void set_restored(bool r) { restored_ = r; }

  Kernel& kernel() { return kernel_; }
  Rng& rng() { return rng_; }

  /// Per-process syslog state (openlog/syslog/closelog wrappers, §4.2).
  std::string syslog_ident;
  std::vector<std::string> syslog_messages;

 private:
  Kernel& kernel_;
  Pid pid_;
  NodeId node_;
  std::string prog_name_;
  std::vector<std::string> argv_;
  std::map<std::string, std::string> env_;
  Pid ppid_;
  FdTable fds_;
  AddressSpace mem_;
  SignalTable signals_;
  i32 ctty_ = -1;
  std::vector<std::unique_ptr<Thread>> threads_;
  Tid next_tid_ = 1;
  ProcState state_ = ProcState::kRunning;
  int exit_code_ = 0;
  bool exit_requested_ = false;
  bool restored_ = false;
  std::vector<Pid> children_;
  WaitQueue child_exit_wq_;
  std::shared_ptr<Interposer> interposer_;
  Rng rng_;
};

/// Helper used where only the pid is needed without including process.h.
Pid process_pid_of(Process& p);

}  // namespace dsim::sim
