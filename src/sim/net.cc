#include "sim/net.h"

#include "sim/model_params.h"

namespace dsim::sim {

Network::Network(EventLoop& loop, int num_nodes) : loop_(loop) {
  egress_.reserve(num_nodes);
  loopback_.reserve(num_nodes);
  for (int i = 0; i < num_nodes; ++i) {
    egress_.push_back(std::make_unique<StorageDevice>(
        loop, "nic" + std::to_string(i), params::kNicBandwidth,
        params::kNetLatency));
    loopback_.push_back(std::make_unique<StorageDevice>(
        loop, "lo" + std::to_string(i), params::kLoopbackBandwidth,
        params::kLoopbackLatency));
  }
}

void Network::transfer(NodeId from, NodeId to, u64 bytes,
                       std::function<void()> arrive) {
  auto& dev = (from == to) ? *loopback_[from] : *egress_[from];
  dev.submit(bytes, std::move(arrive));
}

void Network::set_jitter(Rng* rng, double sigma) {
  for (auto& d : egress_) d->set_jitter(rng, sigma);
  for (auto& d : loopback_) d->set_jitter(rng, sigma);
}

}  // namespace dsim::sim
