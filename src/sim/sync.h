// Coroutine-side completion latches for callback-style device APIs.
//
// StorageDevice, CpuModel and the chunk-store service all complete through
// plain callbacks; coroutines bridge them with a countdown latch held by
// shared_ptr (so a killed waiter cannot dangle under a late callback):
//
//   auto latch = std::make_shared<CountLatch>(n);
//   for (...) dev.submit(bytes, [latch] { latch->done_one(); });
//   while (latch->remaining > 0) co_await latch->wq.wait(ctx.thread());
#pragma once

#include "sim/thread.h"

namespace dsim::sim {

struct CountLatch {
  explicit CountLatch(int n) : remaining(n) {}
  int remaining = 0;
  WaitQueue wq;
  void done_one() {
    if (--remaining == 0) wq.wake_all();
  }
};

}  // namespace dsim::sim
