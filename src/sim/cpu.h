// Fluid-share CPU model.
//
// Each node has `cores` cores. Active compute jobs share them: with n jobs
// and c cores, each job progresses at min(1, c/n) core-seconds per second.
// Completion events are recomputed whenever the active set changes. This is
// the standard fluid approximation; it is what makes forked-checkpoint
// compression visibly slow down user threads (§5.3) without any special
// casing.
#pragma once

#include <functional>
#include <map>

#include "sim/event_loop.h"
#include "util/types.h"

namespace dsim::sim {

class CpuModel {
 public:
  using JobId = u64;

  CpuModel(EventLoop& loop, int cores) : loop_(loop), cores_(cores) {}

  /// Submit a job needing `core_seconds` of CPU; `done` fires on completion.
  JobId submit(double core_seconds, std::function<void()> done);

  /// Pause a running job (checkpoint suspend); remaining work is retained.
  void pause(JobId id);
  /// Resume a paused job.
  void resume(JobId id);
  /// Cancel a job entirely (process kill). No-op if unknown/finished.
  void cancel(JobId id);

  int active_jobs() const { return static_cast<int>(running_.size()); }
  int cores() const { return cores_; }

 private:
  struct Job {
    double remaining;  // core-seconds
    SimTime last_update;
    std::function<void()> done;
    EventId ev = kNoEvent;
  };

  double rate() const;  // core-seconds per second per job
  void advance_all();   // account progress since last_update at old rate
  void reschedule_all();
  void complete(JobId id);

  EventLoop& loop_;
  int cores_;
  JobId next_id_ = 1;
  std::map<JobId, Job> running_;
  std::map<JobId, Job> paused_;
};

}  // namespace dsim::sim
