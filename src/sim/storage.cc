#include "sim/storage.h"

#include <algorithm>

#include "obs/trace.h"
#include "sim/model_params.h"
#include "util/assertx.h"

namespace dsim::sim {

SimTime StorageDevice::jittered(double seconds) {
  double s = seconds;
  if (jitter_rng_ && jitter_sigma_ > 0) {
    s *= std::max(0.2, 1.0 + jitter_rng_->next_gaussian() * jitter_sigma_);
  }
  return from_seconds(s);
}

void StorageDevice::submit(u64 bytes, std::function<void()> done,
                           bool is_read, u64 logical_bytes) {
  const u64 acc = logical_bytes != 0 ? logical_bytes : bytes;
  submitted_bytes_ += acc;
  if (is_read) read_bytes_ += acc;
  const SimTime start = std::max(loop_.now(), busy_until_);
  const SimTime xfer = jittered(static_cast<double>(bytes) / bw_);
  busy_until_ = start + xfer;
  if (obs::Tracer* tr = loop_.tracer()) {
    // Both endpoints of the service interval are known at submit time, so
    // the span closes immediately — the device lane shows exactly when the
    // queue was occupied, which is what Perfetto's per-device track needs.
    const u64 sp = tr->begin(is_read ? "device.read" : "device.write",
                             obs::kServicePid, name_, start);
    tr->end(sp, busy_until_);
  }
  loop_.post_at(busy_until_ + latency_, std::move(done));
}

void StorageDevice::discard(u64 bytes) {
  // Dropping dead generations is a metadata operation (unlink / trim): it
  // occupies the queue at a rate far above the transfer bandwidth, with no
  // completion to wait on.
  constexpr double kTrimSpeedup = 64.0;
  discarded_bytes_ += bytes;
  const SimTime start = std::max(loop_.now(), busy_until_);
  busy_until_ =
      start + from_seconds(static_cast<double>(bytes) / (bw_ * kTrimSpeedup));
}

LocalStorage::LocalStorage(EventLoop& loop, std::string name)
    : cache_(loop, name + "/cache", params::kPageCacheWriteBw,
             params::kDiskLatency / 4),
      disk_(loop, name + "/disk", params::kLocalDiskBw, params::kDiskLatency) {
}

void LocalStorage::write(u64 bytes, std::function<void()> done) {
  dirty_ += bytes;
  cache_.submit(bytes, std::move(done));
}

void LocalStorage::read(u64 bytes, std::function<void()> done) {
  // Read path uses the (faster) cache read bandwidth: scale request size so
  // one device with write bandwidth models both directions.
  const double scale = params::kPageCacheWriteBw / params::kPageCacheReadBw;
  cache_.submit(static_cast<u64>(static_cast<double>(bytes) * scale),
                std::move(done), /*is_read=*/true, /*logical_bytes=*/bytes);
}

void LocalStorage::discard(u64 bytes) {
  // GC'd chunk files never need writeback; whatever part of them is still
  // dirty in the page cache is simply dropped.
  dirty_ -= std::min(dirty_, bytes);
  disk_.discard(bytes);
}

void LocalStorage::sync(std::function<void()> done) {
  const u64 dirty = dirty_;
  dirty_ = 0;
  if (dirty == 0) {
    disk_.submit(1, std::move(done));  // latency-only round trip
    return;
  }
  disk_.submit(dirty, std::move(done));
}

}  // namespace dsim::sim
