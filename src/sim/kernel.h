// The simulated cluster kernel.
//
// Owns the event loop, nodes, network, filesystems, processes and sockets,
// and implements the syscall layer ProcessCtx exposes to programs. All
// blocking operations are coroutines parameterized by the calling Thread.
#pragma once

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_loop.h"
#include "sim/ipc.h"
#include "sim/net.h"
#include "sim/node.h"
#include "sim/process.h"
#include "sim/program.h"
#include "sim/socket.h"
#include "sim/task.h"
#include "util/rng.h"
#include "util/types.h"

namespace dsim::sim {

class Interposer;

/// Where a path's bytes are charged (DESIGN.md §1, storage substitution).
enum class StorageBackend : u8 { kLocalDisk, kShared };

struct KernelConfig {
  int num_nodes = 1;
  int cores_per_node = 4;
  int san_direct_nodes = 0;  // nodes [0, n) get Fibre Channel HBAs
  u64 seed = 0x5eed;
  double jitter_sigma = 0.0;  // multiplicative device jitter (error bars)
};

class Kernel {
 public:
  explicit Kernel(const KernelConfig& cfg);
  ~Kernel();
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  EventLoop& loop() { return loop_; }
  Network& net() { return net_; }
  Node& node(NodeId id);
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  u64 seed() const { return cfg_.seed; }
  Rng& rng() { return rng_; }
  ProgramRegistry& programs() { return programs_; }
  FileSystem& shared_fs() { return shared_fs_; }

  /// Install the DMTCP attach hook: invoked for every new process whose
  /// environment carries DMTCP_ENABLED=1 (set by dmtcp_checkpoint and
  /// propagated through spawn/ssh).
  using AttachFactory =
      std::function<std::shared_ptr<Interposer>(Process&)>;
  void set_attach_factory(AttachFactory f) { attach_factory_ = std::move(f); }

  // --- process management ---------------------------------------------------
  Pid spawn_process(NodeId node, const std::string& prog,
                    std::vector<std::string> argv,
                    std::map<std::string, std::string> env, Pid ppid = kNoPid,
                    const FdTable* inherit_fds = nullptr);
  Process* find_process(Pid pid);
  /// Forcibly terminate (SIGKILL analogue). Safe on already-dead pids.
  void kill_process(Pid pid);
  /// Wait for a child to exit; returns its exit code.
  Task<int> wait_child(Thread& t, Pid child);
  /// Called (deferred) when any thread's body completes.
  void on_thread_done(Pid pid, Tid tid);
  /// All live (non-dead) pids, ascending.
  std::vector<Pid> live_pids() const;

  /// Create a bare child for restart: inherits node/fds/env of `parent`,
  /// runs nothing until `start_restored`. (§4.4 step 3: the unified restart
  /// process forks into user processes.)
  Process& fork_bare_child(Process& parent);
  /// Populate and launch a restored process: program identity, thread
  /// contexts, restored flag. Threads begin executing on the event loop.
  void start_restored(Process& p, const std::string& prog_name,
                      std::vector<std::string> argv,
                      const std::vector<ThreadContext>& threads,
                      bool start_suspended = true);  // argv: from the image
  /// Start a (fresh) process's threads for the given program.
  void start_fresh(Process& p);

  // --- time / cpu -------------------------------------------------------------
  Task<void> sleep_for(Thread& t, SimTime dt);
  Task<void> cpu_burst(Thread& t, double core_seconds);

  // --- sockets ----------------------------------------------------------------
  std::shared_ptr<OpenFile> make_socket(Process& p, bool unix_domain);
  bool sock_bind(Process& p, TcpVNode& s, u16 port);
  void sock_listen(Process& p, TcpVNode& s);
  Task<std::shared_ptr<OpenFile>> sock_accept(Thread& t, TcpVNode& s);
  Task<bool> sock_connect(Thread& t, TcpVNode& s, SockAddr addr);
  /// Send up to `bytes.size()` (bounded by send-buffer space); blocks until
  /// at least one byte can be queued. Returns bytes queued.
  Task<u64> sock_send(Thread& t, TcpVNode& s, std::span<const std::byte> bytes,
                      SegKind kind = SegKind::kData);
  /// Receive data bytes; blocks until data or EOF (returns 0).
  Task<u64> sock_recv(Thread& t, TcpVNode& s, std::span<std::byte> out);
  /// Manager-plane: pop the next whole segment of any kind (drain protocol).
  Task<SockSegment> sock_recv_segment(Thread& t, TcpVNode& s);
  /// Manager-plane: push a whole segment (token / ctrl / refill payload).
  Task<void> sock_send_segment(Thread& t, TcpVNode& s, SockSegment seg);
  /// Non-blocking variants for the manager's multi-socket drain/refill state
  /// machines (a blocking per-socket loop could deadlock across processes).
  bool try_send_segment(TcpVNode& s, SockSegment seg);
  std::optional<SockSegment> try_recv_segment(TcpVNode& s);
  /// Non-blocking accept (used to flush listener backlogs at suspend time).
  std::shared_ptr<OpenFile> try_accept(TcpVNode& s);
  std::pair<std::shared_ptr<OpenFile>, std::shared_ptr<OpenFile>>
  make_socketpair(Process& p);
  void on_socket_close(TcpVNode& s);
  /// Register an established pair created outside connect/accept (restart
  /// reconnection path uses normal connect; this is for tests).
  void link_established(Process& pa, TcpVNode& a, Process& pb, TcpVNode& b);

  // --- pipes / ptys -------------------------------------------------------------
  std::pair<std::shared_ptr<OpenFile>, std::shared_ptr<OpenFile>> make_pipe(
      Process& p);
  std::pair<std::shared_ptr<OpenFile>, std::shared_ptr<OpenFile>> make_pty(
      Process& p);
  Task<u64> pipe_read(Thread& t, PipeVNode& v, std::span<std::byte> out);
  Task<u64> pipe_write(Thread& t, PipeVNode& v,
                       std::span<const std::byte> bytes);
  Task<u64> pty_read(Thread& t, PtyVNode& v, std::span<std::byte> out);
  Task<u64> pty_write(Thread& t, PtyVNode& v, std::span<const std::byte> bytes);

  // --- files ---------------------------------------------------------------------
  struct OpenFlags {
    bool create = false;
    bool truncate = false;
    bool append = false;
  };
  std::shared_ptr<OpenFile> open_file(Process& p, const std::string& path,
                                      OpenFlags flags);
  Task<u64> file_read(Thread& t, OpenFile& of, std::span<std::byte> out);
  Task<u64> file_write(Thread& t, OpenFile& of,
                       std::span<const std::byte> bytes);
  /// Resolve which filesystem serves `path` on `node`.
  FileSystem& fs_for(NodeId node, const std::string& path);
  StorageBackend backend_for(const std::string& path) const;
  /// Charge a transfer of `bytes` against the storage serving `path` for
  /// `node`, without touching any file content. Blocking variant.
  Task<void> charge_storage(Thread& t, NodeId node, const std::string& path,
                            u64 bytes, bool is_read);
  /// Fire-and-forget variant (forked checkpointing's background writer).
  void charge_storage_bg(NodeId node, const std::string& path, u64 bytes,
                         bool is_read, std::function<void()> done);
  /// Issue a sync on the storage backing `path` (the §5.2 experiment).
  Task<void> sync_storage(Thread& t, NodeId node, const std::string& path);
  /// Account checkpoint-store GC: drop `bytes` of dead-generation data from
  /// the storage serving `path` at metadata (trim) rate.
  void discard_storage(NodeId node, const std::string& path, u64 bytes);

  /// Close a descriptor-table entry with full close semantics.
  void close_fd(Process& p, Fd fd);
  /// Run close side effects for a released description reference.
  void release_description(std::shared_ptr<OpenFile> of);

  /// Shared-memory mapping (mmap MAP_SHARED of a backing file, §4.5).
  std::shared_ptr<MemSegment> mmap_shared(Process& p, const std::string& path,
                                          u64 size);

  u64 next_description_id() { return next_description_id_++; }
  /// Restart preserves checkpoint-time description ids; keep the counter
  /// ahead of every restored id so new descriptions stay unique.
  void reserve_description_ids(u64 max_seen) {
    next_description_id_ = std::max(next_description_id_, max_seen + 1);
  }

 private:
  void pump_socket(std::shared_ptr<TcpVNode> s);
  void linger_poll(std::shared_ptr<TcpVNode> s);
  void process_exit(Process& p);
  StorageDevice& shared_device_for(NodeId node);

  KernelConfig cfg_;
  EventLoop loop_;
  Rng rng_;
  Network net_;
  std::vector<std::unique_ptr<Node>> nodes_;
  FileSystem shared_fs_;
  StorageDevice san_dev_;
  StorageDevice nfs_dev_;
  ProgramRegistry programs_;
  std::map<Pid, std::unique_ptr<Process>> procs_;
  Pid next_pid_ = 100;
  std::map<SockAddr, std::weak_ptr<TcpVNode>> listeners_;
  // Sockets with peers keep each other alive through OpenFiles; the kernel
  // only tracks listener bindings.
  u64 next_description_id_ = 1;
  u32 next_conn_seq_ = 1;
  std::map<std::string, std::weak_ptr<MemSegment>> shm_live_;
  AttachFactory attach_factory_;
};

}  // namespace dsim::sim
