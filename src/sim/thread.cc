#include "sim/thread.h"

#include <algorithm>

#include "sim/kernel.h"
#include "sim/pctx.h"
#include "sim/process.h"
#include "util/assertx.h"
#include "util/logging.h"

namespace dsim::sim {

// --- WaitQueue -------------------------------------------------------------

WaitQueue::~WaitQueue() {
  // Threads must not be left waiting on a destroyed queue.
  for (Thread* t : waiters_) {
    if (t->waiting_on_ == this) t->waiting_on_ = nullptr;
  }
}

void WaitQueue::Awaiter::await_suspend(std::coroutine_handle<> h) {
  t.park(h, &q);
  q.waiters_.push_back(&t);
}

void WaitQueue::wake_all() {
  auto waiters = std::move(waiters_);
  waiters_.clear();
  for (Thread* t : waiters) {
    if (t->waiting_on_ == this) t->waiting_on_ = nullptr;
    t->wake();
  }
}

void WaitQueue::wake_one() {
  if (waiters_.empty()) return;
  Thread* t = waiters_.front();
  waiters_.erase(waiters_.begin());
  if (t->waiting_on_ == this) t->waiting_on_ = nullptr;
  t->wake();
}

// --- Thread ------------------------------------------------------------------

Thread::Thread(Kernel& kernel, Process& process, Tid tid, ThreadKind kind)
    : kernel_(kernel), process_(process), tid_(tid), kind_(kind) {}

Thread::~Thread() { kill(); }

void Thread::Root::promise_type::unhandled_exception() {
  // Program bugs surface loudly: a simulated thread must not die silently.
  try {
    throw;
  } catch (const std::exception& e) {
    DSIM_CHECK_MSG(false, e.what());
  } catch (...) {
    DSIM_CHECK_MSG(false, "unknown exception escaped simulated thread");
  }
}

Thread::Root Thread::root_body(Thread* self, Task<void> body) {
  co_await std::move(body);
  self->on_body_done();
}

void Thread::start(Task<void> body) {
  DSIM_CHECK_MSG(!started_, "thread already started");
  started_ = true;
  Root r = root_body(this, std::move(body));
  root_ = r.h;
  next_resume_ = root_;
  wake();
}

void Thread::on_body_done() {
  done_ = true;
  // Defer the kernel notification: we are still inside the coroutine here,
  // and the kernel may destroy this thread (and its frames) in response.
  Kernel* k = &kernel_;
  const Pid pid = process_pid_of(process_);
  const Tid tid = tid_;
  kernel_.loop().post_now([k, pid, tid] { k->on_thread_done(pid, tid); });
}

void Thread::kill() {
  if (killed_) return;
  killed_ = true;
  if (waiting_on_) {
    auto& w = waiting_on_->waiters_;
    w.erase(std::remove(w.begin(), w.end(), this), w.end());
    waiting_on_ = nullptr;
  }
  kernel_.loop().cancel(pending_wake_);
  pending_wake_ = kNoEvent;
  kernel_.loop().cancel(timer_);
  timer_ = kNoEvent;
  if (cpu_) {
    cpu_->cancel(cpu_job_);
    cpu_ = nullptr;
  }
  next_resume_ = {};
  if (root_) {
    root_.destroy();
    root_ = {};
  }
}

void Thread::park(std::coroutine_handle<> h, WaitQueue* q) {
  DSIM_CHECK_MSG(!next_resume_, "thread parked twice");
  next_resume_ = h;
  waiting_on_ = q;
}

void Thread::wake() {
  if (killed_ || done_) return;
  if (pending_wake_ != kNoEvent) return;  // already scheduled
  if (!next_resume_) return;              // running or not parked yet
  pending_wake_ = kernel_.loop().post_now([this] {
    pending_wake_ = kNoEvent;
    if (ckpt_suspended_) {
      wake_deferred_ = true;
      return;
    }
    schedule_resume();
  });
}

void Thread::schedule_resume() {
  auto h = next_resume_;
  next_resume_ = {};
  DSIM_CHECK(h);
  h.resume();
}

void Thread::ckpt_suspend() {
  if (ckpt_suspended_) return;
  ckpt_suspended_ = true;
  if (cpu_) cpu_->pause(cpu_job_);
}

void Thread::ckpt_resume() {
  if (!ckpt_suspended_) return;
  ckpt_suspended_ = false;
  if (cpu_) cpu_->resume(cpu_job_);
  if (wake_deferred_) {
    wake_deferred_ = false;
    wake();
  }
}

ProcessCtx& Thread::pctx() {
  if (!pctx_) pctx_ = std::make_unique<ProcessCtx>(kernel_, process_, *this);
  return *pctx_;
}

}  // namespace dsim::sim
