// Pipes and pseudo-terminals.
//
// Raw pipes exist for programs running outside DMTCP; under DMTCP the pipe()
// wrapper promotes pipes to socketpairs (§4.5) so the socket drain machinery
// handles them. Ptys carry terminal modes (termios) which DMTCP saves and
// restores; the TightVNC use case (§5.1) exercises them heavily.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "sim/thread.h"
#include "sim/vnode.h"
#include "util/types.h"

namespace dsim::sim {

/// Shared state of a unidirectional pipe.
struct PipeBuf {
  std::deque<std::byte> data;
  u64 capacity = 64 * 1024;
  bool writer_closed = false;
  bool reader_closed = false;
  WaitQueue readable;
  WaitQueue writable;
};

class PipeVNode final : public VNode {
 public:
  PipeVNode(VKind kind, std::shared_ptr<PipeBuf> buf)
      : VNode(kind), buf_(std::move(buf)) {}
  PipeBuf& buf() { return *buf_; }
  void on_last_close() override {
    if (kind() == VKind::kPipeWrite) {
      buf_->writer_closed = true;
      buf_->readable.wake_all();
    } else {
      buf_->reader_closed = true;
      buf_->writable.wake_all();
    }
  }

 private:
  std::shared_ptr<PipeBuf> buf_;
};

/// Terminal modes; saved in checkpoint images ("terminal modes" in the
/// abstract's inventory of restored artifacts).
struct Termios {
  bool icanon = true;
  bool echo = true;
  bool isig = true;
  u8 veof = 4;   // ^D
  u8 vintr = 3;  // ^C
  bool operator==(const Termios&) const = default;
};

/// Shared state of a pty master/slave pair.
struct PtyPair {
  i32 id = -1;                 // N in /dev/pts/N
  std::string slave_name;      // "/dev/pts/N"
  Termios termios;
  // master -> slave and slave -> master byte streams.
  std::deque<std::byte> to_slave;
  std::deque<std::byte> to_master;
  bool master_closed = false;
  bool slave_closed = false;
  WaitQueue slave_readable;
  WaitQueue master_readable;
};

class PtyVNode final : public VNode {
 public:
  PtyVNode(VKind kind, std::shared_ptr<PtyPair> pair)
      : VNode(kind), pair_(std::move(pair)) {}
  PtyPair& pair() { return *pair_; }
  std::shared_ptr<PtyPair> pair_ptr() const { return pair_; }
  void on_last_close() override {
    if (kind() == VKind::kPtyMaster) {
      pair_->master_closed = true;
      pair_->slave_readable.wake_all();
    } else {
      pair_->slave_closed = true;
      pair_->master_readable.wake_all();
    }
  }

 private:
  std::shared_ptr<PtyPair> pair_;
};

}  // namespace dsim::sim
