// Sparse byte container with copy-on-write extents.
//
// Backs simulated memory segments, VFS file contents and checkpoint images.
// An image is a contiguous range [0, size) covered by extents of three
// kinds:
//   kReal — actual bytes (shared_ptr'd, copy-on-write on partial overwrite);
//   kZero — implicit zeros;
//   kRand — deterministic position-based pseudo-random content f(seed, pos).
//
// Real extents give bit-exactness where programs actually read and write;
// pattern extents let a "70 GB" Fig.-6 experiment run without 70 GB of host
// RAM while remaining fully deterministic: reading a pattern extent always
// materializes the same bytes. Copying a ByteImage is O(#extents) — this is
// what makes simulated fork() and forked checkpointing cheap, mirroring
// kernel copy-on-write semantics (§5.3).
#pragma once

#include <algorithm>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "util/types.h"

namespace dsim {
class ByteWriter;
class ByteReader;
}  // namespace dsim

namespace dsim::sim {

enum class ExtentKind : u8 { kReal = 0, kZero = 1, kRand = 2 };

class ByteImage {
 public:
  struct Extent {
    u64 len = 0;
    ExtentKind kind = ExtentKind::kZero;
    u64 seed = 0;  // kRand only
    std::shared_ptr<const std::vector<std::byte>> data;  // kReal only
    u64 data_off = 0;  // offset into *data (cheap splits)
  };

  /// Observer of content mutations, used by the async checkpoint pipeline's
  /// COW tracker to detect pages the application dirties while a snapshot
  /// drain is in flight. The observer is a property of the *live* image, not
  /// of its content: copies and moved-to images start with no observer (a
  /// snapshot copy must never fire the original's tracker), and assignment
  /// keeps the target's own observer, reporting the whole range as mutated.
  struct WriteObserver {
    virtual ~WriteObserver() = default;
    virtual void on_mutate(u64 off, u64 len) = 0;
  };

  ByteImage() = default;
  /// Zero-filled image of `size` bytes.
  explicit ByteImage(u64 size);

  ByteImage(const ByteImage& other) : size_(other.size_), ext_(other.ext_) {}
  ByteImage(ByteImage&& other) noexcept
      : size_(other.size_), ext_(std::move(other.ext_)) {}
  ByteImage& operator=(const ByteImage& other) {
    if (this != &other) {
      notify(0, std::max(size_, other.size_));
      size_ = other.size_;
      ext_ = other.ext_;
    }
    return *this;
  }
  ByteImage& operator=(ByteImage&& other) noexcept {
    if (this != &other) {
      notify(0, std::max(size_, other.size_));
      size_ = other.size_;
      ext_ = std::move(other.ext_);
    }
    return *this;
  }

  void set_write_observer(WriteObserver* obs) { observer_ = obs; }
  WriteObserver* write_observer() const { return observer_; }

  u64 size() const { return size_; }
  /// Grow (zero-filled) or shrink.
  void resize(u64 new_size);

  /// Overwrite [off, off+bytes.size()) with real bytes.
  void write(u64 off, std::span<const std::byte> bytes);
  /// Read [off, off+out.size()) into `out`, materializing patterns.
  void read(u64 off, std::span<std::byte> out) const;
  /// Replace [off, off+len) with a pattern extent.
  void fill(u64 off, u64 len, ExtentKind kind, u64 seed = 0);

  /// Materialize a sub-range (for compression-ratio sampling and tests).
  std::vector<std::byte> materialize(u64 off, u64 len) const;

  /// Bytes held in real extents (host memory cost).
  u64 real_bytes() const;
  /// Bytes in pattern extents of the given kind.
  u64 pattern_bytes(ExtentKind kind) const;

  /// Streaming CRC-32 of the full (virtual) content. O(size); use in tests
  /// and for modest images only.
  u32 content_crc() const;

  /// Visit extents in order: fn(offset, extent).
  template <typename Fn>
  void for_each_extent(Fn&& fn) const {
    for (const auto& [off, ext] : ext_) fn(off, ext);
  }
  size_t extent_count() const { return ext_.size(); }

  void serialize(ByteWriter& w) const;
  static ByteImage deserialize(ByteReader& r);

  /// Deterministic content byte of a kRand pattern at absolute position.
  static u8 rand_byte(u64 seed, u64 pos);

 private:
  // Split the extent containing `pos` so that `pos` becomes an extent
  // boundary. No-op if already a boundary or past the end.
  void split_at(u64 pos);
  // Erase extents fully inside [off, off+len) (callers split boundaries
  // first) and insert the replacement extent.
  void replace_range(u64 off, u64 len, Extent ext);
  void check_invariants() const;
  void notify(u64 off, u64 len) {
    if (observer_ != nullptr && len > 0) observer_->on_mutate(off, len);
  }

  u64 size_ = 0;
  std::map<u64, Extent> ext_;  // key: start offset; contiguous, no holes
  WriteObserver* observer_ = nullptr;  // not owned; never copied/moved
};

}  // namespace dsim::sim
