// Discrete-event loop with a virtual clock.
//
// The entire cluster — every node, process, thread, NIC, disk and protocol —
// is driven by one of these. Events at equal timestamps fire in posting
// order (sequence-number tiebreak), which makes every simulation run
// bit-reproducible for a given seed.
#pragma once

#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/assertx.h"
#include "util/types.h"

namespace dsim::obs {
class Tracer;
}  // namespace dsim::obs

namespace dsim::sim {

/// Handle for cancelling a scheduled event.
using EventId = u64;
inline constexpr EventId kNoEvent = 0;

class EventLoop {
 public:
  using Fn = std::function<void()>;

  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute virtual time `t` (>= now).
  EventId post_at(SimTime t, Fn fn);
  /// Schedule `fn` after a delay.
  EventId post_in(SimTime dt, Fn fn) { return post_at(now_ + dt, std::move(fn)); }
  /// Schedule `fn` at the current time (after already-queued same-time events).
  EventId post_now(Fn fn) { return post_at(now_, std::move(fn)); }

  /// Cancel a previously scheduled event. Safe to call with kNoEvent or an
  /// already-fired id (no-op).
  void cancel(EventId id);

  /// Run until the queue is empty or `stop()` is called.
  void run();
  /// Run events with time <= deadline; returns true if events remain.
  bool run_until(SimTime deadline);
  void stop() { stopped_ = true; }

  size_t pending() const { return queue_.size() - cancelled_.size(); }

  /// Observability hook: every subsystem driven by this loop reaches the
  /// (optional) tracer through it, so enabling tracing is one pointer
  /// install and disabling it is a null check at each instrumentation
  /// site. The tracer never posts events or charges time — it cannot
  /// perturb the virtual clock.
  void set_tracer(obs::Tracer* t) { tracer_ = t; }
  obs::Tracer* tracer() const { return tracer_; }

 private:
  struct Ev {
    SimTime t;
    u64 seq;
    EventId id;
    // Ordering for priority_queue (min-heap via greater).
    bool operator>(const Ev& o) const {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };

  bool pop_one();

  SimTime now_ = 0;
  u64 next_seq_ = 1;
  bool stopped_ = false;
  obs::Tracer* tracer_ = nullptr;
  std::priority_queue<Ev, std::vector<Ev>, std::greater<>> queue_;
  // Functions stored separately so cancel() can release closures eagerly.
  std::unordered_map<EventId, Fn> fns_;
  std::unordered_set<EventId> cancelled_;
};

/// Cancellable repeating timer: fires `fn` every `interval` until stop().
/// The hook background daemons (the cluster membership service's heartbeat
/// loop) hang their periodic work on — re-arming by hand from inside the
/// callback loses the ability to stop cleanly, and a dangling EventId after
/// the owner dies would fire into freed state.
class PeriodicTimer {
 public:
  explicit PeriodicTimer(EventLoop& loop) : loop_(loop) {}
  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Start (or restart) firing `fn` every `interval`, first fire one
  /// interval from now.
  void start(SimTime interval, EventLoop::Fn fn);
  void stop();
  bool running() const { return pending_ != kNoEvent; }

 private:
  void arm();

  EventLoop& loop_;
  SimTime interval_ = 0;
  EventLoop::Fn fn_;
  EventId pending_ = kNoEvent;
};

}  // namespace dsim::sim
