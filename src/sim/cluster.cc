#include "sim/cluster.h"

#include "sim/model_params.h"

namespace dsim::sim {

Cluster::Cluster(const ClusterConfig& cfg) {
  KernelConfig kc;
  kc.num_nodes = cfg.nodes;
  kc.cores_per_node = cfg.cores_per_node;
  kc.san_direct_nodes = cfg.san ? std::min(cfg.nodes, params::kSanDirectNodes)
                                : 0;
  kc.seed = cfg.seed;
  kc.jitter_sigma = cfg.jitter_sigma;
  kernel_ = std::make_unique<Kernel>(kc);
}

ClusterConfig Cluster::single_node() {
  ClusterConfig cfg;
  cfg.nodes = 1;
  cfg.cores_per_node = 8;  // dual-socket quad-core Xeon E5320 (§5.1)
  return cfg;
}

ClusterConfig Cluster::lab_cluster(int nodes, bool san) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.cores_per_node = params::kCoresPerNode;
  cfg.san = san;
  return cfg;
}

}  // namespace dsim::sim
