#include "sim/byte_image.h"

#include <algorithm>
#include <cstring>

#include "util/assertx.h"
#include "util/crc32.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace dsim::sim {

ByteImage::ByteImage(u64 size) : size_(size) {
  if (size > 0) {
    ext_.emplace(0, Extent{size, ExtentKind::kZero, 0, nullptr, 0});
  }
}

u8 ByteImage::rand_byte(u64 seed, u64 pos) {
  u64 s = seed ^ (pos >> 3) * 0x9e3779b97f4a7c15ULL;
  const u64 block = splitmix64(s);
  return static_cast<u8>(block >> ((pos & 7) * 8));
}

void ByteImage::resize(u64 new_size) {
  if (new_size == size_) return;
  notify(std::min(size_, new_size),
         std::max(size_, new_size) - std::min(size_, new_size));
  if (new_size > size_) {
    ext_.emplace(size_,
                 Extent{new_size - size_, ExtentKind::kZero, 0, nullptr, 0});
    size_ = new_size;
    return;
  }
  split_at(new_size);
  ext_.erase(ext_.lower_bound(new_size), ext_.end());
  size_ = new_size;
}

void ByteImage::split_at(u64 pos) {
  if (pos == 0 || pos >= size_) return;
  auto it = ext_.upper_bound(pos);
  DSIM_CHECK(it != ext_.begin());
  --it;
  const u64 start = it->first;
  if (start == pos) return;
  Extent& ext = it->second;
  DSIM_CHECK(pos < start + ext.len);
  Extent tail = ext;
  const u64 head_len = pos - start;
  tail.len = ext.len - head_len;
  if (tail.kind == ExtentKind::kReal) {
    tail.data_off += head_len;
  }
  // kRand content is position-based, so the seed carries over unchanged.
  ext.len = head_len;
  ext_.emplace(pos, std::move(tail));
}

void ByteImage::replace_range(u64 off, u64 len, Extent ext) {
  split_at(off);
  split_at(off + len);
  auto first = ext_.lower_bound(off);
  auto last = ext_.lower_bound(off + len);
  ext_.erase(first, last);
  ext_.emplace(off, std::move(ext));
}

void ByteImage::write(u64 off, std::span<const std::byte> bytes) {
  if (bytes.empty()) return;
  DSIM_CHECK_MSG(off + bytes.size() <= size_, "ByteImage write out of range");
  notify(off, bytes.size());

  // Fast path: the range lies within a single uniquely-owned real extent.
  auto it = ext_.upper_bound(off);
  DSIM_CHECK(it != ext_.begin());
  --it;
  Extent& cur = it->second;
  const u64 start = it->first;
  if (cur.kind == ExtentKind::kReal && cur.data &&
      cur.data.use_count() == 1 && off + bytes.size() <= start + cur.len) {
    auto* vec = const_cast<std::vector<std::byte>*>(cur.data.get());
    std::memcpy(vec->data() + cur.data_off + (off - start), bytes.data(),
                bytes.size());
    return;
  }

  auto data = std::make_shared<std::vector<std::byte>>(bytes.begin(),
                                                       bytes.end());
  replace_range(off, bytes.size(),
                Extent{bytes.size(), ExtentKind::kReal, 0, std::move(data), 0});
}

void ByteImage::fill(u64 off, u64 len, ExtentKind kind, u64 seed) {
  if (len == 0) return;
  DSIM_CHECK_MSG(off + len <= size_, "ByteImage fill out of range");
  DSIM_CHECK_MSG(kind != ExtentKind::kReal, "use write() for real bytes");
  notify(off, len);
  replace_range(off, len, Extent{len, kind, seed, nullptr, 0});
}

void ByteImage::read(u64 off, std::span<std::byte> out) const {
  if (out.empty()) return;
  DSIM_CHECK_MSG(off + out.size() <= size_, "ByteImage read out of range");
  u64 pos = off;
  u64 done = 0;
  auto it = ext_.upper_bound(off);
  DSIM_CHECK(it != ext_.begin());
  --it;
  while (done < out.size()) {
    DSIM_CHECK(it != ext_.end());
    const u64 start = it->first;
    const Extent& ext = it->second;
    const u64 in_ext = pos - start;
    const u64 n = std::min<u64>(ext.len - in_ext, out.size() - done);
    switch (ext.kind) {
      case ExtentKind::kReal:
        std::memcpy(out.data() + done,
                    ext.data->data() + ext.data_off + in_ext, n);
        break;
      case ExtentKind::kZero:
        std::memset(out.data() + done, 0, n);
        break;
      case ExtentKind::kRand:
        for (u64 k = 0; k < n; ++k) {
          out[done + k] = static_cast<std::byte>(rand_byte(ext.seed, pos + k));
        }
        break;
    }
    done += n;
    pos += n;
    ++it;
  }
}

std::vector<std::byte> ByteImage::materialize(u64 off, u64 len) const {
  std::vector<std::byte> out(len);
  read(off, out);
  return out;
}

u64 ByteImage::real_bytes() const {
  u64 acc = 0;
  for (const auto& [off, ext] : ext_) {
    if (ext.kind == ExtentKind::kReal) acc += ext.len;
  }
  return acc;
}

u64 ByteImage::pattern_bytes(ExtentKind kind) const {
  u64 acc = 0;
  for (const auto& [off, ext] : ext_) {
    if (ext.kind == kind) acc += ext.len;
  }
  return acc;
}

u32 ByteImage::content_crc() const {
  u32 crc = 0;
  std::vector<std::byte> chunk(64 * 1024);
  u64 pos = 0;
  while (pos < size_) {
    const u64 n = std::min<u64>(chunk.size(), size_ - pos);
    read(pos, std::span(chunk).first(n));
    crc = crc32_update(crc, std::span<const std::byte>(chunk).first(n));
    pos += n;
  }
  return crc;
}

void ByteImage::serialize(ByteWriter& w) const {
  w.put_u64(size_);
  w.put_u64(ext_.size());
  for (const auto& [off, ext] : ext_) {
    w.put_u64(off);
    w.put_u64(ext.len);
    w.put_u8(static_cast<u8>(ext.kind));
    w.put_u64(ext.seed);
    if (ext.kind == ExtentKind::kReal) {
      w.put_blob(std::span<const std::byte>(*ext.data).subspan(
          ext.data_off, ext.len));
    }
  }
}

ByteImage ByteImage::deserialize(ByteReader& r) {
  ByteImage img;
  img.size_ = r.get_u64();
  const u64 n = r.get_u64();
  for (u64 i = 0; i < n; ++i) {
    const u64 off = r.get_u64();
    Extent ext;
    ext.len = r.get_u64();
    ext.kind = static_cast<ExtentKind>(r.get_u8());
    ext.seed = r.get_u64();
    if (ext.kind == ExtentKind::kReal) {
      ext.data = std::make_shared<std::vector<std::byte>>(r.get_blob());
      DSIM_CHECK(ext.data->size() == ext.len);
    }
    img.ext_.emplace(off, std::move(ext));
  }
  img.check_invariants();
  return img;
}

void ByteImage::check_invariants() const {
  u64 expect = 0;
  for (const auto& [off, ext] : ext_) {
    DSIM_CHECK_MSG(off == expect, "ByteImage extents must be contiguous");
    DSIM_CHECK(ext.len > 0);
    expect = off + ext.len;
  }
  DSIM_CHECK_MSG(expect == size_, "ByteImage extents must cover size");
}

}  // namespace dsim::sim
