// Cluster network fabric.
//
// Per-node NIC egress queues (Gigabit Ethernet bandwidth + latency) plus a
// fast loopback path. The TCP socket layer moves segments through this
// fabric; bytes "on the wire" at checkpoint time are exactly the segments in
// flight here, which the DMTCP drain protocol must capture (§4.3 step 4).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sim/event_loop.h"
#include "sim/storage.h"
#include "util/types.h"

namespace dsim::sim {

class Network {
 public:
  Network(EventLoop& loop, int num_nodes);

  /// Deliver `bytes` from node `from` to node `to`; `arrive` fires at the
  /// receiver when the transfer completes.
  void transfer(NodeId from, NodeId to, u64 bytes,
                std::function<void()> arrive);

  void set_jitter(Rng* rng, double sigma);
  int num_nodes() const { return static_cast<int>(egress_.size()); }

  /// Per-node NIC egress device, read-only (byte counters for tests and the
  /// RPC-path accounting checks: traffic that claims to cross the network
  /// must show up here).
  const StorageDevice& egress(NodeId node) const { return *egress_[node]; }
  const StorageDevice& loopback(NodeId node) const { return *loopback_[node]; }

 private:
  EventLoop& loop_;
  std::vector<std::unique_ptr<StorageDevice>> egress_;    // NIC per node
  std::vector<std::unique_ptr<StorageDevice>> loopback_;  // same-node path
};

}  // namespace dsim::sim
