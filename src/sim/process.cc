#include "sim/process.h"

#include "sim/interposer.h"
#include "sim/kernel.h"
#include "util/assertx.h"

namespace dsim::sim {

MemSegment& AddressSpace::add(std::string name, MemKind kind, u64 size) {
  DSIM_CHECK_MSG(find(name) == nullptr, "duplicate segment name");
  auto seg = std::make_shared<MemSegment>();
  seg->id = next_id_++;
  seg->name = std::move(name);
  seg->kind = kind;
  seg->data = ByteImage(size);
  segs_.push_back(seg);
  return *segs_.back();
}

void AddressSpace::attach(std::shared_ptr<MemSegment> seg) {
  DSIM_CHECK_MSG(find(seg->name) == nullptr, "duplicate segment name");
  segs_.push_back(std::move(seg));
}

MemSegment* AddressSpace::find(const std::string& name) {
  for (auto& s : segs_) {
    if (s->name == name) return s.get();
  }
  return nullptr;
}

const MemSegment* AddressSpace::find(const std::string& name) const {
  for (const auto& s : segs_) {
    if (s->name == name) return s.get();
  }
  return nullptr;
}

bool AddressSpace::detach(const std::string& name) {
  for (auto it = segs_.begin(); it != segs_.end(); ++it) {
    if ((*it)->name == name) {
      segs_.erase(it);
      return true;
    }
  }
  return false;
}

u64 AddressSpace::total_bytes() const {
  u64 acc = 0;
  for (const auto& s : segs_) acc += s->data.size();
  return acc;
}

Process::Process(Kernel& kernel, Pid pid, NodeId node, std::string prog_name,
                 std::vector<std::string> argv,
                 std::map<std::string, std::string> env, Pid ppid)
    : kernel_(kernel),
      pid_(pid),
      node_(node),
      prog_name_(std::move(prog_name)),
      argv_(std::move(argv)),
      env_(std::move(env)),
      ppid_(ppid),
      rng_(mix_seed(kernel.seed(), static_cast<u64>(pid), 0x9c0)) {}

Process::~Process() = default;

std::string Process::env_or(const std::string& key,
                            const std::string& dflt) const {
  auto it = env_.find(key);
  return it == env_.end() ? dflt : it->second;
}

Thread& Process::add_thread(ThreadKind kind) {
  threads_.push_back(
      std::make_unique<Thread>(kernel_, *this, next_tid_++, kind));
  return *threads_.back();
}

Thread* Process::find_thread(Tid tid) {
  for (auto& t : threads_) {
    if (t->tid() == tid) return t.get();
  }
  return nullptr;
}

Thread* Process::main_thread() {
  for (auto& t : threads_) {
    if (t->kind() == ThreadKind::kMain) return t.get();
  }
  return nullptr;
}

Pid process_pid_of(Process& p) { return p.pid(); }

}  // namespace dsim::sim
