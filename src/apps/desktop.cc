#include "apps/desktop.h"

#include "apps/app_util.h"
#include "util/assertx.h"

namespace dsim::apps {
namespace {

using sim::MemRef;
using sim::Task;

// rss/ratio calibrated against Fig. 3b (compressed sizes ≈ rss * ratio) and
// the §5.1 text; thread/child structure from each application's nature.
const std::vector<DesktopProfile> kProfiles = {
    {"bc", 3.2, 0.38, 1, 8, nullptr, false},
    {"emacs", 34, 0.30, 1, 40, nullptr, false},
    {"ghci", 31, 0.29, 2, 28, nullptr, false},
    {"ghostscript", 24, 0.30, 1, 24, nullptr, false},
    {"gnuplot", 13, 0.31, 1, 22, nullptr, false},
    {"gst", 27, 0.30, 1, 18, nullptr, false},
    {"lynx", 13, 0.31, 1, 20, nullptr, false},
    {"macaulay2", 96, 0.31, 2, 30, nullptr, false},
    {"matlab", 112, 0.29, 4, 80, nullptr, false},
    {"mzscheme", 17, 0.30, 1, 14, nullptr, false},
    {"ocaml", 19, 0.31, 1, 12, nullptr, false},
    {"octave", 30, 0.30, 2, 36, nullptr, false},
    {"perl", 20, 0.30, 1, 16, nullptr, false},
    {"php", 23, 0.30, 1, 24, nullptr, false},
    {"python", 20, 0.30, 1, 24, nullptr, false},
    {"ruby", 23, 0.30, 1, 18, nullptr, false},
    {"slsh", 10, 0.31, 1, 12, nullptr, false},
    {"sqlite", 9, 0.32, 1, 10, nullptr, false},
    {"tclsh", 6, 0.33, 1, 10, nullptr, false},
    {"tightvnc+twm", 43, 0.30, 2, 30, "desktop_child", true},
    {"vim/cscope", 26, 0.30, 1, 18, "desktop_child", true},
    // §5.1: 680 MB after 12 minutes, 540 dynamic libraries, 225 MB gzipped.
    {"runcms", 680, 0.331, 2, 540, nullptr, false},
};

/// Build the memory layout for a profile: `libs` mapped-library segments
/// plus a heap, with a zero/random extent mix hitting the target ratio.
/// (gzip-like codecs compress our zero extents to ~0.004 and random extents
/// to ~1.02 of their size; mix fraction follows.)
void build_memory(sim::ProcessCtx& ctx, const DesktopProfile& p) {
  if (ctx.seg("heap")) return;  // restored from the image
  const u64 total = static_cast<u64>(p.rss_mb * 1024.0 * 1024.0);
  const double zero_frac =
      std::clamp((1.02 - p.compress_ratio) / (1.02 - 0.004), 0.0, 1.0);
  // Libraries: many smaller segments (RunCMS maps 540 of them, §5.1).
  const u64 lib_total = total / 3;
  const u64 lib_sz = std::max<u64>(lib_total / std::max(p.libs, 1), 4096);
  for (int i = 0; i < p.libs; ++i) {
    auto& seg = ctx.alloc("lib" + std::to_string(i), sim::MemKind::kLib,
                          lib_sz);
    const u64 zeros = static_cast<u64>(static_cast<double>(lib_sz) *
                                       zero_frac);
    if (zeros < lib_sz) {
      seg.data.fill(zeros, lib_sz - zeros, sim::ExtentKind::kRand,
                    mix_seed(0x11b, static_cast<u64>(i)));
    }
  }
  // Heap: one large segment with the same mix + a small real working set.
  const u64 heap_sz = total - lib_sz * static_cast<u64>(p.libs);
  auto& heap = ctx.alloc("heap", sim::MemKind::kHeap, heap_sz);
  const u64 zeros = static_cast<u64>(static_cast<double>(heap_sz) *
                                     zero_frac);
  if (zeros < heap_sz) {
    heap.data.fill(zeros, heap_sz - zeros, sim::ExtentKind::kRand,
                   mix_seed(0x4ea9, static_cast<u64>(p.rss_mb)));
  }
}

struct DeskState {
  u64 i = 0;
  u64 acc = 0;
  i32 pty_master = kNoFd;
  i32 child = kNoPid;
  u8 setup_done = 0;
  u8 pad_[7] = {};  // explicit: stored state must have no padding bits
};

/// desktop_app <profile> <iters (0 = run forever)> <result-name>
Task<int> desktop_main(sim::ProcessCtx& ctx) {
  const std::string profile = args(ctx, 0, "python");
  const u64 iters = static_cast<u64>(argi(ctx, 1, 0));
  const std::string result = args(ctx, 2, profile);
  const DesktopProfile& p = desktop_profile(profile);

  build_memory(ctx, p);
  StateView<DeskState> st(ctx);
  MemRef work = buffer(ctx, "workset", 64 * 1024);
  DeskState s = st.get();

  if (!s.setup_done) {
    if (p.uses_pty) {
      auto [m, sl] = co_await ctx.openpty();
      s.pty_master = m;
      ctx.set_ctty(0);
      (void)sl;
    }
    if (p.child) {
      std::vector<std::string> cargv{profile};
      s.child = co_await ctx.spawn(p.child, std::move(cargv));
    }
    // Interactive programs install signal handlers (restored on restart).
    ctx.process().signals().handler[2] = 7;   // SIGINT
    ctx.process().signals().handler[15] = 7;  // SIGTERM
    for (int t = 1; t < p.threads; ++t) ctx.spawn_thread(static_cast<u32>(t));
    s.setup_done = 1;
    st.set(s);
  }

  // "Interactive" loop: light compute touching a real working set.
  std::vector<std::byte> host(4096);
  while (iters == 0 || s.i < iters) {
    co_await ctx.cpu_chunked(300e-6, 0);
    for (u64 j = 0; j < host.size(); ++j) {
      host[j] = static_cast<std::byte>(payload_byte(s.acc, s.i, j));
    }
    work.seg->data.write(work.off + (s.i % 16) * 4096, host);
    s.acc = mix_seed(s.acc, s.i);
    s.i++;
    st.set(s);
    co_await ctx.sleep(2 * timeconst::kMillisecond);
  }
  if (ctx.phase() == 0) {
    char out[64];
    std::snprintf(out, sizeof out, "acc=%016llx i=%llu",
                  static_cast<unsigned long long>(s.acc),
                  static_cast<unsigned long long>(s.i));
    co_await write_result(ctx, result, out);
    ctx.phase() = 1;
  }
  co_return 0;
}

/// Idle worker threads of multithreaded desktop apps.
Task<void> desktop_worker(sim::ProcessCtx& ctx, u32 role) {
  (void)role;
  while (true) {
    co_await ctx.cpu_chunked(50e-6, 4);
    co_await ctx.sleep(5 * timeconst::kMillisecond);
  }
}

/// Co-process (cscope for vim; twm for the vnc server): small footprint.
Task<int> desktop_child_main(sim::ProcessCtx& ctx) {
  if (!ctx.seg("heap")) {
    auto& heap = ctx.alloc("heap", sim::MemKind::kHeap, 6ull << 20);
    heap.data.fill(3ull << 20, 3ull << 20, sim::ExtentKind::kRand, 0xc0);
  }
  StateView<DeskState> st(ctx);
  DeskState s = st.get();
  while (true) {
    co_await ctx.cpu_chunked(100e-6, 0);
    s.i++;
    st.set(s);
    co_await ctx.sleep(4 * timeconst::kMillisecond);
  }
}

}  // namespace

const std::vector<DesktopProfile>& desktop_profiles() { return kProfiles; }

const DesktopProfile& desktop_profile(const std::string& name) {
  for (const auto& p : kProfiles) {
    if (p.name == name) return p;
  }
  DSIM_UNREACHABLE("unknown desktop profile");
}

void register_desktop_programs(sim::Kernel& k) {
  {
    sim::Program p;
    p.name = "desktop_app";
    p.main = desktop_main;
    p.worker = desktop_worker;
    k.programs().add(std::move(p));
  }
  sim::Program c;
  c.name = "desktop_child";
  c.main = desktop_child_main;
  k.programs().add(std::move(c));
}

}  // namespace dsim::apps
