// Helpers for writing restart-safe simulated applications.
//
// The contract (DESIGN.md §3.2): all durable program state lives in
// simulated memory ("state" segment + named buffers), the thread phase/
// registers drive resumable primitives, and state is updated between awaits
// so re-driving the program after restart neither repeats nor loses side
// effects. These helpers make that contract mechanical.
#pragma once

#include <string>

#include "sim/pctx.h"

namespace dsim::apps {

using sim::Task;

/// Typed view of a POD state struct stored at offset 0 of a named segment.
/// Creates the segment on first use; finds the restored one after restart.
template <typename T>
class StateView {
  static_assert(std::is_trivially_copyable_v<T>);
  // No padding allowed: stored state becomes checkpoint image *content*
  // (chunk keys, CRCs, shard routing), and padding bytes in a stack
  // temporary are indeterminate — they would leak per-process entropy into
  // the simulation and break bit-reproducibility. Pad state structs
  // explicitly (e.g. widen a trailing u8 flag to u64).
  static_assert(std::has_unique_object_representations_v<T>);

 public:
  explicit StateView(sim::ProcessCtx& ctx, const std::string& name = "state")
      : ctx_(ctx) {
    seg_ = ctx.seg(name);
    if (!seg_) {
      seg_ = &ctx.alloc(name, sim::MemKind::kData, sizeof(T));
      // Persist the default-constructed value: sentinel fields like
      // `fd = kNoFd` must read back as -1, not as the segment's zero fill.
      ctx_.store(sim::MemRef{seg_, 0}, T{});
    }
  }

  T get() { return ctx_.load<T>(ref()); }
  void set(const T& v) { ctx_.store(ref(), v); }
  sim::MemRef ref() const { return sim::MemRef{seg_, 0}; }
  sim::MemSegment& segment() { return *seg_; }

 private:
  sim::ProcessCtx& ctx_;
  sim::MemSegment* seg_;
};

/// A named buffer in simulated memory (allocate-or-find).
inline sim::MemRef buffer(sim::ProcessCtx& ctx, const std::string& name,
                          u64 size, sim::MemKind kind = sim::MemKind::kHeap) {
  sim::MemSegment* seg = ctx.seg(name);
  if (!seg) seg = &ctx.alloc(name, kind, size);
  return sim::MemRef{seg, 0};
}

/// Parse argv[i] as integer with default.
inline i64 arg_int(const sim::ProcessCtx& ctx_argv_holder,
                   const std::vector<std::string>& argv, size_t i,
                   i64 dflt) {
  (void)ctx_argv_holder;
  if (i >= argv.size()) return dflt;
  return std::stoll(argv[i]);
}

inline i64 argi(sim::ProcessCtx& ctx, size_t i, i64 dflt) {
  const auto& argv = ctx.process().argv();
  if (i >= argv.size()) return dflt;
  return std::stoll(argv[i]);
}

inline std::string args(sim::ProcessCtx& ctx, size_t i,
                        const std::string& dflt) {
  const auto& argv = ctx.process().argv();
  return i >= argv.size() ? dflt : argv[i];
}

/// Write a (small) result blob to /shared/results/<name>, overwriting.
/// Idempotent, so it is safe to re-run after a restart that interrupted it.
Task<void> write_result(sim::ProcessCtx& ctx, const std::string& name,
                        const std::string& payload);

/// Deterministic fill for message payloads: byte j of message i under seed.
inline u8 payload_byte(u64 seed, u64 i, u64 j) {
  return static_cast<u8>(mix_seed(seed, i, j) & 0xFF);
}

}  // namespace dsim::apps
