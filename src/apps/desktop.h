// Desktop application models (§5.1).
//
// The paper demonstrates checkpointing of 21 interactive "shell-like"
// applications (bc, emacs, MATLAB, TightVNC+twm, vim/cscope, …) plus
// RunCMS. We model each as a process with the application's memory
// footprint and compressibility (mapped libraries + heap with a measured
// zero/random mix), its thread count, and — where the real application is
// multi-process (vim/cscope, TightVNC+twm) — its child processes and ptys.
// Footprints are calibrated to reproduce Fig. 3b's compressed sizes; see
// EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

#include "sim/kernel.h"

namespace dsim::apps {

struct DesktopProfile {
  std::string name;        // row label in Fig. 3
  double rss_mb;           // resident memory (uncompressed image size driver)
  double compress_ratio;   // target gzip ratio (drives zero/random mix)
  int threads;             // user threads
  int libs;                // mapped dynamic libraries (segments)
  const char* child;       // co-process (nullptr if single-process)
  bool uses_pty;           // allocates a pty (vnc/twm, vim)
};

/// The 21 applications of Fig. 3, in the paper's order, plus "runcms".
const std::vector<DesktopProfile>& desktop_profiles();
const DesktopProfile& desktop_profile(const std::string& name);

/// Register "desktop_app" (argv: [profile, iters(0=forever), result-name])
/// and its helper child program.
void register_desktop_programs(sim::Kernel& k);

}  // namespace dsim::apps
