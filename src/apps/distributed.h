// Distributed workloads for the §5.2 experiments.
//
// NAS-style kernels: EP, IS and CG carry their distinctive computation
// (random tallies, a mostly-zero bucket sort with all-to-all exchange, and
// sparse mat-vec with allreduce); MG, LU, SP and BT share a structured-grid
// template (halo exchanges + periodic reductions) with per-kernel memory
// footprints and message sizes. Footprints are the paper's Fig.-4c
// aggregates divided by rank count; bulk array content is pattern ballast
// (zero/random extents) so cluster-scale images cost no host RAM, while the
// working arrays the kernels actually touch are real bytes (DESIGN.md §5).
//
// ParGeant4: a TOP-C style master/worker event loop over mini-MPI (§5.2).
// iPython: a controller + engines over raw sockets (the paper's "based on
// sockets directly" category). memhog: the Fig.-6 synthetic that allocates
// random data. All are restart-safe.
#pragma once

#include <string>

#include "sim/kernel.h"

namespace dsim::apps {

struct NasConfig {
  std::string name;      // "ep", "is", "cg", "mg", "lu", "sp", "bt"
  double agg_mb;         // aggregate uncompressed footprint (Fig. 4c shape)
  double zero_frac;      // ballast zero fraction (IS ≈ mostly zeros, §5.4)
  u64 msg_bytes;         // halo / exchange message size
  double cpu_ms_per_it;  // compute per iteration per rank
  int default_np;        // paper's rank count (BT/SP need squares: 36)
};

const NasConfig& nas_config(const std::string& name);

/// Register: "nas" (argv: [kernel, iters, result, rank, np, nnodes]),
/// "hello" (MPI baseline), "pargeant4" (argv: [events, mb_per_worker,
/// result, rank, np, nnodes]), "ipython_controller"/"ipython_engine",
/// "memhog" (argv: [mb_per_rank, result, rank, np, nnodes]),
/// and "chombo" (stencil for the DejaVu comparison).
void register_distributed_programs(sim::Kernel& k);

}  // namespace dsim::apps
